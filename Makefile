GO ?= go

.PHONY: all build vet lint lint-fix test race bench microbench

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/herdlint ./...

# Apply the suggested fixes herdlint attaches to its diagnostics
# (Sprintf-of-a-literal on a hot path, stale //lint:allow comments).
# CI runs this and requires `git diff --exit-code` afterwards.
lint-fix:
	$(GO) run ./cmd/herdlint -fix ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scale-out comparison: single server vs 4-shard sharded vs 4-shard R=2
# fleet. Prints the table and writes BENCH_fleet.json. The overload
# sweep (goodput + p99 vs offered load, with and without the overload
# controller) rides along and writes BENCH_overload.json, and the
# client-scaling sweep (the Figure 12 cliff with and without the
# endpoint multiplexing tier) writes BENCH_clients.json, and the
# durability comparison (warm WAL rejoin vs cold re-replication after a
# mid-flush crash) writes BENCH_durability.json.
bench:
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -benchjson BENCH_fleet.json fleet-bench
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -overloadjson BENCH_overload.json overload
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -clientsjson BENCH_clients.json clients-sweep
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -durabilityjson BENCH_durability.json durability

microbench:
	$(GO) test -bench=. -benchmem -run='^$$' .
