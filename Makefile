GO ?= go

.PHONY: all build vet test race bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
