GO ?= go

.PHONY: all build vet lint test race bench

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/herdlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
