GO ?= go

.PHONY: all build vet lint lint-fix test race bench bench-check microbench

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/herdlint ./...

# Apply the suggested fixes herdlint attaches to its diagnostics
# (Sprintf-of-a-literal on a hot path, stale //lint:allow comments).
# CI runs this and requires `git diff --exit-code` afterwards.
lint-fix:
	$(GO) run ./cmd/herdlint -fix ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scale-out comparison: single server vs 4-shard sharded vs 4-shard R=2
# fleet. Prints the table and writes BENCH_fleet.json. The overload
# sweep (goodput + p99 vs offered load, with and without the overload
# controller) rides along and writes BENCH_overload.json, and the
# client-scaling sweep (the Figure 12 cliff with and without the
# endpoint multiplexing tier) writes BENCH_clients.json, and the
# durability comparison (warm WAL rejoin vs cold re-replication after a
# mid-flush crash) writes BENCH_durability.json, and the hot-key
# survival comparison (near cache + leases + widening vs plain fleet on
# the skewed workload) writes BENCH_hotkey.json, and the nemesis
# consistency comparison (first-ack divergence vs versioned read
# repair) writes BENCH_consistency.json.
bench:
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -benchjson BENCH_fleet.json fleet-bench
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -overloadjson BENCH_overload.json overload
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -clientsjson BENCH_clients.json clients-sweep
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -durabilityjson BENCH_durability.json durability
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -hotkeyjson BENCH_hotkey.json hotkey
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -consistencyjson BENCH_consistency.json consistency

# Bench ratchet: regenerate the ratcheted benchmarks and diff their
# throughput leaves against the committed baselines in baselines/;
# any >5% drop fails (see cmd/benchcheck). The simulator is
# deterministic, so a failure is a real slowdown, not noise.
bench-check:
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -benchjson BENCH_fleet.json fleet-bench
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -hotkeyjson BENCH_hotkey.json hotkey
	$(GO) run ./cmd/herdbench -warmup 50 -span 150 -consistencyjson BENCH_consistency.json consistency
	$(GO) run ./cmd/benchcheck -max-regress 0.05 baselines/BENCH_fleet.json BENCH_fleet.json
	$(GO) run ./cmd/benchcheck -max-regress 0.05 baselines/BENCH_hotkey.json BENCH_hotkey.json
	$(GO) run ./cmd/benchcheck -max-regress 0.05 baselines/BENCH_consistency.json BENCH_consistency.json

microbench:
	$(GO) test -bench=. -benchmem -run='^$$' .
