// Benchmarks regenerating every table and figure in the paper's
// evaluation. Each benchmark runs the corresponding experiment on the
// simulated Apt cluster (Figure 9 covers Susitna too) with shortened
// measurement windows, and reports the experiment's headline number as a
// custom metric so `go test -bench=.` doubles as a quick reproduction
// pass. cmd/herdbench prints the full tables with default windows.
package herdkv

import (
	"strconv"
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/experiments"
	"herdkv/internal/sim"
)

// shorten reduces measurement windows for benchmarking and returns a
// restore function.
func shorten() func() {
	w, s := experiments.Warmup, experiments.Span
	experiments.Warmup = 50 * sim.Microsecond
	experiments.Span = 100 * sim.Microsecond
	return func() { experiments.Warmup, experiments.Span = w, s }
}

// lastFloat extracts the last numeric cell of a row, for headline
// metrics.
func lastFloat(cells []string) float64 {
	for i := len(cells) - 1; i >= 0; i-- {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(cells[i], "%"), 64); err == nil {
			return v
		}
	}
	return 0
}

// findRow returns the first row whose first cell matches key.
func findRow(t *experiments.Table, key string) []string {
	for _, r := range t.Rows {
		if r[0] == key {
			return r
		}
	}
	return nil
}

func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1Verbs()
		if len(t.Rows) != 3 {
			b.Fatal("table1 malformed")
		}
	}
}

func BenchmarkTable2Clusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2Clusters()
		if len(t.Rows) != 2 {
			b.Fatal("table2 malformed")
		}
	}
}

func BenchmarkFig2VerbLatency(b *testing.B) {
	defer shorten()()
	var readUS float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig2Latency(cluster.Apt())
		row := findRow(t, "32")
		readUS, _ = strconv.ParseFloat(row[3], 64)
	}
	b.ReportMetric(readUS, "READ-32B-us")
}

func BenchmarkFig3Inbound(b *testing.B) {
	defer shorten()()
	var writeUC float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig3Inbound(cluster.Apt())
		writeUC, _ = strconv.ParseFloat(findRow(t, "32")[1], 64)
	}
	b.ReportMetric(writeUC, "inbound-WRITE-UC-Mops")
}

func BenchmarkFig4Outbound(b *testing.B) {
	defer shorten()()
	var inline float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4Outbound(cluster.Apt())
		inline, _ = strconv.ParseFloat(findRow(t, "16")[1], 64)
	}
	b.ReportMetric(inline, "outbound-WR-INLINE-Mops")
}

func BenchmarkFig5Echo(b *testing.B) {
	defer shorten()()
	var wrSend float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig5Echo(cluster.Apt())
		wrSend = lastFloat(findRow(t, "WR/SEND"))
	}
	b.ReportMetric(wrSend, "WR-SEND-echo-Mops")
}

func BenchmarkFig6AllToAll(b *testing.B) {
	defer shorten()()
	var out16 float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6AllToAll(cluster.Apt())
		out16, _ = strconv.ParseFloat(findRow(t, "16")[2], 64)
	}
	b.ReportMetric(out16, "out-WRITE-N16-Mops")
}

func BenchmarkFig7Prefetch(b *testing.B) {
	defer shorten()()
	var n8pf float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7Prefetch(cluster.Apt())
		n8pf = lastFloat(findRow(t, "5"))
	}
	b.ReportMetric(n8pf, "N8-prefetch-5cores-Mops")
}

func BenchmarkFig9EndToEnd(b *testing.B) {
	defer shorten()()
	var herd float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig9Throughput()
		herd = lastFloat(t.Rows[0]) // Apt, 5% PUT, HERD column
	}
	b.ReportMetric(herd, "HERD-Apt-5putMops")
}

func BenchmarkFig10ValueSize(b *testing.B) {
	defer shorten()()
	var herd32 float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig10ValueSize(cluster.Apt())
		herd32, _ = strconv.ParseFloat(findRow(t, "32")[1], 64)
	}
	b.ReportMetric(herd32, "HERD-32B-Mops")
}

func BenchmarkFig11LatencyTput(b *testing.B) {
	defer shorten()()
	var herdPeakLat float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig11LatencyThroughput(cluster.Apt())
		for _, r := range t.Rows {
			if r[0] == experiments.SysHERD && r[1] == "51" {
				herdPeakLat, _ = strconv.ParseFloat(r[3], 64)
			}
		}
	}
	b.ReportMetric(herdPeakLat, "HERD-peak-mean-us")
}

func BenchmarkFig12Clients(b *testing.B) {
	defer shorten()()
	var at500ws16 float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig12ClientScaling(cluster.Apt())
		at500ws16 = lastFloat(findRow(t, "500"))
	}
	b.ReportMetric(at500ws16, "500cli-WS16-Mops")
}

func BenchmarkFig13Cores(b *testing.B) {
	defer shorten()()
	var herd5 float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig13CPUCores(cluster.Apt())
		herd5, _ = strconv.ParseFloat(findRow(t, "5")[1], 64)
	}
	b.ReportMetric(herd5, "HERD-5cores-Mops")
}

func BenchmarkFig1Steps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig1Steps().Rows) != 4 {
			b.Fatal("fig1 malformed")
		}
	}
}

func BenchmarkFig8Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig8Layout().Rows) < 5 {
			b.Fatal("fig8 malformed")
		}
	}
}

func BenchmarkAnatomy(b *testing.B) {
	defer shorten()()
	var total float64
	for i := 0; i < b.N; i++ {
		t := experiments.LatencyAnatomy(cluster.Apt())
		total = lastFloat(findRow(t, "total")[:2])
	}
	b.ReportMetric(total, "idle-GET-us")
}

func BenchmarkCPUUse(b *testing.B) {
	defer shorten()()
	var herdTotal float64
	for i := 0; i < b.N; i++ {
		t := experiments.CPUUse(cluster.Apt())
		herdTotal = lastFloat(findRow(t, experiments.SysHERD))
	}
	b.ReportMetric(herdTotal, "HERD-corems-per-Mop")
}

func BenchmarkSymmetricStudy(b *testing.B) {
	defer shorten()()
	var farm16 float64
	for i := 0; i < b.N; i++ {
		t := experiments.SymmetricStudy(cluster.Apt())
		farm16, _ = strconv.ParseFloat(findRow(t, "16")[1], 64)
	}
	b.ReportMetric(farm16, "FaRM-sym-16-Mops")
}

func BenchmarkAblationArch(b *testing.B) {
	defer shorten()()
	var dc500 float64
	for i := 0; i < b.N; i++ {
		t := experiments.AblationArchitecture(cluster.Apt())
		dc500 = lastFloat(findRow(t, "500"))
	}
	b.ReportMetric(dc500, "DC-500cli-Mops")
}

func BenchmarkAblationDoorbell(b *testing.B) {
	defer shorten()()
	var batch16 float64
	for i := 0; i < b.N; i++ {
		t := experiments.AblationDoorbell(cluster.Apt())
		batch16 = lastFloat(findRow(t, "16"))
	}
	b.ReportMetric(batch16, "batch16-Mops")
}

func BenchmarkFig14Skew(b *testing.B) {
	defer shorten()()
	var zipfTotal float64
	for i := 0; i < b.N; i++ {
		t := experiments.Fig14Skew(cluster.Apt())
		zipfTotal, _ = strconv.ParseFloat(findRow(t, "total")[1], 64)
	}
	b.ReportMetric(zipfTotal, "zipf-total-Mops")
}
