// Command benchcheck is the benchmark ratchet: it compares a freshly
// generated benchmark JSON against a committed baseline and fails when
// any throughput leaf regressed past the allowed fraction.
//
// Usage:
//
//	benchcheck [-max-regress 0.05] baseline.json fresh.json
//
// Throughput leaves are numeric JSON fields whose key contains "mops"
// (the convention every BENCH_*.json in this repo follows). Fields
// present in the baseline but missing from the fresh file fail the
// check too — a renamed field silently dropping out of the ratchet is
// exactly the kind of drift this tool exists to catch. Improvements
// and new fields are reported but never fail.
//
// The simulator is deterministic, so a regression here is a real code
// change slowing a measured path, not noise; the slack exists only to
// absorb intentional small trade-offs without a baseline churn per PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	maxRegress := flag.Float64("max-regress", 0.05,
		"maximum allowed fractional drop per throughput leaf")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-max-regress f] baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := loadLeaves(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fresh, err := loadLeaves(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := false
	for _, k := range keys {
		was := base[k]
		now, ok := fresh[k]
		if !ok {
			fmt.Printf("FAIL %s: in baseline (%.3f) but missing from %s\n", k, was, flag.Arg(1))
			failed = true
			continue
		}
		switch {
		case was <= 0:
			fmt.Printf("  ok %s: baseline %.3f not positive, skipped\n", k, was)
		case now < was*(1-*maxRegress):
			fmt.Printf("FAIL %s: %.3f -> %.3f (%.1f%% drop, limit %.0f%%)\n",
				k, was, now, (1-now/was)*100, *maxRegress*100)
			failed = true
		default:
			fmt.Printf("  ok %s: %.3f -> %.3f (%+.1f%%)\n", k, was, now, (now/was-1)*100)
		}
	}
	for k, v := range fresh {
		if _, ok := base[k]; !ok {
			fmt.Printf(" new %s: %.3f (no baseline yet)\n", k, v)
		}
	}
	if failed {
		fmt.Printf("benchcheck: %s regressed vs %s\n", flag.Arg(1), flag.Arg(0))
		os.Exit(1)
	}
}

// loadLeaves extracts every numeric leaf whose key contains "mops"
// from an arbitrary JSON document (objects and arrays are walked;
// array indexes become path segments so sweep points stay distinct).
func loadLeaves(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc interface{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	leaves := make(map[string]float64)
	walk(doc, "", leaves)
	if len(leaves) == 0 {
		return nil, fmt.Errorf("%s: no throughput (*mops*) leaves found", path)
	}
	return leaves, nil
}

func walk(node interface{}, prefix string, out map[string]float64) {
	switch v := node.(type) {
	case map[string]interface{}:
		for k, child := range v {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			if n, ok := child.(float64); ok && strings.Contains(strings.ToLower(k), "mops") {
				out[p] = n
				continue
			}
			walk(child, p, out)
		}
	case []interface{}:
		for i, child := range v {
			walk(child, fmt.Sprintf("%s[%d]", prefix, i), out)
		}
	}
}
