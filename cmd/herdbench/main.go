// Command herdbench regenerates the paper's tables and figures on the
// simulated clusters.
//
// Usage:
//
//	herdbench [-cluster apt|susitna] [-warmup us] [-span us]
//	          [-metrics file] [-trace file] [-perqp]
//	          [-faults script] [targets...]
//
// Targets are table1, table2, fig2..fig7, fig9..fig14, or "all"
// (default). Figure 9 always covers both clusters. The "chaos" target
// runs the packaged crash-restart scenario; -faults replaces its
// schedule with a chaos script (see docs/ROBUSTNESS.md for the format).
// "fleet-bench" compares single vs sharded vs replicated-fleet
// deployments (-benchjson also writes the result as JSON) and
// "fleet-chaos" runs the fleet through a shard crash; see
// docs/SCALEOUT.md. "overload" sweeps offered load past saturation with
// and without the overload controller (-overloadjson writes the sweep
// as JSON); see docs/ROBUSTNESS.md. "clients-sweep" sweeps the client
// count from 100 to 10k with and without the endpoint multiplexing
// tier (-clientsjson writes the sweep as JSON); see
// docs/SCALABILITY.md. "durability" crashes a durable fleet
// mid-group-commit and compares warm WAL rejoin against cold
// re-replication (-durabilityjson writes the comparison as JSON); see
// docs/DURABILITY.md. "hotkey" runs the skewed workload with and
// without the client near cache + leases + hot-key widening
// (-hotkeyjson writes the comparison as JSON); see docs/CACHING.md.
// "consistency" searches nemesis seeds for a schedule under which the
// first-ack fleet serves a provably stale read, minimizes it, and
// proves versioned writes + read repair restore linearizability
// (-consistencyjson writes the comparison as JSON); see
// docs/ROBUSTNESS.md.
//
// -metrics dumps the cluster-wide metric registry (per-verb posted and
// completion counters, PCIe transaction counts, NIC cache hit rates,
// latency histograms) after all targets run. -trace records every
// request's lifecycle as spans and writes Chrome trace_event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. See
// docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"herdkv/internal/cluster"
	"herdkv/internal/experiments"
	"herdkv/internal/fault"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

func main() {
	clusterName := flag.String("cluster", "apt", "cluster preset: apt or susitna")
	warmupUS := flag.Int("warmup", 150, "warmup window (simulated microseconds)")
	spanUS := flag.Int("span", 400, "measurement window (simulated microseconds)")
	format := flag.String("format", "text", "output format: text or csv")
	list := flag.Bool("list", false, "list available targets and exit")
	metricsFile := flag.String("metrics", "", "write a metrics dump to this file after the targets run")
	traceFile := flag.String("trace", "", "write request-lifecycle spans as Chrome trace_event JSON to this file")
	perQP := flag.Bool("perqp", false, "with -metrics: also keep per-queue-pair posted counters")
	faultsFile := flag.String("faults", "", "chaos script for the chaos target (overrides the packaged scenario)")
	benchJSON := flag.String("benchjson", "", "with the fleet-bench target: also write the comparison as JSON to this file")
	overloadJSON := flag.String("overloadjson", "", "with the overload target: also write the sweep as JSON to this file")
	clientsJSON := flag.String("clientsjson", "", "with the clients-sweep target: also write the sweep as JSON to this file")
	durabilityJSON := flag.String("durabilityjson", "", "with the durability target: also write the comparison as JSON to this file")
	hotkeyJSON := flag.String("hotkeyjson", "", "with the hotkey target: also write the comparison as JSON to this file")
	consistencyJSON := flag.String("consistencyjson", "", "with the consistency target: also write the comparison as JSON to this file")
	flag.Parse()

	experiments.Warmup = sim.Time(*warmupUS) * sim.Microsecond
	experiments.Span = sim.Time(*spanUS) * sim.Microsecond

	var sink *telemetry.Sink
	if *metricsFile != "" || *traceFile != "" {
		sink = telemetry.New()
		sink.PerQP = *perQP
		if *traceFile != "" {
			sink.Tracer = telemetry.NewTracer()
		}
		cluster.SetDefaultTelemetry(sink)
	}

	var spec cluster.Spec
	switch strings.ToLower(*clusterName) {
	case "apt":
		spec = cluster.Apt()
	case "susitna":
		spec = cluster.Susitna()
	default:
		fmt.Fprintf(os.Stderr, "unknown cluster %q (want apt or susitna)\n", *clusterName)
		os.Exit(2)
	}

	targets := map[string]func() *experiments.Table{
		"table1": experiments.Table1Verbs,
		"table2": experiments.Table2Clusters,
		"fig1":   experiments.Fig1Steps,
		"fig2":   func() *experiments.Table { return experiments.Fig2Latency(spec) },
		"fig3":   func() *experiments.Table { return experiments.Fig3Inbound(spec) },
		"fig4":   func() *experiments.Table { return experiments.Fig4Outbound(spec) },
		"fig5":   func() *experiments.Table { return experiments.Fig5Echo(spec) },
		"fig6":   func() *experiments.Table { return experiments.Fig6AllToAll(spec) },
		"fig7":   func() *experiments.Table { return experiments.Fig7Prefetch(spec) },
		"fig8":   experiments.Fig8Layout,
		"fig9":   experiments.Fig9Throughput,
		"fig10":  func() *experiments.Table { return experiments.Fig10ValueSize(spec) },
		"fig11":  func() *experiments.Table { return experiments.Fig11LatencyThroughput(spec) },
		"fig12":  func() *experiments.Table { return experiments.Fig12ClientScaling(spec) },
		"fig13":  func() *experiments.Table { return experiments.Fig13CPUCores(spec) },
		"fig14":  func() *experiments.Table { return experiments.Fig14Skew(spec) },

		// Ablations beyond the paper's figures.
		"ablation-arch":     func() *experiments.Table { return experiments.AblationArchitecture(spec) },
		"ablation-inline":   func() *experiments.Table { return experiments.AblationInlineCutoff(spec) },
		"ablation-window":   func() *experiments.Table { return experiments.AblationWindow(spec) },
		"ablation-prefetch": func() *experiments.Table { return experiments.AblationPrefetch(spec) },
		"ablation-doorbell": func() *experiments.Table { return experiments.AblationDoorbell(spec) },
		"anatomy":           func() *experiments.Table { return experiments.LatencyAnatomy(spec) },
		"cpuuse":            func() *experiments.Table { return experiments.CPUUse(spec) },
		"symmetric":         func() *experiments.Table { return experiments.SymmetricStudy(spec) },
		"classical":         func() *experiments.Table { return experiments.Classical(spec) },

		// Fleet scale-out: single vs sharded vs replicated fleet, and
		// the fleet under a crash-restart schedule (docs/SCALEOUT.md).
		"fleet-bench": func() *experiments.Table {
			tbl, res := experiments.FleetBench(spec)
			if *benchJSON != "" {
				writeFile(*benchJSON, res.WriteJSON)
			}
			return tbl
		},
		"fleet-chaos": func() *experiments.Table { return experiments.FleetChaosScenario(spec) },

		// Overload: goodput and tail latency vs offered load, with and
		// without admission control + busy pushback + client AIMD
		// (docs/ROBUSTNESS.md).
		"overload": func() *experiments.Table {
			tbl, res := experiments.Overload(spec)
			if *overloadJSON != "" {
				writeFile(*overloadJSON, res.WriteJSON)
			}
			return tbl
		},

		// Connection scalability: the Figure 12 cliff at 100..10k clients
		// and the endpoint multiplexing tier that removes it
		// (docs/SCALABILITY.md).
		"clients-sweep": func() *experiments.Table {
			tbl, res := experiments.Clients(spec)
			if *clientsJSON != "" {
				writeFile(*clientsJSON, res.WriteJSON)
			}
			return tbl
		},

		// Durability: the fleet crashed mid-group-commit, warm WAL
		// rejoin vs cold re-replication (docs/DURABILITY.md).
		"durability": func() *experiments.Table {
			tbl, res := experiments.DurabilityScenario(spec)
			if *durabilityJSON != "" {
				writeFile(*durabilityJSON, res.WriteJSON)
			}
			return tbl
		},

		// Hot-key survival: the skewed workload with and without the
		// client near cache + leases + hot-key widening
		// (docs/CACHING.md).
		"hotkey": func() *experiments.Table {
			tbl, res := experiments.Hotkey(spec)
			if *hotkeyJSON != "" {
				writeFile(*hotkeyJSON, res.WriteJSON)
			}
			return tbl
		},

		// Consistency: the nemesis-driven linearizability gate —
		// first-ack divergence vs versioned read repair under a
		// generated chaos schedule (docs/ROBUSTNESS.md).
		"consistency": func() *experiments.Table {
			tbl, res := experiments.ConsistencyScenario(spec)
			if *consistencyJSON != "" {
				writeFile(*consistencyJSON, res.WriteJSON)
			}
			return tbl
		},

		// Robustness: HERD under a scripted fault schedule.
		"chaos": func() *experiments.Table {
			if *faultsFile == "" {
				return experiments.ChaosScenario(spec)
			}
			script, err := os.ReadFile(*faultsFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sched, err := fault.ParseSchedule(string(script))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return experiments.Chaos(spec, sched, 1)
		},
	}
	order := []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"ablation-arch", "ablation-inline", "ablation-window", "ablation-prefetch",
		"ablation-doorbell",
		"anatomy", "cpuuse", "symmetric", "classical", "chaos",
		"fleet-bench", "fleet-chaos", "overload", "clients-sweep", "durability",
		"hotkey", "consistency",
	}

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = order
	}
	for _, name := range want {
		fn, ok := targets[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown target %q; -list shows options\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tbl := fn()
		if *format == "csv" {
			tbl.FprintCSV(os.Stdout)
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("  [%s generated in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	if *metricsFile != "" {
		writeFile(*metricsFile, sink.Registry.WriteText)
	}
	if *traceFile != "" {
		writeFile(*traceFile, sink.Tracer.WriteChromeTrace)
	}
}

// writeFile writes one telemetry artifact via the given writer function.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
