// Command herdlint runs the repo's static-analysis suite: paper-level
// invariants the compiler cannot see, checked on every CI run.
//
//	go run ./cmd/herdlint ./...
//
// Analyzers (see docs/STATIC_ANALYSIS.md):
//
//	simtime       no wall clock / ambient randomness in the model
//	verbsmatrix   Table 1 transport/verb matrix, inline limit,
//	              selective-signaling discipline
//	uncheckedpost discarded verbs errors, unchecked Completion status
//	telemnames    literal telemetry names in the documented grammar
//	hotalloc      //herd:hotpath functions must be allocation-free
//	lockorder     mutex ordering cycles, callbacks/sends under a lock
//	docdrift      OBSERVABILITY/ARCHITECTURE tables match the code
//
// When the full suite runs, a stale-allow audit also reports every
// `//lint:allow` comment that suppressed nothing (label: staleallow).
// -fix applies the suggested fixes analyzers attach (stale-allow
// removal, telemetry name repairs, Sprintf-of-literal rewrites) and
// reports only what it could not fix.
//
// Exit status: 0 clean, 1 internal failure, 2 diagnostics reported —
// the same convention go vet uses. Select a subset of analyzers with
// -only, e.g. -only simtime,telemnames. The tool also speaks go vet's
// unitchecker protocol, so `go vet -vettool=$(which herdlint) ./...`
// works when a built binary is on PATH.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"herdkv/internal/lint/analysis"
	"herdkv/internal/lint/docdrift"
	"herdkv/internal/lint/fixer"
	"herdkv/internal/lint/hotalloc"
	"herdkv/internal/lint/loader"
	"herdkv/internal/lint/lockorder"
	"herdkv/internal/lint/simtime"
	"herdkv/internal/lint/telemnames"
	"herdkv/internal/lint/uncheckedpost"
	"herdkv/internal/lint/verbsmatrix"
)

// all is the suite, in reporting order.
var all = []*analysis.Analyzer{
	simtime.Analyzer,
	verbsmatrix.Analyzer,
	uncheckedpost.Analyzer,
	telemnames.Analyzer,
	hotalloc.Analyzer,
	lockorder.Analyzer,
	docdrift.Analyzer,
}

func main() {
	var (
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		maxInline = flag.Int("maxinline", verbsmatrix.MaxInline, "device inline limit assumed by verbsmatrix")
		list      = flag.Bool("list", false, "list analyzers and exit")
		fix       = flag.Bool("fix", false, "apply suggested fixes to the source files")
		version   = flag.String("V", "", "version flag for go vet -vettool handshake")
	)
	if len(os.Args) > 1 && os.Args[1] == "-flags" {
		// go vet probes the tool with -flags before anything else and
		// expects a JSON description of the flags it may forward.
		printFlagDefs()
		return
	}
	flag.Parse()
	if *version != "" {
		// go vet probes tools with -V=full and expects a line ending in
		// a buildID derived from the tool binary, so its cache keys
		// change when the tool does.
		printVersion(*version)
		return
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Printf("%-14s %s\n", "staleallow", "audit: //lint:allow comments that suppress nothing (full suite only)")
		return
	}
	verbsmatrix.MaxInline = *maxInline

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "herdlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(1)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		os.Exit(unitcheck(patterns[0], analyzers))
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "herdlint: %v\n", err)
		os.Exit(1)
	}

	var (
		fset       *token.FileSet
		findings   []finding
		usedAllows = map[string]bool{} // "file:line" of allow comments that fired
	)
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "herdlint: %s: %v\n", pkg.PkgPath, terr)
			os.Exit(1)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{
					pos:   loader.Position(pkg.Fset, d.Pos),
					msg:   fmt.Sprintf("%s [%s]", d.Message, name),
					fixes: d.SuggestedFixes,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "herdlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				os.Exit(1)
			}
			for pos := range pass.UsedAllows() {
				p := pkg.Fset.Position(pos)
				usedAllows[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = true
			}
		}
	}

	// Stale-allow audit: with the full suite loaded, an allow comment
	// that suppressed nothing is dead weight — either the finding it
	// silenced was fixed (delete it) or it names the wrong analyzer
	// (repair it). Running a subset would make every other analyzer's
	// allows look stale, so the audit needs the whole suite.
	if *only == "" {
		known := map[string]bool{"all": true}
		for _, a := range all {
			known[a.Name] = true
		}
		for _, pkg := range pkgs {
			for _, al := range analysis.Allows(pkg.Files) {
				p := pkg.Fset.Position(al.Pos)
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				switch {
				case !known[al.Name]:
					findings = append(findings, finding{
						pos:   loader.Position(pkg.Fset, al.Pos),
						msg:   fmt.Sprintf("//lint:allow names unknown analyzer %q (try -list) [staleallow]", al.Name),
						fixes: deleteComment(pkg.Fset, al),
					})
				case !usedAllows[key]:
					findings = append(findings, finding{
						pos:   loader.Position(pkg.Fset, al.Pos),
						msg:   fmt.Sprintf("stale //lint:allow %s: suppresses nothing [staleallow]", al.Name),
						fixes: deleteComment(pkg.Fset, al),
					})
				}
			}
		}
	}

	if *fix {
		applied, err := applyFixes(fset, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "herdlint: applying fixes: %v\n", err)
			os.Exit(1)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "herdlint: applied %d fix(es)\n", applied)
		}
		// Fixed findings are resolved; only the rest still fail the run.
		var rest []finding
		for _, f := range findings {
			if len(f.fixes) == 0 {
				rest = append(rest, f)
			}
		}
		findings = rest
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].msg < findings[j].msg
	})
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "herdlint: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
}

type finding struct {
	pos   string
	msg   string
	fixes []analysis.SuggestedFix
}

// applyFixes writes every finding's suggested fixes to disk.
func applyFixes(fset *token.FileSet, findings []finding) (int, error) {
	if fset == nil {
		return 0, nil
	}
	var fixes []analysis.SuggestedFix
	for _, f := range findings {
		fixes = append(fixes, f.fixes...)
	}
	return fixer.Apply(fset, fixes)
}

// deleteComment is the stale-allow autofix: remove the comment.
func deleteComment(fset *token.FileSet, al analysis.Allow) []analysis.SuggestedFix {
	return []analysis.SuggestedFix{{
		Message:   "delete the stale //lint:allow comment",
		TextEdits: []analysis.TextEdit{{Pos: al.Pos, End: al.End}},
	}}
}

// printVersion answers go vet's -V probe. For -V=full the line must
// end in "buildID=<hash>" where the hash identifies this binary's
// contents (the convention x/tools' unitchecker follows).
func printVersion(mode string) {
	if mode != "full" {
		fmt.Println("herdlint version devel")
		return
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "herdlint: %v\n", err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "herdlint: %v\n", err)
		os.Exit(1)
	}
	sum := sha256.Sum256(data)
	fmt.Printf("herdlint version devel comments-go-here buildID=%02x\n", string(sum[:]))
}

// printFlagDefs answers go vet's -flags probe (see
// cmd/go/internal/vet/vetflag.go): a JSON array of the flags the driver
// may pass through to the tool.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if bv, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = bv.IsBoolFlag()
		}
		defs = append(defs, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	out, _ := json.Marshal(defs)
	fmt.Printf("%s\n", out)
}
