// go vet -vettool support: when the go command drives herdlint, it
// invokes the binary once per package with a JSON config file argument
// (the unitchecker protocol). This file implements just enough of that
// protocol — read the config, type-check from the export data the go
// command already built, run the suite, write the (empty) facts file —
// for `go vet -vettool=<herdlint binary> ./...` to work.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"herdkv/internal/lint/analysis"
	"herdkv/internal/lint/loader"
)

// vetConfig mirrors the fields of the go command's vet.cfg that
// herdlint consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs analyzers on the single package described by cfgFile
// and returns the process exit code.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "herdlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "herdlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command caches analysis facts in the Vetx file; herdlint
	// has no cross-package facts, but the file must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "herdlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite checks shipped code only; tests are free to use the
		// wall clock (mirrors loader.Load, which never loads tests).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "herdlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "herdlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", loader.Position(fset, d.Pos), d.Message, name)
			exit = 2
		}
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "herdlint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	return exit
}
