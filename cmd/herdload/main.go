// Command herdload is a configurable load generator for the simulated
// key-value systems: pick a system, cluster, workload and fleet size,
// and it reports throughput, latency percentiles and hit rate from a
// steady-state measurement window.
//
//	herdload -system herd -clients 51 -get 0.95 -value 32 -duration 400
//	herdload -system pilaf -cluster susitna -zipf
//	herdload -system herd -sendmode -clients 400
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"herdkv"
)

func main() {
	var (
		system   = flag.String("system", "herd", "herd, pilaf, farm or farm-var")
		clusterF = flag.String("cluster", "apt", "apt or susitna")
		clients  = flag.Int("clients", 51, "client processes (3 per machine)")
		getFrac  = flag.Float64("get", 0.95, "GET fraction of the workload")
		value    = flag.Int("value", 32, "value size in bytes")
		keys     = flag.Uint64("keys", 48*1024, "keyspace size (preloaded)")
		zipf     = flag.Bool("zipf", false, "Zipf(.99) key popularity instead of uniform")
		window   = flag.Int("window", 4, "outstanding requests per client")
		cores    = flag.Int("cores", 6, "server processes / cores")
		sendMode = flag.Bool("sendmode", false, "HERD only: SEND/SEND architecture")
		loss     = flag.Float64("loss", 0, "uniform packet-loss probability on every link")
		retryUS  = flag.Int("retry", 0, "HERD only: retry timeout (simulated microseconds; 0 = no retries)")
		duration = flag.Int("duration", 400, "measurement window (simulated microseconds)")
		warmup   = flag.Int("warmup", 150, "warmup (simulated microseconds)")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		metricsF = flag.String("metrics", "", "write a metrics dump to this file after the run")
	)
	flag.Parse()

	var tel *herdkv.Telemetry
	if *metricsF != "" {
		tel = herdkv.NewTelemetry()
		herdkv.SetDefaultTelemetry(tel)
	}

	var spec herdkv.Spec
	switch strings.ToLower(*clusterF) {
	case "apt":
		spec = herdkv.Apt()
	case "susitna":
		spec = herdkv.Susitna()
	default:
		fail("unknown cluster %q", *clusterF)
	}

	r, err := run(options{
		system: strings.ToLower(*system), spec: spec,
		clients: *clients, getFrac: *getFrac, value: *value,
		keys: *keys, zipf: *zipf, window: *window, cores: *cores,
		sendMode: *sendMode,
		loss:     *loss,
		retry:    herdkv.Time(*retryUS) * herdkv.Microsecond,
		warmup:   herdkv.Time(*warmup) * herdkv.Microsecond,
		span:     herdkv.Time(*duration) * herdkv.Microsecond,
		seed:     *seed,
	})
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("system      %s on %s\n", *system, spec.Name)
	fmt.Printf("fleet       %d clients, window %d, %d server cores\n", *clients, *window, *cores)
	dist := "uniform"
	if *zipf {
		dist = "Zipf(.99)"
	}
	fmt.Printf("workload    %.0f%% GET, %d B values, %d keys, %s\n",
		*getFrac*100, *value, *keys, dist)
	fmt.Printf("throughput  %.2f Mops\n", r.mops)
	fmt.Printf("latency     mean %.2f us, p5 %.2f, p50 %.2f, p95 %.2f, p99 %.2f\n",
		r.mean, r.p5, r.p50, r.p95, r.p99)
	if r.gets > 0 {
		fmt.Printf("hit rate    %.2f%% over %d GETs\n", r.hitRate*100, r.gets)
	}
	if r.haveReliability {
		fmt.Printf("reliability %d retries, %d duplicate and %d corrupt responses discarded, %d timed-out ops, %d reconnects\n",
			r.retried, r.dups, r.corrupt, r.failed, r.reconnects)
	}
	if *metricsF != "" {
		f, err := os.Create(*metricsF)
		if err != nil {
			fail("%v", err)
		}
		if err := tel.Registry.WriteText(f); err != nil {
			fail("%v", err)
		}
		f.Close()
		fmt.Printf("metrics     written to %s\n", *metricsF)
	}
	if r.verifyErr > 0 {
		fmt.Printf("VERIFY FAIL %d mismatched GET values\n", r.verifyErr)
		os.Exit(1)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
