package main

import (
	"fmt"
	"sort"

	"herdkv"
)

type options struct {
	system   string
	spec     herdkv.Spec
	clients  int
	getFrac  float64
	value    int
	keys     uint64
	zipf     bool
	window   int
	cores    int
	sendMode bool
	loss     float64     // injected uniform packet-loss rate
	retry    herdkv.Time // HERD retry timeout (0 = no retries)
	warmup   herdkv.Time
	span     herdkv.Time
	seed     int64
}

type report struct {
	mops                    float64
	mean, p5, p50, p95, p99 float64
	hitRate                 float64
	gets                    uint64
	verifyErr               uint64

	// Reliability counters (HERD only), aggregated across clients.
	retried, dups, corrupt uint64
	failed, reconnects     uint64
	haveReliability        bool
}

// doer abstracts the per-system client operations.
type doer struct {
	get func(key herdkv.Key, done func(ok bool, value []byte, lat herdkv.Time)) error
	put func(key herdkv.Key, value []byte, done func(ok bool, lat herdkv.Time)) error
}

func run(o options) (report, error) {
	o.spec.Link.LossRate = o.loss
	machines := 1 + (o.clients+2)/3
	cl := herdkv.NewCluster(o.spec, machines, o.seed)
	clientMachine := func(i int) *herdkv.Machine { return cl.Machine(1 + i/3) }

	preloadVal := func(k herdkv.Key) []byte { return herdkv.ExpectedValue(k, o.value) }
	doers := make([]doer, o.clients)
	var herdClients []*herdkv.Client

	switch o.system {
	case "herd":
		cfg := herdkv.DefaultConfig()
		cfg.NS = o.cores
		cfg.MaxClients = o.clients
		cfg.Window = o.window
		cfg.UseSendRequests = o.sendMode
		cfg.RetryTimeout = o.retry
		cfg.Mica = herdkv.MicaConfig{
			IndexBuckets: int(o.keys) / 4, BucketSlots: 8,
			LogBytes: int(o.keys) * (18 + o.value) * 2 / o.cores,
		}
		srv, err := herdkv.NewServer(cl.Machine(0), cfg)
		if err != nil {
			return report{}, err
		}
		for k := uint64(0); k < o.keys; k++ {
			key := herdkv.KeyFromUint64(k)
			if err := srv.Preload(key, preloadVal(key)); err != nil {
				return report{}, err
			}
		}
		for i := range doers {
			c, err := srv.ConnectClient(clientMachine(i))
			if err != nil {
				return report{}, err
			}
			herdClients = append(herdClients, c)
			doers[i] = doer{
				get: func(k herdkv.Key, done func(bool, []byte, herdkv.Time)) error {
					return c.Get(k, func(r herdkv.Result) { done(r.Status == herdkv.StatusHit, r.Value, r.Latency) })
				},
				put: func(k herdkv.Key, v []byte, done func(bool, herdkv.Time)) error {
					return c.Put(k, v, func(r herdkv.Result) { done(r.Status == herdkv.StatusHit, r.Latency) })
				},
			}
		}

	case "pilaf":
		cfg := herdkv.PilafConfig{
			Buckets:     int(o.keys) * 4 / 3,
			ExtentBytes: int(o.keys) * (18 + o.value) * 4,
			Cores:       o.cores,
			Window:      o.window,
		}
		srv, err := herdkv.NewPilafServer(cl.Machine(0), cfg)
		if err != nil {
			return report{}, err
		}
		for k := uint64(0); k < o.keys; k++ {
			key := herdkv.KeyFromUint64(k)
			if err := srv.Insert(key, preloadVal(key)); err != nil {
				return report{}, err
			}
		}
		for i := range doers {
			c, err := srv.ConnectClient(clientMachine(i))
			if err != nil {
				return report{}, err
			}
			doers[i] = doer{
				get: func(k herdkv.Key, done func(bool, []byte, herdkv.Time)) error {
					return c.Get(k, func(r herdkv.Result) { done(r.Status == herdkv.StatusHit, r.Value, r.Latency) })
				},
				put: func(k herdkv.Key, v []byte, done func(bool, herdkv.Time)) error {
					return c.Put(k, v, func(r herdkv.Result) { done(r.Status == herdkv.StatusHit, r.Latency) })
				},
			}
		}

	case "farm", "farm-var":
		cfg := herdkv.FarmConfig{
			Mode:        herdkv.FarmInline,
			Buckets:     int(o.keys) * 4,
			ValueSize:   o.value,
			ExtentBytes: int(o.keys) * (o.value + 8) * 4,
			Cores:       o.cores,
			Window:      o.window,
		}
		if o.system == "farm-var" {
			cfg.Mode = herdkv.FarmOutOfTable
		}
		srv, err := herdkv.NewFarmServer(cl.Machine(0), cfg)
		if err != nil {
			return report{}, err
		}
		for k := uint64(0); k < o.keys; k++ {
			key := herdkv.KeyFromUint64(k)
			if err := srv.Insert(key, preloadVal(key)); err != nil {
				return report{}, err
			}
		}
		for i := range doers {
			c, err := srv.ConnectClient(clientMachine(i))
			if err != nil {
				return report{}, err
			}
			doers[i] = doer{
				get: func(k herdkv.Key, done func(bool, []byte, herdkv.Time)) error {
					return c.Get(k, func(r herdkv.Result) { done(r.Status == herdkv.StatusHit, r.Value, r.Latency) })
				},
				put: func(k herdkv.Key, v []byte, done func(bool, herdkv.Time)) error {
					return c.Put(k, v, func(r herdkv.Result) { done(r.Status == herdkv.StatusHit, r.Latency) })
				},
			}
		}

	default:
		return report{}, fmt.Errorf("unknown system %q (herd, pilaf, farm, farm-var)", o.system)
	}

	// Drive closed loops, staggered.
	var completed, gets, hits, verifyErr uint64
	var lats []float64
	measuring := false
	stagger := 40 * herdkv.Microsecond / herdkv.Time(o.clients+1)
	for i := range doers {
		i := i
		d := doers[i]
		wcfg := herdkv.Workload{
			GetFraction: o.getFrac, Keys: o.keys, ValueSize: o.value,
			Seed: o.seed + int64(i)*1000,
		}
		if o.zipf {
			wcfg.ZipfTheta = 0.99
		}
		gen := herdkv.NewWorkload(wcfg)
		nop := 0
		var loop func()
		loop = func() {
			op := gen.Next()
			nop++
			verify := nop%64 == 0
			if op.IsGet {
				d.get(op.Key, func(ok bool, v []byte, lat herdkv.Time) {
					completed++
					if measuring {
						gets++
						if ok {
							hits++
						}
						lats = append(lats, lat.Microseconds())
					}
					if verify && ok {
						want := herdkv.ExpectedValue(op.Key, o.value)
						if string(v) != string(want) {
							verifyErr++
						}
					}
					loop()
				})
			} else {
				// PUT latencies are excluded from the percentile report
				// (it summarizes the GET path).
				d.put(op.Key, herdkv.ExpectedValue(op.Key, o.value), func(bool, herdkv.Time) {
					completed++
					loop()
				})
			}
		}
		cl.Eng.At(herdkv.Time(i)*stagger, func() {
			for w := 0; w < o.window; w++ {
				loop()
			}
		})
	}

	cl.Eng.RunFor(o.warmup)
	measuring = true
	start := completed
	cl.Eng.RunFor(o.span)

	r := report{
		mops:      float64(completed-start) / o.span.Seconds() / 1e6,
		gets:      gets,
		verifyErr: verifyErr,
	}
	if gets > 0 {
		r.hitRate = float64(hits) / float64(gets)
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		sum := 0.0
		for _, v := range lats {
			sum += v
		}
		r.mean = sum / float64(len(lats))
		pct := func(p float64) float64 {
			i := int(p / 100 * float64(len(lats)))
			if i >= len(lats) {
				i = len(lats) - 1
			}
			return lats[i]
		}
		r.p5, r.p50, r.p95, r.p99 = pct(5), pct(50), pct(95), pct(99)
	}
	for _, c := range herdClients {
		r.haveReliability = true
		r.retried += c.Retries()
		r.dups += c.DupResponses()
		r.corrupt += c.CorruptResponses()
		r.failed += c.Failed()
		r.reconnects += c.Reconnects()
	}
	return r, nil
}
