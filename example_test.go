package herdkv_test

import (
	"fmt"

	"herdkv"
)

// Example shows the minimal HERD session: one server machine, one
// client, a PUT and a GET across the simulated fabric.
func Example() {
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 2
	cfg.MaxClients = 1
	srv, _ := herdkv.NewServer(cl.Machine(0), cfg)
	cli, _ := srv.ConnectClient(cl.Machine(1))

	key := herdkv.KeyFromUint64(42)
	cli.Put(key, []byte("hello"), func(herdkv.Result) {
		cli.Get(key, func(r herdkv.Result) {
			fmt.Printf("status=%v value=%s\n", r.Status, r.Value)
		})
	})
	cl.Eng.Run()
	// Output: status=hit value=hello
}

// ExampleClient_Delete demonstrates the GET/PUT/DELETE interface.
func ExampleClient_Delete() {
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 1
	cfg.MaxClients = 1
	srv, _ := herdkv.NewServer(cl.Machine(0), cfg)
	cli, _ := srv.ConnectClient(cl.Machine(1))

	key := herdkv.KeyFromUint64(7)
	cli.Put(key, []byte("temp"), func(herdkv.Result) {
		cli.Delete(key, func(r herdkv.Result) {
			fmt.Printf("delete=%v\n", r.Status)
			cli.Get(key, func(r herdkv.Result) {
				fmt.Printf("get=%v\n", r.Status)
			})
		})
	})
	cl.Eng.Run()
	// Output:
	// delete=hit
	// get=miss
}

// ExampleNewWorkload drives a HERD client with the paper's
// read-intensive workload generator.
func ExampleNewWorkload() {
	gen := herdkv.NewWorkload(herdkv.ReadIntensive(1000, 32, 1))
	gets := 0
	n := 100000
	for i := 0; i < n; i++ {
		if gen.Next().IsGet {
			gets++
		}
	}
	fmt.Printf("GET share ~%d%%\n", int(float64(gets)/float64(n)*100+0.5))
	// Output: GET share ~95%
}

// ExampleServer_Preload warms a deployment before measuring, as the
// experiment harness does.
func ExampleServer_Preload() {
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 1
	cfg.MaxClients = 1
	srv, _ := herdkv.NewServer(cl.Machine(0), cfg)
	key := herdkv.KeyFromUint64(9)
	srv.Preload(key, []byte("warm"))

	cli, _ := srv.ConnectClient(cl.Machine(1))
	cli.Get(key, func(r herdkv.Result) {
		fmt.Printf("%s\n", r.Value)
	})
	cl.Eng.Run()
	// Output: warm
}
