// Baselines: a head-to-head of the three designs the paper compares —
// HERD (WRITE+SEND, one round trip), Pilaf-em-OPT (cuckoo READs, ~2.6
// round trips per GET) and FaRM-em (one big hopscotch-neighborhood READ)
// — on the same read-intensive workload, printing per-system throughput
// and latency from the same simulated cluster.
//
// All three systems are driven through the shared herdkv.KV client
// interface: the measurement loop below contains no per-system code.
package main

import (
	"fmt"
	"log"

	"herdkv"
)

const (
	nClients  = 12
	keys      = 8192
	valueSize = 32
	opsPerCli = 400
)

type stats struct {
	ops  int
	lat  herdkv.Time
	hits int
}

func main() {
	fmt.Printf("%-14s %10s %12s %9s\n", "system", "Mops", "mean_us", "hit%")

	for _, system := range []string{"HERD", "Pilaf-em-OPT", "FaRM-em"} {
		mops, mean, hit := run(system)
		fmt.Printf("%-14s %10.2f %12.2f %8.1f%%\n", system, mops, mean, hit)
	}
	fmt.Println("\nHERD's single round trip wins on both axes; FaRM-em's one-READ GETs")
	fmt.Println("beat Pilaf-em's multi-READ cuckoo walk, as in the paper's Figure 11.")
}

// build constructs the named system and returns one KV client per
// client machine. This is the only per-system code in the example.
func build(cl *herdkv.Cluster, system string) []herdkv.KV {
	clients := make([]herdkv.KV, nClients)
	switch system {
	case "HERD":
		cfg := herdkv.DefaultConfig()
		cfg.NS = 6
		cfg.MaxClients = nClients
		srv, err := herdkv.NewServer(cl.Machine(0), cfg)
		if err != nil {
			log.Fatal(err)
		}
		preload(srv.Preload)
		for i := range clients {
			c, err := srv.ConnectClient(cl.Machine(1 + i))
			if err != nil {
				log.Fatal(err)
			}
			clients[i] = c
		}

	case "Pilaf-em-OPT":
		cfg := herdkv.DefaultPilafConfig()
		cfg.Buckets = keys * 2
		srv, err := herdkv.NewPilafServer(cl.Machine(0), cfg)
		if err != nil {
			log.Fatal(err)
		}
		preload(srv.Insert)
		for i := range clients {
			c, err := srv.ConnectClient(cl.Machine(1 + i))
			if err != nil {
				log.Fatal(err)
			}
			clients[i] = c
		}

	case "FaRM-em":
		cfg := herdkv.DefaultFarmConfig()
		cfg.Buckets = keys * 4
		cfg.ValueSize = valueSize
		srv, err := herdkv.NewFarmServer(cl.Machine(0), cfg)
		if err != nil {
			log.Fatal(err)
		}
		preload(srv.Insert)
		for i := range clients {
			c, err := srv.ConnectClient(cl.Machine(1 + i))
			if err != nil {
				log.Fatal(err)
			}
			clients[i] = c
		}
	}
	return clients
}

func run(system string) (mops, meanUS, hitPct float64) {
	cl := herdkv.NewCluster(herdkv.Apt(), 1+nClients, 11)
	gen := herdkv.NewWorkload(herdkv.ReadIntensive(keys, valueSize, 5))
	clients := build(cl, system)

	var s stats
	var drive func(i, n int)
	drive = func(i, n int) {
		if n >= opsPerCli {
			return
		}
		op := gen.Next()
		done := func(r herdkv.Result) {
			s.ops++
			s.lat += r.Latency
			if r.Status == herdkv.StatusHit {
				s.hits++
			}
			drive(i, n+1)
		}
		var err error
		if op.IsGet {
			err = clients[i].Get(op.Key, done)
		} else {
			err = clients[i].Put(op.Key, herdkv.ExpectedValue(op.Key, valueSize), done)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	startT := cl.Eng.Now()
	for i := 0; i < nClients; i++ {
		for w := 0; w < 4; w++ {
			drive(i, 0)
		}
	}
	cl.Eng.Run()
	elapsed := cl.Eng.Now() - startT

	return float64(s.ops) / elapsed.Seconds() / 1e6,
		(s.lat / herdkv.Time(s.ops)).Microseconds(),
		100 * float64(s.hits) / float64(s.ops)
}

// preload inserts every key via the provided server-side insert.
func preload(insert func(herdkv.Key, []byte) error) {
	for k := uint64(0); k < keys; k++ {
		key := herdkv.KeyFromUint64(k)
		if err := insert(key, herdkv.ExpectedValue(key, valueSize)); err != nil {
			log.Fatal(err)
		}
	}
}
