// Quickstart: bring up a HERD server and one client on a simulated Apt
// cluster, PUT a handful of items, GET them back, and print the
// single-round-trip latencies the design is built around.
package main

import (
	"fmt"
	"log"

	"herdkv"
)

func main() {
	// One server machine, one client machine, 56 Gbps InfiniBand.
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)

	cfg := herdkv.DefaultConfig()
	cfg.NS = 4         // four server processes
	cfg.MaxClients = 4 // request region sized for up to 4 clients
	srv, err := herdkv.NewServer(cl.Machine(0), cfg)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		log.Fatal(err)
	}

	items := map[string]string{
		"user:1001": "alice",
		"user:1002": "bob",
		"user:1003": "carol",
	}

	// Issue PUTs; each key is identified by a 16-byte keyhash.
	keyOf := func(s string) herdkv.Key {
		var h uint64
		for _, c := range s {
			h = h*31 + uint64(c)
		}
		return herdkv.KeyFromUint64(h)
	}
	for name, val := range items {
		name, val := name, val
		err := cli.Put(keyOf(name), []byte(val), func(r herdkv.Result) {
			fmt.Printf("PUT %-10s status=%-5v latency=%.2f us\n", name, r.Status, r.Latency.Microseconds())
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	cl.Eng.Run() // drain the virtual clock

	// Read them back.
	for name, want := range items {
		name, want := name, want
		cli.Get(keyOf(name), func(r herdkv.Result) {
			status := "MISS"
			if r.Status == herdkv.StatusHit && string(r.Value) == want {
				status = "HIT"
			}
			fmt.Printf("GET %-10s %-4s value=%-6q latency=%.2f us\n",
				name, status, r.Value, r.Latency.Microseconds())
		})
	}
	cl.Eng.Run()

	gets, hits, puts := srv.Stats()
	fmt.Printf("\nserver: %d GETs (%d hits), %d PUTs, all in one network round trip each\n",
		gets, hits, puts)
}
