// Scaleout: when one HERD server's ~26 Mops is not enough, shard keys
// across a fleet of servers, memcached-style. This example runs the
// same closed-loop workload against 1, 2 and 4 HERD shards and prints
// the aggregate throughput, demonstrating near-linear scale-out on top
// of the paper's single-server design.
package main

import (
	"fmt"
	"log"

	"herdkv"
)

const (
	clientsPerShard = 8
	keys            = 16384
	valueSize       = 32
	measure         = 300 * herdkv.Microsecond
)

func main() {
	fmt.Printf("%-8s %12s %14s\n", "shards", "Mops", "Mops/shard")
	base := 0.0
	for _, shards := range []int{1, 2, 4} {
		mops := run(shards)
		if shards == 1 {
			base = mops
		}
		fmt.Printf("%-8d %12.1f %14.1f\n", shards, mops, mops/float64(shards))
		_ = base
	}
	fmt.Println("\nEach shard is an independent HERD server; clients route by keyhash.")
}

func run(shards int) float64 {
	nClients := shards * clientsPerShard
	cl := herdkv.NewCluster(herdkv.Apt(), shards+nClients, 1)

	cfg := herdkv.DefaultConfig()
	cfg.MaxClients = nClients
	cfg.Mica = herdkv.MicaConfig{IndexBuckets: keys / 2, BucketSlots: 8, LogBytes: keys * 64}
	servers := make([]*herdkv.Machine, shards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	d, err := herdkv.NewShardedDeployment(servers, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		key := herdkv.KeyFromUint64(k)
		if err := d.Preload(key, herdkv.ExpectedValue(key, valueSize)); err != nil {
			log.Fatal(err)
		}
	}

	var completed uint64
	stop := false
	for i := 0; i < nClients; i++ {
		sc, err := d.ConnectClient(cl.Machine(shards + i))
		if err != nil {
			log.Fatal(err)
		}
		gen := herdkv.NewWorkload(herdkv.ReadIntensive(keys, valueSize, int64(i+1)))
		var loop func()
		loop = func() {
			op := gen.Next()
			if op.IsGet {
				sc.Get(op.Key, func(herdkv.Result) {
					completed++
					if !stop {
						loop()
					}
				})
			} else {
				sc.Put(op.Key, herdkv.ExpectedValue(op.Key, valueSize), func(herdkv.Result) {
					completed++
					if !stop {
						loop()
					}
				})
			}
		}
		for w := 0; w < cfg.Window; w++ {
			loop()
		}
	}

	cl.Eng.RunFor(100 * herdkv.Microsecond) // warm up
	start := completed
	cl.Eng.RunFor(measure)
	stop = true
	return float64(completed-start) / measure.Seconds() / 1e6
}
