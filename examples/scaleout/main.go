// Scaleout: when one HERD server's ~26 Mops is not enough, spread keys
// across a fleet of servers. This example compares the two scale-out
// shapes herdkv provides on the same closed-loop workload:
//
//   - ShardedDeployment: static modulo sharding, no replication — the
//     classic memcached fleet.
//   - FleetDeployment: a consistent-hash ring with R=2 replication.
//     The demo crashes one shard mid-run (reads fail over to replicas
//     with zero failed operations) and then grows the fleet by one
//     shard with live background key migration.
//
// Both are driven through the same herdkv.KV client interface.
package main

import (
	"fmt"
	"log"

	"herdkv"
)

const (
	clientsPerShard = 8
	keys            = 16384
	valueSize       = 32
	measure         = 300 * herdkv.Microsecond
)

func main() {
	fmt.Printf("%-10s %-8s %12s %14s\n", "mode", "shards", "Mops", "Mops/shard")
	for _, shards := range []int{1, 2, 4} {
		mops := runSharded(shards)
		fmt.Printf("%-10s %-8d %12.1f %14.1f\n", "sharded", shards, mops, mops/float64(shards))
	}
	for _, shards := range []int{2, 4} {
		mops := runFleet(shards)
		fmt.Printf("%-10s %-8d %12.1f %14.1f\n", "fleet R=2", shards, mops, mops/float64(shards))
	}
	fmt.Println("\nFleet replication costs write fan-out but keeps every key readable")
	fmt.Println("through a shard crash. Failover and migration in action:")
	failoverDemo()
}

// drive runs a closed-loop read-intensive workload over clients and
// returns steady-state Mops. It only sees the KV interface.
func drive(cl *herdkv.Cluster, clients []herdkv.KV, window int) float64 {
	var completed uint64
	stop := false
	for i, c := range clients {
		c := c
		gen := herdkv.NewWorkload(herdkv.ReadIntensive(keys, valueSize, int64(i+1)))
		var loop func()
		loop = func() {
			op := gen.Next()
			done := func(herdkv.Result) {
				completed++
				if !stop {
					loop()
				}
			}
			if op.IsGet {
				c.Get(op.Key, done)
			} else {
				c.Put(op.Key, herdkv.ExpectedValue(op.Key, valueSize), done)
			}
		}
		for w := 0; w < window; w++ {
			loop()
		}
	}
	cl.Eng.RunFor(100 * herdkv.Microsecond) // warm up
	start := completed
	cl.Eng.RunFor(measure)
	stop = true
	return float64(completed-start) / measure.Seconds() / 1e6
}

func herdConfig(nClients int) herdkv.Config {
	cfg := herdkv.DefaultConfig()
	cfg.MaxClients = nClients
	cfg.Mica = herdkv.MicaConfig{IndexBuckets: keys / 2, BucketSlots: 8, LogBytes: keys * 64}
	return cfg
}

func runSharded(shards int) float64 {
	nClients := shards * clientsPerShard
	cl := herdkv.NewCluster(herdkv.Apt(), shards+nClients, 1)
	servers := make([]*herdkv.Machine, shards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	d, err := herdkv.NewShardedDeployment(servers, herdConfig(nClients))
	if err != nil {
		log.Fatal(err)
	}
	preload(d.Preload)
	clients := make([]herdkv.KV, nClients)
	for i := range clients {
		if clients[i], err = d.ConnectClient(cl.Machine(shards + i)); err != nil {
			log.Fatal(err)
		}
	}
	return drive(cl, clients, 4)
}

func runFleet(shards int) float64 {
	nClients := shards * clientsPerShard
	cl := herdkv.NewCluster(herdkv.Apt(), shards+nClients, 1)
	servers := make([]*herdkv.Machine, shards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	fcfg := herdkv.DefaultFleetConfig()
	fcfg.Herd = herdConfig(nClients)
	d, err := herdkv.NewFleet(servers, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	preload(d.Preload)
	clients := make([]herdkv.KV, nClients)
	for i := range clients {
		if clients[i], err = d.ConnectClient(cl.Machine(shards + i)); err != nil {
			log.Fatal(err)
		}
	}
	return drive(cl, clients, 4)
}

// failoverDemo crashes one shard of a 4-shard R=2 fleet under load,
// shows reads surviving via replica failover, then restarts it and
// grows the fleet by a fifth shard with background migration.
func failoverDemo() {
	const shards = 4
	cl := herdkv.NewCluster(herdkv.Apt(), shards+2, 1)
	servers := make([]*herdkv.Machine, shards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	fcfg := herdkv.DefaultFleetConfig()
	fcfg.Herd = herdConfig(1)
	// Durability makes the crashed shard's restart warm: its MICA
	// partitions are DRAM and die with the crash, but the write-ahead
	// log replays them back before the shard rejoins the ring.
	fcfg.Herd.Durability = herdkv.DurabilityGroupCommit
	d, err := herdkv.NewFleet(servers, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	preload(d.Preload)
	c, err := d.ConnectClient(cl.Machine(shards))
	if err != nil {
		log.Fatal(err)
	}

	// Read every key while shard 0 is down: replicas serve its share.
	d.Server(0).Crash()
	hits := 0
	for k := uint64(0); k < 2048; k++ {
		c.Get(herdkv.KeyFromUint64(k), func(r herdkv.Result) {
			if r.Status == herdkv.StatusHit {
				hits++
			}
		})
	}
	cl.Eng.Run()
	fmt.Printf("  shard 0 down: %d/2048 reads served (reroutes=%d, replica reads=%d, failed=%d)\n",
		hits, c.Reroutes(), c.ReplicaReads(), c.Failed())
	d.Server(0).Restart()

	// Grow the fleet: add a fifth shard and wait out the migration.
	migrated := false
	id, err := d.AddShard(cl.Machine(shards+1), func() { migrated = true })
	if err != nil {
		log.Fatal(err)
	}
	cl.Eng.Run()
	fmt.Printf("  added shard %d: migration complete=%v, ring=%v\n", id, migrated, d.Ring().Shards())
	hits = 0
	for k := uint64(0); k < 2048; k++ {
		c.Get(herdkv.KeyFromUint64(k), func(r herdkv.Result) {
			if r.Status == herdkv.StatusHit {
				hits++
			}
		})
	}
	cl.Eng.Run()
	fmt.Printf("  post-migration: %d/2048 reads served, failed=%d\n", hits, c.Failed())
}

// preload inserts every key via the provided deployment preload.
func preload(insert func(herdkv.Key, []byte) error) {
	for k := uint64(0); k < keys; k++ {
		key := herdkv.KeyFromUint64(k)
		if err := insert(key, herdkv.ExpectedValue(key, valueSize)); err != nil {
			log.Fatal(err)
		}
	}
}
