// Sequencer: globally unique, monotonically increasing IDs via RDMA
// fetch-and-add — the classic one-sided atomics application. Several
// client machines increment one 8-byte counter in the server's memory
// with zero server CPU involvement.
//
// The example also shows why high-rate systems avoid atomics: the NIC's
// serializing read-modify-write caps the rate at a few Mops, an order
// of magnitude below HERD's request rate on the same hardware model.
package main

import (
	"fmt"
	"log"

	"herdkv"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

const (
	clients   = 6
	idsEach   = 400
	counterMR = 64
)

func main() {
	cl := herdkv.NewCluster(herdkv.Apt(), 1+clients, 1)
	server := cl.Machine(0)
	counter := server.Verbs.RegisterMR(counterMR)

	issued := make(map[uint64]int) // id -> how many times handed out
	total := 0

	for c := 0; c < clients; c++ {
		m := cl.Machine(1 + c)
		qp := m.Verbs.CreateQP(wire.RC)
		srvQP := server.Verbs.CreateQP(wire.RC)
		if err := verbs.Connect(qp, srvQP); err != nil {
			log.Fatal(err)
		}
		local := m.Verbs.RegisterMR(8)

		var next func(remaining int)
		next = func(remaining int) {
			if remaining == 0 {
				return
			}
			err := qp.PostAtomic(verbs.AtomicWR{
				Kind:   verbs.FetchAdd,
				Remote: counter,
				Local:  local,
				Add:    1,
			})
			if err != nil {
				log.Fatal(err)
			}
			// The completion handler (below) chains the next request.
			_ = remaining
		}
		remaining := idsEach
		qp.SendCQ().SetHandler(func(comp verbs.Completion) {
			id := le64(local.Bytes())
			issued[id]++
			total++
			remaining--
			if remaining > 0 {
				next(remaining)
			}
		})
		next(remaining)
	}

	start := cl.Eng.Now()
	cl.Eng.Run()
	elapsed := cl.Eng.Now() - start

	dups := 0
	for _, n := range issued {
		if n > 1 {
			dups++
		}
	}
	fmt.Printf("IDs issued:    %d by %d clients\n", total, clients)
	fmt.Printf("unique:        %d (duplicates: %d)\n", len(issued), dups)
	fmt.Printf("rate:          %.2f M IDs/s (the atomics ceiling)\n",
		float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("final counter: %d\n", le64(counter.Bytes()))
	fmt.Println("\nFetch-and-add costs no server CPU, but the NIC's atomic unit")
	fmt.Println("serializes every increment — HERD-style request/reply reaches 10x")
	fmt.Println("this rate by spending server cores instead.")
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
