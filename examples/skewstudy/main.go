// Skewstudy: Section 5.7's claim, demonstrated — HERD delivers its full
// throughput even under a Zipf(.99) workload, because (1) hashing keys
// scrambles hot items across the EREW partitions and (2) the cores share
// the NIC, so lightly loaded cores leave headroom the hot cores can use.
//
// The example runs the same client fleet twice (uniform, then skewed),
// prints total and per-core throughput, and contrasts the key-popularity
// skew with the much milder per-core load skew.
package main

import (
	"fmt"
	"log"
	"sort"

	"herdkv"
)

const (
	nClients  = 15
	keys      = 1 << 18
	valueSize = 32
	runFor    = 400 * herdkv.Microsecond
)

func main() {
	uni := run(false)
	zipf := run(true)

	fmt.Printf("%-22s %12s %12s\n", "", "uniform", "Zipf(.99)")
	fmt.Printf("%-22s %9.1f M %9.1f M\n", "total throughput", uni.total, zipf.total)
	for i := range uni.perCore {
		fmt.Printf("core %-17d %9.2f M %9.2f M\n", i+1, uni.perCore[i], zipf.perCore[i])
	}
	fmt.Printf("%-22s %9.2fx %9.2fx\n", "core max/min ratio", ratio(uni.perCore), ratio(zipf.perCore))
	fmt.Println("\nUnder Zipf(.99) the hottest key gets orders of magnitude more traffic")
	fmt.Println("than the average, yet the busiest core sees well under 2x the least")
	fmt.Println("busy one — partitioned-but-shared-NIC absorbs the skew (Figure 14).")
}

type outcome struct {
	total   float64
	perCore []float64
}

func run(skewed bool) outcome {
	cl := herdkv.NewCluster(herdkv.Apt(), 1+nClients, 21)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 6
	cfg.MaxClients = nClients
	cfg.Mica = herdkv.MicaConfig{IndexBuckets: keys / 4, BucketSlots: 8, LogBytes: keys * 16}
	srv, err := herdkv.NewServer(cl.Machine(0), cfg)
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		key := herdkv.KeyFromUint64(k)
		if err := srv.Preload(key, herdkv.ExpectedValue(key, valueSize)); err != nil {
			log.Fatal(err)
		}
	}

	wl := herdkv.ReadIntensive(keys, valueSize, 9)
	if skewed {
		wl = herdkv.Skewed(keys, valueSize, 9)
	}

	stop := false
	for i := 0; i < nClients; i++ {
		cli, err := srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			log.Fatal(err)
		}
		gen := herdkv.NewWorkload(wl)
		var loop func()
		loop = func() {
			if stop {
				return
			}
			op := gen.Next()
			if op.IsGet {
				cli.Get(op.Key, func(herdkv.Result) { loop() })
			} else {
				cli.Put(op.Key, herdkv.ExpectedValue(op.Key, valueSize),
					func(herdkv.Result) { loop() })
			}
		}
		for w := 0; w < cfg.Window; w++ {
			loop()
		}
	}

	// Warm up, then measure per-partition service counts.
	cl.Eng.RunFor(100 * herdkv.Microsecond)
	before := snapshot(srv, cfg.NS)
	cl.Eng.RunFor(runFor)
	after := snapshot(srv, cfg.NS)
	stop = true

	out := outcome{perCore: make([]float64, cfg.NS)}
	for i := range out.perCore {
		out.perCore[i] = float64(after[i]-before[i]) / runFor.Seconds() / 1e6
		out.total += out.perCore[i]
	}
	return out
}

func snapshot(srv *herdkv.Server, ns int) []uint64 {
	out := make([]uint64, ns)
	for p := 0; p < ns; p++ {
		st := srv.Partition(p).Stats()
		out[p] = st.Gets + st.Puts
	}
	return out
}

func ratio(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if s[0] == 0 {
		return 0
	}
	return s[len(s)-1] / s[0]
}
