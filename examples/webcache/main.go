// Webcache: HERD as a memcached-style look-aside cache in front of a
// slow backing store — the deployment the paper's introduction motivates.
//
// A fleet of web frontends serves page requests. Each request needs a
// user profile: the frontend GETs it from HERD; on a miss it pays a
// simulated database lookup (hundreds of microseconds) and PUTs the
// result back. The example reports hit rate and the latency gap between
// cache hits and database fills, and demonstrates the cache's lossy
// eviction behavior under a working set larger than the cache.
package main

import (
	"fmt"
	"log"

	"herdkv"
)

const (
	frontends   = 3
	users       = 4000
	requests    = 1200
	dbLatency   = 300 * herdkv.Microsecond
	profileSize = 120
)

func main() {
	cl := herdkv.NewCluster(herdkv.Apt(), 1+frontends, 7)

	cfg := herdkv.DefaultConfig()
	cfg.NS = 4
	cfg.MaxClients = frontends
	// Deliberately tiny cache: the index holds only part of the user
	// base, so misses and evictions actually happen.
	cfg.Mica = herdkv.MicaConfig{IndexBuckets: 256, BucketSlots: 4, LogBytes: 1 << 18}
	srv, err := herdkv.NewServer(cl.Machine(0), cfg)
	if err != nil {
		log.Fatal(err)
	}

	clients := make([]*herdkv.Client, frontends)
	for i := range clients {
		if clients[i], err = srv.ConnectClient(cl.Machine(1 + i)); err != nil {
			log.Fatal(err)
		}
	}

	profile := func(user uint64) []byte {
		p := make([]byte, profileSize)
		copy(p, fmt.Sprintf("profile-of-user-%d", user))
		return p
	}

	var (
		served            int
		hits              int
		hitLat, fillLat   herdkv.Time
		hitCount, fillCnt int
	)

	// Each frontend serves a stream of page requests over a Zipf-ish
	// popular-user distribution (reusing the paper's workload machinery).
	gen := herdkv.NewWorkload(herdkv.Skewed(users, profileSize, 3))

	var serveNext func(f int)
	serveNext = func(f int) {
		if served >= requests {
			return
		}
		served++
		op := gen.Next()
		user := op.Rank
		key := herdkv.KeyFromUint64(user)
		start := cl.Eng.Now()
		clients[f].Get(key, func(r herdkv.Result) {
			if r.Status == herdkv.StatusHit {
				hits++
				hitLat += cl.Eng.Now() - start
				hitCount++
				serveNext(f)
				return
			}
			// Miss: consult the database, then fill the cache.
			cl.Eng.After(dbLatency, func() {
				clients[f].Put(key, profile(user), func(herdkv.Result) {
					fillLat += cl.Eng.Now() - start
					fillCnt++
					serveNext(f)
				})
			})
		})
	}
	for f := 0; f < frontends; f++ {
		// A few concurrent request streams per frontend.
		for w := 0; w < 2; w++ {
			serveNext(f)
		}
	}
	cl.Eng.Run()

	fmt.Printf("page requests served: %d by %d frontends\n", served, frontends)
	fmt.Printf("cache hit rate:       %.1f%%\n", 100*float64(hits)/float64(served))
	if hitCount > 0 {
		fmt.Printf("hit latency (mean):   %.2f us\n", (hitLat / herdkv.Time(hitCount)).Microseconds())
	}
	if fillCnt > 0 {
		fmt.Printf("miss+fill latency:    %.2f us (dominated by the %v us database)\n",
			(fillLat / herdkv.Time(fillCnt)).Microseconds(), dbLatency.Microseconds())
	}
	gets, _, puts := srv.Stats()
	fmt.Printf("server ops:           %d GETs, %d PUTs (fills)\n", gets, puts)
}
