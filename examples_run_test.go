package herdkv_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks a
// signature line of its output — the examples are documentation, so
// they must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "all in one network round trip each"},
		{"webcache", "cache hit rate"},
		{"baselines", "HERD's single round trip wins"},
		{"skewstudy", "core max/min ratio"},
		{"scaleout", "post-migration: 2048/2048 reads served, failed=0"},
		{"sequencer", "duplicates: 0"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("example %s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
