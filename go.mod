module herdkv

go 1.22
