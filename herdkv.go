// Package herdkv is a Go reproduction of "Using RDMA Efficiently for
// Key-Value Services" (Kalia, Kaminsky, Andersen — SIGCOMM 2014): the
// HERD key-value cache, the Pilaf and FaRM-KV baselines it is compared
// against, and the simulated RDMA substrate (verbs, RNIC, PCIe, fabric)
// they all run on.
//
// The package is a facade: it re-exports the stable API from the
// internal packages so applications can build and drive a full HERD
// deployment without importing internals.
//
// A minimal session:
//
//	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
//	srv, _ := herdkv.NewServer(cl.Machine(0), herdkv.DefaultConfig())
//	cli, _ := srv.ConnectClient(cl.Machine(1))
//	key := herdkv.KeyFromUint64(42)
//	cli.Put(key, []byte("value"), func(r herdkv.Result) {
//	    cli.Get(key, func(r herdkv.Result) { fmt.Println(string(r.Value)) })
//	})
//	cl.Eng.Run() // advance virtual time until quiescent
//
// Everything runs on a deterministic discrete-event simulation of the
// paper's hardware; time, throughput and latency figures are virtual
// and calibrated to ConnectX-3 behavior (see DESIGN.md).
package herdkv

import (
	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/farm"
	"herdkv/internal/fault"
	"herdkv/internal/fleet"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/mux"
	"herdkv/internal/nearcache"
	"herdkv/internal/pilaf"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wal"
	"herdkv/internal/workload"
)

// Key is a 16-byte keyhash, the item identifier across all systems.
type Key = kv.Key

// KV is the client interface every system implements — HERD
// (Client, ShardedClient, FleetClient), Pilaf (PilafClient) and FaRM
// (FarmClient). Drivers written against KV run unchanged on any of
// them.
type KV = kv.KV

// Status classifies an operation outcome with a vocabulary shared by
// all systems: hit, miss, timeout, flushed, busy.
type Status = kv.Status

// Operation outcomes.
const (
	StatusUnknown = kv.StatusUnknown
	StatusHit     = kv.StatusHit
	StatusMiss    = kv.StatusMiss
	StatusTimeout = kv.StatusTimeout
	StatusFlushed = kv.StatusFlushed
	StatusBusy    = kv.StatusBusy
)

// KeyFromUint64 derives a well-mixed, non-zero keyhash from n.
func KeyFromUint64(n uint64) Key { return kv.FromUint64(n) }

// Time is a point (or span) of virtual time in picoseconds.
type Time = sim.Time

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Cluster is a set of simulated machines sharing one fabric and one
// virtual clock (Cluster.Eng).
type Cluster = cluster.Cluster

// Machine is one simulated host.
type Machine = cluster.Machine

// Spec describes a testbed configuration (Table 2 of the paper).
type Spec = cluster.Spec

// Apt returns the 56 Gbps InfiniBand / PCIe 3.0 testbed.
func Apt() Spec { return cluster.Apt() }

// Susitna returns the 40 Gbps RoCE / PCIe 2.0 testbed.
func Susitna() Spec { return cluster.Susitna() }

// NewCluster builds n machines under spec with a deterministic seed.
func NewCluster(spec Spec, n int, seed int64) *Cluster {
	return cluster.New(spec, n, seed)
}

// HERD — the paper's system (internal/core).

// Server is a HERD server: NS processes polling a shared request region,
// each owning a MICA cache partition and a UD response queue pair.
type Server = core.Server

// Client is a HERD client: UC WRITEs for requests, UD RECVs for
// responses.
type Client = core.Client

// Config parameterizes a HERD deployment.
type Config = core.Config

// Result is the outcome of an operation, shared by every system —
// Pilaf and FaRM clients deliver the same type, so application code
// switches on Result.Status regardless of backend.
type Result = core.Result

// DefaultConfig mirrors the paper's evaluation setup (6 server
// processes, window 4, 144-byte inline cutoff).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewServer initializes HERD on machine m.
func NewServer(m *Machine, cfg Config) (*Server, error) { return core.NewServer(m, cfg) }

// Durability selects the server write-ahead-log mode
// (docs/DURABILITY.md).
type Durability = core.Durability

// Durability modes for Config.Durability.
const (
	// DurabilityOff keeps the MICA partitions purely volatile (the
	// paper's behavior): a crashed server restarts cold.
	DurabilityOff = core.DurabilityOff
	// DurabilityGroupCommit logs every successful PUT/DELETE and acks
	// immediately; a batched group commit persists within the flush
	// window, and a crashed server replays its log to rejoin warm.
	DurabilityGroupCommit = core.DurabilityGroupCommit
	// DurabilitySync holds each mutation's response until its log
	// record is durable (log-before-ack).
	DurabilitySync = core.DurabilitySync
)

// WALConfig parameterizes the write-ahead log's group commit and
// persist device (Config.WAL).
type WALConfig = wal.Config

// MicaConfig sizes each HERD cache partition.
type MicaConfig = mica.Config

// MicaMode selects cache (lossy, default) or store (lossless) semantics
// for HERD's partitions.
type MicaMode = mica.Mode

// MICA semantics modes.
const (
	MicaCache = mica.CacheMode
	MicaStore = mica.StoreMode
)

// ShardedDeployment scales HERD across several server machines with
// client-side key hashing (the memcached-fleet deployment pattern).
type ShardedDeployment = core.ShardedDeployment

// ShardedClient is one application host's routed view of a sharded
// HERD fleet.
type ShardedClient = core.ShardedClient

// NewShardedDeployment initializes one HERD server per machine.
func NewShardedDeployment(machines []*Machine, cfg Config) (*ShardedDeployment, error) {
	return core.NewShardedDeployment(machines, cfg)
}

// Fleet — consistent-hash scale-out with replication and failover
// (docs/SCALEOUT.md).

// FleetDeployment is a consistent-hash fleet of HERD servers with
// per-key replication, shard add/remove with background migration, and
// crash failover.
type FleetDeployment = fleet.Deployment

// FleetClient is one application host's replicated, failover-capable
// view of the fleet.
type FleetClient = fleet.Client

// FleetConfig parameterizes a fleet (replication factor, virtual
// nodes, migration pacing, read probation).
type FleetConfig = fleet.Config

// FleetRing is the fleet's consistent-hash ring (virtual nodes, seeded
// from the cluster seed).
type FleetRing = fleet.Ring

// DefaultFleetConfig returns the fleet defaults (R=2, 64 virtual
// nodes) over core's HERD defaults with retries enabled.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewFleet builds a fleet with one HERD server per machine.
func NewFleet(machines []*Machine, cfg FleetConfig) (*FleetDeployment, error) {
	return fleet.NewDeployment(machines, cfg)
}

// Client near cache — leased local reads with thundering-herd
// suppression (docs/CACHING.md).

// NearCache wraps any KV client with a bounded client-side cache: GET
// hits are served locally for a bounded-staleness window (the
// server's lease when Config.LeaseTTL grants one, capped by the
// cache's own TTL), concurrent misses for one key collapse into a
// single origin fill, and writes through the wrapper invalidate
// locally at submit. It implements KV and BatchGetter, so it drops in
// front of a HERD client, a fleet client or a mux channel unchanged.
type NearCache = nearcache.Cache

// NearCacheConfig parameterizes a near cache (TTL, lease mode,
// capacity, herd-wait bound).
type NearCacheConfig = nearcache.Config

// DefaultNearCacheConfig returns the near-cache defaults (25us TTL,
// 1024 entries, herd wait 4x TTL, leases off).
func DefaultNearCacheConfig() NearCacheConfig { return nearcache.DefaultConfig() }

// NewNearCache wraps inner with a near cache driven by the cluster's
// virtual clock (pass cl.Eng). tel may be nil.
func NewNearCache(inner KV, clk Clock, tel *Telemetry, cfg NearCacheConfig) *NearCache {
	return nearcache.New(inner, clk, tel, cfg)
}

// Clock is the virtual-time source (Cluster.Eng implements it).
type Clock = sim.Clock

// BatchGetter is the optional batched-read interface: fleet clients
// and near caches implement it in addition to KV.
type BatchGetter = kv.BatchGetter

// Endpoint multiplexing — many logical clients over a small shared QP
// pool per host (docs/SCALABILITY.md).

// MuxEndpoint is one host's multiplexer: logical client channels ride
// a fixed pool of connected HERD clients, so server-side QP state
// scales with hosts, not with application clients.
type MuxEndpoint = mux.Endpoint

// MuxChannel is one logical client on an endpoint. It implements KV,
// so code written against a direct HERD client runs unchanged.
type MuxChannel = mux.Channel

// MuxConfig parameterizes an endpoint (pool size, per-channel window,
// channel limit).
type MuxConfig = mux.Config

// DefaultMuxConfig returns the endpoint defaults: a 2-QP pool and a
// per-channel window of 4.
func DefaultMuxConfig() MuxConfig { return mux.DefaultConfig() }

// ConnectMux builds an endpoint on machine m backed by a fresh pool of
// cfg.QPs HERD clients connected to srv; open channels on it with
// OpenChannel.
func ConnectMux(srv *Server, m *Machine, cfg MuxConfig) (*MuxEndpoint, error) {
	return mux.Connect(srv, m, cfg)
}

// FarmSymmetric is the symmetric FaRM deployment of Section 2.3: every
// machine hosts a shard and drives load.
type FarmSymmetric = farm.Symmetric

// NewFarmSymmetric builds an n-machine symmetric FaRM deployment.
func NewFarmSymmetric(cl *Cluster, n int, cfg FarmConfig) (*FarmSymmetric, error) {
	return farm.NewSymmetric(cl, n, cfg)
}

// Baselines.

// PilafServer and PilafClient implement Pilaf-em-OPT: READ-based GETs
// over a self-verifying cuckoo table, SEND/RECV PUTs.
type (
	PilafServer = pilaf.Server
	PilafClient = pilaf.Client
	PilafConfig = pilaf.Config
)

// NewPilafServer initializes Pilaf-em-OPT on machine m.
func NewPilafServer(m *Machine, cfg PilafConfig) (*PilafServer, error) {
	return pilaf.NewServer(m, cfg)
}

// DefaultPilafConfig returns a test-scale Pilaf deployment.
func DefaultPilafConfig() PilafConfig { return pilaf.DefaultConfig() }

// FarmServer and FarmClient implement FaRM-em / FaRM-em-VAR: hopscotch
// neighborhood READs for GETs, circular-buffer WRITEs for PUTs.
type (
	FarmServer = farm.Server
	FarmClient = farm.Client
	FarmConfig = farm.Config
	FarmMode   = farm.Mode
)

// FaRM-em value placement modes.
const (
	FarmInline     = farm.InlineMode
	FarmOutOfTable = farm.VarMode
)

// NewFarmServer initializes FaRM-KV on machine m.
func NewFarmServer(m *Machine, cfg FarmConfig) (*FarmServer, error) {
	return farm.NewServer(m, cfg)
}

// DefaultFarmConfig returns a test-scale FaRM-em deployment.
func DefaultFarmConfig() FarmConfig { return farm.DefaultConfig() }

// Workloads.

// Workload describes a request mix (GET fraction, key distribution,
// value size).
type Workload = workload.Config

// WorkloadGen produces a deterministic op stream.
type WorkloadGen = workload.Generator

// Op is one generated request.
type Op = workload.Op

// NewWorkload returns a generator for cfg.
func NewWorkload(cfg Workload) *WorkloadGen { return workload.NewGenerator(cfg) }

// ReadIntensive is the paper's 95% GET workload.
func ReadIntensive(keys uint64, valueSize int, seed int64) Workload {
	return workload.ReadIntensive(keys, valueSize, seed)
}

// WriteIntensive is the paper's 50% GET workload.
func WriteIntensive(keys uint64, valueSize int, seed int64) Workload {
	return workload.WriteIntensive(keys, valueSize, seed)
}

// Skewed is the paper's Zipf(.99) workload.
func Skewed(keys uint64, valueSize int, seed int64) Workload {
	return workload.Skewed(keys, valueSize, seed)
}

// ExpectedValue returns the deterministic verification value written for
// key by the experiment drivers.
func ExpectedValue(key Key, size int) []byte { return workload.ExpectedValue(key, size) }

// Fault injection (docs/ROBUSTNESS.md).

// FaultSchedule is a script of timed fault events (blackouts,
// partitions, loss and corruption windows, crash+restart); hang it on
// Spec.Faults before NewCluster to run chaos.
type FaultSchedule = fault.Schedule

// FaultEvent is one scripted fault.
type FaultEvent = fault.Event

// FaultInjector binds a schedule to one cluster's fabric; reach it via
// Cluster.Faults, register crash targets, then Arm before running.
type FaultInjector = fault.Injector

// ParseFaultSchedule parses the chaos script format (one event per
// line: "crash node=0 at=10ms restart=20ms", "loss from=0 until=30ms
// rate=0.05", ...).
func ParseFaultSchedule(script string) (*FaultSchedule, error) {
	return fault.ParseSchedule(script)
}

// ErrTimedOut is the terminal error of a HERD operation that exhausted
// its retry budget without a response.
var ErrTimedOut = core.ErrTimedOut

// ErrOverloaded is the terminal error of a HERD operation whose
// Config.OpDeadline expired while the server was pushing back with
// busy responses (docs/ROBUSTNESS.md, "Overload & admission control").
var ErrOverloaded = core.ErrOverloaded

// Telemetry (docs/OBSERVABILITY.md).

// Telemetry is a metrics + tracing sink; attach one to a cluster (or
// install it as the default) to instrument every layer of the stack.
type Telemetry = telemetry.Sink

// TelemetryRegistry holds named counters, gauges and latency histograms.
type TelemetryRegistry = telemetry.Registry

// TelemetryTracer records request-lifecycle spans and exports Chrome
// trace_event JSON (WriteChromeTrace).
type TelemetryTracer = telemetry.Tracer

// NewTelemetry returns a metrics-only sink; set its Tracer field (see
// NewTelemetryTracer) to also record lifecycle spans.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewTelemetryTracer returns an empty span recorder.
func NewTelemetryTracer() *TelemetryTracer { return telemetry.NewTracer() }

// SetDefaultTelemetry installs (or, with nil, removes) the sink attached
// to every cluster NewCluster subsequently builds.
func SetDefaultTelemetry(s *Telemetry) { cluster.SetDefaultTelemetry(s) }
