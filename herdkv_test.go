package herdkv_test

import (
	"bytes"
	"testing"

	"herdkv"
)

func TestFacadeQuickstart(t *testing.T) {
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 2
	cfg.MaxClients = 1
	srv, err := herdkv.NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	key := herdkv.KeyFromUint64(1)
	var got herdkv.Result
	cli.Put(key, []byte("facade"), func(herdkv.Result) {
		cli.Get(key, func(r herdkv.Result) { got = r })
	})
	cl.Eng.Run()
	if got.Status != herdkv.StatusHit || string(got.Value) != "facade" {
		t.Fatalf("round trip through facade: %+v", got)
	}
	if got.Latency < herdkv.Microsecond || got.Latency > 10*herdkv.Microsecond {
		t.Fatalf("latency %v out of range", got.Latency)
	}
}

func TestFacadeMux(t *testing.T) {
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 2
	cfg.MaxClients = 2
	srv, err := herdkv.NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := herdkv.ConnectMux(srv, cl.Machine(1), herdkv.DefaultMuxConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Three logical clients over the server's two connected QP slots.
	chans := make([]*herdkv.MuxChannel, 3)
	for i := range chans {
		if chans[i], err = ep.OpenChannel(); err != nil {
			t.Fatal(err)
		}
	}
	key := herdkv.KeyFromUint64(2)
	var got herdkv.Result
	chans[0].Put(key, []byte("muxed"), func(herdkv.Result) {
		chans[2].Get(key, func(r herdkv.Result) { got = r })
	})
	cl.Eng.Run()
	if got.Status != herdkv.StatusHit || string(got.Value) != "muxed" {
		t.Fatalf("round trip through mux facade: %+v", got)
	}
}

// TestFacadeNearCache drives the near-cache wrapper through the
// facade: a leased HERD server behind a NearCache serves the second
// read locally, and the wrapper satisfies both KV and BatchGetter.
func TestFacadeNearCache(t *testing.T) {
	cl := herdkv.NewCluster(herdkv.Apt(), 2, 1)
	cfg := herdkv.DefaultConfig()
	cfg.NS = 2
	cfg.MaxClients = 1
	cfg.LeaseTTL = 20 * herdkv.Microsecond
	srv, err := herdkv.NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	nccfg := herdkv.DefaultNearCacheConfig()
	nccfg.Leases = true
	nc := herdkv.NewNearCache(cli, cl.Eng, herdkv.NewTelemetry(), nccfg)
	var _ herdkv.KV = nc
	var _ herdkv.BatchGetter = nc

	key := herdkv.KeyFromUint64(3)
	var fill, cached herdkv.Result
	nc.Put(key, []byte("near"), func(herdkv.Result) {
		nc.Get(key, func(r herdkv.Result) {
			fill = r
			nc.Get(key, func(r herdkv.Result) { cached = r })
		})
	})
	cl.Eng.Run()
	if fill.Status != herdkv.StatusHit || fill.Lease == 0 {
		t.Fatalf("fill read %+v, want leased hit", fill)
	}
	if cached.Status != herdkv.StatusHit || string(cached.Value) != "near" {
		t.Fatalf("cached read %+v", cached)
	}
	if cached.Latency >= fill.Latency {
		t.Fatalf("cached read latency %v not below origin fill %v", cached.Latency, fill.Latency)
	}
}

func TestFacadeBaselines(t *testing.T) {
	cl := herdkv.NewCluster(herdkv.Susitna(), 3, 2)
	key := herdkv.KeyFromUint64(7)

	pcfg := herdkv.DefaultPilafConfig()
	pcfg.Buckets = 1024
	psrv, err := herdkv.NewPilafServer(cl.Machine(0), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcli, err := psrv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	psrv.Insert(key, []byte("pilaf"))
	var pres herdkv.Result
	pcli.Get(key, func(r herdkv.Result) { pres = r })
	cl.Eng.Run()
	if pres.Status != herdkv.StatusHit || string(pres.Value) != "pilaf" {
		t.Fatalf("pilaf facade: %+v", pres)
	}

	fcfg := herdkv.DefaultFarmConfig()
	fcfg.Mode = herdkv.FarmOutOfTable
	fcfg.Buckets = 1024
	fsrv, err := herdkv.NewFarmServer(cl.Machine(0), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	fcli, err := fsrv.ConnectClient(cl.Machine(2))
	if err != nil {
		t.Fatal(err)
	}
	fsrv.Insert(key, []byte("farm"))
	var fres herdkv.Result
	fcli.Get(key, func(r herdkv.Result) { fres = r })
	cl.Eng.Run()
	if fres.Status != herdkv.StatusHit || string(fres.Value) != "farm" {
		t.Fatalf("farm facade: %+v", fres)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, cfg := range []herdkv.Workload{
		herdkv.ReadIntensive(100, 32, 1),
		herdkv.WriteIntensive(100, 32, 1),
		herdkv.Skewed(100, 32, 1),
	} {
		gen := herdkv.NewWorkload(cfg)
		for i := 0; i < 100; i++ {
			op := gen.Next()
			if op.Key.IsZero() {
				t.Fatal("zero key from workload")
			}
		}
	}
	key := herdkv.KeyFromUint64(3)
	if !bytes.Equal(herdkv.ExpectedValue(key, 16), herdkv.ExpectedValue(key, 16)) {
		t.Fatal("ExpectedValue not deterministic")
	}
}

func TestFacadeSpecs(t *testing.T) {
	apt, sus := herdkv.Apt(), herdkv.Susitna()
	if apt.Name != "Apt" || sus.Name != "Susitna" {
		t.Fatal("spec names")
	}
	if apt.Link.Gbps != 56 || sus.Link.Gbps != 40 {
		t.Fatal("link rates")
	}
}

func TestFacadeTimeUnits(t *testing.T) {
	if herdkv.Second != 1000*herdkv.Millisecond {
		t.Fatal("time unit arithmetic")
	}
	var d herdkv.Time = 2500 * herdkv.Nanosecond
	if d.Microseconds() != 2.5 {
		t.Fatal("time conversion")
	}
}
