// Package cluster assembles simulated machines into the paper's testbeds
// (Table 2): Apt (Intel Xeon E5-2450, ConnectX-3 56 Gbps InfiniBand,
// PCIe 3.0 x8) and Susitna (AMD Opteron 6272, ConnectX-3 40 Gbps RoCE,
// PCIe 2.0 x8).
package cluster

import (
	"fmt"

	"herdkv/internal/fault"
	"herdkv/internal/hostmem"
	"herdkv/internal/nic"
	"herdkv/internal/pcie"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// defaultTelemetry, when set via SetDefaultTelemetry, is attached to
// every cluster built by New. CLI front ends use it to instrument all
// experiments without threading a sink through each one; tests leave it
// nil and pay nothing.
var defaultTelemetry *telemetry.Sink

// SetDefaultTelemetry installs (or, with nil, removes) the sink that New
// attaches to freshly built clusters.
func SetDefaultTelemetry(s *telemetry.Sink) { defaultTelemetry = s }

// Spec describes one testbed configuration.
type Spec struct {
	Name     string
	MaxNodes int    // cluster size in the paper
	CPUDesc  string // Table 2 hardware strings
	NICDesc  string
	Cores    int // cores per machine usable by server processes

	Link wire.Params
	PCIe pcie.Params
	NIC  nic.Params
	Host hostmem.Params

	// Faults, when non-nil, is a chaos schedule injected into the
	// cluster's fabric and engine at construction: New builds a
	// fault.Injector over it (reachable via Cluster.Faults). Register
	// crash targets on the injector and Arm it before running.
	Faults *fault.Schedule
}

// Apt returns the Emulab Apt testbed configuration.
func Apt() Spec {
	return Spec{
		Name:     "Apt",
		MaxNodes: 187,
		CPUDesc:  "Intel Xeon E5-2450 CPUs",
		NICDesc:  "ConnectX-3 MX354A (56 Gbps IB) via PCIe 3.0 x8",
		Cores:    16,
		Link:     wire.InfiniBand56(),
		PCIe:     pcie.Gen3x8(),
		NIC:      nic.ConnectX3(),
		Host:     hostmem.DefaultParams(),
	}
}

// Susitna returns the NSF PRObE Susitna testbed configuration (the RoCE
// variant the paper evaluates in Figures 9 and 10).
func Susitna() Spec {
	h := hostmem.DefaultParams()
	// Opteron 6272 modules are slower per-core than the Xeons.
	h.PostSend = sim.NS(150)
	h.PollCheck = sim.NS(35)
	return Spec{
		Name:     "Susitna",
		MaxNodes: 36,
		CPUDesc:  "AMD Opteron 6272 CPUs",
		NICDesc:  "CX-3 MX353A (40 Gbps IB) and CX-3 MX313A (40 Gbps RoCE) via PCIe 2.0 x8",
		Cores:    16,
		Link:     wire.RoCE40(),
		PCIe:     pcie.Gen2x8(),
		NIC:      nic.ConnectX3(),
		Host:     h,
	}
}

// Table2 returns the paper's cluster table.
func Table2() []Spec { return []Spec{Apt(), Susitna()} }

// String formats the spec as a Table 2 row.
func (s Spec) String() string {
	return fmt.Sprintf("%-8s %3d nodes  %s. %s", s.Name, s.MaxNodes, s.CPUDesc, s.NICDesc)
}

// Machine is one simulated host: verbs endpoint plus CPU model.
type Machine struct {
	Verbs *verbs.Host
	CPU   *hostmem.Host
	Bus   *pcie.Bus

	// Seed is this machine's deterministic seed (derived from the
	// cluster seed and machine index); client-side jittered backoff
	// draws from it so retry timing replays exactly.
	Seed int64
}

// Cluster is a set of machines on one fabric sharing a simulation engine.
type Cluster struct {
	Eng      *sim.Engine
	Net      *wire.Network
	Spec     Spec
	machines []*Machine
	seed     int64
	tel      *telemetry.Sink
	inj      *fault.Injector
}

// New builds a cluster of n machines under spec. If a default telemetry
// sink is installed (SetDefaultTelemetry), the cluster is born
// instrumented. A Spec.Faults schedule is bound to the fabric here; an
// invalid schedule panics (construct schedules via fault.ParseSchedule
// or validate them first to surface errors as errors).
func New(spec Spec, n int, seed int64) *Cluster {
	eng := sim.New()
	net := wire.NewNetwork(eng, spec.Link, seed)
	c := &Cluster{Eng: eng, Net: net, Spec: spec, seed: seed, tel: defaultTelemetry}
	if spec.Faults != nil {
		inj, err := fault.NewInjector(net, spec.Faults, seed+0x7a11)
		if err != nil {
			panic(err)
		}
		c.inj = inj
		if c.tel != nil {
			inj.SetTelemetry(c.tel)
		}
	}
	for i := 0; i < n; i++ {
		c.AddMachine()
	}
	return c
}

// Faults returns the fault injector bound by Spec.Faults, or nil when
// the cluster runs fault-free.
func (c *Cluster) Faults() *fault.Injector { return c.inj }

// SetTelemetry attaches sink s to the cluster and to every machine built
// so far. Call it before queue pairs are created: per-QP counters and CQ
// gauges bind at CreateQP time.
func (c *Cluster) SetTelemetry(s *telemetry.Sink) {
	c.tel = s
	for _, m := range c.machines {
		c.instrument(m)
	}
	if c.inj != nil {
		c.inj.SetTelemetry(s)
	}
}

// Telemetry returns the cluster's sink (nil when un-instrumented).
func (c *Cluster) Telemetry() *telemetry.Sink { return c.tel }

func (c *Cluster) instrument(m *Machine) {
	m.Bus.SetTelemetry(c.tel)
	m.Verbs.NIC().SetTelemetry(c.tel)
	m.Verbs.SetTelemetry(c.tel)
}

// AddMachine attaches one more machine and returns it.
func (c *Cluster) AddMachine() *Machine {
	id := wire.NodeID(len(c.machines))
	bus := pcie.NewBus(c.Eng, c.Spec.PCIe)
	n := nic.New(c.Eng, c.Spec.NIC, bus, c.Net, id)
	m := &Machine{
		Verbs: verbs.NewHost(c.Eng, n),
		CPU:   hostmem.NewHost(c.Eng, c.Spec.Host, c.Spec.Cores, c.seed+int64(id)+1),
		Bus:   bus,
		Seed:  c.seed + int64(id) + 1,
	}
	if c.tel != nil {
		c.instrument(m)
	}
	c.machines = append(c.machines, m)
	return m
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.machines) }

// Machine returns machine i.
func (c *Cluster) Machine(i int) *Machine { return c.machines[i] }
