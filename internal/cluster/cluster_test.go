package cluster

import (
	"strings"
	"testing"

	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

func TestTable2Specs(t *testing.T) {
	specs := Table2()
	if len(specs) != 2 {
		t.Fatalf("Table2 has %d rows, want 2", len(specs))
	}
	apt, sus := specs[0], specs[1]
	if apt.Name != "Apt" || apt.MaxNodes != 187 {
		t.Fatalf("Apt spec = %+v", apt)
	}
	if sus.Name != "Susitna" || sus.MaxNodes != 36 {
		t.Fatalf("Susitna spec = %+v", sus)
	}
	if apt.Link.Gbps != 56 || sus.Link.Gbps != 40 {
		t.Fatal("link rates wrong")
	}
	if sus.PCIe.BytesPerSec >= apt.PCIe.BytesPerSec {
		t.Fatal("Susitna PCIe 2.0 must be slower than Apt's 3.0")
	}
	if !strings.Contains(apt.String(), "E5-2450") || !strings.Contains(sus.String(), "Opteron") {
		t.Fatal("Table 2 strings wrong")
	}
}

func TestClusterAssembly(t *testing.T) {
	c := New(Apt(), 3, 1)
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	for i := 0; i < 3; i++ {
		m := c.Machine(i)
		if m.Verbs == nil || m.CPU == nil || m.Bus == nil {
			t.Fatalf("machine %d incomplete", i)
		}
		if m.Verbs.Node() != wire.NodeID(i) {
			t.Fatalf("machine %d node = %v", i, m.Verbs.Node())
		}
		if m.CPU.Cores() != 16 {
			t.Fatalf("cores = %d", m.CPU.Cores())
		}
	}
}

func TestMachinesShareFabric(t *testing.T) {
	c := New(Apt(), 2, 1)
	qa := c.Machine(0).Verbs.CreateQP(wire.UC)
	qb := c.Machine(1).Verbs.CreateQP(wire.UC)
	if err := verbs.Connect(qa, qb); err != nil {
		t.Fatal(err)
	}
}

func TestAddMachine(t *testing.T) {
	c := New(Susitna(), 1, 1)
	m := c.AddMachine()
	if c.Size() != 2 || c.Machine(1) != m {
		t.Fatal("AddMachine wiring wrong")
	}
}
