package core

import (
	"encoding/binary"
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// Result is the outcome of one HERD operation, delivered to the caller's
// callback when the response SEND arrives.
type Result struct {
	Key     kv.Key
	IsGet   bool
	OK      bool
	Value   []byte // GET hit: the value (copied)
	Latency sim.Time
}

type opKind int

const (
	opGet opKind = iota
	opPut
	opDelete
)

type pendingOp struct {
	key      kv.Key
	kind     opKind
	value    []byte
	issuedAt sim.Time
	cb       func(Result)

	// Retry state.
	proc    int
	r       int // request sequence number within (client, proc)
	payload []byte
	slotOff int
	retries int
	done    bool

	trace *telemetry.Trace
}

// kindName returns the trace name for an operation kind.
func (k opKind) kindName() string {
	switch k {
	case opPut:
		return "PUT"
	case opDelete:
		return "DELETE"
	}
	return "GET"
}

// Client is one HERD client process: a UC QP for writing requests into
// the server's request region, and NS UD QPs for receiving responses.
type Client struct {
	srv     *Server
	id      int
	machine *cluster.Machine

	ucQP   *verbs.QP
	sendQP *verbs.QP // SEND/SEND mode: requests as UD SENDs
	dcQP   *verbs.QP // DC mode: request WRITEs over Dynamically Connected
	udQPs  []*verbs.QP
	respMR *verbs.MR

	reqSeq   []int          // next request sequence number per server process
	inflight int            // outstanding ops against Window
	waiting  []*pendingOp   // ops queued for a window slot
	perProc  [][]*pendingOp // FIFO of outstanding ops per server process

	issued, completed, retried uint64
	dupResponses               uint64

	// Telemetry (nil handles when un-instrumented): operation counters
	// and end-to-end latency histograms, aggregated across clients.
	tel                                 *telemetry.Sink
	telIssued, telCompleted, telRetried *telemetry.Counter
	telDup                              *telemetry.Counter
	latGet, latPut, latDel              *telemetry.Histogram
}

// Retries reports how many application-level request rewrites this
// client has performed (nonzero only under packet loss with
// Config.RetryTimeout set).
func (c *Client) Retries() uint64 { return c.retried }

// ConnectClient attaches a HERD client on machine m: it establishes the
// UC connection for requests (the only connected QP the server needs per
// client — Section 4.2) and the NS UD response QPs.
func (s *Server) ConnectClient(m *cluster.Machine) (*Client, error) {
	if s.nextCli >= s.cfg.MaxClients {
		return nil, fmt.Errorf("core: request region sized for %d clients", s.cfg.MaxClients)
	}
	c := &Client{
		srv:     s,
		id:      s.nextCli,
		machine: m,
		reqSeq:  make([]int, s.cfg.NS),
		perProc: make([][]*pendingOp, s.cfg.NS),
	}
	s.nextCli++
	c.tel = m.Verbs.Telemetry()
	c.telIssued = c.tel.Counter("herd.ops.issued")
	c.telCompleted = c.tel.Counter("herd.ops.completed")
	c.telRetried = c.tel.Counter("herd.ops.retried")
	c.telDup = c.tel.Counter("herd.responses.duplicate")
	c.latGet = c.tel.Histogram("herd.get.latency")
	c.latPut = c.tel.Histogram("herd.put.latency")
	c.latDel = c.tel.Histogram("herd.delete.latency")

	// Request path: one UC QP pair (WRITE mode), a connectionless UD QP
	// (SEND/SEND mode), or a DC initiator (DC mode) — the latter two
	// keep no per-client state at the server NIC.
	switch {
	case s.cfg.UseSendRequests:
		c.sendQP = m.Verbs.CreateQP(wire.UD)
	case s.cfg.UseDC:
		c.dcQP = m.Verbs.CreateQP(wire.DC)
	default:
		serverUC := s.machine.Verbs.CreateQP(wire.UC)
		c.ucQP = m.Verbs.CreateQP(wire.UC)
		if err := verbs.Connect(c.ucQP, serverUC); err != nil {
			return nil, err
		}
	}

	// Response path: NS UD QPs and a response region with one slot per
	// (process, window) pair.
	c.respMR = m.Verbs.RegisterMR(s.cfg.NS * s.cfg.Window * SlotSize)
	c.udQPs = make([]*verbs.QP, s.cfg.NS)
	for p := 0; p < s.cfg.NS; p++ {
		p := p
		c.udQPs[p] = m.Verbs.CreateQP(wire.UD)
		c.udQPs[p].RecvCQ().SetHandler(func(comp verbs.Completion) {
			c.handleResponse(p, comp)
		})
	}
	s.clientUD = append(s.clientUD, c.udQPs)
	return c, nil
}

// ID returns the client's index in the request region.
func (c *Client) ID() int { return c.id }

// Inflight returns the number of outstanding operations.
func (c *Client) Inflight() int { return c.inflight }

// Issued and Completed report operation counts.
func (c *Client) Issued() uint64    { return c.issued }
func (c *Client) Completed() uint64 { return c.completed }

// Get issues a GET for key; cb runs when the response arrives.
func (c *Client) Get(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	c.submit(&pendingOp{key: key, kind: opGet, cb: cb})
	return nil
}

// Delete removes key; cb runs when the ack arrives. Result.OK reports
// whether the key was present.
func (c *Client) Delete(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	c.submit(&pendingOp{key: key, kind: opDelete, cb: cb})
	return nil
}

// Put issues a PUT; cb runs when the ack arrives. Values are limited to
// the 1 KB item size minus headers; empty values are not allowed (a zero
// LEN denotes a GET in the slot format).
func (c *Client) Put(key kv.Key, value []byte, cb func(Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	if len(value) == 0 {
		return fmt.Errorf("core: PUT requires a non-empty value")
	}
	if len(value) > mica.MaxValueSize {
		return mica.ErrValueTooLarge
	}
	v := make([]byte, len(value))
	copy(v, value)
	c.submit(&pendingOp{key: key, kind: opPut, value: v, cb: cb})
	return nil
}

func (c *Client) submit(op *pendingOp) {
	if c.inflight >= c.srv.cfg.Window {
		c.waiting = append(c.waiting, op)
		return
	}
	c.issue(op)
}

func (c *Client) issue(op *pendingOp) {
	cfg := c.srv.cfg
	proc := mica.Partition(op.key, cfg.NS)
	r := c.reqSeq[proc]
	c.reqSeq[proc]++

	// Post the RECV for the response before writing the request
	// (Section 4.3).
	respSlot := (proc*cfg.Window + r%cfg.Window) * SlotSize
	c.udQPs[proc].PostRecv(c.respMR, respSlot, SlotSize, uint64(r))

	// Build the request so it ends exactly at the slot boundary: the
	// keyhash lands last under left-to-right DMA ordering.
	slotOff := cfg.SlotIndex(proc, c.id, r) * SlotSize
	var payload []byte
	if cfg.UseSendRequests {
		// SEND-mode tail: [client 2][seq 2][LEN 2][keyhash 16].
		vlen := uint16(0)
		var val []byte
		switch op.kind {
		case opDelete:
			vlen = lenDelete
		case opPut:
			vlen = uint16(len(op.value))
			val = op.value
		}
		payload = make([]byte, len(val)+sendReqTail)
		copy(payload, val)
		p := len(val)
		binary.LittleEndian.PutUint16(payload[p:], uint16(c.id))
		binary.LittleEndian.PutUint16(payload[p+2:], uint16(r%cfg.Window))
		binary.LittleEndian.PutUint16(payload[p+4:], vlen)
		copy(payload[p+6:], op.key[:])
	} else {
		switch op.kind {
		case opGet:
			payload = make([]byte, kv.KeySize)
			copy(payload, op.key[:])
		case opDelete:
			payload = make([]byte, 2+kv.KeySize)
			binary.LittleEndian.PutUint16(payload, lenDelete)
			copy(payload[2:], op.key[:])
		default: // opPut
			payload = make([]byte, len(op.value)+2+kv.KeySize)
			copy(payload, op.value)
			binary.LittleEndian.PutUint16(payload[len(op.value):], uint16(len(op.value)))
			copy(payload[len(op.value)+2:], op.key[:])
		}
	}
	op.proc = proc
	op.r = r
	op.payload = payload
	op.slotOff = slotOff + SlotSize - len(payload)
	op.issuedAt = c.machine.Verbs.NIC().Engine().Now()
	c.inflight++
	c.issued++
	c.telIssued.Inc()
	c.perProc[proc] = append(c.perProc[proc], op)

	if c.tel.Tracing() {
		op.trace = c.tel.StartTrace(op.kind.kindName(), op.issuedAt)
		op.trace.SetPrefix("req.")
		if c.sendQP == nil {
			// WRITE/DC mode: hand the trace to the server by slot, since
			// the request travels only as memory bytes.
			c.srv.noteTrace(cfg.SlotIndex(proc, c.id, r), op.trace)
		}
	}
	c.writeRequest(op)
	c.scheduleRetry(op)
}

// writeRequest posts (or re-posts) op's request: a WRITE into the
// request region, or a UD SEND in SEND/SEND mode.
func (c *Client) writeRequest(op *pendingOp) {
	inline := len(op.payload) <= c.machine.Verbs.NIC().Params().InlineMax
	if c.sendQP != nil {
		c.sendQP.PostSend(verbs.SendWR{
			Verb:   verbs.SEND,
			Data:   op.payload,
			Dest:   c.srv.udQPs[op.proc],
			Inline: inline,
			Trace:  op.trace,
		})
		return
	}
	if c.dcQP != nil {
		c.dcQP.PostSend(verbs.SendWR{
			Verb:      verbs.WRITE,
			Data:      op.payload,
			Dest:      c.srv.dcQP,
			Remote:    c.srv.region,
			RemoteOff: op.slotOff,
			Inline:    inline,
			Trace:     op.trace,
		})
		return
	}
	c.ucQP.PostSend(verbs.SendWR{
		Verb:      verbs.WRITE,
		Data:      op.payload,
		Remote:    c.srv.region,
		RemoteOff: op.slotOff,
		Inline:    inline,
		Trace:     op.trace,
	})
}

// scheduleRetry arms the application-level retry timer (Section 2.2.3's
// answer to the unreliable transports).
func (c *Client) scheduleRetry(op *pendingOp) {
	timeout := c.srv.cfg.RetryTimeout
	if timeout <= 0 {
		return
	}
	max := c.srv.cfg.MaxRetries
	if max <= 0 {
		max = 3
	}
	c.machine.Verbs.NIC().Engine().After(timeout, func() {
		if op.done || op.retries >= max {
			return
		}
		op.retries++
		c.retried++
		c.telRetried.Inc()
		// The retry may produce a duplicate response (if the original
		// response, not the request, was lost): post a spare RECV so the
		// duplicate cannot starve a later operation's completion.
		respSlot := (op.proc*c.srv.cfg.Window + op.r%c.srv.cfg.Window) * SlotSize
		c.udQPs[op.proc].PostRecv(c.respMR, respSlot, SlotSize, uint64(op.r))
		c.writeRequest(op)
		c.scheduleRetry(op)
	})
}

func (c *Client) handleResponse(proc int, comp verbs.Completion) {
	if len(comp.Data) < respHdr {
		return
	}
	// Match the response to its operation by the echoed window-slot
	// sequence; a response whose slot has no outstanding op is a
	// duplicate from a retried request and is discarded.
	rMod := binary.LittleEndian.Uint16(comp.Data[3:5])
	idx := -1
	for i, op := range c.perProc[proc] {
		if uint16(op.r%c.srv.cfg.Window) == rMod {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.dupResponses++
		c.telDup.Inc()
		return
	}
	op := c.perProc[proc][idx]
	c.perProc[proc] = append(c.perProc[proc][:idx], c.perProc[proc][idx+1:]...)
	op.done = true
	c.inflight--
	c.completed++
	c.telCompleted.Inc()

	res := Result{
		Key:     op.key,
		IsGet:   op.kind == opGet,
		Latency: c.machine.Verbs.NIC().Engine().Now() - op.issuedAt,
	}
	switch op.kind {
	case opGet:
		c.latGet.RecordTime(res.Latency)
	case opPut:
		c.latPut.RecordTime(res.Latency)
	case opDelete:
		c.latDel.RecordTime(res.Latency)
	}
	status := comp.Data[0]
	res.OK = status == statusOK
	if op.kind == opGet && res.OK {
		vlen := int(binary.LittleEndian.Uint16(comp.Data[1:3]))
		if respHdr+vlen <= len(comp.Data) {
			res.Value = append([]byte(nil), comp.Data[respHdr:respHdr+vlen]...)
		}
	}

	// Window slot freed: issue the next queued op before the callback so
	// closed-loop clients keep the pipe full.
	if len(c.waiting) > 0 {
		next := c.waiting[0]
		c.waiting = c.waiting[1:]
		c.issue(next)
	}
	if op.cb != nil {
		op.cb(res)
	}
}
