package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// ErrTimedOut is the terminal error of an operation that exhausted its
// retry budget (Config.MaxRetries) without a response — the server is
// crashed, partitioned away, or the fabric ate every attempt. The
// operation may still have executed server-side (at-least-once
// semantics); all HERD operations are idempotent, so callers may simply
// reissue.
var ErrTimedOut = errors.New("herd: operation timed out after retry budget")

// ErrOverloaded is the terminal error of an operation the server kept
// shedding (StatusBusy pushback) until the op's deadline
// (Config.OpDeadline) passed. Unlike ErrTimedOut, the server is alive
// and answering — it is refusing work faster than it can serve it — so
// callers should back off or steer to a replica, not treat this as a
// crash.
var ErrOverloaded = errors.New("herd: server overloaded; op deadline passed before admission")

// Result is the outcome of one HERD operation, delivered to the caller's
// callback when the response SEND arrives — or when the op fails
// terminally, in which case Err is non-nil and Status is
// kv.StatusTimeout. It is an alias of the unified kv.Result, so HERD
// callbacks interoperate with everything written against the kv.KV
// client interface.
type Result = kv.Result

// Client implements the shared client interface.
var _ kv.KV = (*Client)(nil)

type opKind int

const (
	opGet opKind = iota
	opPut
	opDelete
)

type pendingOp struct {
	key      kv.Key
	kind     opKind
	value    []byte
	issuedAt sim.Time
	cb       func(Result)

	// began/begun record the op's FIRST issue: busy pushback reissues
	// the op as a fresh wire transaction, but latency and the per-op
	// deadline are measured from the original issue.
	began    bool
	begun    sim.Time
	deadline sim.Time // begun + Config.OpDeadline; zero when disabled

	// Retry state.
	proc    int
	r       int // request sequence number within (client, proc)
	payload []byte
	slotOff int
	retries int
	done    bool

	// attempt is a generation counter for the op's retry timer: every
	// (re)issue, completion, and failure bumps it, so a timer armed for
	// an earlier attempt finds a stale generation and does nothing.
	// Without it, a completion racing a reconnect-reissue would leave
	// two live timer chains retransmitting duplicates of the same op.
	// The counter survives recycling (newOp does not reset it), so a
	// timer holding a recycled op also sees a dead generation.
	attempt int

	// buf backs the op's encoded request payload; requests always fit
	// one slot. Living inside the pooled op, it makes issue (and every
	// retry retransmission, which re-posts payload) allocation-free.
	buf [SlotSize]byte

	trace *telemetry.Trace
}

// kindName returns the trace name for an operation kind.
//
//herd:hotpath
func (k opKind) kindName() string {
	switch k {
	case opPut:
		return "PUT"
	case opDelete:
		return "DELETE"
	}
	return "GET"
}

// Client is one HERD client process: a UC QP for writing requests into
// the server's request region, and NS UD QPs for receiving responses.
type Client struct {
	srv     *Server
	id      int
	machine *cluster.Machine

	ucQP   *verbs.QP
	sendQP *verbs.QP // SEND/SEND mode: requests as UD SENDs
	dcQP   *verbs.QP // DC mode: request WRITEs over Dynamically Connected
	udQPs  []*verbs.QP
	respMR *verbs.MR

	reqSeq   []int          // next request sequence number per server process
	inflight int            // outstanding ops against Window
	waiting  []*pendingOp   // ops queued for a window slot
	perProc  [][]*pendingOp // FIFO of outstanding ops per server process

	// slotFree[proc][r mod W] is the earliest virtual time that window
	// slot may host a new op. Responses echo only r mod W, so after an op
	// that retransmitted finishes, its slot is quarantined until any
	// still-in-flight duplicate response has drained — otherwise the
	// duplicate would match the slot's next op and deliver a wrong value.
	slotFree [][]sim.Time

	// slotWait[proc] holds ops whose next window slot is still occupied
	// by an outstanding op (one that stalled on retries while younger
	// ops completed around it). They issue as occupants resolve.
	slotWait [][]*pendingOp

	// opFree is the pendingOp recycling pool: terminally resolved ops
	// return here and back the next submissions, so the client's
	// steady-state issue path allocates nothing.
	opFree []*pendingOp

	issued, completed, retried uint64
	dupResponses               uint64
	failed                     uint64 // terminal retry-budget failures
	corruptResponses           uint64 // responses rejected by the status check
	reconnects                 uint64 // completed re-registration handshakes
	busyRx                     uint64 // StatusBusy pushback responses received
	windowShrinks              uint64 // multiplicative-decrease events

	// cwnd is the AIMD congestion window (Config.AdaptiveWindow):
	// fractional so additive increase accumulates 1/cwnd per clean
	// completion; the effective window is int(cwnd) clamped to
	// [1, Config.Window].
	cwnd float64

	// rng drives backoff jitter; seeded from the machine seed and client
	// id so retry timing is deterministic per run.
	rng *sim.Rand

	// Reconnect state: one handshake runs at a time; the generation
	// counter invalidates timeout/reply closures from finished attempts.
	reconnecting bool
	reconnGen    int

	// Telemetry (nil handles when un-instrumented): operation counters
	// and end-to-end latency histograms, aggregated across clients.
	tel                                 *telemetry.Sink
	telIssued, telCompleted, telRetried *telemetry.Counter
	telDup, telFailed, telCorrupt       *telemetry.Counter
	telReconnects, telBusyRx            *telemetry.Counter
	telWindow                           *telemetry.Gauge
	latGet, latPut, latDel              *telemetry.Histogram
}

// Retries reports how many application-level request rewrites this
// client has performed (nonzero only under packet loss with
// Config.RetryTimeout set).
func (c *Client) Retries() uint64 { return c.retried }

// Failed reports operations that ended with a terminal ErrTimedOut
// after exhausting the retry budget.
func (c *Client) Failed() uint64 { return c.failed }

// DupResponses reports responses discarded because no outstanding op
// matched them (duplicates from retried requests).
func (c *Client) DupResponses() uint64 { return c.dupResponses }

// CorruptResponses reports responses rejected by the status validity
// check (damaged in flight by injected corruption).
func (c *Client) CorruptResponses() uint64 { return c.corruptResponses }

// Reconnects reports completed crash-recovery handshakes.
func (c *Client) Reconnects() uint64 { return c.reconnects }

// BusyResponses reports StatusBusy pushback responses received from the
// server's admission controller.
func (c *Client) BusyResponses() uint64 { return c.busyRx }

// WindowShrinks reports multiplicative-decrease events of the AIMD
// window (busy pushback, terminal timeouts).
func (c *Client) WindowShrinks() uint64 { return c.windowShrinks }

// Window returns the client's current effective request window: the
// AIMD window when Config.AdaptiveWindow is set, Config.Window
// otherwise.
func (c *Client) Window() int { return c.window() }

// ConnectClient attaches a HERD client on machine m: it establishes the
// UC connection for requests (the only connected QP the server needs per
// client — Section 4.2) and the NS UD response QPs.
func (s *Server) ConnectClient(m *cluster.Machine) (*Client, error) {
	if s.nextCli >= s.cfg.MaxClients {
		return nil, fmt.Errorf("core: request region sized for %d clients", s.cfg.MaxClients)
	}
	c := &Client{
		srv:      s,
		id:       s.nextCli,
		machine:  m,
		reqSeq:   make([]int, s.cfg.NS),
		perProc:  make([][]*pendingOp, s.cfg.NS),
		slotFree: make([][]sim.Time, s.cfg.NS),
		slotWait: make([][]*pendingOp, s.cfg.NS),
		rng:      sim.NewRand(m.Seed*4099 + int64(s.nextCli)),
		cwnd:     float64(s.cfg.Window),
	}
	for p := range c.slotFree {
		c.slotFree[p] = make([]sim.Time, s.cfg.Window)
	}
	s.nextCli++
	c.tel = m.Verbs.Telemetry()
	c.telIssued = c.tel.Counter("herd.ops.issued")
	c.telCompleted = c.tel.Counter("herd.ops.completed")
	c.telRetried = c.tel.Counter("herd.retries")
	c.telDup = c.tel.Counter("herd.responses.duplicate")
	c.telFailed = c.tel.Counter("herd.ops.failed")
	c.telCorrupt = c.tel.Counter("herd.responses.corrupt")
	c.telReconnects = c.tel.Counter("herd.reconnects")
	c.telBusyRx = c.tel.Counter("herd.busy_rx")
	c.telWindow = c.tel.Gauge("client.window")
	c.telWindow.Set(int64(c.window()))
	c.latGet = c.tel.Histogram("herd.get.latency")
	c.latPut = c.tel.Histogram("herd.put.latency")
	c.latDel = c.tel.Histogram("herd.delete.latency")

	// Request path: one UC QP pair (WRITE mode), a connectionless UD QP
	// (SEND/SEND mode), or a DC initiator (DC mode) — the latter two
	// keep no per-client state at the server NIC.
	switch {
	case s.cfg.UseSendRequests:
		c.sendQP = m.Verbs.CreateQP(wire.UD)
	case s.cfg.UseDC:
		c.dcQP = m.Verbs.CreateQP(wire.DC)
	default:
		serverUC := s.machine.Verbs.CreateQP(wire.UC)
		c.ucQP = m.Verbs.CreateQP(wire.UC)
		if err := verbs.Connect(c.ucQP, serverUC); err != nil {
			return nil, err
		}
		s.ucByClient[c.id] = serverUC
	}

	// Response path: NS UD QPs and a response region with one slot per
	// (process, window) pair.
	c.respMR = m.Verbs.RegisterMR(s.cfg.NS * s.cfg.Window * SlotSize)
	c.udQPs = make([]*verbs.QP, s.cfg.NS)
	for p := 0; p < s.cfg.NS; p++ {
		p := p
		c.udQPs[p] = m.Verbs.CreateQP(wire.UD)
		c.udQPs[p].RecvCQ().SetHandler(func(comp verbs.Completion) {
			c.handleResponse(p, comp)
		})
	}
	s.clientUD = append(s.clientUD, c.udQPs)
	return c, nil
}

// ConnectClients attaches n HERD clients on machine m in one call — the
// endpoint tier's pool construction (internal/mux). Each pooled client
// is one connected QP set at the server; the mux endpoint carries many
// logical channels over the pool behind the kv.KV seam, so server-side
// connected state scales with pools, not with application clients
// (docs/SCALABILITY.md).
func (s *Server) ConnectClients(m *cluster.Machine, n int) ([]*Client, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: pool needs at least one client, got %d", n)
	}
	clients := make([]*Client, n)
	for i := range clients {
		c, err := s.ConnectClient(m)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	return clients, nil
}

// ID returns the client's index in the request region.
func (c *Client) ID() int { return c.id }

// Inflight returns the number of outstanding operations.
func (c *Client) Inflight() int { return c.inflight }

// Issued and Completed report operation counts.
func (c *Client) Issued() uint64    { return c.issued }
func (c *Client) Completed() uint64 { return c.completed }

// newOp returns a pendingOp from the recycling pool (or a fresh one),
// initialized for a new operation. Every field resets except attempt,
// which stays monotonic so timers armed for the op's previous life see
// a dead generation.
func (c *Client) newOp(kind opKind, key kv.Key, cb func(Result)) *pendingOp {
	var op *pendingOp
	if n := len(c.opFree); n > 0 {
		op = c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
	} else {
		op = new(pendingOp)
	}
	op.key = key
	op.kind = kind
	op.value = op.value[:0]
	op.issuedAt = 0
	op.cb = cb
	op.began = false
	op.begun = 0
	op.deadline = 0
	op.proc = 0
	op.r = 0
	op.payload = nil
	op.slotOff = 0
	op.retries = 0
	op.done = false
	op.trace = nil
	return op
}

// recycleOp returns a terminally resolved op (done, callback already
// run, removed from every queue) to the pool. The attempt bump kills
// any timer or delayed-resubmit closure still holding the pointer.
func (c *Client) recycleOp(op *pendingOp) {
	op.attempt++
	op.cb = nil
	op.payload = nil
	op.trace = nil
	c.opFree = append(c.opFree, op)
}

// Get issues a GET for key; cb runs when the response arrives.
func (c *Client) Get(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	c.submit(c.newOp(opGet, key, cb))
	return nil
}

// Delete removes key; cb runs when the ack arrives. Result.Status
// reports whether the key was present (StatusHit) or absent.
func (c *Client) Delete(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	c.submit(c.newOp(opDelete, key, cb))
	return nil
}

// Put issues a PUT; cb runs when the ack arrives. Values are limited to
// the 1 KB item size minus headers; empty values are not allowed (a zero
// LEN denotes a GET in the slot format).
func (c *Client) Put(key kv.Key, value []byte, cb func(Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	if len(value) == 0 {
		return fmt.Errorf("core: PUT requires a non-empty value")
	}
	if len(value) > mica.MaxValueSize {
		return mica.ErrValueTooLarge
	}
	op := c.newOp(opPut, key, cb)
	// Copy into the pooled op's buffer (the caller may reuse value); a
	// recycled op's capacity makes the copy allocation-free.
	op.value = append(op.value, value...)
	c.submit(op)
	return nil
}

// window returns the effective request window: Config.Window when the
// AIMD controller is disabled, otherwise the integer part of cwnd
// clamped to [1, Config.Window].
//
//herd:hotpath
func (c *Client) window() int {
	if !c.srv.cfg.AdaptiveWindow {
		return c.srv.cfg.Window
	}
	w := int(c.cwnd)
	if w < 1 {
		w = 1
	}
	if w > c.srv.cfg.Window {
		w = c.srv.cfg.Window
	}
	return w
}

// aimdGrow applies additive increase after a clean served completion:
// cwnd grows by 1/cwnd, i.e. one slot per window's worth of successes.
func (c *Client) aimdGrow() {
	if !c.srv.cfg.AdaptiveWindow {
		return
	}
	if c.cwnd < float64(c.srv.cfg.Window) {
		c.cwnd += 1 / c.cwnd
		if c.cwnd > float64(c.srv.cfg.Window) {
			c.cwnd = float64(c.srv.cfg.Window)
		}
	}
	c.telWindow.Set(int64(c.window()))
}

// aimdShrink applies multiplicative decrease on a congestion signal
// (busy pushback or a terminal timeout): cwnd halves, floored at 1.
func (c *Client) aimdShrink() {
	if !c.srv.cfg.AdaptiveWindow {
		return
	}
	c.cwnd /= 2
	if c.cwnd < 1 {
		c.cwnd = 1
	}
	c.windowShrinks++
	c.telWindow.Set(int64(c.window()))
}

// pumpWaiting issues queued ops while the effective window has room.
// issue() can defer an op (slot collision or quarantine) without raising
// inflight; the break keeps one deferred op from draining the whole
// queue into parked limbo in a single call.
func (c *Client) pumpWaiting() {
	for len(c.waiting) > 0 && c.inflight < c.window() {
		before := c.inflight
		op := c.waiting[0]
		c.waiting = c.waiting[1:]
		c.issue(op)
		if c.inflight == before {
			break
		}
	}
}

func (c *Client) submit(op *pendingOp) {
	if c.inflight >= c.window() {
		c.waiting = append(c.waiting, op)
		return
	}
	c.issue(op)
}

func (c *Client) issue(op *pendingOp) {
	cfg := c.srv.cfg
	proc := mica.Partition(op.key, cfg.NS)
	r := c.reqSeq[proc]
	for _, o := range c.perProc[proc] {
		if o.r%cfg.Window == r%cfg.Window {
			// The slot's previous occupant is still outstanding — it
			// stalled on a retry while younger ops on this process
			// completed around it. Responses echo only r mod W, so two
			// live ops in one slot are indistinguishable and the
			// occupant would steal this op's response. Park until the
			// occupant resolves.
			c.slotWait[proc] = append(c.slotWait[proc], op)
			return
		}
	}
	if until := c.slotFree[proc][r%cfg.Window]; until > c.machine.Verbs.NIC().Engine().Now() {
		// The slot is quarantined while duplicates of its previous op may
		// still arrive; issue once they have drained.
		c.machine.Verbs.NIC().Engine().At(until, func() { c.issue(op) })
		return
	}
	c.reqSeq[proc]++

	// Post the RECV for the response before writing the request
	// (Section 4.3).
	respSlot := (proc*cfg.Window + r%cfg.Window) * SlotSize
	postLossy(c.udQPs[proc].PostRecv(c.respMR, respSlot, SlotSize, uint64(r)))

	// Build the request so it ends exactly at the slot boundary: the
	// keyhash lands last under left-to-right DMA ordering.
	slotOff := cfg.SlotIndex(proc, c.id, r) * SlotSize
	payload := c.encodeRequest(op, r)
	op.proc = proc
	op.r = r
	op.payload = payload
	op.slotOff = slotOff + SlotSize - len(payload)
	op.issuedAt = c.machine.Verbs.NIC().Engine().Now()
	if !op.began {
		// First issue: latency and the per-op deadline are anchored
		// here; busy-pushback reissues keep the original anchors.
		op.began = true
		op.begun = op.issuedAt
		if cfg.OpDeadline > 0 {
			op.deadline = op.begun + cfg.OpDeadline
		}
	}
	c.inflight++
	c.issued++
	c.telIssued.Inc()
	c.perProc[proc] = append(c.perProc[proc], op)

	if c.tel.Tracing() {
		if op.trace == nil {
			op.trace = c.tel.StartTrace(op.kind.kindName(), op.begun)
			op.trace.SetPrefix("req.")
		}
		if c.sendQP == nil {
			// WRITE/DC mode: hand the trace to the server by slot, since
			// the request travels only as memory bytes.
			c.srv.noteTrace(cfg.SlotIndex(proc, c.id, r), op.trace)
		}
	}
	c.writeRequest(op)
	c.armRetry(op)
}

// encodeRequest builds op's request bytes in op.buf and returns the
// encoded payload (aliasing op.buf, which outlives every
// retransmission). WRITE/DC layouts end at the slot boundary with the
// keyhash last; SEND mode appends the [client 2][seq 2][LEN 2]
// [keyhash 16] tail instead.
//
//herd:hotpath
func (c *Client) encodeRequest(op *pendingOp, r int) []byte {
	cfg := &c.srv.cfg
	if cfg.UseSendRequests {
		vlen := uint16(0)
		var val []byte
		switch op.kind {
		case opDelete:
			vlen = lenDelete
		case opPut:
			vlen = uint16(len(op.value))
			val = op.value
		}
		payload := op.buf[:len(val)+sendReqTail]
		copy(payload, val)
		p := len(val)
		binary.LittleEndian.PutUint16(payload[p:], uint16(c.id))
		binary.LittleEndian.PutUint16(payload[p+2:], uint16(r%cfg.Window))
		binary.LittleEndian.PutUint16(payload[p+4:], vlen)
		copy(payload[p+6:], op.key[:])
		return payload
	}
	switch op.kind {
	case opGet:
		payload := op.buf[:kv.KeySize]
		copy(payload, op.key[:])
		return payload
	case opDelete:
		payload := op.buf[:2+kv.KeySize]
		binary.LittleEndian.PutUint16(payload, lenDelete)
		copy(payload[2:], op.key[:])
		return payload
	default: // opPut
		payload := op.buf[:len(op.value)+2+kv.KeySize]
		copy(payload, op.value)
		binary.LittleEndian.PutUint16(payload[len(op.value):], uint16(len(op.value)))
		copy(payload[len(op.value)+2:], op.key[:])
		return payload
	}
}

// writeRequest posts (or re-posts) op's request: a WRITE into the
// request region, or a UD SEND in SEND/SEND mode.
func (c *Client) writeRequest(op *pendingOp) {
	inline := len(op.payload) <= c.machine.Verbs.NIC().Params().InlineMax
	if c.sendQP != nil {
		postLossy(c.sendQP.PostSend(verbs.SendWR{
			Verb:   verbs.SEND,
			Data:   op.payload,
			Dest:   c.srv.udQPs[op.proc],
			Inline: inline,
			Trace:  op.trace,
		}))
		return
	}
	if c.dcQP != nil {
		postLossy(c.dcQP.PostSend(verbs.SendWR{
			Verb:      verbs.WRITE,
			Data:      op.payload,
			Dest:      c.srv.dcQP,
			Remote:    c.srv.region,
			RemoteOff: op.slotOff,
			Inline:    inline,
			Trace:     op.trace,
		}))
		return
	}
	postLossy(c.ucQP.PostSend(verbs.SendWR{
		Verb:      verbs.WRITE,
		Data:      op.payload,
		Remote:    c.srv.region,
		RemoteOff: op.slotOff,
		Inline:    inline,
		Trace:     op.trace,
	}))
}

// retryDelay computes the delay before retry number k (0-based): the
// base timeout grown exponentially, capped, then stretched by a random
// jitter fraction so concurrent clients' retry storms decorrelate. The
// jitter draw comes from the client's seeded RNG, so a run replays
// exactly.
func (c *Client) retryDelay(k int) sim.Time {
	cfg := c.srv.cfg
	d := cfg.RetryTimeout
	factor := cfg.retryBackoff()
	for i := 0; i < k; i++ {
		d = sim.Time(float64(d) * factor)
		if d >= cfg.retryBackoffCap() {
			d = cfg.retryBackoffCap()
			break
		}
	}
	if j := cfg.retryJitter(); j > 0 {
		d += sim.Time(c.rng.Float64() * j * float64(d))
	}
	return d
}

// armRetry arms the application-level retry timer (Section 2.2.3's
// answer to the unreliable transports). The timer captures the op's
// current attempt generation: a completion, terminal failure, or
// reconnect-reissue bumps the generation, so the captured timer fires
// as a no-op instead of retransmitting a finished or superseded op.
func (c *Client) armRetry(op *pendingOp) {
	if c.srv.cfg.RetryTimeout <= 0 {
		return
	}
	gen := op.attempt
	c.machine.Verbs.NIC().Engine().After(c.retryDelay(op.retries), func() {
		if op.done || op.attempt != gen {
			return // stale timer: the op completed, failed, or was reissued
		}
		if op.retries >= c.srv.cfg.maxRetries() {
			c.failOp(op)
			return
		}
		op.retries++
		op.attempt++
		c.retried++
		c.telRetried.Inc()
		op.trace.Mark("retry", c.machine.Verbs.NIC().Engine().Now())
		// The retry may produce a duplicate response (if the original
		// response, not the request, was lost): post a spare RECV so the
		// duplicate cannot starve a later operation's completion.
		respSlot := (op.proc*c.srv.cfg.Window + op.r%c.srv.cfg.Window) * SlotSize
		postLossy(c.udQPs[op.proc].PostRecv(c.respMR, respSlot, SlotSize, uint64(op.r)))
		c.writeRequest(op)
		c.armRetry(op)
	})
}

// quarantineSlot delays reuse of op's (proc, r mod W) window slot after
// an op that retransmitted finishes: a duplicate response may still be
// in flight. Every retransmission happened strictly before the op
// finished (finishing invalidates its timers), so the last duplicate
// arrives within one more response round trip — two timeout spans cover
// that even when a retry fired spuriously because the true response
// latency exceeded RetryTimeout.
func (c *Client) quarantineSlot(op *pendingOp) {
	if op.retries == 0 || c.srv.cfg.RetryTimeout <= 0 {
		return
	}
	until := c.machine.Verbs.NIC().Engine().Now() + 2*c.srv.cfg.RetryTimeout
	slot := &c.slotFree[op.proc][op.r%c.srv.cfg.Window]
	if until > *slot {
		*slot = until
	}
}

// releaseSlot re-issues one op parked on proc's window slots after an
// occupant resolved. The parked op recomputes its slot on issue and
// parks again if the next slot is also blocked.
func (c *Client) releaseSlot(proc int) {
	if len(c.slotWait[proc]) == 0 {
		return
	}
	op := c.slotWait[proc][0]
	c.slotWait[proc] = c.slotWait[proc][1:]
	c.issue(op)
}

// failOp terminates an op that exhausted its retry budget: the caller
// gets Result.Err = ErrTimedOut, the window slot is freed, and — since a
// burned budget is the client's stall signal — a reconnection handshake
// starts in case the server process crashed.
func (c *Client) failOp(op *pendingOp) {
	op.done = true
	op.attempt++
	for i, o := range c.perProc[op.proc] {
		if o == op {
			c.perProc[op.proc] = append(c.perProc[op.proc][:i], c.perProc[op.proc][i+1:]...)
			break
		}
	}
	c.quarantineSlot(op)
	c.releaseSlot(op.proc)
	c.inflight--
	c.failed++
	c.telFailed.Inc()
	c.aimdShrink()
	now := c.machine.Verbs.NIC().Engine().Now()
	op.trace.Mark("failed", now)
	c.startReconnect()
	c.pumpWaiting()
	if op.cb != nil {
		op.cb(Result{
			Key:     op.key,
			IsGet:   op.kind == opGet,
			Status:  kv.StatusTimeout,
			Latency: now - op.begun,
			Err:     ErrTimedOut,
		})
	}
	c.recycleOp(op)
}

// reconnCtrlBytes is the wire size of a handshake control packet (QP
// numbers and rkeys ride in a small datagram).
const reconnCtrlBytes = 64

// startReconnect begins the crash-recovery handshake for WRITE-mode
// clients. The client's connected UC peer on the server died with the
// crash; until a fresh server-side QP is registered, every request WRITE
// lands on an errored QP and vanishes. SEND/SEND and DC clients address
// the server per-message and need no handshake — their retries recover
// on their own once the server restarts.
func (c *Client) startReconnect() {
	if c.ucQP == nil || c.reconnecting {
		return
	}
	c.reconnecting = true
	c.reconnGen++
	c.tryReconnect(c.reconnGen, 0)
}

// tryReconnect runs one handshake attempt: a control packet to the
// server asking for re-registration; a live server replaces the errored
// UC pair and echoes a reply. Attempts time out with the same
// backoff-and-jitter policy as request retries and give up after the
// retry budget — a later terminal failure starts a fresh episode.
func (c *Client) tryReconnect(gen, attempt int) {
	if !c.reconnecting || gen != c.reconnGen {
		return
	}
	if attempt > c.srv.cfg.maxRetries() {
		c.reconnecting = false
		return
	}
	eng := c.machine.Verbs.NIC().Engine()
	net := c.machine.Verbs.NIC().Net()
	cli, srv := c.machine.Verbs.Node(), c.srv.machine.Verbs.Node()
	done := false
	net.SendWire(cli, srv, reconnCtrlBytes, func(sim.Time) {
		// Server side, at arrival: a crashed process cannot answer.
		if !c.srv.reregister(c) {
			return
		}
		net.SendWire(srv, cli, reconnCtrlBytes, func(at sim.Time) {
			if done || !c.reconnecting || gen != c.reconnGen {
				return
			}
			done = true
			c.finishReconnect(at)
		})
	})
	timeout := c.srv.cfg.reconnectTimeout()
	for i := 0; i < attempt; i++ {
		timeout = sim.Time(float64(timeout) * c.srv.cfg.retryBackoff())
	}
	if j := c.srv.cfg.retryJitter(); j > 0 {
		timeout += sim.Time(c.rng.Float64() * j * float64(timeout))
	}
	eng.After(timeout, func() {
		if done || !c.reconnecting || gen != c.reconnGen {
			return
		}
		c.tryReconnect(gen, attempt+1)
	})
}

// finishReconnect completes the handshake: the server holds a fresh UC
// pair for this client, so every still-pending op (in flight when the
// crash ate its request-region state) is reissued. Each reissue bumps
// the op's attempt generation, killing any timer armed for the
// pre-reconnect transmission.
func (c *Client) finishReconnect(at sim.Time) {
	c.reconnecting = false
	c.reconnects++
	c.telReconnects.Inc()
	for proc := range c.perProc {
		for _, op := range c.perProc[proc] {
			op.attempt++
			op.trace.Mark("reconnect.reissue", at)
			respSlot := (op.proc*c.srv.cfg.Window + op.r%c.srv.cfg.Window) * SlotSize
			postLossy(c.udQPs[op.proc].PostRecv(c.respMR, respSlot, SlotSize, uint64(op.r)))
			c.writeRequest(op)
			c.armRetry(op)
		}
	}
}

// parseRespHeader validates a response's status header and extracts
// the routing fields. ok is false for damaged responses: injected
// corruption zeroes the packet tail and scrambles the rest, so the
// status byte cannot hold a valid code — and a busy pushback must
// carry its fixed-size retry-after hint, so anything claiming busy
// without one is damage too.
//
//herd:hotpath
func parseRespHeader(data []byte) (status byte, rMod uint16, ok bool) {
	if len(data) < respHdr {
		return 0, 0, false
	}
	switch s := data[0]; {
	case s == statusOK || s == statusNotFound:
	case s == statusBusy &&
		int(binary.LittleEndian.Uint16(data[1:3])) == busyHintBytes &&
		len(data) >= respHdr+busyHintBytes:
	default:
		return 0, 0, false
	}
	return data[0], binary.LittleEndian.Uint16(data[3:5]), true
}

func (c *Client) handleResponse(proc int, comp verbs.Completion) {
	if comp.Flushed || len(comp.Data) < respHdr {
		return
	}
	// Reject damaged responses before matching — a corrupt rMod must not
	// complete (or fail) the wrong op.
	status, rMod, ok := parseRespHeader(comp.Data)
	if !ok {
		c.corruptResponses++
		c.telCorrupt.Inc()
		return
	}
	// Match the response to its operation by the echoed window-slot
	// sequence; a response whose slot has no outstanding op is a
	// duplicate from a retried request and is discarded.
	idx := -1
	for i, op := range c.perProc[proc] {
		if uint16(op.r%c.srv.cfg.Window) == rMod {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.dupResponses++
		c.telDup.Inc()
		return
	}
	op := c.perProc[proc][idx]
	c.perProc[proc] = append(c.perProc[proc][:idx], c.perProc[proc][idx+1:]...)
	if status == statusBusy {
		hint := sim.Time(binary.LittleEndian.Uint32(comp.Data[respHdr:])) * sim.Nanosecond
		c.handleBusy(op, hint)
		return
	}
	op.done = true
	op.attempt++ // invalidate any armed retry timer
	c.quarantineSlot(op)
	c.releaseSlot(op.proc)
	c.inflight--
	c.completed++
	c.telCompleted.Inc()
	c.aimdGrow()

	res := Result{
		Key:     op.key,
		IsGet:   op.kind == opGet,
		Latency: c.machine.Verbs.NIC().Engine().Now() - op.begun,
	}
	switch op.kind {
	case opGet:
		c.latGet.RecordTime(res.Latency)
	case opPut:
		c.latPut.RecordTime(res.Latency)
	case opDelete:
		c.latDel.RecordTime(res.Latency)
	}
	res.Status = kv.StatusMiss
	if status == statusOK {
		res.Status = kv.StatusHit
	}
	if op.kind == opGet && res.Status == kv.StatusHit {
		vlen := int(binary.LittleEndian.Uint16(comp.Data[1:3]))
		if respHdr+vlen <= len(comp.Data) {
			res.Value = append([]byte(nil), comp.Data[respHdr:respHdr+vlen]...)
			// A lease-granting server appends the absolute expiry after
			// the value (Config.LeaseTTL). A short frame (corruption
			// injection truncating the tail) leaves Lease zero — "no
			// lease" — which is always safe for a cache to observe.
			if c.srv.cfg.LeaseTTL > 0 && len(comp.Data) >= respHdr+vlen+leaseBytes {
				res.Lease = sim.Time(binary.LittleEndian.Uint64(comp.Data[respHdr+vlen:]))
			}
		}
	}

	// Window slot freed: issue the next queued op before the callback so
	// closed-loop clients keep the pipe full.
	c.pumpWaiting()
	if op.cb != nil {
		op.cb(res)
	}
	c.recycleOp(op)
}

// handleBusy processes a StatusBusy pushback: the server shed the
// request at poll time and attached a retry-after hint. The op leaves
// the wire (freeing its window slot) and resubmits after the hinted
// delay — unless its deadline would pass first, in which case it fails
// terminally with ErrOverloaded. Busy is a congestion signal, not a
// crash signal: the AIMD window halves but no reconnect handshake
// starts and the retry-backoff counter resets.
func (c *Client) handleBusy(op *pendingOp, hint sim.Time) {
	op.attempt++ // invalidate the armed retry timer; the op re-arms on reissue
	c.quarantineSlot(op)
	op.retries = 0
	c.releaseSlot(op.proc)
	c.inflight--
	c.busyRx++
	c.telBusyRx.Inc()
	c.aimdShrink()
	now := c.machine.Verbs.NIC().Engine().Now()
	op.trace.Mark("busy", now)

	delay := hint
	if j := c.srv.cfg.retryJitter(); j > 0 {
		delay += sim.Time(c.rng.Float64() * j * float64(delay))
	}
	if op.deadline > 0 && now+delay >= op.deadline {
		c.failBusy(op, now)
		c.pumpWaiting()
		return
	}
	eng := c.machine.Verbs.NIC().Engine()
	// The resubmit closure checks the attempt generation, not just done:
	// if the op fails terminally and is recycled into a new operation
	// before the delay elapses, done is false again but the generation
	// has moved on.
	gen := op.attempt
	eng.After(delay, func() {
		if op.done || op.attempt != gen {
			return
		}
		c.submit(op)
	})
	c.pumpWaiting()
}

// failBusy terminates an op whose deadline passed while the server kept
// shedding it. Unlike failOp, no reconnect handshake starts: busy
// responses prove the server is alive, just refusing work.
func (c *Client) failBusy(op *pendingOp, now sim.Time) {
	op.done = true
	c.failed++
	c.telFailed.Inc()
	op.trace.Mark("overloaded", now)
	if op.cb != nil {
		op.cb(Result{
			Key:     op.key,
			IsGet:   op.kind == opGet,
			Status:  kv.StatusBusy,
			Latency: now - op.begun,
			Err:     ErrOverloaded,
		})
	}
	c.recycleOp(op)
}
