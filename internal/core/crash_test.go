package core

import (
	"errors"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/fault"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

// chaosHERD builds a 1-server, 1-client deployment whose fabric runs
// the given fault script, with retries enabled and the crash target
// registered and armed.
func chaosHERD(t *testing.T, script string, cfg Config) (*cluster.Cluster, *Server, *Client) {
	t.Helper()
	sched, err := fault.ParseSchedule(script)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.Apt()
	spec.Faults = sched
	cl := cluster.New(spec, 2, 9)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Faults().SetCrashTarget(0, srv)
	cl.Faults().Arm()
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	return cl, srv, c
}

// chaosConfig is smallConfig with a fast retry/reconnect policy so
// crash windows resolve within test-sized virtual time.
func chaosConfig() Config {
	cfg := smallConfig()
	cfg.RetryTimeout = 30 * sim.Microsecond
	cfg.ReconnectTimeout = 50 * sim.Microsecond
	return cfg
}

func TestCrashWithoutRestartFailsTerminally(t *testing.T) {
	cl, srv, c := chaosHERD(t, "crash node=0 at=10us", chaosConfig())

	var errs, oks, calls int
	for i := 0; i < 8; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*20*sim.Microsecond, func() {
			c.Get(kv.FromUint64(uint64(i+1)), func(r Result) {
				calls++
				if r.Err != nil {
					if !errors.Is(r.Err, ErrTimedOut) {
						t.Errorf("op %d: err = %v, want ErrTimedOut", i, r.Err)
					}
					errs++
				} else {
					oks++
				}
			})
		})
	}
	// Run() drains to an empty event queue: every op must resolve — a
	// hung op would leave the engine idle with calls < 8 forever.
	cl.Eng.Run()

	if calls != 8 {
		t.Fatalf("callbacks = %d, want exactly 8", calls)
	}
	if !srv.Down() {
		t.Fatal("server not down")
	}
	// The first op (issued at 0, served before the 10us crash) may
	// succeed; everything after the crash must fail terminally.
	if errs < 7 {
		t.Fatalf("terminal errors = %d (ok = %d), want >= 7", errs, oks)
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", c.Inflight())
	}
}

// TestCrashRestartRecovery is the end-to-end chaos check: a server
// crash mid-load fails in-flight and crash-window ops terminally within
// their retry budget, the client reconnects after the restart, and
// every op issued once recovery completes succeeds. All timing is
// virtual, so the run is deterministic.
func TestCrashRestartRecovery(t *testing.T) {
	const (
		crashAt   = 1 * sim.Millisecond
		restartAt = 2 * sim.Millisecond
		recovered = 3 * sim.Millisecond // restart + generous handshake slack
		endAt     = 5 * sim.Millisecond
	)
	cl, srv, c := chaosHERD(t, "crash node=0 at=1ms restart=2ms", chaosConfig())

	type outcome struct {
		at   sim.Time
		err  error
		call int
	}
	var ops []*outcome
	var issue func()
	issue = func() {
		if cl.Eng.Now() >= endAt {
			return
		}
		o := &outcome{at: cl.Eng.Now()}
		ops = append(ops, o)
		c.Put(kv.FromUint64(uint64(len(ops))), []byte("v"), func(r Result) {
			o.call++
			o.err = r.Err
			issue()
		})
	}
	issue()
	cl.Eng.RunUntil(endAt)
	cl.Eng.Run() // drain: every op resolves, or this never returns

	var okBefore, errWindow, lateErr int
	for i, o := range ops {
		if o.call != 1 {
			t.Fatalf("op %d (issued %v): %d callbacks, want exactly 1", i, o.at, o.call)
		}
		switch {
		case o.at < crashAt && o.err == nil:
			okBefore++
		case o.err != nil && o.at >= recovered:
			lateErr++
		case o.err != nil:
			errWindow++
		}
	}
	if okBefore == 0 {
		t.Fatal("no successes before the crash")
	}
	if errWindow == 0 {
		t.Fatal("no terminal errors during the outage")
	}
	if lateErr != 0 {
		t.Fatalf("%d ops failed after recovery should have completed", lateErr)
	}
	if c.Reconnects() == 0 {
		t.Fatal("WRITE-mode client recovered without a reconnect handshake")
	}
	if c.DupResponses() != 0 {
		t.Fatalf("%d duplicate responses on a loss-free fabric: a stale retry timer retransmitted", c.DupResponses())
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", c.Inflight())
	}
	if srv.Down() {
		t.Fatal("server still down after restart")
	}
}

// TestCrashRecoverySendMode: SEND/SEND clients address the server
// per-message, so they must recover from a crash through retries alone,
// with no reconnect handshake.
func TestCrashRecoverySendMode(t *testing.T) {
	cfg := chaosConfig()
	cfg.UseSendRequests = true
	cl, _, c := chaosHERD(t, "crash node=0 at=100us restart=200us", cfg)

	var lateOK, lateCalls int
	for i := 0; i < 4; i++ {
		i := i
		// Issue well after the restart: retries find the fresh queue
		// pairs without any handshake.
		cl.Eng.At(400*sim.Microsecond+sim.Time(i)*10*sim.Microsecond, func() {
			c.Get(kv.FromUint64(uint64(i+1)), func(r Result) {
				lateCalls++
				if r.Err == nil {
					lateOK++
				}
			})
		})
	}
	cl.Eng.Run()
	if lateCalls != 4 || lateOK != 4 {
		t.Fatalf("post-restart ops: %d calls, %d ok, want 4/4", lateCalls, lateOK)
	}
	if c.Reconnects() != 0 {
		t.Fatalf("SEND-mode client ran %d reconnect handshakes", c.Reconnects())
	}
}

// TestSlotCollisionParks: responses echo only r mod Window, so an op
// whose predecessor in the same window slot is still outstanding
// (stalled on a retry) must park rather than issue — otherwise the
// stalled op steals the newcomer's response and completes with the
// wrong key's value. A brief blackout drops exactly one request;
// while it awaits its retry, Window more ops cycle through the same
// server process and the last one lands on the stalled op's slot.
func TestSlotCollisionParks(t *testing.T) {
	cfg := chaosConfig()
	cl, srv, c := chaosHERD(t, "blackout link=1>0 from=0 until=2us", cfg)

	// Five keys on the same server process: the fifth reuses the
	// first's window slot (r=4, Window=4).
	var keys []kv.Key
	proc := -1
	for n := uint64(1); len(keys) < cfg.Window+1; n++ {
		k := kv.FromUint64(n)
		p := mica.Partition(k, cfg.NS)
		if proc == -1 {
			proc = p
		}
		if p == proc {
			keys = append(keys, k)
		}
	}
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = []byte{byte(i + 1), 0xee}
		if err := srv.Preload(k, vals[i]); err != nil {
			t.Fatal(err)
		}
	}

	got := make([][]byte, len(keys))
	get := func(i int) func() {
		return func() {
			c.Get(keys[i], func(r Result) {
				if r.Err != nil || r.Status != kv.StatusHit {
					t.Errorf("GET %d failed: %+v", i, r)
				}
				got[i] = r.Value
			})
		}
	}
	// Key 0's request is dropped by the blackout; it stalls until its
	// ~30us retry. Keys 1..3 run after the blackout and complete,
	// freeing the client's global window. Key 4 then wants slot 0.
	cl.Eng.At(0, get(0))
	for i := 1; i <= 3; i++ {
		cl.Eng.At(sim.Time(2+i)*sim.Microsecond, get(i))
	}
	cl.Eng.At(15*sim.Microsecond, get(4))
	cl.Eng.Run()

	for i := range keys {
		if string(got[i]) != string(vals[i]) {
			t.Errorf("GET %d returned %x, want %x (response cross-matched)", i, got[i], vals[i])
		}
	}
	if c.Retries() == 0 {
		t.Fatal("blackout did not force a retry")
	}
}

// TestRequestCorruptionRejected: a corruption window on the client's
// request link delivers damaged WRITEs; the server's keyhash/length
// checks refuse them (no wrong data is served), and the client's retry
// after the window succeeds.
func TestRequestCorruptionRejected(t *testing.T) {
	cfg := chaosConfig()
	cl, srv, c := chaosHERD(t, "corrupt link=1>0 from=0 until=20us rate=1", cfg)

	key := kv.FromUint64(42)
	var res Result
	calls := 0
	c.Put(key, []byte("precious"), func(r Result) { res = r; calls++ })
	cl.Eng.Run()

	if calls != 1 || res.Err != nil || res.Status != kv.StatusHit {
		t.Fatalf("PUT through corruption window: calls=%d res=%+v", calls, res)
	}
	if srv.Rejected() == 0 {
		t.Fatal("server accepted a corrupted request")
	}
	if c.Retries() == 0 {
		t.Fatal("no retry recorded despite a corrupted first attempt")
	}
	var got Result
	c.Get(key, func(r Result) { got = r })
	cl.Eng.Run()
	if got.Status != kv.StatusHit || string(got.Value) != "precious" {
		t.Fatalf("GET after corrupted-then-retried PUT: %+v", got)
	}
}

// TestResponseCorruptionRejected: corruption on the response link
// damages the UD SEND; the client's status check discards it rather
// than completing an op with garbage, and the retry path re-fetches.
func TestResponseCorruptionRejected(t *testing.T) {
	cfg := chaosConfig()
	cl, srv, c := chaosHERD(t, "corrupt link=0>1 from=0 until=20us rate=1", cfg)

	key := kv.FromUint64(7)
	if err := srv.Preload(key, []byte("truth")); err != nil {
		t.Fatal(err)
	}
	var res Result
	calls := 0
	c.Get(key, func(r Result) { res = r; calls++ })
	cl.Eng.Run()

	if calls != 1 || res.Err != nil || res.Status != kv.StatusHit || string(res.Value) != "truth" {
		t.Fatalf("GET through response corruption: calls=%d res=%+v", calls, res)
	}
	if c.CorruptResponses() == 0 {
		t.Fatal("client accepted a corrupted response")
	}
}
