package core

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
)

func dcConfig() Config {
	cfg := smallConfig()
	cfg.UseDC = true
	return cfg
}

func TestDCModeRoundTrip(t *testing.T) {
	cl, _, clients := newHERD(t, dcConfig(), 2)
	key := kv.FromUint64(1)
	val := []byte("over dynamically connected")
	var get Result
	clients[0].Put(key, val, func(Result) {
		clients[1].Get(key, func(r Result) { get = r })
	})
	cl.Eng.Run()
	if get.Status != kv.StatusHit || !bytes.Equal(get.Value, val) {
		t.Fatalf("GET = %+v", get)
	}
}

func TestDCModeManyOps(t *testing.T) {
	cl, _, clients := newHERD(t, dcConfig(), 3)
	n := 300
	oks := 0
	for i := 0; i < n; i++ {
		clients[i%3].Put(kv.FromUint64(uint64(i+1)), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				oks++
			}
		})
	}
	cl.Eng.Run()
	if oks != n {
		t.Fatalf("put oks = %d/%d", oks, n)
	}
}

func TestDCModeExclusiveWithSendMode(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 1, 1)
	cfg := smallConfig()
	cfg.UseDC = true
	cfg.UseSendRequests = true
	if _, err := NewServer(cl.Machine(0), cfg); err == nil {
		t.Fatal("UseDC + UseSendRequests accepted")
	}
}

func TestDCModeServerContextScales(t *testing.T) {
	// The point of DC: many clients, one responder context, no misses.
	cfg := dcConfig()
	cfg.MaxClients = 350
	cl := cluster.New(cluster.Apt(), 1+350, 1)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 350; i++ {
		c, err := srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			t.Fatal(err)
		}
		c.Put(kv.FromUint64(uint64(i+1)), []byte{1}, func(r Result) {
			if r.Status == kv.StatusHit {
				done++
			}
		})
	}
	cl.Eng.Run()
	if done != 350 {
		t.Fatalf("completed %d/350", done)
	}
	// Inbound requests share one DC target context.
	if hr := cl.Machine(0).Verbs.NIC().RecvCtxHitRate(); hr < 0.98 {
		t.Fatalf("server recv-context hit rate = %.3f with 350 DC clients, want ~1", hr)
	}
}
