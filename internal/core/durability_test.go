package core

import (
	"bytes"
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/wal"
)

func durableConfig(mode Durability) Config {
	cfg := smallConfig()
	cfg.Durability = mode
	return cfg
}

// lookup reads a key straight from the owning partition (no network).
func lookup(s *Server, key kv.Key) ([]byte, bool) {
	return s.Partition(mica.Partition(key, s.Config().NS)).Get(key)
}

// TestPreloadWritesThroughWAL is the satellite regression: preloaded
// state must be durable from instant zero, or a crash before the first
// flush replays the log to a pre-preload view.
func TestPreloadWritesThroughWAL(t *testing.T) {
	cl, srv, _ := newHERD(t, durableConfig(DurabilityGroupCommit), 1)
	key := kv.FromUint64(7)
	if err := srv.Preload(key, []byte("preloaded")); err != nil {
		t.Fatal(err)
	}
	// Crash before any flush interval could elapse: t is still 0.
	srv.Crash()
	if _, ok := lookup(srv, key); ok {
		t.Fatal("partitions survived the crash")
	}
	srv.Restart()
	cl.Eng.Run()
	if v, ok := lookup(srv, key); !ok || !bytes.Equal(v, []byte("preloaded")) {
		t.Fatalf("after warm restart: value=%q ok=%v, want the preloaded value", v, ok)
	}
	if !srv.LastRecovery().Warm {
		t.Fatal("restart was not warm")
	}
}

// TestPreloadDeleteWritesThroughWAL: the delete half of the same
// regression — a logged preload-delete must not be resurrected by
// replaying the earlier preload-put.
func TestPreloadDeleteWritesThroughWAL(t *testing.T) {
	cl, srv, _ := newHERD(t, durableConfig(DurabilityGroupCommit), 1)
	key := kv.FromUint64(7)
	if err := srv.Preload(key, []byte("preloaded")); err != nil {
		t.Fatal(err)
	}
	if !srv.PreloadDelete(key) {
		t.Fatal("PreloadDelete missed a present key")
	}
	srv.Crash()
	srv.Restart()
	cl.Eng.Run()
	if _, ok := lookup(srv, key); ok {
		t.Fatal("replay resurrected a deleted key")
	}
}

func TestCrashWipesPartitionsWithoutDurability(t *testing.T) {
	_, srv, _ := newHERD(t, smallConfig(), 1)
	key := kv.FromUint64(3)
	if err := srv.Preload(key, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	srv.Crash()
	srv.Restart()
	if srv.Down() {
		t.Fatal("cold restart should be immediate")
	}
	if _, ok := lookup(srv, key); ok {
		t.Fatal("DRAM partitions survived a crash with durability off")
	}
	if rec := srv.LastRecovery(); rec.Warm || rec.Duration != 0 {
		t.Fatalf("cold restart recorded as %+v", rec)
	}
}

// TestSyncHoldsAckUntilDurable: with DurabilitySync a PUT's response
// waits for its log record's group commit, so the persist latency is
// visible in the client's measured op latency.
func TestSyncHoldsAckUntilDurable(t *testing.T) {
	const persist = 20 * sim.Microsecond
	latency := func(mode Durability) sim.Time {
		cfg := durableConfig(mode)
		cfg.WAL = wal.Config{PersistLatency: persist}
		cl, srv, clients := newHERD(t, cfg, 1)
		var res Result
		clients[0].Put(kv.FromUint64(1), []byte("v"), func(r Result) { res = r })
		cl.Eng.Run()
		if res.Status != kv.StatusHit {
			t.Fatalf("PUT under mode %d failed: %+v", mode, res)
		}
		if srv.WAL().Appends() == 0 {
			t.Fatalf("mode %d logged nothing", mode)
		}
		return res.Latency
	}
	syncLat := latency(DurabilitySync)
	gcLat := latency(DurabilityGroupCommit)
	if syncLat < persist {
		t.Fatalf("sync PUT latency %v does not cover the %v persist", syncLat, persist)
	}
	if gcLat >= persist {
		t.Fatalf("group-commit PUT latency %v waited for the persist", gcLat)
	}
}

// TestWarmRestartReplaysClientWrites drives real client PUTs, crashes
// after they are durable, and checks the warm restart replays them and
// keeps the epoch monotonic.
func TestWarmRestartReplaysClientWrites(t *testing.T) {
	cl, srv, clients := newHERD(t, durableConfig(DurabilityGroupCommit), 1)
	c := clients[0]
	const n = 16
	for i := uint64(0); i < n; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*2*sim.Microsecond, func() {
			c.Put(kv.FromUint64(i), []byte{byte(i)}, func(Result) {})
		})
	}
	cl.Eng.Run() // all writes served and group-committed
	srv.Crash()
	srv.Restart()
	if !srv.Recovering() {
		t.Fatal("warm restart did not enter recovery")
	}
	if !srv.Down() {
		t.Fatal("server accepted requests mid-replay")
	}
	cl.Eng.Run()
	rec := srv.LastRecovery()
	if !rec.Warm || rec.Duration <= 0 {
		t.Fatalf("recovery = %+v, want a warm one with a real outage", rec)
	}
	if got := srv.WAL().Replayed(); got < n {
		t.Fatalf("replayed %d records, want >= %d", got, n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := lookup(srv, kv.FromUint64(i)); !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("key %d after replay: value=%v ok=%v", i, v, ok)
		}
	}
}

// TestCrashMidFlushTruncatesTornTail: a flushcrash-style CrashMidFlush
// leaves a torn tail that the warm restart truncates — replay applies
// only clean records, never a damaged one.
func TestCrashMidFlushTruncatesTornTail(t *testing.T) {
	cl, srv, clients := newHERD(t, durableConfig(DurabilityGroupCommit), 1)
	c := clients[0]
	for i := uint64(0); i < 8; i++ {
		i := i
		cl.Eng.At(sim.Time(i)*sim.Microsecond, func() {
			c.Put(kv.FromUint64(i), []byte{byte(i)}, func(Result) {})
		})
	}
	// Crash while late writes are still pending in the WAL (before the
	// 5us default flush interval catches the tail).
	cl.Eng.At(9*sim.Microsecond, func() { srv.CrashMidFlush() })
	cl.Eng.Run()
	srv.Restart()
	cl.Eng.Run()
	rec := srv.LastRecovery()
	if !rec.Warm {
		t.Fatal("restart was not warm")
	}
	if rec.TornBytes == 0 {
		t.Fatal("mid-flush crash left no torn tail")
	}
	// Every surviving key must carry its exact written value: a torn
	// record is dropped whole, never applied damaged.
	for i := uint64(0); i < 8; i++ {
		if v, ok := lookup(srv, kv.FromUint64(i)); ok && !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("key %d replayed damaged value %v", i, v)
		}
	}
}

func TestRecoveryHookFires(t *testing.T) {
	cl, srv, _ := newHERD(t, durableConfig(DurabilityGroupCommit), 1)
	if err := srv.Preload(kv.FromUint64(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var got []RecoveryInfo
	srv.SetRecoveryHook(func(info RecoveryInfo) { got = append(got, info) })
	srv.Crash()
	srv.Restart()
	cl.Eng.Run()
	if len(got) != 1 || !got[0].Warm {
		t.Fatalf("recovery hook calls = %+v, want one warm recovery", got)
	}
}
