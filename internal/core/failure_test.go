package core

import (
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func TestDeleteRoundTrip(t *testing.T) {
	cl, srv, clients := newHERD(t, smallConfig(), 1)
	c := clients[0]
	key := kv.FromUint64(5)
	var delRes, getRes, del2 Result
	c.Put(key, []byte("doomed"), func(Result) {
		c.Delete(key, func(r Result) {
			delRes = r
			c.Get(key, func(r Result) {
				getRes = r
				c.Delete(key, func(r Result) { del2 = r })
			})
		})
	})
	cl.Eng.Run()
	if delRes.Status != kv.StatusHit {
		t.Fatalf("DELETE of present key: %+v", delRes)
	}
	if getRes.Status == kv.StatusHit {
		t.Fatal("key still present after DELETE")
	}
	if del2.Status == kv.StatusHit {
		t.Fatal("second DELETE should report not-found")
	}
	if srv.Deletes() != 2 {
		t.Fatalf("server deletes = %d, want 2", srv.Deletes())
	}
}

func TestDeleteValidation(t *testing.T) {
	_, _, clients := newHERD(t, smallConfig(), 1)
	if err := clients[0].Delete(kv.Key{}, nil); err == nil {
		t.Fatal("zero-key DELETE accepted")
	}
}

// lossyHERD builds a HERD deployment on a fabric with the given loss
// rate and retries enabled.
func lossyHERD(t *testing.T, lossRate float64, cfg Config) (*cluster.Cluster, *Server, *Client) {
	t.Helper()
	spec := cluster.Apt()
	spec.Link.LossRate = lossRate
	cl := cluster.New(spec, 2, 3)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	return cl, srv, c
}

func TestLossWithoutRetriesHangs(t *testing.T) {
	// Base behavior: with loss and no retries, some ops never complete —
	// the paper's "sacrifices transport-level retransmission".
	cfg := smallConfig()
	cl, _, c := lossyHERD(t, 0.30, cfg)
	n := 100
	completed := 0
	for i := 0; i < n; i++ {
		c.Get(kv.FromUint64(uint64(i+1)), func(Result) { completed++ })
	}
	cl.Eng.RunUntil(50 * sim.Millisecond)
	if completed == n {
		t.Fatal("all ops completed despite 30% loss and no retries")
	}
}

func TestRetriesRecoverFromLoss(t *testing.T) {
	cfg := smallConfig()
	cfg.RetryTimeout = 100 * sim.Microsecond
	cfg.MaxRetries = 25
	cl, _, c := lossyHERD(t, 0.20, cfg)

	key := kv.FromUint64(77)
	n := 60
	completed, ok := 0, 0
	// Sequential ops: each waits for the previous (FIFO hazards under
	// retry are only safe when the timeout exceeds true latency, which
	// sequential issue guarantees here).
	var next func(i int)
	next = func(i int) {
		if i >= n {
			return
		}
		if i%2 == 0 {
			c.Put(key, []byte{byte(i)}, func(r Result) {
				completed++
				if r.Status == kv.StatusHit {
					ok++
				}
				next(i + 1)
			})
		} else {
			c.Get(key, func(r Result) {
				completed++
				if r.Status == kv.StatusHit && r.Value[0] == byte(i-1) {
					ok++
				}
				next(i + 1)
			})
		}
	}
	next(0)
	cl.Eng.RunUntil(400 * sim.Millisecond)

	if completed != n {
		t.Fatalf("completed %d/%d under 20%% loss with retries", completed, n)
	}
	if ok != n {
		t.Fatalf("correct results %d/%d", ok, n)
	}
	if c.Retries() == 0 {
		t.Fatal("no retries recorded despite 20% loss")
	}
}

func TestRetryTimerNoOpWhenLossless(t *testing.T) {
	cfg := smallConfig()
	cfg.RetryTimeout = 50 * sim.Microsecond
	cl, _, c := lossyHERD(t, 0, cfg)
	for i := 0; i < 50; i++ {
		c.Get(kv.FromUint64(uint64(i+1)), nil)
	}
	cl.Eng.Run()
	if c.Retries() != 0 {
		t.Fatalf("lossless run performed %d retries", c.Retries())
	}
	if c.Completed() != 50 {
		t.Fatalf("completed = %d", c.Completed())
	}
}

func TestGapRecovery(t *testing.T) {
	// Deterministic single-request loss: request 1 is dropped while the
	// fabric is fully lossy; later requests to the same process complete
	// normally (response matching is by slot sequence, not FIFO), and
	// request 1 eventually completes via its retry.
	cfg := smallConfig()
	cfg.NS = 1 // force all ops through one process
	cfg.RetryTimeout = 80 * sim.Microsecond
	cfg.MaxRetries = 30

	cl := cluster.New(cluster.Apt(), 2, 5)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}

	var order []int
	cl.Net.SetLossRate(1.0)
	c.Put(kv.FromUint64(1), []byte{1}, func(r Result) {
		if r.Status == kv.StatusHit {
			order = append(order, 1)
		}
	})
	cl.Eng.RunFor(10 * sim.Microsecond) // request 1 is lost in this window
	cl.Net.SetLossRate(0)
	for i := 2; i <= 4; i++ {
		i := i
		c.Put(kv.FromUint64(uint64(i)), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				order = append(order, i)
			}
		})
	}
	// Later requests complete without waiting for the lost one.
	cl.Eng.RunFor(30 * sim.Microsecond)
	if len(order) != 3 {
		t.Fatalf("later requests should have completed: %v", order)
	}
	// The retry recovers request 1.
	cl.Eng.RunUntil(10 * sim.Millisecond)
	if len(order) != 4 || order[3] != 1 {
		t.Fatalf("gap not recovered: %v", order)
	}
	if c.Retries() == 0 {
		t.Fatal("no retry recorded")
	}
	// And the data really landed.
	if v, ok := srv.Partition(0).Get(kv.FromUint64(1)); !ok || v[0] != 1 {
		t.Fatal("retried PUT not applied")
	}
}
