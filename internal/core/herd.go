// Package core implements HERD (Section 4 of the paper): the key-value
// cache in which clients WRITE requests over UC into a polled request
// region on the server, and the server replies with unsignaled SENDs
// over UD.
//
// Everything the paper describes is functional here:
//
//   - The request region layout of Figure 8: NS x NC x W slots of 1 KB,
//     with the keyhash in the rightmost 16 bytes so the RNIC's
//     left-to-right DMA ordering makes a nonzero keyhash imply a fully
//     landed request. The server zeroes the keyhash (and LEN) after
//     serving a slot; clients never use a zero keyhash.
//   - EREW partitioning: clients steer each request to the server
//     process that exclusively owns the key's MICA partition by writing
//     into that process's chunk of the request region.
//   - Request formats: a GET is exactly a 16-byte keyhash; a PUT is
//     [value][LEN][keyhash] written as one WRITE ending at the slot
//     boundary.
//   - Responses are SENDs over UD — one UD QP per server process, NS UD
//     QPs per client — inlined up to a cutoff (the paper switches to
//     non-inlined SENDs at 144-byte values on Apt), unsignaled, using
//     new requests as implicit completion of old SENDs.
//   - The two-stage prefetch pipeline's effect on per-request CPU time
//     (Section 4.1.1) via the host memory model.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/verbs"
	"herdkv/internal/wal"
	"herdkv/internal/wire"
)

// SlotSize is the request slot size; the maximum key-value item is 1 KB
// (Section 4.2).
const SlotSize = 1024

// Slot field offsets from the END of the slot.
const (
	keyTail = kv.KeySize  // keyhash occupies the rightmost 16 bytes
	lenTail = keyTail + 2 // LEN precedes the keyhash
	// respHdr is the response header: status byte, 2-byte value length,
	// and the request's 2-byte window-slot sequence. Echoing the
	// sequence lets clients match responses explicitly, which makes
	// application-level retries (lost request OR lost response) safe
	// with at-least-once, idempotent re-execution.
	respHdr = 5
)

// LEN field encoding: zero denotes a GET (the request is the bare
// keyhash); values up to MaxValueSize denote a PUT of that length;
// lenDelete marks a DELETE (the GET/PUT/DELETE interface of Section 2.1).
const lenDelete = 0xffff

// Response status codes.
const (
	statusOK       = 1
	statusNotFound = 2
	// statusBusy is the explicit overload pushback: the server process
	// shed the request at poll time — before any MICA work — because
	// its admission queue was full. The response value carries a
	// retry-after hint (busyHintBytes of little-endian nanoseconds)
	// derived from the queue depth and the process's service-time EWMA.
	// The fault injector's damage model (XOR 0x5a, zeroed tail) can
	// never turn a valid status byte into another valid one, so busy
	// responses stay distinguishable from corruption.
	statusBusy = 3
)

// busyHintBytes is the size of the retry-after hint riding a StatusBusy
// response, encoded as uint32 nanoseconds.
const busyHintBytes = 4

// leaseBytes is the size of the freshness-lease expiry a lease-granting
// server (Config.LeaseTTL > 0) appends after the value on GET-hit
// responses: the absolute virtual-time expiry as a little-endian
// uint64. The vlen header field still names the value length alone, so
// lease-blind readers of the frame keep working; clients that know the
// server grants leases read the trailing bytes into Result.Lease.
const leaseBytes = 8

// Retry-after hint bounds: the hint is the estimated queue drain time,
// floored so a cold EWMA still spaces retries out, capped so a client
// never parks an op for longer than any plausible drain.
const (
	minBusyHint = 1 * sim.Microsecond
	maxBusyHint = 1 * sim.Millisecond
)

// Config parameterizes a HERD deployment.
type Config struct {
	// NS is the number of server processes (one core each). The paper's
	// evaluation uses 6.
	NS int
	// MaxClients (NC) sizes the request region; the paper uses ~200.
	MaxClients int
	// Window (W) is each client's maximum outstanding requests; the
	// default is 4 (Figure 12 also evaluates 16).
	Window int
	// InlineCutoff is the largest value length sent as an inlined SEND
	// response; larger values go non-inlined (144 on Apt).
	InlineCutoff int
	// Prefetch enables the two-stage request pipeline (Section 4.1.1).
	Prefetch bool
	// Mica configures each per-process cache partition.
	Mica mica.Config

	// UseDC routes request WRITEs over the Dynamically Connected
	// transport instead of UC. The paper expects Connect-IB's DC to
	// resolve Figure 12's client-scaling limit (Section 5.5): all
	// inbound DC traffic shares one NIC context, so the request path
	// keeps WRITE semantics and WRITE speed without per-client receive
	// state. Mutually exclusive with UseSendRequests.
	UseDC bool

	// UseSendRequests selects the SEND/SEND architecture of Section 5.5:
	// clients SEND requests over UD instead of WRITEing them into the
	// request region. This costs ~4-5 Mops of peak throughput (inbound
	// SEND processing plus RECV reposting) but removes all connected
	// state from the server NIC, so throughput no longer declines with
	// client count (compare Figure 12).
	UseSendRequests bool

	// ResponseBatch > 1 lets each server process accumulate up to that
	// many responses and post them behind a single doorbell
	// (PostSendBatch): the response path stops being PIO-bound, raising
	// peak throughput at a small latency cost. 0 or 1 posts responses
	// individually (the paper's behavior).
	ResponseBatch int

	// LeaseTTL > 0 makes every GET hit carry a freshness lease expiring
	// LeaseTTL after the serve time: the server promises nothing about
	// the value past that instant, and a client-side near cache
	// (internal/nearcache) may serve the value locally until it. The
	// server keeps no per-lease state — writes are never blocked on
	// outstanding leases, so a lease bounds staleness rather than
	// forbidding it (see docs/CACHING.md). Costs leaseBytes per GET-hit
	// response on the wire. 0 grants no leases.
	LeaseTTL sim.Time

	// RetryTimeout enables application-level retries: UC/UD sacrifice
	// transport-level retransmission, so on (rare) packet loss the
	// client rewrites its request after this much time with no response
	// (Section 2.2.3). Zero disables retries — and with them terminal
	// timeouts: an un-retried lost op simply never completes. The
	// timeout must comfortably exceed worst-case response latency or
	// duplicated responses will waste request-region writes.
	RetryTimeout sim.Time
	// MaxRetries is the per-op retry budget (default 3 when retries are
	// enabled). An op that exhausts it completes with a terminal
	// Result.Err of ErrTimedOut instead of retrying forever.
	MaxRetries int
	// RetryBackoff multiplies the retry delay after each attempt
	// (exponential backoff; default 2 when retries are enabled). 1
	// restores the fixed-interval behavior.
	RetryBackoff float64
	// RetryBackoffCap bounds the backed-off delay (default 16x
	// RetryTimeout).
	RetryBackoffCap sim.Time
	// RetryJitter spreads each retry delay by a uniformly random
	// fraction in [0, RetryJitter] drawn from the client's seeded RNG,
	// decorrelating retry storms without breaking determinism (default
	// 0.1; negative disables).
	RetryJitter float64
	// ReconnectTimeout is the per-attempt timeout of the client's
	// crash-recovery handshake (default 20x RetryTimeout). Reconnect
	// attempts back off and jitter like retries do.
	ReconnectTimeout sim.Time

	// AdmissionLimit bounds each server process's queue of admitted
	// requests awaiting CPU service. A request landing while the queue
	// is full is shed at poll time — before any MICA work, so a
	// rejected request costs near-zero server CPU — with an explicit
	// StatusBusy response carrying a retry-after hint derived from the
	// queue depth and the process's service-time EWMA. 0 disables
	// admission control (the paper's behavior: unbounded queueing,
	// overload surfaces only as latency and eventual client timeouts).
	AdmissionLimit int

	// OpDeadline bounds an operation's total time in flight across
	// busy retries: when a StatusBusy pushback's retry-after hint
	// would reschedule the op past its deadline, the op fails
	// terminally with ErrOverloaded (kv.StatusBusy) instead. 0
	// disables deadlines — busy retries continue until admitted.
	// Deadlines govern only the busy path; loss-retry budgets
	// (MaxRetries) are deliberately decoupled, so pushback never
	// counts against the crash-detection budget.
	OpDeadline sim.Time

	// AdaptiveWindow enables the client-side AIMD window: additive
	// increase on served completions, multiplicative decrease (halve)
	// on StatusBusy pushback or terminal timeout, floor 1, ceiling
	// Window. Clients then self-pace under overload instead of
	// retry-storming. Off by default (the paper's fixed W).
	AdaptiveWindow bool

	// Durability selects the write-ahead-log mode (see internal/wal and
	// docs/DURABILITY.md). Off (the default, the paper's behavior) keeps
	// the MICA partitions purely volatile: a crash loses everything and
	// Restart comes back cold. DurabilityGroupCommit logs every
	// successful PUT/DELETE and acks before the group commit persists
	// (the group-commit window is the exposure). DurabilitySync holds
	// each mutation's response until its log record is durable.
	Durability Durability

	// WAL parameterizes the write-ahead log's group commit and persist
	// device; zero values take the wal package defaults. Ignored when
	// Durability is off.
	WAL wal.Config

	// VersionedValues makes the server order mutations by the
	// kv.Version stamp prefixed to every value (see internal/kv): a
	// PUT whose stamp does not outrank the stored entry's is refused
	// (acked, not applied), and DELETEs arrive as tombstone PUTs
	// rather than removals, so replicas converge to the
	// highest-stamped state no matter the apply order. Off by default
	// (the paper's unversioned cache); the versioned fleet client
	// turns it on for every replica it drives.
	VersionedValues bool
}

// Durability is the Config.Durability knob.
type Durability int

// Durability modes.
const (
	// DurabilityOff disables the WAL: the paper's volatile cache.
	DurabilityOff Durability = iota
	// DurabilityGroupCommit logs mutations and acks immediately; the
	// batched group commit persists them within a flush interval.
	DurabilityGroupCommit
	// DurabilitySync logs mutations and acks only once durable
	// (log-before-ack), forcing a flush per mutation.
	DurabilitySync
)

// Effective retry-policy accessors: zero-valued fields mean defaults.

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

func (c Config) retryBackoff() float64 {
	if c.RetryBackoff <= 0 {
		return 2
	}
	return c.RetryBackoff
}

func (c Config) retryBackoffCap() sim.Time {
	if c.RetryBackoffCap <= 0 {
		return 16 * c.RetryTimeout
	}
	return c.RetryBackoffCap
}

func (c Config) retryJitter() float64 {
	if c.RetryJitter < 0 {
		return 0
	}
	if c.RetryJitter == 0 {
		return 0.1
	}
	return c.RetryJitter
}

func (c Config) reconnectTimeout() sim.Time {
	if c.ReconnectTimeout <= 0 {
		return 20 * c.RetryTimeout
	}
	return c.ReconnectTimeout
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		NS:           6,
		MaxClients:   208,
		Window:       4,
		InlineCutoff: 144,
		Prefetch:     true,
		Mica:         mica.DefaultConfig(),
	}
}

// RegionSize returns the request region size in bytes: NS*NC*W KB.
func (c Config) RegionSize() int { return c.NS * c.MaxClients * c.Window * SlotSize }

// SlotIndex computes the request slot for server process s, client c,
// request sequence r — the paper's s*(W*NC) + (c*W) + r mod W.
//
//herd:hotpath
func (c Config) SlotIndex(s, client, r int) int {
	return s*(c.Window*c.MaxClients) + client*c.Window + r%c.Window
}

// Server is the HERD server machine: NS server processes sharing the
// request region, each owning one MICA partition and one UD QP.
type Server struct {
	cfg       Config
	machine   *cluster.Machine
	region    *verbs.MR
	parts     []*mica.Cache
	udQPs     []*verbs.QP
	sendStage *verbs.MR // SEND/SEND mode RECV staging pool
	dcQP      *verbs.QP // DC mode: the single DC target for all clients
	nextCli   int

	// ucByClient[c] is the server-side UC QP connected to client c's
	// request QP (WRITE mode only); tracked so a crash can error it and
	// a reconnect can replace it.
	ucByClient []*verbs.QP

	// Crash state: down marks the server process dead (requests are
	// ignored, queue pairs errored); epoch increments at each crash so
	// CPU work queued before the crash is discarded when it drains.
	down  bool
	epoch int

	// Durability state (Config.Durability != DurabilityOff): the shared
	// write-ahead log behind all NS partitions, whether a log replay is
	// in progress (the server stays down until it completes), the last
	// completed recovery, and the hook fleet recovery installs to learn
	// when — and how warm — this shard rejoined.
	wlog         *wal.Log
	recovering   bool
	lastRecovery RecoveryInfo
	onRecovered  func(RecoveryInfo)

	// telRecoveryTime records each recovery's duration in nanoseconds.
	telRecoveryTime *telemetry.Gauge

	// clientUD[c][s] is client c's UD QP for responses from process s,
	// registered at connection setup (the paper's address-handle
	// exchange).
	clientUD [][]*verbs.QP

	// Response batching state (Config.ResponseBatch > 1): per-process
	// buffered response WRs and whether a flush timer is armed.
	respBuf   [][]verbs.SendWR
	respArmed []bool

	// respScratch[proc] is the process's preallocated response build
	// buffer. Safe whenever the response is posted before the building
	// callback returns (verbs copies WR data at post time); responses
	// that outlive their callback — batched doorbells, sync-durability
	// acks — get fresh allocations instead (see respFor).
	respScratch [][]byte

	// Admission control (Config.AdmissionLimit > 0): per-process count
	// of admitted requests awaiting CPU service, and an EWMA of
	// per-request service time. Together they yield the StatusBusy
	// retry-after hint: depth x EWMA estimates the queue drain time.
	queued  []int
	svcEWMA []sim.Time

	// Stats
	gets, puts, getHits uint64
	deletes             uint64
	inlineResponses     uint64
	nonInlineResponses  uint64
	rejected            uint64 // malformed/corrupt requests refused
	shed                uint64 // requests refused by admission control

	// telRejected counts refused requests (nil when un-instrumented).
	telRejected *telemetry.Counter
	// telShed counts admission-control sheds.
	telShed *telemetry.Counter

	// slotTraces carries a request's lifecycle trace from client to
	// server in WRITE/DC mode, where the request itself travels only as
	// memory bytes: the client registers its trace under the slot it is
	// about to WRITE, and serve() picks it up when the keyhash lands.
	// (SEND/SEND mode instead rides verbs.Completion.Trace.)
	slotTraces map[int]*telemetry.Trace
}

// NewServer initializes HERD on machine m. It plays the role of the
// paper's initializer process (creates and registers the request region)
// plus the NS server processes.
func NewServer(m *cluster.Machine, cfg Config) (*Server, error) {
	if cfg.NS < 1 || cfg.NS > m.CPU.Cores() {
		return nil, fmt.Errorf("core: NS=%d must be in [1, %d cores]", cfg.NS, m.CPU.Cores())
	}
	if cfg.Window < 1 || cfg.MaxClients < 1 {
		return nil, errors.New("core: Window and MaxClients must be positive")
	}
	if cfg.UseDC && cfg.UseSendRequests {
		return nil, errors.New("core: UseDC and UseSendRequests are mutually exclusive")
	}
	s := &Server{cfg: cfg, machine: m}
	s.region = m.Verbs.RegisterMR(cfg.RegionSize())
	s.parts = make([]*mica.Cache, cfg.NS)
	s.udQPs = make([]*verbs.QP, cfg.NS)
	s.ucByClient = make([]*verbs.QP, cfg.MaxClients)
	s.queued = make([]int, cfg.NS)
	s.svcEWMA = make([]sim.Time, cfg.NS)
	s.respScratch = make([][]byte, cfg.NS)
	for i := range s.respScratch {
		s.respScratch[i] = make([]byte, respHdr+mica.MaxValueSize+leaseBytes)
	}
	s.telRejected = m.Verbs.Telemetry().Counter("herd.requests.rejected")
	s.telShed = m.Verbs.Telemetry().Counter("herd.shed")
	for i := range s.parts {
		s.parts[i] = mica.New(cfg.Mica)
	}
	if cfg.Durability != DurabilityOff {
		tel := m.Verbs.Telemetry()
		s.wlog = wal.New(m.Verbs.NIC().Engine(), cfg.WAL, tel)
		s.wlog.SetSnapshotSource(s.snapshotLiveState)
		s.telRecoveryTime = tel.Gauge("recovery.time")
	}
	s.createQPs()
	if !cfg.UseSendRequests {
		s.region.Watch(0, cfg.RegionSize(), s.onRequestLanded)
	}
	return s, nil
}

// createQPs builds the server's NIC-side state: per-process UD QPs
// (with the SEND/SEND RECV pool and handlers when that mode is on) and
// the DC target. Called at construction and again at Restart, since
// errored queue pairs cannot be revived.
func (s *Server) createQPs() {
	m, cfg := s.machine, s.cfg
	for i := range s.udQPs {
		s.udQPs[i] = m.Verbs.CreateQP(wire.UD)
	}
	if cfg.UseSendRequests {
		// SEND/SEND mode (Section 5.5): each process's UD QP also
		// receives requests; pre-post a deep pool of RECVs per process.
		// Every process needs at least the full client window's worth —
		// integer division must never round a small pool down to zero.
		perProc := 2 * cfg.MaxClients * cfg.Window / cfg.NS
		if min := 2 * cfg.Window; perProc < min {
			perProc = min
		}
		if s.sendStage == nil {
			s.sendStage = m.Verbs.RegisterMR(perProc * cfg.NS * SlotSize)
		}
		for p := 0; p < cfg.NS; p++ {
			p := p
			for w := 0; w < perProc; w++ {
				slot := p*perProc + w
				postLossy(s.udQPs[p].PostRecv(s.sendStage, slot*SlotSize, SlotSize, uint64(slot)))
			}
			s.udQPs[p].RecvCQ().SetHandler(func(comp verbs.Completion) {
				s.onSendRequest(p, comp)
			})
		}
	} else if cfg.UseDC {
		s.dcQP = m.Verbs.CreateQP(wire.DC)
	}
}

// Crash kills the server process, as a fault.CrashTarget: every
// server-side queue pair transitions to the error state (outstanding
// WRs flush in error), buffered responses and in-flight request traces
// are dropped, and request-region contents are dead — a restarted
// process re-registers the region and starts from zeroed slots. The
// MICA partitions are DRAM and die with the machine: without a WAL the
// server restarts cold; with one, Restart replays snapshot + log tail
// and rejoins warm.
func (s *Server) Crash() {
	if s.down {
		return
	}
	s.down = true
	s.epoch++
	for _, qp := range s.udQPs {
		qp.SetError()
	}
	for _, qp := range s.ucByClient {
		if qp != nil {
			qp.SetError()
		}
	}
	if s.dcQP != nil {
		s.dcQP.SetError()
	}
	s.slotTraces = nil
	s.respBuf = nil
	s.respArmed = nil
	for i := range s.parts {
		s.parts[i] = mica.New(s.cfg.Mica)
	}
	if s.wlog != nil {
		s.wlog.Crash()
	}
}

// CrashMidFlush is the fault injector's "flushcrash" variant: the power
// loss lands mid-group-commit, so the WAL's device write is cut
// strictly inside its final record and recovery must truncate a torn
// tail. Without a WAL it degenerates to a plain Crash.
func (s *Server) CrashMidFlush() {
	if s.down {
		return
	}
	if s.wlog != nil {
		s.wlog.CrashTorn()
	}
	s.Crash()
}

// Restart brings a crashed server back: the request region is
// re-registered zeroed (all pre-crash request state is gone) and fresh
// queue pairs replace the errored ones. WRITE-mode clients must run the
// re-registration handshake to reconnect their UC pairs; SEND/SEND and
// DC clients address the server per-message and recover by retrying.
//
// With durability on, the restart is warm: the server stays down while
// the WAL replays snapshot + log tail into fresh MICA partitions (a
// measurable outage on the sim clock), restores its pre-crash epoch
// from the replayed records, and only then accepts requests. Without a
// WAL the restart is cold and immediate.
func (s *Server) Restart() {
	if !s.down || s.recovering {
		return
	}
	if s.wlog == nil {
		s.rejoin()
		s.finishRecovery(RecoveryInfo{At: s.now()})
		return
	}
	s.recovering = true
	start := s.now()
	tr := s.machine.Verbs.Telemetry().StartTrace("recovery", start)
	s.wlog.Recover(s.applyRecord, func(st wal.RecoverStats) {
		s.recovering = false
		// Epoch monotonicity: the replayed records carry the epochs of
		// the writes they logged; never rejoin at or below one of them.
		if st.MaxEpoch >= s.epoch {
			s.epoch = st.MaxEpoch + 1
		}
		s.rejoin()
		tr.Mark("wal.replay", s.now())
		s.finishRecovery(RecoveryInfo{
			Warm:            true,
			At:              s.now(),
			Duration:        s.now() - start,
			Replayed:        st.Records,
			SnapshotRecords: st.SnapshotRecords,
			TornBytes:       st.TornBytes,
			Since:           st.Since,
		})
	})
}

// rejoin is the shared tail of Restart: zeroed region, fresh QPs, up.
func (s *Server) rejoin() {
	buf := s.region.Bytes()
	for i := range buf {
		buf[i] = 0
	}
	s.createQPs()
	s.down = false
}

// finishRecovery records one completed restart and notifies the fleet.
func (s *Server) finishRecovery(info RecoveryInfo) {
	s.lastRecovery = info
	if s.telRecoveryTime != nil {
		s.telRecoveryTime.Set(int64(info.Duration / sim.Nanosecond))
	}
	if s.onRecovered != nil {
		s.onRecovered(info)
	}
}

// applyRecord replays one WAL record into the owning MICA partition.
func (s *Server) applyRecord(r wal.Record) {
	part := s.parts[mica.Partition(r.Key, s.cfg.NS)]
	switch r.Op {
	case wal.OpPut:
		if s.cfg.VersionedValues {
			_, _, _ = s.applyVersionedPut(part, r.Key, r.Value)
			return
		}
		_ = part.Put(r.Key, r.Value)
	case wal.OpDelete:
		part.Delete(r.Key)
	}
}

// applyVersionedPut applies a version-stamped PUT with last-writer-wins
// ordering: a stamp that does not outrank the stored entry's is refused
// without touching the partition, which makes replays, repair
// back-fills, and duplicate retries idempotent in any order. It returns
// the response status under HERD's delete-as-tombstone convention
// (statusOK for live writes and for tombstones that killed a live
// entry, statusNotFound for a tombstone landing on absent-or-dead
// state), whether the partition changed (and so the mutation must be
// WAL-logged), and any storage error. Unstamped values fall back to a
// plain overwrite so legacy preloads keep working.
func (s *Server) applyVersionedPut(part *mica.Cache, key kv.Key, value []byte) (status byte, applied bool, err error) {
	nv, ntomb, _, ok := kv.SplitVersion(value)
	if !ok {
		return statusOK, true, part.Put(key, value)
	}
	priorLive := false
	if old, found := part.Get(key); found {
		ov, otomb, _, ook := kv.SplitVersion(old)
		if ook {
			priorLive = !otomb
			if !ov.Less(nv) {
				return versionedStatus(ntomb, priorLive), false, nil
			}
		} else {
			priorLive = true
		}
	}
	if err := part.Put(key, value); err != nil {
		return statusNotFound, false, err
	}
	return versionedStatus(ntomb, priorLive), true, nil
}

// versionedStatus maps a versioned PUT's outcome to a response status:
// a tombstone reports what it deleted (kvtest's delete-of-absent = not
// found), everything else acks OK.
func versionedStatus(tombstone, priorLive bool) byte {
	if tombstone && !priorLive {
		return statusNotFound
	}
	return statusOK
}

// snapshotLiveState walks every partition's live entries for WAL
// snapshot compaction (partition order, then mica.Cache.Range's
// deterministic index-slot order within each).
func (s *Server) snapshotLiveState(emit func(key kv.Key, value []byte)) {
	for _, part := range s.parts {
		part.Range(func(key kv.Key, value []byte) bool {
			emit(key, value)
			return true
		})
	}
}

// now returns the shared sim clock's current instant.
func (s *Server) now() sim.Time { return s.machine.Verbs.NIC().Engine().Now() }

// RecoveryInfo describes one completed Server.Restart.
type RecoveryInfo struct {
	// Warm reports whether the restart replayed a WAL (false: cold).
	Warm bool
	// At is when the server came back up.
	At sim.Time
	// Duration is the replay outage (zero for a cold restart).
	Duration sim.Time
	// Replayed and SnapshotRecords count applied log-tail and snapshot
	// records.
	Replayed        int
	SnapshotRecords int
	// TornBytes is how much torn log tail the replay truncated.
	TornBytes int
	// Since is the instant from which this shard's log may be missing
	// records — the fleet's delta catch-up replays survivors' writes
	// from here.
	Since sim.Time
}

// SetRecoveryHook registers fn to run whenever a Restart completes
// (cold or warm). The fleet layer uses it to start delta catch-up.
func (s *Server) SetRecoveryHook(fn func(RecoveryInfo)) { s.onRecovered = fn }

// LastRecovery returns the most recent completed restart's info.
func (s *Server) LastRecovery() RecoveryInfo { return s.lastRecovery }

// WAL exposes the server's write-ahead log (nil with durability off).
func (s *Server) WAL() *wal.Log { return s.wlog }

// WALRecordsSince returns this shard's logged records appended at or
// after t — the survivor side of a fleet delta catch-up.
func (s *Server) WALRecordsSince(t sim.Time) []wal.Record {
	if s.wlog == nil {
		return nil
	}
	return s.wlog.RecordsSince(t)
}

// Down reports whether the server process is crashed.
func (s *Server) Down() bool { return s.down }

// Recovering reports whether a WAL replay is in progress (the server is
// down until it completes).
func (s *Server) Recovering() bool { return s.recovering }

// reregister is the server half of the reconnection handshake: a live
// server replaces the client's (errored) server-side UC QP with a fresh
// connected one. Reports whether the handshake succeeded.
func (s *Server) reregister(c *Client) bool {
	if s.down || c.ucQP == nil {
		return false
	}
	qp := s.machine.Verbs.CreateQP(wire.UC)
	if err := verbs.Connect(c.ucQP, qp); err != nil {
		return false
	}
	s.ucByClient[c.id] = qp
	return true
}

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

// Region exposes the request region (for tests and layout inspection).
func (s *Server) Region() *verbs.MR { return s.region }

// Partition returns server process i's cache partition.
func (s *Server) Partition(i int) *mica.Cache { return s.parts[i] }

// Preload inserts an item server-side (no network traffic), routing it
// to the partition that will serve it — used to warm a deployment before
// an experiment, and by fleet migration/catch-up to copy keys between
// shards. With durability on it writes through the WAL as immediately
// durable (the control-plane path models data loaded before the run):
// otherwise a crash before the first flush would replay the log to a
// pre-preload view and silently resurrect deleted or stale state.
func (s *Server) Preload(key kv.Key, value []byte) error {
	part := s.parts[mica.Partition(key, s.cfg.NS)]
	if s.cfg.VersionedValues {
		// Ordered apply: an anti-entropy back-fill racing a fresher
		// client write must never regress the stored version, and a
		// refused (stale) copy must not reach the WAL either.
		_, applied, err := s.applyVersionedPut(part, key, value)
		if err != nil || !applied {
			return err
		}
		if s.wlog != nil {
			s.wlog.AppendDurable(wal.Record{
				Op: wal.OpPut, Key: key,
				Value: append([]byte(nil), value...),
				Epoch: s.epoch,
			})
		}
		return nil
	}
	if s.wlog != nil {
		s.wlog.AppendDurable(wal.Record{
			Op: wal.OpPut, Key: key,
			Value: append([]byte(nil), value...),
			Epoch: s.epoch,
		})
	}
	return part.Put(key, value)
}

// PreloadDelete removes an item server-side, through the WAL like
// Preload — the delete half of a fleet delta catch-up (a recovered
// shard replaying a survivor's post-crash DELETEs).
func (s *Server) PreloadDelete(key kv.Key) bool {
	if s.wlog != nil {
		s.wlog.AppendDurable(wal.Record{Op: wal.OpDelete, Key: key, Epoch: s.epoch})
	}
	return s.parts[mica.Partition(key, s.cfg.NS)].Delete(key)
}

// Stats reports server-side operation counts.
func (s *Server) Stats() (gets, getHits, puts uint64) { return s.gets, s.getHits, s.puts }

// Deletes reports served DELETE counts.
func (s *Server) Deletes() uint64 { return s.deletes }

// Rejected reports requests refused by the length/keyhash validity
// checks (corrupted or malformed).
func (s *Server) Rejected() uint64 { return s.rejected }

// Shed reports requests refused by admission control with a StatusBusy
// pushback (Config.AdmissionLimit).
func (s *Server) Shed() uint64 { return s.shed }

// QueueDepth reports process proc's current admitted-but-unserved
// request count (tests and experiments).
func (s *Server) QueueDepth(proc int) int { return s.queued[proc] }

// SetAdmissionLimit adjusts the admission queue cap at runtime (zero
// disables shedding). Lets tests and experiments brown out a single
// fleet member without reconfiguring the whole deployment.
func (s *Server) SetAdmissionLimit(n int) { s.cfg.AdmissionLimit = n }

// InlineStats reports how responses were sent.
func (s *Server) InlineStats() (inline, nonInline uint64) {
	return s.inlineResponses, s.nonInlineResponses
}

// onRequestLanded fires when a client WRITE completes in the request
// region. The RNIC writes left to right, so by the time the keyhash
// bytes (rightmost) are visible, the whole request is. The landing that
// covers a slot's tail is the polling trigger. A slot whose keyhash was
// rewritten after service (a client retry whose original response was
// lost) is served again: operations are idempotent, and the echoed slot
// sequence lets the client discard duplicate responses.
func (s *Server) onRequestLanded(off, n int) {
	if s.down {
		return // no process is polling a crashed server's region
	}
	end := off + n
	if end%SlotSize != 0 {
		return // not a request-format write
	}
	slot := end/SlotSize - 1
	proc := slot / (s.cfg.Window * s.cfg.MaxClients)
	rest := slot % (s.cfg.Window * s.cfg.MaxClients)
	client := rest / s.cfg.Window
	if proc >= s.cfg.NS {
		return
	}
	s.serve(proc, client, slot)
}

// request is one parsed client operation awaiting CPU service.
type request struct {
	proc, client int
	key          kv.Key
	vlen         int
	value        []byte
	rMod         uint16
	slotRaw      []byte // WRITE mode: the slot, whose tail is zeroed after service
	viaSend      bool   // SEND/SEND mode: charge RECV reposting
	trace        *telemetry.Trace
}

// noteTrace registers tr as the lifecycle trace of the next request to
// land in slot (see slotTraces).
func (s *Server) noteTrace(slot int, tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	if s.slotTraces == nil {
		s.slotTraces = make(map[int]*telemetry.Trace)
	}
	s.slotTraces[slot] = tr
}

func (s *Server) takeTrace(slot int) *telemetry.Trace {
	tr, ok := s.slotTraces[slot]
	if ok {
		delete(s.slotTraces, slot)
	}
	return tr
}

// serve parses the request in `slot` (WRITE mode) and runs it.
func (s *Server) serve(proc, client, slot int) {
	base := slot * SlotSize
	raw := s.region.Bytes()[base : base+SlotSize]

	var key kv.Key
	copy(key[:], raw[SlotSize-keyTail:])
	if key.IsZero() {
		// A landed WRITE covering the slot tail always carries a client
		// keyhash, and clients never use a zero one — so this request
		// was corrupted in flight (injected corruption zeroes packet
		// tails). Refuse it; the client's retry will rewrite the slot.
		s.reject()
		zeroTail(raw)
		return
	}
	vlen := int(binary.LittleEndian.Uint16(raw[SlotSize-lenTail : SlotSize-keyTail]))
	if !validLen(vlen) {
		s.reject()
		zeroTail(raw)
		return
	}
	if s.overloaded(proc) {
		// Shed at poll time, before any MICA work: the rejected request
		// costs the process only this check, and the client gets an
		// explicit pushback instead of silent queueing.
		s.shedRequest(proc, client, uint16(slot%s.cfg.Window), s.takeTrace(slot))
		zeroTail(raw)
		return
	}
	req := request{
		proc: proc, client: client, key: key, vlen: vlen,
		rMod: uint16(slot % s.cfg.Window), slotRaw: raw,
		trace: s.takeTrace(slot),
	}
	if vlen > 0 && vlen != lenDelete {
		req.value = raw[SlotSize-lenTail-vlen : SlotSize-lenTail]
	}
	s.execute(req)
}

// overloaded reports whether process proc's admission queue is full.
//
//herd:hotpath
func (s *Server) overloaded(proc int) bool {
	return s.cfg.AdmissionLimit > 0 && s.queued[proc] >= s.cfg.AdmissionLimit
}

// retryAfterHint estimates how long process proc's queue takes to
// drain: depth x service-time EWMA, floored (a cold EWMA must still
// space retries out) and capped.
//
//herd:hotpath
func (s *Server) retryAfterHint(proc int) sim.Time {
	ewma := s.svcEWMA[proc]
	if ewma <= 0 {
		ewma = minBusyHint
	}
	h := sim.Time(s.queued[proc]) * ewma
	if h < minBusyHint {
		h = minBusyHint
	}
	if h > maxBusyHint {
		h = maxBusyHint
	}
	return h
}

// shedRequest refuses one request under overload: an immediate
// StatusBusy SEND carrying the retry-after hint, posted without
// touching MICA or the process's service queue.
func (s *Server) shedRequest(proc, client int, rMod uint16, tr *telemetry.Trace) {
	s.shed++
	s.telShed.Inc()
	now := s.machine.Verbs.NIC().Engine().Now()
	tr.SetPrefix("")
	tr.Mark("shed", now)
	tr.SetPrefix("resp.")
	hintNS := uint32(s.retryAfterHint(proc) / sim.Nanosecond)
	// Busy pushbacks always post synchronously (never batched, never
	// deferred behind the WAL), so the process scratch is safe here.
	resp := encodeRespHeader(s.respScratch[proc], statusBusy, busyHintBytes, rMod)
	binary.LittleEndian.PutUint32(resp[respHdr:], hintNS)
	dest := s.clientQP(client, proc)
	if dest == nil {
		return
	}
	postLossy(s.udQPs[proc].PostSend(verbs.SendWR{
		Verb:   verbs.SEND,
		Data:   resp,
		Dest:   dest,
		Inline: true,
		Trace:  tr,
	}))
}

// noteService folds one request's CPU service time into proc's EWMA
// (alpha 1/8; the first sample seeds it directly).
//
//herd:hotpath
func (s *Server) noteService(proc int, service sim.Time) {
	if s.svcEWMA[proc] == 0 {
		s.svcEWMA[proc] = service
		return
	}
	s.svcEWMA[proc] += (service - s.svcEWMA[proc]) / 8
}

// validLen reports whether a slot LEN field is structurally possible:
// zero (GET), the DELETE sentinel, or a PUT length that fits both the
// item-size bound and the slot. The check is how corrupt-but-delivered
// requests are rejected (the paper leaves integrity to the application).
//
//herd:hotpath
func validLen(vlen int) bool {
	return vlen == 0 || vlen == lenDelete ||
		(vlen <= mica.MaxValueSize && vlen <= SlotSize-lenTail)
}

// reject counts one refused (malformed or corrupted) request.
func (s *Server) reject() {
	s.rejected++
	s.telRejected.Inc()
}

// zeroTail clears a slot's LEN + keyhash so a rejected slot is not
// re-served by a later overlapping landing.
//
//herd:hotpath
func zeroTail(raw []byte) {
	for i := SlotSize - lenTail; i < SlotSize; i++ {
		raw[i] = 0
	}
}

// encodeRespHeader writes a response header into dst and returns the
// framed response dst[:respHdr+vlen]; the caller fills the value bytes
// after the header. dst must have capacity for the full response.
//
//herd:hotpath
func encodeRespHeader(dst []byte, status byte, vlen int, rMod uint16) []byte {
	h := dst[:respHdr+vlen]
	h[0] = status
	binary.LittleEndian.PutUint16(h[1:3], uint16(vlen))
	binary.LittleEndian.PutUint16(h[3:5], rMod)
	return h
}

// respFor returns the buffer a vlen-byte response for proc is built
// in: the process's preallocated scratch when the response posts
// before the building callback returns (the default path — verbs
// copies WR data at post time), a fresh allocation when it must
// outlive the callback. Batched-doorbell responses sit in respBuf
// until the flush, and sync-durability acks wait for the group
// commit; in both cases a later request on the same process would
// overwrite the scratch before the bytes were read.
func (s *Server) respFor(proc, vlen int) []byte {
	if s.cfg.ResponseBatch > 1 || s.cfg.Durability == DurabilitySync {
		return make([]byte, respHdr+vlen)
	}
	return s.respScratch[proc]
}

// execute runs one request on its process's core: poll/RECV handling,
// MICA work (with or without the prefetch pipeline), and the response
// SEND.
func (s *Server) execute(req request) {
	isPut := req.vlen > 0 && req.vlen != lenDelete
	isDelete := req.vlen == lenDelete
	accesses := mica.AccessesPerGet
	if isPut || isDelete {
		accesses = mica.AccessesPerPut
	}
	service := s.machine.CPU.RequestService(accesses, s.cfg.Prefetch)
	if req.viaSend {
		service += s.machine.CPU.Params().RecvRepost
	}

	epoch := s.epoch
	s.queued[req.proc]++
	s.noteService(req.proc, service)
	s.machine.CPU.Core(req.proc).Submit(service, func(at sim.Time) {
		// The admission queue drains regardless of crash state: the
		// increment happened, so the decrement must too.
		s.queued[req.proc]--
		// Work queued before a crash dies with the process.
		if s.down || s.epoch != epoch {
			return
		}
		// The "cpu" span covers poll detection, MICA service, and
		// response posting; what follows gets the "resp." prefix.
		req.trace.SetPrefix("")
		req.trace.Mark("cpu", at)
		req.trace.SetPrefix("resp.")
		part := s.parts[req.proc]
		var resp []byte
		// logged is non-nil when this request mutated state that the WAL
		// must record (a successful PUT or DELETE under durability).
		var logged *wal.Record
		switch {
		case isPut:
			s.puts++
			var status byte
			var applied bool
			var err error
			if s.cfg.VersionedValues {
				status, applied, err = s.applyVersionedPut(part, req.key, req.value)
			} else {
				err = part.Put(req.key, req.value)
				status, applied = statusOK, err == nil
			}
			if err != nil {
				status = statusNotFound
			} else if applied && s.wlog != nil {
				// The slot's value bytes are zeroed and reused after the
				// response; the log record needs its own copy.
				logged = &wal.Record{
					Op: wal.OpPut, Key: req.key,
					Value: append([]byte(nil), req.value...),
					Epoch: epoch,
				}
			}
			resp = encodeRespHeader(s.respFor(req.proc, 0), status, 0, req.rMod)
		case isDelete:
			s.deletes++
			status := byte(statusNotFound)
			if part.Delete(req.key) {
				status = statusOK
				if s.wlog != nil {
					logged = &wal.Record{Op: wal.OpDelete, Key: req.key, Epoch: epoch}
				}
			}
			resp = encodeRespHeader(s.respFor(req.proc, 0), status, 0, req.rMod)
		default:
			v, ok := part.Get(req.key)
			s.gets++
			if ok {
				s.getHits++
				ext := 0
				if s.cfg.LeaseTTL > 0 {
					ext = leaseBytes
				}
				resp = encodeRespHeader(s.respFor(req.proc, len(v)+ext), statusOK, len(v), req.rMod)
				copy(resp[respHdr:], v)
				if ext > 0 {
					// Grant a lease expiring LeaseTTL from now; the header's
					// vlen stays the value length, the frame just extends.
					resp = resp[:respHdr+len(v)+ext]
					binary.LittleEndian.PutUint64(resp[respHdr+len(v):], uint64(at+s.cfg.LeaseTTL))
				}
			} else {
				resp = encodeRespHeader(s.respFor(req.proc, 0), statusNotFound, 0, req.rMod)
			}
		}

		respond := func() {
			// Free the slot for the client's next request: zero LEN + key.
			if req.slotRaw != nil {
				zeroTail(req.slotRaw)
			}

			// Response: unsignaled SEND over UD, inlined below the cutoff.
			inline := len(resp)-respHdr <= s.cfg.InlineCutoff
			if inline {
				s.inlineResponses++
			} else {
				s.nonInlineResponses++
			}
			dest := s.clientQP(req.client, req.proc)
			if dest == nil {
				return
			}
			wr := verbs.SendWR{
				Verb:   verbs.SEND,
				Data:   resp,
				Dest:   dest,
				Inline: inline,
				Trace:  req.trace,
			}
			if s.cfg.ResponseBatch <= 1 {
				postLossy(s.udQPs[req.proc].PostSend(wr))
				return
			}
			s.bufferResponse(req.proc, wr)
		}

		if logged == nil {
			respond() // reads and failed mutations: nothing to persist
			return
		}
		if s.cfg.Durability == DurabilitySync {
			// Log-before-ack: the response waits for the record's group
			// commit. A crash in between drops the callback with the ack
			// unsent — the client retries and the operation re-executes
			// idempotently after recovery.
			s.wlog.Append(*logged, func() {
				if s.down || s.epoch != epoch {
					return
				}
				req.trace.Mark("wal.flush", s.now())
				respond()
			})
			s.wlog.Flush()
			return
		}
		// Group commit: ack now, persist within the flush window. The
		// window is the durability exposure — an acked write younger than
		// the last commit can die with a crash, which is exactly what the
		// fleet's delta catch-up re-covers from the surviving replica.
		s.wlog.Append(*logged, nil)
		respond()
	})
}

// respFlushDelay bounds how long a buffered response waits for batch
// companions — roughly one polling round.
const respFlushDelay = 300 * sim.Nanosecond

// bufferResponse queues wr for process proc and flushes when the batch
// fills or the flush timer expires.
func (s *Server) bufferResponse(proc int, wr verbs.SendWR) {
	if s.respBuf == nil {
		s.respBuf = make([][]verbs.SendWR, s.cfg.NS)
		s.respArmed = make([]bool, s.cfg.NS)
	}
	s.respBuf[proc] = append(s.respBuf[proc], wr)
	if len(s.respBuf[proc]) >= s.cfg.ResponseBatch {
		s.flushResponses(proc)
		return
	}
	if !s.respArmed[proc] {
		s.respArmed[proc] = true
		s.machine.Verbs.NIC().Engine().After(respFlushDelay, func() {
			s.flushResponses(proc)
		})
	}
}

func (s *Server) flushResponses(proc int) {
	s.respArmed[proc] = false
	if len(s.respBuf[proc]) == 0 {
		return
	}
	batch := s.respBuf[proc]
	s.respBuf[proc] = nil
	postLossy(s.udQPs[proc].PostSendBatch(batch))
}

// sendReqTail is the trailing header of a SEND-mode request:
// [client 2][seq 2][LEN 2][keyhash 16].
const sendReqTail = 2 + 2 + 2 + kv.KeySize

// onSendRequest handles a SEND/SEND-mode request arriving on process
// proc's UD queue pair.
func (s *Server) onSendRequest(proc int, comp verbs.Completion) {
	if s.down || comp.Flushed {
		return
	}
	data := comp.Data
	if len(data) < sendReqTail {
		s.reject()
		return
	}
	// Repost the consumed RECV immediately (its CPU cost is charged in
	// execute).
	postLossy(s.udQPs[proc].PostRecv(s.sendStage, int(comp.WRID)*SlotSize, SlotSize, comp.WRID))

	n := len(data)
	var key kv.Key
	copy(key[:], data[n-keyTail:])
	if key.IsZero() {
		// Corrupted in flight: injected corruption zeroes the packet
		// tail, where the keyhash lives.
		s.reject()
		return
	}
	vlen := int(binary.LittleEndian.Uint16(data[n-lenTail : n-keyTail]))
	rMod := binary.LittleEndian.Uint16(data[n-lenTail-2 : n-lenTail])
	client := int(binary.LittleEndian.Uint16(data[n-sendReqTail : n-lenTail-2]))
	if client >= len(s.clientUD) || !validLen(vlen) {
		s.reject()
		return
	}
	if s.overloaded(proc) {
		s.shedRequest(proc, client, rMod, comp.Trace)
		return
	}
	req := request{
		proc: proc, client: client, key: key, vlen: vlen,
		rMod: rMod, viaSend: true, trace: comp.Trace,
	}
	if vlen > 0 && vlen != lenDelete {
		if vlen > n-sendReqTail {
			s.reject()
			return
		}
		req.value = append([]byte(nil), data[n-sendReqTail-vlen:n-sendReqTail]...)
	}
	s.execute(req)
}

// clientQP returns the UD QP on which client receives responses from
// server process proc.
func (s *Server) clientQP(client, proc int) *verbs.QP {
	if client >= len(s.clientUD) {
		return nil
	}
	return s.clientUD[client][proc]
}
