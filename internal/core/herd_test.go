package core

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NS = 4
	cfg.MaxClients = 8
	cfg.Window = 4
	cfg.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	return cfg
}

func newHERD(t *testing.T, cfg Config, nClients int) (*cluster.Cluster, *Server, []*Client) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), 1+nClients, 1)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, srv, clients
}

func TestPutGetRoundTrip(t *testing.T) {
	cl, _, clients := newHERD(t, smallConfig(), 1)
	c := clients[0]
	key := kv.FromUint64(1)
	val := []byte("herd end to end value")

	var putRes, getRes Result
	c.Put(key, val, func(r Result) {
		putRes = r
		c.Get(key, func(r Result) { getRes = r })
	})
	cl.Eng.Run()

	if putRes.Status != kv.StatusHit {
		t.Fatalf("PUT failed: %+v", putRes)
	}
	if getRes.Status != kv.StatusHit || !bytes.Equal(getRes.Value, val) {
		t.Fatalf("GET = %+v", getRes)
	}
	if getRes.Latency <= 0 || getRes.Latency > 20*sim.Microsecond {
		t.Fatalf("GET latency %v outside sane range", getRes.Latency)
	}
}

func TestGetMissingKey(t *testing.T) {
	cl, _, clients := newHERD(t, smallConfig(), 1)
	var res Result
	done := false
	clients[0].Get(kv.FromUint64(42), func(r Result) { res, done = r, true })
	cl.Eng.Run()
	if !done {
		t.Fatal("no response")
	}
	if res.Status == kv.StatusHit || res.Value != nil {
		t.Fatalf("miss returned %+v", res)
	}
}

func TestManyKeysAcrossPartitions(t *testing.T) {
	cfg := smallConfig()
	cl, srv, clients := newHERD(t, cfg, 2)
	n := 200
	okPuts := 0
	for i := 0; i < n; i++ {
		key := kv.FromUint64(uint64(i + 1))
		c := clients[i%2]
		c.Put(key, []byte{byte(i), byte(i >> 8)}, func(r Result) {
			if r.Status == kv.StatusHit {
				okPuts++
			}
		})
	}
	cl.Eng.Run()
	if okPuts != n {
		t.Fatalf("okPuts = %d, want %d", okPuts, n)
	}

	// Every partition should have received work (EREW steering).
	busy := 0
	for p := 0; p < cfg.NS; p++ {
		if srv.Partition(p).Stats().Puts > 0 {
			busy++
		}
	}
	if busy != cfg.NS {
		t.Fatalf("only %d/%d partitions used", busy, cfg.NS)
	}

	// Now read everything back from the other client.
	okGets := 0
	for i := 0; i < n; i++ {
		i := i
		clients[(i+1)%2].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status == kv.StatusHit && len(r.Value) == 2 && r.Value[0] == byte(i) && r.Value[1] == byte(i>>8) {
				okGets++
			}
		})
	}
	cl.Eng.Run()
	if okGets != n {
		t.Fatalf("okGets = %d, want %d", okGets, n)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	cfg := smallConfig()
	cfg.Window = 2
	cl, _, clients := newHERD(t, cfg, 1)
	c := clients[0]
	for i := 0; i < 10; i++ {
		c.Get(kv.FromUint64(uint64(i+1)), nil)
	}
	if c.Inflight() != 2 {
		t.Fatalf("inflight = %d, want window 2", c.Inflight())
	}
	if len(c.waiting) != 8 {
		t.Fatalf("waiting = %d, want 8", len(c.waiting))
	}
	cl.Eng.Run()
	if c.Completed() != 10 {
		t.Fatalf("completed = %d, want 10", c.Completed())
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", c.Inflight())
	}
}

func TestSlotZeroedAfterService(t *testing.T) {
	cfg := smallConfig()
	cl, srv, clients := newHERD(t, cfg, 1)
	key := kv.FromUint64(7)
	clients[0].Put(key, []byte("zzz"), nil)
	cl.Eng.Run()
	// Every slot tail (LEN + keyhash) must be zero after service.
	raw := srv.Region().Bytes()
	for slot := 0; slot < len(raw)/SlotSize; slot++ {
		tail := raw[(slot+1)*SlotSize-int(lenTail) : (slot+1)*SlotSize]
		for _, b := range tail {
			if b != 0 {
				t.Fatalf("slot %d tail not zeroed: % x", slot, tail)
			}
		}
	}
}

func TestSlotIndexLayout(t *testing.T) {
	// Figure 8 arithmetic: distinct (s, c, r mod W) triples map to
	// distinct slots, all within the region.
	cfg := Config{NS: 3, MaxClients: 5, Window: 4}
	seen := make(map[int]bool)
	for s := 0; s < cfg.NS; s++ {
		for c := 0; c < cfg.MaxClients; c++ {
			for r := 0; r < cfg.Window; r++ {
				idx := cfg.SlotIndex(s, c, r)
				if idx < 0 || idx >= cfg.NS*cfg.MaxClients*cfg.Window {
					t.Fatalf("slot %d out of region", idx)
				}
				if seen[idx] {
					t.Fatalf("slot collision at (%d,%d,%d)", s, c, r)
				}
				seen[idx] = true
			}
		}
	}
	// Sequence numbers wrap onto the same W slots.
	if cfg.SlotIndex(1, 2, 0) != cfg.SlotIndex(1, 2, 4) {
		t.Fatal("slot reuse (r mod W) broken")
	}
}

func TestRegionSizeMatchesPaper(t *testing.T) {
	// Paper: NC=200, NS=16, W=2 => ~6 MB.
	cfg := Config{NS: 16, MaxClients: 200, Window: 2}
	if got := cfg.RegionSize(); got != 16*200*2*1024 {
		t.Fatalf("region size = %d", got)
	}
	if cfg.RegionSize() > 8<<20 {
		t.Fatal("region should fit in L3 (~6 MB)")
	}
}

func TestUpdateVisibleAcrossClients(t *testing.T) {
	cl, _, clients := newHERD(t, smallConfig(), 2)
	key := kv.FromUint64(9)
	var got []byte
	clients[0].Put(key, []byte("v1"), func(Result) {
		clients[0].Put(key, []byte("v2"), func(Result) {
			clients[1].Get(key, func(r Result) { got = r.Value })
		})
	})
	cl.Eng.Run()
	if string(got) != "v2" {
		t.Fatalf("cross-client read = %q", got)
	}
}

func TestLargeValueRoundTrip(t *testing.T) {
	cl, srv, clients := newHERD(t, smallConfig(), 1)
	key := kv.FromUint64(11)
	val := bytes.Repeat([]byte{0xab}, 1000)
	var got Result
	clients[0].Put(key, val, func(Result) {
		clients[0].Get(key, func(r Result) { got = r })
	})
	cl.Eng.Run()
	if got.Status != kv.StatusHit || !bytes.Equal(got.Value, val) {
		t.Fatalf("1000 B value round trip failed (status=%v len=%d)", got.Status, len(got.Value))
	}
	// A 1000 B response must have used the non-inlined path.
	_, nonInline := srv.InlineStats()
	if nonInline == 0 {
		t.Fatal("large response was not sent non-inlined")
	}
}

func TestInputValidation(t *testing.T) {
	_, _, clients := newHERD(t, smallConfig(), 1)
	c := clients[0]
	if err := c.Get(kv.Key{}, nil); err == nil {
		t.Fatal("zero-key GET accepted")
	}
	if err := c.Put(kv.Key{}, []byte("x"), nil); err == nil {
		t.Fatal("zero-key PUT accepted")
	}
	if err := c.Put(kv.FromUint64(1), nil, nil); err == nil {
		t.Fatal("empty-value PUT accepted (LEN=0 means GET)")
	}
	if err := c.Put(kv.FromUint64(1), make([]byte, 1001), nil); err == nil {
		t.Fatal("oversized PUT accepted")
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 1, 1)
	if _, err := NewServer(cl.Machine(0), Config{NS: 0, MaxClients: 1, Window: 1}); err == nil {
		t.Fatal("NS=0 accepted")
	}
	if _, err := NewServer(cl.Machine(0), Config{NS: 99, MaxClients: 1, Window: 1}); err == nil {
		t.Fatal("NS > cores accepted")
	}
	if _, err := NewServer(cl.Machine(0), Config{NS: 1, MaxClients: 0, Window: 1}); err == nil {
		t.Fatal("MaxClients=0 accepted")
	}
}

func TestClientCapEnforced(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxClients = 1
	cl := cluster.New(cluster.Apt(), 3, 1)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ConnectClient(cl.Machine(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ConnectClient(cl.Machine(2)); err == nil {
		t.Fatal("second client accepted beyond MaxClients")
	}
}

func TestPutLatencyOneRoundTrip(t *testing.T) {
	// HERD's headline: one network round trip per request, ~5 us at
	// saturation, less when idle. An idle round trip must be a handful
	// of microseconds, not multiples.
	cl, _, clients := newHERD(t, smallConfig(), 1)
	var lat sim.Time
	clients[0].Put(kv.FromUint64(3), []byte("x"), func(r Result) { lat = r.Latency })
	cl.Eng.Run()
	if lat < sim.Microsecond || lat > 6*sim.Microsecond {
		t.Fatalf("idle PUT latency = %.2f us, want ~2-4 us", lat.Microseconds())
	}
}

func TestThroughputClosedLoop(t *testing.T) {
	// A few closed-loop clients against a small HERD should sustain
	// multi-Mops in simulated time — a smoke check that the saturation
	// machinery works end to end (precise figures come from the
	// experiment harness).
	cfg := smallConfig()
	cl, _, clients := newHERD(t, cfg, 4)
	var completed uint64
	stop := false
	var issue func(c *Client, i uint64)
	issue = func(c *Client, i uint64) {
		c.Get(kv.FromUint64(i%1000+1), func(Result) {
			completed++
			if !stop {
				issue(c, i+1)
			}
		})
	}
	for ci, c := range clients {
		for w := 0; w < cfg.Window; w++ {
			issue(c, uint64(ci*1000+w))
		}
	}
	cl.Eng.RunUntil(2 * sim.Millisecond)
	stop = true
	cl.Eng.Run()
	mops := float64(completed) / 0.002 / 1e6
	if mops < 1 {
		t.Fatalf("closed-loop throughput = %.2f Mops, want > 1", mops)
	}
}

func TestAccessorsAndConfig(t *testing.T) {
	cl, srv, clients := newHERD(t, smallConfig(), 1)
	if srv.Config().NS != smallConfig().NS {
		t.Fatal("Config accessor")
	}
	c := clients[0]
	if c.ID() != 0 {
		t.Fatalf("client ID = %d", c.ID())
	}
	c.Get(kv.FromUint64(1), nil)
	if c.Issued() != 1 {
		t.Fatalf("Issued = %d", c.Issued())
	}
	cl.Eng.Run()
}
