package core

import (
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/lint/hotalloc/hotgate"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

// TestHotpathAllocFree gates this package's //herd:hotpath functions
// at 0 allocs/op: the request encode and response parse/build kernels
// on both sides of the wire, plus the admission-control arithmetic.
// Request payloads build into the pooled op's slot-sized buffer and
// responses into the per-process scratch, so the steady-state data
// path never touches the heap.
func TestHotpathAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	s := &Server{cfg: cfg, queued: make([]int, cfg.NS), svcEWMA: make([]sim.Time, cfg.NS)}
	c := &Client{srv: s, cwnd: float64(cfg.Window)}
	op := &pendingOp{key: kv.FromUint64(9), kind: opPut}
	op.value = append(op.value, []byte("payload-bytes")...)
	respBuf := make([]byte, respHdr+mica.MaxValueSize)
	encodeRespHeader(respBuf, statusOK, 4, 3) // give parseRespHeader a valid header
	var slotRaw [SlotSize]byte
	hotgate.Check(t, ".", map[string]func(){
		"opKind.kindName":       func() { _ = opPut.kindName() },
		"Client.window":         func() { _ = c.window() },
		"Client.encodeRequest":  func() { _ = c.encodeRequest(op, 5) },
		"parseRespHeader":       func() { _, _, _ = parseRespHeader(respBuf[:respHdr]) },
		"Config.SlotIndex":      func() { _ = cfg.SlotIndex(1, 2, 3) },
		"Server.overloaded":     func() { _ = s.overloaded(0) },
		"Server.retryAfterHint": func() { _ = s.retryAfterHint(0) },
		"Server.noteService":    func() { s.noteService(0, 100*sim.Nanosecond) },
		"validLen":              func() { _ = validLen(128) },
		"zeroTail":              func() { zeroTail(slotRaw[:]) },
		"encodeRespHeader":      func() { _ = encodeRespHeader(respBuf, statusOK, 8, 1) },
	})
}
