package core

import (
	"bytes"
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// TestLeaseGrantOnGetHit pins the lease wire extension: with LeaseTTL
// set, a GET hit carries an absolute expiry LeaseTTL past the serve
// time; misses and writes carry none.
func TestLeaseGrantOnGetHit(t *testing.T) {
	cfg := smallConfig()
	cfg.LeaseTTL = 8 * sim.Microsecond
	cl, srv, clients := newHERD(t, cfg, 1)
	c := clients[0]
	key := kv.FromUint64(1)
	val := []byte("leased value")
	srv.Preload(key, val)

	var hit, miss, put Result
	c.Get(key, func(r Result) { hit = r })
	c.Get(kv.FromUint64(404), func(r Result) { miss = r })
	c.Put(kv.FromUint64(2), val, func(r Result) { put = r })
	cl.Eng.Run()
	now := cl.Eng.Now()

	if hit.Status != kv.StatusHit || !bytes.Equal(hit.Value, val) {
		t.Fatalf("GET = %+v", hit)
	}
	// The lease expires LeaseTTL after the server-side serve instant,
	// which precedes callback delivery by the response flight time.
	if hit.Lease <= 0 || hit.Lease > now+cfg.LeaseTTL {
		t.Fatalf("lease expiry %v implausible at now=%v ttl=%v", hit.Lease, now, cfg.LeaseTTL)
	}
	if hit.Lease <= now-cfg.LeaseTTL {
		t.Fatalf("lease expiry %v already long past at now=%v", hit.Lease, now)
	}
	if miss.Lease != 0 {
		t.Fatalf("miss carried a lease (%v)", miss.Lease)
	}
	if put.Lease != 0 {
		t.Fatalf("PUT carried a lease (%v)", put.Lease)
	}
}

// TestNoLeaseWhenDisabled pins the default wire format: without
// LeaseTTL the response frame is unchanged and Lease stays zero.
func TestNoLeaseWhenDisabled(t *testing.T) {
	cl, srv, clients := newHERD(t, smallConfig(), 1)
	key := kv.FromUint64(3)
	srv.Preload(key, []byte("v"))
	var got Result
	clients[0].Get(key, func(r Result) { got = r })
	cl.Eng.Run()
	if got.Status != kv.StatusHit || got.Lease != 0 {
		t.Fatalf("GET = %+v, want hit with zero lease", got)
	}
}

// TestLeaseLargeValueInline ensures the lease tail composes with the
// largest value and the inline-cutoff decision (the frame grows by
// leaseBytes, the header vlen does not).
func TestLeaseLargeValue(t *testing.T) {
	cfg := smallConfig()
	cfg.LeaseTTL = 5 * sim.Microsecond
	cl, srv, clients := newHERD(t, cfg, 1)
	key := kv.FromUint64(4)
	val := make([]byte, 1000)
	for i := range val {
		val[i] = byte(i)
	}
	srv.Preload(key, val)
	var got Result
	clients[0].Get(key, func(r Result) { got = r })
	cl.Eng.Run()
	if got.Status != kv.StatusHit || !bytes.Equal(got.Value, val) {
		t.Fatalf("1000 B leased GET failed (status=%v len=%d)", got.Status, len(got.Value))
	}
	if got.Lease <= 0 {
		t.Fatal("large-value GET lost its lease")
	}
}
