package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
)

// TestModelCheckEndToEnd drives random GET/PUT/DELETE sequences through
// the full stack — client windowing, UC WRITEs across the simulated
// fabric, request-region polling, MICA partitions, UD SEND responses —
// and checks every completed operation against a model map.
//
// Because MICA is lossy, a GET may legitimately miss on a key the model
// holds (eviction); what must never happen is a GET returning bytes that
// differ from the model's latest value, a PUT/DELETE acking incorrectly,
// or an operation being dropped on a lossless fabric.
func TestModelCheckEndToEnd(t *testing.T) {
	f := func(opsRaw []uint16, seed int64) bool {
		if len(opsRaw) > 200 {
			opsRaw = opsRaw[:200]
		}
		rnd := rand.New(rand.NewSource(seed))
		cfg := smallConfig()
		cfg.NS = 3
		cl, srv, clients := newHERDn(t, cfg, 2)
		_ = srv
		model := make(map[kv.Key][]byte)
		violations := 0
		completed := 0

		// Sequential issue keeps the model's view linearizable: each op
		// completes before the next is issued.
		var step func(i int)
		step = func(i int) {
			if i >= len(opsRaw) {
				return
			}
			raw := opsRaw[i]
			key := kv.FromUint64(uint64(raw%37) + 1)
			c := clients[i%2]
			switch rnd.Intn(4) {
			case 0, 1: // GET x2 weight
				c.Get(key, func(r Result) {
					completed++
					want, in := model[key]
					if r.Status == kv.StatusHit {
						if !in || !bytes.Equal(r.Value, want) {
							violations++
						}
					} else if in {
						// Lossy-index miss: tolerated, but our configs
						// have ample capacity, so count separately.
						violations++
					}
					step(i + 1)
				})
			case 2:
				val := []byte{byte(raw), byte(raw >> 8), byte(i)}
				c.Put(key, val, func(r Result) {
					completed++
					if r.Status == kv.StatusHit {
						model[key] = val
					}
					step(i + 1)
				})
			case 3:
				c.Delete(key, func(r Result) {
					completed++
					_, in := model[key]
					if (r.Status == kv.StatusHit) != in {
						violations++
					}
					delete(model, key)
					step(i + 1)
				})
			}
		}
		step(0)
		cl.Eng.Run()
		return violations == 0 && completed == len(opsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newHERDn builds a HERD deployment for the model checker, panicking on
// setup errors (quick.Check runs outside the test goroutine's Fatal).
func newHERDn(t *testing.T, cfg Config, nClients int) (*cluster.Cluster, *Server, []*Client) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), 1+nClients, 1)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		panic(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			panic(err)
		}
	}
	return cl, srv, clients
}
