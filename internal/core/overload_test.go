package core

import (
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
)

// overloadConfig is smallConfig with the admission controller armed:
// a single server process and a queue cap of one, so a burst of
// concurrent requests is guaranteed to trip the shed path.
func overloadConfig() Config {
	cfg := smallConfig()
	cfg.NS = 1
	cfg.AdmissionLimit = 1
	return cfg
}

// TestAdmissionShedsAndRecovers drives a burst through a queue cap of
// one: the server must shed with busy pushback, and the client's
// hint-driven retries must still land every operation eventually —
// busy is backpressure, not failure.
func TestAdmissionShedsAndRecovers(t *testing.T) {
	cl, srv, clients := newHERD(t, overloadConfig(), 2)
	const n = 24
	served := 0
	for i := 0; i < n; i++ {
		c := clients[i%len(clients)]
		c.Get(kv.FromUint64(uint64(i)+1), func(r Result) {
			if r.Err != nil {
				t.Errorf("op failed: %v", r.Err)
			}
			if r.Status != kv.StatusMiss {
				t.Errorf("status = %v, want miss", r.Status)
			}
			served++
		})
	}
	cl.Eng.Run()

	if served != n {
		t.Fatalf("served %d of %d ops", served, n)
	}
	if srv.Shed() == 0 {
		t.Fatal("admission controller never shed under a 2-client burst")
	}
	busy := clients[0].BusyResponses() + clients[1].BusyResponses()
	if busy == 0 {
		t.Fatal("no client saw a busy pushback")
	}
	if f := clients[0].Failed() + clients[1].Failed(); f != 0 {
		t.Fatalf("%d terminal failures; busy retries should absorb the burst", f)
	}
	if rc := clients[0].Reconnects() + clients[1].Reconnects(); rc != 0 {
		t.Fatalf("%d reconnect handshakes; busy must not be read as a crash", rc)
	}
}

// TestAdmissionDisabledNeverSheds pins the default behavior: with
// AdmissionLimit zero the server queues everything, exactly as before
// this subsystem existed.
func TestAdmissionDisabledNeverSheds(t *testing.T) {
	cfg := overloadConfig()
	cfg.AdmissionLimit = 0
	cl, srv, clients := newHERD(t, cfg, 2)
	done := 0
	for i := 0; i < 24; i++ {
		clients[i%2].Get(kv.FromUint64(uint64(i)+1), func(Result) { done++ })
	}
	cl.Eng.Run()
	if done != 24 {
		t.Fatalf("served %d of 24", done)
	}
	if srv.Shed() != 0 {
		t.Fatalf("shed %d with admission control disabled", srv.Shed())
	}
	if b := clients[0].BusyResponses() + clients[1].BusyResponses(); b != 0 {
		t.Fatalf("%d busy responses with admission control disabled", b)
	}
}

// TestOpDeadlineFailsBusyTerminally sets a deadline shorter than the
// minimum busy retry-after hint, so a shed op cannot be retried in
// time: it must resolve as StatusBusy/ErrOverloaded — and, because
// busy proves the server alive, without starting a reconnect
// handshake.
func TestOpDeadlineFailsBusyTerminally(t *testing.T) {
	cfg := overloadConfig()
	cfg.OpDeadline = 1 * sim.Microsecond
	cl, _, clients := newHERD(t, cfg, 2)
	var overloaded, servedOK int
	for i := 0; i < 24; i++ {
		clients[i%2].Get(kv.FromUint64(uint64(i)+1), func(r Result) {
			switch r.Status {
			case kv.StatusBusy:
				if r.Err != ErrOverloaded {
					t.Errorf("busy result carries err %v", r.Err)
				}
				overloaded++
			case kv.StatusMiss:
				servedOK++
			default:
				t.Errorf("unexpected status %v (err %v)", r.Status, r.Err)
			}
		})
	}
	cl.Eng.Run()

	if overloaded == 0 {
		t.Fatal("no op hit its deadline under a queue cap of one")
	}
	if servedOK == 0 {
		t.Fatal("no op was admitted at all")
	}
	if f := clients[0].Failed() + clients[1].Failed(); f != uint64(overloaded) {
		t.Fatalf("Failed() = %d, want %d (one per ErrOverloaded)", f, overloaded)
	}
	if rc := clients[0].Reconnects() + clients[1].Reconnects(); rc != 0 {
		t.Fatalf("%d reconnects; deadline-on-busy must not trigger crash recovery", rc)
	}
}

// TestAdaptiveWindowShrinksUnderBusy checks the AIMD controller reacts
// to pushback: multiplicative decrease fires, the window never leaves
// [1, Config.Window], and every op still completes.
func TestAdaptiveWindowShrinksUnderBusy(t *testing.T) {
	cfg := overloadConfig()
	cfg.AdaptiveWindow = true
	cl, _, clients := newHERD(t, cfg, 2)
	done := 0
	for i := 0; i < 24; i++ {
		clients[i%2].Get(kv.FromUint64(uint64(i)+1), func(r Result) {
			if r.Err != nil {
				t.Errorf("op failed: %v", r.Err)
			}
			done++
		})
	}
	cl.Eng.Run()

	if done != 24 {
		t.Fatalf("served %d of 24", done)
	}
	shrinks := clients[0].WindowShrinks() + clients[1].WindowShrinks()
	if shrinks == 0 {
		t.Fatal("AIMD window never shrank under busy pushback")
	}
	for i, c := range clients {
		if w := c.Window(); w < 1 || w > cfg.Window {
			t.Fatalf("client %d window %d outside [1, %d]", i, w, cfg.Window)
		}
	}
}

// TestAdaptiveWindowRecovers confirms additive increase restores the
// window after congestion clears: shrink it by hammering a capped
// queue, then run an uncontended sequential phase and watch the window
// climb back to the configured ceiling.
func TestAdaptiveWindowRecovers(t *testing.T) {
	cfg := overloadConfig()
	cfg.AdaptiveWindow = true
	cl, _, clients := newHERD(t, cfg, 2)
	c := clients[0]
	burst := 0
	for i := 0; i < 24; i++ {
		clients[i%2].Get(kv.FromUint64(uint64(i)+1), func(Result) { burst++ })
	}
	cl.Eng.Run()
	if burst != 24 {
		t.Fatalf("burst served %d of 24", burst)
	}
	if c.WindowShrinks() == 0 {
		t.Fatal("burst did not shrink the window; recovery phase proves nothing")
	}

	// Sequential ops never queue behind each other, so every completion
	// is clean growth: +1/cwnd per op, one full window per cwnd ops.
	var next func(i int)
	next = func(i int) {
		if i == 0 {
			return
		}
		c.Get(kv.FromUint64(uint64(i)), func(Result) { next(i - 1) })
	}
	next(200)
	cl.Eng.Run()

	if w := c.Window(); w != cfg.Window {
		t.Fatalf("window %d after 200 clean completions, want back at %d", w, cfg.Window)
	}
}

// TestBusyResponseRejectedWithoutHint pins the structural check: a
// response claiming StatusBusy without the fixed-size retry-after hint
// is damage, and damage must not complete (or requeue) any op.
func TestBusyResponseRejectedWithoutHint(t *testing.T) {
	cl, _, clients := newHERD(t, overloadConfig(), 1)
	c := clients[0]
	done := 0
	c.Get(kv.FromUint64(7), func(Result) { done++ })
	cl.Eng.Run()
	if done != 1 {
		t.Fatalf("warmup op did not complete")
	}

	// Hand-deliver a malformed busy response: status byte 3 but a
	// zero-length hint. The client must count it corrupt, not busy.
	before := c.CorruptResponses()
	raw := make([]byte, respHdr)
	raw[0] = statusBusy
	c.handleResponse(0, verbs.Completion{Data: raw})
	if c.CorruptResponses() != before+1 {
		t.Fatalf("malformed busy response not counted corrupt")
	}
	if c.BusyResponses() != 0 {
		t.Fatalf("malformed busy response treated as real pushback")
	}
}
