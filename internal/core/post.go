package core

import (
	"errors"
	"fmt"

	"herdkv/internal/verbs"
)

// postLossy consumes the synchronous error from a verbs post on the
// request/response path. A post rejected with ErrQPState — the owning
// process crashed and its queue pairs flushed — behaves exactly like a
// request lost on the wire: the retry timer or the reconnect handshake
// recovers (docs/ROBUSTNESS.md), so the error is absorbed here, in one
// deliberate place. Any other rejection (Table 1 violation, inline
// overflow, bounds) is a protocol bug and must not limp on silently.
func postLossy(err error) {
	if err != nil && !errors.Is(err, verbs.ErrQPState) {
		panic(fmt.Sprintf("herd: invalid verbs post: %v", err))
	}
}
