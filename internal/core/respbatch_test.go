package core

import (
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func TestResponseBatchingCorrectness(t *testing.T) {
	cfg := smallConfig()
	cfg.ResponseBatch = 8
	cl, _, clients := newHERD(t, cfg, 2)
	n := 200
	oks := 0
	for i := 0; i < n; i++ {
		i := i
		clients[i%2].Put(kv.FromUint64(uint64(i+1)), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				oks++
			}
		})
	}
	cl.Eng.Run()
	if oks != n {
		t.Fatalf("puts = %d/%d with response batching", oks, n)
	}
	got := 0
	for i := 0; i < n; i++ {
		i := i
		clients[(i+1)%2].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status == kv.StatusHit && r.Value[0] == byte(i) {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("gets = %d/%d with response batching", got, n)
	}
}

func TestResponseBatchFlushTimer(t *testing.T) {
	// A lone request must not wait forever for batch companions: the
	// flush timer bounds the added latency.
	cfg := smallConfig()
	cfg.ResponseBatch = 16
	cl, _, clients := newHERD(t, cfg, 1)
	var lat sim.Time
	clients[0].Get(kv.FromUint64(1), func(r Result) { lat = r.Latency })
	cl.Eng.Run()
	if lat == 0 {
		t.Fatal("no response")
	}
	if lat > 6*sim.Microsecond {
		t.Fatalf("lone-request latency %v too high; flush timer broken", lat)
	}
	if lat < 2*sim.Microsecond {
		t.Fatalf("lone-request latency %v should include the flush delay", lat)
	}
}

func TestResponseBatchingRaisesPeak(t *testing.T) {
	// The point of the optimization: the response path stops being
	// PIO-bound, so peak throughput rises past the paper's 26 Mops.
	measure := func(batch int) float64 {
		cfg := smallConfig()
		cfg.NS = 6
		cfg.MaxClients = 24
		cfg.Window = 8
		cfg.ResponseBatch = batch
		cl := cluster.New(cluster.Apt(), 25, 1)
		srv, err := NewServer(cl.Machine(0), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Preload so GET responses carry 32 B values: that is what makes
		// the unbatched response path PIO-bound (2 cachelines per SEND).
		for k := uint64(1); k <= 512; k++ {
			if err := srv.Preload(kv.FromUint64(k), make([]byte, 32)); err != nil {
				t.Fatal(err)
			}
		}
		var completed uint64
		stop := false
		for i := 0; i < 24; i++ {
			c, err := srv.ConnectClient(cl.Machine(1 + i))
			if err != nil {
				t.Fatal(err)
			}
			var loop func(k uint64)
			loop = func(k uint64) {
				c.Get(kv.FromUint64(k%512+1), func(Result) {
					completed++
					if !stop {
						loop(k + 1)
					}
				})
			}
			for w := 0; w < cfg.Window; w++ {
				loop(uint64(i*1000 + w))
			}
		}
		cl.Eng.RunFor(100 * sim.Microsecond)
		start := completed
		cl.Eng.RunFor(300 * sim.Microsecond)
		stop = true
		return float64(completed-start) / 300e-6 / 1e6
	}
	plain, batched := measure(1), measure(16)
	// Batching removes the PIO bound (26.3 Mops for 2-cacheline SENDs);
	// the NIC processing units become the next ceiling (~28.6), so the
	// gain is real but modest on this card model.
	if batched < plain*1.05 {
		t.Fatalf("response batching should raise peak: %.1f vs %.1f Mops", batched, plain)
	}
	if plain > 27 {
		t.Fatalf("unbatched path should be PIO-bound near 26.3 Mops, got %.1f", plain)
	}
}
