package core

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func sendModeConfig() Config {
	cfg := smallConfig()
	cfg.UseSendRequests = true
	return cfg
}

func TestSendModeRoundTrip(t *testing.T) {
	cl, srv, clients := newHERD(t, sendModeConfig(), 2)
	c := clients[0]
	key := kv.FromUint64(1)
	val := []byte("send/send value")
	var get Result
	c.Put(key, val, func(Result) {
		clients[1].Get(key, func(r Result) { get = r })
	})
	cl.Eng.Run()
	if get.Status != kv.StatusHit || !bytes.Equal(get.Value, val) {
		t.Fatalf("GET = %+v", get)
	}
	gets, _, puts := srv.Stats()
	if gets != 1 || puts != 1 {
		t.Fatalf("server stats gets=%d puts=%d", gets, puts)
	}
}

func TestSendModeDelete(t *testing.T) {
	cl, _, clients := newHERD(t, sendModeConfig(), 1)
	c := clients[0]
	key := kv.FromUint64(2)
	var del, get Result
	c.Put(key, []byte("x"), func(Result) {
		c.Delete(key, func(r Result) {
			del = r
			c.Get(key, func(r Result) { get = r })
		})
	})
	cl.Eng.Run()
	if del.Status != kv.StatusHit || get.Status == kv.StatusHit {
		t.Fatalf("delete=%+v get=%+v", del, get)
	}
}

func TestSendModeManyOps(t *testing.T) {
	cl, _, clients := newHERD(t, sendModeConfig(), 3)
	n := 300
	oks := 0
	for i := 0; i < n; i++ {
		i := i
		clients[i%3].Put(kv.FromUint64(uint64(i+1)), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				oks++
			}
		})
	}
	cl.Eng.Run()
	if oks != n {
		t.Fatalf("put oks = %d/%d", oks, n)
	}
	got := 0
	for i := 0; i < n; i++ {
		i := i
		clients[(i+1)%3].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status == kv.StatusHit && r.Value[0] == byte(i) {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("gets = %d/%d", got, n)
	}
}

func TestSendModeLargeValues(t *testing.T) {
	cl, _, clients := newHERD(t, sendModeConfig(), 1)
	key := kv.FromUint64(3)
	val := bytes.Repeat([]byte{0xcd}, 900)
	var get Result
	clients[0].Put(key, val, func(Result) {
		clients[0].Get(key, func(r Result) { get = r })
	})
	cl.Eng.Run()
	if get.Status != kv.StatusHit || !bytes.Equal(get.Value, val) {
		t.Fatalf("900 B send-mode value failed (status=%v len=%d)", get.Status, len(get.Value))
	}
}

func TestSendModeNoConnectedState(t *testing.T) {
	// The whole point of Section 5.5: no UC connections at the server.
	cl, _, clients := newHERD(t, sendModeConfig(), 2)
	for _, c := range clients {
		if c.ucQP != nil {
			t.Fatal("SEND/SEND client created a UC QP")
		}
		if c.sendQP == nil {
			t.Fatal("SEND/SEND client missing its UD request QP")
		}
	}
	_ = cl
}

func TestSendModeRetryRecovers(t *testing.T) {
	cfg := sendModeConfig()
	cfg.RetryTimeout = 100 * sim.Microsecond
	cfg.MaxRetries = 30
	spec := cluster.Apt()
	spec.Link.LossRate = 0.2
	cl := cluster.New(spec, 2, 9)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	completed := 0
	var next func(i int)
	next = func(i int) {
		if i >= n {
			return
		}
		c.Put(kv.FromUint64(uint64(i+1)), []byte{byte(i)}, func(r Result) {
			completed++
			next(i + 1)
		})
	}
	next(0)
	cl.Eng.RunUntil(400 * sim.Millisecond)
	if completed != n {
		t.Fatalf("completed %d/%d under loss in SEND mode", completed, n)
	}
	if c.Retries() == 0 {
		t.Fatal("expected retries under 20% loss")
	}
}

func TestSendModeThroughputPenalty(t *testing.T) {
	// Section 5.5 predicts a 4-5 Mops penalty for SEND/SEND vs the
	// WRITE/SEND hybrid at peak.
	measure := func(sendMode bool) float64 {
		cfg := smallConfig()
		cfg.NS = 6
		cfg.MaxClients = 16
		cfg.UseSendRequests = sendMode
		cl := cluster.New(cluster.Apt(), 17, 1)
		srv, err := NewServer(cl.Machine(0), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var completed uint64
		stop := false
		for i := 0; i < 16; i++ {
			c, err := srv.ConnectClient(cl.Machine(1 + i))
			if err != nil {
				t.Fatal(err)
			}
			var loop func(k uint64)
			loop = func(k uint64) {
				c.Get(kv.FromUint64(k%512+1), func(Result) {
					completed++
					if !stop {
						loop(k + 1)
					}
				})
			}
			for w := 0; w < cfg.Window; w++ {
				loop(uint64(i*1000 + w))
			}
		}
		cl.Eng.RunFor(100 * sim.Microsecond)
		start := completed
		cl.Eng.RunFor(300 * sim.Microsecond)
		stop = true
		return float64(completed-start) / 300e-6 / 1e6
	}
	hybrid := measure(false)
	sendSend := measure(true)
	if sendSend >= hybrid {
		t.Fatalf("SEND/SEND (%.1f) should trail WRITE/SEND (%.1f)", sendSend, hybrid)
	}
	if gap := hybrid - sendSend; gap < 2 || gap > 9 {
		t.Fatalf("SEND/SEND penalty = %.1f Mops (hybrid %.1f, send %.1f), want ~4-5",
			gap, hybrid, sendSend)
	}
}

func TestSendModeTinyConfig(t *testing.T) {
	// Regression: a 1-client, 1-window SEND-mode server once posted zero
	// RECVs per process (integer division) and deadlocked.
	cfg := sendModeConfig()
	cfg.MaxClients = 1
	cfg.Window = 1
	cfg.NS = 4
	cl, _, clients := newHERD(t, cfg, 1)
	done := 0
	var next func(i uint64)
	next = func(i uint64) {
		if i >= 20 {
			return
		}
		clients[0].Put(kv.FromUint64(i+1), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				done++
			}
			next(i + 1)
		})
	}
	next(0)
	cl.Eng.Run()
	if done != 20 {
		t.Fatalf("completed %d/20 with tiny SEND-mode config", done)
	}
}
