package core

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
)

// ShardedDeployment scales HERD past one server machine the way
// memcached fleets do: keys are hashed across several independent HERD
// servers, and each application host runs one client per server. The
// paper evaluates a single server (its RNIC is the unit whose capacity
// is under study); sharding is the standard deployment answer when one
// server's 26 Mops is not enough.
type ShardedDeployment struct {
	servers []*Server
	seed    uint64
}

// PlacementSeed derives the key-placement hash seed for a deployment
// whose first server runs on m. It folds the machine's deterministic
// seed (itself derived from the cluster seed) through a mixer, so two
// clusters built with different seeds place keys differently while any
// one cluster's placement replays exactly. The fleet ring uses the
// same derivation.
func PlacementSeed(m *cluster.Machine) uint64 {
	var k kv.Key
	return k.Hash64(uint64(m.Seed) ^ 0x54a6d)
}

// NewShardedDeployment initializes one HERD server on each of the given
// machines. Key placement is seeded from the first machine's
// deterministic cluster-derived seed: different cluster seeds give
// different placements.
func NewShardedDeployment(machines []*cluster.Machine, cfg Config) (*ShardedDeployment, error) {
	if len(machines) < 1 {
		return nil, fmt.Errorf("core: sharded deployment needs at least one server")
	}
	d := &ShardedDeployment{seed: PlacementSeed(machines[0])}
	for _, m := range machines {
		srv, err := NewServer(m, cfg)
		if err != nil {
			return nil, err
		}
		d.servers = append(d.servers, srv)
	}
	return d, nil
}

// Shards returns the number of server machines.
func (d *ShardedDeployment) Shards() int { return len(d.servers) }

// ShardOf returns the server index owning key.
func (d *ShardedDeployment) ShardOf(key kv.Key) int {
	return int(key.Hash64(d.seed) % uint64(len(d.servers)))
}

// Server returns shard i's server.
func (d *ShardedDeployment) Server(i int) *Server { return d.servers[i] }

// Preload inserts key on its owning shard.
func (d *ShardedDeployment) Preload(key kv.Key, value []byte) error {
	return d.servers[d.ShardOf(key)].Preload(key, value)
}

// ShardedClient is one application host's view of the fleet: a HERD
// client per shard, routed by keyhash. It implements the kv.KV client
// interface.
type ShardedClient struct {
	d       *ShardedDeployment
	clients []*Client
}

var _ kv.KV = (*ShardedClient)(nil)

// ConnectClient attaches machine m to every shard.
func (d *ShardedDeployment) ConnectClient(m *cluster.Machine) (*ShardedClient, error) {
	sc := &ShardedClient{d: d}
	for _, srv := range d.servers {
		c, err := srv.ConnectClient(m)
		if err != nil {
			return nil, err
		}
		sc.clients = append(sc.clients, c)
	}
	return sc, nil
}

func (sc *ShardedClient) route(key kv.Key) *Client {
	return sc.clients[sc.d.ShardOf(key)]
}

// Get issues a GET to the key's shard.
func (sc *ShardedClient) Get(key kv.Key, cb func(Result)) error {
	return sc.route(key).Get(key, cb)
}

// Put issues a PUT to the key's shard.
func (sc *ShardedClient) Put(key kv.Key, value []byte, cb func(Result)) error {
	return sc.route(key).Put(key, value, cb)
}

// Delete issues a DELETE to the key's shard.
func (sc *ShardedClient) Delete(key kv.Key, cb func(Result)) error {
	return sc.route(key).Delete(key, cb)
}

// Completed sums completions across the per-shard clients.
func (sc *ShardedClient) Completed() uint64 {
	var total uint64
	for _, c := range sc.clients {
		total += c.Completed()
	}
	return total
}

// Issued sums issued operations across the per-shard clients.
func (sc *ShardedClient) Issued() uint64 {
	var total uint64
	for _, c := range sc.clients {
		total += c.Issued()
	}
	return total
}

// Failed sums terminal retry-budget failures across the per-shard
// clients.
func (sc *ShardedClient) Failed() uint64 {
	var total uint64
	for _, c := range sc.clients {
		total += c.Failed()
	}
	return total
}

// Inflight sums outstanding operations across the per-shard clients.
func (sc *ShardedClient) Inflight() int {
	total := 0
	for _, c := range sc.clients {
		total += c.Inflight()
	}
	return total
}
