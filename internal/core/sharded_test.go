package core

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func newSharded(t *testing.T, nServers, nClients int) (*cluster.Cluster, *ShardedDeployment, []*ShardedClient) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), nServers+nClients, 1)
	cfg := smallConfig()
	cfg.MaxClients = nClients
	servers := make([]*cluster.Machine, nServers)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	d, err := NewShardedDeployment(servers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*ShardedClient, nClients)
	for i := range clients {
		clients[i], err = d.ConnectClient(cl.Machine(nServers + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, d, clients
}

func TestShardedRoundTrip(t *testing.T) {
	cl, d, clients := newSharded(t, 3, 2)
	n := 120
	oks := 0
	for i := 0; i < n; i++ {
		clients[i%2].Put(kv.FromUint64(uint64(i+1)), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				oks++
			}
		})
	}
	cl.Eng.Run()
	if oks != n {
		t.Fatalf("puts = %d/%d", oks, n)
	}
	// Reads route to the right shard and find the data.
	got := 0
	for i := 0; i < n; i++ {
		i := i
		clients[(i+1)%2].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status == kv.StatusHit && bytes.Equal(r.Value, []byte{byte(i)}) {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("gets = %d/%d", got, n)
	}
	// Every shard should have served something.
	for s := 0; s < d.Shards(); s++ {
		gets, _, puts := d.Server(s).Stats()
		if gets+puts == 0 {
			t.Fatalf("shard %d idle", s)
		}
	}
}

func TestShardedRoutingStable(t *testing.T) {
	_, d, _ := newSharded(t, 4, 1)
	for i := uint64(0); i < 1000; i++ {
		k := kv.FromUint64(i)
		if d.ShardOf(k) != d.ShardOf(k) {
			t.Fatal("routing unstable")
		}
		if s := d.ShardOf(k); s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
	}
}

func TestShardedDelete(t *testing.T) {
	cl, _, clients := newSharded(t, 2, 1)
	key := kv.FromUint64(5)
	var gone Result
	clients[0].Put(key, []byte("x"), func(Result) {
		clients[0].Delete(key, func(Result) {
			clients[0].Get(key, func(r Result) { gone = r })
		})
	})
	cl.Eng.Run()
	if gone.Status == kv.StatusHit {
		t.Fatal("key survived sharded delete")
	}
}

func TestShardedAggregateThroughputScales(t *testing.T) {
	// The deployment answer to one server's ceiling: aggregate Mops
	// grows with shard count.
	measure := func(nServers int) float64 {
		cfg := smallConfig()
		cfg.NS = 6
		nClients := 4 * nServers
		cfg.MaxClients = nClients
		cl := cluster.New(cluster.Apt(), nServers+nClients, 1)
		servers := make([]*cluster.Machine, nServers)
		for i := range servers {
			servers[i] = cl.Machine(i)
		}
		d, err := NewShardedDeployment(servers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var completed uint64
		stop := false
		for i := 0; i < nClients; i++ {
			sc, err := d.ConnectClient(cl.Machine(nServers + i))
			if err != nil {
				t.Fatal(err)
			}
			var loop func(k uint64)
			loop = func(k uint64) {
				sc.Get(kv.FromUint64(k%4096+1), func(Result) {
					completed++
					if !stop {
						loop(k + 13)
					}
				})
			}
			for w := 0; w < 4; w++ {
				loop(uint64(i*100 + w))
			}
		}
		cl.Eng.RunFor(100 * sim.Microsecond)
		start := completed
		cl.Eng.RunFor(200 * sim.Microsecond)
		stop = true
		return float64(completed-start) / 200e-6 / 1e6
	}
	one, three := measure(1), measure(3)
	if three < one*2.2 {
		t.Fatalf("3 shards (%.1f Mops) should deliver >2.2x one shard (%.1f)", three, one)
	}
}

func TestShardedPlacementFollowsClusterSeed(t *testing.T) {
	// Regression: placement used to come from a hardcoded seed, so two
	// clusters built with different seeds got identical key placement.
	shardsOf := func(seed int64) []int {
		cl := cluster.New(cluster.Apt(), 4, seed)
		cfg := smallConfig()
		machines := []*cluster.Machine{cl.Machine(0), cl.Machine(1), cl.Machine(2), cl.Machine(3)}
		d, err := NewShardedDeployment(machines, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 512)
		for i := range out {
			out[i] = d.ShardOf(kv.FromUint64(uint64(i + 1)))
		}
		return out
	}
	a, again, b := shardsOf(1), shardsOf(1), shardsOf(2)
	differs := false
	for i := range a {
		if a[i] != again[i] {
			t.Fatalf("same cluster seed, different placement at key %d", i+1)
		}
		if a[i] != b[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("clusters with different seeds produced identical placement")
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedDeployment(nil, smallConfig()); err == nil {
		t.Fatal("empty deployment accepted")
	}
}

func TestShardedPreloadAndAccessors(t *testing.T) {
	cl, d, clients := newSharded(t, 2, 1)
	key := kv.FromUint64(31)
	if err := d.Preload(key, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	var got Result
	clients[0].Get(key, func(r Result) { got = r })
	cl.Eng.Run()
	if got.Status != kv.StatusHit || string(got.Value) != "warm" {
		t.Fatalf("preloaded GET = %+v", got)
	}
	if clients[0].Completed() == 0 {
		t.Fatal("Completed accessor")
	}
}
