package core

import (
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/telemetry"
)

// TestGetEmitsFullSpanSequence asserts the request-lifecycle contract:
// one traced GET produces the complete ordered span sequence across both
// machines, the spans are contiguous, and their durations sum exactly to
// the latency the client reports.
func TestGetEmitsFullSpanSequence(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 2, 1)
	sink := telemetry.New()
	sink.Tracer = telemetry.NewTracer()
	cl.SetTelemetry(sink)

	cfg := smallConfig()
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	key := kv.FromUint64(7)
	if err := srv.Preload(key, []byte("traced value")); err != nil {
		t.Fatal(err)
	}

	checkpoint := sink.Tracer.SpanCount()
	var res Result
	c.Get(key, func(r Result) { res = r })
	cl.Eng.Run()
	if res.Status != kv.StatusHit {
		t.Fatalf("GET failed: %+v", res)
	}

	spans := sink.Tracer.SpansSince(checkpoint)
	want := []string{
		"req.pio", "req.nic", "req.wire", "req.dma",
		"cpu",
		"resp.pio", "resp.nic", "resp.wire", "resp.recv",
	}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans %v, want %d", len(spans), spanNames(spans), len(want))
	}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Fatalf("span %d = %q, want %q (all: %v)", i, s.Name, want[i], spanNames(spans))
		}
		if s.Trace != "GET" {
			t.Fatalf("span %d traced as %q, want GET", i, s.Trace)
		}
		if i > 0 && s.Start != spans[i-1].End {
			t.Fatalf("gap between %q and %q", spans[i-1].Name, s.Name)
		}
	}
	if total := spans[len(spans)-1].End - spans[0].Start; total != res.Latency {
		t.Fatalf("span total %v != reported latency %v", total, res.Latency)
	}

	// The metrics side: the GET must have posted a request WRITE, a
	// response SEND, RECVs on both ends, and completed the client RECV.
	for _, name := range []string{
		"verbs.WRITE.posted", "verbs.SEND.posted",
		"verbs.RECV.posted", "verbs.RECV.completed",
	} {
		if sink.Registry.Counter(name).Value() == 0 {
			t.Errorf("counter %s is zero after a served GET", name)
		}
	}
	if sink.Registry.Histogram("herd.get.latency").Count() != 1 {
		t.Error("herd.get.latency did not record the GET")
	}
}

func spanNames(spans []telemetry.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestSendModeTracePropagates covers the SEND/SEND architecture, where
// the trace rides verbs.Completion.Trace instead of the request-region
// side channel: the sequence swaps the request "dma" landing for a
// "recv" consume but must still be contiguous and complete.
func TestSendModeTracePropagates(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 2, 1)
	sink := telemetry.New()
	sink.Tracer = telemetry.NewTracer()
	cl.SetTelemetry(sink)

	cfg := smallConfig()
	cfg.UseSendRequests = true
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	key := kv.FromUint64(9)
	if err := srv.Preload(key, []byte("v")); err != nil {
		t.Fatal(err)
	}

	checkpoint := sink.Tracer.SpanCount()
	var res Result
	c.Get(key, func(r Result) { res = r })
	cl.Eng.Run()
	if res.Status != kv.StatusHit {
		t.Fatalf("GET failed: %+v", res)
	}

	spans := sink.Tracer.SpansSince(checkpoint)
	want := []string{
		"req.pio", "req.nic", "req.wire", "req.recv",
		"cpu",
		"resp.pio", "resp.nic", "resp.wire", "resp.recv",
	}
	if len(spans) != len(want) {
		t.Fatalf("got spans %v, want %v", spanNames(spans), want)
	}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Fatalf("span %d = %q, want %q", i, s.Name, want[i])
		}
	}
	if total := spans[len(spans)-1].End - spans[0].Start; total != res.Latency {
		t.Fatalf("span total %v != reported latency %v", total, res.Latency)
	}
}
