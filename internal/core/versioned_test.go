package core

import (
	"bytes"
	"testing"

	"herdkv/internal/kv"
)

// stamped builds a version-prefixed value.
func stamped(epoch int64, seq uint64, tomb bool, payload string) []byte {
	v := kv.AppendVersion(nil, kv.Version{Epoch: epoch, Seq: seq}, tomb)
	return append(v, payload...)
}

// TestVersionedOrderedApply drives a versioned server end to end: a PUT
// whose stamp does not outrank the stored entry's must be refused
// (acked, not applied), regardless of arrival order.
func TestVersionedOrderedApply(t *testing.T) {
	cfg := smallConfig()
	cfg.VersionedValues = true
	cl, _, clients := newHERD(t, cfg, 1)
	c := clients[0]
	key := kv.FromUint64(7)

	newer := stamped(200, 1, false, "new")
	older := stamped(100, 1, false, "old")

	var r1, r2, got Result
	c.Put(key, newer, func(r Result) {
		r1 = r
		c.Put(key, older, func(r Result) {
			r2 = r
			c.Get(key, func(r Result) { got = r })
		})
	})
	cl.Eng.Run()

	if r1.Status != kv.StatusHit || r2.Status != kv.StatusHit {
		t.Fatalf("puts: %+v, %+v", r1, r2)
	}
	if got.Status != kv.StatusHit || !bytes.Equal(got.Value, newer) {
		t.Fatalf("stale PUT regressed the stored value: GET = %+v", got)
	}
}

// TestVersionedTombstoneStatus checks the delete-as-tombstone response
// contract: killing a live entry acks OK (Hit), a tombstone landing on
// absent or already-dead state reports not-found (Miss) — and the
// tombstone itself is stored, so the dead state outranks stale writes.
func TestVersionedTombstoneStatus(t *testing.T) {
	cfg := smallConfig()
	cfg.VersionedValues = true
	cl, srv, clients := newHERD(t, cfg, 1)
	c := clients[0]
	key := kv.FromUint64(9)

	var rAbsent, rPut, rLive, rDead, rStale, got Result
	c.Put(key, stamped(50, 1, true, ""), func(r Result) {
		rAbsent = r
		c.Put(key, stamped(100, 1, false, "live"), func(r Result) {
			rPut = r
			c.Put(key, stamped(200, 1, true, ""), func(r Result) {
				rLive = r
				c.Put(key, stamped(300, 1, true, ""), func(r Result) {
					rDead = r
					// A write stamped before the tombstone must not
					// resurrect the key.
					c.Put(key, stamped(150, 1, false, "stale"), func(r Result) {
						rStale = r
						c.Get(key, func(r Result) { got = r })
					})
				})
			})
		})
	})
	cl.Eng.Run()

	if rAbsent.Status != kv.StatusMiss {
		t.Fatalf("tombstone on absent key = %+v, want miss", rAbsent)
	}
	if rPut.Status != kv.StatusHit {
		t.Fatalf("put = %+v", rPut)
	}
	if rLive.Status != kv.StatusHit {
		t.Fatalf("tombstone on live key = %+v, want hit", rLive)
	}
	if rDead.Status != kv.StatusMiss {
		t.Fatalf("tombstone on dead key = %+v, want miss", rDead)
	}
	if rStale.Status != kv.StatusHit {
		t.Fatalf("refused stale put should still ack: %+v", rStale)
	}
	if got.Status != kv.StatusHit {
		t.Fatalf("GET of tombstone should return the stored bytes: %+v", got)
	}
	if _, tomb, _, ok := kv.SplitVersion(got.Value); !ok || !tomb {
		t.Fatalf("stored state is not the tombstone: %x", got.Value)
	}
	// Preload obeys the same ordering.
	if err := srv.Preload(key, stamped(10, 1, false, "ancient")); err != nil {
		t.Fatal(err)
	}
	var after Result
	c.Get(key, func(r Result) { after = r })
	cl.Eng.Run()
	if _, tomb, _, ok := kv.SplitVersion(after.Value); !ok || !tomb {
		t.Fatalf("Preload regressed the stored version: %x", after.Value)
	}
}
