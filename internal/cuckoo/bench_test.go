package cuckoo

import (
	"testing"

	"herdkv/internal/kv"
)

func benchTable(b *testing.B, fill int) *Table {
	b.Helper()
	n := 1 << 16
	tb := New(make([]byte, n*BucketSize), make([]byte, 1<<26), n)
	for i := 0; i < n*fill/100; i++ {
		if err := tb.Insert(kv.FromUint64(uint64(i)), make([]byte, 32)); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkLookupAt75Percent(b *testing.B) {
	tb := benchTable(b, 75)
	keys := make([]kv.Key, 1024)
	for i := range keys {
		keys[i] = kv.FromUint64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(keys[i&1023]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	n := 1 << 18
	tb := New(make([]byte, n*BucketSize), make([]byte, 1<<28), n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tb.Insert(kv.FromUint64(uint64(i)%uint64(n*6/10)), make([]byte, 32)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseBucket(b *testing.B) {
	tb := benchTable(b, 50)
	key := kv.FromUint64(1)
	idx := tb.BucketIndices(key)[0]
	raw := tb.buckets[idx*BucketSize : (idx+1)*BucketSize]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParseBucket(raw)
	}
}
