// Package cuckoo implements Pilaf's hash table (Section 5.1.1): 3-1
// cuckoo hashing — three orthogonal hash functions, one slot per bucket —
// with self-verifying 32-byte buckets and a value extent.
//
// The table is laid out in caller-supplied byte slices so that, in the
// Pilaf emulation, buckets and extents live inside an RDMA-registered
// memory region and clients GET by READing and parsing raw bucket bytes,
// exactly as Pilaf clients do. Each bucket carries two 64-bit checksums
// (one over its own header, one over the extent entry it points to) so a
// client can detect torn reads under concurrent server-side PUTs.
//
// At Pilaf's operating point of 75% memory efficiency, a GET probes 1.6
// buckets on average; Stats exposes the measured average.
package cuckoo

import (
	"encoding/binary"
	"errors"

	"herdkv/internal/kv"
)

// BucketSize is the serialized bucket size; the paper assumes 32 bytes
// for alignment.
const BucketSize = 32

// K is the number of hash functions (3-1 cuckoo hashing).
const K = 3

// maxKicks bounds the cuckoo displacement walk before declaring the
// table full.
const maxKicks = 512

// Bucket layout within its 32 bytes:
//
//	[0:8]   key fragment (64-bit hash of the full key)
//	[8:12]  extent offset
//	[12:14] value length
//	[14:16] flags (bit 0: occupied)
//	[16:24] checksum over bytes [0:16]
//	[24:32] checksum over the extent entry (full key + value)
const (
	offFrag  = 0
	offPtr   = 8
	offVLen  = 12
	offFlags = 14
	offSum1  = 16
	offSum2  = 24
)

const fragSeed = 0x9137

// Errors returned by table operations.
var (
	ErrTableFull  = errors.New("cuckoo: displacement limit reached (table full)")
	ErrExtentFull = errors.New("cuckoo: extent exhausted")
	ErrValueSize  = errors.New("cuckoo: value too large")
)

// MaxValueSize bounds values, matching HERD's 1 KB item limit.
const MaxValueSize = 1000

// extent entries are key + length + value.
const extentHeader = kv.KeySize + 2

// Bucket is a parsed, verified bucket.
type Bucket struct {
	Frag     uint64
	Ptr      uint32
	VLen     uint16
	Occupied bool
	Sum2     uint64
}

// ParseBucket decodes raw (>= BucketSize bytes) and verifies the header
// checksum. ok is false for an empty slot or a torn/corrupt read — the
// self-verification Pilaf clients perform after each bucket READ.
func ParseBucket(raw []byte) (Bucket, bool) {
	if len(raw) < BucketSize {
		return Bucket{}, false
	}
	flags := binary.LittleEndian.Uint16(raw[offFlags:])
	if flags&1 == 0 {
		return Bucket{}, false
	}
	if kv.Checksum64(raw[:offSum1]) != binary.LittleEndian.Uint64(raw[offSum1:]) {
		return Bucket{}, false
	}
	return Bucket{
		Frag:     binary.LittleEndian.Uint64(raw[offFrag:]),
		Ptr:      binary.LittleEndian.Uint32(raw[offPtr:]),
		VLen:     binary.LittleEndian.Uint16(raw[offVLen:]),
		Occupied: true,
		Sum2:     binary.LittleEndian.Uint64(raw[offSum2:]),
	}, true
}

// Frag returns the key fragment stored in buckets for key.
func Frag(key kv.Key) uint64 { return key.Hash64(fragSeed) }

// VerifyExtentEntry checks a raw extent entry READ by a client against
// the key and the bucket's entry checksum, returning the value bytes.
func VerifyExtentEntry(raw []byte, key kv.Key, b Bucket) ([]byte, bool) {
	need := extentHeader + int(b.VLen)
	if len(raw) < need {
		return nil, false
	}
	if kv.Checksum64(raw[:need]) != b.Sum2 {
		return nil, false
	}
	var stored kv.Key
	copy(stored[:], raw[:kv.KeySize])
	if stored != key {
		return nil, false
	}
	if int(binary.LittleEndian.Uint16(raw[kv.KeySize:])) != int(b.VLen) {
		return nil, false
	}
	return raw[extentHeader:need], true
}

// EntryBytes returns the extent entry size for a value of n bytes.
func EntryBytes(n int) int { return extentHeader + n }

// Stats counts table activity.
type Stats struct {
	Inserts, Lookups uint64
	Hits             uint64
	Kicks            uint64 // cuckoo displacements performed
	Probes           uint64 // buckets examined across all lookups
}

// AvgProbes reports mean buckets probed per lookup (the paper's 1.6 at
// 75% fill).
func (s Stats) AvgProbes() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Probes) / float64(s.Lookups)
}

// Table is a cuckoo hash table over caller-owned memory.
type Table struct {
	buckets  []byte // nBuckets * BucketSize
	extent   []byte
	nBuckets int
	extHead  int
	seeds    [K]uint64
	stats    Stats
}

// New builds a table over bucketMem (capacity nBuckets*BucketSize) and
// extentMem. The slices may alias an RDMA memory region.
func New(bucketMem, extentMem []byte, nBuckets int) *Table {
	if nBuckets < 1 || len(bucketMem) < nBuckets*BucketSize {
		panic("cuckoo: bucket memory too small")
	}
	return &Table{
		buckets:  bucketMem,
		extent:   extentMem,
		nBuckets: nBuckets,
		seeds:    [K]uint64{0x51ed, 0xbead, 0xfeed},
	}
}

// NBuckets returns the bucket count.
func (t *Table) NBuckets() int { return t.nBuckets }

// Stats returns a snapshot of counters.
func (t *Table) Stats() Stats { return t.stats }

// BucketIndices returns the K candidate buckets for key, in probe order.
// Clients use this to compute READ targets.
func (t *Table) BucketIndices(key kv.Key) [K]int {
	var out [K]int
	for i := 0; i < K; i++ {
		out[i] = int(key.Hash64(t.seeds[i]) % uint64(t.nBuckets))
	}
	return out
}

// BucketOffset returns the byte offset of bucket i within the bucket
// memory (and hence within the MR it occupies).
func (t *Table) BucketOffset(i int) int { return i * BucketSize }

// ExtentOffset converts a bucket's Ptr into a byte offset within the
// extent memory.
func ExtentOffset(ptr uint32) int { return int(ptr) }

func (t *Table) rawBucket(i int) []byte {
	return t.buckets[i*BucketSize : (i+1)*BucketSize]
}

func (t *Table) writeBucket(i int, frag uint64, ptr uint32, vlen uint16, sum2 uint64) {
	raw := t.rawBucket(i)
	binary.LittleEndian.PutUint64(raw[offFrag:], frag)
	binary.LittleEndian.PutUint32(raw[offPtr:], ptr)
	binary.LittleEndian.PutUint16(raw[offVLen:], vlen)
	binary.LittleEndian.PutUint16(raw[offFlags:], 1)
	binary.LittleEndian.PutUint64(raw[offSum1:], kv.Checksum64(raw[:offSum1]))
	binary.LittleEndian.PutUint64(raw[offSum2:], sum2)
}

func (t *Table) clearBucket(i int) {
	raw := t.rawBucket(i)
	for j := range raw {
		raw[j] = 0
	}
}

// appendExtent writes key+value into the extent, returning its pointer
// and entry checksum.
func (t *Table) appendExtent(key kv.Key, value []byte) (uint32, uint64, error) {
	need := EntryBytes(len(value))
	if t.extHead+need > len(t.extent) {
		return 0, 0, ErrExtentFull
	}
	pos := t.extHead
	copy(t.extent[pos:], key[:])
	binary.LittleEndian.PutUint16(t.extent[pos+kv.KeySize:], uint16(len(value)))
	copy(t.extent[pos+extentHeader:], value)
	t.extHead += need
	return uint32(pos), kv.Checksum64(t.extent[pos : pos+need]), nil
}

// keyOfBucket reads the full key of the entry bucket i points at.
func (t *Table) keyOfBucket(i int) kv.Key {
	raw := t.rawBucket(i)
	ptr := binary.LittleEndian.Uint32(raw[offPtr:])
	var k kv.Key
	copy(k[:], t.extent[ptr:ptr+kv.KeySize])
	return k
}

func (t *Table) occupied(i int) bool {
	return binary.LittleEndian.Uint16(t.rawBucket(i)[offFlags:])&1 == 1
}

// Lookup finds key server-side, probing candidate buckets in order.
func (t *Table) Lookup(key kv.Key) ([]byte, bool) {
	t.stats.Lookups++
	frag := Frag(key)
	for _, idx := range t.BucketIndices(key) {
		t.stats.Probes++
		b, ok := ParseBucket(t.rawBucket(idx))
		if !ok || b.Frag != frag {
			continue
		}
		pos := ExtentOffset(b.Ptr)
		v, ok := VerifyExtentEntry(t.extent[pos:], key, b)
		if ok {
			t.stats.Hits++
			return v, true
		}
	}
	return nil, false
}

// Insert adds or updates key. A full displacement walk returns
// ErrTableFull; extent exhaustion returns ErrExtentFull. Updates append
// a fresh extent entry (extents are log-structured; Pilaf's evaluation
// likewise ignores extent GC).
func (t *Table) Insert(key kv.Key, value []byte) error {
	if len(value) > MaxValueSize {
		return ErrValueSize
	}
	t.stats.Inserts++
	frag := Frag(key)
	idxs := t.BucketIndices(key)

	// Update in place if present.
	for _, idx := range idxs {
		if !t.occupied(idx) {
			continue
		}
		b, ok := ParseBucket(t.rawBucket(idx))
		if ok && b.Frag == frag && t.keyOfBucket(idx) == key {
			ptr, sum2, err := t.appendExtent(key, value)
			if err != nil {
				return err
			}
			t.writeBucket(idx, frag, ptr, uint16(len(value)), sum2)
			return nil
		}
	}
	// Empty candidate?
	for _, idx := range idxs {
		if !t.occupied(idx) {
			ptr, sum2, err := t.appendExtent(key, value)
			if err != nil {
				return err
			}
			t.writeBucket(idx, frag, ptr, uint16(len(value)), sum2)
			return nil
		}
	}
	// Cuckoo displacement: kick the occupant of the first candidate along
	// a random-ish walk until a hole opens.
	ptr, sum2, err := t.appendExtent(key, value)
	if err != nil {
		return err
	}
	curFrag, curPtr, curVLen, curSum2 := frag, ptr, uint16(len(value)), sum2
	curKey := key
	idx := idxs[key.Hash64(0xabcd)%K]
	for kick := 0; kick < maxKicks; kick++ {
		// Swap current item with the occupant.
		raw := t.rawBucket(idx)
		vFrag := binary.LittleEndian.Uint64(raw[offFrag:])
		vPtr := binary.LittleEndian.Uint32(raw[offPtr:])
		vVLen := binary.LittleEndian.Uint16(raw[offVLen:])
		vSum2 := binary.LittleEndian.Uint64(raw[offSum2:])
		vKey := t.keyOfBucket(idx)

		t.writeBucket(idx, curFrag, curPtr, curVLen, curSum2)
		t.stats.Kicks++

		curFrag, curPtr, curVLen, curSum2, curKey = vFrag, vPtr, vVLen, vSum2, vKey

		// Move the displaced item to one of its other candidates.
		alt := t.BucketIndices(curKey)
		next := alt[(kick+1)%K]
		if next == idx {
			next = alt[(kick+2)%K]
		}
		if !t.occupied(next) {
			t.writeBucket(next, curFrag, curPtr, curVLen, curSum2)
			return nil
		}
		idx = next
	}
	// Give up: restore nothing (the displaced item is dropped); report
	// full so callers can resize. The table stays self-consistent.
	t.writeBucket(idx, curFrag, curPtr, curVLen, curSum2)
	return ErrTableFull
}

// Delete removes key, returning whether it was present.
func (t *Table) Delete(key kv.Key) bool {
	frag := Frag(key)
	for _, idx := range t.BucketIndices(key) {
		if !t.occupied(idx) {
			continue
		}
		b, ok := ParseBucket(t.rawBucket(idx))
		if ok && b.Frag == frag && t.keyOfBucket(idx) == key {
			t.clearBucket(idx)
			return true
		}
	}
	return false
}

// LoadFactor reports the fraction of occupied buckets.
func (t *Table) LoadFactor() float64 {
	used := 0
	for i := 0; i < t.nBuckets; i++ {
		if t.occupied(i) {
			used++
		}
	}
	return float64(used) / float64(t.nBuckets)
}
