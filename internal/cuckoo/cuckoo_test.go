package cuckoo

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"herdkv/internal/kv"
)

func newTable(nBuckets, extentBytes int) *Table {
	return New(make([]byte, nBuckets*BucketSize), make([]byte, extentBytes), nBuckets)
}

func TestInsertLookup(t *testing.T) {
	tb := newTable(1024, 1<<20)
	k := kv.FromUint64(1)
	if err := tb.Insert(k, []byte("pilaf value")); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Lookup(k)
	if !ok || string(v) != "pilaf value" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
}

func TestLookupMissing(t *testing.T) {
	tb := newTable(1024, 1<<20)
	if _, ok := tb.Lookup(kv.FromUint64(42)); ok {
		t.Fatal("missing key found")
	}
}

func TestUpdate(t *testing.T) {
	tb := newTable(1024, 1<<20)
	k := kv.FromUint64(2)
	tb.Insert(k, []byte("v1"))
	if err := tb.Insert(k, []byte("v2 longer")); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Lookup(k)
	if !ok || string(v) != "v2 longer" {
		t.Fatalf("after update: %q, %v", v, ok)
	}
	// An update must not consume a second bucket.
	if lf := tb.LoadFactor(); lf > 1.5/1024 {
		t.Fatalf("load factor %v after updating one key", lf)
	}
}

func TestDelete(t *testing.T) {
	tb := newTable(1024, 1<<20)
	k := kv.FromUint64(3)
	tb.Insert(k, []byte("x"))
	if !tb.Delete(k) {
		t.Fatal("Delete existing = false")
	}
	if _, ok := tb.Lookup(k); ok {
		t.Fatal("present after delete")
	}
	if tb.Delete(k) {
		t.Fatal("Delete missing = true")
	}
}

func TestFillTo75Percent(t *testing.T) {
	// Pilaf operates 3-1 cuckoo at 75% memory efficiency; the table must
	// absorb that load without error.
	n := 4096
	tb := newTable(n, 1<<22)
	target := n * 75 / 100
	for i := 0; i < target; i++ {
		if err := tb.Insert(kv.FromUint64(uint64(i)), []byte{byte(i)}); err != nil {
			t.Fatalf("insert %d/%d failed: %v", i, target, err)
		}
	}
	if lf := tb.LoadFactor(); lf < 0.74 || lf > 0.76 {
		t.Fatalf("load factor = %v, want ~0.75", lf)
	}
	// Everything still retrievable.
	for i := 0; i < target; i++ {
		v, ok := tb.Lookup(kv.FromUint64(uint64(i)))
		if !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost after fill (ok=%v)", i, ok)
		}
	}
}

func TestAvgProbesNear1_6(t *testing.T) {
	// At 75% fill the paper quotes 1.6 average probes per GET.
	n := 8192
	tb := newTable(n, 1<<23)
	target := n * 75 / 100
	for i := 0; i < target; i++ {
		tb.Insert(kv.FromUint64(uint64(i)), []byte{1})
	}
	// Reset lookup stats by reading a fresh snapshot baseline.
	before := tb.Stats()
	for i := 0; i < target; i++ {
		tb.Lookup(kv.FromUint64(uint64(i)))
	}
	after := tb.Stats()
	probes := after.Probes - before.Probes
	lookups := after.Lookups - before.Lookups
	avg := float64(probes) / float64(lookups)
	if avg < 1.2 || avg > 2.0 {
		t.Fatalf("avg probes = %.2f, want ~1.6", avg)
	}
}

func TestSelfVerifyingBucketChecksum(t *testing.T) {
	tb := newTable(64, 1<<16)
	k := kv.FromUint64(7)
	tb.Insert(k, []byte("checked"))
	idx := -1
	for _, i := range tb.BucketIndices(k) {
		if tb.occupied(i) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no occupied candidate bucket")
	}
	raw := tb.buckets[idx*BucketSize : (idx+1)*BucketSize]
	if _, ok := ParseBucket(raw); !ok {
		t.Fatal("valid bucket failed to parse")
	}
	// Corrupt one header byte: parse must fail (torn-read detection).
	corrupt := append([]byte(nil), raw...)
	corrupt[3] ^= 0xff
	if _, ok := ParseBucket(corrupt); ok {
		t.Fatal("corrupt bucket passed checksum")
	}
}

func TestVerifyExtentEntryDetectsTearing(t *testing.T) {
	tb := newTable(64, 1<<16)
	k := kv.FromUint64(8)
	tb.Insert(k, []byte("extent value"))
	var b Bucket
	found := false
	for _, i := range tb.BucketIndices(k) {
		if bb, ok := ParseBucket(tb.rawBucket(i)); ok && bb.Frag == Frag(k) {
			b, found = bb, true
			break
		}
	}
	if !found {
		t.Fatal("bucket not found")
	}
	pos := ExtentOffset(b.Ptr)
	raw := tb.extent[pos : pos+EntryBytes(int(b.VLen))]
	v, ok := VerifyExtentEntry(raw, k, b)
	if !ok || string(v) != "extent value" {
		t.Fatalf("verify = %q, %v", v, ok)
	}
	// Corrupt the value: checksum2 must catch it.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] ^= 1
	if _, ok := VerifyExtentEntry(corrupt, k, b); ok {
		t.Fatal("corrupt extent entry passed verification")
	}
	// Wrong key must fail even with intact bytes.
	if _, ok := VerifyExtentEntry(raw, kv.FromUint64(9), b); ok {
		t.Fatal("entry verified against wrong key")
	}
}

func TestParseBucketShortBuffer(t *testing.T) {
	if _, ok := ParseBucket(make([]byte, 8)); ok {
		t.Fatal("short buffer parsed")
	}
	if _, ok := ParseBucket(make([]byte, BucketSize)); ok {
		t.Fatal("empty bucket parsed as occupied")
	}
}

func TestExtentFull(t *testing.T) {
	tb := newTable(1024, 3*EntryBytes(8))
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = tb.Insert(kv.FromUint64(uint64(i)), make([]byte, 8))
	}
	if err != ErrExtentFull {
		t.Fatalf("err = %v, want ErrExtentFull", err)
	}
}

func TestValueTooLarge(t *testing.T) {
	tb := newTable(64, 1<<16)
	if err := tb.Insert(kv.FromUint64(1), make([]byte, MaxValueSize+1)); err != ErrValueSize {
		t.Fatalf("err = %v", err)
	}
}

func TestTableFullEventually(t *testing.T) {
	// Overfilling far past cuckoo capacity must fail with ErrTableFull,
	// not loop forever or corrupt earlier entries.
	n := 64
	tb := newTable(n, 1<<20)
	sawFull := false
	inserted := []uint64{}
	for i := 0; i < n*2; i++ {
		err := tb.Insert(kv.FromUint64(uint64(i)), []byte{byte(i)})
		if err == ErrTableFull {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, uint64(i))
	}
	if !sawFull {
		t.Fatal("never reported full at 2x capacity")
	}
	// Table remains self-consistent: lookups never return wrong values.
	for _, i := range inserted {
		if v, ok := tb.Lookup(kv.FromUint64(i)); ok && v[0] != byte(i) {
			t.Fatalf("key %d corrupt after displacement storm", i)
		}
	}
}

func TestBucketIndicesInRange(t *testing.T) {
	tb := newTable(333, 1<<16) // non-power-of-two
	f := func(n uint64) bool {
		for _, i := range tb.BucketIndices(kv.FromUint64(n)) {
			if i < 0 || i >= 333 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: model-based — every lookup hit returns the latest inserted
// value; keys reported full are allowed to be dropped but never corrupt.
func TestCuckooModelProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tb := newTable(128, 1<<18)
		model := make(map[kv.Key][]byte)
		for _, op := range ops {
			k := kv.FromUint64(uint64(op % 48))
			switch rnd.Intn(3) {
			case 0:
				v := []byte(fmt.Sprintf("v%d", rnd.Intn(1000)))
				if err := tb.Insert(k, v); err == nil {
					model[k] = v
				} else {
					delete(model, k) // dropped by displacement failure
				}
			case 1:
				if got, ok := tb.Lookup(k); ok {
					if want, in := model[k]; in && !bytes.Equal(got, want) {
						return false
					}
				}
			case 2:
				tb.Delete(k)
				delete(model, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
