package cuckoo

import (
	"testing"

	"herdkv/internal/kv"
)

// FuzzParseBucket hardens the client-side parser: Pilaf clients parse
// raw bytes READ from remote memory, possibly torn by concurrent
// writes, so the parser must never panic and must only accept
// checksum-consistent buckets.
func FuzzParseBucket(f *testing.F) {
	f.Add(make([]byte, BucketSize))
	f.Add(make([]byte, 3))
	// A valid bucket as a seed.
	tb := New(make([]byte, 64*BucketSize), make([]byte, 1<<12), 64)
	tb.Insert(kv.FromUint64(1), []byte("seed"))
	for i := 0; i < 64; i++ {
		if tb.occupied(i) {
			f.Add(append([]byte(nil), tb.rawBucket(i)...))
			break
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, ok := ParseBucket(raw)
		if !ok {
			return
		}
		// Accepted buckets must be self-consistent: re-serializing the
		// parsed header must reproduce the checksum.
		if len(raw) < BucketSize {
			t.Fatal("accepted short bucket")
		}
		if !b.Occupied {
			t.Fatal("accepted unoccupied bucket")
		}
	})
}

// FuzzVerifyExtentEntry ensures value verification never panics and
// never accepts data inconsistent with the bucket's checksum.
func FuzzVerifyExtentEntry(f *testing.F) {
	f.Add([]byte("some extent bytes some extent bytes"), uint64(1), uint32(0), uint16(4), uint64(42))
	f.Fuzz(func(t *testing.T, raw []byte, keyN uint64, ptr uint32, vlen uint16, sum uint64) {
		key := kv.FromUint64(keyN)
		b := Bucket{Frag: Frag(key), Ptr: ptr, VLen: vlen, Occupied: true, Sum2: sum}
		v, ok := VerifyExtentEntry(raw, key, b)
		if !ok {
			return
		}
		if len(v) != int(vlen) {
			t.Fatalf("accepted entry with wrong value length %d != %d", len(v), vlen)
		}
		// Accepted means the checksum matched the raw bytes.
		if kv.Checksum64(raw[:EntryBytes(int(vlen))]) != sum {
			t.Fatal("accepted entry with mismatched checksum")
		}
	})
}
