package experiments

import (
	"testing"

	"herdkv/internal/cluster"
)

func TestAblationArchitectureCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("client-scaling sweep is slow")
	}
	defer short(t)()
	tbl := AblationArchitecture(cluster.Apt())
	// At moderate scale the hybrid wins by roughly the paper's 4-5 Mops.
	r50 := row(t, tbl, "50")
	hybrid, sendSend := fval(t, r50[1]), fval(t, r50[2])
	if gap := hybrid - sendSend; gap < 2 || gap > 9 {
		t.Errorf("SEND/SEND penalty at 50 clients = %.1f Mops, want ~4-5", gap)
	}
	// At 500 clients the hybrid has declined while SEND/SEND holds, so
	// SEND/SEND wins (Section 5.5's prediction).
	r500 := row(t, tbl, "500")
	if h, s := fval(t, r500[1]), fval(t, r500[2]); s <= h {
		t.Errorf("at 500 clients SEND/SEND (%.1f) should beat the hybrid (%.1f)", s, h)
	}
	// SEND/SEND is flat across the sweep.
	s50, s500 := fval(t, r50[2]), fval(t, r500[2])
	if s500 < s50*0.9 {
		t.Errorf("SEND/SEND not flat: %.1f at 50 vs %.1f at 500", s50, s500)
	}
	// DC: flat like SEND/SEND but near the hybrid's peak (it keeps WRITE
	// semantics) — the paper's Connect-IB expectation.
	d50, d500 := fval(t, r50[3]), fval(t, r500[3])
	if d500 < d50*0.9 {
		t.Errorf("DC not flat: %.1f at 50 vs %.1f at 500", d50, d500)
	}
	if d50 <= s50 {
		t.Errorf("DC (%.1f) should beat SEND/SEND (%.1f) — WRITEs beat SENDs inbound", d50, s50)
	}
	if d50 < hybrid*0.9 {
		t.Errorf("DC (%.1f) should be close to the hybrid's peak (%.1f)", d50, hybrid)
	}
	if d500 <= fval(t, r500[1]) {
		t.Errorf("at 500 clients DC (%.1f) should beat the UC hybrid (%.1f)", d500, fval(t, r500[1]))
	}
}

func TestAblationInline(t *testing.T) {
	defer short(t)()
	tbl := AblationInlineCutoff(cluster.Apt())
	// Never inlining cripples small-value throughput.
	none := fval(t, row(t, tbl, "1")[1])
	def := fval(t, row(t, tbl, "144")[1])
	if def < 2*none {
		t.Errorf("inlining should at least double SV=32 throughput: %.1f vs %.1f", def, none)
	}
}

func TestAblationWindow(t *testing.T) {
	defer short(t)()
	tbl := AblationWindow(cluster.Apt())
	// Throughput saturates by window 4; latency keeps growing.
	w1 := fval(t, row(t, tbl, "1")[1])
	w4 := fval(t, row(t, tbl, "4")[1])
	w16 := fval(t, row(t, tbl, "16")[1])
	if w4 < w1 {
		t.Errorf("deeper window should not lower throughput: w1=%.1f w4=%.1f", w1, w4)
	}
	if w16 < w4*0.9 {
		t.Errorf("w16 (%.1f) should hold w4's throughput (%.1f)", w16, w4)
	}
	l4 := fval(t, row(t, tbl, "4")[2])
	l16 := fval(t, row(t, tbl, "16")[2])
	if l16 < 2*l4 {
		t.Errorf("latency should grow with window: w4=%.1f us, w16=%.1f us", l4, l16)
	}
}

func TestAblationPrefetch(t *testing.T) {
	defer short(t)()
	tbl := AblationPrefetch(cluster.Apt())
	for _, cores := range []string{"2", "4"} {
		r := row(t, tbl, cores)
		if np, pf := fval(t, r[1]), fval(t, r[2]); pf < 1.5*np {
			t.Errorf("cores=%s: prefetch (%.1f) should be >1.5x no-prefetch (%.1f)", cores, pf, np)
		}
	}
}
