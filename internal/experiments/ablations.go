package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// The ablations quantify the design decisions DESIGN.md calls out, each
// isolating one choice HERD makes and measuring what it buys.

// AblationArchitecture compares the WRITE/SEND hybrid against the
// SEND/SEND alternative of Section 5.5 across client counts: the hybrid
// is faster at moderate scale but declines past the NIC's context reach,
// while SEND/SEND trades ~4-5 Mops of peak for flat scaling.
func AblationArchitecture(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "ablation-arch",
		Title:   fmt.Sprintf("Request architecture vs client count (Mops) — %s", spec.Name),
		Columns: []string{"clients", "WRITE/SEND (UC)", "SEND/SEND (UD)", "WRITE/SEND (DC)"},
	}
	saveW, saveS := Warmup, Span
	if Span < 600*sim.Microsecond {
		Span = 600 * sim.Microsecond
	}
	if Warmup < 200*sim.Microsecond {
		Warmup = 200 * sim.Microsecond
	}
	defer func() { Warmup, Span = saveW, saveS }()
	for _, nc := range []int{50, 150, 260, 400, 500} {
		row := []string{fmt.Sprintf("%d", nc)}
		for _, mode := range []struct{ send, dc bool }{{false, false}, {true, false}, {false, true}} {
			cfg := defaultE2E(spec, SysHERD)
			cfg.clients = nc
			cfg.sendMode = mode.send
			cfg.dcMode = mode.dc
			row = append(row, cell(runE2E(cfg).Mops))
		}
		t.AddRow(row...)
	}
	t.AddNote("SEND/SEND and DC keep no per-client state at the server NIC; DC keeps WRITE semantics (the Connect-IB fix the paper anticipates in Section 5.5)")
	return t
}

// AblationInlineCutoff sweeps the response inline threshold: inlining
// small responses is the difference between PIO-rate and DMA-rate
// responses; inlining big ones wastes PIO bandwidth.
func AblationInlineCutoff(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "ablation-inline",
		Title:   fmt.Sprintf("Response inline cutoff (Mops) — %s", spec.Name),
		Columns: []string{"cutoff", "SV=32", "SV=192"},
	}
	for _, cutoff := range []int{1, 64, 144, 256} {
		row := []string{fmt.Sprintf("%d", cutoff)}
		for _, sv := range []int{32, 192} {
			cfg := defaultE2E(spec, SysHERD)
			cfg.valueSize = sv
			cfg.inlineCut = cutoff
			row = append(row, cell(runE2E(cfg).Mops))
		}
		t.AddRow(row...)
	}
	t.AddNote("the paper's default is 144 B on Apt: inline below it, DMA above")
	return t
}

// AblationWindow sweeps the client window: deeper windows raise
// throughput until the server saturates, then only add latency.
func AblationWindow(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "ablation-window",
		Title:   fmt.Sprintf("Client window size (48 B read-intensive, 51 clients) — %s", spec.Name),
		Columns: []string{"window", "Mops", "mean_us"},
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		cfg := defaultE2E(spec, SysHERD)
		cfg.window = w
		r := runE2E(cfg)
		t.AddRow(fmt.Sprintf("%d", w), cell(r.Mops), cell(r.Mean.Microseconds()))
	}
	return t
}

// AblationDoorbell measures doorbell batching: posting several WQEs per
// doorbell replaces per-verb PIO with one NIC-side WQE fetch, raising
// the outbound message rate well past the BlueFlame path's 64 B
// write-combining limit — the standard next step after the paper's
// optimization ladder.
func AblationDoorbell(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "ablation-doorbell",
		Title:   fmt.Sprintf("Doorbell batching: outbound 32 B inlined WRITEs (Mops) — %s", spec.Name),
		Columns: []string{"batch", "Mops"},
	}
	for _, batch := range []int{1, 2, 4, 8, 16} {
		t.AddRow(fmt.Sprintf("%d", batch), cell(doorbellMops(spec, batch)))
	}
	t.AddNote("batch=1 is the BlueFlame (PIO WQE) path the paper's microbenchmarks use")
	t.AddNote("batched rates extrapolate beyond ConnectX-3's validated envelope; they model the mechanism, not that card's ceiling")
	return t
}

func doorbellMops(spec cluster.Spec, batch int) float64 {
	cl := cluster.New(spec, 1+clientMachines, 1)
	srv := cl.Machine(0)
	payload := make([]byte, 32)
	var count uint64
	for p := 0; p < inboundProcs; p++ {
		m := cl.Machine(1 + p%clientMachines)
		cliMR := m.Verbs.RegisterMR(4096)
		sq := srv.Verbs.CreateQP(wire.UC)
		cq := m.Verbs.CreateQP(wire.UC)
		if err := verbs.Connect(sq, cq); err != nil {
			panic(err)
		}
		var dones []func()
		cliMR.Watch(0, 4096, func(off, n int) {
			count++
			if len(dones) > 0 {
				d := dones[0]
				dones = dones[1:]
				d()
			}
		})
		// Each pump slot posts a whole batch and completes when its last
		// WRITE lands.
		pump(inboundWindow/2, func(done func()) {
			wrs := make([]verbs.SendWR, batch)
			for j := range wrs {
				wrs[j] = verbs.SendWR{
					Verb: verbs.WRITE, Data: payload,
					Remote: cliMR, RemoteOff: j * 64, Inline: true,
				}
			}
			for j := 0; j < batch-1; j++ {
				dones = append(dones, func() {})
			}
			dones = append(dones, done)
			mustPost(sq.PostSendBatch(wrs))
		})
	}
	return measureMops(cl, &count)
}

// AblationPrefetch disables the request pipeline end to end: Figure 7's
// microbenchmark, replayed through the full system.
func AblationPrefetch(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "ablation-prefetch",
		Title:   fmt.Sprintf("Request pipeline prefetching, end to end (Mops) — %s", spec.Name),
		Columns: []string{"cores", "no-prefetch", "prefetch"},
	}
	for _, cores := range []int{2, 4, 6} {
		row := []string{fmt.Sprintf("%d", cores)}
		for _, pf := range []bool{false, true} {
			cfg := defaultE2E(spec, SysHERD)
			cfg.cores = cores
			cfg.noPrefetch = !pf
			row = append(row, cell(runE2E(cfg).Mops))
		}
		t.AddRow(row...)
	}
	return t
}
