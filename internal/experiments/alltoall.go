package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// Fig6AllToAll reproduces Figure 6: all-to-all communication with N
// client processes and N server processes, 32-byte inlined unsignaled
// messages. Inbound WRITEs over UC scale; outbound WRITEs over UC
// collapse as N*N queue pairs outgrow the server NIC's context cache;
// outbound SENDs over UD scale because each server process needs only
// one UD queue pair.
func Fig6AllToAll(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("All-to-all throughput (Mops), 32 B — %s", spec.Name),
		Columns: []string{"N", "In-WRITE-UC", "Out-WRITE-UC", "Out-SEND-UD"},
	}
	for _, n := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16} {
		in := allToAllMops(spec, n, "in-write")
		outW := allToAllMops(spec, n, "out-write")
		outS := allToAllMops(spec, n, "out-send")
		t.AddRow(fmt.Sprintf("%d", n), cell(in), cell(outW), cell(outS))
	}
	t.AddNote("N*N UC queue pairs at the server for WRITE modes; N UD queue pairs for SEND mode")
	return t
}

const allToAllWindow = 8

func allToAllMops(spec cluster.Spec, n int, mode string) float64 {
	cl := cluster.New(spec, 1+n, 1)
	srv := cl.Machine(0)
	rnd := sim.NewRand(7)
	size := 32
	payload := make([]byte, size)
	var count uint64

	switch mode {
	case "in-write":
		// Client proc i holds a UC QP to each server proc; each op picks
		// a random server proc.
		srvMR := srv.Verbs.RegisterMR(n * n * 64)
		dones := make([][]func(), n*n)
		srvMR.Watch(0, n*n*64, func(off, _ int) {
			count++
			s := off / 64
			if len(dones[s]) > 0 {
				d := dones[s][0]
				dones[s] = dones[s][1:]
				d()
			}
		})
		for c := 0; c < n; c++ {
			m := cl.Machine(1 + c)
			qps := make([]*verbs.QP, n)
			for s := 0; s < n; s++ {
				qps[s] = m.Verbs.CreateQP(wire.UC)
				sq := srv.Verbs.CreateQP(wire.UC)
				if err := verbs.Connect(qps[s], sq); err != nil {
					panic(err)
				}
			}
			c := c
			pump(allToAllWindow, func(done func()) {
				s := rnd.Intn(n)
				slot := s*n + c
				dones[slot] = append(dones[slot], done)
				mustPost(qps[s].PostSend(verbs.SendWR{
					Verb: verbs.WRITE, Data: payload,
					Remote: srvMR, RemoteOff: slot * 64, Inline: true,
				}))
			})
		}

	case "out-write":
		// Server proc j holds a UC QP to each client; each op picks a
		// random client. N*N send-side QPs at the server NIC.
		cliMRs := make([]*verbs.MR, n)
		dones := make([][]func(), n*n)
		for c := 0; c < n; c++ {
			c := c
			cliMRs[c] = cl.Machine(1 + c).Verbs.RegisterMR(n * 64)
			cliMRs[c].Watch(0, n*64, func(off, _ int) {
				count++
				s := off / 64
				slot := s*n + c
				if len(dones[slot]) > 0 {
					d := dones[slot][0]
					dones[slot] = dones[slot][1:]
					d()
				}
			})
		}
		for s := 0; s < n; s++ {
			qps := make([]*verbs.QP, n)
			for c := 0; c < n; c++ {
				qps[c] = srv.Verbs.CreateQP(wire.UC)
				cq := cl.Machine(1 + c).Verbs.CreateQP(wire.UC)
				if err := verbs.Connect(qps[c], cq); err != nil {
					panic(err)
				}
			}
			s := s
			pump(allToAllWindow, func(done func()) {
				c := rnd.Intn(n)
				dones[s*n+c] = append(dones[s*n+c], done)
				mustPost(qps[c].PostSend(verbs.SendWR{
					Verb: verbs.WRITE, Data: payload,
					Remote: cliMRs[c], RemoteOff: s * 64, Inline: true,
				}))
			})
		}

	case "out-send":
		// Server proc j uses ONE UD QP for all clients (the datagram
		// advantage); each op picks a random client.
		cliQPs := make([]*verbs.QP, n)
		dones := make([][]func(), n*n)
		for c := 0; c < n; c++ {
			c := c
			m := cl.Machine(1 + c)
			mr := m.Verbs.RegisterMR(1024)
			cliQPs[c] = m.Verbs.CreateQP(wire.UD)
			for w := 0; w < 4*allToAllWindow; w++ {
				mustPost(cliQPs[c].PostRecv(mr, 0, 1024, 0))
			}
			cliQPs[c].RecvCQ().SetHandler(func(comp verbs.Completion) {
				if comp.Flushed {
					return
				}
				count++
				mustPost(cliQPs[c].PostRecv(mr, 0, 1024, 0))
				// Match the done by sender process (comp.SrcQPN is the
				// server proc's UD QP number, allocated sequentially).
				s := int(comp.SrcQPN) - 1
				if s >= 0 && s < n {
					slot := s*n + c
					if len(dones[slot]) > 0 {
						d := dones[slot][0]
						dones[slot] = dones[slot][1:]
						d()
					}
				}
			})
		}
		for s := 0; s < n; s++ {
			udQP := srv.Verbs.CreateQP(wire.UD)
			s := s
			pump(allToAllWindow, func(done func()) {
				c := rnd.Intn(n)
				dones[s*n+c] = append(dones[s*n+c], done)
				mustPost(udQP.PostSend(verbs.SendWR{
					Verb: verbs.SEND, Data: payload, Dest: cliQPs[c], Inline: true,
				}))
			})
		}
	}
	return measureMops(cl, &count)
}
