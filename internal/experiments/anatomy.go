package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// LatencyAnatomy decomposes an idle HERD GET's single round trip into
// its hardware stages: the request's client-to-server leg (PIO + NIC +
// wire + DMA into the request region), the server CPU's detection and
// service, and the response's server-to-client leg (SEND + wire + RECV
// delivery). It substantiates the paper's latency argument — the network
// legs dominate and there is exactly one round trip to pay.
//
// The decomposition is read off the request-lifecycle trace spans the
// stack records (package telemetry): every span with a "req." prefix is
// the request leg, the "cpu" span is the server stage, and the "resp."
// spans are the response leg. Because the spans of one trace partition
// [issue, response] with no gaps, the three stages sum exactly to the
// measured round-trip time.
func LatencyAnatomy(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "anatomy",
		Title:   fmt.Sprintf("Anatomy of an idle HERD GET (48 B item) — %s", spec.Name),
		Columns: []string{"stage", "mean_us", "share"},
	}

	cl := cluster.New(spec, 2, 1)
	// Trace every operation. Reuse the ambient sink if it already traces
	// (so the spans also land in any -trace output); otherwise attach a
	// local tracer, keeping whatever metrics registry is in effect.
	sink := cl.Telemetry()
	if !sink.Tracing() {
		local := &telemetry.Sink{Tracer: telemetry.NewTracer()}
		if sink != nil {
			local.Registry = sink.Registry
			local.PerQP = sink.PerQP
		}
		sink = local
		cl.SetTelemetry(sink)
	}
	tracer := sink.Tracer

	cfg := core.DefaultConfig()
	cfg.NS = 1
	cfg.MaxClients = 1
	cfg.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	srv, err := core.NewServer(cl.Machine(0), cfg)
	if err != nil {
		panic(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		panic(err)
	}
	key := kv.FromUint64(1)
	if err := srv.Preload(key, make([]byte, 32)); err != nil {
		panic(err)
	}

	// Only spans recorded from here on belong to this experiment.
	checkpoint := tracer.SpanCount()

	reps := 200
	n := 0
	var next func()
	next = func() {
		if n >= reps {
			return
		}
		c.Get(key, func(r core.Result) {
			n++
			// A small gap keeps each measurement isolated.
			cl.Eng.After(sim.Microsecond, next)
		})
	}
	next()
	cl.Eng.Run()

	// Aggregate the per-operation traces into the three stages. Spans
	// arrive grouped by completion, but group explicitly by trace ID so
	// interleaved traces would also decompose correctly.
	var reqLeg, serverStage, respLeg, total sim.Time
	byTrace := make(map[uint64][]telemetry.Span)
	var order []uint64
	for _, s := range tracer.SpansSince(checkpoint) {
		if _, seen := byTrace[s.TraceID]; !seen {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	for _, id := range order {
		spans := byTrace[id]
		for _, s := range spans {
			switch {
			case s.Name == "cpu":
				serverStage += s.Duration()
			case len(s.Name) > 5 && s.Name[:5] == "resp.":
				respLeg += s.Duration()
			default: // "req." spans
				reqLeg += s.Duration()
			}
		}
		total += spans[len(spans)-1].End - spans[0].Start
	}

	mean := func(v sim.Time) float64 { return v.Microseconds() / float64(n) }
	share := func(v sim.Time) string {
		return fmt.Sprintf("%.0f%%", 100*float64(v)/float64(total))
	}
	t.AddRow("request leg (PIO+NIC+wire+DMA)", cell(mean(reqLeg)), share(reqLeg))
	t.AddRow("server CPU (poll+MICA+post)", cell(mean(serverStage)), share(serverStage))
	t.AddRow("response leg (SEND+wire+RECV)", cell(mean(respLeg)), share(respLeg))
	t.AddRow("total", cell(mean(total)), "100%")
	t.AddNote("one network round trip per operation; READ-based designs pay the legs 2.6x (Pilaf) or 2x (FaRM-VAR)")
	return t
}
