package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

// LatencyAnatomy decomposes an idle HERD GET's single round trip into
// its hardware stages: the request's client-to-server leg (PIO + NIC +
// wire + DMA into the request region), the server CPU's detection and
// service, and the response's server-to-client leg (SEND + wire + RECV
// delivery). It substantiates the paper's latency argument — the network
// legs dominate and there is exactly one round trip to pay.
func LatencyAnatomy(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "anatomy",
		Title:   fmt.Sprintf("Anatomy of an idle HERD GET (48 B item) — %s", spec.Name),
		Columns: []string{"stage", "mean_us", "share"},
	}

	cl := cluster.New(spec, 2, 1)
	cfg := core.DefaultConfig()
	cfg.NS = 1
	cfg.MaxClients = 1
	cfg.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	srv, err := core.NewServer(cl.Machine(0), cfg)
	if err != nil {
		panic(err)
	}
	c, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		panic(err)
	}
	key := kv.FromUint64(1)
	if err := srv.Preload(key, make([]byte, 32)); err != nil {
		panic(err)
	}

	var reqLanded sim.Time
	srv.Region().Watch(0, cfg.RegionSize(), func(int, int) { reqLanded = cl.Eng.Now() })

	reps := 200
	var reqLeg, serverStage, respLeg, total sim.Time
	n := 0
	core0 := cl.Machine(0).CPU.Core(0)

	var next func()
	next = func() {
		if n >= reps {
			return
		}
		start := cl.Eng.Now()
		busyBefore := core0.BusyTime()
		c.Get(key, func(r core.Result) {
			done := cl.Eng.Now()
			service := core0.BusyTime() - busyBefore
			reqLeg += reqLanded - start
			serverStage += service
			respLeg += done - reqLanded - service
			total += done - start
			n++
			// A small gap keeps each measurement isolated.
			cl.Eng.After(sim.Microsecond, next)
		})
	}
	next()
	cl.Eng.Run()

	mean := func(v sim.Time) float64 { return v.Microseconds() / float64(n) }
	share := func(v sim.Time) string {
		return fmt.Sprintf("%.0f%%", 100*float64(v)/float64(total))
	}
	t.AddRow("request leg (PIO+NIC+wire+DMA)", cell(mean(reqLeg)), share(reqLeg))
	t.AddRow("server CPU (poll+MICA+post)", cell(mean(serverStage)), share(serverStage))
	t.AddRow("response leg (SEND+wire+RECV)", cell(mean(respLeg)), share(respLeg))
	t.AddRow("total", cell(mean(total)), "100%")
	t.AddNote("one network round trip per operation; READ-based designs pay the legs 2.6x (Pilaf) or 2x (FaRM-VAR)")
	return t
}
