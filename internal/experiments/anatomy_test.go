package experiments

import (
	"testing"

	"herdkv/internal/cluster"
)

func TestAnatomySumsAndShape(t *testing.T) {
	tbl := LatencyAnatomy(cluster.Apt())
	req := fval(t, row(t, tbl, "request leg (PIO+NIC+wire+DMA)")[1])
	srv := fval(t, row(t, tbl, "server CPU (poll+MICA+post)")[1])
	rsp := fval(t, row(t, tbl, "response leg (SEND+wire+RECV)")[1])
	total := fval(t, row(t, tbl, "total")[1])

	if sum := req + srv + rsp; sum < total*0.98 || sum > total*1.02 {
		t.Fatalf("stages (%.2f) do not sum to total (%.2f)", sum, total)
	}
	// The network legs dominate; the server CPU is a small slice — the
	// quantitative core of the paper's single-RTT argument.
	if srv > 0.25*total {
		t.Fatalf("server stage %.2f us is too large a share of %.2f us", srv, total)
	}
	if req < 0.3*total || rsp < 0.3*total {
		t.Fatalf("network legs should dominate: req=%.2f rsp=%.2f total=%.2f", req, rsp, total)
	}
	if total < 1 || total > 4 {
		t.Fatalf("idle GET total %.2f us outside the 1-4 us band", total)
	}
}
