package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fault"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
	"herdkv/internal/workload"
)

// chaosBuckets is the time resolution of the availability table.
const chaosBuckets = 10

// chaosRetryTimeout is the base retry timer for chaos runs: comfortably
// above worst-case response latency so duplicates stay rare, far below
// the bucket width so recovery is visible in the table.
const chaosRetryTimeout = 25 * sim.Microsecond

// Chaos drives a HERD deployment closed-loop while sched injects faults,
// and reports availability and tail latency through time. Every issued
// operation is accounted for: it either completes with a served response
// or fails terminally after its retry budget — the run drains to zero
// in-flight operations before reporting, and a nonzero hung count is a
// bug. Rows bucket operations by issue time; an op that spans a bucket
// boundary counts where it was issued.
//
// The run is deterministic: the same (spec, schedule, seed) triple
// produces a byte-identical table.
func Chaos(spec cluster.Spec, sched *fault.Schedule, seed int64) *Table {
	const (
		nClients   = 6
		perMachine = 3
		keys       = 4096
		valueSize  = 32
	)
	runFor := sched.End()
	if runFor == 0 {
		runFor = 10 * sim.Millisecond
	}
	bucketLen := runFor / chaosBuckets

	spec.Faults = sched
	machines := 1 + (nClients+perMachine-1)/perMachine
	cl := cluster.New(spec, machines, seed)

	hcfg := core.DefaultConfig()
	hcfg.NS = 2
	hcfg.MaxClients = nClients
	hcfg.RetryTimeout = chaosRetryTimeout
	hcfg.Mica = mica.Config{
		IndexBuckets: keys / 4,
		BucketSlots:  8,
		LogBytes:     keys * (18 + valueSize) * 2 / hcfg.NS,
	}
	srv, err := core.NewServer(cl.Machine(0), hcfg)
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < keys; k++ {
		key := kv.FromUint64(k)
		if err := srv.Preload(key, workload.ExpectedValue(key, valueSize)); err != nil {
			panic(err)
		}
	}
	if inj := cl.Faults(); inj != nil {
		inj.SetCrashTarget(0, srv)
		inj.Arm()
	}

	clients := make([]*core.Client, nClients)
	for i := range clients {
		c, err := srv.ConnectClient(cl.Machine(1 + i/perMachine))
		if err != nil {
			panic(err)
		}
		clients[i] = c
	}

	type bucket struct {
		issued, ok, err uint64
		lat             *stats.LatencyRecorder
	}
	buckets := make([]bucket, chaosBuckets)
	for i := range buckets {
		buckets[i] = bucket{lat: stats.NewLatencyRecorder(16384)}
	}
	bucketOf := func(t sim.Time) *bucket {
		i := int(t / bucketLen)
		if i >= chaosBuckets {
			i = chaosBuckets - 1
		}
		return &buckets[i]
	}

	stopped := false
	for i, c := range clients {
		c := c
		gen := workload.NewGenerator(workload.Config{
			GetFraction: 0.95,
			Keys:        keys,
			ValueSize:   valueSize,
			Seed:        seed + int64(i)*1000,
		})
		issue := func(done func()) {
			if stopped {
				return // let the closed loop die out at the cutoff
			}
			op := gen.Next()
			b := bucketOf(cl.Eng.Now())
			b.issued++
			fin := func(r core.Result) {
				if r.Err != nil {
					b.err++
				} else {
					b.ok++
					b.lat.Record(r.Latency)
				}
				done()
			}
			if op.IsGet {
				c.Get(op.Key, fin)
			} else {
				c.Put(op.Key, workload.ExpectedValue(op.Key, valueSize), fin)
			}
		}
		stagger := sim.Time(i) * sim.Microsecond
		cl.Eng.At(stagger, func() { pump(hcfg.Window, issue) })
	}

	// Run the scripted window, stop issuing, then drain: every in-flight
	// op must resolve — served, or terminal after its retry budget.
	cl.Eng.RunFor(runFor)
	stopped = true
	cl.Eng.Run()

	var issued, okOps, errOps uint64
	t := &Table{
		ID:      "chaos",
		Title:   fmt.Sprintf("Availability through faults — %s", spec.Name),
		Columns: []string{"t_ms", "issued", "ok", "err", "avail%", "p99_us"},
	}
	for i := range buckets {
		b := &buckets[i]
		issued += b.issued
		okOps += b.ok
		errOps += b.err
		avail, p99 := "-", "-"
		if b.ok+b.err > 0 {
			avail = fmt.Sprintf("%.1f", 100*float64(b.ok)/float64(b.ok+b.err))
		}
		if b.ok > 0 {
			p99 = cell(b.lat.Percentile(99).Microseconds())
		}
		t.AddRow(
			fmt.Sprintf("%.1f-%.1f", (sim.Time(i)*bucketLen).Microseconds()/1000,
				(sim.Time(i+1)*bucketLen).Microseconds()/1000),
			fmt.Sprintf("%d", b.issued), fmt.Sprintf("%d", b.ok),
			fmt.Sprintf("%d", b.err), avail, p99,
		)
	}

	var retries, reconnects, dups, corrupt, inflight uint64
	for _, c := range clients {
		retries += c.Retries()
		reconnects += c.Reconnects()
		dups += c.DupResponses()
		corrupt += c.CorruptResponses()
		inflight += uint64(c.Inflight())
	}
	hung := inflight
	t.AddNote("ops: %d issued, %d ok, %d terminal err, %d hung (must be 0)",
		issued, okOps, errOps, hung)
	t.AddNote("client recovery: %d retries, %d reconnect handshakes, %d duplicate and %d corrupt responses discarded",
		retries, reconnects, dups, corrupt)
	t.AddNote("server: %d requests rejected by integrity checks", srv.Rejected())
	if inj := cl.Faults(); inj != nil {
		t.AddNote("injected: %d drops, %d corruptions, %d crashes, %d restarts",
			inj.Drops(), inj.Corrupts(), inj.Crashes(), inj.Restarts())
	}
	return t
}

// ChaosScenario is the packaged chaos run: 5%% packet loss throughout,
// with the server crashing at 10 ms and restarting at 20 ms of a 40 ms
// window. The table shows availability collapse during the outage and
// recovery after the restart handshakes complete.
func ChaosScenario(spec cluster.Spec) *Table {
	sched, err := fault.ParseSchedule(`
		loss  from=0 until=40ms rate=0.05
		crash node=0 at=10ms restart=20ms
	`)
	if err != nil {
		panic(err)
	}
	return Chaos(spec, sched, 1)
}
