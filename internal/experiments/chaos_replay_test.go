package experiments

import (
	"sync"
	"testing"

	"herdkv/internal/cluster"
)

// chaosReplay keeps the first TestChaosReplayStable output for the
// lifetime of the test process. `go test -count=2` re-enters the test
// in the same process, so the second entry compares a complete fresh
// execution against the first one's bytes — catching leaked global
// state (an ambient rand, a shared cache, init-order dependence) that
// a within-run double execution can never see. CI runs this under
// -race -count=2 (see .github/workflows/ci.yml and docs/ROBUSTNESS.md).
var chaosReplay struct {
	sync.Mutex
	first string
}

func TestChaosReplayStable(t *testing.T) {
	out := Chaos(cluster.Apt(), testChaosSchedule(t), 7).String()
	chaosReplay.Lock()
	defer chaosReplay.Unlock()
	if chaosReplay.first == "" {
		chaosReplay.first = out
		return
	}
	if out != chaosReplay.first {
		t.Fatalf("chaos run diverged from the first in-process run (leaked global state?):\n--- first ---\n%s--- this run ---\n%s",
			chaosReplay.first, out)
	}
}
