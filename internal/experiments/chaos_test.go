package experiments

import (
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/fault"
)

// testChaosSchedule is a compressed version of the packaged scenario:
// background loss with a crash-restart window in the middle.
func testChaosSchedule(t *testing.T) *fault.Schedule {
	t.Helper()
	sched, err := fault.ParseSchedule(`
		loss  from=0 until=8ms rate=0.05
		crash node=0 at=2ms restart=4ms
	`)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestChaosRunIsDeterministicAndDrains(t *testing.T) {
	run := func() string {
		return Chaos(cluster.Apt(), testChaosSchedule(t), 3).String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different chaos tables:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "0 hung (must be 0)") {
		t.Fatalf("chaos run left hung ops:\n%s", a)
	}
	if !strings.Contains(a, "1 crashes, 1 restarts") {
		t.Fatalf("crash/restart not injected:\n%s", a)
	}
	if !strings.Contains(a, "reconnect handshakes") || strings.Contains(a, "0 reconnect handshakes") {
		t.Fatalf("no client reconnected across the restart:\n%s", a)
	}
}

func TestChaosSeedChangesRun(t *testing.T) {
	a := Chaos(cluster.Apt(), testChaosSchedule(t), 3).String()
	b := Chaos(cluster.Apt(), testChaosSchedule(t), 4).String()
	if a == b {
		t.Fatal("different seeds produced identical chaos tables")
	}
}
