package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
	"herdkv/internal/wire"
	"herdkv/internal/workload"
)

// Classical compares HERD against the same MICA cache served over
// classical Ethernet with a kernel network stack — the contrast that
// motivates the whole paper (Section 2.2.1: "typical end-to-end (1/2
// RTT) latency in InfiniBand/RoCE is 1 us while that in modern classical
// Ethernet-based solutions is 10 us"). The kernel-stack model charges
// per-message syscall/interrupt CPU at both ends and carries packets on
// a 10 GbE fabric; the RDMA columns are the standard HERD deployment.
func Classical(spec cluster.Spec) *Table {
	t := &Table{
		ID:    "classical",
		Title: fmt.Sprintf("RDMA (%s) vs classical Ethernet kernel stack, 48 B items", spec.Name),
		Columns: []string{
			"metric", "HERD/RDMA", "kernel 10GbE",
		},
	}
	rd := runE2E(defaultE2E(spec, SysHERD))
	rdIdle := idleHERDLatency(spec)
	kt, kIdle := classicalKV(16)

	t.AddRow("idle GET latency (us)", cell(rdIdle.Microseconds()), cell(kIdle.Microseconds()))
	t.AddRow("throughput, 16 cores (Mops)", cell(rd.Mops), cell(kt))
	t.AddRow("loaded mean latency (us)", cell(rd.Mean.Microseconds()), "-")
	t.AddNote("kernel stack: ~1.5 us send syscall, ~2 us receive (interrupt+copy+wakeup) per message, both ends")
	t.AddNote("user-level stacks (DPDK/MICA) recover the throughput gap but not the latency gap (Section 6)")
	return t
}

// idleHERDLatency measures a single unloaded HERD GET.
func idleHERDLatency(spec cluster.Spec) sim.Time {
	cfg := defaultE2E(spec, SysHERD)
	cfg.clients = 1
	cl, clients, _ := buildSystem(cfg)
	var lat sim.Time
	mustPost(clients[0].Get(kv.FromUint64(1), func(r kv.Result) { lat = r.Latency }))
	cl.Eng.Run()
	return lat
}

// Kernel network stack costs (per message, per host): the send-side
// syscall + driver path, and the receive-side interrupt, copy and
// wakeup. These are the 2010s-era Linux numbers behind the paper's
// "10 us" figure.
const (
	kernelTx = 1500 * sim.Nanosecond
	kernelRx = 2000 * sim.Nanosecond
)

// classicalKV runs the MICA cache behind a kernel-stack request/reply
// server on a 10 GbE fabric and returns saturated throughput (Mops) and
// idle GET latency.
func classicalKV(serverCores int) (float64, sim.Time) {
	eng := sim.New()
	// 10 GbE with a switch; framing ~ Ethernet+IP+UDP = 46 B.
	net := wire.NewNetwork(eng, wire.Params{
		Gbps: 10, PropDelay: sim.NS(600),
		HdrRC: 46, HdrUC: 46, HdrUD: 46, MTU: 1500,
	}, 1)
	nClients := 32
	for n := 0; n <= nClients; n++ {
		net.AddNode(wire.NodeID(n))
	}

	// Server: cores process requests (kernel rx + KV + kernel tx).
	cores := make([]*sim.Server, serverCores)
	for i := range cores {
		cores[i] = sim.NewServer(eng, 1)
	}
	cache := mica.New(mica.Config{IndexBuckets: 1 << 12, BucketSlots: 8, LogBytes: 1 << 22})
	keys := uint64(4096)
	for k := uint64(0); k < keys; k++ {
		key := kv.FromUint64(k)
		if err := cache.Put(key, workload.ExpectedValue(key, 32)); err != nil {
			panic(err)
		}
	}

	var served uint64
	nextCore := 0
	// serve runs the whole server-side path for one request and replies.
	serve := func(client wire.NodeID, isGet bool, key kv.Key, reply func()) {
		core := cores[nextCore%serverCores]
		nextCore++
		kvWork := 2 * 90 * sim.Nanosecond // unmasked DRAM lookups
		core.Submit(kernelRx+kvWork+kernelTx, func(sim.Time) {
			if isGet {
				cache.Get(key)
			} else {
				cache.Put(key, workload.ExpectedValue(key, 32))
			}
			served++
			net.Send(0, client, wire.UD, 37, func(sim.Time) { reply() })
		})
	}

	// Idle latency probe: one GET with client-side kernel costs.
	var idle sim.Time
	{
		probeDone := false
		start := eng.Now()
		eng.After(kernelTx, func() { // client send syscall
			net.Send(1, 0, wire.UD, 16, func(sim.Time) {
				serve(1, true, kv.FromUint64(1), func() {
					eng.After(kernelRx, func() { // client receive path
						idle = eng.Now() - start
						probeDone = true
					})
				})
			})
		})
		eng.Run()
		if !probeDone {
			panic("classical probe did not complete")
		}
	}

	// Saturation: closed-loop clients (client CPU not modeled as a
	// bottleneck — one process per machine, windows of 8).
	for c := 1; c <= nClients; c++ {
		c := c
		gen := workload.NewGenerator(workload.ReadIntensive(keys, 32, int64(c)))
		pump(8, func(done func()) {
			op := gen.Next()
			eng.After(kernelTx, func() {
				net.Send(wire.NodeID(c), 0, wire.UD, 16, func(sim.Time) {
					serve(wire.NodeID(c), op.IsGet, op.Key, func() {
						eng.After(kernelRx, done)
					})
				})
			})
		})
	}
	eng.RunUntil(Warmup)
	start := served
	eng.RunUntil(Warmup + Span)
	return stats.Throughput(served-start, Span), idle
}
