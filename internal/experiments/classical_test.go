package experiments

import (
	"testing"

	"herdkv/internal/cluster"
)

func TestClassicalShape(t *testing.T) {
	defer short(t)()
	tbl := Classical(cluster.Apt())
	lat := row(t, tbl, "idle GET latency (us)")
	rdmaLat, kernelLat := fval(t, lat[1]), fval(t, lat[2])
	// Section 2.2.1: ~1 us vs ~10 us half-RTT; as full request-reply
	// latencies the kernel stack should be several times slower and land
	// near 8-12 us.
	if kernelLat < 2*rdmaLat {
		t.Errorf("kernel latency (%.1f us) should be >=2x RDMA (%.1f us)", kernelLat, rdmaLat)
	}
	if kernelLat < 6 || kernelLat > 14 {
		t.Errorf("kernel GET latency = %.1f us, want ~8-12", kernelLat)
	}
	tput := row(t, tbl, "throughput, 16 cores (Mops)")
	rdmaT, kernelT := fval(t, tput[1]), fval(t, tput[2])
	if rdmaT < 4*kernelT {
		t.Errorf("RDMA throughput (%.1f) should be >=4x the kernel stack (%.1f)", rdmaT, kernelT)
	}
	// The kernel stack still does a few Mops with 16 cores (the [14]
	// memcached-over-IPoIB ballpark).
	if kernelT < 1 || kernelT > 8 {
		t.Errorf("kernel throughput = %.1f Mops, want ~2-6", kernelT)
	}
}
