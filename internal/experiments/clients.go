package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/mux"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
)

// ClientsPoint is one client-count level of the connection-scalability
// sweep (Figure 12).
type ClientsPoint struct {
	// Clients is the number of logical closed-loop clients offered.
	Clients int `json:"clients"`
	// ServerQPs is how many connected QPs the server holds for them —
	// equal to Clients without muxing, hosts x pool size with it. This
	// is the quantity the RNIC's context cache is sized against.
	ServerQPs int `json:"server_qps"`
	// GoodputMops counts served operations during the measurement span.
	GoodputMops float64 `json:"goodput_mops"`
	// P99US is the 99th-percentile served-operation latency in
	// microseconds (queue-inclusive, so it grows with client count in a
	// closed loop even at flat throughput).
	P99US float64 `json:"p99_us"`
	// RecvCtxHitRate is the server NIC's receive-context-cache hit rate
	// over the run — the cliff's direct mechanism (nic.ctxcache.recv.*).
	RecvCtxHitRate float64 `json:"recv_ctx_hit_rate"`
	// RecvCtxEvicts counts receive-context evictions at the server NIC
	// (nic.ctxcache.recv.evicts): nonzero means the working set of
	// connected QPs no longer fits on chip.
	RecvCtxEvicts uint64 `json:"recv_ctx_evicts"`
}

// ClientsResult is the machine-readable output of the client-scaling
// sweep (written as BENCH_clients.json by `make bench`).
type ClientsResult struct {
	Cluster string         `json:"cluster"`
	NoMux   []ClientsPoint `json:"no_mux"`
	Mux     []ClientsPoint `json:"mux"`
}

// Client-count sweep: from comfortably inside the ConnectX-3 receive
// context cache (RecvCtxCap = 280) to 10k clients, far past it.
var clientsSweep = []int{100, 260, 500, 1000, 2000, 5000, 10000}

const (
	// clientsHosts is the number of client machines both arms use; only
	// how the logical clients reach the server differs.
	clientsHosts = 32
	// clientsMuxQPs is each endpoint's pool size in the muxed arm:
	// 32 hosts x 4 QPs = 128 connected QPs at the server, inside the
	// 280-entry receive context cache at every sweep point.
	clientsMuxQPs    = 4
	clientsKeys      = 4096
	clientsValueSize = 32
)

// clientsConfig builds the per-run HERD config: W=1 per connected
// client (the region for 10k direct clients is already 40 MB) and four
// server processes, so the CPU ceiling sits well above the
// context-thrashed NIC ceiling and the cliff is visible in goodput.
func clientsConfig(maxClients int) core.Config {
	cfg := core.DefaultConfig()
	cfg.NS = 4
	cfg.MaxClients = maxClients
	cfg.Window = 1
	cfg.Mica = mica.Config{IndexBuckets: clientsKeys / 2, BucketSlots: 8, LogBytes: clientsKeys * 64}
	return cfg
}

// clientsShare splits n logical clients across the client hosts.
func clientsShare(n, host int) int {
	s := n / clientsHosts
	if host < n%clientsHosts {
		s++
	}
	return s
}

// clientsPoint measures one (clients, muxed) combination on a fresh
// cluster: `clients` closed-loop GET chains, reaching the server either
// as one connected QP set each (muxed=false) or as channels over a
// 4-QP endpoint per host (muxed=true).
func clientsPoint(spec cluster.Spec, clients int, muxed bool) ClientsPoint {
	maxClients := clients
	if muxed {
		maxClients = clientsHosts * clientsMuxQPs
	}
	cl := cluster.New(spec, 1+clientsHosts, 1)
	srv, err := core.NewServer(cl.Machine(0), clientsConfig(maxClients))
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < clientsKeys; k++ {
		key := kv.FromUint64(k)
		v := make([]byte, clientsValueSize)
		copy(v, key[:])
		if err := srv.Preload(key, v); err != nil {
			panic(err)
		}
	}

	var kvs []kv.KV
	serverQPs := 0
	for h := 0; h < clientsHosts; h++ {
		n := clientsShare(clients, h)
		if n == 0 {
			continue
		}
		if muxed {
			ep, err := mux.Connect(srv, cl.Machine(1+h), mux.Config{QPs: clientsMuxQPs})
			if err != nil {
				panic(err)
			}
			serverQPs += ep.PoolSize()
			for j := 0; j < n; j++ {
				ch, err := ep.OpenChannel()
				if err != nil {
					panic(err)
				}
				kvs = append(kvs, ch)
			}
		} else {
			for j := 0; j < n; j++ {
				c, err := srv.ConnectClient(cl.Machine(1 + h))
				if err != nil {
					panic(err)
				}
				kvs = append(kvs, c)
				serverQPs++
			}
		}
	}

	var served uint64
	lat := stats.NewLatencyRecorder(0)
	measuring := false
	stopped := false
	for i, c := range kvs {
		c := c
		seq := uint64(i) * 977
		issue := func(done func()) {
			if stopped {
				return
			}
			seq++
			key := kv.FromUint64(seq % clientsKeys)
			mustPost(c.Get(key, func(r kv.Result) {
				if r.Err == nil && measuring {
					served++
					lat.Record(r.Latency)
				}
				done()
			}))
		}
		// Spread chain starts across the warmup window so 10k clients
		// do not ring one synchronized doorbell at t=0.
		off := Warmup * sim.Time(i) / sim.Time(len(kvs))
		cl.Eng.At(off, func() { pump(1, issue) })
	}
	cl.Eng.RunFor(Warmup)
	measuring = true
	cl.Eng.RunFor(Span)
	measuring = false
	stopped = true

	srvNIC := cl.Machine(0).Verbs.NIC()
	return ClientsPoint{
		Clients:        clients,
		ServerQPs:      serverQPs,
		GoodputMops:    stats.Throughput(served, Span),
		P99US:          float64(lat.Percentile(99)) / float64(sim.Microsecond),
		RecvCtxHitRate: srvNIC.RecvCtxHitRate(),
		RecvCtxEvicts:  srvNIC.RecvCtxCache().Evictions(),
	}
}

// Clients runs the connection-scalability sweep with and without the
// endpoint tier. Directly connected clients reproduce Figure 12: once
// the count passes the NIC's receive-context-cache capacity, every
// inbound request WRITE misses the QP context cache, the fetch stalls
// the NIC's processing units, and throughput falls off a cliff. Muxed
// clients ride 4-QP endpoints (internal/mux), pinning the server's
// connected-QP count at 128 regardless of client count, so the context
// working set always fits and throughput stays flat
// (docs/SCALABILITY.md).
func Clients(spec cluster.Spec) (*Table, ClientsResult) {
	res := ClientsResult{Cluster: spec.Name}
	for _, n := range clientsSweep {
		res.NoMux = append(res.NoMux, clientsPoint(spec, n, false))
		res.Mux = append(res.Mux, clientsPoint(spec, n, true))
	}

	t := &Table{
		ID:    "clients",
		Title: fmt.Sprintf("Client scaling, closed-loop GETs — %s", spec.Name),
		Columns: []string{"clients", "direct QPs", "direct Mops", "direct ctx hit",
			"mux QPs", "mux Mops", "mux ctx hit"},
	}
	for i, d := range res.NoMux {
		m := res.Mux[i]
		t.AddRow(fmt.Sprintf("%d", d.Clients),
			fmt.Sprintf("%d", d.ServerQPs), cell(d.GoodputMops), fmt.Sprintf("%.3f", d.RecvCtxHitRate),
			fmt.Sprintf("%d", m.ServerQPs), cell(m.GoodputMops), fmt.Sprintf("%.3f", m.RecvCtxHitRate))
	}
	t.AddNote("direct: one connected UC QP per client (Figure 12); mux: %d endpoints x %d QPs, channels multiplexed (internal/mux); recv ctx cache %d entries",
		clientsHosts, clientsMuxQPs, spec.NIC.RecvCtxCap)
	return t, res
}

// WriteJSON writes the sweep result as indented JSON.
func (r ClientsResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
