package experiments

import (
	"reflect"
	"strings"
	"testing"

	"herdkv/internal/cluster"
)

// TestClientsSweepGate is the acceptance gate for the endpoint tier:
// the direct-connection arm must reproduce Figure 12's cliff (>= 30%
// goodput decline from its peak by the deepest sweep point), and the
// muxed arm must hold >= 95% of its peak at every client count.
func TestClientsSweepGate(t *testing.T) {
	shrinkWindows(t)

	tbl, res := Clients(cluster.Apt())
	if tbl.String() == "" {
		t.Fatal("empty clients table")
	}
	if len(res.NoMux) != len(clientsSweep) || len(res.Mux) != len(clientsSweep) {
		t.Fatalf("sweep has %d/%d points, want %d", len(res.NoMux), len(res.Mux), len(clientsSweep))
	}

	peak := func(pts []ClientsPoint) float64 {
		best := 0.0
		for _, p := range pts {
			if p.GoodputMops > best {
				best = p.GoodputMops
			}
		}
		return best
	}
	directPeak, muxPeak := peak(res.NoMux), peak(res.Mux)
	if directPeak <= 0 || muxPeak <= 0 {
		t.Fatalf("zero peak goodput: direct %.2f mux %.2f", directPeak, muxPeak)
	}

	// The cliff: the direct arm declines at least 30% from peak by 10k
	// clients (the model's decline is far steeper — the receive context
	// cache holds 280 entries against 10k connected QPs).
	deep := res.NoMux[len(res.NoMux)-1]
	if deep.GoodputMops > 0.7*directPeak {
		t.Errorf("no cliff: direct goodput %.2f Mops at %d clients vs %.2f peak (want >= 30%% decline)",
			deep.GoodputMops, deep.Clients, directPeak)
	}
	if deep.RecvCtxEvicts == 0 {
		t.Error("direct arm at 10k clients saw no recv-context evictions — cache never thrashed")
	}
	if deep.ServerQPs != deep.Clients {
		t.Errorf("direct arm holds %d server QPs for %d clients", deep.ServerQPs, deep.Clients)
	}

	for i, m := range res.Mux {
		// The engineered fix: muxed goodput stays within 5% of its peak
		// at every sweep point, because the server-side QP count is
		// pinned inside the context cache.
		if m.GoodputMops < 0.95*muxPeak {
			t.Errorf("muxed goodput %.2f Mops at %d clients < 95%% of %.2f peak",
				m.GoodputMops, m.Clients, muxPeak)
		}
		if want := clientsHosts * clientsMuxQPs; m.ServerQPs != want {
			t.Errorf("muxed arm holds %d server QPs at %d clients, want %d",
				m.ServerQPs, m.Clients, want)
		}
		if m.RecvCtxHitRate < 0.9 {
			t.Errorf("muxed recv ctx hit rate %.3f at %d clients < 0.9 — pool does not fit on chip",
				m.RecvCtxHitRate, m.Clients)
		}
		// Direct-arm hit rate must collapse past cache capacity.
		if d := res.NoMux[i]; d.Clients > 2*cluster.Apt().NIC.RecvCtxCap && d.RecvCtxHitRate > 0.5 {
			t.Errorf("direct recv ctx hit rate %.3f at %d clients — no thrash past capacity",
				d.RecvCtxHitRate, d.Clients)
		}
	}

	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"clients"`, `"server_qps"`, `"goodput_mops"`,
		`"recv_ctx_hit_rate"`, `"recv_ctx_evicts"`, `"no_mux"`, `"mux"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
}

// TestClientsSweepDeterminism replays one past-capacity point in both
// arms: identical spec and load must reproduce byte-identical
// measurements.
func TestClientsSweepDeterminism(t *testing.T) {
	shrinkWindows(t)
	for _, muxed := range []bool{false, true} {
		a := clientsPoint(cluster.Apt(), 1000, muxed)
		b := clientsPoint(cluster.Apt(), 1000, muxed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("muxed=%v replay diverged:\n%+v\n%+v", muxed, a, b)
		}
	}
}
