package experiments

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fault"
	"herdkv/internal/fleet"
	"herdkv/internal/histcheck"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
)

// Consistency is the nemesis-driven consistency experiment behind
// BENCH_consistency: the same fleet and workload run twice under one
// generated chaos schedule — once with the legacy first-ack write path
// (a straggler replica that misses a write diverges forever) and once
// with versioned writes plus read repair and anti-entropy. Every client
// operation is recorded with histcheck and the history is checked for
// per-key linearizability after the drain.
//
// The schedule is not hand-written: a nemesis seed search runs the
// legacy arm under generated schedules until the checker finds a stale
// read, then fault.Minimize shrinks the failing schedule to its
// essential events. The repaired arm replays the same failing schedule
// and must certify linearizable with all replica sets converged.
//
// Both arms run DurabilitySync so a crashed shard restarts warm: the
// divergence under test comes from the network (first-ack swallowing a
// blacked-out straggler), not from crash data loss.
//
// Everything is virtual-time deterministic: the same (spec, seed) pair
// produces a byte-identical table and JSON under -count=2 -race.

// ConsistencyArm is one run's measurements.
type ConsistencyArm struct {
	// Mode is the write path for this arm: "first-ack" or
	// "versioned-repair".
	Mode string
	// Issued/Ok/Failed are fleet-level op outcomes. Failed ops are kept
	// in the history as indeterminate (a failed write may have landed).
	Issued uint64
	Ok     uint64
	Failed uint64
	// GoodputMops is served throughput over the whole drained run.
	GoodputMops float64 `json:"goodput_mops"`
	// HistOps/HistKeys are the checked history's size after dropping
	// failed reads.
	HistOps  int
	HistKeys int
	// Violations counts keys whose sub-history admits no linearization;
	// Linearizable is Violations == 0.
	Violations   int
	Linearizable bool
	// PartialWrites counts writes acked with a failed straggler.
	PartialWrites uint64
	// StaleReplicas counts replicas a versioned read round caught
	// behind the winner; RepairsApplied counts repair write-backs that
	// landed (both zero for the first-ack arm).
	StaleReplicas  uint64
	RepairsApplied uint64
	// AEAudited/AERepaired count keys the anti-entropy sweep visited
	// and back-filled (zero for the first-ack arm: no repair machinery).
	AEAudited  uint64
	AERepaired uint64
	// DivergentBefore/DivergentAfter count workload keys whose replicas
	// disagree after the drain, before and after a final anti-entropy
	// sweep. The sweep is a no-op on the first-ack arm — divergence is
	// permanent there.
	DivergentBefore int
	DivergentAfter  int
}

// ConsistencyResult is the exported BENCH_consistency.json payload.
type ConsistencyResult struct {
	Cluster string
	// Schedule is the failing nemesis line the reported arms ran under.
	Schedule string
	// Seed is the experiment seed; NemesisSeed is the generation seed
	// the search landed on (>= Seed), SeedsTried how many it consumed.
	Seed        int64
	NemesisSeed int64
	SeedsTried  int
	// ScheduleEvents/MinimizedEvents size the failing schedule before
	// and after fault.Minimize.
	ScheduleEvents  int
	MinimizedEvents int
	Off             ConsistencyArm
	On              ConsistencyArm
}

// WriteJSON writes the result as indented JSON.
func (r ConsistencyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Consistency experiment sizing. Keys × ops stay well under the
// histcheck per-key cap: consistencyClients*consistencyOps ops spread
// round-robin over consistencyKeys keys.
const (
	consistencyShards  = 3
	consistencyClients = 3
	consistencyKeys    = 8
	consistencyOps     = 48 // per client; divisible by consistencyKeys
	consistencyGap     = 20 * sim.Microsecond
)

// consistencyNemesis parameterizes one generated schedule: the shard
// machines are crashable, the client machines join the link-fault peer
// range so a generated blackout can sever one client from one replica —
// the divergence-seeding fault first-ack cannot see.
func consistencyNemesis(seed int64) fault.NemesisConfig {
	return fault.NemesisConfig{
		Seed:       seed,
		Until:      1200 * sim.Microsecond,
		Nodes:      consistencyShards,
		Peers:      consistencyShards + consistencyClients,
		Crashes:    1,
		Blackouts:  2,
		Partitions: 1,
		MinDown:    150 * sim.Microsecond,
		MaxDown:    400 * sim.Microsecond,
	}
}

// nemesisLine renders the config as its re-parseable script line.
func nemesisLine(cfg fault.NemesisConfig) string {
	us := func(t sim.Time) string { return fmt.Sprintf("%gus", t.Microseconds()) }
	return fmt.Sprintf(
		"nemesis seed=%d until=%s nodes=%d peers=%d crashes=%d blackouts=%d partitions=%d mindown=%s maxdown=%s",
		cfg.Seed, us(cfg.Until), cfg.Nodes, cfg.Peers,
		cfg.Crashes, cfg.Blackouts, cfg.Partitions, us(cfg.MinDown), us(cfg.MaxDown))
}

// consistencyArm runs one arm under the given schedule and checks the
// recorded history.
func consistencyArm(spec cluster.Spec, seed int64, sched *fault.Schedule, repair bool) ConsistencyArm {
	spec.Faults = sched
	cl := cluster.New(spec, consistencyShards+consistencyClients, seed)

	fcfg := fleet.DefaultConfig()
	fcfg.Herd = core.DefaultConfig()
	fcfg.Herd.NS = 2
	fcfg.Herd.MaxClients = consistencyClients
	fcfg.Herd.RetryTimeout = chaosRetryTimeout
	fcfg.Herd.Durability = core.DurabilitySync
	fcfg.Herd.Mica = mica.Config{IndexBuckets: 1 << 8, BucketSlots: 8, LogBytes: 1 << 20}
	fcfg.MigrationBatch = 32
	fcfg.MigrationInterval = 4 * sim.Microsecond
	fcfg.ReadRepair = repair // implies Versioned

	servers := make([]*cluster.Machine, consistencyShards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	d, err := fleet.NewDeployment(servers, fcfg)
	if err != nil {
		panic(err)
	}
	if inj := cl.Faults(); inj != nil {
		d.RegisterCrashTargets(inj)
		inj.Arm()
	}

	arm := ConsistencyArm{Mode: "first-ack"}
	if repair {
		arm.Mode = "versioned-repair"
	}
	rec := &histcheck.Recorder{}
	var nextValue uint64

	clients := make([]*fleet.Client, consistencyClients)
	for i := range clients {
		c, err := d.ConnectClient(cl.Machine(consistencyShards + i))
		if err != nil {
			panic(err)
		}
		clients[i] = c
	}
	for i, c := range clients {
		i, c := i, c
		rnd := sim.NewRand(seed + int64(i)*7919)
		issued := 0
		var issue func()
		issue = func() {
			if issued >= consistencyOps {
				return
			}
			// Round-robin key choice: every key collects exactly
			// clients*ops/keys operations, comfortably under the
			// histcheck 64-op cap even counting failed writes.
			key := kv.FromUint64(1 + uint64(i*consistencyOps+issued)%consistencyKeys)
			issued++
			arm.Issued++
			next := func() { cl.Eng.After(consistencyGap, issue) }
			if rnd.Intn(2) == 0 {
				id := rec.BeginRead(key, cl.Eng.Now())
				c.Get(key, func(r kv.Result) {
					if r.Err != nil {
						rec.Fail(id)
					} else {
						arm.Ok++
						var v uint64
						if r.Status == kv.StatusHit && len(r.Value) >= 8 {
							v = binary.LittleEndian.Uint64(r.Value)
						}
						rec.EndRead(id, v, cl.Eng.Now())
					}
					next()
				})
			} else {
				nextValue++
				v := nextValue
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, v)
				id := rec.BeginWrite(key, v, cl.Eng.Now())
				c.Put(key, buf, func(r kv.Result) {
					if r.Err != nil {
						rec.Fail(id)
					} else {
						arm.Ok++
						rec.EndWrite(id, cl.Eng.Now())
					}
					next()
				})
			}
		}
		cl.Eng.At(sim.Time(i)*sim.Microsecond, issue)
	}

	cl.Eng.Run() // closed loop drains itself: fixed op budget per client

	for _, c := range clients {
		arm.Failed += c.Failed()
		arm.PartialWrites += c.PartialWrites()
		arm.StaleReplicas += c.StaleObserved()
		arm.RepairsApplied += c.RepairsApplied()
	}

	chk, err := histcheck.Check(rec, nil)
	if err != nil {
		panic(err) // harness sizing bug: a key exceeded the op cap
	}
	arm.HistOps = chk.Ops
	arm.HistKeys = chk.Keys
	arm.Violations = len(chk.Violations)
	arm.Linearizable = chk.Ok

	// Replica convergence audit: a key is divergent when two replicas
	// disagree on its stored bytes (value or presence). The repaired arm
	// must converge after one full anti-entropy sweep; the first-ack arm
	// has no repair machinery, so its divergence is permanent.
	divergent := func() int {
		n := 0
		for k := uint64(1); k <= consistencyKeys; k++ {
			key := kv.FromUint64(k)
			part := mica.Partition(key, fcfg.Herd.NS)
			var ref []byte
			refOK, first, div := false, true, false
			for _, id := range d.Replicas(key) {
				v, ok := d.Server(id).Partition(part).Get(key)
				if first {
					ref, refOK, first = v, ok, false
					continue
				}
				if ok != refOK || !bytes.Equal(v, ref) {
					div = true
				}
			}
			if div {
				n++
			}
		}
		return n
	}
	arm.DivergentBefore = divergent()
	d.AntiEntropySweep()
	cl.Eng.Run()
	arm.DivergentAfter = divergent()
	arm.AEAudited, arm.AERepaired = d.AntiEntropyStats()
	arm.GoodputMops = stats.Throughput(arm.Ok, cl.Eng.Now())
	return arm
}

// Consistency searches nemesis seeds for a schedule under which the
// first-ack arm serves a provably stale read, minimizes it, replays
// both arms under the failing schedule, and renders the comparison.
func Consistency(spec cluster.Spec, seed int64) (*Table, ConsistencyResult) {
	const maxSeeds = 24
	res := ConsistencyResult{Cluster: spec.Name, Seed: seed}

	var failing *fault.Schedule
	var cfg fault.NemesisConfig
	for k := 0; k < maxSeeds; k++ {
		cfg = consistencyNemesis(seed + int64(k))
		s := cfg.Generate()
		res.SeedsTried = k + 1
		res.NemesisSeed = cfg.Seed
		if consistencyArm(spec, seed, s, false).Violations > 0 {
			failing = s
			break
		}
	}
	if failing == nil {
		// No generated schedule broke first-ack within the search
		// budget: report the last arm pair and let the gate fail loudly.
		failing = cfg.Generate()
	}
	res.Schedule = nemesisLine(cfg)
	res.ScheduleEvents = len(failing.Events)
	res.MinimizedEvents = len(fault.Minimize(failing, func(s *fault.Schedule) bool {
		return consistencyArm(spec, seed, s, false).Violations > 0
	}).Events)
	res.Off = consistencyArm(spec, seed, failing, false)
	res.On = consistencyArm(spec, seed, failing, true)

	t := &Table{
		ID: "consistency",
		Title: fmt.Sprintf(
			"Nemesis consistency: first-ack divergence vs versioned read repair — %s", spec.Name),
		Columns: []string{"mode", "issued", "ok", "failed", "hist_ops", "keys",
			"violations", "partial", "stale", "repairs", "ae_fixed", "div_before", "div_after"},
	}
	for _, a := range []ConsistencyArm{res.Off, res.On} {
		t.AddRow(a.Mode,
			fmt.Sprintf("%d", a.Issued), fmt.Sprintf("%d", a.Ok), fmt.Sprintf("%d", a.Failed),
			fmt.Sprintf("%d", a.HistOps), fmt.Sprintf("%d", a.HistKeys),
			fmt.Sprintf("%d", a.Violations), fmt.Sprintf("%d", a.PartialWrites),
			fmt.Sprintf("%d", a.StaleReplicas), fmt.Sprintf("%d", a.RepairsApplied),
			fmt.Sprintf("%d", a.AERepaired),
			fmt.Sprintf("%d", a.DivergentBefore), fmt.Sprintf("%d", a.DivergentAfter),
		)
	}
	t.AddNote("gate: first-ack arm non-linearizable (violations>0), versioned arm linearizable with replicas converged (div_after=0), byte-identical replay across -count=2")
	t.AddNote("nemesis seed %d found in %d tries; failing schedule %d events, %d after minimization",
		res.NemesisSeed, res.SeedsTried, res.ScheduleEvents, res.MinimizedEvents)
	t.AddNote("schedule: %s", res.Schedule)
	return t, res
}

// ConsistencyScenario is the packaged run used by herdbench and the CI
// gate.
func ConsistencyScenario(spec cluster.Spec) (*Table, ConsistencyResult) {
	return Consistency(spec, 1)
}
