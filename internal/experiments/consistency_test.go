package experiments

import (
	"strings"
	"sync"
	"testing"

	"herdkv/internal/cluster"
)

// TestConsistencyGate is the CI consistency gate: the nemesis search
// must find a schedule under which the first-ack arm serves a provably
// stale read, the minimizer must shrink it, and the versioned+repair
// arm must certify linearizable under the same schedule with every
// replica set converged after the anti-entropy sweep.
func TestConsistencyGate(t *testing.T) {
	tab, res := ConsistencyScenario(cluster.Apt())
	out := tab.String()
	if res.Off.Violations == 0 || res.Off.Linearizable {
		t.Fatalf("nemesis search found no stale read in the first-ack arm (%d seeds tried):\n%s",
			res.SeedsTried, out)
	}
	if res.Off.PartialWrites == 0 {
		t.Fatalf("first-ack arm saw no partial writes — the schedule never split a fan-out:\n%s", out)
	}
	if !res.On.Linearizable || res.On.Violations != 0 {
		t.Fatalf("versioned+repair arm not linearizable (%d violations) under the same schedule:\n%s",
			res.On.Violations, out)
	}
	if res.On.DivergentAfter != 0 {
		t.Fatalf("versioned+repair arm left %d divergent keys after the anti-entropy sweep:\n%s",
			res.On.DivergentAfter, out)
	}
	if res.MinimizedEvents == 0 || res.MinimizedEvents > res.ScheduleEvents {
		t.Fatalf("minimizer produced %d events from %d:\n%s",
			res.MinimizedEvents, res.ScheduleEvents, out)
	}
	for _, a := range []ConsistencyArm{res.Off, res.On} {
		if a.Issued == 0 || a.Ok == 0 {
			t.Fatalf("%s arm issued %d / ok %d — the workload did not run:\n%s", a.Mode, a.Issued, a.Ok, out)
		}
		if a.HistOps == 0 || a.HistKeys == 0 {
			t.Fatalf("%s arm recorded an empty history:\n%s", a.Mode, out)
		}
	}
}

// consistencyReplay keeps the first TestConsistencyDeterminism output
// for the process lifetime; `go test -count=2` re-enters in the same
// process and compares a complete fresh run byte-for-byte — seed
// search, minimization, and both arms must replay identically.
var consistencyReplay struct {
	sync.Mutex
	first string
}

func TestConsistencyDeterminism(t *testing.T) {
	tab, res := ConsistencyScenario(cluster.Apt())
	var sb strings.Builder
	sb.WriteString(tab.String())
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	consistencyReplay.Lock()
	defer consistencyReplay.Unlock()
	if consistencyReplay.first == "" {
		consistencyReplay.first = out
		return
	}
	if out != consistencyReplay.first {
		t.Fatalf("consistency run diverged from the first in-process run (leaked global state?):\n--- first ---\n%s--- this run ---\n%s",
			consistencyReplay.first, out)
	}
}
