package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/workload"
)

// CPUUse reproduces the Section 5.6 analysis: HERD spends server CPU on
// GETs in exchange for one round trip, but the READ-based designs are
// not free either — their clients burn CPU issuing and polling multiple
// READs per GET, and their servers still need polling/RECV cores for
// PUTs. The table reports total busy CPU (server cores plus client-side
// verb handling) per million operations for the read-intensive 48 B
// workload.
func CPUUse(spec cluster.Spec) *Table {
	t := &Table{
		ID:    "cpuuse",
		Title: fmt.Sprintf("Total CPU per million ops (core-ms), 48 B read-intensive — %s", spec.Name),
		Columns: []string{
			"system", "Mops", "server core-ms/Mop", "client core-ms/Mop", "total",
		},
	}
	for _, sys := range AllSystems {
		cfg := defaultE2E(spec, sys)
		r := runCPUUse(cfg)
		t.AddRow(sys, cell(r.mops), cell(r.serverMS), cell(r.clientMS), cell(r.serverMS+r.clientMS))
	}
	t.AddNote("client CPU counts post_send and completion-poll work per verb; server CPU is measured core busy time")
	t.AddNote("provisioning must cover the PUT path even in read-heavy deployments (Section 5.6)")
	return t
}

type cpuUseResult struct {
	mops               float64
	serverMS, clientMS float64
}

// clientVerbWork estimates client CPU per completed operation for each
// system: posts (post_send ~ the paper's 150 ns each) plus completion
// polling. Pilaf GETs issue 2.6 READs and poll each; FaRM-em-VAR issues
// 2; HERD and FaRM-em issue 1.
func clientVerbWork(sys string, p func() (post, poll sim.Time)) func(isGet bool) sim.Time {
	post, poll := p()
	return func(isGet bool) sim.Time {
		switch {
		case sys == SysPilaf && isGet:
			// 1.6 bucket READs + 1 value READ on average.
			return sim.Time(2.6 * float64(post+poll))
		case sys == SysFaRMVar && isGet:
			return 2 * (post + poll)
		default:
			return post + poll
		}
	}
}

func runCPUUse(cfg e2eConfig) cpuUseResult {
	cl, clients, _ := buildSystem(cfg)

	serverCPU := cl.Machine(0).CPU
	perOp := clientVerbWork(cfg.system, func() (sim.Time, sim.Time) {
		p := cfg.spec.Host
		return p.PostSend, p.PollCheck
	})

	var completed uint64
	var clientBusy sim.Time
	// Closed-loop clients over the standard generator.
	stagger := 40 * sim.Microsecond / sim.Time(len(clients)+1)
	for i, c := range clients {
		i, c := i, c
		gen := newGenFor(cfg, i)
		issue := func(done func()) {
			op := gen.Next()
			if op.IsGet {
				mustPost(c.Get(op.Key, func(kv.Result) {
					completed++
					clientBusy += perOp(true)
					done()
				}))
			} else {
				mustPost(c.Put(op.Key, valFor(cfg, op), func(kv.Result) {
					completed++
					clientBusy += perOp(false)
					done()
				}))
			}
		}
		cl.Eng.At(sim.Time(i)*stagger, func() { pump(cfg.window, issue) })
	}

	cl.Eng.RunFor(Warmup)
	startOps := completed
	startBusy := serverBusy(serverCPU, cfg.cores)
	startClient := clientBusy
	cl.Eng.RunFor(Span)

	ops := completed - startOps
	if ops == 0 {
		return cpuUseResult{}
	}
	srvBusy := serverBusy(serverCPU, cfg.cores) - startBusy
	cliBusy := clientBusy - startClient
	perMop := func(busy sim.Time) float64 {
		// core-ms per million ops.
		return busy.Seconds() * 1000 / (float64(ops) / 1e6)
	}
	return cpuUseResult{
		mops:     float64(ops) / Span.Seconds() / 1e6,
		serverMS: perMop(srvBusy),
		clientMS: perMop(cliBusy),
	}
}

func serverBusy(cpu interface{ Core(int) *sim.Server }, cores int) sim.Time {
	var total sim.Time
	for i := 0; i < cores; i++ {
		total += cpu.Core(i).BusyTime()
	}
	return total
}

// newGenFor builds client i's workload generator under cfg.
func newGenFor(cfg e2eConfig, i int) *workload.Generator {
	return workload.NewGenerator(workload.Config{
		GetFraction: cfg.getFraction,
		Keys:        cfg.keys,
		ZipfTheta:   ternary(cfg.zipf, 0.99, 0),
		ValueSize:   cfg.valueSize,
		Seed:        cfg.seed + int64(i)*1000,
	})
}

// valFor returns the deterministic value written for op's key.
func valFor(cfg e2eConfig, op workload.Op) []byte {
	return workload.ExpectedValue(op.Key, cfg.valueSize)
}
