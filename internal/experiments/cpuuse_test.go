package experiments

import (
	"testing"

	"herdkv/internal/cluster"
)

func TestCPUUseShape(t *testing.T) {
	defer short(t)()
	tbl := CPUUse(cluster.Apt())
	type rowv struct{ mops, server, client, total float64 }
	vals := map[string]rowv{}
	for _, r := range tbl.Rows {
		vals[r[0]] = rowv{fval(t, r[1]), fval(t, r[2]), fval(t, r[3]), fval(t, r[4])}
	}
	herd, pilaf, farmVar := vals[SysHERD], vals[SysPilaf], vals[SysFaRMVar]

	// HERD's server CPU cost is the design's acknowledged price.
	if herd.server < 5*pilaf.server {
		t.Errorf("HERD server CPU (%.0f) should far exceed the emulated systems' (%.0f)",
			herd.server, pilaf.server)
	}
	// But the READ-based systems burn client CPU on multi-READ GETs,
	// which "reduces the extent of the difference" (Section 5.6): their
	// per-op client cost exceeds HERD's.
	if pilaf.client <= herd.client || farmVar.client <= herd.client {
		t.Errorf("multi-READ clients should cost more CPU/op: pilaf=%.0f farmVar=%.0f herd=%.0f",
			pilaf.client, farmVar.client, herd.client)
	}
	// Totals are comparable — HERD is not the CPU hog the server column
	// alone suggests.
	if herd.total > 1.5*pilaf.total {
		t.Errorf("HERD total CPU (%.0f) should be within 1.5x of Pilaf's (%.0f)",
			herd.total, pilaf.total)
	}
	// And HERD buys far more throughput with it.
	if herd.mops < 2*pilaf.mops {
		t.Errorf("HERD (%.1f Mops) should be >2x Pilaf (%.1f)", herd.mops, pilaf.mops)
	}
}
