package experiments

import (
	"fmt"
	"testing"

	"herdkv/internal/cluster"
)

// TestDeterminism pins the simulator's reproducibility guarantee: the
// same configuration and seed must produce bit-identical experiment
// tables across runs. Every calibration claim in EXPERIMENTS.md rests
// on this.
func TestDeterminism(t *testing.T) {
	defer short(t)()
	runs := make([]string, 2)
	for i := range runs {
		runs[i] = Fig5Echo(cluster.Apt()).String()
	}
	if runs[0] != runs[1] {
		t.Fatalf("Fig5 not deterministic:\n%s\nvs\n%s", runs[0], runs[1])
	}

	e2e := make([]string, 2)
	for i := range e2e {
		e2e[i] = fmt.Sprintf("%+v", runE2E(defaultE2E(cluster.Apt(), SysHERD)))
	}
	if e2e[0] != e2e[1] {
		t.Fatalf("end-to-end run not deterministic:\n%s\nvs\n%s", e2e[0], e2e[1])
	}
}
