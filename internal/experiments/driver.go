package experiments

import (
	"herdkv/internal/cluster"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
)

// Measurement windows. Experiments warm up (filling pipelines and
// caches), then measure over a steady-state span of virtual time.
// Shrinking these trades precision for wall-clock speed (the benchmark
// harness does).
var (
	Warmup = 150 * sim.Microsecond
	Span   = 400 * sim.Microsecond
)

// pump launches a closed-loop driver: `window` chains, each reissuing
// through issue(done) when the previous op completes. The returned stop
// function halts reissue.
func pump(window int, issue func(done func())) (stop func()) {
	stopped := false
	var loop func()
	loop = func() {
		issue(func() {
			if !stopped {
				loop()
			}
		})
	}
	for i := 0; i < window; i++ {
		loop()
	}
	return func() { stopped = true }
}

// measureMops runs the engine through warmup then Span, reading counter
// before and after, and returns millions of ops per second.
func measureMops(cl *cluster.Cluster, counter *uint64) float64 {
	cl.Eng.RunFor(Warmup)
	start := *counter
	cl.Eng.RunFor(Span)
	return stats.Throughput(*counter-start, Span)
}

// meanLatencySerial issues reps sequential operations through op (which
// must invoke done exactly once per issue with the measured latency) and
// returns the mean.
func meanLatencySerial(cl *cluster.Cluster, reps int, op func(done func(sim.Time))) sim.Time {
	var total sim.Time
	n := 0
	var next func()
	next = func() {
		if n >= reps {
			return
		}
		op(func(lat sim.Time) {
			total += lat
			n++
			next()
		})
	}
	next()
	cl.Eng.Run()
	if n == 0 {
		return 0
	}
	return total / sim.Time(n)
}

// mustPost consumes the synchronous error from a verbs post in an
// experiment driver. Experiments run fault-free, so a rejected post is
// a driver bug: fail loudly rather than measure a silently idle run.
func mustPost(err error) {
	if err != nil {
		panic(err)
	}
}
