package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fault"
	"herdkv/internal/fleet"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/workload"
)

// Durability is the crash-recovery experiment behind BENCH_durability:
// the same fleet, workload, and flushcrash schedule run twice — once
// with the write-ahead log off (a crashed shard restarts cold and the
// fleet re-replicates its whole replica set) and once with group-commit
// durability (the shard replays its own snapshot + log tail and pulls
// only the outage delta). The arms are compared on recovery time and
// audited for data loss after the drain.
//
// The schedule uses flushcrash, not crash: the power loss lands
// mid-group-commit, so the durable arm must also prove it truncates
// the torn log tail instead of replaying a damaged record.
//
// Everything is virtual-time deterministic: the same (spec, seed) pair
// produces a byte-identical table and JSON under -count=2 -race.

// DurabilityArm is one run's measurements.
type DurabilityArm struct {
	// Mode is the durability knob for this arm: "off" or "group-commit".
	Mode string
	// Issued/Ok/Failed/Hung are fleet-level op outcomes; Failed and
	// Hung must be zero (R=2 absorbs the outage either way).
	Issued uint64
	Ok     uint64
	Failed uint64
	Hung   uint64
	// LostKeys counts keys no live replica serves with the expected
	// value after the drain — the zero-data-loss gate.
	LostKeys int
	// ShardMissing counts keys the restarted shard should replicate but
	// does not hold after recovery + catch-up.
	ShardMissing int
	// RecoveryUS is the shard's total recovery time in microseconds:
	// log replay outage plus fleet catch-up.
	RecoveryUS float64
	// ReplayUS and CatchupUS split RecoveryUS into the shard's own
	// log-replay outage and the fleet-side delta/full catch-up.
	ReplayUS  float64
	CatchupUS float64
	// Replayed and SnapshotRecords count what the shard's own log
	// replay applied (zero for the cold arm).
	Replayed        int
	SnapshotRecords int
	// TornBytes is how much torn log tail the replay truncated (the
	// flushcrash signature; zero for the cold arm).
	TornBytes int
	// CatchupKeys is how many keys the fleet copied to the rejoined
	// shard: the full replica set cold, the outage delta warm.
	CatchupKeys int
	// WALAppends/WALFlushes/WALSnapshots are the shard's log activity
	// over the run (zero for the cold arm).
	WALAppends   uint64
	WALFlushes   uint64
	WALSnapshots uint64
}

// DurabilityResult is the exported BENCH_durability.json payload.
type DurabilityResult struct {
	Cluster  string
	Schedule string
	Seed     int64
	Cold     DurabilityArm
	Warm     DurabilityArm
}

// WriteJSON writes the result as indented JSON.
func (r DurabilityResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// durabilitySchedule crashes shard 0 mid-group-commit at 2 ms and
// restarts it at 3 ms. Crash-only (no packet loss) for the same reason
// as fleetChaosSchedule: the zero-failures invariant.
func durabilitySchedule() *fault.Schedule {
	sched, err := fault.ParseSchedule(`
		flushcrash node=0 at=2ms restart=3ms
	`)
	if err != nil {
		panic(err)
	}
	return sched
}

// durabilityArm runs one arm: the fleet-chaos deployment with the given
// durability mode under the flushcrash schedule.
func durabilityArm(spec cluster.Spec, seed int64, mode core.Durability) DurabilityArm {
	const (
		nShards    = 4
		nClients   = 6
		perMachine = 3
		keys       = 4096
		valueSize  = 32
		runFor     = 8 * sim.Millisecond
	)
	spec.Faults = durabilitySchedule()
	machines := nShards + (nClients+perMachine-1)/perMachine
	cl := cluster.New(spec, machines, seed)

	fcfg := fleet.DefaultConfig()
	fcfg.Herd = core.DefaultConfig()
	fcfg.Herd.NS = 2
	fcfg.Herd.MaxClients = nClients
	fcfg.Herd.RetryTimeout = chaosRetryTimeout
	fcfg.Herd.Durability = mode
	// A low snapshot threshold so the warm arm exercises snapshot
	// compaction (and snapshot + tail replay) within the 8 ms window.
	fcfg.Herd.WAL.SnapshotEvery = 64 << 10
	// Re-replication pacing: each batch models an RPC round-trip of
	// remote reads, so catch-up throughput is bounded by the network,
	// not by the survivor's memory bandwidth. Both arms share it — warm
	// wins by moving less data over the wire, not by a pacing thumb on
	// the scale.
	fcfg.MigrationBatch = 32
	fcfg.MigrationInterval = 4 * sim.Microsecond
	fcfg.Herd.Mica = mica.Config{
		IndexBuckets: keys / 4,
		BucketSlots:  8,
		// Sized so the circular log never wraps during the run: cache
		// eviction would be indistinguishable from crash data loss in
		// the post-drain audit, and this experiment gates on the latter.
		LogBytes: 2 << 20,
	}
	servers := make([]*cluster.Machine, nShards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	d, err := fleet.NewDeployment(servers, fcfg)
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < keys; k++ {
		key := kv.FromUint64(k)
		if err := d.Preload(key, workload.ExpectedValue(key, valueSize)); err != nil {
			panic(err)
		}
	}
	if inj := cl.Faults(); inj != nil {
		d.RegisterCrashTargets(inj)
		inj.Arm()
	}

	clients := make([]*fleet.Client, nClients)
	for i := range clients {
		c, err := d.ConnectClient(cl.Machine(nShards + i/perMachine))
		if err != nil {
			panic(err)
		}
		clients[i] = c
	}

	arm := DurabilityArm{Mode: "off"}
	if mode != core.DurabilityOff {
		arm.Mode = "group-commit"
	}
	stopped := false
	for i, c := range clients {
		c := c
		gen := workload.NewGenerator(workload.Config{
			GetFraction: 0.50, // heavy writes: the log must keep up under fire
			Keys:        keys,
			ValueSize:   valueSize,
			Seed:        seed + int64(i)*1000,
		})
		issue := func(done func()) {
			if stopped {
				return
			}
			op := gen.Next()
			arm.Issued++
			fin := func(r kv.Result) {
				if r.Err == nil {
					arm.Ok++
				}
				done()
			}
			if op.IsGet {
				c.Get(op.Key, fin)
			} else {
				c.Put(op.Key, workload.ExpectedValue(op.Key, valueSize), fin)
			}
		}
		stagger := sim.Time(i) * sim.Microsecond
		cl.Eng.At(stagger, func() { pump(fcfg.Herd.Window, issue) })
	}

	cl.Eng.RunFor(runFor)
	stopped = true
	cl.Eng.Run() // drain in-flight ops AND the recovery catch-up

	for _, c := range clients {
		arm.Failed += c.Failed()
		arm.Hung += uint64(c.Inflight())
	}

	rec := d.LastRecovery()
	arm.RecoveryUS = rec.Duration.Microseconds()
	arm.ReplayUS = rec.ReplayDuration.Microseconds()
	arm.CatchupUS = rec.CatchupDuration.Microseconds()
	arm.Replayed = rec.Replayed
	arm.SnapshotRecords = rec.SnapshotRecords
	arm.TornBytes = rec.TornBytes
	arm.CatchupKeys = rec.CatchupKeys
	if w := d.Server(0).WAL(); w != nil {
		arm.WALAppends = w.Appends()
		arm.WALFlushes = w.Flushes()
		arm.WALSnapshots = w.Snapshots()
	}

	// Post-drain audit. Every client write used the key's fixed
	// expected value, so data loss is directly checkable: a key is lost
	// when no live replica serves that value, and the restarted shard
	// (shard 0, the flushcrash target) must hold its full replica share
	// again.
	for k := uint64(0); k < keys; k++ {
		key := kv.FromUint64(k)
		want := workload.ExpectedValue(key, valueSize)
		part := mica.Partition(key, fcfg.Herd.NS)
		found, onZero := false, false
		for _, id := range d.Replicas(key) {
			if v, ok := d.Server(id).Partition(part).Get(key); ok && bytes.Equal(v, want) {
				found = true
				if id == 0 {
					onZero = true
				}
			}
		}
		if !found {
			arm.LostKeys++
		}
		for _, id := range d.Replicas(key) {
			if id == 0 && !onZero {
				arm.ShardMissing++
			}
		}
	}
	return arm
}

// Durability runs both arms and renders the comparison.
func Durability(spec cluster.Spec, seed int64) (*Table, DurabilityResult) {
	res := DurabilityResult{
		Cluster:  spec.Name,
		Schedule: "flushcrash node=0 at=2ms restart=3ms",
		Seed:     seed,
		Cold:     durabilityArm(spec, seed, core.DurabilityOff),
		Warm:     durabilityArm(spec, seed, core.DurabilityGroupCommit),
	}

	t := &Table{
		ID:    "durability",
		Title: fmt.Sprintf("Crash recovery: cold re-replication vs WAL warm rejoin — %s", spec.Name),
		Columns: []string{"mode", "recovery_us", "replay_us", "catchup_us",
			"replayed", "snap_recs", "torn_B", "catchup_keys", "lost", "failed"},
	}
	for _, a := range []DurabilityArm{res.Cold, res.Warm} {
		t.AddRow(a.Mode,
			cell(a.RecoveryUS), cell(a.ReplayUS), cell(a.CatchupUS),
			fmt.Sprintf("%d", a.Replayed), fmt.Sprintf("%d", a.SnapshotRecords),
			fmt.Sprintf("%d", a.TornBytes), fmt.Sprintf("%d", a.CatchupKeys),
			fmt.Sprintf("%d", a.LostKeys), fmt.Sprintf("%d", a.Failed),
		)
	}
	t.AddNote("gate: lost=0 both arms, warm recovery strictly faster than cold, torn tail truncated (torn_B>0 warm), replay byte-identical across -count=2")
	t.AddNote("warm shard 0 WAL: %d appends, %d group commits, %d snapshot compactions",
		res.Warm.WALAppends, res.Warm.WALFlushes, res.Warm.WALSnapshots)
	t.AddNote("ops: cold %d issued / %d ok, warm %d issued / %d ok (failed must be 0: R=2 absorbs the outage)",
		res.Cold.Issued, res.Cold.Ok, res.Warm.Issued, res.Warm.Ok)
	return t, res
}

// DurabilityScenario is the packaged run used by herdbench and the CI
// gate.
func DurabilityScenario(spec cluster.Spec) (*Table, DurabilityResult) {
	return Durability(spec, 1)
}
