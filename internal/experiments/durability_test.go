package experiments

import (
	"strings"
	"sync"
	"testing"

	"herdkv/internal/cluster"
)

// TestDurabilityGate is the CI durability gate: zero data loss in both
// arms, a strictly faster warm rejoin, and proof the flushcrash left a
// torn tail that replay truncated.
func TestDurabilityGate(t *testing.T) {
	tab, res := DurabilityScenario(cluster.Apt())
	out := tab.String()
	for _, a := range []DurabilityArm{res.Cold, res.Warm} {
		if a.LostKeys != 0 {
			t.Fatalf("%s arm lost %d keys (must be 0):\n%s", a.Mode, a.LostKeys, out)
		}
		if a.ShardMissing != 0 {
			t.Fatalf("%s arm: %d keys missing from the rejoined shard:\n%s", a.Mode, a.ShardMissing, out)
		}
		if a.Failed != 0 || a.Hung != 0 {
			t.Fatalf("%s arm: %d failed, %d hung (must be 0; R=2 absorbs the outage):\n%s",
				a.Mode, a.Failed, a.Hung, out)
		}
		if a.Issued == 0 || a.Ok == 0 {
			t.Fatalf("%s arm issued %d / ok %d — the workload did not run:\n%s", a.Mode, a.Issued, a.Ok, out)
		}
	}
	if res.Warm.Replayed+res.Warm.SnapshotRecords == 0 {
		t.Fatalf("warm arm replayed nothing — the WAL was not exercised:\n%s", out)
	}
	if res.Warm.TornBytes == 0 {
		t.Fatalf("flushcrash left no torn tail — CrashTorn not reaching the log:\n%s", out)
	}
	if res.Cold.TornBytes != 0 || res.Cold.Replayed != 0 {
		t.Fatalf("cold arm has WAL activity (torn=%d replayed=%d):\n%s",
			res.Cold.TornBytes, res.Cold.Replayed, out)
	}
	if res.Warm.RecoveryUS >= res.Cold.RecoveryUS {
		t.Fatalf("warm rejoin (%v us) not strictly faster than cold re-replication (%v us):\n%s",
			res.Warm.RecoveryUS, res.Cold.RecoveryUS, out)
	}
	if res.Warm.CatchupKeys >= res.Cold.CatchupKeys {
		t.Fatalf("warm delta (%d keys) not smaller than cold full recopy (%d keys):\n%s",
			res.Warm.CatchupKeys, res.Cold.CatchupKeys, out)
	}
	if res.Warm.WALSnapshots == 0 {
		t.Fatalf("warm arm never snapshot-compacted — SnapshotEvery not exercised:\n%s", out)
	}
}

// durabilityReplay keeps the first TestDurabilityReplayStable output for
// the process lifetime; `go test -count=2` re-enters in the same process
// and compares a complete fresh run byte-for-byte (same mechanism as
// TestChaosReplayStable). Covers the table AND the JSON payload.
var durabilityReplay struct {
	sync.Mutex
	first string
}

func TestDurabilityReplayStable(t *testing.T) {
	tab, res := DurabilityScenario(cluster.Apt())
	var sb strings.Builder
	sb.WriteString(tab.String())
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	durabilityReplay.Lock()
	defer durabilityReplay.Unlock()
	if durabilityReplay.first == "" {
		durabilityReplay.first = out
		return
	}
	if out != durabilityReplay.first {
		t.Fatalf("durability run diverged from the first in-process run (leaked global state?):\n--- first ---\n%s--- this run ---\n%s",
			durabilityReplay.first, out)
	}
}
