package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// echoCombo names a request/response verb pairing from Figure 5.
type echoCombo struct {
	name     string
	reqWrite bool // request as WRITE (else SEND)
	rspWrite bool // response as WRITE (else SEND)
}

// echoOpts is one rung of Figure 5's optimization ladder. Options are
// cumulative in the figure: basic -> +unreliable -> +unsignaled ->
// +inlined.
type echoOpts struct {
	name       string
	unreliable bool // UC for WRITEs and SENDs (UD for WR/SEND responses)
	unsignaled bool
	inlined    bool
}

var echoLadder = []echoOpts{
	{name: "basic"},
	{name: "+unreliable", unreliable: true},
	{name: "+unsignaled", unreliable: true, unsignaled: true},
	{name: "+inlined", unreliable: true, unsignaled: true, inlined: true},
}

// Fig5Echo reproduces Figure 5: ECHO throughput for verb combinations
// under the cumulative optimization ladder, 32-byte messages.
func Fig5Echo(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("ECHO throughput (Mops), 32 B messages — %s", spec.Name),
		Columns: []string{"combo", "basic", "+unreliable", "+unsignaled", "+inlined"},
	}
	combos := []echoCombo{
		{"SEND/SEND", false, false},
		{"WR/WR", true, true},
		{"WR/SEND", true, false},
	}
	for _, combo := range combos {
		row := []string{combo.name}
		for _, opts := range echoLadder {
			row = append(row, cell(echoMops(spec, combo, opts, 32)))
		}
		t.AddRow(row...)
	}
	t.AddNote("WR/SEND responses go over UD once unreliable; SEND/SEND uses UC (UD is similar)")
	return t
}

// echoMops measures echoes per second for a combo at one optimization
// level: 16 client processes against one echo server.
func echoMops(spec cluster.Spec, combo echoCombo, opts echoOpts, size int) float64 {
	cl := cluster.New(spec, 1+clientMachines, 1)
	srv := cl.Machine(0)
	serverCores := 8

	reqTr, rspTr := wire.RC, wire.RC
	if opts.unreliable {
		reqTr, rspTr = wire.UC, wire.UC
		if !combo.rspWrite && combo.reqWrite {
			rspTr = wire.UD // WR/SEND: the HERD hybrid
		}
	}
	signaled := !opts.unsignaled
	inline := opts.inlined && size <= 256

	var count uint64
	nextCore := 0
	p := srv.CPU.Params()

	// respond issues the response for client proc idx once the server CPU
	// has polled up the request. SEND-based requests cost a RECV repost.
	type clientEnd struct {
		rspWriteQP *verbs.QP // server->client UC/RC QP (WRITE responses)
		rspSendQP  *verbs.QP // server-side QP for SEND responses
		dstQP      *verbs.QP // client-side QP receiving SEND responses
		cliMR      *verbs.MR
		dones      []func()
	}
	ends := make([]*clientEnd, inboundProcs)
	payload := make([]byte, size)

	respond := func(idx int, viaSend bool) {
		cpu := p.PollCheck + p.PostSend
		if !combo.reqWrite {
			cpu += p.RecvRepost
		}
		core := nextCore % serverCores
		nextCore++
		srv.CPU.Core(core).Submit(cpu, func(sim.Time) {
			e := ends[idx]
			if combo.rspWrite {
				mustPost(e.rspWriteQP.PostSend(verbs.SendWR{
					Verb: verbs.WRITE, Data: payload, Remote: e.cliMR,
					Inline: inline, Signaled: signaled,
				}))
			} else {
				mustPost(e.rspSendQP.PostSend(verbs.SendWR{
					Verb: verbs.SEND, Data: payload, Dest: e.dstQP,
					Inline: inline, Signaled: signaled,
				}))
			}
		})
	}

	srvReqMR := srv.Verbs.RegisterMR(inboundProcs * 1024)
	if combo.reqWrite {
		srvReqMR.Watch(0, inboundProcs*1024, func(off, n int) {
			respond(off/1024, false)
		})
	}

	for i := 0; i < inboundProcs; i++ {
		i := i
		m := cl.Machine(1 + i%clientMachines)
		e := &clientEnd{cliMR: m.Verbs.RegisterMR(1024)}
		ends[i] = e

		// Request path.
		var reqQP *verbs.QP
		var srvReqQP *verbs.QP
		reqQP = m.Verbs.CreateQP(reqTr)
		srvReqQP = srv.Verbs.CreateQP(reqTr)
		if err := verbs.Connect(reqQP, srvReqQP); err != nil {
			panic(err)
		}
		if !combo.reqWrite {
			// SEND requests: server pre-posts and replenishes RECVs.
			// (Request bytes are not inspected, so the RECVs may share a
			// staging buffer.)
			stage := srv.Verbs.RegisterMR(1024)
			for w := 0; w < 2*inboundWindow; w++ {
				mustPost(srvReqQP.PostRecv(stage, 0, 1024, 0))
			}
			srvReqQP.RecvCQ().SetHandler(func(verbs.Completion) {
				mustPost(srvReqQP.PostRecv(stage, 0, 1024, 0))
				respond(i, true)
			})
		}

		// Response path.
		if combo.rspWrite {
			e.rspWriteQP = srv.Verbs.CreateQP(rspTr)
			cliRsp := m.Verbs.CreateQP(rspTr)
			if err := verbs.Connect(e.rspWriteQP, cliRsp); err != nil {
				panic(err)
			}
			e.cliMR.Watch(0, 1024, func(off, n int) {
				count++
				if len(e.dones) > 0 {
					d := e.dones[0]
					e.dones = e.dones[1:]
					d()
				}
			})
		} else {
			e.rspSendQP = srv.Verbs.CreateQP(rspTr)
			e.dstQP = m.Verbs.CreateQP(rspTr)
			if rspTr != wire.UD {
				if err := verbs.Connect(e.rspSendQP, e.dstQP); err != nil {
					panic(err)
				}
			}
			for w := 0; w < 2*inboundWindow; w++ {
				mustPost(e.dstQP.PostRecv(e.cliMR, 0, 1024, 0))
			}
			e.dstQP.RecvCQ().SetHandler(func(verbs.Completion) {
				count++
				mustPost(e.dstQP.PostRecv(e.cliMR, 0, 1024, 0))
				if len(e.dones) > 0 {
					d := e.dones[0]
					e.dones = e.dones[1:]
					d()
				}
			})
		}

		pump(inboundWindow, func(done func()) {
			e.dones = append(e.dones, done)
			if combo.reqWrite {
				mustPost(reqQP.PostSend(verbs.SendWR{
					Verb: verbs.WRITE, Data: payload, Remote: srvReqMR, RemoteOff: i * 1024,
					Inline: inline, Signaled: signaled,
				}))
			} else {
				mustPost(reqQP.PostSend(verbs.SendWR{
					Verb: verbs.SEND, Data: payload,
					Inline: inline, Signaled: signaled,
				}))
			}
		})
	}
	return measureMops(cl, &count)
}
