package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/farm"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/pilaf"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
	"herdkv/internal/workload"
)

// System names compared in the end-to-end experiments.
const (
	SysHERD    = "HERD"
	SysPilaf   = "Pilaf-em-OPT"
	SysFaRM    = "FaRM-em"
	SysFaRMVar = "FaRM-em-VAR"
)

// AllSystems lists the paper's four compared systems.
var AllSystems = []string{SysPilaf, SysFaRM, SysFaRMVar, SysHERD}

// e2eConfig describes one end-to-end measurement point.
type e2eConfig struct {
	spec        cluster.Spec
	system      string
	clients     int     // client processes
	perMachine  int     // client processes per machine (paper: 3)
	valueSize   int     // SV
	getFraction float64 // 0.95, 0.50 or 0
	keys        uint64
	window      int
	cores       int // server processes / cores
	zipf        bool
	seed        int64

	// HERD variants (ablation studies).
	sendMode   bool // SEND/SEND architecture (Section 5.5)
	dcMode     bool // Dynamically Connected requests (Section 5.5)
	noPrefetch bool // disable the request pipeline
	inlineCut  int  // response inline cutoff override (0 = default)
}

func defaultE2E(spec cluster.Spec, system string) e2eConfig {
	return e2eConfig{
		spec: spec, system: system,
		clients: 51, perMachine: 3,
		valueSize: 32, getFraction: 0.95,
		keys: 48 * 1024, window: 4, cores: 6, seed: 1,
	}
}

// e2eResult is one measurement point's output.
type e2eResult struct {
	Mops      float64
	Mean      sim.Time
	P5, P95   sim.Time
	PerCore   []float64 // HERD: per-partition Mops
	HitRate   float64
	VerifyErr uint64
}

// buildSystem constructs the server and clients for cfg on a fresh
// cluster, preloading the whole keyspace, and returns a per-partition
// served-count probe (HERD only). Every system's client is driven
// through the shared kv.KV interface; no per-system glue is needed.
func buildSystem(cfg e2eConfig) (*cluster.Cluster, []kv.KV, func() []uint64) {
	machines := 1 + (cfg.clients+cfg.perMachine-1)/cfg.perMachine
	cl := cluster.New(cfg.spec, machines, cfg.seed)
	clientMachine := func(i int) *cluster.Machine { return cl.Machine(1 + i/cfg.perMachine) }
	clients := make([]kv.KV, cfg.clients)
	var perCore func() []uint64

	switch cfg.system {
	case SysHERD:
		hcfg := core.DefaultConfig()
		hcfg.NS = cfg.cores
		hcfg.MaxClients = cfg.clients
		hcfg.Window = cfg.window
		hcfg.UseSendRequests = cfg.sendMode
		hcfg.UseDC = cfg.dcMode
		hcfg.Prefetch = !cfg.noPrefetch
		if cfg.inlineCut > 0 {
			hcfg.InlineCutoff = cfg.inlineCut
		}
		hcfg.Mica = mica.Config{
			IndexBuckets: int(cfg.keys) / 4,
			BucketSlots:  8,
			LogBytes:     int(cfg.keys) * (18 + cfg.valueSize) * 2 / cfg.cores,
		}
		srv, err := core.NewServer(cl.Machine(0), hcfg)
		if err != nil {
			panic(err)
		}
		for k := uint64(0); k < cfg.keys; k++ {
			key := kv.FromUint64(k)
			if err := srv.Preload(key, workload.ExpectedValue(key, cfg.valueSize)); err != nil {
				panic(err)
			}
		}
		for i := range clients {
			c, err := srv.ConnectClient(clientMachine(i))
			if err != nil {
				panic(err)
			}
			clients[i] = c
		}
		perCore = func() []uint64 {
			out := make([]uint64, cfg.cores)
			for p := 0; p < cfg.cores; p++ {
				st := srv.Partition(p).Stats()
				out[p] = st.Gets + st.Puts
			}
			return out
		}

	case SysPilaf:
		pcfg := pilaf.Config{
			Buckets:     int(cfg.keys) * 4 / 3, // the paper's 75% fill
			ExtentBytes: int(cfg.keys) * (18 + cfg.valueSize) * 4,
			Cores:       cfg.cores,
			Window:      cfg.window,
		}
		srv, err := pilaf.NewServer(cl.Machine(0), pcfg)
		if err != nil {
			panic(err)
		}
		for k := uint64(0); k < cfg.keys; k++ {
			key := kv.FromUint64(k)
			if err := srv.Insert(key, workload.ExpectedValue(key, cfg.valueSize)); err != nil {
				panic(err)
			}
		}
		for i := range clients {
			c, err := srv.ConnectClient(clientMachine(i))
			if err != nil {
				panic(err)
			}
			clients[i] = c
		}

	case SysFaRM, SysFaRMVar:
		fcfg := farm.Config{
			Mode:        farm.InlineMode,
			Buckets:     int(cfg.keys) * 4, // stay within hopscotch's comfort zone
			ValueSize:   cfg.valueSize,
			ExtentBytes: int(cfg.keys) * (cfg.valueSize + 8) * 4,
			Cores:       cfg.cores,
			Window:      cfg.window,
		}
		if cfg.system == SysFaRMVar {
			fcfg.Mode = farm.VarMode
		}
		srv, err := farm.NewServer(cl.Machine(0), fcfg)
		if err != nil {
			panic(err)
		}
		for k := uint64(0); k < cfg.keys; k++ {
			key := kv.FromUint64(k)
			if err := srv.Insert(key, workload.ExpectedValue(key, cfg.valueSize)); err != nil {
				panic(err)
			}
		}
		for i := range clients {
			c, err := srv.ConnectClient(clientMachine(i))
			if err != nil {
				panic(err)
			}
			clients[i] = c
		}

	default:
		panic("unknown system " + cfg.system)
	}
	return cl, clients, perCore
}

// runE2E builds cfg's deployment, drives it closed-loop, and measures
// steady state.
func runE2E(cfg e2eConfig) e2eResult {
	cl, clients, perCore := buildSystem(cfg)

	var completed, hits, gets, verifyErr uint64
	rec := stats.NewLatencyRecorder(32768)
	measuring := false

	// Stagger client start times: real client fleets do not begin in
	// lockstep, and a synchronized start puts the closed-loop system into
	// a long oscillatory transient at high client counts.
	stagger := 40 * sim.Microsecond / sim.Time(len(clients)+1)
	for i, c := range clients {
		i, c := i, c
		gen := workload.NewGenerator(workload.Config{
			GetFraction: cfg.getFraction,
			Keys:        cfg.keys,
			ZipfTheta:   ternary(cfg.zipf, 0.99, 0),
			ValueSize:   cfg.valueSize,
			Seed:        cfg.seed + int64(i)*1000,
		})
		nop := 0
		issue := func(done func()) {
			op := gen.Next()
			nop++
			verify := nop%64 == 0
			if op.IsGet {
				mustPost(c.Get(op.Key, func(r kv.Result) {
					completed++
					if measuring {
						rec.Record(r.Latency)
						gets++
						if r.Status == kv.StatusHit {
							hits++
						}
					}
					if verify && r.Status == kv.StatusHit {
						want := workload.ExpectedValue(op.Key, cfg.valueSize)
						if string(r.Value) != string(want) {
							verifyErr++
						}
					}
					done()
				}))
			} else {
				val := workload.ExpectedValue(op.Key, cfg.valueSize)
				mustPost(c.Put(op.Key, val, func(r kv.Result) {
					completed++
					if measuring {
						rec.Record(r.Latency)
					}
					done()
				}))
			}
		}
		cl.Eng.At(sim.Time(i)*stagger, func() { pump(cfg.window, issue) })
	}

	cl.Eng.RunFor(Warmup)
	measuring = true
	var beforeCore []uint64
	if perCore != nil {
		beforeCore = perCore()
	}
	start := completed
	cl.Eng.RunFor(Span)

	res := e2eResult{
		Mops:      stats.Throughput(completed-start, Span),
		Mean:      rec.Mean(),
		P5:        rec.Percentile(5),
		P95:       rec.Percentile(95),
		VerifyErr: verifyErr,
	}
	if gets > 0 {
		res.HitRate = float64(hits) / float64(gets)
	}
	if perCore != nil {
		after := perCore()
		res.PerCore = make([]float64, len(after))
		for i := range after {
			res.PerCore[i] = stats.Throughput(after[i]-beforeCore[i], Span)
		}
	}
	return res
}

func ternary(c bool, a, b float64) float64 {
	if c {
		return a
	}
	return b
}

// Fig9Throughput reproduces Figure 9: end-to-end throughput for 48 B
// items under 5%, 50% and 100% PUT workloads, on both clusters.
func Fig9Throughput() *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "End-to-end throughput (Mops), 48 B items (SK=16, SV=32)",
		Columns: []string{"cluster", "PUT%", SysPilaf, SysFaRM, SysFaRMVar, SysHERD},
	}
	for _, spec := range []cluster.Spec{cluster.Apt(), cluster.Susitna()} {
		for _, putPct := range []int{5, 50, 100} {
			row := []string{spec.Name, fmt.Sprintf("%d%%", putPct)}
			for _, sys := range AllSystems {
				cfg := defaultE2E(spec, sys)
				cfg.getFraction = 1 - float64(putPct)/100
				row = append(row, cell(runE2E(cfg).Mops))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("51 client processes (3 per machine), 6 server cores, window 4")
	return t
}

// Fig10ValueSize reproduces Figure 10: read-intensive throughput across
// value sizes.
func Fig10ValueSize(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig10",
		Title:   fmt.Sprintf("Throughput (Mops) vs value size, read-intensive — %s", spec.Name),
		Columns: []string{"value", SysHERD, SysPilaf, SysFaRM, SysFaRMVar},
	}
	// The paper sweeps to 1024; HERD's 1 KB slot leaves 1000 B for the
	// value after LEN and keyhash, so the top point is 1000 here.
	for _, sv := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1000} {
		row := []string{fmt.Sprintf("%d", sv)}
		for _, sys := range []string{SysHERD, SysPilaf, SysFaRM, SysFaRMVar} {
			cfg := defaultE2E(spec, sys)
			cfg.valueSize = sv
			cfg.keys = 16 * 1024 // keep the largest tables in memory bounds
			row = append(row, cell(runE2E(cfg).Mops))
		}
		t.AddRow(row...)
	}
	t.AddNote("16 B keys; FaRM-em inlines values so its READ size grows as 6*(16+SV)")
	return t
}

// Fig11LatencyThroughput reproduces Figure 11: mean latency (with 5th
// and 95th percentiles) as load increases, read-intensive 48 B items.
func Fig11LatencyThroughput(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig11",
		Title:   fmt.Sprintf("Latency vs throughput, 48 B read-intensive — %s", spec.Name),
		Columns: []string{"system", "clients", "Mops", "mean_us", "p5_us", "p95_us"},
	}
	for _, sys := range AllSystems {
		for _, nc := range []int{1, 2, 4, 8, 16, 32, 51} {
			cfg := defaultE2E(spec, sys)
			cfg.clients = nc
			r := runE2E(cfg)
			t.AddRow(sys, fmt.Sprintf("%d", nc), cell(r.Mops),
				cell(r.Mean.Microseconds()), cell(r.P5.Microseconds()), cell(r.P95.Microseconds()))
		}
	}
	return t
}
