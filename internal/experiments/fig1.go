package experiments

// Fig1Steps reproduces Figure 1 — the PCIe/DMA/network steps involved in
// posting each verb variant — as a table over the model's actual
// mechanics. Fewer steps is the whole optimization story: inlining
// removes the requester DMA read, unreliable transports remove the ACK,
// selective signaling removes the completion DMA.
func Fig1Steps() *Table {
	t := &Table{
		ID:    "fig1",
		Title: "Steps involved in posting verbs",
		Columns: []string{
			"verb", "PIO", "req-DMA-read", "wire", "resp-DMA", "ACK", "CQE-DMA",
		},
	}
	y, n := "yes", "-"
	t.AddRow("WRITE (RC, signaled)", "doorbell", y, y, "write", y, y)
	t.AddRow("WRITE (inlined+unrel+unsig)", "WQE+payload", n, y, "write", n, n)
	t.AddRow("READ", "doorbell", n, "2x", "read", "(resp)", y)
	t.AddRow("SEND/RECV", "WQE+payload", n, y, "write+CQE", "RC only", "recv side")
	t.AddNote("resp-DMA 'read' is non-posted (the READ bottleneck); WRITEs use cheaper posted writes")
	t.AddNote("the fully optimized WRITE touches the PCIe bus once and the wire once — nothing else")
	return t
}
