package experiments

import (
	"fmt"

	"herdkv/internal/core"
)

// Fig8Layout renders Figure 8 — the request region layout — as a table:
// the region's dimensions under the paper's configuration and the slot
// arithmetic for a few representative (process, client, seq) triples.
func Fig8Layout() *Table {
	cfg := core.Config{NS: 16, MaxClients: 200, Window: 2}
	t := &Table{
		ID:      "fig8",
		Title:   "Request region layout (NS=16, NC=200, W=2)",
		Columns: []string{"property", "value"},
	}
	t.AddRow("slot size", fmt.Sprintf("%d B (max key-value item)", core.SlotSize))
	t.AddRow("slots", fmt.Sprintf("%d (NS*NC*W)", cfg.NS*cfg.MaxClients*cfg.Window))
	t.AddRow("region size", fmt.Sprintf("%.1f MB (fits in L3)", float64(cfg.RegionSize())/(1<<20)))
	t.AddRow("per-process chunk", fmt.Sprintf("%d slots (NC*W)", cfg.MaxClients*cfg.Window))
	t.AddRow("per-client chunk", fmt.Sprintf("%d slots (W)", cfg.Window))

	for _, triple := range [][3]int{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, 0}, {15, 199, 1}} {
		s, c, r := triple[0], triple[1], triple[2]
		t.AddRow(
			fmt.Sprintf("slot(s=%d, c=%d, r=%d)", s, c, r),
			fmt.Sprintf("%d  (s*(W*NC) + c*W + r mod W)", cfg.SlotIndex(s, c, r)),
		)
	}
	t.AddNote("a request's keyhash occupies the rightmost 16 B of its slot; LEN precedes it; the value sits left")
	t.AddNote("polling trigger: a nonzero keyhash, valid because the RNIC's DMA writes land left to right")
	return t
}
