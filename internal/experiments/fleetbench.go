package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fleet"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
	"herdkv/internal/workload"
)

// FleetBenchResult is the machine-readable output of the scale-out
// comparison (written as BENCH_fleet.json by `make bench`).
type FleetBenchResult struct {
	Cluster      string  `json:"cluster"`
	Shards       int     `json:"shards"`
	Replication  int     `json:"replication"`
	SingleMops   float64 `json:"single_mops"`
	ShardedMops  float64 `json:"sharded_mops"`
	FleetMops    float64 `json:"fleet_mops"`
	FleetSpeedup float64 `json:"fleet_speedup_vs_single"`
}

// fleetBenchShards is the deployment size compared against one server.
const fleetBenchShards = 4

// FleetBench compares the three deployment shapes on the same
// read-intensive closed-loop workload: one HERD server, a 4-shard
// static ShardedDeployment, and a 4-shard R=2 consistent-hash fleet.
// The fleet pays replicated writes and ring lookups; the benchmark
// quantifies what is left of the 4x machine count.
func FleetBench(spec cluster.Spec) (*Table, FleetBenchResult) {
	const (
		clientsPerShard = 4
		keys            = 16384
		valueSize       = 32
	)

	herdCfg := func(nClients int) core.Config {
		cfg := core.DefaultConfig()
		cfg.MaxClients = nClients
		cfg.Mica = mica.Config{IndexBuckets: keys / 2, BucketSlots: 8, LogBytes: keys * 64}
		return cfg
	}

	// drive measures steady-state Mops over clients (any KV system).
	drive := func(cl *cluster.Cluster, clients []kv.KV, window int) float64 {
		var completed uint64
		stopped := false
		for i, c := range clients {
			c := c
			gen := workload.NewGenerator(workload.ReadIntensive(keys, valueSize, int64(i+1)))
			issue := func(done func()) {
				if stopped {
					return
				}
				op := gen.Next()
				fin := func(kv.Result) { completed++; done() }
				if op.IsGet {
					mustPost(c.Get(op.Key, fin))
				} else {
					mustPost(c.Put(op.Key, workload.ExpectedValue(op.Key, valueSize), fin))
				}
			}
			cl.Eng.At(sim.Time(i)*sim.Microsecond, func() { pump(window, issue) })
		}
		cl.Eng.RunFor(Warmup)
		start := completed
		cl.Eng.RunFor(Span)
		stopped = true
		return stats.Throughput(completed-start, Span)
	}

	preload := func(insert func(kv.Key, []byte) error) {
		for k := uint64(0); k < keys; k++ {
			key := kv.FromUint64(k)
			if err := insert(key, workload.ExpectedValue(key, valueSize)); err != nil {
				panic(err)
			}
		}
	}

	// The single server gets enough load to sit at its ceiling; the
	// 4-shard deployments get 4x that, so each measures aggregate
	// capacity rather than offered load.
	single := func() float64 {
		nClients := clientsPerShard * fleetBenchShards
		cl := cluster.New(spec, 1+nClients, 1)
		srv, err := core.NewServer(cl.Machine(0), herdCfg(nClients))
		if err != nil {
			panic(err)
		}
		preload(srv.Preload)
		clients := make([]kv.KV, nClients)
		for i := range clients {
			c, err := srv.ConnectClient(cl.Machine(1 + i))
			if err != nil {
				panic(err)
			}
			clients[i] = c
		}
		return drive(cl, clients, 4)
	}

	serverMachines := func(cl *cluster.Cluster) []*cluster.Machine {
		out := make([]*cluster.Machine, fleetBenchShards)
		for i := range out {
			out[i] = cl.Machine(i)
		}
		return out
	}

	sharded := func() float64 {
		nClients := clientsPerShard * fleetBenchShards * fleetBenchShards
		cl := cluster.New(spec, fleetBenchShards+nClients, 1)
		d, err := core.NewShardedDeployment(serverMachines(cl), herdCfg(nClients))
		if err != nil {
			panic(err)
		}
		preload(d.Preload)
		clients := make([]kv.KV, nClients)
		for i := range clients {
			c, err := d.ConnectClient(cl.Machine(fleetBenchShards + i))
			if err != nil {
				panic(err)
			}
			clients[i] = c
		}
		return drive(cl, clients, 4)
	}

	replicated := func() float64 {
		nClients := clientsPerShard * fleetBenchShards * fleetBenchShards
		cl := cluster.New(spec, fleetBenchShards+nClients, 1)
		fcfg := fleet.DefaultConfig()
		fcfg.Herd = herdCfg(nClients)
		d, err := fleet.NewDeployment(serverMachines(cl), fcfg)
		if err != nil {
			panic(err)
		}
		preload(d.Preload)
		clients := make([]kv.KV, nClients)
		for i := range clients {
			c, err := d.ConnectClient(cl.Machine(fleetBenchShards + i))
			if err != nil {
				panic(err)
			}
			clients[i] = c
		}
		return drive(cl, clients, 4)
	}

	res := FleetBenchResult{
		Cluster:     spec.Name,
		Shards:      fleetBenchShards,
		Replication: 2,
		SingleMops:  single(),
		ShardedMops: sharded(),
		FleetMops:   replicated(),
	}
	if res.SingleMops > 0 {
		res.FleetSpeedup = res.FleetMops / res.SingleMops
	}

	t := &Table{
		ID:      "fleet-bench",
		Title:   fmt.Sprintf("Scale-out comparison, read-intensive 48 B items — %s", spec.Name),
		Columns: []string{"deployment", "machines", "Mops", "vs single"},
	}
	t.AddRow("single HERD server", "1", cell(res.SingleMops), "1.0x")
	t.AddRow("sharded (no replication)", fmt.Sprintf("%d", res.Shards),
		cell(res.ShardedMops), fmt.Sprintf("%.1fx", res.ShardedMops/res.SingleMops))
	t.AddRow(fmt.Sprintf("fleet (R=%d)", res.Replication), fmt.Sprintf("%d", res.Shards),
		cell(res.FleetMops), fmt.Sprintf("%.1fx", res.FleetSpeedup))
	t.AddNote("%d clients on the single server, %d on the %d-shard deployments (window 4); fleet pays replicated writes and ring routing",
		clientsPerShard*fleetBenchShards, clientsPerShard*fleetBenchShards*fleetBenchShards, fleetBenchShards)
	return t, res
}

// WriteJSON writes the benchmark result as indented JSON.
func (r FleetBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
