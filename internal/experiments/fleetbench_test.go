package experiments

import (
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
)

func TestFleetBenchSpeedup(t *testing.T) {
	// Shrink the measurement windows: the assertion is about relative
	// throughput, which stabilizes quickly.
	oldW, oldS := Warmup, Span
	Warmup, Span = 50*sim.Microsecond, 150*sim.Microsecond
	defer func() { Warmup, Span = oldW, oldS }()

	tbl, res := FleetBench(cluster.Apt())
	if res.SingleMops <= 0 || res.ShardedMops <= 0 || res.FleetMops <= 0 {
		t.Fatalf("zero throughput somewhere: %+v", res)
	}
	// The acceptance bar: a 4-shard R=2 fleet must deliver at least 3x
	// one server on the read-intensive mix.
	if res.FleetSpeedup < 3 {
		t.Fatalf("fleet speedup %.2fx < 3x over single server: %+v", res.FleetSpeedup, res)
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fleet_mops"`, `"fleet_speedup_vs_single"`, `"sharded_mops"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	if tbl.String() == "" {
		t.Fatal("empty bench table")
	}
}
