package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fault"
	"herdkv/internal/fleet"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
	"herdkv/internal/workload"
)

// FleetChaos drives a replicated fleet closed-loop while sched injects
// faults, and reports fleet-level availability through time. The
// contract under test is stronger than single-server Chaos: with R=2
// replication, a crash-and-restart of one shard must cost ZERO
// fleet-level failures — every operation is served by a surviving
// replica (reads fail over; writes fan out), with retries allowed.
//
// The run is deterministic: the same (spec, schedule, seed) triple
// produces a byte-identical table.
func FleetChaos(spec cluster.Spec, sched *fault.Schedule, seed int64) *Table {
	const (
		nShards    = 4
		nClients   = 6
		perMachine = 3
		keys       = 4096
		valueSize  = 32
	)
	runFor := sched.End()
	if runFor == 0 {
		runFor = 10 * sim.Millisecond
	}
	bucketLen := runFor / chaosBuckets

	spec.Faults = sched
	machines := nShards + (nClients+perMachine-1)/perMachine
	cl := cluster.New(spec, machines, seed)

	fcfg := fleet.DefaultConfig()
	fcfg.Herd = core.DefaultConfig()
	fcfg.Herd.NS = 2
	fcfg.Herd.MaxClients = nClients
	fcfg.Herd.RetryTimeout = chaosRetryTimeout
	fcfg.Herd.Mica = mica.Config{
		IndexBuckets: keys / 4,
		BucketSlots:  8,
		LogBytes:     keys * (18 + valueSize) * 2 / fcfg.Herd.NS,
	}
	servers := make([]*cluster.Machine, nShards)
	for i := range servers {
		servers[i] = cl.Machine(i)
	}
	d, err := fleet.NewDeployment(servers, fcfg)
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < keys; k++ {
		key := kv.FromUint64(k)
		if err := d.Preload(key, workload.ExpectedValue(key, valueSize)); err != nil {
			panic(err)
		}
	}
	if inj := cl.Faults(); inj != nil {
		d.RegisterCrashTargets(inj)
		inj.Arm()
	}

	clients := make([]*fleet.Client, nClients)
	for i := range clients {
		c, err := d.ConnectClient(cl.Machine(nShards + i/perMachine))
		if err != nil {
			panic(err)
		}
		clients[i] = c
	}

	type bucket struct {
		issued, ok, err uint64
		lat             *stats.LatencyRecorder
	}
	buckets := make([]bucket, chaosBuckets)
	for i := range buckets {
		buckets[i] = bucket{lat: stats.NewLatencyRecorder(16384)}
	}
	bucketOf := func(t sim.Time) *bucket {
		i := int(t / bucketLen)
		if i >= chaosBuckets {
			i = chaosBuckets - 1
		}
		return &buckets[i]
	}

	stopped := false
	for i, c := range clients {
		c := c
		gen := workload.NewGenerator(workload.Config{
			GetFraction: 0.50, // mixed workload: fan-out writes under fire
			Keys:        keys,
			ValueSize:   valueSize,
			Seed:        seed + int64(i)*1000,
		})
		issue := func(done func()) {
			if stopped {
				return // let the closed loop die out at the cutoff
			}
			op := gen.Next()
			b := bucketOf(cl.Eng.Now())
			b.issued++
			fin := func(r kv.Result) {
				if r.Err != nil {
					b.err++
				} else {
					b.ok++
					b.lat.Record(r.Latency)
				}
				done()
			}
			if op.IsGet {
				c.Get(op.Key, fin)
			} else {
				c.Put(op.Key, workload.ExpectedValue(op.Key, valueSize), fin)
			}
		}
		stagger := sim.Time(i) * sim.Microsecond
		cl.Eng.At(stagger, func() { pump(fcfg.Herd.Window, issue) })
	}

	// Run the scripted window, stop issuing, then drain: every in-flight
	// op must resolve, and none may fail at fleet level.
	cl.Eng.RunFor(runFor)
	stopped = true
	cl.Eng.Run()

	var issued, okOps, errOps uint64
	t := &Table{
		ID:      "fleetchaos",
		Title:   fmt.Sprintf("Fleet availability through faults (R=%d) — %s", d.Replication(), spec.Name),
		Columns: []string{"t_ms", "issued", "ok", "err", "avail%", "p99_us"},
	}
	for i := range buckets {
		b := &buckets[i]
		issued += b.issued
		okOps += b.ok
		errOps += b.err
		avail, p99 := "-", "-"
		if b.ok+b.err > 0 {
			avail = fmt.Sprintf("%.1f", 100*float64(b.ok)/float64(b.ok+b.err))
		}
		if b.ok > 0 {
			p99 = cell(b.lat.Percentile(99).Microseconds())
		}
		t.AddRow(
			fmt.Sprintf("%.1f-%.1f", (sim.Time(i)*bucketLen).Microseconds()/1000,
				(sim.Time(i+1)*bucketLen).Microseconds()/1000),
			fmt.Sprintf("%d", b.issued), fmt.Sprintf("%d", b.ok),
			fmt.Sprintf("%d", b.err), avail, p99,
		)
	}

	var failed, reroutes, replicaReads, inflight uint64
	for _, c := range clients {
		failed += c.Failed()
		reroutes += c.Reroutes()
		replicaReads += c.ReplicaReads()
		inflight += uint64(c.Inflight())
	}
	t.AddNote("ops: %d issued, %d ok, %d fleet-level failures (must be 0), %d hung (must be 0)",
		issued, okOps, failed, inflight)
	t.AddNote("failover: %d reroutes, %d reads served by a non-primary replica", reroutes, replicaReads)
	if inj := cl.Faults(); inj != nil {
		t.AddNote("injected: %d crashes, %d restarts", inj.Crashes(), inj.Restarts())
	}
	_ = errOps
	return t
}

// FleetChaosScenario is the packaged fleet chaos run: a 4-shard R=2
// fleet with shard 0 crashing at 2 ms and restarting at 4 ms of an 8 ms
// window. Unlike the single-server scenario, availability holds at 100%
// throughout: replicas absorb the outage.
func FleetChaosScenario(spec cluster.Spec) *Table {
	return FleetChaos(spec, fleetChaosSchedule(), 1)
}

// fleetChaosSchedule is the crash-and-restart script used by the
// packaged scenario and the replay tests. Crash-only (no packet loss):
// with loss, an unlucky op could exhaust its budget on BOTH replicas,
// which is legitimate behavior but breaks the zero-failures invariant
// this scenario demonstrates.
func fleetChaosSchedule() *fault.Schedule {
	sched, err := fault.ParseSchedule(`
		crash node=0 at=2ms restart=4ms
	`)
	if err != nil {
		panic(err)
	}
	return sched
}
