package experiments

import (
	"strings"
	"sync"
	"testing"

	"herdkv/internal/cluster"
)

func TestFleetChaosZeroFailuresAndDrains(t *testing.T) {
	out := FleetChaos(cluster.Apt(), fleetChaosSchedule(), 3).String()
	if !strings.Contains(out, "0 fleet-level failures (must be 0)") {
		t.Fatalf("fleet chaos run had fleet-level failures:\n%s", out)
	}
	if !strings.Contains(out, "0 hung (must be 0)") {
		t.Fatalf("fleet chaos run left hung ops:\n%s", out)
	}
	if !strings.Contains(out, "1 crashes, 1 restarts") {
		t.Fatalf("crash/restart not injected:\n%s", out)
	}
	if strings.Contains(out, "failover: 0 reroutes") {
		t.Fatalf("no failover happened during the outage:\n%s", out)
	}
}

// fleetChaosReplay keeps the first TestChaosReplayStableFleet output for
// the lifetime of the test process; `go test -count=2` re-enters in the
// same process and compares a complete fresh execution byte-for-byte
// (same mechanism as TestChaosReplayStable — CI's -run regex matches
// both).
var fleetChaosReplay struct {
	sync.Mutex
	first string
}

func TestChaosReplayStableFleet(t *testing.T) {
	out := FleetChaos(cluster.Apt(), fleetChaosSchedule(), 7).String()
	fleetChaosReplay.Lock()
	defer fleetChaosReplay.Unlock()
	if fleetChaosReplay.first == "" {
		fleetChaosReplay.first = out
		return
	}
	if out != fleetChaosReplay.first {
		t.Fatalf("fleet chaos run diverged from the first in-process run (leaked global state?):\n--- first ---\n%s--- this run ---\n%s",
			fleetChaosReplay.first, out)
	}
}

func TestFleetChaosSeedChangesRun(t *testing.T) {
	a := FleetChaos(cluster.Apt(), fleetChaosSchedule(), 3).String()
	b := FleetChaos(cluster.Apt(), fleetChaosSchedule(), 4).String()
	if a == b {
		t.Fatal("different seeds produced identical fleet chaos tables")
	}
}
