package experiments

import (
	"strings"
	"testing"
)

// Golden tests pin the deterministic, simulation-free targets exactly:
// any drift in Table 1, Figure 1 or Figure 8 is a semantic change and
// must be deliberate.

func TestGoldenTable1(t *testing.T) {
	want := `== table1: Operations supported by each connection type ==
  verb       RC   UC   UD
  ---------  ---  ---  ---
  SEND/RECV  yes  yes  yes
  WRITE      yes  yes  no
  READ       yes  no   no
  note: UC does not support READs, and UD does not support RDMA at all

`
	if got := Table1Verbs().String(); got != want {
		t.Fatalf("table1 drifted:\n%q\nwant\n%q", got, want)
	}
}

func TestGoldenFig8(t *testing.T) {
	got := Fig8Layout().String()
	for _, want := range []string{
		"6400 (NS*NC*W)",
		"6.2 MB (fits in L3)",
		"slot(s=15, c=199, r=1)  6399",
	} {
		if !containsStr(got, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, got)
		}
	}
}

func TestGoldenFig1(t *testing.T) {
	got := Fig1Steps().String()
	for _, want := range []string{
		"WRITE (RC, signaled)",
		"WRITE (inlined+unrel+unsig)",
		"READ",
		"SEND/RECV",
	} {
		if !containsStr(got, want) {
			t.Fatalf("fig1 missing %q:\n%s", want, got)
		}
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }
