package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fleet"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/nearcache"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
	"herdkv/internal/telemetry"
	"herdkv/internal/workload"
)

// HotkeyResult is the machine-readable output of the hot-key survival
// comparison (written as BENCH_hotkey.json by `make bench`).
type HotkeyResult struct {
	Cluster     string  `json:"cluster"`
	Shards      int     `json:"shards"`
	Replication int     `json:"replication"`
	ZipfTheta   float64 `json:"zipf_theta"`
	// UncachedMops / CachedMops are steady-state goodput for the two
	// arms; CacheSpeedup is their ratio.
	UncachedMops float64 `json:"uncached_mops"`
	CachedMops   float64 `json:"cached_mops"`
	CacheSpeedup float64 `json:"cache_speedup"`
	// CacheHitRate is cache.hits / (cache.hits + cache.misses) across
	// all near caches in the cached arm.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// UncachedOriginGets / CachedOriginGets count GETs the origin
	// shards actually served during the measurement span — the load the
	// near cache absorbs.
	UncachedOriginGets uint64 `json:"uncached_origin_gets"`
	CachedOriginGets   uint64 `json:"cached_origin_gets"`
	// HotWidened counts hot reads the fleet steered off-primary in the
	// cached arm (hot-key detection is on there).
	HotWidened uint64 `json:"hot_widened"`
}

// hotkey experiment dimensions.
const (
	hotkeyShards    = 3
	hotkeyClients   = 12
	hotkeyKeys      = 4096
	hotkeyValueSize = 32
	hotkeyLeaseTTL  = 25 * sim.Microsecond
)

// Hotkey runs the paper's skewed workload (Zipf .99, 95% GET) against
// a replicated fleet twice: once with clients reading through plain
// fleet handles, once with every client behind a leased near cache and
// fleet-side hot-key widening. The skew concentrates reads on a few
// keys; the cached arm serves repeats locally inside the lease and
// spreads the residual hot reads across replicas, so it must beat the
// uncached arm on goodput while sending the origin shards fewer GETs.
func Hotkey(spec cluster.Spec) (*Table, HotkeyResult) {
	herdCfg := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.MaxClients = hotkeyClients
		cfg.Mica = mica.Config{IndexBuckets: hotkeyKeys / 2, BucketSlots: 8, LogBytes: hotkeyKeys * 64}
		return cfg
	}

	originGets := func(d *fleet.Deployment) uint64 {
		var sum uint64
		for i := 0; i < hotkeyShards; i++ {
			g, _, _ := d.Server(i).Stats()
			sum += g
		}
		return sum
	}

	arm := func(cached bool) (mops float64, origin uint64, hitRate float64, widened uint64) {
		cl := cluster.New(spec, hotkeyShards+hotkeyClients, 1)
		fcfg := fleet.DefaultConfig()
		fcfg.Herd = herdCfg()
		if cached {
			fcfg.Herd.LeaseTTL = hotkeyLeaseTTL
			fcfg.HotKeyTrack = 16
			// The near cache absorbs repeat reads, so the fleet tracker
			// only sees fill traffic — at most one read per key per lease
			// TTL per client. The threshold counts fills, not raw reads:
			// 4 fills in a 100us window means the key is re-fetched every
			// TTL, i.e. continuously hot behind the cache.
			fcfg.HotKeyThreshold = 4
		}
		machines := make([]*cluster.Machine, hotkeyShards)
		for i := range machines {
			machines[i] = cl.Machine(i)
		}
		d, err := fleet.NewDeployment(machines, fcfg)
		if err != nil {
			panic(err)
		}
		for k := uint64(0); k < hotkeyKeys; k++ {
			key := kv.FromUint64(k)
			if err := d.Preload(key, workload.ExpectedValue(key, hotkeyValueSize)); err != nil {
				panic(err)
			}
		}
		tel := telemetry.New()
		fleetClients := make([]*fleet.Client, hotkeyClients)
		clients := make([]kv.KV, hotkeyClients)
		for i := range clients {
			fc, err := d.ConnectClient(cl.Machine(hotkeyShards + i))
			if err != nil {
				panic(err)
			}
			fleetClients[i] = fc
			if cached {
				clients[i] = nearcache.New(fc, cl.Eng, tel,
					nearcache.Config{TTL: hotkeyLeaseTTL, Leases: true})
			} else {
				clients[i] = fc
			}
		}

		var completed uint64
		stopped := false
		for i, c := range clients {
			c := c
			gen := workload.NewGenerator(workload.Skewed(hotkeyKeys, hotkeyValueSize, int64(i+1)))
			issue := func(done func()) {
				if stopped {
					return
				}
				op := gen.Next()
				fin := func(kv.Result) { completed++; done() }
				if op.IsGet {
					mustPost(c.Get(op.Key, fin))
				} else {
					mustPost(c.Put(op.Key, workload.ExpectedValue(op.Key, hotkeyValueSize), fin))
				}
			}
			cl.Eng.At(sim.Time(i)*sim.Microsecond, func() { pump(4, issue) })
		}
		cl.Eng.RunFor(Warmup)
		start, originStart := completed, originGets(d)
		cl.Eng.RunFor(Span)
		stopped = true

		mops = stats.Throughput(completed-start, Span)
		origin = originGets(d) - originStart
		hits := tel.Counter("cache.hits").Value()
		misses := tel.Counter("cache.misses").Value()
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		for _, fc := range fleetClients {
			widened += fc.HotWidened()
		}
		return mops, origin, hitRate, widened
	}

	res := HotkeyResult{
		Cluster:     spec.Name,
		Shards:      hotkeyShards,
		Replication: 2,
		ZipfTheta:   0.99,
	}
	res.UncachedMops, res.UncachedOriginGets, _, _ = arm(false)
	res.CachedMops, res.CachedOriginGets, res.CacheHitRate, res.HotWidened = arm(true)
	if res.UncachedMops > 0 {
		res.CacheSpeedup = res.CachedMops / res.UncachedMops
	}

	t := &Table{
		ID:      "hotkey",
		Title:   fmt.Sprintf("Hot-key survival, Zipf(.99) 95%% GET, %d B items — %s", hotkeyValueSize+len(kv.Key{}), spec.Name),
		Columns: []string{"arm", "Mops", "origin GETs", "cache hit rate"},
	}
	t.AddRow("fleet, uncached", cell(res.UncachedMops),
		fmt.Sprintf("%d", res.UncachedOriginGets), "-")
	t.AddRow("near cache + leases + widening", cell(res.CachedMops),
		fmt.Sprintf("%d", res.CachedOriginGets),
		fmt.Sprintf("%.0f%%", res.CacheHitRate*100))
	t.AddNote("%d clients over %d shards (R=%d); lease TTL %dus; cached arm %.1fx goodput, %d hot reads widened off-primary",
		hotkeyClients, hotkeyShards, res.Replication, hotkeyLeaseTTL/sim.Microsecond, res.CacheSpeedup, res.HotWidened)
	return t, res
}

// WriteJSON writes the benchmark result as indented JSON.
func (r HotkeyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
