package experiments

import (
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
)

// shortHotkeyWindows shrinks the measurement windows for test runs;
// the assertions are relative, which stabilizes quickly.
func shortHotkeyWindows(t *testing.T) {
	t.Helper()
	oldW, oldS := Warmup, Span
	Warmup, Span = 50*sim.Microsecond, 150*sim.Microsecond
	t.Cleanup(func() { Warmup, Span = oldW, oldS })
}

// TestHotkeyGate is the acceptance bar for the near-cache tier: on the
// paper's skewed workload the cached arm must beat the uncached fleet
// on goodput while the origin shards serve materially fewer GETs.
func TestHotkeyGate(t *testing.T) {
	shortHotkeyWindows(t)
	tbl, res := Hotkey(cluster.Apt())
	if res.UncachedMops <= 0 || res.CachedMops <= 0 {
		t.Fatalf("zero throughput somewhere: %+v", res)
	}
	if res.CacheSpeedup <= 1 {
		t.Fatalf("cached arm %.2fx uncached, want > 1x: %+v", res.CacheSpeedup, res)
	}
	if res.CachedOriginGets >= res.UncachedOriginGets {
		t.Fatalf("origin GETs did not drop: cached %d >= uncached %d",
			res.CachedOriginGets, res.UncachedOriginGets)
	}
	if res.CacheHitRate <= 0.2 {
		t.Fatalf("cache hit rate %.2f implausibly low for Zipf(.99)", res.CacheHitRate)
	}
	if res.HotWidened == 0 {
		t.Fatalf("no hot reads widened off-primary: %+v", res)
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cached_mops"`, `"uncached_mops"`, `"cache_speedup"`,
		`"cached_origin_gets"`, `"cache_hit_rate"`, `"hot_widened"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	if tbl.String() == "" {
		t.Fatal("empty hotkey table")
	}
}

// TestHotkeyDeterminism pins replay: the whole two-arm comparison is a
// pure function of seed and configuration.
func TestHotkeyDeterminism(t *testing.T) {
	shortHotkeyWindows(t)
	runs := make([]string, 2)
	for i := range runs {
		var buf strings.Builder
		_, res := Hotkey(cluster.Apt())
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf.String()
	}
	if runs[0] != runs[1] {
		t.Fatalf("hotkey comparison not deterministic:\n%s\nvs\n%s", runs[0], runs[1])
	}
}
