package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

var payloadSizes = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Fig2Latency reproduces Figure 2: average latency of WR-INLINE, WRITE,
// READ (signaled, over RC) and ECHO (inlined unsignaled WRITEs over UC)
// across payload sizes. Inline-dependent series stop at 256 B.
func Fig2Latency(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("Verb and ECHO latency (us) vs payload size — %s", spec.Name),
		Columns: []string{"size", "WR-INLINE", "WRITE", "READ", "ECHO", "ECHO/2"},
	}
	reps := 64
	for _, size := range payloadSizes {
		wrInline, echo, half := "-", "-", "-"
		if size <= 256 {
			wrInline = cell(signaledVerbLatency(spec, verbs.WRITE, size, true, reps).Microseconds())
			e := echoLatency(spec, size, reps)
			echo = cell(e.Microseconds())
			half = cell(e.Microseconds() / 2)
		}
		write := signaledVerbLatency(spec, verbs.WRITE, size, false, reps)
		read := signaledVerbLatency(spec, verbs.READ, size, false, reps)
		t.AddRow(fmt.Sprintf("%d", size), wrInline, cell(write.Microseconds()), cell(read.Microseconds()), echo, half)
	}
	t.AddNote("WR-INLINE and ECHO use inlined payloads (max 256 B); ECHO = two unsignaled inlined WRITEs over UC")
	return t
}

// signaledVerbLatency measures one signaled verb's completion latency
// over RC between two otherwise idle machines.
func signaledVerbLatency(spec cluster.Spec, verb verbs.Verb, size int, inline bool, reps int) sim.Time {
	cl := cluster.New(spec, 2, 1)
	qa := cl.Machine(0).Verbs.CreateQP(wire.RC)
	qb := cl.Machine(1).Verbs.CreateQP(wire.RC)
	if err := verbs.Connect(qa, qb); err != nil {
		panic(err)
	}
	remote := cl.Machine(1).Verbs.RegisterMR(2048)
	local := cl.Machine(0).Verbs.RegisterMR(2048)
	payload := make([]byte, size)

	var lastDone func(sim.Time)
	qa.SendCQ().SetHandler(func(c verbs.Completion) { lastDone(c.At) })

	tel := cl.Telemetry()
	return meanLatencySerial(cl, reps, func(done func(sim.Time)) {
		start := cl.Eng.Now()
		lastDone = func(at sim.Time) { done(at - start) }
		// When tracing, each rep becomes one trace whose spans (pio, nic,
		// wire, dma, ..., cqe) partition the reported latency exactly.
		wr := verbs.SendWR{Verb: verb, Signaled: true, Trace: tel.StartTrace(verb.String(), start)}
		if verb == verbs.READ {
			wr.Remote, wr.Local, wr.Len = remote, local, size
		} else {
			wr.Data, wr.Remote, wr.Inline = payload, remote, inline
		}
		if err := qa.PostSend(wr); err != nil {
			panic(err)
		}
	})
}

// echoLatency measures a WRITE-based ECHO: the client WRITEs (inlined,
// unsignaled, UC) into the server, an echo process WRITEs the payload
// back, and the client observes its own memory.
func echoLatency(spec cluster.Spec, size int, reps int) sim.Time {
	cl := cluster.New(spec, 2, 1)
	srv, cli := cl.Machine(0), cl.Machine(1)
	cliQP := cli.Verbs.CreateQP(wire.UC)
	srvQP := srv.Verbs.CreateQP(wire.UC)
	if err := verbs.Connect(cliQP, srvQP); err != nil {
		panic(err)
	}
	srvMR := srv.Verbs.RegisterMR(1024)
	cliMR := cli.Verbs.RegisterMR(1024)
	payload := make([]byte, size)

	// Echo process: on request arrival, pay the CPU cost of detecting it
	// and posting the reply, then WRITE the payload back. The reply rides
	// the request's trace (curTrace) so one ECHO is one trace whose
	// "req." spans, "cpu" span, and "resp." spans sum to its latency.
	var curTrace *telemetry.Trace
	p := srv.CPU.Params()
	srvMR.Watch(0, 1024, func(off, n int) {
		srv.CPU.Core(0).Submit(p.PollCheck+p.PostSend, func(at sim.Time) {
			curTrace.SetPrefix("")
			curTrace.Mark("cpu", at)
			curTrace.SetPrefix("resp.")
			mustPost(srvQP.PostSend(verbs.SendWR{
				Verb: verbs.WRITE, Data: srvMR.Bytes()[:size],
				Remote: cliMR, Inline: true, Trace: curTrace,
			}))
		})
	})

	var onEcho func()
	cliMR.Watch(0, 1024, func(off, n int) { onEcho() })

	tel := cl.Telemetry()
	return meanLatencySerial(cl, reps, func(done func(sim.Time)) {
		start := cl.Eng.Now()
		curTrace = tel.StartTrace("ECHO", start)
		curTrace.SetPrefix("req.")
		onEcho = func() { done(cl.Eng.Now() - start) }
		mustPost(cliQP.PostSend(verbs.SendWR{Verb: verbs.WRITE, Data: payload, Remote: srvMR, Inline: true, Trace: curTrace}))
	})
}

// Fig3Inbound reproduces Figure 3: cumulative throughput of inbound
// verbs — many client processes issuing to one server machine.
func Fig3Inbound(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig3",
		Title:   fmt.Sprintf("Inbound verbs throughput (Mops) vs payload size — %s", spec.Name),
		Columns: []string{"size", "WRITE-UC", "READ-RC", "WRITE-RC"},
	}
	for _, size := range payloadSizes {
		wUC := inboundMops(spec, wire.UC, verbs.WRITE, size)
		rRC := inboundMops(spec, wire.RC, verbs.READ, size)
		wRC := inboundMops(spec, wire.RC, verbs.WRITE, size)
		t.AddRow(fmt.Sprintf("%d", size), cell(wUC), cell(rRC), cell(wRC))
	}
	t.AddNote("16 client processes on 8 machines, window-gated; WRITEs inlined up to 256 B")
	return t
}

const (
	inboundProcs   = 16
	clientMachines = 8
	inboundWindow  = 16
)

// inboundMops drives many clients issuing `verb` at one server and
// measures the server-side completion rate.
func inboundMops(spec cluster.Spec, tr wire.Transport, verb verbs.Verb, size int) float64 {
	cl := cluster.New(spec, 1+clientMachines, 1)
	srv := cl.Machine(0)
	srvMR := srv.Verbs.RegisterMR(inboundProcs * 1024)

	var count uint64
	procDone := make([][]func(), inboundProcs)
	if verb == verbs.WRITE {
		srvMR.Watch(0, inboundProcs*1024, func(off, n int) {
			count++
			p := off / 1024
			if len(procDone[p]) > 0 {
				d := procDone[p][0]
				procDone[p] = procDone[p][1:]
				d()
			}
		})
	}

	for p := 0; p < inboundProcs; p++ {
		p := p
		m := cl.Machine(1 + p%clientMachines)
		cq := m.Verbs.CreateQP(tr)
		sq := srv.Verbs.CreateQP(tr)
		if err := verbs.Connect(cq, sq); err != nil {
			panic(err)
		}
		local := m.Verbs.RegisterMR(2048)
		payload := make([]byte, size)

		if verb == verbs.READ {
			var dones []func()
			cq.SendCQ().SetHandler(func(verbs.Completion) {
				count++
				if len(dones) > 0 {
					d := dones[0]
					dones = dones[1:]
					d()
				}
			})
			pump(inboundWindow, func(done func()) {
				dones = append(dones, done)
				mustPost(cq.PostSend(verbs.SendWR{
					Verb: verbs.READ, Remote: srvMR, RemoteOff: p * 1024,
					Local: local, Len: size, Signaled: true,
				}))
			})
			continue
		}
		pump(inboundWindow, func(done func()) {
			procDone[p] = append(procDone[p], done)
			mustPost(cq.PostSend(verbs.SendWR{
				Verb: verbs.WRITE, Data: payload,
				Remote: srvMR, RemoteOff: p * 1024,
				Inline: size <= 256,
			}))
		})
	}
	return measureMops(cl, &count)
}

// Fig4Outbound reproduces Figure 4: throughput of outbound verbs issued
// by one server machine to many clients.
func Fig4Outbound(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("Outbound verbs throughput (Mops) vs payload size — %s", spec.Name),
		Columns: []string{"size", "WR-UC-INLINE", "SEND-UD", "WRITE-UC", "READ-RC"},
	}
	for _, size := range []int{0, 4, 16, 28, 32, 60, 64, 68, 128, 160, 192, 256} {
		if size == 0 {
			size = 2
		}
		wi := outboundMops(spec, "wr-inline", size)
		sd := outboundMops(spec, "send-ud", size)
		wu := outboundMops(spec, "wr", size)
		rd := outboundMops(spec, "read", size)
		t.AddRow(fmt.Sprintf("%d", size), cell(wi), cell(sd), cell(wu), cell(rd))
	}
	t.AddNote("16 server processes, one per client; write-combining steps appear at 64 B intervals")
	return t
}

// outboundMops drives one server machine issuing to many clients.
func outboundMops(spec cluster.Spec, kind string, size int) float64 {
	cl := cluster.New(spec, 1+clientMachines, 1)
	srv := cl.Machine(0)

	var count uint64
	for p := 0; p < inboundProcs; p++ {
		m := cl.Machine(1 + p%clientMachines)
		cliMR := m.Verbs.RegisterMR(4096)
		payload := make([]byte, size)

		switch kind {
		case "wr-inline", "wr":
			sq := srv.Verbs.CreateQP(wire.UC)
			cq := m.Verbs.CreateQP(wire.UC)
			if err := verbs.Connect(sq, cq); err != nil {
				panic(err)
			}
			var dones []func()
			cliMR.Watch(0, 4096, func(off, n int) {
				count++
				if len(dones) > 0 {
					d := dones[0]
					dones = dones[1:]
					d()
				}
			})
			inline := kind == "wr-inline" && size <= 256
			pump(inboundWindow, func(done func()) {
				dones = append(dones, done)
				mustPost(sq.PostSend(verbs.SendWR{Verb: verbs.WRITE, Data: payload, Remote: cliMR, Inline: inline}))
			})

		case "send-ud":
			sq := srv.Verbs.CreateQP(wire.UD)
			cq := m.Verbs.CreateQP(wire.UD)
			// Keep RECVs replenished.
			for i := 0; i < 2*inboundWindow; i++ {
				mustPost(cq.PostRecv(cliMR, 0, 4096, 0))
			}
			var dones []func()
			cq.RecvCQ().SetHandler(func(verbs.Completion) {
				count++
				mustPost(cq.PostRecv(cliMR, 0, 4096, 0))
				if len(dones) > 0 {
					d := dones[0]
					dones = dones[1:]
					d()
				}
			})
			pump(inboundWindow, func(done func()) {
				dones = append(dones, done)
				mustPost(sq.PostSend(verbs.SendWR{Verb: verbs.SEND, Data: payload, Dest: cq, Inline: size <= 256}))
			})

		case "read":
			sq := srv.Verbs.CreateQP(wire.RC)
			cq := m.Verbs.CreateQP(wire.RC)
			if err := verbs.Connect(sq, cq); err != nil {
				panic(err)
			}
			local := srv.Verbs.RegisterMR(4096)
			n := size
			if n == 0 {
				n = 4
			}
			var dones []func()
			sq.SendCQ().SetHandler(func(verbs.Completion) {
				count++
				if len(dones) > 0 {
					d := dones[0]
					dones = dones[1:]
					d()
				}
			})
			pump(inboundWindow, func(done func()) {
				dones = append(dones, done)
				mustPost(sq.PostSend(verbs.SendWR{
					Verb: verbs.READ, Remote: cliMR, Local: local, Len: n, Signaled: true,
				}))
			})
		}
	}
	return measureMops(cl, &count)
}
