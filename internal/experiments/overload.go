package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/stats"
)

// OverloadPoint is one offered-load level of the sweep, measured with a
// fixed server capacity (one process).
type OverloadPoint struct {
	// Chains is the number of closed-loop request chains offered — the
	// load knob. One chain sustains roughly 1/RTT ops.
	Chains int `json:"chains"`
	// GoodputMops counts operations that resolved served (hit or miss)
	// during the measurement span — duplicated service and terminal
	// failures contribute nothing.
	GoodputMops float64 `json:"goodput_mops"`
	// P99US is the 99th-percentile served-operation latency in
	// microseconds.
	P99US float64 `json:"p99_us"`
	// Shed counts requests refused at poll time with busy pushback.
	Shed uint64 `json:"shed"`
	// BusyRx counts busy responses clients received.
	BusyRx uint64 `json:"busy_rx"`
	// Failed counts terminally failed operations (timeouts in the
	// baseline; deadline-on-busy would land here too).
	Failed uint64 `json:"failed"`
	// Retries counts application-level request retransmissions — the
	// retry storm the controller exists to prevent.
	Retries uint64 `json:"retries"`
}

// OverloadResult is the machine-readable output of the overload sweep
// (written as BENCH_overload.json by `make bench`).
type OverloadResult struct {
	Cluster    string          `json:"cluster"`
	Baseline   []OverloadPoint `json:"baseline"`
	Controlled []OverloadPoint `json:"controlled"`
}

// Overload sweep shape: one server process (~6 Mops of MICA service
// capacity) under 16 client machines whose closed-loop chain count
// climbs to far past saturation (~13 chains at a ~2 us RTT).
var overloadChains = []int{16, 32, 64, 128, 256}

const (
	overloadClients   = 16
	overloadKeys      = 4096
	overloadValueSize = 32
	// overloadAdmission caps the per-process queue for the controlled
	// runs: ~12 x 160 ns of queueing keeps admitted-op delay well
	// under the 5 us retry timeout, so admitted work never re-enters
	// the retry path.
	overloadAdmission = 12
)

// overloadConfig builds the per-run HERD config. The baseline has the
// pre-overload-controller behavior: blind windows, no admission, and a
// retry budget that turns queueing delay into duplicated service and
// terminal timeouts. The controlled config adds poll-time shedding and
// client AIMD; OpDeadline stays off so shed operations wait out the
// hint instead of failing.
func overloadConfig(window int, controlled bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.NS = 1
	cfg.MaxClients = overloadClients
	cfg.Window = window
	cfg.Mica = mica.Config{IndexBuckets: overloadKeys / 2, BucketSlots: 8, LogBytes: overloadKeys * 64}
	cfg.RetryTimeout = 5 * sim.Microsecond
	cfg.MaxRetries = 3
	if controlled {
		cfg.AdmissionLimit = overloadAdmission
		cfg.AdaptiveWindow = true
	}
	return cfg
}

// overloadPoint measures one (chains, controller) combination on a
// fresh cluster.
func overloadPoint(spec cluster.Spec, chains int, controlled bool) OverloadPoint {
	perClient := (chains + overloadClients - 1) / overloadClients
	cl := cluster.New(spec, 1+overloadClients, 1)
	srv, err := core.NewServer(cl.Machine(0), overloadConfig(perClient, controlled))
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < overloadKeys; k++ {
		key := kv.FromUint64(k)
		if err := srv.Preload(key, valueOf(key)); err != nil {
			panic(err)
		}
	}
	clients := make([]*core.Client, overloadClients)
	for i := range clients {
		clients[i], err = srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			panic(err)
		}
	}

	var served uint64
	lat := stats.NewLatencyRecorder(0)
	measuring := false
	stopped := false
	for i, c := range clients {
		c := c
		seq := uint64(i) * 977
		issue := func(done func()) {
			if stopped {
				return
			}
			seq++
			key := kv.FromUint64(seq % overloadKeys)
			mustPost(c.Get(key, func(r kv.Result) {
				if r.Err == nil && measuring {
					served++
					lat.Record(r.Latency)
				}
				done()
			}))
		}
		// Stagger chain starts so the opening burst is not one giant
		// synchronized doorbell.
		cl.Eng.At(sim.Time(i)*sim.Microsecond, func() { pump(perClient, issue) })
	}
	cl.Eng.RunFor(Warmup)
	measuring = true
	cl.Eng.RunFor(Span)
	measuring = false
	stopped = true

	pt := OverloadPoint{
		Chains:      chains,
		GoodputMops: stats.Throughput(served, Span),
		P99US:       float64(lat.Percentile(99)) / float64(sim.Microsecond),
		Shed:        srv.Shed(),
	}
	for _, c := range clients {
		pt.BusyRx += c.BusyResponses()
		pt.Failed += c.Failed()
		pt.Retries += c.Retries()
	}
	return pt
}

// valueOf builds key's stored value for the overload sweep.
func valueOf(key kv.Key) []byte {
	v := make([]byte, overloadValueSize)
	copy(v, key[:])
	return v
}

// Overload runs the goodput-and-tail-vs-offered-load sweep with and
// without the overload controller. The uncontrolled baseline collapses
// past saturation — queueing delay exceeds the retry timeout, so
// service capacity drains into duplicated requests and terminal
// timeouts — while the controller sheds at poll time (~zero CPU per
// rejected request), paces clients via AIMD, and keeps goodput at the
// service ceiling with bounded tails.
func Overload(spec cluster.Spec) (*Table, OverloadResult) {
	res := OverloadResult{Cluster: spec.Name}
	for _, chains := range overloadChains {
		res.Baseline = append(res.Baseline, overloadPoint(spec, chains, false))
		res.Controlled = append(res.Controlled, overloadPoint(spec, chains, true))
	}

	t := &Table{
		ID:    "overload",
		Title: fmt.Sprintf("Overload sweep, GETs on one server process — %s", spec.Name),
		Columns: []string{"chains", "base Mops", "base p99 us", "base failed",
			"ctl Mops", "ctl p99 us", "ctl shed"},
	}
	for i, b := range res.Baseline {
		c := res.Controlled[i]
		t.AddRow(fmt.Sprintf("%d", b.Chains),
			cell(b.GoodputMops), fmt.Sprintf("%.1f", b.P99US), fmt.Sprintf("%d", b.Failed),
			cell(c.GoodputMops), fmt.Sprintf("%.1f", c.P99US), fmt.Sprintf("%d", c.Shed))
	}
	t.AddNote("baseline: blind windows (up to W=%d/client), 5 us retry timeout; controlled: admission cap %d + busy pushback + client AIMD",
		overloadChains[len(overloadChains)-1]/overloadClients, overloadAdmission)
	return t, res
}

// WriteJSON writes the sweep result as indented JSON.
func (r OverloadResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
