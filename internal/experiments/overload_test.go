package experiments

import (
	"reflect"
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
)

func shrinkWindows(t *testing.T) {
	oldW, oldS := Warmup, Span
	Warmup, Span = 50*sim.Microsecond, 150*sim.Microsecond
	t.Cleanup(func() { Warmup, Span = oldW, oldS })
}

// TestOverloadGate is the acceptance gate for the overload controller:
// with admission control + busy pushback + AIMD, goodput stays within
// 90% of its peak at every past-saturation load level (including 2x
// saturation and the deepest point of the sweep), while the uncontrolled
// baseline's goodput collapses under retry-storm duplication somewhere
// past saturation.
func TestOverloadGate(t *testing.T) {
	shrinkWindows(t)

	tbl, res := Overload(cluster.Apt())
	if tbl.String() == "" {
		t.Fatal("empty overload table")
	}
	if len(res.Baseline) != len(overloadChains) || len(res.Controlled) != len(overloadChains) {
		t.Fatalf("sweep has %d/%d points, want %d",
			len(res.Baseline), len(res.Controlled), len(overloadChains))
	}

	peak := func(pts []OverloadPoint) float64 {
		best := 0.0
		for _, p := range pts {
			if p.GoodputMops > best {
				best = p.GoodputMops
			}
		}
		return best
	}
	basePeak, ctlPeak := peak(res.Baseline), peak(res.Controlled)
	if basePeak <= 0 || ctlPeak <= 0 {
		t.Fatalf("zero peak goodput: base %.2f ctl %.2f", basePeak, ctlPeak)
	}

	// One chain sustains ~1/RTT ops, so one ~6.45 Mops process saturates
	// around 13 chains; every sweep point from 32 chains on is at least
	// 2x saturation offered load.
	const pastSaturation = 32
	baseWorst := basePeak
	var shed, busy, ctlFailed, baseRetries uint64
	for i, b := range res.Baseline {
		c := res.Controlled[i]
		shed += c.Shed
		busy += c.BusyRx
		ctlFailed += c.Failed
		if b.Chains < pastSaturation {
			continue
		}
		baseRetries += b.Retries
		if b.GoodputMops < baseWorst {
			baseWorst = b.GoodputMops
		}
		// The gate: the controller holds >= 90% of peak goodput at 2x
		// saturation and every deeper load level.
		if c.GoodputMops < 0.9*ctlPeak {
			t.Errorf("controlled goodput %.2f Mops at %d chains < 90%% of %.2f peak",
				c.GoodputMops, c.Chains, ctlPeak)
		}
		if c.GoodputMops < 0.9*basePeak {
			t.Errorf("controlled goodput %.2f Mops at %d chains < 90%% of baseline peak %.2f",
				c.GoodputMops, c.Chains, basePeak)
		}
	}
	// The baseline must collapse somewhere past saturation: queueing
	// delay crosses the retry timeout and service capacity drains into
	// duplicated requests (observed worst point ~50% of peak).
	if baseWorst > 0.7*basePeak {
		t.Errorf("baseline never collapsed: worst %.2f Mops vs %.2f peak", baseWorst, basePeak)
	}
	if baseRetries == 0 {
		t.Error("baseline past saturation never retried — no storm to protect against")
	}
	if shed == 0 || busy == 0 {
		t.Errorf("controller never engaged: shed %d busy_rx %d", shed, busy)
	}
	if ctlFailed != 0 {
		t.Errorf("controlled runs terminally failed %d ops; pushback must not fail work", ctlFailed)
	}

	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"chains"`, `"goodput_mops"`, `"p99_us"`, `"shed"`, `"busy_rx"`, `"retries"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, buf.String())
		}
	}
}

// TestOverloadDeterminism replays one past-saturation point of the sweep
// in both modes: identical spec and load must reproduce byte-identical
// measurements.
func TestOverloadDeterminism(t *testing.T) {
	shrinkWindows(t)
	for _, controlled := range []bool{false, true} {
		a := overloadPoint(cluster.Apt(), 64, controlled)
		b := overloadPoint(cluster.Apt(), 64, controlled)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("controlled=%v replay diverged:\n%+v\n%+v", controlled, a, b)
		}
	}
}
