package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// Fig7Prefetch reproduces Figure 7: a WRITE/SEND echo server that
// performs N random memory accesses per request, with and without the
// request pipeline's prefetching, across core counts. Prefetching lets
// fewer cores deliver peak throughput even at N=8.
func Fig7Prefetch(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   fmt.Sprintf("Prefetching effect on throughput (Mops) — %s", spec.Name),
		Columns: []string{"cores", "N=2 no-prefetch", "N=2 prefetch", "N=8 no-prefetch", "N=8 prefetch"},
	}
	for cores := 1; cores <= 5; cores++ {
		t.AddRow(fmt.Sprintf("%d", cores),
			cell(prefetchEchoMops(spec, cores, 2, false)),
			cell(prefetchEchoMops(spec, cores, 2, true)),
			cell(prefetchEchoMops(spec, cores, 8, false)),
			cell(prefetchEchoMops(spec, cores, 8, true)))
	}
	t.AddNote("WRITE requests + UD SEND responses, 32 B; N random DRAM accesses per request")
	return t
}

// prefetchEchoMops measures a HERD-style echo (WRITE in, SEND/UD out)
// whose server does nAccesses random memory accesses per request.
func prefetchEchoMops(spec cluster.Spec, cores, nAccesses int, prefetch bool) float64 {
	cl := cluster.New(spec, 1+clientMachines, 1)
	srv := cl.Machine(0)
	payload := make([]byte, 32)
	var count uint64

	type end struct {
		udSrv *verbs.QP
		udCli *verbs.QP
		dones []func()
	}
	ends := make([]*end, inboundProcs)

	srvMR := srv.Verbs.RegisterMR(inboundProcs * 1024)
	nextReq := 0
	srvMR.Watch(0, inboundProcs*1024, func(off, _ int) {
		idx := off / 1024
		core := nextReq % cores
		nextReq++
		service := srv.CPU.RequestService(nAccesses, prefetch)
		srv.CPU.Core(core).Submit(service, func(sim.Time) {
			e := ends[idx]
			mustPost(e.udSrv.PostSend(verbs.SendWR{
				Verb: verbs.SEND, Data: payload, Dest: e.udCli, Inline: true,
			}))
		})
	})

	for i := 0; i < inboundProcs; i++ {
		i := i
		m := cl.Machine(1 + i%clientMachines)
		e := &end{}
		ends[i] = e

		reqQP := m.Verbs.CreateQP(wire.UC)
		srvQP := srv.Verbs.CreateQP(wire.UC)
		if err := verbs.Connect(reqQP, srvQP); err != nil {
			panic(err)
		}
		e.udSrv = srv.Verbs.CreateQP(wire.UD)
		e.udCli = m.Verbs.CreateQP(wire.UD)
		mr := m.Verbs.RegisterMR(1024)
		for w := 0; w < 2*inboundWindow; w++ {
			mustPost(e.udCli.PostRecv(mr, 0, 1024, 0))
		}
		e.udCli.RecvCQ().SetHandler(func(verbs.Completion) {
			count++
			mustPost(e.udCli.PostRecv(mr, 0, 1024, 0))
			if len(e.dones) > 0 {
				d := e.dones[0]
				e.dones = e.dones[1:]
				d()
			}
		})
		pump(inboundWindow, func(done func()) {
			e.dones = append(e.dones, done)
			mustPost(reqQP.PostSend(verbs.SendWR{
				Verb: verbs.WRITE, Data: payload, Remote: srvMR, RemoteOff: i * 1024, Inline: true,
			}))
		})
	}
	return measureMops(cl, &count)
}
