package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
)

// Fig12ClientScaling reproduces Figure 12: HERD throughput as the number
// of client processes grows toward the full cluster, for window sizes 4
// and 16. Throughput holds to roughly the NIC's receive-context reach
// (~260 clients), then declines as inbound QP contexts start missing;
// larger windows arrive in bursts that amortize the misses.
func Fig12ClientScaling(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig12",
		Title:   fmt.Sprintf("HERD throughput vs client processes — %s", spec.Name),
		Columns: []string{"clients", "WS=4 (Mops)", "WS=16 (Mops)"},
	}
	// Hundreds of closed-loop clients make the system burst-synchronize;
	// average over a longer steady-state window than the other figures
	// so the oscillation washes out.
	saveW, saveS := Warmup, Span
	if Warmup < 250*sim.Microsecond {
		Warmup = 250 * sim.Microsecond
	}
	if Span < 900*sim.Microsecond {
		Span = 900 * sim.Microsecond
	}
	defer func() { Warmup, Span = saveW, saveS }()
	for _, nc := range []int{50, 100, 150, 200, 260, 320, 400, 500} {
		row := []string{fmt.Sprintf("%d", nc)}
		for _, ws := range []int{4, 16} {
			cfg := defaultE2E(spec, SysHERD)
			cfg.clients = nc
			cfg.perMachine = 3 // the paper spreads 3 processes per machine
			cfg.window = ws
			cfg.getFraction = 0.95
			row = append(row, cell(runE2E(cfg).Mops))
		}
		t.AddRow(row...)
	}
	t.AddNote("16 B keys, 32 B values; server NIC receive-context cache holds ~%d QP contexts", spec.NIC.RecvCtxCap)
	return t
}

// Fig13CPUCores reproduces Figure 13: throughput as a function of server
// CPU cores for a 100%-PUT 48 B workload. HERD does real key-value work;
// the emulated systems handle only network traffic, and Pilaf-em-OPT
// additionally pays RECV reposting per request.
func Fig13CPUCores(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("Throughput (Mops) vs server CPU cores, 48 B PUTs — %s", spec.Name),
		Columns: []string{"cores", SysHERD, SysPilaf + " (PUT)", SysFaRM + " (PUT)"},
	}
	for cores := 1; cores <= 7; cores++ {
		row := []string{fmt.Sprintf("%d", cores)}
		for _, sys := range []string{SysHERD, SysPilaf, SysFaRM} {
			cfg := defaultE2E(spec, sys)
			cfg.cores = cores
			cfg.getFraction = 0
			row = append(row, cell(runE2E(cfg).Mops))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig14Skew reproduces Figure 14: HERD's per-core throughput under a
// Zipf(.99) workload versus uniform, with 6 cores. EREW partitioning
// plus the shared NIC keeps the most-loaded core within ~50% of the
// least-loaded even though key popularity is skewed by orders of
// magnitude.
func Fig14Skew(spec cluster.Spec) *Table {
	t := &Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("HERD per-core throughput (Mops), skewed vs uniform — %s", spec.Name),
		Columns: []string{"core", "Zipf(.99)", "Uniform"},
	}
	results := make(map[bool][]float64)
	var total = map[bool]float64{}
	for _, zipf := range []bool{true, false} {
		cfg := defaultE2E(spec, SysHERD)
		cfg.zipf = zipf
		cfg.keys = 1 << 20 // a large keyspace accentuates the skew
		r := runE2E(cfg)
		results[zipf] = r.PerCore
		total[zipf] = r.Mops
	}
	for core := 0; core < len(results[true]); core++ {
		t.AddRow(fmt.Sprintf("%d", core+1), cell(results[true][core]), cell(results[false][core]))
	}
	t.AddRow("total", cell(total[true]), cell(total[false]))
	maxv, minv := 0.0, 1e18
	for _, v := range results[true] {
		if v > maxv {
			maxv = v
		}
		if v < minv {
			minv = v
		}
	}
	if minv > 0 {
		t.AddNote("Zipf most/least loaded core ratio: %.2fx", maxv/minv)
	}
	return t
}
