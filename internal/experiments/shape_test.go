package experiments

import (
	"strconv"
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/sim"
)

// The shape tests assert the reproduction bands from DESIGN.md §3: not
// the paper's absolute numbers, but who wins, by roughly what factor,
// and where the crossovers fall.

func short(t *testing.T) func() {
	t.Helper()
	w, s := Warmup, Span
	Warmup = 50 * sim.Microsecond
	Span = 150 * sim.Microsecond
	return func() { Warmup, Span = w, s }
}

func fval(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

func row(t *testing.T, tbl *Table, key string) []string {
	t.Helper()
	for _, r := range tbl.Rows {
		if r[0] == key {
			return r
		}
	}
	t.Fatalf("row %q missing from %s", key, tbl.ID)
	return nil
}

func TestShapeFig2(t *testing.T) {
	defer short(t)()
	tbl := Fig2Latency(cluster.Apt())
	for _, size := range []string{"4", "32", "64"} {
		r := row(t, tbl, size)
		wrInline, write, read := fval(t, r[1]), fval(t, r[2]), fval(t, r[3])
		echo, half := fval(t, r[4]), fval(t, r[5])
		if wrInline >= write {
			t.Errorf("size %s: WR-INLINE (%.2f) should beat WRITE (%.2f)", size, wrInline, write)
		}
		if write > read*1.15 || read > write*1.15 {
			t.Errorf("size %s: WRITE (%.2f) and READ (%.2f) should be similar", size, write, read)
		}
		// "the one-way WRITE latency is about half of the READ latency"
		if half > read*0.75 {
			t.Errorf("size %s: ECHO/2 (%.2f) should be well below READ (%.2f)", size, half, read)
		}
		if echo < read*0.7 || echo > read*1.4 {
			t.Errorf("size %s: ECHO (%.2f) should be close to READ (%.2f) for small payloads", size, echo, read)
		}
		if read < 1 || read > 4 {
			t.Errorf("size %s: READ latency %.2f us outside the paper's 1-4 us band", size, read)
		}
	}
	// ECHO latency grows with payload (PIO store time).
	if e64, e256 := fval(t, row(t, tbl, "64")[4]), fval(t, row(t, tbl, "256")[4]); e256 <= e64 {
		t.Errorf("ECHO should grow with payload: 64B %.2f vs 256B %.2f", e64, e256)
	}
}

func TestShapeFig3(t *testing.T) {
	defer short(t)()
	tbl := Fig3Inbound(cluster.Apt())
	r := row(t, tbl, "32")
	wUC, rRC, wRC := fval(t, r[1]), fval(t, r[2]), fval(t, r[3])
	// "WRITEs achieve 35 Mops, about 34% higher than the maximum READ
	// throughput (26 Mops)".
	if wUC < 33 || wUC > 40 {
		t.Errorf("inbound WRITE-UC = %.1f Mops, want ~35", wUC)
	}
	if rRC < 24 || rRC > 29 {
		t.Errorf("inbound READ = %.1f Mops, want ~26", rRC)
	}
	if wUC < rRC*1.25 {
		t.Errorf("WRITE (%.1f) should beat READ (%.1f) by >25%%", wUC, rRC)
	}
	// RC and UC WRITEs nearly identical inbound.
	if wRC < wUC*0.8 {
		t.Errorf("WRITE-RC (%.1f) should be close to WRITE-UC (%.1f)", wRC, wUC)
	}
	// Bandwidth-bound decline at large payloads.
	if large := fval(t, row(t, tbl, "1024")[1]); large > 8 {
		t.Errorf("1024 B inbound WRITE = %.1f Mops, should be bandwidth-bound (<8)", large)
	}
}

func TestShapeFig4(t *testing.T) {
	defer short(t)()
	tbl := Fig4Outbound(cluster.Apt())
	small := row(t, tbl, "16")
	inline, nonInline, read := fval(t, small[1]), fval(t, small[3]), fval(t, small[4])
	if inline < 33 {
		t.Errorf("small inlined outbound WRITE = %.1f Mops, want >33", inline)
	}
	if read < 20 || read > 24 {
		t.Errorf("outbound READ = %.1f Mops, want ~22", read)
	}
	if inline <= read {
		t.Error("small inlined WRITEs must beat READs outbound")
	}
	if nonInline > read {
		t.Errorf("non-inlined WRITE (%.1f) should trail READ (%.1f) outbound", nonInline, read)
	}
	// SEND-UD drops at smaller payloads than WRITE (bigger WQE header).
	at28 := row(t, tbl, "28")
	if fval(t, at28[2]) >= fval(t, at28[1]) {
		t.Error("at 28 B, SEND-UD should already have stepped down while WR-INLINE has not")
	}
	// Inline crosses below non-inline for large payloads; the best WRITE
	// variant never falls below 50% of READ at the same size.
	at256 := row(t, tbl, "256")
	if fval(t, at256[1]) >= fval(t, at256[3]) {
		t.Error("at 256 B, non-inlined WRITE should beat inlined")
	}
	bestWrite := fval(t, at256[1])
	if v := fval(t, at256[3]); v > bestWrite {
		bestWrite = v
	}
	if read256 := fval(t, at256[4]); bestWrite < read256/2 {
		t.Errorf("best WRITE at 256 B (%.1f) below 50%% of READ (%.1f)", bestWrite, read256)
	}
}

func TestShapeFig5(t *testing.T) {
	defer short(t)()
	tbl := Fig5Echo(cluster.Apt())
	ss := row(t, tbl, "SEND/SEND")
	ww := row(t, tbl, "WR/WR")
	ws := row(t, tbl, "WR/SEND")
	// Ladder must be monotone for every combo.
	for _, r := range [][]string{ss, ww, ws} {
		prev := 0.0
		for i := 1; i < len(r); i++ {
			v := fval(t, r[i])
			if v < prev*0.98 {
				t.Errorf("%s ladder not monotone: %v", r[0], r[1:])
			}
			prev = v
		}
	}
	// Final rungs: WR/SEND ~26, SEND/SEND ~21 (>3/4 of inbound READ 26).
	wsOpt, ssOpt := fval(t, ws[4]), fval(t, ss[4])
	if wsOpt < 24 || wsOpt > 29 {
		t.Errorf("optimized WR/SEND echo = %.1f Mops, want ~26", wsOpt)
	}
	if ssOpt < 19 || ssOpt > 23 {
		t.Errorf("optimized SEND/SEND echo = %.1f Mops, want ~21", ssOpt)
	}
	if ssOpt < 26*0.75 {
		t.Errorf("optimized SEND/SEND (%.1f) should exceed 3/4 of peak READ throughput", ssOpt)
	}
	// Optimizations matter: basic is a small fraction of optimized.
	if basic := fval(t, ws[1]); basic > wsOpt*0.5 {
		t.Errorf("basic WR/SEND (%.1f) should be well below optimized (%.1f)", basic, wsOpt)
	}
}

func TestShapeFig6(t *testing.T) {
	defer short(t)()
	tbl := Fig6AllToAll(cluster.Apt())
	n16 := row(t, tbl, "16")
	in, outW, outS := fval(t, n16[1]), fval(t, n16[2]), fval(t, n16[3])
	if in < 30 {
		t.Errorf("inbound WRITE at N=16 = %.1f Mops; should scale (want >30)", in)
	}
	if outS < 24 {
		t.Errorf("outbound SEND-UD at N=16 = %.1f Mops; should scale (want >24)", outS)
	}
	// Outbound WRITE collapses: the paper reports 21% of peak at N=16.
	peakOut := fval(t, row(t, tbl, "8")[2])
	if outW > peakOut*0.45 {
		t.Errorf("outbound WRITE at N=16 (%.1f) should collapse below 45%% of its N=8 value (%.1f)",
			outW, peakOut)
	}
}

func TestShapeFig7(t *testing.T) {
	defer short(t)()
	tbl := Fig7Prefetch(cluster.Apt())
	five := row(t, tbl, "5")
	n2np, n2p, n8np, n8p := fval(t, five[1]), fval(t, five[2]), fval(t, five[3]), fval(t, five[4])
	if n2p <= n2np || n8p <= n8np {
		t.Error("prefetching must increase throughput")
	}
	// "5 cores can deliver the peak throughput even with N = 8".
	if n8p < 24 {
		t.Errorf("N=8 prefetch at 5 cores = %.1f Mops; want near peak (>24)", n8p)
	}
	if n8np > n8p/2 {
		t.Errorf("N=8 no-prefetch (%.1f) should be less than half of prefetch (%.1f)", n8np, n8p)
	}
}

func TestShapeFig9(t *testing.T) {
	defer short(t)()
	tbl := Fig9Throughput()
	apt5 := tbl.Rows[0] // Apt, 5% PUT
	pilaf, farmEm, farmVar, herd := fval(t, apt5[2]), fval(t, apt5[3]), fval(t, apt5[4]), fval(t, apt5[5])
	if herd < 24 || herd > 30 {
		t.Errorf("HERD read-intensive = %.1f Mops, want ~26", herd)
	}
	// "over 2X higher than FaRM-KV and Pilaf" (vs Pilaf and FaRM-VAR;
	// inline FaRM-em is closer at 32 B values).
	if herd < 2*pilaf {
		t.Errorf("HERD (%.1f) should be >2x Pilaf (%.1f)", herd, pilaf)
	}
	if herd < 1.7*farmVar {
		t.Errorf("HERD (%.1f) should be ~2x FaRM-em-VAR (%.1f)", herd, farmVar)
	}
	if farmEm <= pilaf {
		t.Errorf("FaRM-em (%.1f) should beat Pilaf (%.1f) on GETs", farmEm, pilaf)
	}
	// HERD throughput is workload-insensitive for 48 B items.
	apt100 := tbl.Rows[2]
	if h100 := fval(t, apt100[5]); h100 < herd*0.9 {
		t.Errorf("HERD 100%% PUT (%.1f) should match read-intensive (%.1f)", h100, herd)
	}
	// PUT throughput exceeds GET throughput for the emulated systems
	// (the paper's surprising observation).
	if p100 := fval(t, apt100[2]); p100 <= pilaf {
		t.Errorf("Pilaf 100%% PUT (%.1f) should exceed its GET throughput (%.1f)", p100, pilaf)
	}
	// Susitna (PCIe 2.0) tops out lower for every system.
	sus5 := tbl.Rows[3]
	if sHerd := fval(t, sus5[5]); sHerd >= herd {
		t.Errorf("Susitna HERD (%.1f) should trail Apt (%.1f)", sHerd, herd)
	}
}

func TestShapeFig10(t *testing.T) {
	defer short(t)()
	tbl := Fig10ValueSize(cluster.Apt())
	// HERD >= native READ throughput (26) up to 60 B values.
	for _, sv := range []string{"4", "8", "16", "32"} {
		if h := fval(t, row(t, tbl, sv)[1]); h < 24 {
			t.Errorf("HERD at SV=%s = %.1f Mops; want >=24 (near native READ rate)", sv, h)
		}
	}
	// FaRM-em declines fastest with value size (READ grows as 6*(16+SV)).
	r32, r256 := row(t, tbl, "32"), row(t, tbl, "256")
	farmDrop := fval(t, r32[3]) / fval(t, r256[3])
	herdDrop := fval(t, r32[1]) / fval(t, r256[1])
	if farmDrop < herdDrop {
		t.Errorf("FaRM-em should decline faster than HERD (drops: farm %.1fx, herd %.1fx)",
			farmDrop, herdDrop)
	}
	// At 1 KB values HERD, Pilaf and FaRM-em-VAR converge (all
	// bandwidth-bound); inline FaRM-em is off on its own, strangled by
	// 6 KB+ neighborhood READs.
	r1000 := row(t, tbl, "1000")
	herd1000, pilaf1000, farm1000, farmVar1000 :=
		fval(t, r1000[1]), fval(t, r1000[2]), fval(t, r1000[3]), fval(t, r1000[4])
	lo, hi := herd1000, herd1000
	for _, v := range []float64{pilaf1000, farmVar1000} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.0*lo {
		t.Errorf("at 1 KB values HERD/Pilaf/FaRM-VAR should converge; got %.1f/%.1f/%.1f",
			herd1000, pilaf1000, farmVar1000)
	}
	if farm1000 >= lo {
		t.Errorf("inline FaRM-em at 1 KB (%.1f) should be the slowest (others >= %.1f)", farm1000, lo)
	}
}

func TestShapeFig11(t *testing.T) {
	defer short(t)()
	tbl := Fig11LatencyThroughput(cluster.Apt())
	type point struct{ mops, mean float64 }
	series := map[string][]point{}
	for _, r := range tbl.Rows {
		series[r[0]] = append(series[r[0]], point{fval(t, r[2]), fval(t, r[3])})
	}
	// kneeLatency: the mean latency at the first load level reaching 95%
	// of the system's peak throughput (the paper compares latencies "at
	// their peak throughput").
	knee := func(sys string) point {
		pts := series[sys]
		max := 0.0
		for _, p := range pts {
			if p.mops > max {
				max = p.mops
			}
		}
		for _, p := range pts {
			if p.mops >= 0.95*max {
				return p
			}
		}
		return pts[len(pts)-1]
	}
	herd := knee(SysHERD)
	// "26 Mops with ~5 us average latency".
	if herd.mops < 24 {
		t.Errorf("HERD peak = %.1f Mops, want ~26", herd.mops)
	}
	if herd.mean < 1.5 || herd.mean > 8 {
		t.Errorf("HERD latency at peak = %.1f us, want ~2-5", herd.mean)
	}
	// HERD's latency at its (much higher) peak is well below the
	// READ-based systems' latency at theirs ("over 2X lower than Pilaf
	// and FaRM-KV at their peak throughput").
	for _, sys := range []string{SysPilaf, SysFaRMVar} {
		p := knee(sys)
		if p.mean < herd.mean*1.5 {
			t.Errorf("%s knee latency %.1f us should be >1.5x HERD's %.1f us", sys, p.mean, herd.mean)
		}
		if p.mops > herd.mops/1.7 {
			t.Errorf("%s peak (%.1f) should be well below HERD's (%.1f)", sys, p.mops, herd.mops)
		}
	}
}

func TestShapeFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("client-scaling sweep is slow")
	}
	defer short(t)()
	tbl := Fig12ClientScaling(cluster.Apt())
	at260 := fval(t, row(t, tbl, "260")[1])
	at500w4 := fval(t, row(t, tbl, "500")[1])
	at500w16 := fval(t, row(t, tbl, "500")[2])
	if at260 < 24 {
		t.Errorf("HERD at 260 clients = %.1f Mops; should still be at peak", at260)
	}
	if at500w4 > at260*0.75 {
		t.Errorf("HERD WS=4 at 500 clients (%.1f) should decline markedly from 260 (%.1f)",
			at500w4, at260)
	}
	if at500w16 < at500w4*1.2 {
		t.Errorf("WS=16 (%.1f) should hold up much better than WS=4 (%.1f) at 500 clients",
			at500w16, at500w4)
	}
}

func TestShapeFig13(t *testing.T) {
	defer short(t)()
	tbl := Fig13CPUCores(cluster.Apt())
	one := row(t, tbl, "1")
	herd1 := fval(t, one[1])
	// "with a uniform workload and using only a single core, HERD can
	// deliver 6.3 Mops".
	if herd1 < 5.3 || herd1 > 7.6 {
		t.Errorf("HERD 1-core = %.1f Mops, want ~6.3", herd1)
	}
	// Pilaf needs the most cores (RECV reposting).
	if pilaf1 := fval(t, one[2]); pilaf1 >= herd1 {
		t.Errorf("Pilaf per-core PUT (%.1f) should trail HERD (%.1f)", pilaf1, herd1)
	}
	// "HERD delivers over 95% of its maximum throughput with 5 cores".
	herd5, herd7 := fval(t, row(t, tbl, "5")[1]), fval(t, row(t, tbl, "7")[1])
	if herd5 < herd7*0.95 {
		t.Errorf("HERD 5-core (%.1f) should be >=95%% of 7-core (%.1f)", herd5, herd7)
	}
}

func TestShapeFig14(t *testing.T) {
	defer short(t)()
	tbl := Fig14Skew(cluster.Apt())
	total := row(t, tbl, "total")
	zipf, uniform := fval(t, total[1]), fval(t, total[2])
	// "delivering its maximum performance even when the Zipf parameter
	// is .99".
	if zipf < uniform*0.9 {
		t.Errorf("Zipf total (%.1f) should match uniform (%.1f)", zipf, uniform)
	}
	// Most-loaded core within ~2x of least-loaded.
	lo, hi := 1e18, 0.0
	for _, r := range tbl.Rows {
		if r[0] == "total" {
			continue
		}
		v := fval(t, r[1])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.2*lo {
		t.Errorf("per-core Zipf skew %.2fx exceeds the paper's ~1.5x", hi/lo)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := Table1Verbs()
	want := map[string][3]string{
		"SEND/RECV": {"yes", "yes", "yes"},
		"WRITE":     {"yes", "yes", "no"},
		"READ":      {"yes", "no", "no"},
	}
	for _, r := range tbl.Rows {
		w := want[r[0]]
		if r[1] != w[0] || r[2] != w[1] || r[3] != w[2] {
			t.Errorf("table1 row %v, want %v", r, w)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 3)
	s := tbl.String()
	for _, want := range []string{"== x: t ==", "a  bb", "1  2", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q in:\n%s", want, s)
		}
	}
}
