package experiments

import (
	"testing"

	"herdkv/internal/cluster"
)

// Susitna-specific claims from Section 5 and Figure 10's lower panel.

func TestShapeSusitnaFig10(t *testing.T) {
	defer short(t)()
	tbl := Fig10ValueSize(cluster.Susitna())
	// "FaRM-em saturates the PCIe 2.0 bandwidth on Susitna with 4 byte
	// values": its throughput at SV=4 is already well below Apt's READ
	// ceiling and strictly declines.
	f4 := fval(t, row(t, tbl, "4")[3])
	f32 := fval(t, row(t, tbl, "32")[3])
	if f4 > 24 {
		t.Errorf("FaRM-em at SV=4 on Susitna = %.1f Mops; should already be PCIe-bound (<24)", f4)
	}
	if f32 >= f4 {
		t.Errorf("FaRM-em should decline from SV=4 (%.1f) to SV=32 (%.1f)", f4, f32)
	}
	// "HERD achieves high performance for up to 32 byte values on
	// Susitna" then declines with the PIO limit.
	h8 := fval(t, row(t, tbl, "8")[1])
	h128 := fval(t, row(t, tbl, "128")[1])
	if h8 < 17 {
		t.Errorf("HERD at SV=8 on Susitna = %.1f Mops, want ~19-26", h8)
	}
	if h128 >= h8 {
		t.Errorf("HERD should decline past the Susitna PIO limit: %.1f vs %.1f", h128, h8)
	}
}

func TestShapeSusitnaBelowApt(t *testing.T) {
	defer short(t)()
	// Every system tops out lower on Susitna (PCIe 2.0, 40 Gbps RoCE).
	for _, sys := range AllSystems {
		apt := runE2E(defaultE2E(cluster.Apt(), sys)).Mops
		sus := runE2E(defaultE2E(cluster.Susitna(), sys)).Mops
		if sus > apt*1.05 {
			t.Errorf("%s: Susitna (%.1f) should not beat Apt (%.1f)", sys, sus, apt)
		}
	}
}

func TestShapeSusitnaLatencyHigher(t *testing.T) {
	defer short(t)()
	apt := Fig2Latency(cluster.Apt())
	sus := Fig2Latency(cluster.Susitna())
	aptRead := fval(t, row(t, apt, "32")[3])
	susRead := fval(t, row(t, sus, "32")[3])
	if susRead <= aptRead {
		t.Errorf("Susitna READ latency (%.2f) should exceed Apt's (%.2f)", susRead, aptRead)
	}
}
