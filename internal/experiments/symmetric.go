package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/farm"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/workload"
)

// SymmetricStudy evaluates the deployment question Section 2.3 raises
// but leaves open: symmetric FaRM (every machine both serves a shard
// and drives load; aggregate READ capacity grows with the cluster)
// versus client-server HERD (one dedicated server; the other machines
// only drive load). For each total machine count it reports aggregate
// read-intensive throughput and mean per-machine server-side CPU
// utilization.
func SymmetricStudy(spec cluster.Spec) *Table {
	t := &Table{
		ID:    "symmetric",
		Title: fmt.Sprintf("Symmetric FaRM vs client-server HERD, 48 B read-intensive — %s", spec.Name),
		Columns: []string{
			"machines", "FaRM-sym Mops", "FaRM-sym srvCPU", "HERD Mops", "HERD srvCPU",
		},
	}
	for _, n := range []int{4, 8, 12, 16} {
		fm, fc := symmetricFarmPoint(spec, n)
		hm, hc := herdPoint(spec, n)
		t.AddRow(fmt.Sprintf("%d", n), cell(fm), fmt.Sprintf("%.0f%%", fc*100),
			cell(hm), fmt.Sprintf("%.0f%%", hc*100))
	}
	t.AddNote("srvCPU: busy fraction of server-side cores, averaged over the machines that run them")
	t.AddNote("symmetric aggregate grows with the cluster (every NIC serves READs); HERD is bound by its one server but spends those machines' cycles nowhere else")
	return t
}

const symKeys = 16 * 1024

// symmetricFarmPoint runs n symmetric machines, each also driving load.
func symmetricFarmPoint(spec cluster.Spec, n int) (mops float64, srvCPU float64) {
	cl := cluster.New(spec, n, 1)
	cfg := farm.Config{
		Mode: farm.InlineMode, Buckets: symKeys * 4, ValueSize: 32,
		ExtentBytes: 1 << 22, H: 6, Cores: 2, Window: 4,
	}
	sym, err := farm.NewSymmetric(cl, n, cfg)
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < symKeys; k++ {
		key := kv.FromUint64(k)
		if err := sym.Preload(key, workload.ExpectedValue(key, 32)); err != nil {
			panic(err)
		}
	}
	var completed uint64
	for m := 0; m < n; m++ {
		m := m
		gen := workload.NewGenerator(workload.ReadIntensive(symKeys, 32, int64(m+1)))
		pump(4, func(done func()) {
			op := gen.Next()
			if op.IsGet {
				sym.Get(m, op.Key, func(farm.Result) { completed++; done() })
			} else {
				sym.Put(m, op.Key, workload.ExpectedValue(op.Key, 32),
					func(farm.Result) { completed++; done() })
			}
		})
	}
	cl.Eng.RunFor(Warmup)
	start := completed
	startBusy := make([]sim.Time, n)
	for m := 0; m < n; m++ {
		startBusy[m] = machineServerBusy(cl, m, cfg.Cores)
	}
	cl.Eng.RunFor(Span)
	var busy sim.Time
	for m := 0; m < n; m++ {
		busy += machineServerBusy(cl, m, cfg.Cores) - startBusy[m]
	}
	mops = float64(completed-start) / Span.Seconds() / 1e6
	srvCPU = float64(busy) / float64(Span) / float64(n*cfg.Cores)
	return mops, srvCPU
}

func machineServerBusy(cl *cluster.Cluster, m, cores int) sim.Time {
	var total sim.Time
	for c := 0; c < cores; c++ {
		total += cl.Machine(m).CPU.Core(c).BusyTime()
	}
	return total
}

// herdPoint runs client-server HERD on the same machine budget: one
// server plus n-1 client machines (3 client processes each).
func herdPoint(spec cluster.Spec, n int) (mops float64, srvCPU float64) {
	cl := cluster.New(spec, n, 1)
	nClients := (n - 1) * 3
	hcfg := core.DefaultConfig()
	hcfg.NS = 6
	hcfg.MaxClients = nClients
	hcfg.Mica = mica.Config{IndexBuckets: symKeys / 4, BucketSlots: 8, LogBytes: symKeys * 64}
	srv, err := core.NewServer(cl.Machine(0), hcfg)
	if err != nil {
		panic(err)
	}
	for k := uint64(0); k < symKeys; k++ {
		key := kv.FromUint64(k)
		if err := srv.Preload(key, workload.ExpectedValue(key, 32)); err != nil {
			panic(err)
		}
	}
	var completed uint64
	for i := 0; i < nClients; i++ {
		c, err := srv.ConnectClient(cl.Machine(1 + i/3))
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(workload.ReadIntensive(symKeys, 32, int64(i+1)))
		pump(hcfg.Window, func(done func()) {
			op := gen.Next()
			if op.IsGet {
				c.Get(op.Key, func(core.Result) { completed++; done() })
			} else {
				c.Put(op.Key, workload.ExpectedValue(op.Key, 32),
					func(core.Result) { completed++; done() })
			}
		})
	}
	cl.Eng.RunFor(Warmup)
	start := completed
	startBusy := machineServerBusy(cl, 0, hcfg.NS)
	cl.Eng.RunFor(Span)
	busy := machineServerBusy(cl, 0, hcfg.NS) - startBusy
	mops = float64(completed-start) / Span.Seconds() / 1e6
	srvCPU = float64(busy) / float64(Span) / float64(hcfg.NS)
	return mops, srvCPU
}
