package experiments

import (
	"strings"
	"testing"

	"herdkv/internal/cluster"
)

func TestSymmetricStudyShape(t *testing.T) {
	defer short(t)()
	tbl := SymmetricStudy(cluster.Apt())
	farm4 := fval(t, row(t, tbl, "4")[1])
	farm16 := fval(t, row(t, tbl, "16")[1])
	herd4 := fval(t, row(t, tbl, "4")[3])
	herd16 := fval(t, row(t, tbl, "16")[3])

	// Symmetric FaRM's aggregate grows with machines; HERD saturates at
	// its single server.
	if farm16 < farm4*2 {
		t.Errorf("symmetric FaRM should scale: %.1f at 4 vs %.1f at 16", farm4, farm16)
	}
	if herd16 > 32 {
		t.Errorf("HERD should be server-bound (~27 Mops), got %.1f", herd16)
	}
	if herd4 <= farm4 {
		t.Errorf("at small clusters HERD (%.1f) should beat symmetric FaRM (%.1f)", herd4, farm4)
	}
	if farm16 <= herd16 {
		t.Errorf("at 16 machines symmetric FaRM (%.1f) should overtake one HERD server (%.1f)",
			farm16, herd16)
	}
	// Section 2.3's CPU point: the symmetric READ-based design "uses
	// less CPU" on the serving side.
	farmCPU := cpuPct(t, row(t, tbl, "16")[2])
	herdCPU := cpuPct(t, row(t, tbl, "16")[4])
	if farmCPU >= herdCPU/4 {
		t.Errorf("symmetric FaRM server CPU (%.0f%%) should be far below HERD's (%.0f%%)",
			farmCPU, herdCPU)
	}
}

func cpuPct(t *testing.T, cell string) float64 {
	t.Helper()
	return fval(t, strings.TrimSuffix(cell, "%"))
}
