// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated clusters. Each experiment returns a Table
// whose rows correspond to the paper's plotted series, so the output can
// be compared shape-for-shape against the original.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string // e.g. "fig4"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an explanatory footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintCSV renders the table as CSV (header row first, notes as
// comment lines) for plotting pipelines.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	quote := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	fmt.Fprintln(w, quote(t.Columns))
	for _, row := range t.Rows {
		fmt.Fprintln(w, quote(row))
	}
	fmt.Fprintln(w)
}

// cell formats a float with sensible precision for Mops / microseconds.
func cell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}
