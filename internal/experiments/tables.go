package experiments

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// Table1Verbs reproduces Table 1: operations supported by each transport
// type, as enforced by the verbs layer.
func Table1Verbs() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Operations supported by each connection type",
		Columns: []string{"verb", "RC", "UC", "UD"},
	}
	mark := func(tr wire.Transport, v verbs.Verb) string {
		if verbs.Supports(tr, v) {
			return "yes"
		}
		return "no"
	}
	rows := []struct {
		name string
		v    verbs.Verb
	}{
		{"SEND/RECV", verbs.SEND},
		{"WRITE", verbs.WRITE},
		{"READ", verbs.READ},
	}
	for _, r := range rows {
		t.AddRow(r.name, mark(wire.RC, r.v), mark(wire.UC, r.v), mark(wire.UD, r.v))
	}
	t.AddNote("UC does not support READs, and UD does not support RDMA at all")
	return t
}

// Table2Clusters reproduces Table 2: the evaluation clusters.
func Table2Clusters() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Cluster configuration",
		Columns: []string{"name", "nodes", "hardware"},
	}
	for _, s := range cluster.Table2() {
		t.AddRow(s.Name, fmt.Sprintf("%d", s.MaxNodes), s.CPUDesc+". "+s.NICDesc)
	}
	return t
}
