// Package farm implements the FaRM-KV emulations of Section 5.1.2:
// FaRM-em (values inlined in the hopscotch table; a GET is a single READ
// of 6*(SK+SV) bytes) and FaRM-em-VAR (out-of-table values; a GET READs
// 6*(SK+SP) bytes of neighborhood, then the value).
//
// PUTs follow FaRM's messaging design: the client WRITEs its request
// into a per-client circular buffer on the server (over UC, as the paper
// does for higher throughput), the server CPU polls the buffer, applies
// the insert, and notifies the client with a WRITE back — so both
// directions of a PUT are WRITEs, unlike HERD's WRITE/SEND hybrid.
package farm

import (
	"encoding/binary"
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/hopscotch"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// Mode selects the FaRM-em variant.
type Mode int

// Variants compared in the paper.
const (
	InlineMode Mode = iota // FaRM-em
	VarMode                // FaRM-em-VAR
)

// SlotSize is the PUT request slot size (1 KB items, as in HERD).
const SlotSize = 1024

const (
	keyTail = kv.KeySize
	lenTail = keyTail + 2

	// lenDelete in a request slot's LEN field marks a DELETE (values are
	// bounded well below it).
	lenDelete = 0xffff
)

// statusOf maps a served outcome onto the unified vocabulary.
func statusOf(ok bool) kv.Status {
	if ok {
		return kv.StatusHit
	}
	return kv.StatusMiss
}

// Config parameterizes a FaRM-KV deployment.
type Config struct {
	Mode Mode
	// Buckets is the hopscotch home-bucket count.
	Buckets int
	// ValueSize is the fixed inline value size (InlineMode only).
	ValueSize int
	// ExtentBytes sizes the out-of-table value extent (VarMode).
	ExtentBytes int
	// H is the hopscotch neighborhood (the paper's 6).
	H int
	// Cores is the number of server cores servicing PUTs.
	Cores int
	// Window is the per-client outstanding-op limit.
	Window int
}

// DefaultConfig returns a test-scale FaRM-em deployment.
func DefaultConfig() Config {
	return Config{
		Mode: InlineMode, Buckets: 1 << 14, ValueSize: 32,
		ExtentBytes: 1 << 24, H: hopscotch.DefaultH, Cores: 6, Window: 4,
	}
}

// Server is the FaRM-KV server.
type Server struct {
	cfg      Config
	machine  *cluster.Machine
	table    *hopscotch.Table
	tableMR  *verbs.MR
	extentMR *verbs.MR

	clients []*Client
	puts    uint64
	deletes uint64
}

// NewServer initializes FaRM-KV on machine m.
func NewServer(m *cluster.Machine, cfg Config) (*Server, error) {
	if cfg.Cores < 1 || cfg.Cores > m.CPU.Cores() {
		return nil, fmt.Errorf("farm: Cores=%d out of range", cfg.Cores)
	}
	if cfg.H < 1 {
		cfg.H = hopscotch.DefaultH
	}
	s := &Server{cfg: cfg, machine: m}
	switch cfg.Mode {
	case InlineMode:
		slot := kv.KeySize + cfg.ValueSize
		s.tableMR = m.Verbs.RegisterMR((cfg.Buckets + cfg.H) * slot)
		s.table = hopscotch.NewInline(s.tableMR.Bytes(), cfg.Buckets, cfg.ValueSize, cfg.H)
	case VarMode:
		s.tableMR = m.Verbs.RegisterMR((cfg.Buckets + cfg.H) * hopscotch.PtrSlotSize)
		s.extentMR = m.Verbs.RegisterMR(cfg.ExtentBytes)
		s.table = hopscotch.NewVar(s.tableMR.Bytes(), s.extentMR.Bytes(), cfg.Buckets, cfg.H)
	default:
		return nil, fmt.Errorf("farm: unknown mode %d", cfg.Mode)
	}
	return s, nil
}

// Table exposes the hopscotch table (tests, preloading).
func (s *Server) Table() *hopscotch.Table { return s.table }

// Insert loads a key server-side without network traffic.
func (s *Server) Insert(key kv.Key, value []byte) error {
	return s.table.Insert(key, value)
}

// Puts reports served PUTs.
func (s *Server) Puts() uint64 { return s.puts }

// Result is the outcome of one client operation — an alias of the
// unified kv.Result. Result.Reads counts READ verbs issued for a GET:
// 1 inline, 2 out-of-table.
type Result = kv.Result

type pendingPut struct {
	key      kv.Key
	isDelete bool
	issuedAt sim.Time
	cb       func(Result)
}

// Client is one FaRM-KV client.
type Client struct {
	srv     *Server
	id      int
	machine *cluster.Machine

	rcQP  *verbs.QP // GET READs
	ucQP  *verbs.QP // PUT request WRITEs
	srvUC *verbs.QP // server->client notification WRITEs

	reqMR   *verbs.MR // server-side per-client circular buffer
	respMR  *verbs.MR // client-side notification region (1 B per window slot)
	scratch *verbs.MR

	seq         int
	pendingPuts []*pendingPut
	readWaiters []func()
	cqArmed     bool
	readSeq     uint64

	inflight int
	waiting  []func()

	issued, completed uint64
}

// Client implements the shared client interface.
var _ kv.KV = (*Client)(nil)

// Inflight returns the number of outstanding operations.
func (c *Client) Inflight() int { return c.inflight }

// Issued and Completed report operation counts.
func (c *Client) Issued() uint64    { return c.issued }
func (c *Client) Completed() uint64 { return c.completed }

// Failed is always zero: FaRM-em has no retry machinery, so no
// operation resolves terminally unserved (errored queue pairs panic
// instead — crash recovery is unsupported territory here).
func (c *Client) Failed() uint64 { return 0 }

// ConnectClient attaches a client on machine m.
func (s *Server) ConnectClient(m *cluster.Machine) (*Client, error) {
	c := &Client{srv: s, id: len(s.clients), machine: m}
	s.clients = append(s.clients, c)

	c.rcQP = m.Verbs.CreateQP(wire.RC)
	srvRC := s.machine.Verbs.CreateQP(wire.RC)
	if err := verbs.Connect(c.rcQP, srvRC); err != nil {
		return nil, err
	}
	c.ucQP = m.Verbs.CreateQP(wire.UC)
	srvUCin := s.machine.Verbs.CreateQP(wire.UC)
	if err := verbs.Connect(c.ucQP, srvUCin); err != nil {
		return nil, err
	}
	// Separate UC pair for server->client notifications (outbound WRITEs
	// from the server: FaRM's scaling liability, Figure 6).
	c.srvUC = s.machine.Verbs.CreateQP(wire.UC)
	cliUCresp := m.Verbs.CreateQP(wire.UC)
	if err := verbs.Connect(c.srvUC, cliUCresp); err != nil {
		return nil, err
	}

	c.reqMR = s.machine.Verbs.RegisterMR(s.cfg.Window * SlotSize)
	c.respMR = m.Verbs.RegisterMR(s.cfg.Window)
	scratchSlot := s.neighborhoodBytes() + 1024
	c.scratch = m.Verbs.RegisterMR((s.cfg.Window + 1) * scratchSlot)

	c.reqMR.Watch(0, s.cfg.Window*SlotSize, func(off, n int) { s.onPutLanded(c, off, n) })
	c.respMR.Watch(0, s.cfg.Window, func(off, n int) { c.onNotify(off) })
	return c, nil
}

func (s *Server) neighborhoodBytes() int {
	if s.cfg.Mode == InlineMode {
		return s.cfg.H * (kv.KeySize + s.cfg.ValueSize)
	}
	return s.cfg.H * hopscotch.PtrSlotSize
}

// onPutLanded polls up a PUT request from client c's circular buffer.
func (s *Server) onPutLanded(c *Client, off, n int) {
	end := off + n
	if end%SlotSize != 0 {
		return
	}
	slot := end/SlotSize - 1
	raw := c.reqMR.Bytes()[slot*SlotSize : (slot+1)*SlotSize]
	var key kv.Key
	copy(key[:], raw[SlotSize-keyTail:])
	if key.IsZero() {
		return
	}
	vlen := int(binary.LittleEndian.Uint16(raw[SlotSize-lenTail : SlotSize-keyTail]))
	isDelete := vlen == lenDelete
	var value []byte
	if !isDelete {
		value = append([]byte(nil), raw[SlotSize-lenTail-vlen:SlotSize-lenTail]...)
	}

	// Per-client core affinity keeps each client's PUTs ordered.
	core := c.id % s.cfg.Cores
	// CPU: poll + response post; the emulated server does no
	// data-structure work on its own dime (Section 5.1), so the
	// functional insert is charged only prefetched-access time.
	p := s.machine.CPU.Params()
	service := p.PollCheck + p.PostSend + 2*p.PrefetchedAccess

	s.machine.CPU.Core(core).Submit(service, func(sim.Time) {
		status := byte(1)
		if isDelete {
			if !s.table.Delete(key) {
				status = 2
			}
			s.deletes++
		} else if err := s.table.Insert(key, value); err != nil {
			status = 2
		}
		s.puts++
		// Free the slot.
		for i := SlotSize - lenTail; i < SlotSize; i++ {
			raw[i] = 0
		}
		// Notify the client: a 1-byte WRITE (FaRM's completion path).
		mustPost(c.srvUC.PostSend(verbs.SendWR{
			Verb:      verbs.WRITE,
			Data:      []byte{status},
			Remote:    c.respMR,
			RemoteOff: slot,
			Inline:    true,
		}))
	})
}

// onNotify completes the oldest outstanding PUT or DELETE (per-client
// order is preserved end to end: one UC QP, one core, one notification
// QP). The notification byte carries the outcome: 1 applied, 2 not
// (store rejection, or DELETE of an absent key).
func (c *Client) onNotify(off int) {
	if len(c.pendingPuts) == 0 {
		return
	}
	op := c.pendingPuts[0]
	c.pendingPuts = c.pendingPuts[1:]
	ok := c.respMR.Bytes()[off] == 1
	c.completed++
	c.finishOp()
	if op.cb != nil {
		op.cb(Result{Key: op.key, Status: statusOf(ok), Latency: c.now() - op.issuedAt})
	}
}

func (c *Client) now() sim.Time { return c.machine.Verbs.NIC().Engine().Now() }

func (c *Client) startOp(fn func()) {
	if c.inflight >= c.srv.cfg.Window {
		c.waiting = append(c.waiting, fn)
		return
	}
	c.inflight++
	fn()
}

func (c *Client) finishOp() {
	c.inflight--
	if len(c.waiting) > 0 && c.inflight < c.srv.cfg.Window {
		next := c.waiting[0]
		c.waiting = c.waiting[1:]
		c.inflight++
		next()
	}
}

// Put WRITEs the request into the server's circular buffer and waits for
// the notification WRITE.
func (c *Client) Put(key kv.Key, value []byte, cb func(Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	if c.srv.cfg.Mode == InlineMode && len(value) != c.srv.cfg.ValueSize {
		return hopscotch.ErrValueSize
	}
	if len(value) == 0 || len(value) > SlotSize-int(lenTail) {
		return hopscotch.ErrValueSize
	}
	c.writeReq(key, append([]byte(nil), value...), uint16(len(value)), false, cb)
	return nil
}

// Delete removes key via the circular-buffer request path (a
// length-sentinel request the server CPU applies to the hopscotch
// table). Result.Status reports hit (removed) or miss (absent).
func (c *Client) Delete(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	c.writeReq(key, nil, lenDelete, true, cb)
	return nil
}

// writeReq WRITEs one request — a PUT body or the DELETE sentinel —
// into the server's circular buffer.
func (c *Client) writeReq(key kv.Key, val []byte, vlen uint16, isDelete bool, cb func(Result)) {
	c.startOp(func() {
		c.issued++
		slot := c.seq % c.srv.cfg.Window
		c.seq++
		payload := make([]byte, len(val)+2+kv.KeySize)
		copy(payload, val)
		binary.LittleEndian.PutUint16(payload[len(val):], vlen)
		copy(payload[len(val)+2:], key[:])

		c.pendingPuts = append(c.pendingPuts, &pendingPut{key: key, isDelete: isDelete, issuedAt: c.now(), cb: cb})
		mustPost(c.ucQP.PostSend(verbs.SendWR{
			Verb:      verbs.WRITE,
			Data:      payload,
			Remote:    c.reqMR,
			RemoteOff: (slot+1)*SlotSize - len(payload),
			Inline:    len(payload) <= c.machine.Verbs.NIC().Params().InlineMax,
		}))
	})
}

// Get READs the key's neighborhood (and, out-of-table, the value). The
// server CPU is never involved.
func (c *Client) Get(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	c.startOp(func() { c.doGet(key, cb) })
	return nil
}

func (c *Client) doGet(key kv.Key, cb func(Result)) {
	start := c.now()
	c.issued++
	res := Result{Key: key, IsGet: true}
	scratchSlot := c.srv.neighborhoodBytes() + 1024
	lo := (int(c.readSeq) % (c.srv.cfg.Window + 1)) * scratchSlot
	c.readSeq++

	finish := func() {
		res.Latency = c.now() - start
		if res.Status == kv.StatusUnknown {
			res.Status = kv.StatusMiss
		}
		c.completed++
		c.finishOp()
		if cb != nil {
			cb(res)
		}
	}

	off, n := c.srv.table.NeighborhoodOffset(key)
	res.Reads++
	err := c.rcQP.PostSend(verbs.SendWR{
		Verb: verbs.READ, Remote: c.srv.tableMR, RemoteOff: off,
		Local: c.scratch, LocalOff: lo, Len: n, Signaled: true,
	})
	if err != nil {
		finish()
		return
	}
	c.awaitRead(func() {
		raw := c.scratch.Bytes()[lo : lo+n]
		if c.srv.cfg.Mode == InlineMode {
			v, ok := hopscotch.ParseNeighborhoodInline(raw, key, c.srv.cfg.ValueSize)
			if ok {
				res.Status = kv.StatusHit
				res.Value = append([]byte(nil), v...)
			}
			finish()
			return
		}
		ptr, vlen, ok := ParseVar(raw, key)
		if !ok {
			finish()
			return
		}
		// Second READ for the out-of-table value.
		res.Reads++
		vlo := lo + c.srv.neighborhoodBytes()
		err := c.rcQP.PostSend(verbs.SendWR{
			Verb: verbs.READ, Remote: c.srv.extentMR, RemoteOff: int(ptr),
			Local: c.scratch, LocalOff: vlo, Len: int(vlen), Signaled: true,
		})
		if err != nil {
			finish()
			return
		}
		c.awaitRead(func() {
			res.Status = kv.StatusHit
			res.Value = append([]byte(nil), c.scratch.Bytes()[vlo:vlo+int(vlen)]...)
			finish()
		})
	})
}

// ParseVar is a convenience re-export for clients parsing out-of-table
// neighborhoods.
func ParseVar(raw []byte, key kv.Key) (uint32, uint16, bool) {
	return hopscotch.ParseNeighborhoodVar(raw, key)
}

func (c *Client) awaitRead(fn func()) {
	c.readWaiters = append(c.readWaiters, fn)
	if !c.cqArmed {
		c.cqArmed = true
		c.rcQP.SendCQ().SetHandler(func(verbs.Completion) {
			if len(c.readWaiters) == 0 {
				return
			}
			next := c.readWaiters[0]
			c.readWaiters = c.readWaiters[1:]
			next()
		})
	}
}

// mustPost consumes the synchronous error from a verbs post. FaRM-em
// implements no crash recovery, so any rejected post — including an
// errored queue pair — is unsupported territory: fail loudly.
func mustPost(err error) {
	if err != nil {
		panic(err)
	}
}
