package farm

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func newFarm(t *testing.T, mode Mode, nClients int) (*cluster.Cluster, *Server, []*Client) {
	t.Helper()
	cfg := Config{
		Mode: mode, Buckets: 1 << 12, ValueSize: 32,
		ExtentBytes: 1 << 22, H: 6, Cores: 4, Window: 4,
	}
	cl := cluster.New(cluster.Apt(), 1+nClients, 1)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, srv, clients
}

func val32(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }

func TestInlinePutThenGet(t *testing.T) {
	cl, _, clients := newFarm(t, InlineMode, 1)
	key := kv.FromUint64(1)
	var put, get Result
	clients[0].Put(key, val32(7), func(r Result) {
		put = r
		clients[0].Get(key, func(r Result) { get = r })
	})
	cl.Eng.Run()
	if put.Status != kv.StatusHit {
		t.Fatalf("PUT = %+v", put)
	}
	if get.Status != kv.StatusHit || !bytes.Equal(get.Value, val32(7)) {
		t.Fatalf("GET = status:%v", get.Status)
	}
	if get.Reads != 1 {
		t.Fatalf("inline GET used %d READs, want 1", get.Reads)
	}
}

func TestVarPutThenGet(t *testing.T) {
	cl, _, clients := newFarm(t, VarMode, 1)
	key := kv.FromUint64(2)
	want := []byte("out of table value bytes")
	var get Result
	clients[0].Put(key, want, func(Result) {
		clients[0].Get(key, func(r Result) { get = r })
	})
	cl.Eng.Run()
	if get.Status != kv.StatusHit || !bytes.Equal(get.Value, want) {
		t.Fatalf("GET = status:%v val:%q", get.Status, get.Value)
	}
	if get.Reads != 2 {
		t.Fatalf("var GET used %d READs, want 2", get.Reads)
	}
}

func TestGetMiss(t *testing.T) {
	for _, mode := range []Mode{InlineMode, VarMode} {
		cl, _, clients := newFarm(t, mode, 1)
		var res Result
		done := false
		clients[0].Get(kv.FromUint64(404), func(r Result) { res, done = r, true })
		cl.Eng.Run()
		if !done || res.Status == kv.StatusHit {
			t.Fatalf("mode %d miss: done=%v status=%v", mode, done, res.Status)
		}
	}
}

func TestInlineGetSingleRTTFasterThanVar(t *testing.T) {
	// The inline mode's whole point: one RTT beats two.
	latency := func(mode Mode) sim.Time {
		cl, srv, clients := newFarm(t, mode, 1)
		key := kv.FromUint64(5)
		v := val32(1)
		if mode == VarMode {
			v = []byte("any")
		}
		srv.Insert(key, v)
		var lat sim.Time
		clients[0].Get(key, func(r Result) { lat = r.Latency })
		cl.Eng.Run()
		if lat == 0 {
			t.Fatal("GET did not complete")
		}
		return lat
	}
	inl, varm := latency(InlineMode), latency(VarMode)
	if inl >= varm {
		t.Fatalf("inline %.2f us >= var %.2f us", inl.Microseconds(), varm.Microseconds())
	}
}

func TestManyClientsManyKeys(t *testing.T) {
	cl, srv, clients := newFarm(t, InlineMode, 3)
	n := 120
	oks := 0
	for i := 0; i < n; i++ {
		clients[i%3].Put(kv.FromUint64(uint64(i+1)), val32(byte(i)), func(r Result) {
			if r.Status == kv.StatusHit {
				oks++
			}
		})
	}
	cl.Eng.Run()
	if oks != n {
		t.Fatalf("put oks = %d/%d", oks, n)
	}
	if srv.Puts() != uint64(n) {
		t.Fatalf("server puts = %d", srv.Puts())
	}
	got := 0
	for i := 0; i < n; i++ {
		i := i
		clients[(i+2)%3].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status == kv.StatusHit && r.Value[0] == byte(i) {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("gets = %d/%d", got, n)
	}
}

func TestInlineValueSizeStrict(t *testing.T) {
	_, _, clients := newFarm(t, InlineMode, 1)
	if err := clients[0].Put(kv.FromUint64(1), []byte("short"), nil); err == nil {
		t.Fatal("wrong-size inline PUT accepted")
	}
}

func TestServerValidation(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 1, 1)
	if _, err := NewServer(cl.Machine(0), Config{Mode: InlineMode, Buckets: 16, ValueSize: 8, Cores: 0, Window: 1}); err == nil {
		t.Fatal("Cores=0 accepted")
	}
	if _, err := NewServer(cl.Machine(0), Config{Mode: Mode(9), Buckets: 16, Cores: 1, Window: 1}); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestWindowThrottlesPuts(t *testing.T) {
	cl, _, clients := newFarm(t, InlineMode, 1)
	c := clients[0]
	for i := 0; i < 20; i++ {
		c.Put(kv.FromUint64(uint64(i+1)), val32(1), nil)
	}
	if c.inflight != 4 {
		t.Fatalf("inflight = %d, want window 4", c.inflight)
	}
	cl.Eng.Run()
	if c.inflight != 0 || len(c.waiting) != 0 {
		t.Fatalf("drain incomplete: inflight=%d waiting=%d", c.inflight, len(c.waiting))
	}
}

func TestReadSizesMatchPaperFormulas(t *testing.T) {
	// FaRM-em GET READ = 6*(16+SV); FaRM-em-VAR first READ = 6*(16+8).
	_, srvI, _ := newFarm(t, InlineMode, 0)
	if got := srvI.neighborhoodBytes(); got != 6*(16+32) {
		t.Fatalf("inline neighborhood = %d", got)
	}
	_, srvV, _ := newFarm(t, VarMode, 0)
	if got := srvV.neighborhoodBytes(); got != 6*24 {
		t.Fatalf("var neighborhood = %d", got)
	}
}
