package farm

import (
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// Symmetric is the deployment shape Section 2.3 describes but the paper
// does not evaluate: every machine is both a server (hosting one shard
// of the key space) and a client. GETs for remote shards are one-sided
// READs into the owner's memory; GETs for the local shard are plain
// memory accesses; PUTs go through the owner's circular-buffer WRITE
// path. The aggregate READ capacity grows with the cluster, which is
// the symmetric design's appeal — at the cost of every machine also
// running the server-side PUT poller.
type Symmetric struct {
	cl     *cluster.Cluster
	shards []*Server
	// conns[i][j] is machine i's client to shard j (nil when i == j).
	conns [][]*Client
	seed  uint64
}

// NewSymmetric builds an n-machine symmetric FaRM deployment on cl's
// first n machines, each hosting one shard configured by cfg.
func NewSymmetric(cl *cluster.Cluster, n int, cfg Config) (*Symmetric, error) {
	if n < 2 || cl.Size() < n {
		return nil, fmt.Errorf("farm: symmetric deployment needs >=2 machines (have %d of %d)", cl.Size(), n)
	}
	s := &Symmetric{cl: cl, seed: 0x517a}
	s.shards = make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer(cl.Machine(i), cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = srv
	}
	s.conns = make([][]*Client, n)
	for i := 0; i < n; i++ {
		s.conns[i] = make([]*Client, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			c, err := s.shards[j].ConnectClient(cl.Machine(i))
			if err != nil {
				return nil, err
			}
			s.conns[i][j] = c
		}
	}
	return s, nil
}

// Machines returns the deployment size.
func (s *Symmetric) Machines() int { return len(s.shards) }

// Owner returns the machine owning key's shard.
func (s *Symmetric) Owner(key kv.Key) int {
	return int(key.Hash64(s.seed) % uint64(len(s.shards)))
}

// Shard exposes machine i's server (tests, preloading).
func (s *Symmetric) Shard(i int) *Server { return s.shards[i] }

// Preload inserts key on its owner without network traffic.
func (s *Symmetric) Preload(key kv.Key, value []byte) error {
	return s.shards[s.Owner(key)].Insert(key, value)
}

// localAccess models a same-machine GET: no verbs, just the hash and
// table lookups on the local core (FaRM reads its own shared address
// space directly).
func (s *Symmetric) localAccess(from int, fn func()) {
	m := s.cl.Machine(from)
	p := m.CPU.Params()
	service := p.PollCheck + 2*m.CPU.DRAMAccess()
	m.CPU.Core(m.CPU.Cores()-1).Submit(service, func(sim.Time) { fn() })
}

// Get routes a GET issued by machine `from` to the key's owner: a local
// memory lookup, or the remote neighborhood READ(s).
func (s *Symmetric) Get(from int, key kv.Key, cb func(Result)) error {
	owner := s.Owner(key)
	if owner == from {
		start := s.cl.Eng.Now()
		s.localAccess(from, func() {
			v, ok := s.shards[owner].table.Lookup(key)
			res := Result{Key: key, IsGet: true, Status: statusOf(ok), Latency: s.cl.Eng.Now() - start}
			if ok {
				res.Value = append([]byte(nil), v...)
			}
			if cb != nil {
				cb(res)
			}
		})
		return nil
	}
	return s.conns[from][owner].Get(key, cb)
}

// Put routes a PUT issued by machine `from` to the key's owner.
func (s *Symmetric) Put(from int, key kv.Key, value []byte, cb func(Result)) error {
	owner := s.Owner(key)
	if owner == from {
		start := s.cl.Eng.Now()
		val := append([]byte(nil), value...)
		s.localAccess(from, func() {
			err := s.shards[owner].table.Insert(key, val)
			if cb != nil {
				cb(Result{Key: key, Status: statusOf(err == nil), Latency: s.cl.Eng.Now() - start})
			}
		})
		return nil
	}
	return s.conns[from][owner].Put(key, value, cb)
}
