package farm

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func newSymmetric(t *testing.T, n int) (*cluster.Cluster, *Symmetric) {
	t.Helper()
	cfg := Config{
		Mode: InlineMode, Buckets: 1 << 12, ValueSize: 32,
		ExtentBytes: 1 << 20, H: 6, Cores: 2, Window: 4,
	}
	cl := cluster.New(cluster.Apt(), n, 1)
	sym, err := NewSymmetric(cl, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl, sym
}

func val(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }

func TestSymmetricRouting(t *testing.T) {
	_, sym := newSymmetric(t, 4)
	// Every machine must own some keys.
	owned := make([]int, 4)
	for i := uint64(0); i < 4000; i++ {
		owned[sym.Owner(kv.FromUint64(i))]++
	}
	for m, c := range owned {
		if c < 600 {
			t.Fatalf("machine %d owns only %d of 4000 keys", m, c)
		}
	}
}

func TestSymmetricRemoteAndLocalOps(t *testing.T) {
	cl, sym := newSymmetric(t, 4)
	var localKey, remoteKey kv.Key
	for i := uint64(1); ; i++ {
		k := kv.FromUint64(i)
		if sym.Owner(k) == 0 && localKey.IsZero() {
			localKey = k
		}
		if sym.Owner(k) == 2 && remoteKey.IsZero() {
			remoteKey = k
		}
		if !localKey.IsZero() && !remoteKey.IsZero() {
			break
		}
	}
	var localGet, remoteGet Result
	// Machine 0 writes both, then reads both back.
	sym.Put(0, localKey, val(1), func(Result) {
		sym.Put(0, remoteKey, val(2), func(Result) {
			sym.Get(0, localKey, func(r Result) { localGet = r })
			sym.Get(0, remoteKey, func(r Result) { remoteGet = r })
		})
	})
	cl.Eng.Run()
	if localGet.Status != kv.StatusHit || !bytes.Equal(localGet.Value, val(1)) {
		t.Fatalf("local GET = %+v", localGet)
	}
	if remoteGet.Status != kv.StatusHit || !bytes.Equal(remoteGet.Value, val(2)) {
		t.Fatalf("remote GET = %+v", remoteGet)
	}
	// Local access skips the network entirely.
	if localGet.Latency >= remoteGet.Latency {
		t.Fatalf("local (%v) should be faster than remote (%v)", localGet.Latency, remoteGet.Latency)
	}
	if localGet.Latency > 600*sim.Nanosecond {
		t.Fatalf("local GET latency %v too high for a memory access", localGet.Latency)
	}
}

func TestSymmetricCrossMachineVisibility(t *testing.T) {
	cl, sym := newSymmetric(t, 3)
	key := kv.FromUint64(99)
	var got Result
	sym.Put(1, key, val(7), func(Result) {
		sym.Get(2, key, func(r Result) { got = r })
	})
	cl.Eng.Run()
	if got.Status != kv.StatusHit || !bytes.Equal(got.Value, val(7)) {
		t.Fatalf("cross-machine read = %+v", got)
	}
}

func TestSymmetricAggregateScalesWithMachines(t *testing.T) {
	// The symmetric design's appeal: total GET capacity grows with the
	// cluster because every NIC serves READs.
	measure := func(n int) float64 {
		cl, sym := newSymmetric(t, n)
		for i := uint64(0); i < 2048; i++ {
			if err := sym.Preload(kv.FromUint64(i), val(byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		var completed uint64
		stop := false
		for m := 0; m < n; m++ {
			m := m
			var loop func(k uint64)
			loop = func(k uint64) {
				sym.Get(m, kv.FromUint64(k%2048), func(Result) {
					completed++
					if !stop {
						loop(k + 7)
					}
				})
			}
			for w := 0; w < 8; w++ {
				loop(uint64(m*1000 + w))
			}
		}
		cl.Eng.RunFor(100 * sim.Microsecond)
		start := completed
		cl.Eng.RunFor(200 * sim.Microsecond)
		stop = true
		return float64(completed-start) / 200e-6 / 1e6
	}
	four, eight := measure(4), measure(8)
	if eight < four*1.5 {
		t.Fatalf("aggregate should scale: %d machines %.1f Mops vs %d machines %.1f Mops",
			4, four, 8, eight)
	}
}

func TestSymmetricValidation(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 1, 1)
	if _, err := NewSymmetric(cl, 2, DefaultConfig()); err == nil {
		t.Fatal("too few machines accepted")
	}
	if _, err := NewSymmetric(cl, 1, DefaultConfig()); err == nil {
		t.Fatal("n=1 accepted")
	}
}
