// Package fault is a deterministic, virtual-time fault-injection
// subsystem for the simulated cluster. A Schedule is a script of timed
// fault events — per-link blackouts and degradation windows, asymmetric
// partitions between machine sets, packet-corruption bursts, and
// server-process crash+restart — and an Injector binds one schedule to
// a fabric and engine, deciding every packet's fate through
// wire.SetFaultHook and firing crash/restart callbacks at their
// scheduled instants.
//
// Everything is driven by the simulation clock and a seeded RNG, so a
// chaos run replays byte-identically for a given (schedule, seed) pair.
// The paper gives up transport-level reliability (Section 7) and argues
// applications must handle loss themselves; this package is the test
// harness for that claim. See docs/ROBUSTNESS.md.
package fault

import (
	"fmt"
	"sort"

	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wire"
)

// Kind enumerates fault event types.
type Kind int

const (
	// Loss degrades every link with an extra drop probability for the
	// event window.
	Loss Kind = iota
	// Blackout drops every packet on one directional link (Both widens
	// it to both directions) for the event window.
	Blackout
	// Degrade adds a drop probability to one directional link.
	Degrade
	// Corrupt delivers packets on one directional link with damaged
	// payloads at the given rate.
	Corrupt
	// Partition severs traffic between two machine sets. Asym severs
	// only the A->B direction (B can still reach A).
	Partition
	// Crash kills the process registered for Node at time At and, if
	// RestartAt > At, restarts it then.
	Crash
	// FlushCrash is Crash landing mid-group-commit: a target with a
	// write-ahead log loses power between append and flush completion,
	// leaving a torn log tail its recovery must truncate (targets
	// without a WAL just crash). Same fields as Crash.
	FlushCrash
)

// String returns the script keyword for the kind.
func (k Kind) String() string {
	switch k {
	case Loss:
		return "loss"
	case Blackout:
		return "blackout"
	case Degrade:
		return "degrade"
	case Corrupt:
		return "corrupt"
	case Partition:
		return "partition"
	case Crash:
		return "crash"
	case FlushCrash:
		return "flushcrash"
	}
	return "?"
}

// Event is one scripted fault. Which fields matter depends on Kind; the
// window [From, Until) applies to every kind except Crash, which uses
// the instants At and RestartAt.
type Event struct {
	Kind Kind

	From, Until sim.Time // window events: active for From <= now < Until

	Src, Dst wire.NodeID // Blackout/Degrade/Corrupt: the directional link
	Both     bool        // Blackout/Degrade/Corrupt: apply to both directions

	A, B []wire.NodeID // Partition: the two machine sets
	Asym bool          // Partition: sever only A->B

	Rate float64 // Loss/Degrade: drop probability; Corrupt: corruption probability

	Node      wire.NodeID // Crash: the machine whose server process dies
	At        sim.Time    // Crash: crash instant
	RestartAt sim.Time    // Crash: restart instant (0 = never restarts)

	// Nemesis marks an event produced by NemesisConfig.Generate rather
	// than a hand-written script line (telemetry only).
	Nemesis bool
}

// Schedule is an ordered script of fault events.
type Schedule struct {
	Events []Event
}

// Validate checks internal consistency: windows must be well-formed,
// rates must be probabilities, restarts must follow crashes.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		switch e.Kind {
		case Crash, FlushCrash:
			if e.RestartAt != 0 && e.RestartAt <= e.At {
				return fmt.Errorf("fault: event %d: restart %v not after crash %v", i, e.RestartAt, e.At)
			}
		case Loss, Degrade, Corrupt:
			if e.Rate < 0 || e.Rate > 1 {
				return fmt.Errorf("fault: event %d: rate %v outside [0,1]", i, e.Rate)
			}
			fallthrough
		case Blackout, Partition:
			if e.Until <= e.From {
				return fmt.Errorf("fault: event %d: empty window [%v,%v)", i, e.From, e.Until)
			}
			if e.Kind == Partition && (len(e.A) == 0 || len(e.B) == 0) {
				return fmt.Errorf("fault: event %d: partition with an empty set", i)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// End returns the virtual time at which the last scheduled fault
// activity ends — useful for sizing a chaos run.
func (s *Schedule) End() sim.Time {
	var end sim.Time
	for _, e := range s.Events {
		for _, t := range []sim.Time{e.Until, e.At, e.RestartAt} {
			if t > end {
				end = t
			}
		}
	}
	return end
}

// CrashTarget is anything the injector can crash and restart — in
// practice a core.Server, whose Crash loses request-region state and
// errors its queue pairs, and whose Restart re-registers fresh ones.
type CrashTarget interface {
	Crash()
	Restart()
}

// FlushCrasher is a crash target that can also die mid-group-commit
// (core.Server with durability on). A FlushCrash event dispatches
// CrashMidFlush when the target implements it and falls back to a
// plain Crash otherwise.
type FlushCrasher interface {
	CrashMidFlush()
}

// Injector binds a schedule to one fabric: it owns the packet-fate hook
// and schedules crash/restart events on the engine.
type Injector struct {
	eng   *sim.Engine
	net   *wire.Network
	sched *Schedule
	rnd   *sim.Rand

	targets map[wire.NodeID]CrashTarget
	armed   bool

	// Telemetry (nil-safe): injection counters by outcome.
	injDrop, injCorrupt  *telemetry.Counter
	injCrash, injRestart *telemetry.Counter
	injNemesis           *telemetry.Counter
	drops, corrupts      uint64
	crashes, restarts    uint64
	missedTargets        uint64
}

// NewInjector attaches a validated schedule to the network. The packet
// hook is installed immediately; crash events are scheduled lazily by
// Arm so targets can be registered first.
func NewInjector(net *wire.Network, sched *Schedule, seed int64) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		eng:     net.Engine(),
		net:     net,
		sched:   sched,
		rnd:     sim.NewRand(seed),
		targets: make(map[wire.NodeID]CrashTarget),
	}
	net.SetFaultHook(in.fate)
	return in, nil
}

// SetTelemetry attaches fault.injected.* counters to sink s.
func (in *Injector) SetTelemetry(s *telemetry.Sink) {
	in.injDrop = s.Counter("fault.injected.drop")
	in.injCorrupt = s.Counter("fault.injected.corrupt")
	in.injCrash = s.Counter("fault.injected.crash")
	in.injRestart = s.Counter("fault.injected.restart")
	in.injNemesis = s.Counter("nemesis.events")
}

// SetCrashTarget registers the process to kill when a Crash event names
// node. Call before Arm.
func (in *Injector) SetCrashTarget(node wire.NodeID, t CrashTarget) {
	in.targets[node] = t
}

// SetCrashTargets registers a batch of crash targets; a convenience for
// deployments (sharded, fleet) that own several server processes.
// Target lookup happens when an event fires, so registering after Arm
// also works.
func (in *Injector) SetCrashTargets(targets map[wire.NodeID]CrashTarget) {
	for node, t := range targets {
		in.targets[node] = t
	}
}

// Arm schedules every Crash event on the engine. Safe to call once;
// subsequent calls are no-ops. Crash events with no registered target
// are counted (MissedTargets) and skipped.
func (in *Injector) Arm() {
	if in.armed {
		return
	}
	in.armed = true
	for _, e := range in.sched.Events {
		if e.Nemesis {
			in.injNemesis.Inc()
		}
	}
	// Sort crash instants for deterministic scheduling order regardless
	// of script order.
	events := make([]Event, 0, len(in.sched.Events))
	for _, e := range in.sched.Events {
		if e.Kind == Crash || e.Kind == FlushCrash {
			events = append(events, e)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		e := e
		in.eng.At(e.At, func() {
			t, ok := in.targets[e.Node]
			if !ok {
				in.missedTargets++
				return
			}
			if fc, ok := t.(FlushCrasher); ok && e.Kind == FlushCrash {
				fc.CrashMidFlush()
			} else {
				t.Crash()
			}
			in.crashes++
			in.injCrash.Inc()
		})
		if e.RestartAt > e.At {
			in.eng.At(e.RestartAt, func() {
				t, ok := in.targets[e.Node]
				if !ok {
					return
				}
				t.Restart()
				in.restarts++
				in.injRestart.Inc()
			})
		}
	}
}

// Drops, Corrupts, Crashes and Restarts report injected-fault counts.
func (in *Injector) Drops() uint64    { return in.drops }
func (in *Injector) Corrupts() uint64 { return in.corrupts }
func (in *Injector) Crashes() uint64  { return in.crashes }
func (in *Injector) Restarts() uint64 { return in.restarts }

// MissedTargets reports Crash events that fired with no registered
// target.
func (in *Injector) MissedTargets() uint64 { return in.missedTargets }

// linkMatches reports whether event e's link selector covers a packet
// src->dst.
func linkMatches(e Event, src, dst wire.NodeID) bool {
	if e.Src == src && e.Dst == dst {
		return true
	}
	return e.Both && e.Src == dst && e.Dst == src
}

// contains reports whether set holds id.
func contains(set []wire.NodeID, id wire.NodeID) bool {
	for _, n := range set {
		if n == id {
			return true
		}
	}
	return false
}

// fate is the wire.FaultHook: it folds every active window event into
// one verdict. Hard drops (blackout, partition) dominate; then each
// active degradation rolls independently; then corruption. Events are
// consulted in schedule order so runs are deterministic.
func (in *Injector) fate(src, dst wire.NodeID, now sim.Time) wire.Fate {
	corrupt := false
	for _, e := range in.sched.Events {
		if e.Kind == Crash || e.Kind == FlushCrash || now < e.From || now >= e.Until {
			continue
		}
		switch e.Kind {
		case Blackout:
			if linkMatches(e, src, dst) {
				in.drops++
				in.injDrop.Inc()
				return wire.FateDrop
			}
		case Partition:
			aToB := contains(e.A, src) && contains(e.B, dst)
			bToA := contains(e.B, src) && contains(e.A, dst)
			if aToB || (bToA && !e.Asym) {
				in.drops++
				in.injDrop.Inc()
				return wire.FateDrop
			}
		case Loss:
			if in.rnd.Float64() < e.Rate {
				in.drops++
				in.injDrop.Inc()
				return wire.FateDrop
			}
		case Degrade:
			if linkMatches(e, src, dst) && in.rnd.Float64() < e.Rate {
				in.drops++
				in.injDrop.Inc()
				return wire.FateDrop
			}
		case Corrupt:
			if linkMatches(e, src, dst) && in.rnd.Float64() < e.Rate {
				corrupt = true
			}
		}
	}
	if corrupt {
		in.corrupts++
		in.injCorrupt.Inc()
		return wire.FateCorrupt
	}
	return wire.FateDeliver
}
