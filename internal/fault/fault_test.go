package fault

import (
	"testing"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

// newNet builds a three-node fabric with no background loss.
func newNet(t *testing.T) (*sim.Engine, *wire.Network) {
	t.Helper()
	eng := sim.New()
	net := wire.NewNetwork(eng, wire.InfiniBand56(), 1)
	for id := wire.NodeID(0); id < 3; id++ {
		net.AddNode(id)
	}
	return eng, net
}

// inject binds script to net or fails the test.
func inject(t *testing.T, net *wire.Network, script string) *Injector {
	t.Helper()
	sched, err := ParseSchedule(script)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInjector(net, sched, 7)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// sendAt schedules a control packet src->dst at time at and returns a
// pointer that becomes true if it was delivered.
func sendAt(eng *sim.Engine, net *wire.Network, src, dst wire.NodeID, at sim.Time) *bool {
	delivered := new(bool)
	eng.At(at, func() {
		net.SendWire(src, dst, 64, func(sim.Time) { *delivered = true })
	})
	return delivered
}

func TestBlackoutDropsExactlyInWindow(t *testing.T) {
	eng, net := newNet(t)
	inject(t, net, "blackout link=1>0 from=1us until=2us")

	before := sendAt(eng, net, 1, 0, 500*sim.Nanosecond)
	atStart := sendAt(eng, net, 1, 0, 1*sim.Microsecond) // window is [from, until)
	inside := sendAt(eng, net, 1, 0, 1500*sim.Nanosecond)
	atEnd := sendAt(eng, net, 1, 0, 2*sim.Microsecond)
	after := sendAt(eng, net, 1, 0, 2500*sim.Nanosecond)
	reverse := sendAt(eng, net, 0, 1, 1500*sim.Nanosecond) // other direction untouched
	eng.Run()

	if !*before || !*atEnd || !*after {
		t.Fatalf("out-of-window packets dropped: before=%v atEnd=%v after=%v", *before, *atEnd, *after)
	}
	if *atStart || *inside {
		t.Fatalf("in-window packets delivered: atStart=%v inside=%v", *atStart, *inside)
	}
	if !*reverse {
		t.Fatal("blackout of 1>0 dropped traffic on 0>1")
	}
}

func TestBlackoutBothDirections(t *testing.T) {
	eng, net := newNet(t)
	inject(t, net, "blackout link=1>0 from=0 until=1ms both")
	fwd := sendAt(eng, net, 1, 0, 10*sim.Nanosecond)
	rev := sendAt(eng, net, 0, 1, 10*sim.Nanosecond)
	eng.Run()
	if *fwd || *rev {
		t.Fatalf("both-direction blackout leaked: fwd=%v rev=%v", *fwd, *rev)
	}
}

func TestPartitionAsymmetric(t *testing.T) {
	eng, net := newNet(t)
	inject(t, net, "partition a=1,2 b=0 from=0 until=1ms asym")

	aToB1 := sendAt(eng, net, 1, 0, 10*sim.Nanosecond)
	aToB2 := sendAt(eng, net, 2, 0, 10*sim.Nanosecond)
	bToA := sendAt(eng, net, 0, 1, 10*sim.Nanosecond)
	within := sendAt(eng, net, 1, 2, 10*sim.Nanosecond)
	eng.Run()

	if *aToB1 || *aToB2 {
		t.Fatal("A->B traffic crossed an asymmetric partition")
	}
	if !*bToA {
		t.Fatal("asym partition dropped B->A traffic")
	}
	if !*within {
		t.Fatal("partition dropped traffic inside set A")
	}
}

func TestPartitionSymmetric(t *testing.T) {
	eng, net := newNet(t)
	inject(t, net, "partition a=1 b=0 from=0 until=1ms")
	aToB := sendAt(eng, net, 1, 0, 10*sim.Nanosecond)
	bToA := sendAt(eng, net, 0, 1, 10*sim.Nanosecond)
	eng.Run()
	if *aToB || *bToA {
		t.Fatalf("symmetric partition leaked: aToB=%v bToA=%v", *aToB, *bToA)
	}
}

func TestCorruptDeliversDamagedDataPackets(t *testing.T) {
	eng, net := newNet(t)
	in := inject(t, net, "corrupt link=1>0 from=0 until=1ms rate=1")

	// Data-path packets arrive flagged corrupt; the application must
	// reject them.
	var got, corrupt bool
	eng.At(10*sim.Nanosecond, func() {
		net.SendData(1, 0, wire.UC, 128, func(d wire.Delivery) {
			got, corrupt = true, d.Corrupt
		})
	})
	// Control packets (hardware CRC semantics) are discarded instead.
	ctrl := sendAt(eng, net, 1, 0, 10*sim.Nanosecond)
	eng.Run()

	if !got || !corrupt {
		t.Fatalf("corrupted data packet: delivered=%v corrupt=%v (want delivered corrupt)", got, corrupt)
	}
	if *ctrl {
		t.Fatal("corrupted control packet was delivered")
	}
	if in.Corrupts() != 2 || net.Corrupted() != 2 {
		t.Fatalf("corruption counters: injector=%d wire=%d, want 2 each", in.Corrupts(), net.Corrupted())
	}
}

func TestLossIsSeededAndDeterministic(t *testing.T) {
	outcome := func() []bool {
		eng, net := newNet(t)
		inject(t, net, "loss from=0 until=1ms rate=0.5")
		res := make([]*bool, 40)
		for i := range res {
			res[i] = sendAt(eng, net, 1, 0, sim.Time(i+1)*sim.Microsecond/100)
		}
		eng.Run()
		out := make([]bool, len(res))
		for i, p := range res {
			out[i] = *p
		}
		return out
	}
	a, b := outcome(), outcome()
	delivered := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at packet %d", i)
		}
		if a[i] {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("50%% loss delivered %d/%d packets", delivered, len(a))
	}
}

// recorder is a CrashTarget that logs crash/restart instants.
type recorder struct {
	eng      *sim.Engine
	crashes  []sim.Time
	restarts []sim.Time
}

func (r *recorder) Crash()   { r.crashes = append(r.crashes, r.eng.Now()) }
func (r *recorder) Restart() { r.restarts = append(r.restarts, r.eng.Now()) }

func TestCrashEventsFireAtScheduledInstants(t *testing.T) {
	eng, net := newNet(t)
	in := inject(t, net, `
		crash node=0 at=10us restart=20us
		crash node=2 at=5us
	`)
	r0, r2 := &recorder{eng: eng}, &recorder{eng: eng}
	in.SetCrashTarget(0, r0)
	in.SetCrashTarget(2, r2)
	in.Arm()
	eng.RunUntil(1 * sim.Millisecond)

	if len(r0.crashes) != 1 || r0.crashes[0] != 10*sim.Microsecond {
		t.Fatalf("node 0 crashes = %v", r0.crashes)
	}
	if len(r0.restarts) != 1 || r0.restarts[0] != 20*sim.Microsecond {
		t.Fatalf("node 0 restarts = %v", r0.restarts)
	}
	if len(r2.crashes) != 1 || len(r2.restarts) != 0 {
		t.Fatalf("node 2 crash/restart = %v/%v", r2.crashes, r2.restarts)
	}
	if in.Crashes() != 2 || in.Restarts() != 1 {
		t.Fatalf("injector counts: crashes=%d restarts=%d", in.Crashes(), in.Restarts())
	}
}

// flushRecorder is a recorder that also implements FlushCrasher.
type flushRecorder struct {
	recorder
	midFlush []sim.Time
}

func (r *flushRecorder) CrashMidFlush() { r.midFlush = append(r.midFlush, r.eng.Now()) }

func TestFlushCrashDispatchesMidFlush(t *testing.T) {
	eng, net := newNet(t)
	in := inject(t, net, `
		flushcrash node=0 at=10us restart=20us
		flushcrash node=2 at=5us
	`)
	// Node 0's target understands mid-flush crashes; node 2's is a plain
	// CrashTarget and must fall back to Crash.
	r0 := &flushRecorder{recorder: recorder{eng: eng}}
	r2 := &recorder{eng: eng}
	in.SetCrashTarget(0, r0)
	in.SetCrashTarget(2, r2)
	in.Arm()
	eng.RunUntil(1 * sim.Millisecond)

	if len(r0.midFlush) != 1 || r0.midFlush[0] != 10*sim.Microsecond {
		t.Fatalf("node 0 mid-flush crashes = %v", r0.midFlush)
	}
	if len(r0.crashes) != 0 {
		t.Fatalf("node 0 plain crashes = %v, want none", r0.crashes)
	}
	if len(r0.restarts) != 1 || r0.restarts[0] != 20*sim.Microsecond {
		t.Fatalf("node 0 restarts = %v", r0.restarts)
	}
	if len(r2.crashes) != 1 {
		t.Fatalf("node 2 fallback crash = %v", r2.crashes)
	}
	if in.Crashes() != 2 || in.Restarts() != 1 {
		t.Fatalf("injector counts: crashes=%d restarts=%d", in.Crashes(), in.Restarts())
	}
}

func TestCrashWithoutTargetIsCounted(t *testing.T) {
	eng, net := newNet(t)
	in := inject(t, net, "crash node=1 at=1us")
	in.Arm()
	eng.RunUntil(1 * sim.Millisecond)
	if in.MissedTargets() != 1 {
		t.Fatalf("missed targets = %d, want 1", in.MissedTargets())
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	bad := []Schedule{
		{Events: []Event{{Kind: Crash, At: 5, RestartAt: 3}}},
		{Events: []Event{{Kind: Loss, Rate: 1.5, From: 0, Until: 10}}},
		{Events: []Event{{Kind: Blackout, From: 10, Until: 10}}},
		{Events: []Event{{Kind: Partition, From: 0, Until: 10, A: []wire.NodeID{1}}}},
		{Events: []Event{{Kind: Kind(99), From: 0, Until: 10}}},
	}
	for i, s := range bad {
		s := s
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d validated", i)
		}
	}
}

func TestScheduleEnd(t *testing.T) {
	s, err := ParseSchedule(`
		loss from=0 until=30ms rate=0.05
		crash node=0 at=10ms restart=41ms
	`)
	if err != nil {
		t.Fatal(err)
	}
	if s.End() != 41*sim.Millisecond {
		t.Fatalf("End() = %v, want 41ms", s.End())
	}
}
