package fault

import (
	"sort"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

// Nemesis: randomized schedule generation. PR 2's chaos harness replays
// hand-written scripts; the nemesis layer *generates* them — crashes,
// flush-crashes, blackouts, and partitions drawn from a seeded RNG over
// a bounded horizon — so a consistency gate can search seeds for a
// failure instead of waiting for a human to script one, and shrink a
// failing schedule to its essential events with Minimize. Generation is
// a pure function of the config (sim.Rand, no wall clock), so a failing
// seed replays byte-identically.

// NemesisConfig parameterizes one generated schedule. The zero value is
// not useful: set at least Until and Nodes.
type NemesisConfig struct {
	// Seed drives every random choice; same config = same schedule.
	Seed int64
	// Until is the horizon: every generated window starts inside
	// [0, Until); crash restarts may land somewhat past it.
	Until sim.Time
	// Nodes is the crashable node-id range [0, Nodes) — in a fleet,
	// the shard machines.
	Nodes int
	// Peers is the node-id range [0, Peers) for link-level faults
	// (blackouts, partitions); defaults to Nodes. In a fleet this
	// includes client machines, so generated blackouts can sever a
	// client from one replica — the divergence-seeding fault.
	Peers int
	// Crashes and FlushCrashes are how many crash / mid-flush-crash
	// events to generate. Each lands on a distinct node (the two kinds
	// share the budget), so downtime windows never overlap on one
	// process; the total is clamped to Nodes.
	Crashes      int
	FlushCrashes int
	// Blackouts and Partitions are how many link-level windows to
	// generate.
	Blackouts  int
	Partitions int
	// MinDown/MaxDown bound a crashed node's downtime (defaults
	// Until/16 and Until/4).
	MinDown, MaxDown sim.Time
}

// Generate builds the randomized schedule. The result always passes
// Validate; Events are tagged Nemesis for telemetry.
func (cfg NemesisConfig) Generate() *Schedule {
	if cfg.Until <= 0 {
		cfg.Until = 8 * sim.Millisecond
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Peers < cfg.Nodes {
		cfg.Peers = cfg.Nodes
	}
	if cfg.MinDown <= 0 {
		cfg.MinDown = cfg.Until / 16
	}
	if cfg.MaxDown < cfg.MinDown {
		cfg.MaxDown = cfg.Until / 4
	}
	if cfg.MaxDown < cfg.MinDown {
		cfg.MaxDown = cfg.MinDown
	}
	rnd := sim.NewRand(cfg.Seed)
	s := &Schedule{}

	// Crash-class events: one per distinct node so per-process downtime
	// windows cannot overlap.
	crashes, flushes := cfg.Crashes, cfg.FlushCrashes
	if crashes < 0 {
		crashes = 0
	}
	if flushes < 0 {
		flushes = 0
	}
	if crashes+flushes > cfg.Nodes {
		if crashes > cfg.Nodes {
			crashes = cfg.Nodes
		}
		flushes = cfg.Nodes - crashes
	}
	perm := rnd.Perm(cfg.Nodes)
	for i := 0; i < crashes+flushes; i++ {
		kind := Crash
		if i >= crashes {
			kind = FlushCrash
		}
		// Crash somewhere in the middle half of the horizon, so traffic
		// exists both before (to diverge) and after (to observe).
		at := cfg.Until/4 + rnd.DurationBetween(0, cfg.Until/2)
		s.Events = append(s.Events, Event{
			Kind:      kind,
			Node:      wire.NodeID(perm[i]),
			At:        at,
			RestartAt: at + rnd.DurationBetween(cfg.MinDown, cfg.MaxDown),
			Nemesis:   true,
		})
	}

	window := func() (from, until sim.Time) {
		from = rnd.DurationBetween(0, cfg.Until*3/4)
		return from, from + rnd.DurationBetween(cfg.Until/32, cfg.Until/4)
	}
	for i := 0; i < cfg.Blackouts; i++ {
		src := rnd.Intn(cfg.Peers)
		dst := rnd.Intn(cfg.Peers - 1)
		if dst >= src {
			dst++
		}
		from, until := window()
		s.Events = append(s.Events, Event{
			Kind: Blackout,
			Src:  wire.NodeID(src), Dst: wire.NodeID(dst),
			Both: rnd.Intn(2) == 0,
			From: from, Until: until,
			Nemesis: true,
		})
	}
	for i := 0; i < cfg.Partitions; i++ {
		if cfg.Peers < 2 {
			break
		}
		cut := 1 + rnd.Intn(cfg.Peers-1)
		p := rnd.Perm(cfg.Peers)
		a := make([]wire.NodeID, cut)
		b := make([]wire.NodeID, cfg.Peers-cut)
		for j, n := range p {
			if j < cut {
				a[j] = wire.NodeID(n)
			} else {
				b[j-cut] = wire.NodeID(n)
			}
		}
		from, until := window()
		s.Events = append(s.Events, Event{
			Kind: Partition,
			A:    a, B: b,
			Asym: rnd.Intn(2) == 0,
			From: from, Until: until,
			Nemesis: true,
		})
	}
	// Deterministic event order regardless of generation order: sort by
	// activation instant, then kind, keeping the schedule stable under
	// config permutations.
	sort.SliceStable(s.Events, func(i, j int) bool {
		ti, tj := s.Events[i].start(), s.Events[j].start()
		if ti != tj {
			return ti < tj
		}
		return s.Events[i].Kind < s.Events[j].Kind
	})
	return s
}

// start returns the instant an event first takes effect.
func (e Event) start() sim.Time {
	if e.Kind == Crash || e.Kind == FlushCrash {
		return e.At
	}
	return e.From
}

// Minimize shrinks a failing schedule to a locally minimal one:
// repeatedly try dropping each event and keep any drop after which
// fails still reports true, until no single event can be removed. fails
// must be a pure function of the schedule (re-running the experiment
// arm under it); with deterministic arms the result is deterministic.
// The returned schedule shares no storage with the input.
func Minimize(s *Schedule, fails func(*Schedule) bool) *Schedule {
	events := append([]Event(nil), s.Events...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(events); i++ {
			cand := make([]Event, 0, len(events)-1)
			cand = append(cand, events[:i]...)
			cand = append(cand, events[i+1:]...)
			if fails(&Schedule{Events: cand}) {
				events = cand
				changed = true
				i--
			}
		}
	}
	return &Schedule{Events: events}
}
