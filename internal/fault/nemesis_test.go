package fault

import (
	"reflect"
	"testing"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

func TestNemesisGenerateDeterministic(t *testing.T) {
	cfg := NemesisConfig{
		Seed: 7, Until: 8 * sim.Millisecond, Nodes: 4, Peers: 10,
		Crashes: 2, FlushCrashes: 1, Blackouts: 3, Partitions: 1,
	}
	a, b := cfg.Generate(), cfg.Generate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different schedules")
	}
	if len(a.Events) != 2+1+3+1 {
		t.Fatalf("generated %d events, want 7", len(a.Events))
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule fails validation: %v", err)
	}
	cfg2 := cfg
	cfg2.Seed = 8
	if reflect.DeepEqual(a, cfg2.Generate()) {
		t.Fatal("different seeds generated identical schedules")
	}
	for _, e := range a.Events {
		if !e.Nemesis {
			t.Fatalf("generated event not tagged Nemesis: %+v", e)
		}
	}
}

func TestNemesisCrashNodesDistinct(t *testing.T) {
	cfg := NemesisConfig{Seed: 3, Until: 4 * sim.Millisecond, Nodes: 3, Crashes: 5, FlushCrashes: 5}
	s := cfg.Generate()
	seen := map[int]bool{}
	n := 0
	for _, e := range s.Events {
		if e.Kind != Crash && e.Kind != FlushCrash {
			continue
		}
		n++
		if seen[int(e.Node)] {
			t.Fatalf("node %d crashed twice: overlapping downtime windows", e.Node)
		}
		seen[int(e.Node)] = true
		if e.RestartAt <= e.At {
			t.Fatalf("event %+v never restarts", e)
		}
	}
	if n != 3 {
		t.Fatalf("crash budget not clamped to Nodes: %d events", n)
	}
}

func TestParseNemesisLine(t *testing.T) {
	s, err := ParseSchedule("nemesis seed=7 until=8ms nodes=4 peers=10 crashes=1 blackouts=2 partitions=1")
	if err != nil {
		t.Fatal(err)
	}
	want := NemesisConfig{
		Seed: 7, Until: 8 * sim.Millisecond, Nodes: 4, Peers: 10,
		Crashes: 1, Blackouts: 2, Partitions: 1,
	}.Generate()
	if !reflect.DeepEqual(s.Events, want.Events) {
		t.Fatalf("parsed nemesis differs from generated:\n%+v\n%+v", s.Events, want.Events)
	}

	// A nemesis line composes with plain events.
	s, err = ParseSchedule("crash node=0 at=1ms restart=2ms\nnemesis seed=1 until=4ms nodes=2 blackouts=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 || s.Events[0].Kind != Crash || s.Events[0].Nemesis {
		t.Fatalf("composition parsed as %+v", s.Events)
	}

	for _, bad := range []string{
		"nemesis until=8ms nodes=4",        // missing seed
		"nemesis seed=1 nodes=4",           // missing until
		"nemesis seed=1 until=8ms",         // missing nodes
		"nemesis seed=1 until=8ms nodes=x", // bad count
		"nemesis seed=1 until=8ms nodes=4 bogus=1",
		"nemesis seed=1 until=8ms nodes=4 asym",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestMinimizeKeepsFailure(t *testing.T) {
	cfg := NemesisConfig{Seed: 11, Until: 8 * sim.Millisecond, Nodes: 4, Peers: 8,
		Crashes: 2, Blackouts: 3, Partitions: 2}
	s := cfg.Generate()
	var crashNode wire.NodeID
	for _, e := range s.Events {
		if e.Kind == Crash {
			crashNode = e.Node
			break
		}
	}
	// The "failure" needs one specific crash plus at least one blackout.
	fails := func(c *Schedule) bool {
		haveCrash, blackouts := false, 0
		for _, e := range c.Events {
			if e.Kind == Crash && e.Node == crashNode {
				haveCrash = true
			}
			if e.Kind == Blackout {
				blackouts++
			}
		}
		return haveCrash && blackouts >= 1
	}
	if !fails(s) {
		t.Fatal("generated schedule missing the crash/blackout premise")
	}
	min := Minimize(s, fails)
	if !fails(min) {
		t.Fatal("minimized schedule no longer fails")
	}
	if len(min.Events) != 2 {
		t.Fatalf("minimized to %d events, want the essential 2", len(min.Events))
	}
	// Locally minimal: removing any remaining event breaks the failure.
	for i := range min.Events {
		cand := &Schedule{Events: append(append([]Event(nil), min.Events[:i]...), min.Events[i+1:]...)}
		if fails(cand) {
			t.Fatalf("event %d still removable", i)
		}
	}
}
