package fault

import (
	"fmt"
	"strconv"
	"strings"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

// ParseSchedule parses the chaos script format: one event per line,
// "#" comments, blank lines ignored. Each line is a keyword followed by
// key=value fields (order-free) and bare flags:
//
//	loss      from=0 until=30ms rate=0.05
//	blackout  link=1>0 from=5ms until=6ms [both]
//	degrade   link=2>0 from=0 until=10ms rate=0.2 [both]
//	corrupt   link=1>0 from=2ms until=3ms rate=1 [both]
//	partition a=1,2 b=0 from=4ms until=5ms [asym]
//	crash     node=0 at=10ms restart=20ms
//	flushcrash node=0 at=10ms restart=20ms
//	nemesis   seed=7 until=8ms nodes=4 [peers=10] [crashes=1]
//	          [flushcrashes=1] [blackouts=2] [partitions=1]
//	          [mindown=500us] [maxdown=2ms]
//
// flushcrash is crash landing mid-group-commit: a target with a
// write-ahead log keeps a torn log tail for recovery to truncate.
//
// nemesis is not an event: the line expands to a randomized batch of
// crash/flushcrash/blackout/partition events generated from the seed
// (see NemesisConfig), so one script line stands in for a whole
// generated chaos schedule.
//
// Durations take ns/us/ms/s suffixes ("0" needs none). Node IDs are the
// cluster machine indices. The parsed schedule is validated before it is
// returned.
func ParseSchedule(script string) (*Schedule, error) {
	s := &Schedule{}
	for lineNo, raw := range strings.Split(script, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// nemesis expands to many events; every other keyword is one.
		if fields[0] == "nemesis" {
			events, err := parseNemesis(fields)
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: %w", lineNo+1, err)
			}
			s.Events = append(s.Events, events...)
			continue
		}
		e, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", lineNo+1, err)
		}
		s.Events = append(s.Events, e)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseEvent parses one non-empty script line, already split on spaces.
func parseEvent(fields []string) (Event, error) {
	var e Event
	switch fields[0] {
	case "loss":
		e.Kind = Loss
	case "blackout":
		e.Kind = Blackout
	case "degrade":
		e.Kind = Degrade
	case "corrupt":
		e.Kind = Corrupt
	case "partition":
		e.Kind = Partition
	case "crash":
		e.Kind = Crash
	case "flushcrash":
		e.Kind = FlushCrash
	default:
		return e, fmt.Errorf("unknown event %q", fields[0])
	}

	seen := map[string]bool{}
	for _, f := range fields[1:] {
		key, val, hasVal := strings.Cut(f, "=")
		if seen[key] {
			return e, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		if !hasVal {
			switch key {
			case "both":
				e.Both = true
			case "asym":
				e.Asym = true
			default:
				return e, fmt.Errorf("unknown flag %q", key)
			}
			continue
		}
		var err error
		switch key {
		case "from":
			e.From, err = parseDur(val)
		case "until":
			e.Until, err = parseDur(val)
		case "at":
			e.At, err = parseDur(val)
		case "restart":
			e.RestartAt, err = parseDur(val)
		case "rate":
			e.Rate, err = strconv.ParseFloat(val, 64)
		case "node":
			e.Node, err = parseNode(val)
		case "link":
			e.Src, e.Dst, err = parseLink(val)
		case "a":
			e.A, err = parseNodeSet(val)
		case "b":
			e.B, err = parseNodeSet(val)
		default:
			return e, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return e, fmt.Errorf("field %q: %w", key, err)
		}
	}
	if err := requireFields(e, seen); err != nil {
		return e, err
	}
	return e, nil
}

// parseNemesis parses a "nemesis" line into its generated event batch.
func parseNemesis(fields []string) ([]Event, error) {
	var cfg NemesisConfig
	seen := map[string]bool{}
	for _, f := range fields[1:] {
		key, val, hasVal := strings.Cut(f, "=")
		if seen[key] {
			return nil, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		if !hasVal {
			return nil, fmt.Errorf("unknown flag %q", key)
		}
		var err error
		parseCount := func(dst *int) {
			var n int
			n, err = strconv.Atoi(val)
			if err != nil || n < 0 {
				err = fmt.Errorf("bad count %q", val)
				return
			}
			*dst = n
		}
		switch key {
		case "seed":
			var n int64
			n, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("bad seed %q", val)
			}
			cfg.Seed = n
		case "until":
			cfg.Until, err = parseDur(val)
		case "nodes":
			parseCount(&cfg.Nodes)
		case "peers":
			parseCount(&cfg.Peers)
		case "crashes":
			parseCount(&cfg.Crashes)
		case "flushcrashes":
			parseCount(&cfg.FlushCrashes)
		case "blackouts":
			parseCount(&cfg.Blackouts)
		case "partitions":
			parseCount(&cfg.Partitions)
		case "mindown":
			cfg.MinDown, err = parseDur(val)
		case "maxdown":
			cfg.MaxDown, err = parseDur(val)
		default:
			return nil, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", key, err)
		}
	}
	for _, k := range []string{"seed", "until", "nodes"} {
		if !seen[k] {
			return nil, fmt.Errorf("nemesis line missing field %q", k)
		}
	}
	return cfg.Generate().Events, nil
}

// requireFields enforces per-kind mandatory fields so a typo'd script
// fails loudly instead of silently injecting nothing.
func requireFields(e Event, seen map[string]bool) error {
	need := func(keys ...string) error {
		for _, k := range keys {
			if !seen[k] {
				return fmt.Errorf("%v event missing field %q", e.Kind, k)
			}
		}
		return nil
	}
	switch e.Kind {
	case Loss:
		return need("from", "until", "rate")
	case Blackout:
		return need("link", "from", "until")
	case Degrade, Corrupt:
		return need("link", "from", "until", "rate")
	case Partition:
		return need("a", "b", "from", "until")
	case Crash, FlushCrash:
		return need("node", "at")
	}
	return nil
}

// parseDur parses a virtual-time literal: a non-negative decimal number
// with an ns/us/ms/s suffix, or a bare "0".
func parseDur(s string) (sim.Time, error) {
	unit := sim.Time(0)
	num := s
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, num = sim.Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	if unit == 0 {
		if v != 0 {
			return 0, fmt.Errorf("duration %q needs a ns/us/ms/s unit", s)
		}
		return 0, nil
	}
	return sim.Time(v * float64(unit)), nil
}

// parseNode parses a machine index.
func parseNode(s string) (wire.NodeID, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node %q", s)
	}
	return wire.NodeID(n), nil
}

// parseLink parses "src>dst".
func parseLink(s string) (src, dst wire.NodeID, err error) {
	a, b, ok := strings.Cut(s, ">")
	if !ok {
		return 0, 0, fmt.Errorf("link %q not of the form src>dst", s)
	}
	if src, err = parseNode(a); err != nil {
		return 0, 0, err
	}
	if dst, err = parseNode(b); err != nil {
		return 0, 0, err
	}
	if src == dst {
		return 0, 0, fmt.Errorf("link %q connects a node to itself", s)
	}
	return src, dst, nil
}

// parseNodeSet parses a comma-separated machine list like "1,2,5".
func parseNodeSet(s string) ([]wire.NodeID, error) {
	var out []wire.NodeID
	for _, part := range strings.Split(s, ",") {
		n, err := parseNode(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
