package fault

import (
	"testing"

	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

func TestParseScheduleFull(t *testing.T) {
	s, err := ParseSchedule(`
		# chaos: flaky fabric, then an outage
		loss      from=0 until=30ms rate=0.05
		blackout  link=1>0 from=5ms until=6ms both
		degrade   link=2>0 from=0 until=10ms rate=0.2
		corrupt   link=1>0 from=2ms until=3ms rate=1
		partition a=1,2 b=0 from=4ms until=5ms asym
		crash     node=0 at=10ms restart=20ms
		flushcrash node=1 at=11ms restart=21ms
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 7 {
		t.Fatalf("parsed %d events, want 7", len(s.Events))
	}
	e := s.Events[1]
	if e.Kind != Blackout || e.Src != 1 || e.Dst != 0 || !e.Both ||
		e.From != 5*sim.Millisecond || e.Until != 6*sim.Millisecond {
		t.Fatalf("blackout parsed as %+v", e)
	}
	p := s.Events[4]
	if p.Kind != Partition || !p.Asym ||
		len(p.A) != 2 || p.A[0] != 1 || p.A[1] != 2 ||
		len(p.B) != 1 || p.B[0] != 0 {
		t.Fatalf("partition parsed as %+v", p)
	}
	c := s.Events[5]
	if c.Kind != Crash || c.Node != 0 || c.At != 10*sim.Millisecond || c.RestartAt != 20*sim.Millisecond {
		t.Fatalf("crash parsed as %+v", c)
	}
	fc := s.Events[6]
	if fc.Kind != FlushCrash || fc.Node != 1 || fc.At != 11*sim.Millisecond || fc.RestartAt != 21*sim.Millisecond {
		t.Fatalf("flushcrash parsed as %+v", fc)
	}
}

func TestParseDurUnits(t *testing.T) {
	cases := map[string]sim.Time{
		"0":     0,
		"5ns":   5 * sim.Nanosecond,
		"2.5us": 2500 * sim.Nanosecond,
		"3ms":   3 * sim.Millisecond,
		"1s":    sim.Second,
	}
	for in, want := range cases {
		got, err := parseDur(in)
		if err != nil || got != want {
			t.Errorf("parseDur(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"5", "-1ms", "ms", "1m", "abc", ""} {
		if _, err := parseDur(in); err == nil {
			t.Errorf("parseDur(%q) accepted", in)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []string{
		"explode from=0 until=1ms",              // unknown keyword
		"loss from=0 until=1ms",                 // missing rate
		"loss from=0 until=1ms rate=2",          // rate outside [0,1]
		"loss from=0 until=1ms rate=0.1 bogus",  // unknown flag
		"loss from=0 until=1ms rate=0.1 x=1",    // unknown field
		"loss from=0 from=1ms until=2ms rate=1", // duplicate field
		"blackout link=1 from=0 until=1ms",      // malformed link
		"blackout link=1>1 from=0 until=1ms",    // self-link
		"blackout link=1>0 from=1ms until=1ms",  // empty window
		"partition a=1 from=0 until=1ms",        // missing b
		"partition a=1 b= from=0 until=1ms",     // empty node set
		"crash node=0 at=10ms restart=5ms",      // restart before crash
		"crash node=-1 at=10ms",                 // negative node
		"crash at=10ms",                         // missing node
		"flushcrash node=0 at=10ms restart=5ms", // restart before flushcrash
		"flushcrash node=0",                     // missing at
	}
	for _, script := range cases {
		if _, err := ParseSchedule(script); err == nil {
			t.Errorf("script %q accepted", script)
		}
	}
}

func TestParseScheduleCommentsAndBlanks(t *testing.T) {
	s, err := ParseSchedule("\n# only a comment\n\n  crash node=0 at=1ms # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != Crash {
		t.Fatalf("parsed %+v", s.Events)
	}
}

// FuzzParseSchedule checks the parser never panics and that whatever it
// accepts passes validation (ParseSchedule validates before returning —
// an accepted-but-invalid schedule would panic cluster.New).
func FuzzParseSchedule(f *testing.F) {
	f.Add("loss from=0 until=30ms rate=0.05")
	f.Add("blackout link=1>0 from=5ms until=6ms both")
	f.Add("degrade link=2>0 from=0 until=10ms rate=0.2")
	f.Add("corrupt link=1>0 from=2ms until=3ms rate=1")
	f.Add("partition a=1,2 b=0 from=4ms until=5ms asym")
	f.Add("crash node=0 at=10ms restart=20ms")
	f.Add("flushcrash node=0 at=10ms restart=20ms")
	f.Add("# comment\n\ncrash node=0 at=1us")
	f.Add("loss from==0 until=1ms rate=0..5")
	f.Add("nemesis seed=7 until=8ms nodes=4")
	f.Add("nemesis seed=-1 until=8ms nodes=4 peers=10 crashes=2 flushcrashes=1 blackouts=3 partitions=1 mindown=100us maxdown=2ms")
	f.Add("nemesis seed=1 until=0 nodes=0 crashes=9")
	f.Add("nemesis seed=x until=8ms nodes=4")
	f.Add("crash node=0 at=1ms restart=2ms\nnemesis seed=1 until=4ms nodes=2 blackouts=1")
	f.Fuzz(func(t *testing.T, script string) {
		s, err := ParseSchedule(script)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schedule fails validation: %v\nscript: %q", err, script)
		}
		// An accepted schedule must also bind to a fabric without error.
		eng := sim.New()
		net := wire.NewNetwork(eng, wire.InfiniBand56(), 1)
		net.AddNode(wire.NodeID(0))
		if _, err := NewInjector(net, s, 1); err != nil {
			t.Fatalf("accepted schedule rejected by NewInjector: %v", err)
		}
	})
}
