package fleet

import (
	"herdkv/internal/kv"
	"herdkv/internal/mica"
)

// Anti-entropy: the background convergence sweep for versioned
// replication. Read repair only fixes divergence a read happens to
// observe; the anti-entropy queue fixes the rest. Keys arrive from
// three sources — a partial write (some replica missed the fan-out), a
// stale replica observed during a read, and a completed crash recovery
// (everything the restarted shard replicates gets re-audited) — and a
// background step drains the queue in MigrationBatch-sized chunks every
// MigrationInterval, the same pacing contract migration and recovery
// catch-up obey. The step is work-queue driven and self-terminating:
// once the queue drains no further event is scheduled, so Engine.Run
// still quiesces.
//
// Repairing a key is a server-side ordered merge: read the stored bytes
// on every live replica, pick the highest kv.Version stamp, and Preload
// the winner onto every replica that is behind. The member server's
// version-ordered apply refuses regressions, so a repair racing a
// fresher foreground write is harmless.

// EnqueueRepair queues key for the background anti-entropy sweep
// (deduplicated; a no-op unless the deployment is versioned).
func (d *Deployment) EnqueueRepair(key kv.Key) {
	if !d.cfg.Versioned || d.aeQueued[key] {
		return
	}
	d.aeQueued[key] = true
	d.aeQueue = append(d.aeQueue, key)
	d.aePending.Set(int64(len(d.aeQueue)))
	d.kickAntiEntropy()
}

// AntiEntropySweep enqueues every key present on any live shard — a
// full-fleet audit, used after a crash recovery completes and by
// experiments that want certified convergence before checking state.
func (d *Deployment) AntiEntropySweep() {
	if !d.cfg.Versioned {
		return
	}
	for _, sh := range d.shards {
		if !sh.live || sh.srv.Down() {
			continue
		}
		for p := 0; p < d.cfg.Herd.NS; p++ {
			sh.srv.Partition(p).Range(func(key kv.Key, _ []byte) bool {
				d.EnqueueRepair(key)
				return true
			})
		}
	}
}

// AntiEntropyPending returns the number of keys waiting for a sweep
// step.
func (d *Deployment) AntiEntropyPending() int { return len(d.aeQueue) }

// AntiEntropyStats reports how many keys the sweep has audited and how
// many it back-filled on at least one replica.
func (d *Deployment) AntiEntropyStats() (audited, repaired uint64) {
	return d.aeKeysN, d.aeFixedN
}

// kickAntiEntropy schedules a sweep step if none is pending.
func (d *Deployment) kickAntiEntropy() {
	if d.aeRunning || len(d.aeQueue) == 0 {
		return
	}
	d.aeRunning = true
	d.eng.After(d.cfg.MigrationInterval, d.antiEntropyStep)
}

// antiEntropyStep repairs one batch of queued keys and reschedules
// itself while work remains.
func (d *Deployment) antiEntropyStep() {
	d.aeSweeps.Inc()
	n := d.cfg.MigrationBatch
	if n > len(d.aeQueue) {
		n = len(d.aeQueue)
	}
	batch := d.aeQueue[:n]
	d.aeQueue = d.aeQueue[n:]
	for _, key := range batch {
		delete(d.aeQueued, key)
		d.aeKeys.Inc()
		d.aeKeysN++
		if d.repairKey(key) {
			d.aeFixed.Inc()
			d.aeFixedN++
		}
	}
	d.aePending.Set(int64(len(d.aeQueue)))
	d.aeRunning = false
	d.kickAntiEntropy()
}

// repairKey merges key's replica states to the highest version stamp,
// reporting whether any replica was back-filled. Down replicas are
// skipped — the recovery-completion sweep re-audits them once they are
// back.
func (d *Deployment) repairKey(key kv.Key) (repaired bool) {
	reps := d.Replicas(key)
	var winner []byte
	var winVer kv.Version
	winTomb := false
	have := make([]bool, len(reps))
	vers := make([]kv.Version, len(reps))
	for i, id := range reps {
		srv := d.shards[id].srv
		if srv.Down() {
			continue
		}
		stored, ok := srv.Partition(mica.Partition(key, d.cfg.Herd.NS)).Get(key)
		if !ok {
			have[i] = false
			continue
		}
		have[i] = true
		v, tomb, _, vok := kv.SplitVersion(stored)
		if !vok {
			continue // unversioned legacy bytes: nothing to order by
		}
		vers[i] = v
		if winner == nil || winVer.Less(v) {
			winner = append([]byte(nil), stored...)
			winVer, winTomb = v, tomb
		}
	}
	if winner == nil {
		return false
	}
	_ = winTomb // tombstones replicate like any other winning state
	for i, id := range reps {
		srv := d.shards[id].srv
		if srv.Down() {
			continue
		}
		if have[i] && !vers[i].Less(winVer) {
			continue // already at (or past) the winner
		}
		if err := srv.Preload(key, winner); err == nil {
			repaired = true
		}
	}
	return repaired
}
