package fleet

import (
	"errors"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// ErrValueTooLarge mirrors the backing cache's value bound at the fleet
// client, so a fan-out write is rejected before any replica sees it.
var ErrValueTooLarge = errors.New("fleet: value exceeds maximum size")

// Client is one application host's handle on the fleet. It implements
// the kv.KV client interface on top of one HERD sub-client per shard:
//
//   - Reads go primary-first and fail over to the remaining replicas
//     when a sub-operation ends in core.ErrTimedOut, re-arming the full
//     retry budget against each replica in turn.
//   - Writes fan out to every replica and succeed when at least one
//     replica acknowledges.
//   - A shard whose operation failed terminally is suspected for
//     Config.Probation of virtual time: reads prefer other replicas
//     until the probation lapses.
//
// Counters: Issued/Completed/Failed are fleet-level — an operation
// counts as Failed only when every replica in its set failed. Per-shard
// herd.* metrics keep counting underneath.
type Client struct {
	d       *Deployment
	machine *cluster.Machine
	subs    []*core.Client // indexed by shard id; grows with AddShard
	suspect []sim.Time     // per shard id: avoid reads until this time

	issued    uint64
	completed uint64
	failed    uint64
	inflight  int

	reroutes     uint64
	replicaReads uint64
	fanoutPuts   uint64

	telIssued    *telemetry.Counter
	telCompleted *telemetry.Counter
	telFailed    *telemetry.Counter
	telReroutes  *telemetry.Counter
	telReplica   *telemetry.Counter
	telFanout    *telemetry.Counter
	telSuspected *telemetry.Counter
	telMGOps     *telemetry.Counter
	telMGKeys    *telemetry.Counter
}

var _ kv.KV = (*Client)(nil)

// ConnectClient attaches machine m to every live shard and returns the
// fleet client. Clients connected before an AddShard are attached to
// the new shard automatically.
func (d *Deployment) ConnectClient(m *cluster.Machine) (*Client, error) {
	c := &Client{d: d, machine: m, subs: make([]*core.Client, len(d.shards)), suspect: make([]sim.Time, len(d.shards))}
	tel := m.Verbs.Telemetry()
	c.telIssued = tel.Counter("fleet.ops.issued")
	c.telCompleted = tel.Counter("fleet.ops.completed")
	c.telFailed = tel.Counter("fleet.ops.failed")
	c.telReroutes = tel.Counter("fleet.reroutes")
	c.telReplica = tel.Counter("fleet.reads.replica")
	c.telFanout = tel.Counter("fleet.writes.fanout")
	c.telSuspected = tel.Counter("fleet.suspected")
	c.telMGOps = tel.Counter("fleet.multiget.ops")
	c.telMGKeys = tel.Counter("fleet.multiget.keys")
	for _, sh := range d.shards {
		if !sh.live {
			continue
		}
		sub, err := sh.srv.ConnectClient(m)
		if err != nil {
			return nil, err
		}
		c.subs[sh.id] = sub
	}
	d.clients = append(d.clients, c)
	return c, nil
}

// attach connects this client to a newly added shard.
func (c *Client) attach(sh *shard) error {
	sub, err := sh.srv.ConnectClient(c.machine)
	if err != nil {
		return err
	}
	for len(c.subs) <= sh.id {
		c.subs = append(c.subs, nil)
		c.suspect = append(c.suspect, 0)
	}
	c.subs[sh.id] = sub
	return nil
}

func (c *Client) now() sim.Time { return c.machine.Verbs.NIC().Engine().Now() }

// Inflight returns the number of fleet-level operations in flight.
func (c *Client) Inflight() int { return c.inflight }

// Issued returns fleet-level operations submitted.
func (c *Client) Issued() uint64 { return c.issued }

// Completed returns fleet-level operations that resolved successfully
// (served by at least one replica).
func (c *Client) Completed() uint64 { return c.completed }

// Failed returns fleet-level failures: operations for which every
// replica in the set failed terminally.
func (c *Client) Failed() uint64 { return c.failed }

// Reroutes counts read failovers: a sub-operation failed terminally and
// the read was reissued against the next replica.
func (c *Client) Reroutes() uint64 { return c.reroutes }

// ReplicaReads counts reads served by a non-primary replica.
func (c *Client) ReplicaReads() uint64 { return c.replicaReads }

// FanoutPuts counts fleet-level write operations (each fans out to R
// replicas).
func (c *Client) FanoutPuts() uint64 { return c.fanoutPuts }

// markSuspect starts a read probation for shard id after a terminal
// failure against it.
func (c *Client) markSuspect(id int) {
	c.suspect[id] = c.now() + c.d.cfg.Probation
	c.telSuspected.Inc()
}

// readOrder returns key's replica set reordered for a read: replicas
// not under probation first (ring order preserved within each group),
// so a recently failed primary is tried last instead of eating a full
// retry budget per read.
func (c *Client) readOrder(reps []int) []int {
	now := c.now()
	order := make([]int, 0, len(reps))
	for _, id := range reps {
		if c.suspect[id] <= now {
			order = append(order, id)
		}
	}
	for _, id := range reps {
		if c.suspect[id] > now {
			order = append(order, id)
		}
	}
	return order
}

func (c *Client) start() {
	c.issued++
	c.inflight++
	c.telIssued.Inc()
}

func (c *Client) finish(cb func(kv.Result), res kv.Result, begun sim.Time) {
	res.Latency = c.now() - begun
	c.inflight--
	if res.Err == nil {
		c.completed++
		c.telCompleted.Inc()
	} else {
		c.failed++
		c.telFailed.Inc()
	}
	if cb != nil {
		cb(res)
	}
}

// Get reads key, primary-first with failover across the replica set.
func (c *Client) Get(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	reps := c.d.Replicas(key)
	if len(reps) == 0 {
		return ErrNoShards
	}
	order := c.readOrder(reps)
	c.start()
	begun := c.now()
	c.tryGet(key, reps[0], order, 0, begun, cb)
	return nil
}

// tryGet issues the read against order[i], failing over to order[i+1]
// on a terminal error. Each attempt is a fresh sub-operation with the
// full retry budget.
func (c *Client) tryGet(key kv.Key, primary int, order []int, i int, begun sim.Time, cb func(kv.Result)) {
	err := c.subs[order[i]].Get(key, func(r kv.Result) {
		if r.Err == nil {
			if order[i] != primary {
				c.replicaReads++
				c.telReplica.Inc()
			}
			c.finish(cb, r, begun)
			return
		}
		c.markSuspect(order[i])
		if i+1 < len(order) {
			c.reroutes++
			c.telReroutes.Inc()
			c.tryGet(key, primary, order, i+1, begun, cb)
			return
		}
		r.Err = ErrAllReplicasDown
		c.finish(cb, r, begun)
	})
	if err != nil {
		// Sub-client validation errors surface asynchronously as a
		// fleet failure so accounting stays balanced.
		c.finish(cb, kv.Result{Key: key, IsGet: true, Status: kv.StatusTimeout, Err: err}, begun)
	}
}

// Put writes key to every replica in its set; the operation succeeds
// when at least one replica acknowledges. The reported Result is the
// first successful replica's, with fleet-level latency (time to the
// last replica's resolution, since that is when the outcome is known).
func (c *Client) Put(key kv.Key, value []byte, cb func(kv.Result)) error {
	return c.fanout(key, value, false, cb)
}

// Delete removes key from every replica in its set.
func (c *Client) Delete(key kv.Key, cb func(kv.Result)) error {
	return c.fanout(key, nil, true, cb)
}

func (c *Client) fanout(key kv.Key, value []byte, isDelete bool, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	if len(value) > mica.MaxValueSize {
		return ErrValueTooLarge
	}
	reps := c.d.Replicas(key)
	if len(reps) == 0 {
		return ErrNoShards
	}
	c.start()
	c.fanoutPuts++
	c.telFanout.Inc()
	begun := c.now()
	outstanding := len(reps)
	var served *kv.Result
	var lastErr kv.Result
	resolve := func(id int, r kv.Result) {
		outstanding--
		if r.Err == nil {
			if served == nil {
				cp := r
				served = &cp
			}
		} else {
			c.markSuspect(id)
			lastErr = r
		}
		if outstanding == 0 {
			if served != nil {
				c.finish(cb, *served, begun)
			} else {
				lastErr.Err = ErrAllReplicasDown
				c.finish(cb, lastErr, begun)
			}
		}
	}
	for _, id := range reps {
		id := id
		var err error
		if isDelete {
			err = c.subs[id].Delete(key, func(r kv.Result) { resolve(id, r) })
		} else {
			err = c.subs[id].Put(key, value, func(r kv.Result) { resolve(id, r) })
		}
		if err != nil {
			resolve(id, kv.Result{Key: key, Status: kv.StatusTimeout, Err: err})
		}
	}
	return nil
}

// MultiGet reads a batch of keys and delivers all results in one
// callback, in key order. Issue order is grouped by primary shard so
// requests to the same shard are batched back-to-back (they share the
// sub-client's request window and doorbells); each key still gets the
// full failover treatment of Get.
func (c *Client) MultiGet(keys []kv.Key, cb func([]kv.Result)) error {
	results := make([]kv.Result, len(keys))
	if len(keys) == 0 {
		if cb != nil {
			cb(results)
		}
		return nil
	}
	if c.d.ring.Size() == 0 {
		return ErrNoShards
	}
	for _, k := range keys {
		if k.IsZero() {
			return mica.ErrZeroKey
		}
	}
	c.telMGOps.Inc()
	c.telMGKeys.Add(uint64(len(keys)))
	// Stable bucket sort of key indices by primary shard.
	byShard := make(map[int][]int)
	for i, k := range keys {
		p := c.d.ring.Primary(k)
		byShard[p] = append(byShard[p], i)
	}
	remaining := len(keys)
	issue := func(idx int) error {
		return c.Get(keys[idx], func(r kv.Result) {
			results[idx] = r
			remaining--
			if remaining == 0 && cb != nil {
				cb(results)
			}
		})
	}
	// Iterate shards in ring order for determinism (map order is not
	// deterministic).
	for _, sid := range c.d.ring.Shards() {
		for _, idx := range byShard[sid] {
			if err := issue(idx); err != nil {
				return err
			}
		}
	}
	return nil
}
