package fleet

import (
	"errors"
	"sort"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// ErrValueTooLarge mirrors the backing cache's value bound at the fleet
// client, so a fan-out write is rejected before any replica sees it.
// In versioned mode the bound shrinks by kv.VersionPrefixLen — the
// stamp travels inside the stored value.
var ErrValueTooLarge = errors.New("fleet: value exceeds maximum size")

// ErrPartialWrite reports a versioned write that some replicas applied
// and others did not: the fleet is divergent on this key until repair
// reconciles it, so the operation fails (the write may still become
// visible — callers must treat it as indeterminate, not as a rollback).
var ErrPartialWrite = errors.New("fleet: write applied on only part of the replica set")

// Client is one application host's handle on the fleet. It implements
// the kv.KV client interface on top of one HERD sub-client per shard:
//
//   - Reads go primary-first and fail over to the remaining replicas
//     when a sub-operation ends in core.ErrTimedOut, re-arming the full
//     retry budget against each replica in turn.
//   - Writes fan out to every replica and succeed when at least one
//     replica acknowledges.
//   - A shard whose operation failed terminally is suspected for
//     Config.Probation of virtual time: reads prefer other replicas
//     until the probation lapses.
//
// Counters: Issued/Completed/Failed are fleet-level — an operation
// counts as Failed only when every replica in its set failed. Per-shard
// herd.* metrics keep counting underneath.
type Client struct {
	d       *Deployment
	machine *cluster.Machine
	subs    []kv.KV     // indexed by shard id; grows with AddShard
	suspect []sim.Time  // per shard id: avoid reads until this time
	brk     []breaker   // per shard id: brownout circuit breaker
	hot     *hotTracker // hot-key detector, nil when HotKeyTrack is 0

	issued    uint64
	completed uint64
	failed    uint64
	inflight  int

	reroutes     uint64
	replicaReads uint64
	fanoutPuts   uint64
	suspected    uint64
	brkOpens     uint64
	brkCloses    uint64
	brkProbes    uint64
	hotWidened   uint64

	// Versioned-replication state: the write-stamp generator (verID
	// breaks same-instant ties between clients, verSeq between this
	// client's own writes) and the per-key floor of completed write
	// stamps — a read round whose winner is below the floor is provably
	// stale.
	verID  uint64
	verSeq uint64
	floors map[kv.Key]kv.Version

	partialWrites uint64
	staleObserved uint64
	staleReads    uint64
	repairIssued  uint64
	repairApplied uint64

	telIssued     *telemetry.Counter
	telCompleted  *telemetry.Counter
	telFailed     *telemetry.Counter
	telReroutes   *telemetry.Counter
	telReplica    *telemetry.Counter
	telFanout     *telemetry.Counter
	telSuspected  *telemetry.Counter
	telMGOps      *telemetry.Counter
	telMGKeys     *telemetry.Counter
	telBrkOpened  *telemetry.Counter
	telBrkClosed  *telemetry.Counter
	telBrkProbes  *telemetry.Counter
	telBrkState   *telemetry.Gauge
	telHotWidened *telemetry.Counter
	telHotKeys    *telemetry.Gauge

	telPartial       *telemetry.Counter
	telStaleObserved *telemetry.Counter
	telStaleReads    *telemetry.Counter
	telRepairIssued  *telemetry.Counter
	telRepairApplied *telemetry.Counter
}

// breakerState is the per-shard brownout circuit-breaker state.
type breakerState int

const (
	// breakerClosed: the shard serves normally.
	breakerClosed breakerState = iota
	// breakerOpen: consecutive busy pushback tripped the breaker; reads
	// steer to other replicas until the cooldown lapses.
	breakerOpen
	// breakerHalfOpen: the cooldown lapsed and one probe read is
	// testing the shard; success closes the breaker, busy reopens it.
	breakerHalfOpen
)

// breaker tracks one shard's brownout state. Busy pushback means the
// shard is alive but shedding — a different condition from a suspected
// crash (Probation), so it gets its own state machine: N consecutive
// busy failures open the breaker, reads steer away for the cooldown,
// then a single half-open probe decides between restore and re-open.
type breaker struct {
	state   breakerState
	fails   int      // consecutive busy failures while closed
	until   sim.Time // open until: no probe before this time
	probing bool     // a half-open probe read is in flight
}

var _ kv.KV = (*Client)(nil)

// ConnectClient attaches machine m to every live shard and returns the
// fleet client. Clients connected before an AddShard are attached to
// the new shard automatically.
func (d *Deployment) ConnectClient(m *cluster.Machine) (*Client, error) {
	c := &Client{
		d:       d,
		machine: m,
		subs:    make([]kv.KV, len(d.shards)),
		suspect: make([]sim.Time, len(d.shards)),
		brk:     make([]breaker, len(d.shards)),
	}
	tel := m.Verbs.Telemetry()
	c.telIssued = tel.Counter("fleet.ops.issued")
	c.telCompleted = tel.Counter("fleet.ops.completed")
	c.telFailed = tel.Counter("fleet.ops.failed")
	c.telReroutes = tel.Counter("fleet.reroutes")
	c.telReplica = tel.Counter("fleet.reads.replica")
	c.telFanout = tel.Counter("fleet.writes.fanout")
	c.telSuspected = tel.Counter("fleet.suspected")
	c.telMGOps = tel.Counter("fleet.multiget.ops")
	c.telMGKeys = tel.Counter("fleet.multiget.keys")
	c.telBrkOpened = tel.Counter("fleet.breaker.opened")
	c.telBrkClosed = tel.Counter("fleet.breaker.closed")
	c.telBrkProbes = tel.Counter("fleet.breaker.probes")
	c.telBrkState = tel.Gauge("fleet.breaker_state")
	c.telHotWidened = tel.Counter("fleet.hotkey.widened")
	c.telHotKeys = tel.Gauge("fleet.hotkey.hot")
	c.telPartial = tel.Counter("fleet.writes.partial")
	c.telStaleObserved = tel.Counter("fleet.repair.stale")
	c.telStaleReads = tel.Counter("fleet.reads.stale")
	c.telRepairIssued = tel.Counter("fleet.repair.issued")
	c.telRepairApplied = tel.Counter("fleet.repair.applied")
	c.verID = uint64(len(d.clients))
	if d.cfg.HotKeyTrack > 0 {
		c.hot = newHotTracker(d.cfg.HotKeyTrack, d.cfg.HotKeyThreshold, d.cfg.HotKeyWindow)
	}
	for _, sh := range d.shards {
		if !sh.live {
			continue
		}
		sub, err := d.dial(m, sh)
		if err != nil {
			return nil, err
		}
		c.subs[sh.id] = sub
	}
	d.clients = append(d.clients, c)
	return c, nil
}

// attach connects this client to a newly added shard.
func (c *Client) attach(sh *shard) error {
	sub, err := c.d.dial(c.machine, sh)
	if err != nil {
		return err
	}
	for len(c.subs) <= sh.id {
		c.subs = append(c.subs, nil)
		c.suspect = append(c.suspect, 0)
		c.brk = append(c.brk, breaker{})
	}
	c.subs[sh.id] = sub
	return nil
}

func (c *Client) now() sim.Time { return c.machine.Verbs.NIC().Engine().Now() }

// Inflight returns the number of fleet-level operations in flight.
func (c *Client) Inflight() int { return c.inflight }

// Issued returns fleet-level operations submitted.
func (c *Client) Issued() uint64 { return c.issued }

// Completed returns fleet-level operations that resolved successfully
// (served by at least one replica).
func (c *Client) Completed() uint64 { return c.completed }

// Failed returns fleet-level failures: operations for which every
// replica in the set failed terminally.
func (c *Client) Failed() uint64 { return c.failed }

// Reroutes counts read failovers: a sub-operation failed terminally and
// the read was reissued against the next replica.
func (c *Client) Reroutes() uint64 { return c.reroutes }

// ReplicaReads counts reads served by a non-primary replica.
func (c *Client) ReplicaReads() uint64 { return c.replicaReads }

// FanoutPuts counts fleet-level write operations (each fans out to R
// replicas).
func (c *Client) FanoutPuts() uint64 { return c.fanoutPuts }

// Suspected counts probation starts: terminal (crash-class) failures
// against a shard. Busy pushback never increments it.
func (c *Client) Suspected() uint64 { return c.suspected }

// BreakerOpens, BreakerCloses and BreakerProbes count the brownout
// circuit breaker's transitions: trips to open (including half-open
// probes that failed), restores to closed, and half-open probe reads.
func (c *Client) BreakerOpens() uint64  { return c.brkOpens }
func (c *Client) BreakerCloses() uint64 { return c.brkCloses }
func (c *Client) BreakerProbes() uint64 { return c.brkProbes }

// HotWidened counts reads of a hot key that widening steered to a
// non-primary start of the replica order.
func (c *Client) HotWidened() uint64 { return c.hotWidened }

// PartialWrites counts writes that some replicas applied and others
// did not — in legacy mode a silent divergence (the op still reports
// success), in versioned mode a failed op with ErrPartialWrite.
func (c *Client) PartialWrites() uint64 { return c.partialWrites }

// StaleObserved counts replicas a versioned read round caught behind
// the winning version (each is a read-repair candidate).
func (c *Client) StaleObserved() uint64 { return c.staleObserved }

// StaleReads counts versioned reads whose winning version was below
// this client's floor of completed writes — a provably stale result.
func (c *Client) StaleReads() uint64 { return c.staleReads }

// RepairsIssued and RepairsApplied count read-repair back-fills sent to
// lagging replicas and those the replica acknowledged.
func (c *Client) RepairsIssued() uint64  { return c.repairIssued }
func (c *Client) RepairsApplied() uint64 { return c.repairApplied }

// BreakerOpen reports whether shard id's breaker is currently steering
// reads away (open or mid-probe).
func (c *Client) BreakerOpen(id int) bool {
	if id < 0 || id >= len(c.brk) {
		return false
	}
	return c.brk[id].state != breakerClosed
}

// markSuspect starts a read probation for shard id after a terminal
// failure against it.
func (c *Client) markSuspect(id int) {
	c.suspect[id] = c.now() + c.d.cfg.Probation
	c.suspected++
	c.telSuspected.Inc()
}

// noteBusy records a StatusBusy (overload pushback) failure against
// shard id: the brownout path. Consecutive busy failures trip the
// breaker open; a failed half-open probe re-opens it. Probation is
// never touched — the shard is alive.
func (c *Client) noteBusy(id int) {
	b := &c.brk[id]
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.until = c.now() + c.d.cfg.BreakerCooldown
		c.brkOpens++
		c.telBrkOpened.Inc()
	case breakerClosed:
		b.fails++
		if b.fails >= c.d.cfg.BreakerThreshold {
			b.state = breakerOpen
			b.until = c.now() + c.d.cfg.BreakerCooldown
			b.fails = 0
			c.brkOpens++
			c.telBrkOpened.Inc()
			c.telBrkState.Add(1)
		}
	case breakerOpen:
		b.until = c.now() + c.d.cfg.BreakerCooldown
	}
}

// noteServed records a successful read or write against shard id: the
// busy streak resets, and a non-closed breaker (including a half-open
// probe that just succeeded) fully restores.
func (c *Client) noteServed(id int) {
	b := &c.brk[id]
	b.fails = 0
	b.probing = false
	if b.state != breakerClosed {
		b.state = breakerClosed
		c.brkCloses++
		c.telBrkClosed.Inc()
		c.telBrkState.Add(-1)
	}
}

// noteReadIssue runs before a read is issued to shard id: an open
// breaker whose cooldown lapsed transitions to half-open, and this
// read becomes its probe.
func (c *Client) noteReadIssue(id int) {
	b := &c.brk[id]
	if b.state == breakerOpen && b.until <= c.now() && !b.probing {
		b.state = breakerHalfOpen
		b.probing = true
		c.brkProbes++
		c.telBrkProbes.Inc()
	}
}

// readPreferred reports whether shard id should be in the front tier
// of a read order: not under probation, and its breaker either closed
// or due for a half-open probe.
func (c *Client) readPreferred(id int, now sim.Time) bool {
	if c.suspect[id] > now {
		return false
	}
	switch b := &c.brk[id]; b.state {
	case breakerOpen:
		return b.until <= now && !b.probing
	case breakerHalfOpen:
		return !b.probing
	}
	return true
}

// readOrder returns key's replica set reordered for a read: healthy
// replicas first (ring order preserved within each group), then
// probationed or breaker-open ones — so a recently failed or
// browned-out primary is tried last instead of eating a full retry
// budget (or another busy round trip) per read.
func (c *Client) readOrder(reps []int) []int {
	now := c.now()
	order := make([]int, 0, len(reps))
	for _, id := range reps {
		if c.readPreferred(id, now) {
			order = append(order, id)
		}
	}
	// The back tier is NOT ring order: when every replica is suspect,
	// ring order could try a shard that failed moments ago before one
	// whose probation is about to lapse. Sort by probation expiry, then
	// breaker cooldown, with the shard id as a deterministic tie-break
	// so replays are stable when several replicas were suspected at the
	// same instant.
	tail := make([]int, 0, len(reps))
	for _, id := range reps {
		if !c.readPreferred(id, now) {
			tail = append(tail, id)
		}
	}
	sort.Slice(tail, func(i, j int) bool {
		a, b := tail[i], tail[j]
		if c.suspect[a] != c.suspect[b] {
			return c.suspect[a] < c.suspect[b]
		}
		if c.brk[a].until != c.brk[b].until {
			return c.brk[a].until < c.brk[b].until
		}
		return a < b
	})
	return append(order, tail...)
}

func (c *Client) start() {
	c.issued++
	c.inflight++
	c.telIssued.Inc()
}

func (c *Client) finish(cb func(kv.Result), res kv.Result, begun sim.Time) {
	res.Latency = c.now() - begun
	c.inflight--
	if res.Err == nil {
		c.completed++
		c.telCompleted.Inc()
	} else {
		c.failed++
		c.telFailed.Inc()
	}
	if cb != nil {
		cb(res)
	}
}

// Get reads key: primary-first with failover across the replica set in
// legacy mode, read-all with version arbitration (and optional read
// repair) in versioned mode.
func (c *Client) Get(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	reps := c.d.Replicas(key)
	if len(reps) == 0 {
		return ErrNoShards
	}
	if c.d.cfg.Versioned {
		return c.getVersioned(key, reps, cb)
	}
	order := c.readOrder(reps)
	if c.hot != nil {
		order = c.widen(key, order)
	}
	c.start()
	begun := c.now()
	c.tryGet(key, reps[0], order, 0, begun, cb)
	return nil
}

// tryGet issues the read against order[i], failing over to order[i+1]
// on a terminal error. Each attempt is a fresh sub-operation with the
// full retry budget.
func (c *Client) tryGet(key kv.Key, primary int, order []int, i int, begun sim.Time, cb func(kv.Result)) {
	c.noteReadIssue(order[i])
	err := c.subs[order[i]].Get(key, func(r kv.Result) {
		if r.Err == nil {
			c.noteServed(order[i])
			if order[i] != primary {
				c.replicaReads++
				c.telReplica.Inc()
			}
			c.finish(cb, r, begun)
			return
		}
		// Busy is a brownout: the shard is alive but shedding, so it
		// feeds the circuit breaker and must NOT start a probation —
		// failover churn on overload would amplify the overload.
		// Everything else is a crash-class failure and suspects the
		// shard as before.
		if r.Status == kv.StatusBusy {
			c.noteBusy(order[i])
		} else {
			c.markSuspect(order[i])
		}
		if i+1 < len(order) {
			c.reroutes++
			c.telReroutes.Inc()
			c.tryGet(key, primary, order, i+1, begun, cb)
			return
		}
		r.Err = ErrAllReplicasDown
		c.finish(cb, r, begun)
	})
	if err != nil {
		// Sub-client validation errors surface asynchronously as a
		// fleet failure so accounting stays balanced.
		c.finish(cb, kv.Result{Key: key, IsGet: true, Status: kv.StatusTimeout, Err: err}, begun)
	}
}

// Put writes key to every replica in its set; the operation succeeds
// when at least one replica acknowledges. The reported Result is the
// first successful replica's, with fleet-level latency (time to the
// last replica's resolution, since that is when the outcome is known).
func (c *Client) Put(key kv.Key, value []byte, cb func(kv.Result)) error {
	return c.fanout(key, value, false, cb)
}

// Delete removes key from every replica in its set.
func (c *Client) Delete(key kv.Key, cb func(kv.Result)) error {
	return c.fanout(key, nil, true, cb)
}

func (c *Client) fanout(key kv.Key, value []byte, isDelete bool, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	limit := mica.MaxValueSize
	if c.d.cfg.Versioned {
		limit -= kv.VersionPrefixLen
	}
	if len(value) > limit {
		return ErrValueTooLarge
	}
	reps := c.d.Replicas(key)
	if len(reps) == 0 {
		return ErrNoShards
	}
	if c.d.cfg.Versioned {
		return c.fanoutVersioned(key, value, isDelete, reps, cb)
	}
	c.start()
	c.fanoutPuts++
	c.telFanout.Inc()
	begun := c.now()
	outstanding := len(reps)
	failures := 0
	var served *kv.Result
	var lastErr kv.Result
	resolve := func(id int, r kv.Result) {
		outstanding--
		if r.Err == nil {
			c.noteServed(id)
			if served == nil {
				cp := r
				served = &cp
			}
		} else {
			// Busy = brownout, not a crash: feed the breaker, skip
			// probation (mirrors tryGet).
			if r.Status == kv.StatusBusy {
				c.noteBusy(id)
			} else {
				c.markSuspect(id)
			}
			failures++
			lastErr = r
		}
		if outstanding == 0 {
			if served != nil {
				if failures > 0 {
					// First-ack semantics swallow straggler failures:
					// the op succeeds but the replica set is now
					// divergent on this key. Count it — repair only
					// exists in versioned mode.
					c.partialWrites++
					c.telPartial.Inc()
				}
				c.finish(cb, *served, begun)
			} else {
				lastErr.Err = ErrAllReplicasDown
				c.finish(cb, lastErr, begun)
			}
		}
	}
	for _, id := range reps {
		id := id
		var err error
		if isDelete {
			err = c.subs[id].Delete(key, func(r kv.Result) { resolve(id, r) })
		} else {
			err = c.subs[id].Put(key, value, func(r kv.Result) { resolve(id, r) })
		}
		if err != nil {
			resolve(id, kv.Result{Key: key, Status: kv.StatusTimeout, Err: err})
		}
	}
	return nil
}

// fanoutVersioned is the versioned write path: the value is stamped
// with a fresh (epoch, seq) version — a tombstone for deletes — and
// sent to every replica as an ordinary PUT. The op succeeds only when
// every replica acks; a mixed outcome is a partial write (divergence),
// which fails the op with ErrPartialWrite and hands the key to the
// anti-entropy queue when repair is enabled.
func (c *Client) fanoutVersioned(key kv.Key, value []byte, isDelete bool, reps []int, cb func(kv.Result)) error {
	c.verSeq++
	stamp := kv.Version{Epoch: int64(c.now()), Seq: c.verSeq<<16 | c.verID&0xffff}
	stored := kv.AppendVersion(make([]byte, 0, kv.VersionPrefixLen+len(value)), stamp, isDelete)
	stored = append(stored, value...)
	c.start()
	c.fanoutPuts++
	c.telFanout.Inc()
	begun := c.now()
	outstanding := len(reps)
	failures := 0
	var best *kv.Result
	var lastErr kv.Result
	resolve := func(id int, r kv.Result) {
		outstanding--
		if r.Err == nil {
			c.noteServed(id)
			// The server answers a tombstone PUT with delete semantics
			// (Hit: killed a live entry); replicas can only disagree
			// when already divergent, so prefer the Hit answer.
			if best == nil || (r.Status == kv.StatusHit && best.Status != kv.StatusHit) {
				cp := r
				best = &cp
			}
		} else {
			if r.Status == kv.StatusBusy {
				c.noteBusy(id)
			} else {
				c.markSuspect(id)
			}
			failures++
			lastErr = r
		}
		if outstanding != 0 {
			return
		}
		switch {
		case failures == 0:
			res := *best
			res.Key, res.IsGet, res.Value = key, false, nil
			c.noteFloor(key, stamp)
			c.finish(cb, res, begun)
		case best != nil:
			c.partialWrites++
			c.telPartial.Inc()
			if c.d.cfg.ReadRepair {
				c.d.EnqueueRepair(key)
			}
			res := *best
			res.Key, res.IsGet, res.Value = key, false, nil
			res.Err = ErrPartialWrite
			c.finish(cb, res, begun)
		default:
			lastErr.Err = ErrAllReplicasDown
			c.finish(cb, lastErr, begun)
		}
	}
	for _, id := range reps {
		id := id
		err := c.subs[id].Put(key, stored, func(r kv.Result) { resolve(id, r) })
		if err != nil {
			resolve(id, kv.Result{Key: key, Status: kv.StatusTimeout, Err: err})
		}
	}
	return nil
}

// noteFloor raises this client's completed-write floor for key.
func (c *Client) noteFloor(key kv.Key, v kv.Version) {
	if c.floors == nil {
		c.floors = make(map[kv.Key]kv.Version)
	}
	if f, ok := c.floors[key]; !ok || f.Less(v) {
		c.floors[key] = v
	}
}

// getVersioned is the versioned read path: fan the read to every
// replica, arbitrate by version stamp, and answer with the winner's
// payload (a tombstone or absent winner is a miss). Replicas caught
// behind the winner are counted stale and — with ReadRepair — back-
// filled inline with the winning bytes; the member server's ordered
// apply makes a repair racing a fresher write harmless.
func (c *Client) getVersioned(key kv.Key, reps []int, cb func(kv.Result)) error {
	c.start()
	begun := c.now()
	type replicaState struct {
		id      int
		present bool
		ver     kv.Version
		tomb    bool
		payload []byte
		stored  []byte
	}
	outstanding := len(reps)
	states := make([]replicaState, 0, len(reps))
	var lastErr kv.Result
	resolve := func(id int, r kv.Result) {
		outstanding--
		if r.Err != nil {
			if r.Status == kv.StatusBusy {
				c.noteBusy(id)
			} else {
				c.markSuspect(id)
			}
			lastErr = r
		} else {
			c.noteServed(id)
			st := replicaState{id: id}
			if r.Status == kv.StatusHit {
				st.present = true
				st.stored = r.Value
				if v, tomb, payload, ok := kv.SplitVersion(r.Value); ok {
					st.ver, st.tomb, st.payload = v, tomb, payload
				} else {
					// Unversioned legacy bytes rank at version zero.
					st.payload = r.Value
				}
			}
			states = append(states, st)
		}
		if outstanding != 0 {
			return
		}
		if len(states) == 0 {
			lastErr.Err = ErrAllReplicasDown
			c.finish(cb, lastErr, begun)
			return
		}
		win := -1
		for i := range states {
			if !states[i].present {
				continue
			}
			if win < 0 || states[win].ver.Less(states[i].ver) {
				win = i
			}
		}
		res := kv.Result{Key: key, IsGet: true, Status: kv.StatusMiss}
		if win >= 0 {
			w := &states[win]
			if !w.tomb {
				res.Status = kv.StatusHit
				res.Value = append([]byte(nil), w.payload...)
			}
			if f := c.floors[key]; w.ver.Less(f) {
				// Every replica that answered is behind a write this
				// client completed: the result is provably stale.
				c.staleReads++
				c.telStaleReads.Inc()
				if c.d.cfg.ReadRepair {
					c.d.EnqueueRepair(key)
				}
			}
			for i := range states {
				st := &states[i]
				if i == win || (st.present && !st.ver.Less(w.ver)) {
					continue
				}
				c.staleObserved++
				c.telStaleObserved.Inc()
				if !c.d.cfg.ReadRepair {
					continue
				}
				c.repairIssued++
				c.telRepairIssued.Inc()
				fill := append([]byte(nil), w.stored...)
				if err := c.subs[st.id].Put(key, fill, func(r kv.Result) {
					if r.Err == nil {
						c.repairApplied++
						c.telRepairApplied.Inc()
					}
				}); err != nil {
					// Validation failures just drop the repair; the
					// anti-entropy sweep will retry the key.
					c.d.EnqueueRepair(key)
				}
			}
		} else if f := c.floors[key]; !f.IsZero() {
			c.staleReads++
			c.telStaleReads.Inc()
			if c.d.cfg.ReadRepair {
				c.d.EnqueueRepair(key)
			}
		}
		c.finish(cb, res, begun)
	}
	for _, id := range reps {
		id := id
		c.noteReadIssue(id)
		err := c.subs[id].Get(key, func(r kv.Result) { resolve(id, r) })
		if err != nil {
			resolve(id, kv.Result{Key: key, IsGet: true, Status: kv.StatusTimeout, Err: err})
		}
	}
	return nil
}

// MultiGet reads a batch of keys and delivers all results in one
// callback, in key order. Issue order is grouped by primary shard so
// requests to the same shard are batched back-to-back (they share the
// sub-client's request window and doorbells); each key still gets the
// full failover treatment of Get.
func (c *Client) MultiGet(keys []kv.Key, cb func([]kv.Result)) error {
	results := make([]kv.Result, len(keys))
	if len(keys) == 0 {
		if cb != nil {
			cb(results)
		}
		return nil
	}
	if c.d.ring.Size() == 0 {
		return ErrNoShards
	}
	for _, k := range keys {
		if k.IsZero() {
			return mica.ErrZeroKey
		}
	}
	c.telMGOps.Inc()
	c.telMGKeys.Add(uint64(len(keys)))
	// Duplicate keys issue one read; the shared result lands in every
	// position that asked for it. pos keys first-appearance order via
	// uniq, so issue order is stable regardless of duplication.
	pos := make(map[kv.Key][]int)
	uniq := make([]kv.Key, 0, len(keys))
	for i, k := range keys {
		if _, dup := pos[k]; !dup {
			uniq = append(uniq, k)
		}
		pos[k] = append(pos[k], i)
	}
	// Stable bucket sort of unique keys by primary shard.
	byShard := make(map[int][]kv.Key)
	for _, k := range uniq {
		p := c.d.ring.Primary(k)
		byShard[p] = append(byShard[p], k)
	}
	remaining := len(uniq)
	issue := func(k kv.Key) error {
		return c.Get(k, func(r kv.Result) {
			for _, idx := range pos[k] {
				results[idx] = r
			}
			remaining--
			if remaining == 0 && cb != nil {
				cb(results)
			}
		})
	}
	// Iterate shards in ring order for determinism (map order is not
	// deterministic).
	for _, sid := range c.d.ring.Shards() {
		for _, k := range byShard[sid] {
			if err := issue(k); err != nil {
				return err
			}
		}
	}
	return nil
}
