package fleet

import (
	"errors"
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/fault"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/mux"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// Errors returned by deployment operations.
var (
	ErrNoShards        = errors.New("fleet: no live shards")
	ErrMigrating       = errors.New("fleet: a membership change is already in progress")
	ErrUnknownShard    = errors.New("fleet: unknown shard id")
	ErrLastReplica     = errors.New("fleet: cannot remove below one live shard")
	ErrShardNotLive    = errors.New("fleet: shard is not live")
	ErrAllReplicasDown = errors.New("fleet: all replicas failed")
)

// Config parameterizes a fleet deployment.
type Config struct {
	// Herd configures each member HERD server and its clients.
	Herd core.Config
	// Replication is the replica count R per key (default 2, clamped
	// to the live shard count).
	Replication int
	// VirtualNodes per shard on the consistent-hash ring (default 64).
	VirtualNodes int
	// MigrationBatch is how many keys one background migration step
	// copies (default 64).
	MigrationBatch int
	// MigrationInterval is the virtual-time spacing between migration
	// steps (default 2us), bounding how much control-plane copying can
	// interleave with foreground traffic.
	MigrationInterval sim.Time
	// Probation is how long a client avoids reading from a shard after
	// an operation against it failed terminally (default 200us). Writes
	// still fan out to suspected shards so their caches stay warm for
	// when they return.
	Probation sim.Time
	// BreakerThreshold is how many consecutive StatusBusy (overload
	// pushback) failures against one shard trip its circuit breaker
	// open (default 3). Busy is a brownout signal — the shard is alive
	// but refusing work — so the breaker is separate from Probation,
	// which marks suspected crashes.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker steers reads away
	// from a shard before allowing a half-open probe read (default
	// 200us).
	BreakerCooldown sim.Time
	// HotKeyTrack is the number of keys each client's hot-key detector
	// tracks (a space-saving top-k sketch; see hotkey.go). 0, the
	// default, disables detection and widening entirely — reads stay
	// primary-first.
	HotKeyTrack int
	// HotKeyThreshold is how many reads of one key within the sliding
	// window classify it hot and start widening its reads across the
	// replica set (default 32 when tracking is on).
	HotKeyThreshold int
	// HotKeyWindow is the sliding-window length for hot-key detection
	// (default 100us when tracking is on). Counts age out after at most
	// two windows, so a key that cools stops widening.
	HotKeyWindow sim.Time
	// Versioned switches the fleet to version-stamped replication:
	// every write carries a kv.Version prefix ([epoch 8][seq 8]
	// [flags 1]) inside the stored value, member servers apply
	// mutations in stamp order (core.Config.VersionedValues), deletes
	// become tombstones, writes succeed only when EVERY replica acks
	// (a straggler failure is a partial write, not a success), and
	// reads fan to all replicas and return the highest-stamped state.
	// Off by default — the paper's unversioned first-ack fan-out.
	Versioned bool
	// ReadRepair, with Versioned, back-fills divergent replicas: a
	// read that observes a replica behind the winning version rewrites
	// the winner to it, and partial writes enqueue their key for the
	// background anti-entropy sweep (paced by MigrationBatch /
	// MigrationInterval, like migration). Implies Versioned.
	ReadRepair bool
	// Mux, when non-nil, routes each fleet client's per-shard
	// sub-clients through a shared endpoint (internal/mux) instead of
	// dialing one connected QP set per client per shard. All fleet
	// clients on one machine multiplex over one Mux.QPs-wide pool per
	// shard, so a member server's connected-QP count scales with client
	// machines, not with application clients — the connection-
	// scalability story of docs/SCALABILITY.md applied fleet-wide.
	Mux *mux.Config
}

// DefaultConfig returns the fleet defaults on top of core's HERD
// defaults (with retries enabled: failover needs terminal timeouts).
func DefaultConfig() Config {
	hc := core.DefaultConfig()
	hc.RetryTimeout = 12 * sim.Microsecond
	return Config{
		Herd:              hc,
		Replication:       2,
		VirtualNodes:      64,
		MigrationBatch:    64,
		MigrationInterval: 2 * sim.Microsecond,
		Probation:         200 * sim.Microsecond,
	}
}

func (c *Config) setDefaults() {
	// Failover needs terminal timeouts: with retries disabled an
	// operation against a crashed shard would hang forever instead of
	// failing over, so the fleet always enables them.
	if c.Herd.RetryTimeout <= 0 {
		c.Herd.RetryTimeout = 12 * sim.Microsecond
	}
	if c.Replication < 1 {
		c.Replication = 2
	}
	if c.VirtualNodes < 1 {
		c.VirtualNodes = 64
	}
	if c.MigrationBatch < 1 {
		c.MigrationBatch = 64
	}
	if c.MigrationInterval <= 0 {
		c.MigrationInterval = 2 * sim.Microsecond
	}
	if c.Probation <= 0 {
		c.Probation = 200 * sim.Microsecond
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 200 * sim.Microsecond
	}
	if c.HotKeyTrack > 0 {
		if c.HotKeyThreshold < 1 {
			c.HotKeyThreshold = 32
		}
		if c.HotKeyWindow <= 0 {
			c.HotKeyWindow = 100 * sim.Microsecond
		}
	}
	// Repair is meaningless without version stamps to order replica
	// states, and stamps are only applied server-side when the member
	// config says so.
	if c.ReadRepair {
		c.Versioned = true
	}
	if c.Versioned {
		c.Herd.VersionedValues = true
	}
	// Brownout handling needs shed sub-operations to resolve: without a
	// deadline a busy-retried op spins on server hints forever and the
	// fleet never gets a StatusBusy to steer on. Only ops the server
	// actually sheds are affected, so this is inert unless a member
	// server enables admission control.
	if c.Herd.OpDeadline <= 0 {
		c.Herd.OpDeadline = 4 * c.Herd.RetryTimeout
	}
}

// shard is one ring member: a HERD server plus its liveness flag.
// Shard ids are stable for the deployment's lifetime and never reused;
// a removed shard keeps its id but leaves the ring.
type shard struct {
	id      int
	machine *cluster.Machine
	srv     *core.Server
	live    bool
}

// migEntry is one key scheduled for background copying.
type migEntry struct {
	key   kv.Key
	src   int   // source shard id (value re-read at copy time)
	dests []int // destination shard ids
}

// migration tracks one in-progress membership change.
type migration struct {
	target   *Ring
	queue    []migEntry
	pos      int
	removeID int // shard leaving the ring, or -1
	done     func()
}

// Deployment is a consistent-hash fleet of HERD servers with per-key
// replication. Placement derives from the cluster seed (via
// core.PlacementSeed), so a deployment replays identically for a given
// seed and differs across seeds.
type Deployment struct {
	cfg     Config
	eng     *sim.Engine
	ring    *Ring
	shards  []*shard
	clients []*Client
	mig     *migration

	// endpoints caches the shared mux endpoint per (client machine,
	// shard) when Config.Mux is set; every fleet client on that machine
	// opens channels on the same pool.
	endpoints map[endpointKey]*mux.Endpoint

	// Shard crash recovery (recovery.go): in-progress catch-ups by
	// shard id, the last completed one, and the experiment hook.
	recs         map[int]*recovery
	lastRecovery RecoveryResult
	onRecovered  func(RecoveryResult)

	tel        *telemetry.Sink
	migKeys    *telemetry.Counter
	migRounds  *telemetry.Counter
	migActive  *telemetry.Gauge
	migPending *telemetry.Gauge
	recKeys    *telemetry.Counter
	recRounds  *telemetry.Counter
	recActive  *telemetry.Gauge
	recPending *telemetry.Gauge
	recTime    *telemetry.Gauge

	// Anti-entropy (antientropy.go): the repair work queue, its dedup
	// set, and whether a sweep step is scheduled.
	aeQueue   []kv.Key
	aeQueued  map[kv.Key]bool
	aeRunning bool
	aeSweeps  *telemetry.Counter
	aeKeys    *telemetry.Counter
	aeFixed   *telemetry.Counter
	aePending *telemetry.Gauge
	// Raw mirrors of the sweep counters, for reports without a sink.
	aeKeysN  uint64
	aeFixedN uint64
}

// NewDeployment builds a fleet with one HERD server per machine. All
// machines must belong to the same cluster (they share its engine).
func NewDeployment(machines []*cluster.Machine, cfg Config) (*Deployment, error) {
	if len(machines) < 1 {
		return nil, fmt.Errorf("fleet: deployment needs at least one server machine")
	}
	cfg.setDefaults()
	d := &Deployment{
		cfg: cfg,
		eng: machines[0].Verbs.NIC().Engine(),
		tel: machines[0].Verbs.Telemetry(),
	}
	d.migKeys = d.tel.Counter("fleet.migration.keys")
	d.migRounds = d.tel.Counter("fleet.migration.rounds")
	d.migActive = d.tel.Gauge("fleet.migration.active")
	d.migPending = d.tel.Gauge("fleet.migration.pending")
	d.recKeys = d.tel.Counter("fleet.recovery.keys")
	d.recRounds = d.tel.Counter("fleet.recovery.rounds")
	d.recActive = d.tel.Gauge("fleet.recovery.active")
	d.recPending = d.tel.Gauge("fleet.recovery.pending")
	d.recTime = d.tel.Gauge("fleet.recovery.time")
	d.aeSweeps = d.tel.Counter("fleet.antientropy.sweeps")
	d.aeKeys = d.tel.Counter("fleet.antientropy.keys")
	d.aeFixed = d.tel.Counter("fleet.antientropy.repaired")
	d.aePending = d.tel.Gauge("fleet.antientropy.pending")
	d.aeQueued = make(map[kv.Key]bool)
	d.ring = NewRing(core.PlacementSeed(machines[0]), cfg.VirtualNodes)
	for _, m := range machines {
		srv, err := core.NewServer(m, cfg.Herd)
		if err != nil {
			return nil, err
		}
		id := len(d.shards)
		sh := &shard{id: id, machine: m, srv: srv, live: true}
		d.shards = append(d.shards, sh)
		d.ring = d.ring.WithShard(id)
		d.watchRecovery(sh)
	}
	return d, nil
}

// endpointKey identifies one machine's shared endpoint to one shard.
type endpointKey struct {
	machine *cluster.Machine
	shard   int
}

// dial returns a sub-client transport from machine m to shard sh:
// a dedicated connected HERD client by default, or a channel on the
// machine's shared mux endpoint when Config.Mux is set.
func (d *Deployment) dial(m *cluster.Machine, sh *shard) (kv.KV, error) {
	if d.cfg.Mux == nil {
		sub, err := sh.srv.ConnectClient(m)
		if err != nil {
			return nil, err
		}
		return sub, nil
	}
	key := endpointKey{machine: m, shard: sh.id}
	ep := d.endpoints[key]
	if ep == nil {
		var err error
		ep, err = mux.Connect(sh.srv, m, *d.cfg.Mux)
		if err != nil {
			return nil, err
		}
		if d.endpoints == nil {
			d.endpoints = make(map[endpointKey]*mux.Endpoint)
		}
		d.endpoints[key] = ep
	}
	ch, err := ep.OpenChannel()
	if err != nil {
		return nil, err
	}
	return ch, nil
}

// Endpoint returns machine m's shared mux endpoint to shard id, or nil
// when muxing is off (or no client on m has dialed that shard yet).
func (d *Deployment) Endpoint(m *cluster.Machine, id int) *mux.Endpoint {
	return d.endpoints[endpointKey{machine: m, shard: id}]
}

// Ring returns the current routing ring (immutable snapshot).
func (d *Deployment) Ring() *Ring { return d.ring }

// Shards returns the number of live shards.
func (d *Deployment) Shards() int {
	n := 0
	for _, sh := range d.shards {
		if sh.live {
			n++
		}
	}
	return n
}

// Server returns shard id's server (nil for unknown ids).
func (d *Deployment) Server(id int) *core.Server {
	if id < 0 || id >= len(d.shards) {
		return nil
	}
	return d.shards[id].srv
}

// Replication returns the effective replica count: configured R clamped
// to the ring size.
func (d *Deployment) Replication() int {
	r := d.cfg.Replication
	if n := d.ring.Size(); r > n {
		r = n
	}
	return r
}

// Replicas returns key's current replica set (primary first).
func (d *Deployment) Replicas(key kv.Key) []int {
	return d.ring.Replicas(key, d.Replication())
}

// Preload inserts key on every replica without network traffic.
func (d *Deployment) Preload(key kv.Key, value []byte) error {
	for _, id := range d.Replicas(key) {
		if err := d.shards[id].srv.Preload(key, value); err != nil {
			return err
		}
	}
	return nil
}

// RegisterCrashTargets registers every live shard's server with the
// fault injector, keyed by its machine's node id, so scripted Crash
// events take down the right process.
func (d *Deployment) RegisterCrashTargets(inj *fault.Injector) {
	for _, sh := range d.shards {
		if sh.live {
			inj.SetCrashTarget(sh.machine.Verbs.Node(), sh.srv)
		}
	}
}

// MigrationActive reports whether a membership change is in progress.
func (d *Deployment) MigrationActive() bool { return d.mig != nil }

// AddShard grows the fleet: a new HERD server starts on m, every
// connected client attaches to it, and a background migration copies
// the keys the new shard now replicates. The routing ring switches to
// include the shard only when the copy completes (done, if non-nil,
// runs at that point); until then traffic routes on the old ring.
// Returns the new shard's id.
func (d *Deployment) AddShard(m *cluster.Machine, done func()) (int, error) {
	if d.mig != nil {
		return 0, ErrMigrating
	}
	srv, err := core.NewServer(m, d.cfg.Herd)
	if err != nil {
		return 0, err
	}
	id := len(d.shards)
	sh := &shard{id: id, machine: m, srv: srv, live: true}
	d.shards = append(d.shards, sh)
	d.watchRecovery(sh)
	for _, c := range d.clients {
		if err := c.attach(sh); err != nil {
			return 0, err
		}
	}
	target := d.ring.WithShard(id)
	rf := d.cfg.Replication
	if n := target.Size(); rf > n {
		rf = n
	}
	// The new shard must hold every key whose target replica set
	// includes it. Writes fan out to all replicas, so scanning each
	// live shard's partitions covers every such key; a membership set
	// dedupes the multiple replicas holding the same key.
	seen := make(map[kv.Key]struct{})
	var queue []migEntry
	for _, src := range d.shards {
		if !src.live || src.id == id {
			continue
		}
		for p := 0; p < d.cfg.Herd.NS; p++ {
			src.srv.Partition(p).Range(func(key mica.Key, _ []byte) bool {
				if _, dup := seen[key]; dup {
					return true
				}
				reps := target.Replicas(key, rf)
				for _, rep := range reps {
					if rep == id {
						seen[key] = struct{}{}
						queue = append(queue, migEntry{key: key, src: src.id, dests: []int{id}})
						break
					}
				}
				return true
			})
		}
	}
	d.startMigration(&migration{target: target, queue: queue, removeID: -1, done: done})
	return id, nil
}

// RemoveShard drains shard id out of the fleet: its resident keys are
// copied to their post-removal replica sets in the background, and when
// the copy completes the ring drops the shard, it stops receiving
// traffic, and done (if non-nil) runs. The server process itself keeps
// running (detached) so in-flight operations against it can finish.
func (d *Deployment) RemoveShard(id int, done func()) error {
	if d.mig != nil {
		return ErrMigrating
	}
	if id < 0 || id >= len(d.shards) {
		return ErrUnknownShard
	}
	sh := d.shards[id]
	if !sh.live {
		return ErrShardNotLive
	}
	if d.ring.Size() <= 1 {
		return ErrLastReplica
	}
	target := d.ring.WithoutShard(id)
	rf := d.cfg.Replication
	if n := target.Size(); rf > n {
		rf = n
	}
	// Every key with the leaving shard in its replica set is resident on
	// it (writes fan out), so scanning only the leaving shard finds all
	// keys whose replica sets change. Copying to the full target set is
	// idempotent and heals the replica the removal would otherwise lose.
	var queue []migEntry
	for p := 0; p < d.cfg.Herd.NS; p++ {
		sh.srv.Partition(p).Range(func(key mica.Key, _ []byte) bool {
			queue = append(queue, migEntry{key: key, src: id, dests: target.Replicas(key, rf)})
			return true
		})
	}
	d.startMigration(&migration{target: target, queue: queue, removeID: id, done: done})
	return nil
}

func (d *Deployment) startMigration(m *migration) {
	d.mig = m
	d.migRounds.Inc()
	d.migActive.Set(1)
	d.migPending.Set(int64(len(m.queue)))
	d.eng.After(d.cfg.MigrationInterval, d.migrationStep)
}

// migrationStep copies one batch of keys. Values are re-read from the
// source partition at copy time, so writes that land between the scan
// and the copy are not lost; writes racing the copy itself can still be
// shadowed on the destination (documented in docs/SCALEOUT.md — the
// backing store is a lossy cache, so a stale or missing replica entry
// is within contract).
func (d *Deployment) migrationStep() {
	m := d.mig
	if m == nil {
		return
	}
	end := m.pos + d.cfg.MigrationBatch
	if end > len(m.queue) {
		end = len(m.queue)
	}
	for ; m.pos < end; m.pos++ {
		e := m.queue[m.pos]
		src := d.shards[e.src].srv
		part := src.Partition(mica.Partition(e.key, d.cfg.Herd.NS))
		v, ok := part.Get(e.key)
		if !ok {
			continue // evicted or deleted since the scan
		}
		val := append([]byte(nil), v...)
		for _, dst := range e.dests {
			if dst == e.src {
				continue
			}
			// Preload is a control-plane insert; mica may still refuse
			// (store-mode full), which migration treats like eviction.
			_ = d.shards[dst].srv.Preload(e.key, val)
		}
		d.migKeys.Inc()
	}
	d.migPending.Set(int64(len(m.queue) - m.pos))
	if m.pos < len(m.queue) {
		d.eng.After(d.cfg.MigrationInterval, d.migrationStep)
		return
	}
	// Commit: swap the ring, detach a leaving shard, release.
	d.ring = m.target
	if m.removeID >= 0 {
		d.shards[m.removeID].live = false
	}
	d.mig = nil
	d.migActive.Set(0)
	if m.done != nil {
		m.done()
	}
}
