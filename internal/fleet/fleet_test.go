package fleet

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Herd.NS = 4
	cfg.Herd.MaxClients = 8
	cfg.Herd.Window = 4
	cfg.Herd.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	// Long probation so tests can observe it before the engine drains.
	cfg.Probation = 10 * sim.Millisecond
	return cfg
}

// newFleet builds nShards servers + nClients fleet clients on one
// cluster (plus one spare machine for AddShard tests).
func newFleet(t *testing.T, nShards, nClients int, seed int64) (*cluster.Cluster, *Deployment, []*Client) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), nShards+nClients+1, seed)
	cfg := testConfig()
	machines := make([]*cluster.Machine, nShards)
	for i := range machines {
		machines[i] = cl.Machine(i)
	}
	d, err := NewDeployment(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = d.ConnectClient(cl.Machine(nShards + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, d, clients
}

func TestRingPlacement(t *testing.T) {
	build := func(seed uint64) *Ring {
		r := NewRing(seed, 32)
		for s := 0; s < 4; s++ {
			r = r.WithShard(s)
		}
		return r
	}
	a, b, c := build(7), build(7), build(8)
	sameAsB, sameAsC := true, true
	for i := uint64(1); i <= 500; i++ {
		k := kv.FromUint64(i)
		ra, rb, rc := a.Replicas(k, 2), b.Replicas(k, 2), c.Replicas(k, 2)
		if len(ra) != 2 || ra[0] == ra[1] {
			t.Fatalf("replica set %v not 2 distinct shards", ra)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				sameAsB = false
			}
			if j < len(rc) && ra[j] != rc[j] {
				sameAsC = false
			}
		}
	}
	if !sameAsB {
		t.Fatal("same seed produced different placement")
	}
	if sameAsC {
		t.Fatal("different seeds produced identical placement")
	}
}

func TestRingMembershipChangeMovesFewKeys(t *testing.T) {
	r4 := NewRing(3, 64)
	for s := 0; s < 4; s++ {
		r4 = r4.WithShard(s)
	}
	r5 := r4.WithShard(4)
	moved := 0
	n := 2000
	for i := 1; i <= n; i++ {
		k := kv.FromUint64(uint64(i))
		if r4.Primary(k) != r5.Primary(k) {
			moved++
		}
	}
	// Consistent hashing moves ~1/5 of primaries when growing 4 -> 5;
	// modulo hashing would move ~4/5.
	if moved > n/3 {
		t.Fatalf("adding a shard moved %d/%d primaries (want ~%d)", moved, n, n/5)
	}
	if moved == 0 {
		t.Fatal("adding a shard moved nothing")
	}
	if got := r5.WithoutShard(4); got.Size() != 4 || got.Has(4) {
		t.Fatalf("WithoutShard left %v", got.Shards())
	}
}

func TestFleetRoundTripAndReplication(t *testing.T) {
	cl, d, clients := newFleet(t, 3, 1, 1)
	c := clients[0]
	n := 60
	acked := 0
	for i := 1; i <= n; i++ {
		c.Put(kv.FromUint64(uint64(i)), []byte{byte(i)}, func(r kv.Result) {
			if r.Err == nil {
				acked++
			}
		})
	}
	cl.Eng.Run()
	if acked != n {
		t.Fatalf("puts acked = %d/%d", acked, n)
	}
	// Fan-out writes: every replica holds every key.
	for i := 1; i <= n; i++ {
		key := kv.FromUint64(uint64(i))
		for _, id := range d.Replicas(key) {
			part := d.Server(id).Partition(mica.Partition(key, testConfig().Herd.NS))
			if _, ok := part.Get(key); !ok {
				t.Fatalf("key %d missing on replica %d", i, id)
			}
		}
	}
	got := 0
	for i := 1; i <= n; i++ {
		i := i
		c.Get(kv.FromUint64(uint64(i)), func(r kv.Result) {
			if r.Status == kv.StatusHit && bytes.Equal(r.Value, []byte{byte(i)}) {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("gets = %d/%d", got, n)
	}
	if c.Failed() != 0 || c.Completed() != uint64(2*n) || c.Issued() != uint64(2*n) {
		t.Fatalf("counters: issued=%d completed=%d failed=%d", c.Issued(), c.Completed(), c.Failed())
	}
	if c.ReplicaReads() != 0 {
		t.Fatalf("healthy fleet served %d reads off-primary", c.ReplicaReads())
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", c.Inflight())
	}
}

func TestFleetDelete(t *testing.T) {
	cl, _, clients := newFleet(t, 3, 1, 1)
	c := clients[0]
	key := kv.FromUint64(99)
	var gone kv.Result
	c.Put(key, []byte("x"), func(kv.Result) {
		c.Delete(key, func(kv.Result) {
			c.Get(key, func(r kv.Result) { gone = r })
		})
	})
	cl.Eng.Run()
	if gone.Status != kv.StatusMiss {
		t.Fatalf("after delete, get = %+v", gone)
	}
}

func TestFleetFailoverOnCrash(t *testing.T) {
	cl, d, clients := newFleet(t, 3, 1, 1)
	c := clients[0]
	key := kv.FromUint64(7)
	if err := d.Preload(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	primary := d.Replicas(key)[0]
	d.Server(primary).Crash()
	var res kv.Result
	c.Get(key, func(r kv.Result) { res = r })
	cl.Eng.Run()
	if res.Err != nil || res.Status != kv.StatusHit || string(res.Value) != "v" {
		t.Fatalf("failover get = %+v", res)
	}
	if c.Reroutes() == 0 || c.ReplicaReads() == 0 {
		t.Fatalf("reroutes=%d replicaReads=%d, want both > 0", c.Reroutes(), c.ReplicaReads())
	}
	if c.Failed() != 0 {
		t.Fatalf("failed = %d", c.Failed())
	}
	// Probation: the next read for the same key skips the dead primary
	// without a fresh timeout (no additional reroute).
	before := c.Reroutes()
	var again kv.Result
	c.Get(key, func(r kv.Result) { again = r })
	cl.Eng.Run()
	if again.Status != kv.StatusHit {
		t.Fatalf("probation get = %+v", again)
	}
	if c.Reroutes() != before {
		t.Fatalf("suspected primary was retried: reroutes %d -> %d", before, c.Reroutes())
	}
}

func TestFleetAllReplicasDown(t *testing.T) {
	cl, d, clients := newFleet(t, 2, 1, 1)
	c := clients[0]
	key := kv.FromUint64(11)
	d.Preload(key, []byte("v"))
	for _, id := range d.Replicas(key) {
		d.Server(id).Crash()
	}
	var res kv.Result
	c.Get(key, func(r kv.Result) { res = r })
	cl.Eng.Run()
	if res.Err == nil {
		t.Fatalf("get with all replicas down succeeded: %+v", res)
	}
	if c.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", c.Failed())
	}
}

func TestFleetAddShardMigration(t *testing.T) {
	cl, d, clients := newFleet(t, 2, 1, 1)
	c := clients[0]
	n := 80
	for i := 1; i <= n; i++ {
		c.Put(kv.FromUint64(uint64(i)), []byte{byte(i)}, nil)
	}
	cl.Eng.Run()
	migrated := false
	id, err := d.AddShard(cl.Machine(cl.Size()-1), func() { migrated = true })
	if err != nil {
		t.Fatal(err)
	}
	if d.MigrationActive() != true {
		t.Fatal("migration not active after AddShard")
	}
	if _, err := d.AddShard(cl.Machine(cl.Size()-1), nil); err != ErrMigrating {
		t.Fatalf("concurrent AddShard: %v", err)
	}
	cl.Eng.Run()
	if !migrated || d.MigrationActive() {
		t.Fatal("migration did not complete")
	}
	if !d.Ring().Has(id) {
		t.Fatal("ring missing new shard after migration")
	}
	// Every key now replicated on the new shard is present there, and
	// all keys remain readable through the client.
	onNew := 0
	for i := 1; i <= n; i++ {
		key := kv.FromUint64(uint64(i))
		for _, rep := range d.Replicas(key) {
			if rep != id {
				continue
			}
			onNew++
			part := d.Server(id).Partition(mica.Partition(key, testConfig().Herd.NS))
			if _, ok := part.Get(key); !ok {
				t.Fatalf("key %d not migrated to new shard", i)
			}
		}
	}
	if onNew == 0 {
		t.Fatal("new shard owns no keys")
	}
	got := 0
	for i := 1; i <= n; i++ {
		c.Get(kv.FromUint64(uint64(i)), func(r kv.Result) {
			if r.Status == kv.StatusHit {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("post-migration gets = %d/%d", got, n)
	}
	if c.Failed() != 0 {
		t.Fatalf("failed = %d", c.Failed())
	}
}

func TestFleetRemoveShard(t *testing.T) {
	cl, d, clients := newFleet(t, 3, 1, 1)
	c := clients[0]
	n := 80
	for i := 1; i <= n; i++ {
		c.Put(kv.FromUint64(uint64(i)), []byte{byte(i)}, nil)
	}
	cl.Eng.Run()
	removed := false
	if err := d.RemoveShard(0, func() { removed = true }); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()
	if !removed || d.Ring().Has(0) || d.Shards() != 2 {
		t.Fatalf("removal incomplete: removed=%v ring=%v live=%d", removed, d.Ring().Shards(), d.Shards())
	}
	gets, _, puts := d.Server(0).Stats()
	before := gets + puts
	got := 0
	for i := 1; i <= n; i++ {
		c.Get(kv.FromUint64(uint64(i)), func(r kv.Result) {
			if r.Status == kv.StatusHit {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("post-removal gets = %d/%d (failed=%d)", got, n, c.Failed())
	}
	gets, _, puts = d.Server(0).Stats()
	if gets+puts != before {
		t.Fatal("removed shard still receives traffic")
	}
}

func TestFleetMultiGet(t *testing.T) {
	cl, d, clients := newFleet(t, 3, 1, 1)
	c := clients[0]
	n := 24
	keys := make([]kv.Key, n)
	for i := range keys {
		keys[i] = kv.FromUint64(uint64(i + 1))
		if err := d.Preload(keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var out []kv.Result
	if err := c.MultiGet(keys, func(rs []kv.Result) { out = rs }); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()
	if len(out) != n {
		t.Fatalf("multiget returned %d/%d results", len(out), n)
	}
	for i, r := range out {
		if r.Status != kv.StatusHit || !bytes.Equal(r.Value, []byte{byte(i)}) {
			t.Fatalf("result %d = %+v", i, r)
		}
		if r.Key != keys[i] {
			t.Fatalf("result %d out of order: %v", i, r.Key)
		}
	}
}

func TestFleetDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, sim.Time) {
		cl, d, clients := newFleet(t, 3, 2, 5)
		c0, c1 := clients[0], clients[1]
		key := kv.FromUint64(3)
		d.Preload(key, []byte("w"))
		for i := 1; i <= 40; i++ {
			c0.Put(kv.FromUint64(uint64(i)), []byte{byte(i)}, nil)
			c1.Get(kv.FromUint64(uint64(i%7+1)), nil)
		}
		cl.Eng.Run()
		return c0.Completed() + c1.Completed(), c0.Issued() + c1.Issued(), cl.Eng.Now()
	}
	ca, ia, ta := run()
	cb, ib, tb := run()
	if ca != cb || ia != ib || ta != tb {
		t.Fatalf("replay diverged: (%d,%d,%v) vs (%d,%d,%v)", ca, ia, ta, cb, ib, tb)
	}
}

func TestFleetValidation(t *testing.T) {
	cl, d, clients := newFleet(t, 2, 1, 1)
	c := clients[0]
	var zero kv.Key
	if err := c.Get(zero, nil); err == nil {
		t.Fatal("zero-key get accepted")
	}
	if err := c.Put(zero, []byte("x"), nil); err == nil {
		t.Fatal("zero-key put accepted")
	}
	if err := c.Put(kv.FromUint64(1), make([]byte, mica.MaxValueSize+1), nil); err != ErrValueTooLarge {
		t.Fatalf("oversized put: %v", err)
	}
	if err := d.RemoveShard(99, nil); err != ErrUnknownShard {
		t.Fatalf("remove unknown: %v", err)
	}
	_ = cl
	if cfg := (&Config{}); true {
		cfg.setDefaults()
		if cfg.Replication != 2 || cfg.VirtualNodes != 64 {
			t.Fatalf("defaults: %+v", cfg)
		}
	}
}
