package fleet

// Client-side hot-key detection (sliding-window top-k) and read
// widening.
//
// A Zipf-skewed read workload concentrates on a handful of keys, and
// consistent hashing sends every read of a key to the same primary —
// so one shard saturates while its replicas idle, even though the
// fan-out write path keeps those replicas warm. The fleet already has
// everything it needs to absorb the skew: each hot key's value sits on
// R shards. The tracker below notices the skew at the client and
// widens hot reads round-robin across the healthy replica set, turning
// replication capacity into read capacity exactly where the load is.
//
// Detection is a space-saving top-k sketch over a two-epoch sliding
// window: bounded memory (Config.HotKeyTrack entries), O(k) per read,
// and fully deterministic — the eviction victim is the first minimum
// in insertion order, never a map walk.

import (
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// hotEntry is one tracked key's sketch state.
type hotEntry struct {
	key  kv.Key
	cur  int // reads observed in the current epoch
	prev int // reads observed in the previous epoch
	rr   int // round-robin cursor for widened reads of this key
}

// count is the sliding-window estimate: the two-epoch sum approximates
// a window of [window, 2*window) trailing virtual time.
func (e *hotEntry) count() int { return e.cur + e.prev }

// hotTracker is the per-client detector. Not safe for use outside the
// simulation's single-threaded event loop (like the Client owning it).
type hotTracker struct {
	cap       int      // max tracked keys
	threshold int      // window count at which a key classifies hot
	window    sim.Time // epoch length
	epoch     sim.Time // start of the current epoch
	entries   []hotEntry
}

func newHotTracker(capN, threshold int, window sim.Time) *hotTracker {
	return &hotTracker{cap: capN, threshold: threshold, window: window}
}

// rotate advances the epoch clock: each elapsed window shifts cur into
// prev, so counts age out after at most two windows. Entries that
// decay to zero leave the table. An idle gap fast-forwards in one step
// rather than spinning per window.
func (h *hotTracker) rotate(now sim.Time) {
	for now >= h.epoch+h.window {
		if len(h.entries) == 0 {
			h.epoch += ((now - h.epoch) / h.window) * h.window
			return
		}
		h.epoch += h.window
		live := h.entries[:0]
		for _, e := range h.entries {
			e.prev, e.cur = e.cur, 0
			if e.prev > 0 {
				live = append(live, e)
			}
		}
		h.entries = live
	}
}

// observe records a read of key at virtual time now and returns its
// entry. When the table is full, the coldest resident (first minimum
// in insertion order — deterministic) is evicted and the newcomer
// inherits its count, the space-saving move that lets a genuinely hot
// new key climb past long-tracked lukewarm ones.
func (h *hotTracker) observe(key kv.Key, now sim.Time) *hotEntry {
	h.rotate(now)
	for i := range h.entries {
		if h.entries[i].key == key {
			h.entries[i].cur++
			return &h.entries[i]
		}
	}
	if len(h.entries) < h.cap {
		h.entries = append(h.entries, hotEntry{key: key, cur: 1})
		return &h.entries[len(h.entries)-1]
	}
	min := 0
	for i := 1; i < len(h.entries); i++ {
		if h.entries[i].count() < h.entries[min].count() {
			min = i
		}
	}
	e := &h.entries[min]
	*e = hotEntry{key: key, cur: e.cur + 1, prev: e.prev}
	return e
}

// isHot reports whether an entry's windowed count crossed the
// threshold.
func (h *hotTracker) isHot(e *hotEntry) bool { return e.count() >= h.threshold }

// hotKeys counts currently-hot entries (feeds the fleet.hotkey.hot
// gauge).
func (h *hotTracker) hotKeys() int {
	n := 0
	for i := range h.entries {
		if h.isHot(&h.entries[i]) {
			n++
		}
	}
	return n
}

// widen observes key in the hot tracker and, for a hot key, rotates
// the healthy front of the read order so consecutive reads spread
// round-robin across replicas instead of hammering the primary.
// Probationed and breaker-open replicas stay at the back: widening
// recruits healthy capacity, it never steers load onto a struggling
// shard.
func (c *Client) widen(key kv.Key, order []int) []int {
	now := c.now()
	e := c.hot.observe(key, now)
	c.telHotKeys.Set(int64(c.hot.hotKeys()))
	if !c.hot.isHot(e) {
		return order
	}
	front := 0
	for front < len(order) && c.readPreferred(order[front], now) {
		front++
	}
	if front < 2 {
		return order // nowhere to widen to
	}
	k := e.rr % front
	e.rr++
	if k == 0 {
		return order // this turn of the rotation lands on the primary
	}
	rotated := make([]int, 0, len(order))
	rotated = append(rotated, order[k:front]...)
	rotated = append(rotated, order[:k]...)
	rotated = append(rotated, order[front:]...)
	c.hotWidened++
	c.telHotWidened.Inc()
	return rotated
}
