package fleet

import (
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// TestHotTrackerWindowDecay pins the two-epoch sliding window: a key's
// count survives exactly one epoch rotation and then ages out, so a
// cooled key stops classifying hot.
func TestHotTrackerWindowDecay(t *testing.T) {
	h := newHotTracker(4, 5, 100*sim.Microsecond)
	k := kv.FromUint64(1)
	var e *hotEntry
	for i := 0; i < 6; i++ {
		e = h.observe(k, sim.Time(i))
	}
	if !h.isHot(e) {
		t.Fatalf("count %d under threshold 5 after 6 observes", e.count())
	}
	// One window later the count has shifted to prev: still hot.
	e = h.observe(k, 150*sim.Microsecond)
	if !h.isHot(e) {
		t.Fatalf("key cooled after one window (count %d)", e.count())
	}
	// Two idle windows later both epochs have drained: cold again, and
	// the idle gap must not have wedged the epoch clock.
	e = h.observe(k, 500*sim.Microsecond)
	if h.isHot(e) || e.count() != 1 {
		t.Fatalf("key still hot after idle gap (count %d)", e.count())
	}
}

// TestHotTrackerEviction pins the space-saving move: a full table
// evicts its coldest resident deterministically (first minimum in
// insertion order) and the newcomer inherits the evicted count, so a
// genuinely hot newcomer can climb past lukewarm residents.
func TestHotTrackerEviction(t *testing.T) {
	h := newHotTracker(2, 100, sim.Second)
	a, b, c := kv.FromUint64(1), kv.FromUint64(2), kv.FromUint64(3)
	for i := 0; i < 3; i++ {
		h.observe(a, 0)
	}
	h.observe(b, 0) // b: count 1, the table is now full
	e := h.observe(c, 0)
	if e.key != c || e.count() != 2 {
		t.Fatalf("newcomer entry %+v, want key c with inherited count 2", e)
	}
	for i := range h.entries {
		if h.entries[i].key == b {
			t.Fatal("eviction picked a instead of the colder b")
		}
	}
}

// TestHotKeyWideningSpreadsReads drives a single-key hammer at a
// 3-way-replicated fleet with detection on: once the key classifies
// hot, reads rotate across the healthy replica set instead of all
// landing on the primary.
func TestHotKeyWideningSpreadsReads(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 4, 1)
	cfg := testConfig()
	cfg.Replication = 3
	cfg.HotKeyTrack = 8
	cfg.HotKeyThreshold = 8
	cfg.HotKeyWindow = sim.Millisecond
	d, err := NewDeployment(
		[]*cluster.Machine{cl.Machine(0), cl.Machine(1), cl.Machine(2)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.ConnectClient(cl.Machine(3))
	if err != nil {
		t.Fatal(err)
	}
	key := kv.FromUint64(42)
	if err := d.Preload(key, []byte("hot")); err != nil {
		t.Fatal(err)
	}

	const n = 48
	hits := 0
	var read func(i int)
	read = func(i int) {
		if i == n {
			return
		}
		c.Get(key, func(r kv.Result) {
			if r.Status == kv.StatusHit {
				hits++
			}
			read(i + 1)
		})
	}
	read(0)
	cl.Eng.Run()

	if hits != n {
		t.Fatalf("%d of %d hot reads hit", hits, n)
	}
	// Threshold 8 of 48 reads: roughly the last 40 rotate over 3
	// replicas, so about two thirds of those start off-primary.
	if c.HotWidened() < 20 {
		t.Fatalf("HotWidened = %d, want >= 20 of %d post-threshold reads", c.HotWidened(), n)
	}
	if c.ReplicaReads() < 20 {
		t.Fatalf("ReplicaReads = %d, want the widened reads served by replicas", c.ReplicaReads())
	}
	if c.Failed() != 0 {
		t.Fatalf("Failed = %d on a healthy fleet", c.Failed())
	}
}

// TestHotKeyWideningOffByDefault pins the default: with HotKeyTrack
// unset the same hammer stays primary-first, so widening can never
// surprise a deployment that didn't ask for it.
func TestHotKeyWideningOffByDefault(t *testing.T) {
	cl, d, clients := newFleet(t, 3, 1, 1)
	c := clients[0]
	key := kv.FromUint64(42)
	if err := d.Preload(key, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if err := c.Get(key, func(kv.Result) {}); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.Run()
	if c.HotWidened() != 0 || c.ReplicaReads() != 0 {
		t.Fatalf("widened=%d replicaReads=%d with detection off, want 0/0",
			c.HotWidened(), c.ReplicaReads())
	}
}
