package fleet

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mux"
)

// TestFleetOverMux runs fleet clients over shared mux endpoints: three
// application clients on one machine multiplex each shard over a 2-QP
// pool, so they fit inside a member server sized for only two connected
// clients — impossible with one QP set per client — and still serve
// reads and replicated writes correctly.
func TestFleetOverMux(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 4, 1)
	cfg := testConfig()
	// Each member server has room for exactly the pool, nothing more.
	cfg.Herd.MaxClients = 2
	cfg.Mux = &mux.Config{QPs: 2}
	d, err := NewDeployment([]*cluster.Machine{cl.Machine(0), cl.Machine(1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	appHost := cl.Machine(2)
	clients := make([]*Client, 3)
	for i := range clients {
		if clients[i], err = d.ConnectClient(appHost); err != nil {
			t.Fatalf("client %d: %v (mux must share the pool, not add QPs)", i, err)
		}
	}

	for id := 0; id < 2; id++ {
		ep := d.Endpoint(appHost, id)
		if ep == nil {
			t.Fatalf("no shared endpoint to shard %d", id)
		}
		if ep.PoolSize() != 2 || ep.Channels() != 3 {
			t.Fatalf("shard %d endpoint: pool=%d channels=%d, want 2/3",
				id, ep.PoolSize(), ep.Channels())
		}
	}

	// Replicated writes and reads work through the channels.
	key := kv.FromUint64(9)
	val := []byte("muxed fleet value")
	var got kv.Result
	clients[0].Put(key, val, func(kv.Result) {
		clients[2].Get(key, func(r kv.Result) { got = r })
	})
	cl.Eng.Run()
	if got.Status != kv.StatusHit || !bytes.Equal(got.Value, val) {
		t.Fatalf("GET over mux = %+v", got)
	}

	// AddShard attaches every client to the new shard via one new shared
	// endpoint (3 channels over a fresh 2-QP pool).
	added := false
	id, err := d.AddShard(cl.Machine(3), func() { added = true })
	if err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()
	if !added {
		t.Fatal("migration never completed")
	}
	ep := d.Endpoint(appHost, id)
	if ep == nil || ep.Channels() != 3 {
		t.Fatalf("new shard endpoint missing or wrong: %+v", ep)
	}
	var after kv.Result
	clients[1].Get(key, func(r kv.Result) { after = r })
	cl.Eng.Run()
	if after.Status != kv.StatusHit || !bytes.Equal(after.Value, val) {
		t.Fatalf("GET after AddShard = %+v", after)
	}
	for _, c := range clients {
		if c.Inflight() != 0 || c.Failed() != 0 {
			t.Fatalf("client accounting: inflight=%d failed=%d", c.Inflight(), c.Failed())
		}
	}
}

// TestFleetMuxOffByDefault pins that deployments without Config.Mux
// keep dedicated per-client sub-clients (no endpoints appear).
func TestFleetMuxOffByDefault(t *testing.T) {
	cl, d, _ := newFleet(t, 2, 2, 1)
	_ = cl
	for id := 0; id < 2; id++ {
		if ep := d.Endpoint(cl.Machine(2), id); ep != nil {
			t.Fatalf("unexpected endpoint to shard %d without Config.Mux", id)
		}
	}
}
