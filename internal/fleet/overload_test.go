package fleet

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// brownoutConfig arms the busy path: a tiny op deadline turns the
// first pushback terminal, so fleet-level failover logic sees
// StatusBusy promptly instead of spinning on server hints.
func brownoutConfig() Config {
	cfg := testConfig()
	cfg.Herd.OpDeadline = 1 * sim.Microsecond
	return cfg
}

// newFleetCfg is newFleet with an explicit config.
func newFleetCfg(t *testing.T, cfg Config, nShards, nClients int, seed int64) (*cluster.Cluster, *Deployment, []*Client) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), nShards+nClients+1, seed)
	machines := make([]*cluster.Machine, nShards)
	for i := range machines {
		machines[i] = cl.Machine(i)
	}
	d, err := NewDeployment(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = d.ConnectClient(cl.Machine(nShards + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, d, clients
}

// TestBusyNeverSuspects is the brownout regression test: reads that
// fail over because the primary shed them with StatusBusy must not
// start a probation or a reconnect — busy is backpressure from a live
// shard, and treating it as a crash would churn failover exactly when
// the fleet can least afford it.
func TestBusyNeverSuspects(t *testing.T) {
	cl, d, clients := newFleetCfg(t, brownoutConfig(), 2, 1, 11)
	c := clients[0]
	key := kv.FromUint64(77)
	val := []byte("brownout value")
	if err := d.Preload(key, val); err != nil {
		t.Fatal(err)
	}
	reps := d.Replicas(key)
	if len(reps) < 2 {
		t.Fatalf("replica set %v too small", reps)
	}
	primary := reps[0]
	// Brown out only the primary: queue cap 1 sheds every request that
	// arrives while one is in service.
	d.Server(primary).SetAdmissionLimit(1)

	const n = 16
	served := 0
	for i := 0; i < n; i++ {
		c.Get(key, func(r kv.Result) {
			if r.Err != nil {
				t.Errorf("get failed: %v (status %v)", r.Err, r.Status)
				return
			}
			if !bytes.Equal(r.Value, val) {
				t.Errorf("get value %q", r.Value)
			}
			served++
		})
	}
	cl.Eng.Run()

	if served != n {
		t.Fatalf("served %d of %d reads", served, n)
	}
	if s := c.Suspected(); s != 0 {
		t.Fatalf("busy failover started %d probations; brownout must not suspect", s)
	}
	if c.ReplicaReads() == 0 {
		t.Fatal("no read was steered to the replica")
	}
	if c.BreakerOpens() == 0 {
		t.Fatal("breaker never opened under sustained busy pushback")
	}
	if f := c.Failed(); f != 0 {
		t.Fatalf("%d fleet-level failures; the replica should have served", f)
	}
}

// TestTimeoutStillSuspects pins the blackout path: a crash-class
// terminal timeout keeps starting probations exactly as before the
// breaker existed.
func TestTimeoutStillSuspects(t *testing.T) {
	cl, d, clients := newFleet(t, 2, 1, 12)
	c := clients[0]
	key := kv.FromUint64(5)
	if err := d.Preload(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	primary := d.Replicas(key)[0]
	d.Server(primary).Crash()

	ok := false
	c.Get(key, func(r kv.Result) { ok = r.Err == nil })
	cl.Eng.Run()
	if !ok {
		t.Fatal("replica did not serve after primary crash")
	}
	if c.Suspected() == 0 {
		t.Fatal("terminal timeout no longer suspects the shard")
	}
	if c.BreakerOpens() != 0 {
		t.Fatal("timeout fed the brownout breaker; blackout and brownout must stay separate")
	}
}

// TestBreakerStateMachine drives the per-shard breaker directly:
// threshold trips it open, reads steer away, the cooldown admits one
// half-open probe, a busy probe re-opens, and a served probe closes.
func TestBreakerStateMachine(t *testing.T) {
	cl, d, clients := newFleet(t, 2, 1, 13)
	c := clients[0]
	th := d.cfg.BreakerThreshold

	for i := 0; i < th-1; i++ {
		c.noteBusy(0)
	}
	if c.BreakerOpen(0) {
		t.Fatalf("breaker open after %d busy failures (threshold %d)", th-1, th)
	}
	c.noteBusy(0)
	if !c.BreakerOpen(0) {
		t.Fatal("breaker closed at threshold")
	}
	if got := c.readOrder([]int{0, 1}); got[0] != 1 || got[1] != 0 {
		t.Fatalf("readOrder = %v with shard 0 breaker open, want [1 0]", got)
	}

	// Cooldown not yet lapsed: still steered away, no probe.
	c.noteReadIssue(0)
	if c.BreakerProbes() != 0 {
		t.Fatal("probe before cooldown lapsed")
	}

	// Advance past the cooldown; the shard becomes probe-eligible.
	fired := false
	cl.Eng.After(d.cfg.BreakerCooldown+sim.Microsecond, func() { fired = true })
	cl.Eng.Run()
	if !fired {
		t.Fatal("engine did not advance")
	}
	if got := c.readOrder([]int{0, 1}); got[0] != 0 {
		t.Fatalf("readOrder = %v after cooldown, want probe-eligible shard 0 first", got)
	}
	c.noteReadIssue(0)
	if c.BreakerProbes() != 1 {
		t.Fatal("half-open probe not counted")
	}
	// While the probe is in flight the shard is not offered again.
	if got := c.readOrder([]int{0, 1}); got[0] != 1 {
		t.Fatalf("readOrder = %v mid-probe, want shard 0 last", got)
	}

	// Probe fails busy: re-open, another cooldown.
	c.noteBusy(0)
	if !c.BreakerOpen(0) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	fired = false
	cl.Eng.After(d.cfg.BreakerCooldown+sim.Microsecond, func() { fired = true })
	cl.Eng.Run()
	if !fired {
		t.Fatal("engine did not advance")
	}
	c.noteReadIssue(0)
	c.noteServed(0)
	if c.BreakerOpen(0) {
		t.Fatal("served probe did not close the breaker")
	}
	if c.BreakerCloses() != 1 {
		t.Fatalf("BreakerCloses = %d, want 1", c.BreakerCloses())
	}
	if got := c.readOrder([]int{0, 1}); got[0] != 0 {
		t.Fatalf("readOrder = %v after close, want ring order restored", got)
	}
}

// TestMultiGetEmpty pins the degenerate batch: the callback fires with
// an empty result slice and no sub-operation is issued.
func TestMultiGetEmpty(t *testing.T) {
	_, _, clients := newFleet(t, 2, 1, 14)
	c := clients[0]
	called := false
	if err := c.MultiGet(nil, func(rs []kv.Result) {
		called = true
		if len(rs) != 0 {
			t.Errorf("got %d results for empty batch", len(rs))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("callback not invoked for empty batch")
	}
	if c.Issued() != 0 {
		t.Fatalf("empty batch issued %d ops", c.Issued())
	}
}

// TestMultiGetDuplicates checks a batch with repeated keys: each
// unique key is read once, and the shared result lands in every
// position that asked for it, in key order.
func TestMultiGetDuplicates(t *testing.T) {
	cl, d, clients := newFleet(t, 2, 1, 15)
	c := clients[0]
	k1, k2 := kv.FromUint64(101), kv.FromUint64(202)
	v1, v2 := []byte("value one"), []byte("value two")
	if err := d.Preload(k1, v1); err != nil {
		t.Fatal(err)
	}
	if err := d.Preload(k2, v2); err != nil {
		t.Fatal(err)
	}

	keys := []kv.Key{k1, k2, k1, k1, k2}
	var got []kv.Result
	if err := c.MultiGet(keys, func(rs []kv.Result) { got = rs }); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()

	if len(got) != len(keys) {
		t.Fatalf("got %d results, want %d", len(got), len(keys))
	}
	want := [][]byte{v1, v2, v1, v1, v2}
	for i, r := range got {
		if r.Err != nil || !bytes.Equal(r.Value, want[i]) {
			t.Fatalf("result[%d] = %+v, want value %q", i, r, want[i])
		}
		if r.Key != keys[i] {
			t.Fatalf("result[%d] key mismatch", i)
		}
	}
	if c.Issued() != 2 {
		t.Fatalf("issued %d fleet ops for 2 unique keys", c.Issued())
	}
}
