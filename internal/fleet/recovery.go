package fleet

import (
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

// Shard crash recovery: when a member server's Restart completes, the
// deployment brings the shard's replica set back to full strength.
//
// With durability on the rejoin is warm — the server has already
// replayed its own snapshot + log tail — so only a delta catch-up is
// needed: the writes that landed on the surviving replicas during the
// outage plus the group-commit window the crashed log may have lost
// (core.RecoveryInfo.Since bounds both). Without durability the rejoin
// is cold and the whole replica set must be re-copied, exactly like
// populating a newly added shard.
//
// Both paths ride the migration pacing knobs (MigrationBatch,
// MigrationInterval) on a recovery-specific pacer, so catch-up
// interleaves with foreground traffic instead of stalling it, and a
// membership change can proceed concurrently.

// recEntry is one key scheduled for recovery catch-up. The state is
// re-read from the source replica at apply time (like migrationStep),
// so the recovered shard converges on the survivor's current view:
// present there → copy, absent there → delete here.
type recEntry struct {
	key kv.Key
	src int // surviving source shard id
}

// recovery tracks one shard's in-progress catch-up.
type recovery struct {
	shardID int
	info    core.RecoveryInfo
	queue   []recEntry
	pos     int
	keys    int
}

// RecoveryResult summarizes one completed shard recovery.
type RecoveryResult struct {
	// ShardID is the recovered shard.
	ShardID int
	// Warm reports whether the shard replayed a WAL before rejoining.
	Warm bool
	// Replayed and SnapshotRecords are the shard's own log replay
	// counts (zero for a cold rejoin).
	Replayed        int
	SnapshotRecords int
	// TornBytes is how much torn log tail the replay truncated.
	TornBytes int
	// CatchupKeys is how many keys the fleet-side catch-up applied:
	// the outage delta for a warm rejoin, the full replica set for a
	// cold one.
	CatchupKeys int
	// ReplayDuration is the shard's own log-replay outage.
	ReplayDuration sim.Time
	// CatchupDuration is the fleet-side catch-up time after rejoin.
	CatchupDuration sim.Time
	// Duration is the total: replay outage + catch-up.
	Duration sim.Time
}

// watchRecovery installs the recovery hook on one shard's server.
func (d *Deployment) watchRecovery(sh *shard) {
	sh.srv.SetRecoveryHook(func(info core.RecoveryInfo) {
		d.onShardRecovered(sh, info)
	})
}

// onShardRecovered fires when shard sh's Restart completes (warm or
// cold) and starts the fleet-side catch-up.
func (d *Deployment) onShardRecovered(sh *shard, info core.RecoveryInfo) {
	if !sh.live {
		return // detached from the ring; nothing to heal
	}
	rec := &recovery{shardID: sh.id, info: info}
	if info.Warm {
		rec.queue = d.deltaQueue(sh, info.Since)
	} else {
		rec.queue = d.fullQueue(sh)
	}
	if d.recs == nil {
		d.recs = make(map[int]*recovery)
	}
	d.recs[sh.id] = rec
	d.recRounds.Inc()
	d.recActive.Set(int64(len(d.recs)))
	d.eng.After(d.cfg.MigrationInterval, func() { d.recoveryStep(rec) })
}

// deltaQueue builds a warm rejoin's catch-up: every key the recovered
// shard replicates that a survivor logged at or after since — the
// writes the shard's own log may be missing (its lost group-commit
// window plus the whole outage).
func (d *Deployment) deltaQueue(sh *shard, since sim.Time) []recEntry {
	seen := make(map[kv.Key]struct{})
	var queue []recEntry
	for _, src := range d.shards {
		if !src.live || src.id == sh.id || src.srv.Down() {
			continue
		}
		for _, r := range src.srv.WALRecordsSince(since) {
			if _, dup := seen[r.Key]; dup {
				continue
			}
			for _, rep := range d.Replicas(r.Key) {
				if rep == sh.id {
					seen[r.Key] = struct{}{}
					queue = append(queue, recEntry{key: r.Key, src: src.id})
					break
				}
			}
		}
	}
	return queue
}

// fullQueue builds a cold rejoin's catch-up: every key whose replica
// set includes the shard, found by scanning each survivor's partitions
// (the AddShard population scan, aimed at an old member).
func (d *Deployment) fullQueue(sh *shard) []recEntry {
	seen := make(map[kv.Key]struct{})
	var queue []recEntry
	for _, src := range d.shards {
		if !src.live || src.id == sh.id || src.srv.Down() {
			continue
		}
		for p := 0; p < d.cfg.Herd.NS; p++ {
			src.srv.Partition(p).Range(func(key mica.Key, _ []byte) bool {
				if _, dup := seen[key]; dup {
					return true
				}
				for _, rep := range d.Replicas(key) {
					if rep == sh.id {
						seen[key] = struct{}{}
						queue = append(queue, recEntry{key: key, src: src.id})
						break
					}
				}
				return true
			})
		}
	}
	return queue
}

// recoveryStep applies one batch of catch-up keys to the recovered
// shard, re-reading each from its survivor at apply time. Aborts if the
// shard crashes again mid-catch-up (the next recovery starts over).
func (d *Deployment) recoveryStep(rec *recovery) {
	if d.recs[rec.shardID] != rec {
		return // superseded by a newer recovery of the same shard
	}
	sh := d.shards[rec.shardID]
	if sh.srv.Down() || !sh.live {
		d.finishRecovery(rec, sh, true)
		return
	}
	end := rec.pos + d.cfg.MigrationBatch
	if end > len(rec.queue) {
		end = len(rec.queue)
	}
	for ; rec.pos < end; rec.pos++ {
		e := rec.queue[rec.pos]
		src := d.shards[e.src].srv
		if src.Down() {
			continue // the survivor died too; another recovery will heal it
		}
		part := src.Partition(mica.Partition(e.key, d.cfg.Herd.NS))
		if v, ok := part.Get(e.key); ok {
			_ = sh.srv.Preload(e.key, append([]byte(nil), v...))
		} else {
			// Deleted (or evicted) on the survivor since it was logged:
			// converge by deleting here too, or replay could resurrect it.
			sh.srv.PreloadDelete(e.key)
		}
		rec.keys++
		d.recKeys.Inc()
	}
	d.recPending.Set(int64(len(rec.queue) - rec.pos))
	if rec.pos < len(rec.queue) {
		d.eng.After(d.cfg.MigrationInterval, func() { d.recoveryStep(rec) })
		return
	}
	d.finishRecovery(rec, sh, false)
}

// finishRecovery completes (or aborts) one catch-up and records its
// result.
func (d *Deployment) finishRecovery(rec *recovery, sh *shard, aborted bool) {
	delete(d.recs, rec.shardID)
	d.recActive.Set(int64(len(d.recs)))
	if aborted {
		return
	}
	catchup := d.eng.Now() - rec.info.At
	d.lastRecovery = RecoveryResult{
		ShardID:         rec.shardID,
		Warm:            rec.info.Warm,
		Replayed:        rec.info.Replayed,
		SnapshotRecords: rec.info.SnapshotRecords,
		TornBytes:       rec.info.TornBytes,
		CatchupKeys:     rec.keys,
		ReplayDuration:  rec.info.Duration,
		CatchupDuration: catchup,
		Duration:        rec.info.Duration + catchup,
	}
	d.recTime.Set(int64(d.lastRecovery.Duration / sim.Nanosecond))
	// A versioned fleet re-audits everything once the shard is back:
	// the delta catch-up replays the survivors' WAL tail, but a write
	// the survivor itself missed (a partial write during the outage)
	// is only reconciled by the anti-entropy sweep.
	d.AntiEntropySweep()
	if d.onRecovered != nil {
		d.onRecovered(d.lastRecovery)
	}
}

// RecoveryActive reports whether any shard catch-up is in progress.
func (d *Deployment) RecoveryActive() bool { return len(d.recs) > 0 }

// LastRecovery returns the most recent completed shard recovery.
func (d *Deployment) LastRecovery() RecoveryResult { return d.lastRecovery }

// OnRecovery registers fn to run after each completed shard recovery
// (experiments use it to timestamp fleet-level recovery).
func (d *Deployment) OnRecovery(fn func(RecoveryResult)) { d.onRecovered = fn }
