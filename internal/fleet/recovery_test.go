package fleet

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

func durableFleetConfig() Config {
	cfg := testConfig()
	cfg.Herd.Durability = core.DurabilityGroupCommit
	return cfg
}

// newFleetWith is newFleet with an explicit config.
func newFleetWith(t *testing.T, cfg Config, nShards, nClients int, seed int64) (*cluster.Cluster, *Deployment, []*Client) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), nShards+nClients+1, seed)
	machines := make([]*cluster.Machine, nShards)
	for i := range machines {
		machines[i] = cl.Machine(i)
	}
	d, err := NewDeployment(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = d.ConnectClient(cl.Machine(nShards + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, d, clients
}

// shardHolds reads key straight from shard id's partitions.
func shardHolds(d *Deployment, id int, key kv.Key) ([]byte, bool) {
	return d.Server(id).Partition(mica.Partition(key, d.cfg.Herd.NS)).Get(key)
}

// TestWarmRejoinDeltaCatchup: a durable shard crashes, the survivor
// takes writes during the outage, and the rejoin replays its own log
// then pulls only the delta — not the full replica set — from the
// survivor.
func TestWarmRejoinDeltaCatchup(t *testing.T) {
	cl, d, _ := newFleetWith(t, durableFleetConfig(), 2, 0, 3)
	const old, late, delta = 32, 8, 4
	val := func(tag byte, i uint64) []byte { return []byte{tag, byte(i)} }
	// Old keys at t=0; a later durable batch moves shard 0's
	// last-durable instant forward so the catch-up window (last durable
	// minus the group-commit guard) excludes the old keys.
	for i := uint64(0); i < old; i++ {
		if err := d.Preload(kv.FromUint64(i), val('o', i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.At(50*sim.Microsecond, func() {
		for i := uint64(old); i < old+late; i++ {
			if err := d.Preload(kv.FromUint64(i), val('l', i)); err != nil {
				t.Fatal(err)
			}
		}
	})
	cl.Eng.At(100*sim.Microsecond, func() { d.Server(0).Crash() })
	// Outage writes land on the survivor only.
	cl.Eng.At(110*sim.Microsecond, func() {
		for i := uint64(0); i < delta; i++ {
			if err := d.Server(1).Preload(kv.FromUint64(i), val('d', i)); err != nil {
				t.Fatal(err)
			}
		}
	})
	cl.Eng.At(120*sim.Microsecond, func() { d.Server(0).Restart() })
	cl.Eng.Run()

	rec := d.LastRecovery()
	if rec.ShardID != 0 || !rec.Warm {
		t.Fatalf("recovery = %+v, want a warm one for shard 0", rec)
	}
	if rec.Replayed == 0 || rec.Duration <= 0 {
		t.Fatalf("recovery = %+v, want replayed records and a real duration", rec)
	}
	if rec.CatchupKeys < delta || rec.CatchupKeys >= old+late+delta {
		t.Fatalf("catch-up copied %d keys, want a delta in [%d, %d)", rec.CatchupKeys, delta, old+late+delta)
	}
	// The rejoined shard holds every key — old ones from its own log,
	// outage writes from the survivor's delta.
	for i := uint64(0); i < old+late; i++ {
		want := val('o', i)
		if i >= old {
			want = val('l', i)
		}
		if i < delta {
			want = val('d', i)
		}
		if v, ok := shardHolds(d, 0, kv.FromUint64(i)); !ok || !bytes.Equal(v, want) {
			t.Fatalf("key %d on rejoined shard: value=%v ok=%v, want %v", i, v, ok, want)
		}
	}
}

// TestColdRejoinFullRecopy: without durability a restarted shard is
// empty and the fleet re-replicates its whole replica set.
func TestColdRejoinFullRecopy(t *testing.T) {
	cl, d, _ := newFleetWith(t, testConfig(), 2, 0, 3)
	const keys = 64
	for i := uint64(0); i < keys; i++ {
		if err := d.Preload(kv.FromUint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.At(10*sim.Microsecond, func() { d.Server(0).Crash() })
	cl.Eng.At(20*sim.Microsecond, func() { d.Server(0).Restart() })
	cl.Eng.Run()

	rec := d.LastRecovery()
	if rec.Warm || rec.ShardID != 0 {
		t.Fatalf("recovery = %+v, want a cold one for shard 0", rec)
	}
	if rec.CatchupKeys != keys {
		t.Fatalf("cold catch-up copied %d keys, want all %d", rec.CatchupKeys, keys)
	}
	for i := uint64(0); i < keys; i++ {
		if v, ok := shardHolds(d, 0, kv.FromUint64(i)); !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("key %d on recopied shard: value=%v ok=%v", i, v, ok)
		}
	}
}

// TestRecoveryAbortsAndRestartsOnSecondCrash: a shard that dies again
// mid-catch-up aborts cleanly; its next restart recovers from scratch.
func TestRecoveryAbortsAndRestartsOnSecondCrash(t *testing.T) {
	cfg := durableFleetConfig()
	cfg.MigrationInterval = 20 * sim.Microsecond // slow steps: crash lands mid-catch-up
	cl, d, _ := newFleetWith(t, cfg, 2, 0, 3)
	const keys = 256
	for i := uint64(0); i < keys; i++ {
		if err := d.Preload(kv.FromUint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.At(20*sim.Microsecond, func() { d.Server(0).Crash() })
	cl.Eng.At(30*sim.Microsecond, func() { d.Server(0).Restart() })
	cl.Eng.At(70*sim.Microsecond, func() { d.Server(0).Crash() })
	cl.Eng.At(200*sim.Microsecond, func() { d.Server(0).Restart() })
	cl.Eng.Run()

	if d.RecoveryActive() {
		t.Fatal("a recovery is still pending after drain")
	}
	rec := d.LastRecovery()
	if rec.ShardID != 0 || !rec.Warm {
		t.Fatalf("final recovery = %+v, want warm shard 0", rec)
	}
	for i := uint64(0); i < keys; i++ {
		if v, ok := shardHolds(d, 0, kv.FromUint64(i)); !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("key %d after double crash: value=%v ok=%v", i, v, ok)
		}
	}
}
