// Package fleet scales HERD past static sharding: a consistent-hash
// ring places keys on replica sets of HERD servers, clients fail over
// between replicas when a shard crashes, and shards can join or leave
// a live deployment with background key migration. This is the fleet
// deployment story the paper leaves to "standard practice" (Section 7
// discusses scale-out only as per-machine throughput times machine
// count); fleet supplies the routing, replication and failover
// machinery needed to actually run that fleet.
package fleet

import (
	"sort"

	"herdkv/internal/kv"
)

// ringPoint is one virtual node: a position on the hash circle owned by
// a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring with virtual nodes. Placement is fully
// determined by (seed, vnodes, member set): two rings built from the
// same cluster seed with the same members agree on every key, and
// adding or removing one shard moves only the keys adjacent to that
// shard's virtual nodes.
//
// Rings are immutable once built; Deployment swaps whole rings
// atomically when a membership change commits, so in-flight routing
// decisions are never half-updated.
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint // sorted by (hash, shard)
	shards []int       // member shard ids, ascending
}

// NewRing returns an empty ring. Virtual-node positions derive from
// seed, so distinct cluster seeds give distinct placements.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{seed: seed, vnodes: vnodes}
}

// pointHash positions virtual node v of a shard on the circle.
func (r *Ring) pointHash(shard, v int) uint64 {
	return kv.FromUint64(uint64(shard)<<20 | uint64(v)).Hash64(r.seed)
}

// WithShard returns a copy of the ring with shard added (no-op copy if
// already a member).
func (r *Ring) WithShard(shard int) *Ring {
	nr := r.clone()
	for _, s := range nr.shards {
		if s == shard {
			return nr
		}
	}
	nr.shards = append(nr.shards, shard)
	sort.Ints(nr.shards)
	for v := 0; v < nr.vnodes; v++ {
		nr.points = append(nr.points, ringPoint{hash: nr.pointHash(shard, v), shard: shard})
	}
	nr.sortPoints()
	return nr
}

// WithoutShard returns a copy of the ring with shard removed.
func (r *Ring) WithoutShard(shard int) *Ring {
	nr := &Ring{seed: r.seed, vnodes: r.vnodes}
	for _, s := range r.shards {
		if s != shard {
			nr.shards = append(nr.shards, s)
		}
	}
	for _, p := range r.points {
		if p.shard != shard {
			nr.points = append(nr.points, p)
		}
	}
	return nr
}

func (r *Ring) clone() *Ring {
	return &Ring{
		seed:   r.seed,
		vnodes: r.vnodes,
		points: append([]ringPoint(nil), r.points...),
		shards: append([]int(nil), r.shards...),
	}
}

// sortPoints orders by hash with shard id as a deterministic tiebreak.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Shards returns the member shard ids, ascending.
func (r *Ring) Shards() []int { return append([]int(nil), r.shards...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.shards) }

// Has reports whether shard is a ring member.
func (r *Ring) Has(shard int) bool {
	for _, s := range r.shards {
		if s == shard {
			return true
		}
	}
	return false
}

// Replicas returns the key's replica set: the first rf distinct shards
// walking clockwise from the key's position. Index 0 is the primary.
// Fewer than rf members yields the full membership.
func (r *Ring) Replicas(key kv.Key, rf int) []int {
	if len(r.points) == 0 {
		return nil
	}
	if rf > len(r.shards) {
		rf = len(r.shards)
	}
	if rf < 1 {
		rf = 1
	}
	h := key.Hash64(r.seed)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, rf)
	for i := 0; i < len(r.points) && len(out) < rf; i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for _, s := range out {
			if s == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p.shard)
		}
	}
	return out
}

// Primary returns the key's first replica.
func (r *Ring) Primary(key kv.Key) int { return r.Replicas(key, 1)[0] }
