package fleet

import (
	"bytes"
	"errors"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

// newVersionedFleet builds a versioned (optionally read-repairing)
// deployment on the fleet test scaffolding.
func newVersionedFleet(t *testing.T, nShards, nClients int, seed int64, repair bool) (*cluster.Cluster, *Deployment, []*Client) {
	t.Helper()
	cl := cluster.New(cluster.Apt(), nShards+nClients+1, seed)
	cfg := testConfig()
	cfg.Versioned = true
	cfg.ReadRepair = repair
	machines := make([]*cluster.Machine, nShards)
	for i := range machines {
		machines[i] = cl.Machine(i)
	}
	d, err := NewDeployment(machines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = d.ConnectClient(cl.Machine(nShards + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, d, clients
}

// keyOnShard finds a key whose replica set starts at primary (and, when
// secondary >= 0, whose second replica is secondary).
func keyOnShard(t *testing.T, d *Deployment, primary, secondary int) kv.Key {
	t.Helper()
	for i := uint64(1); i < 4096; i++ {
		k := kv.FromUint64(i)
		reps := d.Replicas(k)
		if len(reps) >= 2 && reps[0] == primary && (secondary < 0 || reps[1] == secondary) {
			return k
		}
	}
	t.Fatal("no key found for requested placement")
	return kv.Key{}
}

// stampedValue builds a version-prefixed stored value for direct
// server-side injection.
func stampedValue(epoch int64, seq uint64, payload string) []byte {
	v := kv.AppendVersion(nil, kv.Version{Epoch: epoch, Seq: seq}, false)
	return append(v, payload...)
}

func TestVersionedRoundTrip(t *testing.T) {
	cl, _, clients := newVersionedFleet(t, 3, 1, 11, true)
	c := clients[0]
	key := kv.FromUint64(42)
	val := []byte("versioned fleet value")

	var put, got, del, after kv.Result
	c.Put(key, val, func(r kv.Result) {
		put = r
		c.Get(key, func(r kv.Result) {
			got = r
			c.Delete(key, func(r kv.Result) {
				del = r
				c.Get(key, func(r kv.Result) { after = r })
			})
		})
	})
	cl.Eng.Run()

	if put.Err != nil || put.Status != kv.StatusHit {
		t.Fatalf("put = %+v", put)
	}
	if got.Err != nil || got.Status != kv.StatusHit || !bytes.Equal(got.Value, val) {
		t.Fatalf("get = %+v (value %q)", got, got.Value)
	}
	if del.Err != nil || del.Status != kv.StatusHit {
		t.Fatalf("delete of present key = %+v", del)
	}
	if after.Err != nil || after.Status != kv.StatusMiss {
		t.Fatalf("get after delete = %+v", after)
	}
}

// TestPartialWriteCounter pins satellite fix 1: a legacy (first-ack)
// write that loses a straggler replica still reports success but must
// count fleet.writes.partial — divergence becomes visible.
func TestPartialWriteCounter(t *testing.T) {
	cl, d, clients := newFleet(t, 3, 1, 21)
	c := clients[0]
	key := keyOnShard(t, d, 0, 1)

	d.Server(1).Crash()
	var put kv.Result
	if err := c.Put(key, []byte("solo"), func(r kv.Result) { put = r }); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()

	if put.Err != nil {
		t.Fatalf("legacy partial write must still succeed: %+v", put)
	}
	if c.PartialWrites() != 1 {
		t.Fatalf("PartialWrites = %d, want 1", c.PartialWrites())
	}
}

// TestVersionedPartialWriteFails pins the versioned contract: a write
// is successful only when EVERY replica acks; a straggler failure
// surfaces as ErrPartialWrite.
func TestVersionedPartialWriteFails(t *testing.T) {
	cl, d, clients := newVersionedFleet(t, 3, 1, 21, true)
	c := clients[0]
	key := keyOnShard(t, d, 0, 1)

	d.Server(1).Crash()
	var put kv.Result
	if err := c.Put(key, []byte("solo"), func(r kv.Result) { put = r }); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()

	if !errors.Is(put.Err, ErrPartialWrite) {
		t.Fatalf("versioned partial write = %+v, want ErrPartialWrite", put)
	}
	if c.PartialWrites() != 1 {
		t.Fatalf("PartialWrites = %d, want 1", c.PartialWrites())
	}
}

// TestReadRepairBackfill pins the read path: a replica caught behind
// the winning version is back-filled with the winner during the read.
func TestReadRepairBackfill(t *testing.T) {
	cl, d, clients := newVersionedFleet(t, 3, 1, 31, true)
	c := clients[0]
	key := keyOnShard(t, d, 0, 1)
	fresh := stampedValue(int64(sim.Millisecond), 1, "fresh")

	var put kv.Result
	c.Put(key, []byte("orig"), func(r kv.Result) { put = r })
	cl.Eng.Run()
	if put.Err != nil {
		t.Fatalf("seed put = %+v", put)
	}
	// Inject divergence: shard 0 alone advances to a newer version.
	if err := d.Server(0).Preload(key, fresh); err != nil {
		t.Fatal(err)
	}

	var got kv.Result
	c.Get(key, func(r kv.Result) { got = r })
	cl.Eng.Run()

	if got.Err != nil || got.Status != kv.StatusHit || string(got.Value) != "fresh" {
		t.Fatalf("get = %+v (value %q), want the newest version", got, got.Value)
	}
	if c.StaleObserved() == 0 || c.RepairsIssued() == 0 || c.RepairsApplied() == 0 {
		t.Fatalf("repair counters: stale=%d issued=%d applied=%d",
			c.StaleObserved(), c.RepairsIssued(), c.RepairsApplied())
	}
	stored, ok := d.Server(1).Partition(mica.Partition(key, d.cfg.Herd.NS)).Get(key)
	if !ok || !bytes.Equal(stored, fresh) {
		t.Fatalf("replica 1 not back-filled: ok=%v stored=%x", ok, stored)
	}
}

// TestCrashedReplicaStaleRead is the satellite regression pinning
// read-repair behavior: with a divergent replica set and the fresh
// replica crashed, the legacy fleet serves the stale survivor as a
// plain hit, while a read-repairing fleet converged the survivor on
// the first read and keeps answering fresh after the crash.
func TestCrashedReplicaStaleRead(t *testing.T) {
	fresh := stampedValue(int64(sim.Millisecond), 1, "fresh")

	t.Run("legacy_serves_stale", func(t *testing.T) {
		cl, d, clients := newFleet(t, 3, 1, 41)
		c := clients[0]
		key := keyOnShard(t, d, 0, 1)
		var put kv.Result
		c.Put(key, []byte("orig"), func(r kv.Result) { put = r })
		cl.Eng.Run()
		if put.Err != nil {
			t.Fatalf("seed put = %+v", put)
		}
		// Shard 0 alone advances, then dies.
		if err := d.Server(0).Preload(key, []byte("newer")); err != nil {
			t.Fatal(err)
		}
		d.Server(0).Crash()
		var got kv.Result
		c.Get(key, func(r kv.Result) { got = r })
		cl.Eng.Run()
		if got.Err != nil || string(got.Value) != "orig" {
			t.Fatalf("expected the legacy fleet to serve the stale survivor, got %+v (%q)", got, got.Value)
		}
	})

	t.Run("repair_converges_before_crash", func(t *testing.T) {
		cl, d, clients := newVersionedFleet(t, 3, 1, 41, true)
		c := clients[0]
		key := keyOnShard(t, d, 0, 1)
		var put kv.Result
		c.Put(key, []byte("orig"), func(r kv.Result) { put = r })
		cl.Eng.Run()
		if put.Err != nil {
			t.Fatalf("seed put = %+v", put)
		}
		if err := d.Server(0).Preload(key, fresh); err != nil {
			t.Fatal(err)
		}
		// The read observes the divergence and back-fills shard 1...
		var first kv.Result
		c.Get(key, func(r kv.Result) { first = r })
		cl.Eng.Run()
		if first.Err != nil || string(first.Value) != "fresh" {
			t.Fatalf("first get = %+v (%q)", first, first.Value)
		}
		// ...so the fresh state survives shard 0's crash.
		d.Server(0).Crash()
		var got kv.Result
		c.Get(key, func(r kv.Result) { got = r })
		cl.Eng.Run()
		if got.Err != nil || string(got.Value) != "fresh" {
			t.Fatalf("read after crash = %+v (%q), want the repaired value", got, got.Value)
		}
	})
}

// TestAntiEntropySweepConverges pins the background path: a partial
// write enqueues its key, and the sweep merges replicas to the highest
// stamp without any read touching the key.
func TestAntiEntropySweepConverges(t *testing.T) {
	cl, d, clients := newVersionedFleet(t, 3, 1, 51, true)
	c := clients[0]
	key := keyOnShard(t, d, 0, 1)
	fresh := stampedValue(int64(sim.Millisecond), 1, "fresh")

	var put kv.Result
	c.Put(key, []byte("orig"), func(r kv.Result) { put = r })
	cl.Eng.Run()
	if put.Err != nil {
		t.Fatalf("seed put = %+v", put)
	}
	if err := d.Server(0).Preload(key, fresh); err != nil {
		t.Fatal(err)
	}
	d.EnqueueRepair(key)
	if d.AntiEntropyPending() != 1 {
		t.Fatalf("pending = %d, want 1", d.AntiEntropyPending())
	}
	cl.Eng.Run()
	if d.AntiEntropyPending() != 0 {
		t.Fatalf("queue did not drain: %d pending", d.AntiEntropyPending())
	}
	stored, ok := d.Server(1).Partition(mica.Partition(key, d.cfg.Herd.NS)).Get(key)
	if !ok || !bytes.Equal(stored, fresh) {
		t.Fatalf("sweep did not back-fill replica 1: ok=%v stored=%x", ok, stored)
	}
}

// TestReadOrderSuspectTieBreak pins satellite fix 2: when every replica
// is suspect, the order is by probation expiry (soonest-recovering
// first), not ring order, and equal expiries break ties by shard id.
func TestReadOrderSuspectTieBreak(t *testing.T) {
	_, _, clients := newFleet(t, 3, 1, 61)
	c := clients[0]
	now := c.now()

	// All suspect, distinct expiries out of ring order.
	c.suspect[0] = now + 30*sim.Microsecond
	c.suspect[1] = now + 10*sim.Microsecond
	c.suspect[2] = now + 20*sim.Microsecond
	got := c.readOrder([]int{0, 1, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("readOrder = %v, want %v (probation expiry order)", got, want)
		}
	}

	// Equal expiries: deterministic id order regardless of input order.
	for i := range c.suspect {
		c.suspect[i] = now + 10*sim.Microsecond
	}
	got = c.readOrder([]int{2, 0, 1})
	want = []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("readOrder = %v, want %v (id tie-break)", got, want)
		}
	}

	// A healthy replica still outranks every suspect one.
	c.suspect[1] = 0
	got = c.readOrder([]int{0, 1, 2})
	if got[0] != 1 {
		t.Fatalf("readOrder = %v, want healthy shard 1 first", got)
	}
}
