// Package histcheck records concurrent operation histories and checks
// them for linearizability against the per-key register model.
//
// The fleet's consistency experiment wraps every client operation in a
// Recorder Begin/End pair, stamping invocation and response with the
// shared virtual clock. After the run, Check partitions the history by
// key (operations on different keys commute in a register store, so
// per-key linearizability of the whole history follows from per-key
// sub-histories — the standard locality argument) and runs a
// Wing–Gong/Lowe-style depth-first search over linearization orders,
// memoized on the (completed-operations bitmask, register state) pair.
// Sub-histories are capped at 64 operations so the bitmask fits one
// word; the experiment sizes its workload to stay under the cap.
//
// Failed operations need care: a write whose fleet op failed (timeout,
// partial write) may or may not have taken effect, so it becomes an
// "optional" op — the search may linearize it anywhere after its
// invocation or drop it entirely. A failed read carries no information
// and is discarded.
package histcheck

import (
	"math"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// Kind distinguishes register reads from writes.
type Kind int

// Operation kinds.
const (
	// Read observes the register (Value 0 = absent).
	Read Kind = iota
	// Write sets the register (Value 0 = delete / absent).
	Write
)

// pendingReturn marks an operation that never returned: it stays
// concurrent with everything after its invocation.
const pendingReturn = sim.Time(math.MaxInt64)

// Op is one recorded operation on one key.
type Op struct {
	Key    kv.Key
	Kind   Kind
	Value  uint64   // value written, or value a successful read observed
	Invoke sim.Time // invocation instant
	Return sim.Time // response instant; pendingReturn if none
	Failed bool     // the operation resolved with an error (or never resolved)
}

// Recorder accumulates a history. It is driven from simulation
// callbacks on one goroutine, like everything else in the model — no
// locking.
type Recorder struct {
	ops []Op

	telOps *telemetry.Counter
}

// SetTelemetry attaches counters (histcheck.ops) to a sink; without it
// the recorder just stays silent.
func (r *Recorder) SetTelemetry(tel *telemetry.Sink) {
	r.telOps = tel.Counter("histcheck.ops")
}

// begin appends an operation in the failed state; End*/complete flip it.
func (r *Recorder) begin(key kv.Key, kind Kind, value uint64, at sim.Time) int {
	r.ops = append(r.ops, Op{
		Key: key, Kind: kind, Value: value,
		Invoke: at, Return: pendingReturn, Failed: true,
	})
	if r.telOps != nil {
		r.telOps.Inc()
	}
	return len(r.ops) - 1
}

// BeginRead records a read invocation and returns its op id.
func (r *Recorder) BeginRead(key kv.Key, at sim.Time) int {
	return r.begin(key, Read, 0, at)
}

// BeginWrite records a write invocation (value 0 = delete) and returns
// its op id.
func (r *Recorder) BeginWrite(key kv.Key, value uint64, at sim.Time) int {
	return r.begin(key, Write, value, at)
}

// EndRead completes a read with the value it observed (0 = miss).
func (r *Recorder) EndRead(id int, value uint64, at sim.Time) {
	r.ops[id].Value = value
	r.ops[id].Return = at
	r.ops[id].Failed = false
}

// EndWrite completes a write successfully.
func (r *Recorder) EndWrite(id int, at sim.Time) {
	r.ops[id].Return = at
	r.ops[id].Failed = false
}

// Fail marks an operation as resolved-with-error at the given instant.
// The op stays in the history as indeterminate: a failed write may
// still have taken effect on some replica. Its Return stays pending —
// the effect can surface arbitrarily late.
func (r *Recorder) Fail(id int) {
	r.ops[id].Failed = true
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.ops) }

// Ops returns the recorded history (live slice; callers must not
// mutate).
func (r *Recorder) Ops() []Op { return r.ops }
