package histcheck

import (
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

func mustCheck(t *testing.T, r *Recorder) Result {
	t.Helper()
	res, err := Check(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	k := kv.FromUint64(1)
	r := &Recorder{}
	w := r.BeginWrite(k, 7, us(0))
	r.EndWrite(w, us(1))
	g := r.BeginRead(k, us(2))
	r.EndRead(g, 7, us(3))
	d := r.BeginWrite(k, 0, us(4)) // delete
	r.EndWrite(d, us(5))
	g2 := r.BeginRead(k, us(6))
	r.EndRead(g2, 0, us(7))

	res := mustCheck(t, r)
	if !res.Ok || res.Keys != 1 || res.Ops != 4 {
		t.Fatalf("result %+v, want ok", res)
	}
}

func TestStaleReadViolation(t *testing.T) {
	k := kv.FromUint64(2)
	r := &Recorder{}
	w1 := r.BeginWrite(k, 1, us(0))
	r.EndWrite(w1, us(1))
	w2 := r.BeginWrite(k, 2, us(2))
	r.EndWrite(w2, us(3))
	// This read begins strictly after w2 completed, yet observes w1's
	// value: the canonical stale read.
	g := r.BeginRead(k, us(4))
	r.EndRead(g, 1, us(5))

	res := mustCheck(t, r)
	if res.Ok || len(res.Violations) != 1 || res.Violations[0].Key != k {
		t.Fatalf("result %+v, want one violation on key", res)
	}
}

func TestConcurrentReadMayObserveEitherValue(t *testing.T) {
	k := kv.FromUint64(3)
	for _, observed := range []uint64{1, 2} {
		r := &Recorder{}
		w1 := r.BeginWrite(k, 1, us(0))
		r.EndWrite(w1, us(1))
		w2 := r.BeginWrite(k, 2, us(2))
		r.EndWrite(w2, us(6))
		// Concurrent with w2: either value is a legal observation.
		g := r.BeginRead(k, us(3))
		r.EndRead(g, observed, us(5))
		if res := mustCheck(t, r); !res.Ok {
			t.Fatalf("concurrent read of %d flagged: %+v", observed, res)
		}
	}
}

func TestFailedWriteIsOptional(t *testing.T) {
	k := kv.FromUint64(4)

	// Effect surfaced: a later read sees the failed write's value.
	r := &Recorder{}
	w := r.BeginWrite(k, 9, us(0))
	r.Fail(w)
	g := r.BeginRead(k, us(5))
	r.EndRead(g, 9, us(6))
	if res := mustCheck(t, r); !res.Ok {
		t.Fatalf("failed write's surfaced effect flagged: %+v", res)
	}

	// Effect never surfaced: reads keep seeing the old state.
	r = &Recorder{}
	w0 := r.BeginWrite(k, 1, us(0))
	r.EndWrite(w0, us(1))
	w = r.BeginWrite(k, 9, us(2))
	r.Fail(w)
	g = r.BeginRead(k, us(5))
	r.EndRead(g, 1, us(6))
	if res := mustCheck(t, r); !res.Ok {
		t.Fatalf("dropped failed write flagged: %+v", res)
	}
}

func TestFailedWriteCannotBePartiallyObserved(t *testing.T) {
	// Two sequential reads observing new-then-old is illegal even when
	// the intervening write failed: once its effect is visible the
	// register cannot revert.
	k := kv.FromUint64(5)
	r := &Recorder{}
	w0 := r.BeginWrite(k, 1, us(0))
	r.EndWrite(w0, us(1))
	w := r.BeginWrite(k, 9, us(2))
	r.Fail(w)
	g1 := r.BeginRead(k, us(5))
	r.EndRead(g1, 9, us(6))
	g2 := r.BeginRead(k, us(7))
	r.EndRead(g2, 1, us(8))
	if res := mustCheck(t, r); res.Ok {
		t.Fatal("new-then-old observation of a failed write not flagged")
	}
}

func TestFailedReadDropped(t *testing.T) {
	k := kv.FromUint64(6)
	r := &Recorder{}
	w := r.BeginWrite(k, 3, us(0))
	r.EndWrite(w, us(1))
	g := r.BeginRead(k, us(2))
	r.Fail(g)
	res := mustCheck(t, r)
	if !res.Ok || res.Ops != 1 {
		t.Fatalf("result %+v, want failed read dropped (1 op)", res)
	}
}

func TestPerKeyPartitioning(t *testing.T) {
	// A violation on one key must not contaminate another key's verdict.
	good, bad := kv.FromUint64(7), kv.FromUint64(8)
	r := &Recorder{}
	w := r.BeginWrite(good, 1, us(0))
	r.EndWrite(w, us(1))
	g := r.BeginRead(good, us(2))
	r.EndRead(g, 1, us(3))

	w1 := r.BeginWrite(bad, 1, us(0))
	r.EndWrite(w1, us(1))
	w2 := r.BeginWrite(bad, 2, us(2))
	r.EndWrite(w2, us(3))
	gb := r.BeginRead(bad, us(4))
	r.EndRead(gb, 1, us(5))

	res := mustCheck(t, r)
	if res.Ok || res.Keys != 2 || len(res.Violations) != 1 || res.Violations[0].Key != bad {
		t.Fatalf("result %+v, want exactly the bad key flagged", res)
	}
}

func TestOpsCapEnforced(t *testing.T) {
	k := kv.FromUint64(9)
	r := &Recorder{}
	for i := 0; i < MaxOpsPerKey+1; i++ {
		w := r.BeginWrite(k, uint64(i+1), us(int64(2*i)))
		r.EndWrite(w, us(int64(2*i+1)))
	}
	if _, err := Check(r, nil); err == nil {
		t.Fatal("oversized sub-history accepted")
	}
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping writes, then a read that must match whichever
	// order the search picks — both final values are legal.
	k := kv.FromUint64(10)
	for _, final := range []uint64{1, 2} {
		r := &Recorder{}
		w1 := r.BeginWrite(k, 1, us(0))
		r.EndWrite(w1, us(5))
		w2 := r.BeginWrite(k, 2, us(1))
		r.EndWrite(w2, us(4))
		g := r.BeginRead(k, us(6))
		r.EndRead(g, final, us(7))
		if res := mustCheck(t, r); !res.Ok {
			t.Fatalf("final value %d flagged after concurrent writes: %+v", final, res)
		}
	}
}
