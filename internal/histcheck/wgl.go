package histcheck

import (
	"fmt"
	"sort"

	"herdkv/internal/kv"
	"herdkv/internal/telemetry"
)

// MaxOpsPerKey bounds one key's sub-history: the search state packs
// completed operations into a single uint64 bitmask.
const MaxOpsPerKey = 64

// Violation is one key whose sub-history admits no linearization.
type Violation struct {
	Key kv.Key
	Ops []Op // the key's sub-history in invocation order
}

// Result is the outcome of a history check.
type Result struct {
	Ok         bool
	Keys       int // distinct keys checked
	Ops        int // operations considered (after dropping failed reads)
	Violations []Violation
}

// Check partitions the recorder's history by key and searches each
// sub-history for a legal linearization. Optional counters land on tel
// (histcheck.keys, histcheck.violations) when non-nil. It returns an
// error only when a sub-history exceeds MaxOpsPerKey — that is a
// harness sizing bug, not a consistency verdict.
func Check(r *Recorder, tel *telemetry.Sink) (Result, error) {
	var telKeys, telViol *telemetry.Counter
	if tel != nil {
		telKeys = tel.Counter("histcheck.keys")
		telViol = tel.Counter("histcheck.violations")
	}
	byKey := make(map[kv.Key][]Op)
	var keys []kv.Key
	res := Result{Ok: true}
	for _, op := range r.Ops() {
		if op.Kind == Read && op.Failed {
			continue // a failed read observed nothing
		}
		if _, seen := byKey[op.Key]; !seen {
			keys = append(keys, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
		res.Ops++
	}
	res.Keys = len(keys)
	for _, k := range keys {
		ops := byKey[k]
		if len(ops) > MaxOpsPerKey {
			return Result{}, fmt.Errorf("histcheck: key %x has %d ops, cap is %d", k, len(ops), MaxOpsPerKey)
		}
		telKeys.Inc()
		if !linearizable(ops) {
			res.Ok = false
			res.Violations = append(res.Violations, Violation{Key: k, Ops: ops})
			telViol.Inc()
		}
	}
	return res, nil
}

// memoKey is one visited search state: which ops are already
// linearized, and the register value they left behind.
type memoKey struct {
	mask  uint64
	state uint64
}

// linearizable runs the WGL search on one key's sub-history: from each
// state, any operation that no completed-and-undone operation strictly
// precedes in real time may be linearized next. A write advances the
// register; a failed write may instead be dropped (it never took
// effect); a read must observe the current register. States are
// memoized — revisiting (mask, state) cannot succeed where the first
// visit failed.
func linearizable(ops []Op) bool {
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].Invoke != ops[j].Invoke {
			return ops[i].Invoke < ops[j].Invoke
		}
		return ops[i].Return < ops[j].Return
	})
	n := len(ops)
	full := uint64(1)<<uint(n) - 1
	if n == 64 {
		full = ^uint64(0)
	}
	seen := make(map[memoKey]bool)
	var dfs func(mask, state uint64) bool
	dfs = func(mask, state uint64) bool {
		if mask == full {
			return true
		}
		mk := memoKey{mask, state}
		if seen[mk] {
			return false
		}
		seen[mk] = true
		// An undone op is minimal iff no other undone op returned
		// before it was invoked.
		minRet := pendingReturn
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 && ops[i].Return < minRet {
				minRet = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 || ops[i].Invoke > minRet {
				continue
			}
			op := &ops[i]
			if op.Kind == Write {
				if dfs(mask|bit, op.Value) {
					return true
				}
				if op.Failed && dfs(mask|bit, state) {
					return true // the failed write never took effect
				}
				continue
			}
			if op.Value == state && dfs(mask|bit, state) {
				return true
			}
		}
		return false
	}
	return dfs(0, 0)
}
