package hopscotch

import (
	"testing"

	"herdkv/internal/kv"
)

func benchInline(b *testing.B) *Table {
	b.Helper()
	n := 1 << 16
	tb := NewInline(make([]byte, (n+DefaultH)*(kv.KeySize+32)), n, 32, DefaultH)
	for i := 0; i < n*40/100; i++ {
		if err := tb.Insert(kv.FromUint64(uint64(i)), make([]byte, 32)); err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func BenchmarkLookupInline(b *testing.B) {
	tb := benchInline(b)
	keys := make([]kv.Key, 1024)
	for i := range keys {
		keys[i] = kv.FromUint64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(keys[i&1023]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkInsertInline(b *testing.B) {
	n := 1 << 18
	tb := NewInline(make([]byte, (n+DefaultH)*(kv.KeySize+32)), n, 32, DefaultH)
	val := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tb.Insert(kv.FromUint64(uint64(i)%uint64(n*35/100)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNeighborhood(b *testing.B) {
	tb := benchInline(b)
	key := kv.FromUint64(1)
	off, n := tb.NeighborhoodOffset(key)
	raw := tb.mem[off : off+n]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseNeighborhoodInline(raw, key, 32); !ok {
			b.Fatal("parse miss")
		}
	}
}
