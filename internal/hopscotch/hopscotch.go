// Package hopscotch implements FaRM-KV's hash table (Section 5.1.2): a
// hopscotch variant guaranteeing every key is stored within a small
// neighborhood of its home bucket, so a GET needs only one READ of the
// whole neighborhood.
//
// Two modes match the paper's comparisons:
//
//   - Inline (FaRM-em): fixed-size values stored in the slots; a GET is a
//     single READ of H*(SK+SV) bytes.
//   - Out-of-table (FaRM-em-VAR): slots hold a pointer (and length); a
//     GET READs H*(SK+SP) bytes, then the value separately.
//
// As with package cuckoo, the table lives in caller-supplied memory so
// the FaRM emulation can place it in an RDMA region and let clients
// parse raw neighborhood bytes fetched by READ. Empty slots are
// identified by the all-zero keyhash, which the workload never uses.
package hopscotch

import (
	"encoding/binary"
	"errors"

	"herdkv/internal/kv"
)

// DefaultH is the paper's neighborhood size ("its authors set it to 6").
const DefaultH = 6

// PtrSlotSize is the slot size in out-of-table mode: key + 4-byte
// pointer + 2-byte length + 2 bytes padding = SK + SP with SP = 8.
const PtrSlotSize = kv.KeySize + 8

// maxSearch bounds the linear probe for an empty slot during insertion.
const maxSearch = 4096

// Errors returned by table operations.
var (
	ErrTableFull  = errors.New("hopscotch: no slot reachable within the neighborhood")
	ErrExtentFull = errors.New("hopscotch: extent exhausted")
	ErrValueSize  = errors.New("hopscotch: value size does not fit the table mode")
)

// Mode selects inline or out-of-table values.
type Mode int

// Table modes.
const (
	Inline Mode = iota
	OutOfTable
)

// Table is a hopscotch hash table over caller-owned memory.
type Table struct {
	mem      []byte
	nBuckets int
	h        int
	mode     Mode
	valSize  int // Inline mode: exact value size
	extent   []byte
	extHead  int
	seed     uint64

	inserts, hops uint64
}

// NewInline builds an inline-value table: nBuckets home buckets (plus H
// overflow slots at the tail so neighborhoods never wrap), each slot
// holding a key and exactly valSize value bytes.
func NewInline(mem []byte, nBuckets, valSize, h int) *Table {
	if h < 1 {
		h = DefaultH
	}
	slot := kv.KeySize + valSize
	if nBuckets < 1 || len(mem) < (nBuckets+h)*slot {
		panic("hopscotch: memory too small for inline table")
	}
	return &Table{mem: mem, nBuckets: nBuckets, h: h, mode: Inline, valSize: valSize, seed: 0x5c0f}
}

// NewVar builds an out-of-table table whose slots point into extent.
func NewVar(mem, extent []byte, nBuckets, h int) *Table {
	if h < 1 {
		h = DefaultH
	}
	if nBuckets < 1 || len(mem) < (nBuckets+h)*PtrSlotSize {
		panic("hopscotch: memory too small for out-of-table table")
	}
	return &Table{mem: mem, nBuckets: nBuckets, h: h, mode: OutOfTable, extent: extent, seed: 0x5c0f}
}

// H returns the neighborhood size.
func (t *Table) H() int { return t.h }

// Mode returns the value mode.
func (t *Table) Mode() Mode { return t.mode }

// SlotSize returns the serialized slot size.
func (t *Table) SlotSize() int {
	if t.mode == Inline {
		return kv.KeySize + t.valSize
	}
	return PtrSlotSize
}

// NeighborhoodBytes is the size of the READ a client issues for a GET:
// H slots (the paper's 6*(SK+SV) or 6*(SK+SP)).
func (t *Table) NeighborhoodBytes() int { return t.h * t.SlotSize() }

// Home returns key's home bucket.
func (t *Table) Home(key kv.Key) int {
	return int(key.Hash64(t.seed) % uint64(t.nBuckets))
}

// NeighborhoodOffset returns the byte range a client READs for key.
func (t *Table) NeighborhoodOffset(key kv.Key) (off, n int) {
	return t.Home(key) * t.SlotSize(), t.NeighborhoodBytes()
}

// Hops reports total displacement moves performed by inserts.
func (t *Table) Hops() uint64 { return t.hops }

func (t *Table) slot(i int) []byte {
	s := t.SlotSize()
	return t.mem[i*s : (i+1)*s]
}

func (t *Table) slotKey(i int) kv.Key {
	var k kv.Key
	copy(k[:], t.slot(i)[:kv.KeySize])
	return k
}

func (t *Table) slotEmpty(i int) bool { return t.slotKey(i).IsZero() }

func (t *Table) totalSlots() int { return t.nBuckets + t.h }

func (t *Table) writeInline(i int, key kv.Key, value []byte) {
	raw := t.slot(i)
	copy(raw, key[:])
	copy(raw[kv.KeySize:], value)
}

func (t *Table) writeVar(i int, key kv.Key, ptr uint32, vlen uint16) {
	raw := t.slot(i)
	copy(raw, key[:])
	binary.LittleEndian.PutUint32(raw[kv.KeySize:], ptr)
	binary.LittleEndian.PutUint16(raw[kv.KeySize+4:], vlen)
}

func (t *Table) clearSlot(i int) {
	raw := t.slot(i)
	for j := range raw {
		raw[j] = 0
	}
}

// findSlot returns the slot index holding key, or -1.
func (t *Table) findSlot(key kv.Key) int {
	home := t.Home(key)
	for i := home; i < home+t.h; i++ {
		if t.slotKey(i) == key {
			return i
		}
	}
	return -1
}

// Lookup finds key server-side.
func (t *Table) Lookup(key kv.Key) ([]byte, bool) {
	i := t.findSlot(key)
	if i < 0 {
		return nil, false
	}
	raw := t.slot(i)
	if t.mode == Inline {
		return raw[kv.KeySize:], true
	}
	ptr := binary.LittleEndian.Uint32(raw[kv.KeySize:])
	vlen := int(binary.LittleEndian.Uint16(raw[kv.KeySize+4:]))
	return t.extent[ptr : int(ptr)+vlen], true
}

// Insert adds or updates key. The hopscotch guarantee is maintained:
// after a successful insert, key resides within H slots of its home.
func (t *Table) Insert(key kv.Key, value []byte) error {
	if key.IsZero() {
		return errors.New("hopscotch: zero keyhash is reserved")
	}
	if t.mode == Inline && len(value) != t.valSize {
		return ErrValueSize
	}
	if t.mode == OutOfTable && len(value) > 65535 {
		return ErrValueSize
	}

	// Update in place.
	if i := t.findSlot(key); i >= 0 {
		return t.place(i, key, value)
	}

	home := t.Home(key)
	limit := home + maxSearch
	if limit > t.totalSlots() {
		limit = t.totalSlots()
	}
	// Try each empty slot at or after home in turn: the classic algorithm
	// uses only the first, but when that empty cannot be hopped into the
	// neighborhood a later one often can, which raises the achievable
	// load factor noticeably for small H.
	for scan := home; scan < limit; scan++ {
		if !t.slotEmpty(scan) {
			continue
		}
		if empty, ok := t.hopToward(home, scan); ok {
			return t.place(empty, key, value)
		}
	}
	return ErrTableFull
}

// hopToward moves the empty slot at index empty into [home, home+H) by
// relocating occupants within their own neighborhoods. Every individual
// move preserves the hopscotch invariant, so a failed attempt leaves the
// table valid (with the empty slot stranded closer to home).
func (t *Table) hopToward(home, empty int) (int, bool) {
	for empty-home >= t.h {
		moved := false
		for j := empty - t.h + 1; j < empty; j++ {
			if j < 0 {
				continue
			}
			occKey := t.slotKey(j)
			if occKey.IsZero() {
				continue
			}
			if empty-t.Home(occKey) < t.h {
				copy(t.slot(empty), t.slot(j))
				t.clearSlot(j)
				t.hops++
				empty = j
				moved = true
				break
			}
		}
		if !moved {
			return empty, false
		}
	}
	return empty, true
}

// place writes key/value into slot i.
func (t *Table) place(i int, key kv.Key, value []byte) error {
	if t.mode == Inline {
		t.writeInline(i, key, value)
		return nil
	}
	need := len(value)
	if t.extHead+need > len(t.extent) {
		return ErrExtentFull
	}
	ptr := uint32(t.extHead)
	copy(t.extent[t.extHead:], value)
	t.extHead += need
	t.writeVar(i, key, ptr, uint16(len(value)))
	t.inserts++
	return nil
}

// Delete removes key, returning whether it was present.
func (t *Table) Delete(key kv.Key) bool {
	i := t.findSlot(key)
	if i < 0 {
		return false
	}
	t.clearSlot(i)
	return true
}

// LoadFactor reports occupied home-range slots over capacity.
func (t *Table) LoadFactor() float64 {
	used := 0
	for i := 0; i < t.totalSlots(); i++ {
		if !t.slotEmpty(i) {
			used++
		}
	}
	return float64(used) / float64(t.nBuckets)
}

// ParseNeighborhoodInline scans raw neighborhood bytes (as READ by a
// FaRM-em client) for key, returning the inline value.
func ParseNeighborhoodInline(raw []byte, key kv.Key, valSize int) ([]byte, bool) {
	slot := kv.KeySize + valSize
	for off := 0; off+slot <= len(raw); off += slot {
		var k kv.Key
		copy(k[:], raw[off:off+kv.KeySize])
		if k == key {
			return raw[off+kv.KeySize : off+slot], true
		}
	}
	return nil, false
}

// ParseNeighborhoodVar scans raw neighborhood bytes (FaRM-em-VAR client)
// for key, returning the extent pointer and value length.
func ParseNeighborhoodVar(raw []byte, key kv.Key) (ptr uint32, vlen uint16, ok bool) {
	for off := 0; off+PtrSlotSize <= len(raw); off += PtrSlotSize {
		var k kv.Key
		copy(k[:], raw[off:off+kv.KeySize])
		if k == key {
			return binary.LittleEndian.Uint32(raw[off+kv.KeySize:]),
				binary.LittleEndian.Uint16(raw[off+kv.KeySize+4:]), true
		}
	}
	return 0, 0, false
}
