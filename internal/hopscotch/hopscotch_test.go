package hopscotch

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"herdkv/internal/kv"
)

func newInline(n, valSize int) *Table {
	return NewInline(make([]byte, (n+DefaultH)*(kv.KeySize+valSize)), n, valSize, DefaultH)
}

func newVar(n, extentBytes int) *Table {
	return NewVar(make([]byte, (n+DefaultH)*PtrSlotSize), make([]byte, extentBytes), n, DefaultH)
}

func val32(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }

func TestInlineInsertLookup(t *testing.T) {
	tb := newInline(1024, 32)
	k := kv.FromUint64(1)
	if err := tb.Insert(k, val32(7)); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Lookup(k)
	if !ok || !bytes.Equal(v, val32(7)) {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
}

func TestInlineSizeStrict(t *testing.T) {
	tb := newInline(64, 32)
	if err := tb.Insert(kv.FromUint64(1), make([]byte, 16)); err != ErrValueSize {
		t.Fatalf("wrong-size insert: %v", err)
	}
}

func TestVarInsertLookup(t *testing.T) {
	tb := newVar(1024, 1<<20)
	k := kv.FromUint64(2)
	if err := tb.Insert(k, []byte("variable length value")); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Lookup(k)
	if !ok || string(v) != "variable length value" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
}

func TestUpdate(t *testing.T) {
	tb := newInline(1024, 32)
	k := kv.FromUint64(3)
	tb.Insert(k, val32(1))
	tb.Insert(k, val32(2))
	v, _ := tb.Lookup(k)
	if !bytes.Equal(v, val32(2)) {
		t.Fatal("update not visible")
	}
}

func TestDelete(t *testing.T) {
	tb := newVar(256, 1<<16)
	k := kv.FromUint64(4)
	tb.Insert(k, []byte("x"))
	if !tb.Delete(k) {
		t.Fatal("Delete existing = false")
	}
	if _, ok := tb.Lookup(k); ok {
		t.Fatal("present after delete")
	}
	if tb.Delete(k) {
		t.Fatal("Delete missing = true")
	}
}

func TestZeroKeyRejected(t *testing.T) {
	tb := newInline(64, 32)
	if err := tb.Insert(kv.Key{}, val32(0)); err == nil {
		t.Fatal("zero key accepted")
	}
}

func TestNeighborhoodGuarantee(t *testing.T) {
	// The hopscotch invariant: every key resides within H slots of its
	// home bucket — what makes single-READ GETs possible.
	// H=6 is a small neighborhood (the paper picks it to keep READs
	// small, trading peak load factor); 40% fill is comfortably inside
	// its operating range for single-slot buckets.
	tb := newInline(2048, 32)
	n := 2048 * 40 / 100
	for i := 0; i < n; i++ {
		k := kv.FromUint64(uint64(i))
		if err := tb.Insert(k, val32(byte(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := kv.FromUint64(uint64(i))
		s := tb.findSlot(k)
		if s < 0 {
			t.Fatalf("key %d lost", i)
		}
		if d := s - tb.Home(k); d < 0 || d >= tb.H() {
			t.Fatalf("key %d at distance %d, violates H=%d", i, d, tb.H())
		}
	}
	if tb.Hops() == 0 {
		t.Fatal("80% fill should have required displacement hops")
	}
}

func TestClientParseInline(t *testing.T) {
	// A FaRM-em client READs the neighborhood bytes and parses them.
	tb := newInline(512, 32)
	k := kv.FromUint64(9)
	tb.Insert(k, val32(9))
	off, n := tb.NeighborhoodOffset(k)
	raw := tb.mem[off : off+n]
	v, ok := ParseNeighborhoodInline(raw, k, 32)
	if !ok || !bytes.Equal(v, val32(9)) {
		t.Fatalf("parse = %v, %v", v, ok)
	}
	if _, ok := ParseNeighborhoodInline(raw, kv.FromUint64(10), 32); ok {
		t.Fatal("foreign key parsed from neighborhood")
	}
}

func TestClientParseVar(t *testing.T) {
	tb := newVar(512, 1<<16)
	k := kv.FromUint64(11)
	want := []byte("two-level value")
	tb.Insert(k, want)
	off, n := tb.NeighborhoodOffset(k)
	raw := tb.mem[off : off+n]
	ptr, vlen, ok := ParseNeighborhoodVar(raw, k)
	if !ok {
		t.Fatal("key not found in neighborhood")
	}
	got := tb.extent[ptr : int(ptr)+int(vlen)]
	if !bytes.Equal(got, want) {
		t.Fatalf("extent value = %q", got)
	}
}

func TestNeighborhoodBytesMatchPaper(t *testing.T) {
	// Figure 10's model: FaRM-em READ size is 6*(16+SV); VAR is 6*(16+8).
	for _, sv := range []int{4, 32, 128} {
		tb := newInline(64, sv)
		if got := tb.NeighborhoodBytes(); got != 6*(16+sv) {
			t.Fatalf("inline READ size = %d, want %d", got, 6*(16+sv))
		}
	}
	tb := newVar(64, 1<<12)
	if got := tb.NeighborhoodBytes(); got != 6*(16+8) {
		t.Fatalf("var READ size = %d, want %d", got, 6*24)
	}
}

func TestTableFull(t *testing.T) {
	tb := newInline(8, 32)
	sawFull := false
	for i := 0; i < 32; i++ {
		if err := tb.Insert(kv.FromUint64(uint64(i)), val32(1)); err == ErrTableFull {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("tiny table never filled")
	}
}

func TestExtentFull(t *testing.T) {
	tb := newVar(256, 16)
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = tb.Insert(kv.FromUint64(uint64(i)), make([]byte, 8))
	}
	if err != ErrExtentFull {
		t.Fatalf("err = %v, want ErrExtentFull", err)
	}
}

func TestLoadFactorAccounting(t *testing.T) {
	tb := newInline(100, 32)
	for i := 0; i < 50; i++ {
		tb.Insert(kv.FromUint64(uint64(i)), val32(1))
	}
	if lf := tb.LoadFactor(); lf < 0.49 || lf > 0.51 {
		t.Fatalf("load factor = %v, want 0.5", lf)
	}
}

// Property: model equivalence under mixed inserts/deletes/lookups;
// hopscotch is not lossy, so hits AND presence must match exactly for
// keys the table accepted.
func TestHopscotchModelProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tb := newVar(256, 1<<18)
		model := make(map[kv.Key]string)
		for _, op := range ops {
			k := kv.FromUint64(uint64(op % 100))
			switch rnd.Intn(3) {
			case 0:
				v := fmt.Sprintf("v%d", rnd.Intn(1000))
				if err := tb.Insert(k, []byte(v)); err == nil {
					model[k] = v
				}
			case 1:
				got, ok := tb.Lookup(k)
				want, in := model[k]
				if ok != in {
					return false
				}
				if ok && string(got) != want {
					return false
				}
			case 2:
				tb.Delete(k)
				delete(model, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
