package hopscotch

import (
	"testing"

	"herdkv/internal/kv"
)

// TestAchievableLoad documents the capacity envelope of H=6 single-slot
// hopscotch: at least 40% load must always be reachable (our FaRM-em
// experiments run at or below this), and failure beyond that must be a
// clean ErrTableFull.
func TestAchievableLoad(t *testing.T) {
	for trial := uint64(0); trial < 5; trial++ {
		n := 2048
		tb := NewInline(make([]byte, (n+DefaultH)*(kv.KeySize+32)), n, 32, DefaultH)
		filled := 0
		for i := 0; i < n; i++ {
			err := tb.Insert(kv.FromUint64(uint64(i)+trial*1000000), make([]byte, 32))
			if err == ErrTableFull {
				break
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			filled++
		}
		if load := float64(filled) / float64(n); load < 0.40 {
			t.Fatalf("trial %d: achievable load %.2f below 0.40", trial, load)
		}
	}
}
