// Package hostmem models the server host: CPU cores, DRAM access latency,
// and HERD's prefetch pipeline (Section 4.1.1 of the paper).
//
// A HERD server core services a request by polling the request region,
// performing up to two random DRAM lookups (MICA index + log), and calling
// post_send (~150 ns). Random DRAM accesses cost 60-120 ns; the 2-stage
// request pipeline overlaps the prefetch of one request's next access with
// the post_send of another, so a prefetched access completes in roughly an
// L1/L2 hit time. Figure 7 measures exactly this effect.
package hostmem

import "herdkv/internal/sim"

// Params describes CPU and memory timing for one host.
type Params struct {
	// DRAMLo and DRAMHi bound a uniform random DRAM access time
	// (the paper quotes 60-120 ns).
	DRAMLo, DRAMHi sim.Time
	// PrefetchedAccess is the cost of touching a line whose prefetch has
	// already completed (roughly an L2 hit).
	PrefetchedAccess sim.Time
	// PostSend is the CPU cost of the post_send() verbs call
	// (~150 ns per the paper).
	PostSend sim.Time
	// PollCheck is the CPU cost of detecting a new request while polling
	// the request region (the hit case; includes the L3-resident load of
	// the keyhash word and loop overhead).
	PollCheck sim.Time
	// RecvRepost is the CPU cost of posting a RECV, paid per request by
	// SEND/RECV-based servers such as Pilaf's PUT path (Figure 13).
	RecvRepost sim.Time
}

// DefaultParams returns timing for a Xeon E5-2450-class host, calibrated
// to the paper's quoted numbers: 60-120 ns DRAM, ~150 ns post_send, and a
// single HERD core delivering ~6.3 Mops (Section 5.7).
func DefaultParams() Params {
	return Params{
		DRAMLo:           sim.NS(60),
		DRAMHi:           sim.NS(120),
		PrefetchedAccess: sim.NS(5),
		PostSend:         sim.NS(120),
		PollCheck:        sim.NS(25),
		RecvRepost:       sim.NS(110),
	}
}

// Host is a simulated server host: a set of CPU cores sharing a DRAM
// timing model. Each core is an independent FIFO resource.
type Host struct {
	eng   *sim.Engine
	p     Params
	cores []*sim.Server
	rnd   *sim.Rand
}

// NewHost returns a host with the given core count.
func NewHost(eng *sim.Engine, p Params, cores int, seed int64) *Host {
	if cores < 1 {
		panic("hostmem: NewHost requires cores >= 1")
	}
	h := &Host{eng: eng, p: p, rnd: sim.NewRand(seed)}
	h.cores = make([]*sim.Server, cores)
	for i := range h.cores {
		h.cores[i] = sim.NewServer(eng, 1)
	}
	return h
}

// Params returns the host's timing parameters.
func (h *Host) Params() Params { return h.p }

// Cores returns the number of CPU cores.
func (h *Host) Cores() int { return len(h.cores) }

// Core returns core i's service resource.
func (h *Host) Core(i int) *sim.Server { return h.cores[i] }

// DRAMAccess samples one random DRAM access time.
func (h *Host) DRAMAccess() sim.Time {
	return h.rnd.DurationBetween(h.p.DRAMLo, h.p.DRAMHi)
}

// RequestService returns the CPU time one core spends on a request that
// performs nAccesses random memory lookups before replying.
//
// Without prefetching the core stalls on every access. With the paper's
// pipeline, an access whose prefetch was overlapped with earlier work
// costs only PrefetchedAccess — but masking is only complete if the
// pipeline advance interval covers the DRAM latency; otherwise the
// residual stall is charged.
func (h *Host) RequestService(nAccesses int, prefetch bool) sim.Time {
	base := h.p.PollCheck + h.p.PostSend
	if !prefetch {
		t := base
		for i := 0; i < nAccesses; i++ {
			t += h.DRAMAccess()
		}
		return t
	}
	t := base + sim.Time(nAccesses)*h.p.PrefetchedAccess
	// The pipeline advances once per request completion, and an access's
	// prefetch is issued one full advance before its use. Masking is
	// complete when the per-request service time covers the DRAM
	// latency; otherwise the pipeline can only advance as fast as
	// prefetches land.
	if nAccesses > 0 {
		if lat := h.DRAMAccess(); t < lat {
			t = lat
		}
	}
	return t
}

// LeastLoadedCore returns the index of the core whose queue frees first.
func (h *Host) LeastLoadedCore() int {
	best := 0
	for i := 1; i < len(h.cores); i++ {
		if h.cores[i].NextFree() < h.cores[best].NextFree() {
			best = i
		}
	}
	return best
}
