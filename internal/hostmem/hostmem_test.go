package hostmem

import (
	"testing"
	"testing/quick"

	"herdkv/internal/sim"
)

func newHost(cores int) *Host {
	return NewHost(sim.New(), DefaultParams(), cores, 1)
}

func TestDRAMAccessInRange(t *testing.T) {
	h := newHost(1)
	p := h.Params()
	for i := 0; i < 1000; i++ {
		d := h.DRAMAccess()
		if d < p.DRAMLo || d > p.DRAMHi {
			t.Fatalf("DRAM access %v outside [%v, %v]", d, p.DRAMLo, p.DRAMHi)
		}
	}
}

func TestPrefetchMasksLatency(t *testing.T) {
	// With 8 accesses, prefetching must cut service time by several
	// hundred ns (Figure 7's motivation).
	h := newHost(1)
	var withPF, without sim.Time
	for i := 0; i < 1000; i++ {
		withPF += h.RequestService(8, true)
		without += h.RequestService(8, false)
	}
	if withPF >= without {
		t.Fatalf("prefetch (%v) not faster than stall (%v)", withPF, without)
	}
	// No-prefetch mean should be ~ base + 8*90ns.
	meanNoPF := without.Nanoseconds() / 1000
	p := h.Params()
	base := (p.PollCheck + p.PostSend).Nanoseconds()
	want := base + 8*90
	if meanNoPF < want*0.9 || meanNoPF > want*1.1 {
		t.Fatalf("no-prefetch mean %v ns, want ~%v ns", meanNoPF, want)
	}
}

func TestPrefetchServiceNearBaseForSmallN(t *testing.T) {
	// For the HERD case (2 accesses), prefetched service should be close
	// to poll + post_send: the pipeline fully masks DRAM.
	h := newHost(1)
	p := h.Params()
	base := p.PollCheck + p.PostSend + 2*p.PrefetchedAccess
	var total sim.Time
	n := 1000
	for i := 0; i < n; i++ {
		total += h.RequestService(2, true)
	}
	mean := float64(total) / float64(n)
	if mean < float64(base) || mean > float64(base)*1.35 {
		t.Fatalf("prefetched mean %v ns, want within 35%% above %v ns",
			sim.Time(mean).Nanoseconds(), base.Nanoseconds())
	}
}

func TestSingleCoreHERDRate(t *testing.T) {
	// Section 5.7: one HERD core delivers ~6.3 Mops. Our calibration
	// should land within 20%.
	h := newHost(1)
	var total sim.Time
	n := 10000
	for i := 0; i < n; i++ {
		total += h.RequestService(2, true)
	}
	mops := float64(n) / total.Seconds() / 1e6
	if mops < 5.0 || mops > 7.6 {
		t.Fatalf("single-core rate = %.2f Mops, want ~6.3", mops)
	}
}

func TestZeroAccessService(t *testing.T) {
	h := newHost(1)
	p := h.Params()
	want := p.PollCheck + p.PostSend
	if got := h.RequestService(0, false); got != want {
		t.Fatalf("0-access service = %v, want %v", got, want)
	}
	if got := h.RequestService(0, true); got != want {
		t.Fatalf("0-access prefetch service = %v, want %v", got, want)
	}
}

func TestCoresAreIndependent(t *testing.T) {
	eng := sim.New()
	h := NewHost(eng, DefaultParams(), 4, 1)
	var ends [4]sim.Time
	for i := 0; i < 4; i++ {
		i := i
		h.Core(i).Submit(100*sim.Nanosecond, func(end sim.Time) { ends[i] = end })
	}
	eng.Run()
	for i, e := range ends {
		if e != 100*sim.Nanosecond {
			t.Fatalf("core %d finished at %v, want 100ns (no cross-core queueing)", i, e)
		}
	}
}

func TestLeastLoadedCore(t *testing.T) {
	eng := sim.New()
	h := NewHost(eng, DefaultParams(), 3, 1)
	h.Core(0).Submit(300*sim.Nanosecond, nil)
	h.Core(1).Submit(100*sim.Nanosecond, nil)
	h.Core(2).Submit(200*sim.Nanosecond, nil)
	if got := h.LeastLoadedCore(); got != 1 {
		t.Fatalf("LeastLoadedCore = %d, want 1", got)
	}
}

func TestNewHostPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHost(0 cores) did not panic")
		}
	}()
	NewHost(sim.New(), DefaultParams(), 0, 1)
}

// Property: service time grows monotonically with access count, and
// prefetching never makes a request slower in expectation.
func TestServiceMonotoneProperty(t *testing.T) {
	h := newHost(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 16)
		var a, b sim.Time
		for i := 0; i < 50; i++ {
			a += h.RequestService(n, false)
			b += h.RequestService(n+1, false)
		}
		return a < b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
