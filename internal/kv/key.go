// Package kv holds the key type and hashing helpers shared by the
// key-value backends (MICA, cuckoo, hopscotch) and the workload
// generators.
package kv

import (
	"encoding/binary"
	"errors"
)

// KeySize is the keyhash size: HERD, Pilaf-em and FaRM-em all identify
// items by a 16-byte keyhash (SK = 16 throughout the paper's evaluation).
const KeySize = 16

// ErrZeroKey rejects the reserved all-zero keyhash: every backend's
// table uses it as the empty-slot marker (and HERD's request-polling
// protocol reserves it on the wire), so clients refuse it up front.
var ErrZeroKey = errors.New("kv: zero keyhash is reserved")

// Key is a 16-byte keyhash.
type Key [KeySize]byte

// IsZero reports whether the key is all zero. HERD reserves the zero
// keyhash for its request-polling protocol (Section 4.2).
func (k Key) IsZero() bool { return k == Key{} }

// mix64 is the splitmix64 finalizer, a fast high-quality bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 derives a 64-bit hash of the key under the given seed.
// Different seeds give (effectively) orthogonal hash functions, as
// cuckoo hashing requires.
func (k Key) Hash64(seed uint64) uint64 {
	lo := binary.LittleEndian.Uint64(k[:8])
	hi := binary.LittleEndian.Uint64(k[8:])
	return mix64(lo ^ mix64(hi+seed) ^ (seed * 0x9e3779b97f4a7c15))
}

// FromUint64 builds a well-mixed, never-zero keyhash from n — what a
// client library would produce by hashing an application key.
func FromUint64(n uint64) Key {
	var k Key
	binary.LittleEndian.PutUint64(k[:8], mix64(n)|1)
	binary.LittleEndian.PutUint64(k[8:], mix64(n+0x9e3779b97f4a7c15))
	return k
}

// Checksum64 returns a 64-bit checksum of data, used by Pilaf's
// self-verifying data structures.
func Checksum64(data []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, b := range data {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	// Finalize so short inputs still differ widely.
	return mix64(h)
}
