package kv

import (
	"testing"
	"testing/quick"
)

func TestFromUint64NeverZero(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		if FromUint64(i).IsZero() {
			t.Fatalf("FromUint64(%d) is zero", i)
		}
	}
}

func TestFromUint64Distinct(t *testing.T) {
	seen := make(map[Key]bool)
	for i := uint64(0); i < 10000; i++ {
		k := FromUint64(i)
		if seen[k] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[k] = true
	}
}

func TestHash64SeedsOrthogonal(t *testing.T) {
	// Different seeds must behave as independent hash functions: the
	// probability two keys collide under both seeds should be tiny.
	both := 0
	n := 20000
	for i := 0; i < n; i++ {
		k := FromUint64(uint64(i))
		h1 := k.Hash64(1) % 97
		h2 := k.Hash64(2) % 97
		k2 := FromUint64(uint64(i + n))
		if k2.Hash64(1)%97 == h1 && k2.Hash64(2)%97 == h2 {
			both++
		}
	}
	// Expected collisions-under-both: n/97^2 ~ 2.1.
	if both > 20 {
		t.Fatalf("seeds not orthogonal: %d double collisions", both)
	}
}

func TestHash64Deterministic(t *testing.T) {
	f := func(a, b uint64) bool {
		k := FromUint64(a)
		return k.Hash64(b) == k.Hash64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	data := []byte("pilaf self-verifying bucket")
	c := Checksum64(data)
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x40
		if Checksum64(corrupt) == c {
			t.Fatalf("flip at byte %d undetected", i)
		}
	}
}

func TestChecksumLengthSensitive(t *testing.T) {
	if Checksum64([]byte{}) == Checksum64([]byte{0}) {
		t.Fatal("checksum ignores trailing zero byte")
	}
}

func TestHash64Uniformity(t *testing.T) {
	// Chi-square-ish sanity: 64 bins, 64k keys => ~1024 per bin.
	bins := make([]int, 64)
	n := 65536
	for i := 0; i < n; i++ {
		bins[FromUint64(uint64(i)).Hash64(7)%64]++
	}
	for b, c := range bins {
		if c < 850 || c > 1200 {
			t.Fatalf("bin %d has %d, want ~1024", b, c)
		}
	}
}
