package kvtest

import (
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/farm"
	"herdkv/internal/fault"
	"herdkv/internal/fleet"
	"herdkv/internal/mica"
	"herdkv/internal/nearcache"
	"herdkv/internal/pilaf"
	"herdkv/internal/sim"
)

func herdConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.NS = 4
	cfg.MaxClients = 8
	cfg.Window = 4
	cfg.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	return cfg
}

func TestHERDConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 2, 1)
		srv, err := core.NewServer(cl.Machine(0), herdConfig())
		if err != nil {
			t.Fatal(err)
		}
		c, err := srv.ConnectClient(cl.Machine(1))
		if err != nil {
			t.Fatal(err)
		}
		return Harness{KV: c, Run: cl.Eng.Run}
	})
}

func TestShardedConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 3, 1)
		d, err := core.NewShardedDeployment(
			[]*cluster.Machine{cl.Machine(0), cl.Machine(1)}, herdConfig())
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.ConnectClient(cl.Machine(2))
		if err != nil {
			t.Fatal(err)
		}
		return Harness{KV: c, Run: cl.Eng.Run}
	})
}

func TestFleetConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 3, 1)
		cfg := fleet.DefaultConfig()
		cfg.Herd = herdConfig()
		cfg.Herd.RetryTimeout = 12 * sim.Microsecond
		d, err := fleet.NewDeployment(
			[]*cluster.Machine{cl.Machine(0), cl.Machine(1)}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.ConnectClient(cl.Machine(2))
		if err != nil {
			t.Fatal(err)
		}
		return Harness{KV: c, Run: cl.Eng.Run}
	})
}

// TestNearCacheHERDConformance runs the full suite against the
// near-cache wrapper over a single HERD server: caching must be
// invisible to the kv.KV contract (callback discipline, counters,
// delete-then-miss) even when reads are served locally.
func TestNearCacheHERDConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 2, 1)
		srv, err := core.NewServer(cl.Machine(0), herdConfig())
		if err != nil {
			t.Fatal(err)
		}
		c, err := srv.ConnectClient(cl.Machine(1))
		if err != nil {
			t.Fatal(err)
		}
		nc := nearcache.New(c, cl.Eng, nil, nearcache.DefaultConfig())
		return Harness{KV: nc, Run: cl.Eng.Run}
	})
}

// TestNearCacheFleetConformance layers the near cache over the
// replicated fleet, which also exercises the BatchGet subtest through
// the wrapper's cached/batched MultiGet split.
func TestNearCacheFleetConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 3, 1)
		cfg := fleet.DefaultConfig()
		cfg.Herd = herdConfig()
		cfg.Herd.RetryTimeout = 12 * sim.Microsecond
		d, err := fleet.NewDeployment(
			[]*cluster.Machine{cl.Machine(0), cl.Machine(1)}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.ConnectClient(cl.Machine(2))
		if err != nil {
			t.Fatal(err)
		}
		nc := nearcache.New(c, cl.Eng, nil, nearcache.DefaultConfig())
		return Harness{KV: nc, Run: cl.Eng.Run}
	})
}

// TestFleetNemesisConformance runs the full suite against the
// versioned, read-repairing fleet client while a generated nemesis
// schedule crashes a shard and severs links mid-run. Individual ops may
// fail under fire (AllowFailures), but no kv.KV invariant — callback
// discipline, counter bookkeeping, result shape — may break.
func TestFleetNemesisConformance(t *testing.T) {
	sched, err := fault.ParseSchedule(
		"nemesis seed=29 until=400us nodes=2 peers=3 crashes=1 blackouts=2 partitions=1 mindown=50us maxdown=100us")
	if err != nil {
		t.Fatal(err)
	}
	Run(t, func(t *testing.T) Harness {
		spec := cluster.Apt()
		spec.Faults = sched
		cl := cluster.New(spec, 3, 1)
		cfg := fleet.DefaultConfig()
		cfg.Herd = herdConfig()
		cfg.Herd.RetryTimeout = 12 * sim.Microsecond
		cfg.Versioned = true
		cfg.ReadRepair = true
		d, err := fleet.NewDeployment(
			[]*cluster.Machine{cl.Machine(0), cl.Machine(1)}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.ConnectClient(cl.Machine(2))
		if err != nil {
			t.Fatal(err)
		}
		d.RegisterCrashTargets(cl.Faults())
		cl.Faults().Arm()
		return Harness{KV: c, Run: cl.Eng.Run, AllowFailures: true}
	})
}

func TestPilafConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 2, 1)
		srv, err := pilaf.NewServer(cl.Machine(0),
			pilaf.Config{Buckets: 1 << 12, ExtentBytes: 1 << 22, Cores: 4, Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		c, err := srv.ConnectClient(cl.Machine(1))
		if err != nil {
			t.Fatal(err)
		}
		return Harness{KV: c, Run: cl.Eng.Run}
	})
}

func TestFaRMConformance(t *testing.T) {
	Run(t, func(t *testing.T) Harness {
		cl := cluster.New(cluster.Apt(), 2, 1)
		srv, err := farm.NewServer(cl.Machine(0), farm.Config{
			Mode: farm.InlineMode, Buckets: 1 << 12, ValueSize: 32,
			ExtentBytes: 1 << 22, H: 6, Cores: 4, Window: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := srv.ConnectClient(cl.Machine(1))
		if err != nil {
			t.Fatal(err)
		}
		return Harness{KV: c, Run: cl.Eng.Run, ValueSize: 32}
	})
}
