// Package kvtest is a conformance suite for kv.KV implementations.
// Every backend — HERD, the sharded deployment, the replicated fleet,
// Pilaf-em and FaRM-em — completes operations with the same kv.Result
// vocabulary and maintains the same Issued/Completed/Failed counter
// contract; this suite pins that contract in one place, so a new
// backend (or a refactor of an old one) is checked against the same
// semantics as every other.
package kvtest

import (
	"bytes"
	"testing"

	"herdkv/internal/kv"
)

// Harness wraps one backend instance for a conformance run.
type Harness struct {
	// KV is the client under test, attached to a freshly built backend.
	KV kv.KV
	// Run drives the simulation engine until all outstanding events
	// drain (typically cluster.Eng.Run).
	Run func()
	// ValueSize, when nonzero, is the only legal PUT value length
	// (FaRM-em's inline mode stores fixed-size values). Zero means any
	// small value is accepted.
	ValueSize int
	// AllowFailures relaxes the clean-network assumption for backends
	// run under fault injection (a nemesis schedule): operations may
	// resolve with Err set, and a subtest whose ops failed skips its
	// value/status assertions — it can no longer conclude anything
	// about them. Every structural invariant still holds: callbacks
	// run exactly once, the engine drains to Inflight()==0, and
	// Issued/Completed/Failed stay balanced.
	AllowFailures bool
}

// anyFailed reports whether failure tolerance is on and one of the
// resolved results carries an error (nil entries mean the callback
// never ran — that is always a failure of the suite itself, never
// tolerated here).
func (h Harness) anyFailed(t *testing.T, rs ...*kv.Result) bool {
	t.Helper()
	if !h.AllowFailures {
		return false
	}
	for _, r := range rs {
		if r != nil && r.Err != nil {
			t.Logf("op failed under fault injection (tolerated): %+v", *r)
			return true
		}
	}
	return false
}

// value builds a legal PUT value with recognizable content.
func (h Harness) value(fill byte) []byte {
	n := h.ValueSize
	if n == 0 {
		n = 24
	}
	v := make([]byte, n)
	for i := range v {
		v[i] = fill + byte(i)
	}
	return v
}

// Factory builds a fresh backend per subtest, so state cannot leak
// between conformance checks.
type Factory func(t *testing.T) Harness

// Run executes the conformance suite against the backend built by mk.
func Run(t *testing.T, mk Factory) {
	t.Run("PutGetRoundTrip", func(t *testing.T) { putGetRoundTrip(t, mk(t)) })
	t.Run("GetMiss", func(t *testing.T) { getMiss(t, mk(t)) })
	t.Run("DeleteSemantics", func(t *testing.T) { deleteSemantics(t, mk(t)) })
	t.Run("ZeroKeyRejected", func(t *testing.T) { zeroKeyRejected(t, mk(t)) })
	t.Run("CallbackExactlyOnce", func(t *testing.T) { callbackExactlyOnce(t, mk(t)) })
	t.Run("CounterInvariants", func(t *testing.T) { counterInvariants(t, mk(t)) })
	t.Run("BatchGet", func(t *testing.T) {
		h := mk(t)
		if _, ok := h.KV.(kv.BatchGetter); !ok {
			t.Skipf("%T does not implement kv.BatchGetter", h.KV)
		}
		batchGet(t, h)
	})
}

// batchGet pins the optional kv.BatchGetter contract: one callback
// with results aligned to the request slice (duplicates included),
// and zero keys rejected synchronously before anything is issued.
func batchGet(t *testing.T, h Harness) {
	bg := h.KV.(kv.BatchGetter)
	k1, k2 := kv.FromUint64(21), kv.FromUint64(22)
	missing := kv.FromUint64(404)
	v1, v2 := h.value('1'), h.value('2')

	stored := 0
	var seed1, seed2 kv.Result
	h.KV.Put(k1, v1, func(r kv.Result) { seed1 = r; stored++ })
	h.KV.Put(k2, v2, func(r kv.Result) { seed2 = r; stored++ })
	h.Run()
	if stored != 2 {
		t.Fatalf("seeded %d of 2 keys", stored)
	}
	seedsOK := !h.anyFailed(t, &seed1, &seed2)

	keys := []kv.Key{k1, missing, k2, k1} // duplicate on purpose
	calls := 0
	var got []kv.Result
	if err := bg.MultiGet(keys, func(rs []kv.Result) { calls++; got = rs }); err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	h.Run()

	if calls != 1 {
		t.Fatalf("batch callback ran %d times, want exactly once", calls)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(got), len(keys))
	}
	want := []struct {
		status kv.Status
		value  []byte
	}{{kv.StatusHit, v1}, {kv.StatusMiss, nil}, {kv.StatusHit, v2}, {kv.StatusHit, v1}}
	for i, w := range want {
		r := got[i]
		if r.Key != keys[i] {
			t.Errorf("result %d keyed %v, want %v", i, r.Key, keys[i])
		}
		if !r.IsGet {
			t.Errorf("result %d not marked IsGet", i)
		}
		if h.anyFailed(t, &r) || !seedsOK {
			continue // structural checks above still ran
		}
		if r.Status != w.status || !bytes.Equal(r.Value, w.value) {
			t.Errorf("result %d = %v (%d B), want %v", i, r.Status, len(r.Value), w.status)
		}
	}

	ran := false
	if err := bg.MultiGet([]kv.Key{k1, {}}, func([]kv.Result) { ran = true }); err == nil {
		t.Error("MultiGet with a zero key accepted")
	}
	h.Run()
	if ran {
		t.Fatal("rejected batch still ran its callback")
	}
}

func putGetRoundTrip(t *testing.T, h Harness) {
	key := kv.FromUint64(7)
	val := h.value('a')
	var putRes, getRes *kv.Result
	if err := h.KV.Put(key, val, func(r kv.Result) {
		putRes = &r
		if err := h.KV.Get(key, func(r kv.Result) { getRes = &r }); err != nil {
			t.Errorf("Get: %v", err)
		}
	}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	h.Run()

	if putRes == nil || getRes == nil {
		t.Fatal("callbacks did not run")
	}
	if h.anyFailed(t, putRes, getRes) {
		return
	}
	if putRes.Status != kv.StatusHit || putRes.Err != nil {
		t.Fatalf("PUT result %+v, want hit", *putRes)
	}
	if getRes.Status != kv.StatusHit || !bytes.Equal(getRes.Value, val) {
		t.Fatalf("GET result %+v, want hit with stored value", *getRes)
	}
	if !getRes.IsGet {
		t.Fatal("GET result not marked IsGet")
	}
	if getRes.Latency <= 0 {
		t.Fatalf("GET latency %v, want positive", getRes.Latency)
	}
}

func getMiss(t *testing.T, h Harness) {
	var res *kv.Result
	if err := h.KV.Get(kv.FromUint64(404), func(r kv.Result) { res = &r }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	h.Run()
	if res == nil {
		t.Fatal("callback did not run")
	}
	if h.anyFailed(t, res) {
		return
	}
	if res.Status != kv.StatusMiss || res.Err != nil {
		t.Fatalf("miss result %+v, want StatusMiss with nil Err", *res)
	}
	if res.Value != nil {
		t.Fatalf("miss carried a value %q", res.Value)
	}
}

func deleteSemantics(t *testing.T, h Harness) {
	key := kv.FromUint64(9)
	var seed kv.Result
	var del1, get1, del2 *kv.Result
	err := h.KV.Put(key, h.value('d'), func(r kv.Result) {
		seed = r
		h.KV.Delete(key, func(r kv.Result) {
			del1 = &r
			h.KV.Get(key, func(r kv.Result) {
				get1 = &r
				h.KV.Delete(key, func(r kv.Result) { del2 = &r })
			})
		})
	})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	h.Run()

	if del1 == nil || get1 == nil || del2 == nil {
		t.Fatal("callbacks did not all run")
	}
	// A failed op anywhere in the chain (including the seeding PUT)
	// leaves the key's state indeterminate; the semantic ladder below
	// only holds on a clean run.
	if h.anyFailed(t, &seed, del1, get1, del2) {
		return
	}
	if seed.Err != nil || seed.Status != kv.StatusHit {
		t.Fatalf("seeding PUT = %+v, want hit", seed)
	}
	if del1.Status != kv.StatusHit {
		t.Fatalf("DELETE of present key = %v, want hit", del1.Status)
	}
	if get1.Status != kv.StatusMiss {
		t.Fatalf("GET after DELETE = %v, want miss", get1.Status)
	}
	if del2.Status != kv.StatusMiss {
		t.Fatalf("DELETE of absent key = %v, want miss", del2.Status)
	}
}

func zeroKeyRejected(t *testing.T, h Harness) {
	var zero kv.Key
	ran := false
	cb := func(kv.Result) { ran = true }
	if err := h.KV.Get(zero, cb); err == nil {
		t.Error("Get(zero key) accepted")
	}
	if err := h.KV.Put(zero, h.value('z'), cb); err == nil {
		t.Error("Put(zero key) accepted")
	}
	if err := h.KV.Delete(zero, cb); err == nil {
		t.Error("Delete(zero key) accepted")
	}
	h.Run()
	if ran {
		t.Fatal("a rejected operation still ran its callback")
	}
	if got := h.KV.Issued(); got != 0 {
		t.Fatalf("rejected operations counted as issued (%d)", got)
	}
}

func callbackExactlyOnce(t *testing.T, h Harness) {
	const n = 12
	counts := make([]int, 3*n)
	for i := 0; i < n; i++ {
		i := i
		key := kv.FromUint64(uint64(i) + 1)
		if err := h.KV.Put(key, h.value(byte(i)), func(kv.Result) { counts[3*i]++ }); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if err := h.KV.Get(key, func(kv.Result) { counts[3*i+1]++ }); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if err := h.KV.Delete(key, func(kv.Result) { counts[3*i+2]++ }); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	h.Run()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("callback %d ran %d times, want exactly once", i, c)
		}
	}
}

func counterInvariants(t *testing.T, h Harness) {
	const n = 16
	resolved := 0
	for i := 0; i < n; i++ {
		key := kv.FromUint64(uint64(i) + 1)
		var err error
		switch i % 3 {
		case 0:
			err = h.KV.Put(key, h.value(byte(i)), func(kv.Result) { resolved++ })
		case 1:
			err = h.KV.Get(key, func(kv.Result) { resolved++ })
		default:
			err = h.KV.Delete(key, func(kv.Result) { resolved++ })
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	h.Run()

	if resolved != n {
		t.Fatalf("%d of %d callbacks ran", resolved, n)
	}
	if got := h.KV.Inflight(); got != 0 {
		t.Fatalf("Inflight = %d after drain, want 0", got)
	}
	issued, completed, failed := h.KV.Issued(), h.KV.Completed(), h.KV.Failed()
	if completed+failed != uint64(n) {
		t.Fatalf("Completed(%d)+Failed(%d) != %d resolved ops", completed, failed, n)
	}
	if issued < uint64(n) {
		t.Fatalf("Issued = %d, want >= %d", issued, n)
	}
	if failed != 0 && !h.AllowFailures {
		t.Fatalf("Failed = %d on a clean network, want 0", failed)
	}
}
