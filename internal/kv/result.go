// Unified client-facing operation outcome and the common KV client
// interface. HERD, Pilaf-em, FaRM-em, the sharded deployment and the
// fleet layer all complete operations with the same Result shape and
// satisfy the same KV interface, so drivers, experiments and
// applications are written once against this vocabulary instead of
// switching on system-specific result types.
package kv

import "herdkv/internal/sim"

// Status is the shared outcome vocabulary of a key-value operation.
// Every backend maps its wire-level response onto one of these four
// codes, so callers never need to inspect system-specific fields to
// classify an outcome.
type Status uint8

// Operation outcomes.
const (
	// StatusUnknown is the zero value: the operation has not resolved
	// (or a legacy constructor forgot to classify it).
	StatusUnknown Status = iota
	// StatusHit: the operation was served and found/applied its key — a
	// GET that returned a value, a PUT that was stored, a DELETE that
	// removed a present key.
	StatusHit
	// StatusMiss: the operation was served but the key was absent (GET
	// miss, DELETE of a missing key) or the store rejected the update
	// (full store-mode partition).
	StatusMiss
	// StatusTimeout: the operation failed terminally after exhausting
	// its retry budget — the server is crashed, partitioned away, or
	// the fabric ate every attempt. Result.Err is non-nil.
	StatusTimeout
	// StatusFlushed: the operation was aborted because its queue pair
	// flushed in error with no retry machinery to reissue it.
	StatusFlushed
	// StatusBusy: the server shed the operation under overload
	// (admission control pushed back with an explicit busy response)
	// and the client's busy-retry policy ran out of deadline before
	// the operation was admitted. Result.Err is non-nil. Unlike
	// StatusTimeout, the server is alive — callers should back off and
	// retry, or steer to a replica, rather than treat it as a crash.
	StatusBusy
)

// String returns the lowercase status word used in tables and logs.
func (s Status) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusMiss:
		return "miss"
	case StatusTimeout:
		return "timeout"
	case StatusFlushed:
		return "flushed"
	case StatusBusy:
		return "busy"
	}
	return "unknown"
}

// Served reports whether the server answered the operation (hit or
// miss) as opposed to it failing in transit.
func (s Status) Served() bool { return s == StatusHit || s == StatusMiss }

// Result is the outcome of one key-value operation, delivered to the
// caller's callback when the operation resolves. It is shared by every
// backend; Status carries the unified outcome classification.
type Result struct {
	Key     Key
	IsGet   bool
	Status  Status
	Value   []byte // GET hit: the value (copied)
	Latency sim.Time
	Err     error // terminal failure (e.g. a retry-budget timeout); nil on a served response

	// Lease is the absolute virtual-time expiry of the freshness lease
	// the server granted alongside a GET hit, or zero when the backend
	// grants no leases (core.Config.LeaseTTL unset, non-HERD backends).
	// A near cache may serve the value locally until this instant; see
	// docs/CACHING.md for the contract.
	Lease sim.Time

	// Reads counts client-driven READ verbs issued for this operation
	// (Pilaf bucket probes + extent READ, FaRM neighborhood + value
	// READ). Zero for server-CPU designs like HERD.
	Reads int
}

// KV is the common client interface implemented by every key-value
// backend: HERD (core.Client), the sharded and fleet deployments, and
// the Pilaf-em and FaRM-em baselines. Operations are asynchronous; cb
// runs on the simulation engine when the operation resolves. The
// returned error reports synchronous rejection (malformed key/value)
// only — asynchronous failures arrive as Result.Status / Result.Err.
type KV interface {
	// Get fetches key; cb receives a hit with the value, or a miss.
	Get(key Key, cb func(Result)) error
	// Put stores value under key.
	Put(key Key, value []byte, cb func(Result)) error
	// Delete removes key; the result reports whether it was present.
	Delete(key Key, cb func(Result)) error
	// Inflight returns the number of unresolved operations.
	Inflight() int
	// Issued and Completed count operations submitted to the fabric and
	// operations resolved with a served response.
	Issued() uint64
	Completed() uint64
	// Failed counts operations that resolved terminally unserved
	// (timeout or flush).
	Failed() uint64
}

// BatchGetter is the optional batch-read extension of KV. Backends
// that can serve many GETs more efficiently than one-at-a-time — the
// fleet client groups keys per primary shard, the near cache answers
// resident keys locally — implement it; callers discover it with a
// type assertion:
//
//	if bg, ok := store.(kv.BatchGetter); ok { bg.MultiGet(keys, cb) }
//
// cb receives one Result per requested key, in request order, after
// every key has resolved. Duplicate keys each get their own slot.
type BatchGetter interface {
	MultiGet(keys []Key, cb func([]Result)) error
}
