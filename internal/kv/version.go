package kv

import "encoding/binary"

// Version orders conflicting replica states. Epoch is the issuing
// client's virtual clock (sim.Time as int64 picoseconds) at the moment
// the write was stamped; Seq breaks ties between writes stamped in the
// same instant (per-client counter in the high bits, client id in the
// low bits, so two clients can never mint the same stamp). Comparison
// is lexicographic on (Epoch, Seq): because every client reads the same
// virtual clock, a write that strictly happens-after another always
// carries the larger stamp, which is what lets replicas apply updates
// in any order and still converge (last-writer-wins with a total
// order).
type Version struct {
	Epoch int64
	Seq   uint64
}

// Compare returns -1, 0, or +1 as v orders before, equal to, or after o.
func (v Version) Compare(o Version) int {
	if v.Epoch != o.Epoch {
		if v.Epoch < o.Epoch {
			return -1
		}
		return 1
	}
	if v.Seq != o.Seq {
		if v.Seq < o.Seq {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether v orders strictly before o.
func (v Version) Less(o Version) bool { return v.Compare(o) < 0 }

// IsZero reports whether v is the zero stamp (no version information).
func (v Version) IsZero() bool { return v.Epoch == 0 && v.Seq == 0 }

// VersionPrefixLen is the size of the stamp prepended to every stored
// value when versioned replication is on: [epoch 8][seq 8][flags 1].
// The prefix travels inside the ordinary HERD value bytes, so the wire
// format, MICA layout, and WAL records all carry it without change.
const VersionPrefixLen = 8 + 8 + 1

// versionFlagTombstone marks a deletion: versioned mode never removes
// entries (a removal could be resurrected by a stale replica), it
// overwrites them with a tombstoned stamp that outranks the dead value.
const versionFlagTombstone = 0x01

// AppendVersion appends the 17-byte stamp for (v, tombstone) to dst and
// returns the extended slice. The value payload follows the prefix.
func AppendVersion(dst []byte, v Version, tombstone bool) []byte {
	var buf [VersionPrefixLen]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(v.Epoch))
	binary.LittleEndian.PutUint64(buf[8:16], v.Seq)
	if tombstone {
		buf[16] = versionFlagTombstone
	}
	return append(dst, buf[:]...)
}

// SplitVersion decodes the stamp from a stored value. It returns the
// version, whether the entry is a tombstone, the payload that follows
// the prefix, and ok=false when the buffer is too short to carry a
// stamp (callers treat such values as unversioned legacy data).
func SplitVersion(stored []byte) (v Version, tombstone bool, payload []byte, ok bool) {
	if len(stored) < VersionPrefixLen {
		return Version{}, false, nil, false
	}
	v.Epoch = int64(binary.LittleEndian.Uint64(stored[0:8]))
	v.Seq = binary.LittleEndian.Uint64(stored[8:16])
	tombstone = stored[16]&versionFlagTombstone != 0
	return v, tombstone, stored[VersionPrefixLen:], true
}
