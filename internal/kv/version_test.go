package kv

import (
	"bytes"
	"testing"
)

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b Version
		want int
	}{
		{Version{1, 0}, Version{2, 0}, -1},
		{Version{2, 0}, Version{1, 9}, 1},
		{Version{3, 4}, Version{3, 4}, 0},
		{Version{3, 4}, Version{3, 5}, -1},
		{Version{3, 6}, Version{3, 5}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want < 0)
		}
	}
	if !(Version{}).IsZero() {
		t.Fatal("zero Version must report IsZero")
	}
	if (Version{Epoch: 1}).IsZero() || (Version{Seq: 1}).IsZero() {
		t.Fatal("non-zero Version reports IsZero")
	}
}

func TestVersionRoundTrip(t *testing.T) {
	payload := []byte("hello, versioned world")
	for _, tomb := range []bool{false, true} {
		v := Version{Epoch: 123456789, Seq: 42}
		stored := AppendVersion(nil, v, tomb)
		stored = append(stored, payload...)
		if len(stored) != VersionPrefixLen+len(payload) {
			t.Fatalf("stored length %d, want %d", len(stored), VersionPrefixLen+len(payload))
		}
		got, gotTomb, gotPayload, ok := SplitVersion(stored)
		if !ok {
			t.Fatal("SplitVersion rejected a well-formed value")
		}
		if got != v || gotTomb != tomb || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: got (%v, %v, %q), want (%v, %v, %q)",
				got, gotTomb, gotPayload, v, tomb, payload)
		}
	}
}

func TestVersionSplitShort(t *testing.T) {
	for n := 0; n < VersionPrefixLen; n++ {
		if _, _, _, ok := SplitVersion(make([]byte, n)); ok {
			t.Fatalf("SplitVersion accepted a %d-byte value", n)
		}
	}
}

func TestVersionEmptyPayload(t *testing.T) {
	stored := AppendVersion(nil, Version{Epoch: 7, Seq: 1}, true)
	v, tomb, payload, ok := SplitVersion(stored)
	if !ok || !tomb || v != (Version{Epoch: 7, Seq: 1}) || len(payload) != 0 {
		t.Fatalf("got (%v, %v, %q, %v)", v, tomb, payload, ok)
	}
}
