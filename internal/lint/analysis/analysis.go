// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface that herdlint's
// analyzers program against. The container this repo builds in has no
// module proxy access, so rather than vendoring x/tools we keep the
// same shapes (Analyzer, Pass, Diagnostic) on the standard library's
// go/ast + go/types; if x/tools ever becomes available the analyzers
// port by changing one import path.
//
// Beyond the x/tools surface it bakes in one repo convention: the
// `//lint:allow <analyzer> — reason` suppression comment (see
// docs/STATIC_ANALYSIS.md). Suppression is applied centrally by
// Pass.Report, so individual analyzers never re-implement it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression comments.
	Name string
	// Doc is the analyzer's help text; the first line is the summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. Installed by the driver; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)

	// allowed maps file -> lines carrying (or immediately following) a
	// `//lint:allow` comment naming this analyzer. Built lazily.
	allowed map[*token.File]map[int]bool
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos, unless the line is
// suppressed by a `//lint:allow <analyzer>` comment on the same line or
// the line above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// suppressed reports whether pos falls on a line covered by an allow
// comment for this analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	if p.allowed == nil {
		p.buildAllowed()
	}
	return p.allowed[tf][tf.Line(pos)]
}

func (p *Pass) buildAllowed() {
	p.allowed = make(map[*token.File]map[int]bool)
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := p.allowed[tf]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseAllow(c.Text)
				if !ok || (name != p.Analyzer.Name && name != "all") {
					continue
				}
				if lines == nil {
					lines = make(map[int]bool)
					p.allowed[tf] = lines
				}
				// The comment covers its own line (trailing form) and
				// the next line (preceding form).
				ln := tf.Line(c.End())
				lines[ln] = true
				lines[ln+1] = true
			}
		}
	}
}

// parseAllow recognizes `//lint:allow <name> [— reason]` and returns
// the analyzer name. A bare `//lint:allow` without a name matches
// nothing: the convention requires naming the check being silenced.
func parseAllow(text string) (name string, ok bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return "", false
	}
	fields := strings.Fields(rest)
	return fields[0], true
}
