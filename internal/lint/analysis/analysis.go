// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface that herdlint's
// analyzers program against. The container this repo builds in has no
// module proxy access, so rather than vendoring x/tools we keep the
// same shapes (Analyzer, Pass, Diagnostic) on the standard library's
// go/ast + go/types; if x/tools ever becomes available the analyzers
// port by changing one import path.
//
// Beyond the x/tools surface it bakes in one repo convention: the
// `//lint:allow <analyzer> — reason` suppression comment (see
// docs/STATIC_ANALYSIS.md). Suppression is applied centrally by
// Pass.Report, so individual analyzers never re-implement it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression comments.
	Name string
	// Doc is the analyzer's help text; the first line is the summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. Installed by the driver; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)

	// allowed maps file -> line -> the `//lint:allow` comments naming
	// this analyzer that cover (their own line or the line above) that
	// line. Built lazily.
	allowed map[*token.File]map[int][]token.Pos

	// usedAllows records the positions of allow comments that actually
	// suppressed a diagnostic in this pass — the input to the driver's
	// stale-allow audit.
	usedAllows map[token.Pos]bool
}

// TextEdit replaces [Pos, End) with NewText. Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is one machine-applicable resolution of a diagnostic,
// applied by `herdlint -fix`.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// Reportf reports a formatted diagnostic at pos, unless the line is
// suppressed by a `//lint:allow <analyzer>` comment on the same line or
// the line above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportFixf is Reportf with a suggested fix attached: edits replaces
// [pos, end) when the diagnostic survives suppression.
func (p *Pass) ReportFixf(pos, end token.Pos, newText []byte, fixMsg, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
		SuggestedFixes: []SuggestedFix{{
			Message:   fixMsg,
			TextEdits: []TextEdit{{Pos: pos, End: end, NewText: newText}},
		}},
	})
}

func (p *Pass) report(d Diagnostic) {
	if p.suppressed(d.Pos) {
		return
	}
	p.Report(d)
}

// suppressed reports whether pos falls on a line covered by an allow
// comment for this analyzer, recording which comments fired.
func (p *Pass) suppressed(pos token.Pos) bool {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	if p.allowed == nil {
		p.buildAllowed()
	}
	comments := p.allowed[tf][tf.Line(pos)]
	if len(comments) == 0 {
		return false
	}
	if p.usedAllows == nil {
		p.usedAllows = make(map[token.Pos]bool)
	}
	for _, c := range comments {
		p.usedAllows[c] = true
	}
	return true
}

// UsedAllows returns the positions of the allow comments that
// suppressed at least one diagnostic during this pass.
func (p *Pass) UsedAllows() map[token.Pos]bool { return p.usedAllows }

func (p *Pass) buildAllowed() {
	p.allowed = make(map[*token.File]map[int][]token.Pos)
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := p.allowed[tf]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseAllow(c.Text)
				if !ok || (name != p.Analyzer.Name && name != "all") {
					continue
				}
				if lines == nil {
					lines = make(map[int][]token.Pos)
					p.allowed[tf] = lines
				}
				// The comment covers its own line (trailing form) and
				// the next line (preceding form).
				ln := tf.Line(c.End())
				lines[ln] = append(lines[ln], c.Pos())
				lines[ln+1] = append(lines[ln+1], c.Pos())
			}
		}
	}
}

// AllowIn is suppression for analyzers that scan files outside the
// pass (docdrift's whole-tree sweep): it reports whether an allow
// comment for this analyzer in f covers pos's line, and marks it used
// for the stale-allow audit. f must have been parsed with p.Fset.
func (p *Pass) AllowIn(f *ast.File, pos token.Pos) bool {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	for _, al := range Allows([]*ast.File{f}) {
		if al.Name != p.Analyzer.Name && al.Name != "all" {
			continue
		}
		ln := tf.Line(al.End)
		if line == ln || line == ln+1 {
			if p.usedAllows == nil {
				p.usedAllows = make(map[token.Pos]bool)
			}
			p.usedAllows[al.Pos] = true
			return true
		}
	}
	return false
}

// Allow is one `//lint:allow` comment found in a package.
type Allow struct {
	Pos  token.Pos // start of the comment
	End  token.Pos
	Name string // analyzer named by the comment ("all" allowed)
}

// Allows enumerates every `//lint:allow` comment in files, for the
// driver's stale-allow audit.
func Allows(files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if name, ok := parseAllow(c.Text); ok {
					out = append(out, Allow{Pos: c.Pos(), End: c.End(), Name: name})
				}
			}
		}
	}
	return out
}

// parseAllow recognizes `//lint:allow <name> [— reason]` and returns
// the analyzer name. A bare `//lint:allow` without a name matches
// nothing: the convention requires naming the check being silenced.
func parseAllow(text string) (name string, ok bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return "", false
	}
	fields := strings.Fields(rest)
	return fields[0], true
}
