package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//lint:allow simtime — wall clock is the point here", "simtime", true},
		{"//lint:allow verbsmatrix", "verbsmatrix", true},
		{"//lint:allow all — generated code", "all", true},
		{"//lint:allow", "", false},
		{"//lint:allow   ", "", false},
		{"// lint:allow simtime", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseAllow(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %v), want (%q, %v)", c.text, name, ok, c.name, c.ok)
		}
	}
}

// TestSuppression checks that Reportf drops diagnostics on lines
// covered by an allow comment — the comment's own line (trailing form)
// and the line after it (preceding form) — and only for the named
// analyzer.
func TestSuppression(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //lint:allow demo — trailing form
	//lint:allow demo — preceding form
	_ = 2
	_ = 3
	_ = 4 //lint:allow other — different analyzer
	_ = 5 //lint:allow all
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	pass := &Pass{
		Analyzer: &Analyzer{Name: "demo"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report: func(d Diagnostic) {
			got = append(got, fset.Position(d.Pos).Line)
		},
	}
	base := fset.File(f.Pos())
	for line := 4; line <= 9; line++ {
		pass.Reportf(base.LineStart(line), "finding on line %d", line)
	}
	want := []int{7, 8}
	if len(got) != len(want) {
		t.Fatalf("reported lines %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reported lines %v, want %v", got, want)
		}
	}
}
