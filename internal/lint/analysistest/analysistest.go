// Package analysistest runs herdlint analyzers over fixture packages
// and checks their diagnostics against `// want "regexp"` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest (which this
// container cannot fetch).
//
// Fixtures live in a GOPATH-style tree: <testdata>/src/<importpath>/.
// A line expecting diagnostics carries a trailing comment of the form
//
//	qp.PostSend(...) // want `READ posted on a UD queue pair`
//
// with one or more back-quoted or double-quoted regular expressions,
// each of which must match a distinct diagnostic reported on that
// line. Lines without a want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"herdkv/internal/lint/analysis"
	"herdkv/internal/lint/loader"
)

// Run loads each fixture package from testdata/src and applies a, then
// compares diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, err := loader.LoadTestdata(testdata, ".", pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", pkg.PkgPath, terr)
		}
		checkPackage(t, a, pkg)
	}
}

// expectation is one want-regexp at a file line, not yet matched.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *loader.Package) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: %v", pkg.Fset.Position(c.Pos()), err)
					continue
				}
				for _, re := range res {
					wants = append(wants, &expectation{
						file: tf.Name(), line: tf.Line(c.Pos()), re: re,
					})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg.PkgPath, a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// claim consumes the first unmatched expectation for (file, line) whose
// regexp matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.re != nil && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.re = nil
			return true
		}
	}
	return false
}

// parseWant extracts the regexps from a `// want ...` comment; most
// comments are not want comments and return (nil, nil).
func parseWant(text string) ([]*regexp.Regexp, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var res []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated back-quoted want pattern")
			}
			lit = rest[1 : 1+end]
			rest = rest[2+end:]
		case '"':
			parsed, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern: %v", err)
			}
			lit, err = strconv.Unquote(parsed)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern: %v", err)
			}
			rest = rest[len(parsed):]
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		res = append(res, re)
		rest = strings.TrimSpace(rest)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return res, nil
}
