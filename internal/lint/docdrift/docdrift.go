// Package docdrift cross-checks the prose contracts against the code:
// the OBSERVABILITY.md metric catalog against the telemetry name
// literals actually emitted, and the ARCHITECTURE.md configuration
// reference against the exported Config struct fields, in both
// directions. A metric the docs promise but nothing emits, a counter
// the code added but never cataloged, a config knob renamed without
// its table row — each is a diagnostic, so the docs stay a contract
// instead of a snapshot.
//
// The analyzer runs once, anchored to the module's root package, and
// does its own whole-tree sweep (parse-only, no type checking): the
// docs describe the tree, not any single package. Diagnostics land on
// the offending code literal or on the exact markdown table line.
//
// Catalog rows whose name contains a <placeholder> (per-verb, per-QP
// names built at runtime) are documentation-only and skipped. Code
// sites that intentionally emit an uncataloged name can carry
// `//lint:allow docdrift — reason`.
package docdrift

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"herdkv/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "docdrift",
	Doc: "cross-check OBSERVABILITY.md / ARCHITECTURE.md tables against the code\n\n" +
		"Metric catalog rows must match emitted telemetry name literals and\n" +
		"config-reference tables must match exported Config fields, both ways.",
	Run: run,
}

// Target is the package path that triggers the sweep (the module root
// package — running on any subset that excludes it skips docdrift).
// Fixture tests override Target and ModuleDir.
var (
	Target    = "herdkv"
	ModuleDir = "" // empty: derived from the target package's file directory
)

// ObservabilityDoc and ArchitectureDoc locate the two contracts,
// relative to the module root.
const (
	ObservabilityDoc = "docs/OBSERVABILITY.md"
	ArchitectureDoc  = "docs/ARCHITECTURE.md"
)

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() != Target {
		return nil, nil
	}
	root := ModuleDir
	if root == "" && len(pass.Files) > 0 {
		dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
		for d := dir; ; {
			if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
				root = d
				break
			}
			parent := filepath.Dir(d)
			if parent == d {
				break
			}
			d = parent
		}
	}
	if root == "" {
		return nil, fmt.Errorf("cannot locate module root for %s", pass.Pkg.Path())
	}

	d := &drift{pass: pass, root: root}
	if err := d.sweepTree(); err != nil {
		return nil, err
	}
	if err := d.checkMetrics(); err != nil {
		return nil, err
	}
	if err := d.checkConfigs(); err != nil {
		return nil, err
	}
	d.flush()
	return nil, nil
}

type drift struct {
	pass *analysis.Pass
	root string

	// code side, from the sweep
	emitted    map[string]metricUse        // metric name -> first literal site
	configPkgs map[string]map[string]field // last path segment -> exported Config fields

	// deferred diagnostics, sorted before reporting for determinism
	diags []diag
}

type metricUse struct {
	kind string // counter | gauge | hist
	pos  token.Pos
	file *ast.File
}

type field struct {
	pos  token.Pos
	file *ast.File
}

type diag struct {
	pos token.Pos
	msg string
}

func (d *drift) reportf(pos token.Pos, format string, args ...interface{}) {
	d.diags = append(d.diags, diag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (d *drift) flush() {
	sort.Slice(d.diags, func(i, j int) bool {
		pi := d.pass.Fset.Position(d.diags[i].pos)
		pj := d.pass.Fset.Position(d.diags[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return d.diags[i].msg < d.diags[j].msg
	})
	for _, dg := range d.diags {
		d.pass.Reportf(dg.pos, "%s", dg.msg)
	}
}

// metricMethods maps telemetry registry methods to catalog kinds.
var metricMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "hist",
}

// sweepTree parses every shipped .go file in the module (comments on,
// no type checking) collecting metric-name literals and Config fields.
func (d *drift) sweepTree() error {
	d.emitted = map[string]metricUse{}
	d.configPkgs = map[string]map[string]field{}
	return filepath.WalkDir(d.root, func(path string, e os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() {
			switch e.Name() {
			case ".git", "testdata", "docs", ".github":
				return filepath.SkipDir
			}
			return nil
		}
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(d.pass.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pkgSeg := filepath.Base(filepath.Dir(path))
		d.scanFile(f, pkgSeg)
		return nil
	})
}

func (d *drift) scanFile(f *ast.File, pkgSeg string) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || len(n.Args) == 0 {
				return true
			}
			kind, ok := metricMethods[sel.Sel.Name]
			if !ok {
				return true
			}
			lit, ok := n.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // dynamic name (fmt.Sprintf per-verb etc.): catalog rows use <placeholders>
			}
			name := strings.Trim(lit.Value, "`\"")
			if _, seen := d.emitted[name]; !seen {
				d.emitted[name] = metricUse{kind: kind, pos: lit.Pos(), file: f}
			}
		case *ast.TypeSpec:
			if n.Name.Name != "Config" {
				return true
			}
			st, ok := n.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := d.configPkgs[pkgSeg]
			if fields == nil {
				fields = map[string]field{}
				d.configPkgs[pkgSeg] = fields
			}
			for _, fl := range st.Fields.List {
				for _, id := range fl.Names {
					if id.IsExported() {
						fields[id.Name] = field{pos: id.Pos(), file: f}
					}
				}
			}
		}
		return true
	})
}

// mdFile registers a markdown file with the pass FileSet so catalog
// diagnostics carry real positions.
type mdFile struct {
	tf    *token.File
	lines []string
}

func (d *drift) loadDoc(rel string) (*mdFile, error) {
	path := filepath.Join(d.root, filepath.FromSlash(rel))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tf := d.pass.Fset.AddFile(path, -1, len(data))
	tf.SetLinesForContent(data)
	return &mdFile{tf: tf, lines: strings.Split(string(data), "\n")}, nil
}

// linePos returns the position of 1-based line n.
func (m *mdFile) linePos(n int) token.Pos {
	return m.tf.LineStart(n)
}

var backtickRE = regexp.MustCompile("`([^`]+)`")

// --- metric catalog ----------------------------------------------------

type catalogRow struct {
	kind string
	line int
}

// checkMetrics parses the "## Metric catalog" table and diffs it
// against the emitted literals.
func (d *drift) checkMetrics() error {
	doc, err := d.loadDoc(ObservabilityDoc)
	if err != nil {
		return err
	}
	catalog := map[string]catalogRow{}
	inSection, inTable := false, false
	for i, line := range doc.lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "## ") {
			inSection = trimmed == "## Metric catalog"
			inTable = false
			continue
		}
		if !inSection {
			continue
		}
		if !strings.HasPrefix(trimmed, "|") {
			inTable = false
			continue
		}
		// Skip the header and separator rows of each table.
		if !inTable {
			inTable = true
			continue
		}
		if strings.HasPrefix(strings.ReplaceAll(trimmed, " ", ""), "|---") {
			continue
		}
		cells := splitRow(trimmed)
		if len(cells) < 2 {
			continue
		}
		names := expandNames(backtickRE.FindAllStringSubmatch(cells[0], -1))
		kind := strings.TrimSpace(cells[1])
		for _, name := range names {
			if strings.Contains(name, "<") {
				continue // runtime-templated names are documentation-only
			}
			if prev, dup := catalog[name]; dup {
				d.reportf(doc.linePos(i+1), "metric %s cataloged twice (also line %d)", name, prev.line)
				continue
			}
			catalog[name] = catalogRow{kind: kind, line: i + 1}
		}
	}
	if len(catalog) == 0 {
		d.reportf(doc.linePos(1), "no metric catalog table found under %q", "## Metric catalog")
		return nil
	}

	for name, use := range d.emitted {
		row, ok := catalog[name]
		if !ok {
			if !d.pass.AllowIn(use.file, use.pos) {
				d.reportf(use.pos, "metric %s is emitted here but missing from the %s catalog", name, ObservabilityDoc)
			}
			continue
		}
		if row.kind != use.kind {
			d.reportf(use.pos, "metric %s is a %s in code but cataloged as %q (%s line %d)",
				name, use.kind, row.kind, ObservabilityDoc, row.line)
		}
	}
	for name, row := range catalog {
		if _, ok := d.emitted[name]; !ok {
			d.reportf(doc.linePos(row.line), "cataloged metric %s is not emitted anywhere in the tree", name)
		}
	}
	return nil
}

// expandNames resolves the catalog's shorthand: a full dotted name
// establishes a base, a `.suffix` token swaps the last segments of
// that base (`herd.ops.issued` / `.completed` -> herd.ops.completed).
func expandNames(matches [][]string) []string {
	var out []string
	base := ""
	for _, m := range matches {
		name := strings.TrimSpace(m[1])
		if name == "" {
			continue
		}
		if strings.HasPrefix(name, ".") {
			if base == "" {
				continue
			}
			out = append(out, base+name)
			continue
		}
		if !strings.Contains(name, ".") {
			continue // prose in backticks, not a metric name
		}
		out = append(out, name)
		if i := strings.LastIndexByte(name, '.'); i > 0 {
			base = name[:i]
		}
	}
	return out
}

// --- configuration reference -------------------------------------------

var configHeadRE = regexp.MustCompile("`([a-z][a-z0-9]*)\\.Config`")

// checkConfigs parses the "## Configuration reference" tables and
// diffs each against the package's exported Config fields.
func (d *drift) checkConfigs() error {
	doc, err := d.loadDoc(ArchitectureDoc)
	if err != nil {
		return err
	}
	inSection := false
	current := "" // package whose table we are inside
	headerLine := 0
	type docField struct{ line int }
	documented := map[string]map[string]docField{} // pkg -> field -> row
	tableLine := map[string]int{}
	for i, line := range doc.lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "## ") {
			inSection = trimmed == "## Configuration reference"
			continue
		}
		if !inSection {
			continue
		}
		if !strings.HasPrefix(trimmed, "|") {
			// A `pkg.Config` mention introduces the next table — but only
			// when no table is pending, so facade aliases mentioned in the
			// same paragraph (`herdkv.Config`) don't steal the binding.
			if m := configHeadRE.FindStringSubmatch(line); m != nil && (current == "" || headerLine > 0) {
				current = m[1]
				headerLine = 0
			}
			continue
		}
		if current == "" {
			continue
		}
		if headerLine == 0 {
			headerLine = i + 1
			tableLine[current] = headerLine
			continue
		}
		if strings.HasPrefix(strings.ReplaceAll(trimmed, " ", ""), "|---") {
			continue
		}
		cells := splitRow(trimmed)
		if len(cells) == 0 {
			continue
		}
		for _, m := range backtickRE.FindAllStringSubmatch(cells[0], -1) {
			name := strings.TrimSpace(m[1])
			if !isExportedIdent(name) {
				continue
			}
			if documented[current] == nil {
				documented[current] = map[string]docField{}
			}
			documented[current][name] = docField{line: i + 1}
		}
	}

	for pkg, fields := range documented {
		actual, ok := d.configPkgs[pkg]
		if !ok {
			d.reportf(doc.linePos(tableLine[pkg]), "config table for %s.Config but no such package has a Config struct", pkg)
			continue
		}
		for name, df := range fields {
			if _, ok := actual[name]; !ok {
				d.reportf(doc.linePos(df.line), "%s.Config has no field %s (documented here)", pkg, name)
			}
		}
		for name, fl := range actual {
			if _, ok := fields[name]; !ok {
				if !d.pass.AllowIn(fl.file, fl.pos) {
					d.reportf(fl.pos, "%s.Config.%s is not documented in the %s configuration reference",
						pkg, name, ArchitectureDoc)
				}
			}
		}
	}
	if len(documented) == 0 {
		d.reportf(doc.linePos(1), "no config tables found under %q", "## Configuration reference")
	}
	return nil
}

func isExportedIdent(s string) bool {
	if s == "" || s[0] < 'A' || s[0] > 'Z' {
		return false
	}
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// splitRow splits a markdown table row into trimmed cells.
func splitRow(row string) []string {
	row = strings.Trim(row, "|")
	parts := strings.Split(row, "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
