package docdrift_test

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"herdkv/internal/lint/analysis"
	"herdkv/internal/lint/docdrift"
	"herdkv/internal/lint/loader"
)

// TestDocDrift runs the analyzer over a fixture module root whose docs
// drift from its code in both directions. Doc-side diagnostics land on
// markdown lines, which `// want` comments cannot express, so this
// test asserts the full diagnostic set directly.
func TestDocDrift(t *testing.T) {
	defer func(target, dir string) {
		docdrift.Target, docdrift.ModuleDir = target, dir
	}(docdrift.Target, docdrift.ModuleDir)
	docdrift.Target = "ddfix"
	docdrift.ModuleDir = filepath.Join("..", "testdata", "src", "ddfix")

	pkgs, err := loader.LoadTestdata("../testdata", ".", "ddfix")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture type error: %v", terr)
		}
		pass := &analysis.Pass{
			Analyzer:  docdrift.Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				got = append(got, filepath.Base(pos.Filename)+": "+d.Message)
			},
		}
		if _, err := docdrift.Analyzer.Run(pass); err != nil {
			t.Fatal(err)
		}
	}

	want := []string{
		`^ddfix\.go: metric queue\.depth is a gauge in code but cataloged as "counter"`,
		`^ddfix\.go: metric ops\.dropped is emitted here but missing from the docs/OBSERVABILITY\.md catalog`,
		`^ddfix\.go: ddfix\.Config\.Depth is not documented in the docs/ARCHITECTURE\.md configuration reference`,
		`^OBSERVABILITY\.md: cataloged metric ops\.retired is not emitted anywhere in the tree`,
		`^ARCHITECTURE\.md: ddfix\.Config has no field Burst \(documented here\)`,
	}
	if len(got) != len(want) {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for _, w := range want {
		re := regexp.MustCompile(w)
		found := false
		for _, g := range got {
			if re.MatchString(g) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic matching %q in:\n%s", w, strings.Join(got, "\n"))
		}
	}
}
