// Package fixer applies the SuggestedFixes analyzers attach to their
// diagnostics: the engine behind `herdlint -fix`. Edits are byte-range
// replacements resolved through the FileSet; overlapping fixes are
// applied first-come (later conflicting fixes are skipped and stay as
// diagnostics for the next run), so -fix converges instead of
// corrupting files.
package fixer

import (
	"fmt"
	"go/token"
	"os"
	"sort"

	"herdkv/internal/lint/analysis"
)

// edit is one byte-range replacement within a file.
type edit struct {
	start, end int
	text       []byte
}

// Apply writes every applicable fix to disk and returns the number of
// fixes applied. Fixes whose edits overlap an already-accepted edit
// are skipped.
func Apply(fset *token.FileSet, fixes []analysis.SuggestedFix) (int, error) {
	byFile := map[string][]edit{}
	applied := 0
	for _, fix := range fixes {
		staged := map[string][]edit{}
		ok := true
		for _, te := range fix.TextEdits {
			start := fset.Position(te.Pos)
			end := fset.Position(te.End)
			if start.Filename == "" || start.Filename != end.Filename || end.Offset < start.Offset {
				ok = false
				break
			}
			e := edit{start: start.Offset, end: end.Offset, text: te.NewText}
			if overlaps(byFile[start.Filename], e) || overlaps(staged[start.Filename], e) {
				ok = false
				break
			}
			staged[start.Filename] = append(staged[start.Filename], e)
		}
		if !ok {
			continue
		}
		for name, es := range staged {
			byFile[name] = append(byFile[name], es...)
		}
		applied++
	}
	for name, edits := range byFile {
		if err := applyFile(name, edits); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func overlaps(existing []edit, e edit) bool {
	for _, x := range existing {
		if e.start < x.end && x.start < e.end {
			return true
		}
		// Two pure insertions at the same point also conflict.
		if e.start == e.end && x.start == x.end && e.start == x.start {
			return true
		}
	}
	return false
}

func applyFile(name string, edits []edit) error {
	data, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	st, err := os.Stat(name)
	if err != nil {
		return err
	}
	out, err := applyBytes(data, edits)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	return os.WriteFile(name, out, st.Mode().Perm())
}

// applyBytes applies edits to content, cleaning up deletions: a pure
// deletion swallows the horizontal whitespace before it, and if the
// line it leaves behind is blank, the whole line goes.
func applyBytes(content []byte, edits []edit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	out := append([]byte(nil), content...)
	for _, e := range edits {
		if e.end > len(out) {
			return nil, fmt.Errorf("edit range [%d,%d) beyond file size %d", e.start, e.end, len(out))
		}
		start, end := e.start, e.end
		if len(e.text) == 0 {
			start, end = widenDeletion(out, start, end)
		}
		out = append(out[:start], append(append([]byte(nil), e.text...), out[end:]...)...)
	}
	return out, nil
}

// widenDeletion trims the whitespace a deleted comment leaves behind:
// horizontal whitespace immediately before [start,end), then the
// trailing newline if nothing else remains on the line.
func widenDeletion(content []byte, start, end int) (int, int) {
	for start > 0 && (content[start-1] == ' ' || content[start-1] == '\t') {
		start--
	}
	lineStart := start
	for lineStart > 0 && content[lineStart-1] != '\n' {
		lineStart--
	}
	if lineStart == start && end < len(content) && content[end] == '\n' {
		end++ // the deletion consumed the whole line; drop its newline too
	}
	return start, end
}

// FromDiagnostics flattens the fixes attached to diagnostics.
func FromDiagnostics(diags []analysis.Diagnostic) []analysis.SuggestedFix {
	var out []analysis.SuggestedFix
	for _, d := range diags {
		out = append(out, d.SuggestedFixes...)
	}
	return out
}
