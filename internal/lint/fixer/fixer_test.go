package fixer

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"herdkv/internal/lint/analysis"
)

func TestApplyBytes(t *testing.T) {
	cases := []struct {
		name    string
		content string
		edits   []edit
		want    string
	}{
		{
			name:    "replacement",
			content: "a := fmt.Sprintf(\"x\")\n",
			edits:   []edit{{start: 5, end: 21, text: []byte(`"x"`)}},
			want:    "a := \"x\"\n",
		},
		{
			name:    "insertion",
			content: "ab\n",
			edits:   []edit{{start: 1, end: 1, text: []byte("_")}},
			want:    "a_b\n",
		},
		{
			name:    "trailing comment deletion swallows the gap",
			content: "a := 1 //lint:allow x\nb := 2\n",
			edits:   []edit{{start: 7, end: 21}},
			want:    "a := 1\nb := 2\n",
		},
		{
			name:    "own-line comment deletion drops the whole line",
			content: "x\n\t//lint:allow y\nz\n",
			edits:   []edit{{start: 3, end: 17}},
			want:    "x\nz\n",
		},
		{
			name:    "edits apply back to front",
			content: "one two three\n",
			edits: []edit{
				{start: 0, end: 3, text: []byte("1")},
				{start: 8, end: 13, text: []byte("3")},
			},
			want: "1 two 3\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := applyBytes([]byte(tc.content), tc.edits)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestApplyBytesRejectsOutOfRange(t *testing.T) {
	if _, err := applyBytes([]byte("ab"), []edit{{start: 1, end: 5}}); err == nil {
		t.Error("edit beyond file size must error")
	}
}

// TestApplyOverlapFirstComeWins stages two fixes over the same range:
// the first applies, the second is skipped so the file is rewritten
// exactly once and -fix converges instead of corrupting the file.
func TestApplyOverlapFirstComeWins(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	content := "package p\n\nvar v = 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	tf := fset.AddFile(path, -1, len(content))
	tf.SetLinesForContent([]byte(content))
	at := func(off int) token.Pos { return tf.Pos(off) }

	valStart := strings.Index(content, "1")
	fixes := []analysis.SuggestedFix{
		{Message: "first", TextEdits: []analysis.TextEdit{
			{Pos: at(valStart), End: at(valStart + 1), NewText: []byte("2")},
		}},
		{Message: "second overlaps first", TextEdits: []analysis.TextEdit{
			{Pos: at(valStart), End: at(valStart + 1), NewText: []byte("3")},
		}},
	}
	applied, err := Apply(fset, fixes)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("applied %d fixes, want 1", applied)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "package p\n\nvar v = 2\n"; string(got) != want {
		t.Errorf("file after Apply: %q, want %q", got, want)
	}
}
