// Package hotalloc checks that functions annotated `//herd:hotpath`
// are allocation-free. The paper's throughput numbers assume the
// request pipeline does no per-op heap work (§7 measures Mops against
// a fixed CPU budget; RFP shows server CPU efficiency, not verbs,
// decides the ceiling), and ROADMAP item 3 asks for a zero-allocation
// hot path that herdlint can enforce rather than hope for.
//
// Inside an annotated function the analyzer flags, conservatively:
//
//   - make / new and map or slice composite literals, and &T{...}
//   - closure literals (func literals may escape to the heap)
//   - []byte <-> string conversions (each copies)
//   - string concatenation with + / +=
//   - any call into package fmt
//   - interface boxing: converting, assigning, passing, or returning a
//     concrete value where an interface is expected
//   - calls into in-tree functions that are not themselves annotated
//     `//herd:hotpath`
//
// Infrastructure packages (sim, wire, verbs, nic, pcie, hostmem,
// cluster, telemetry, kv, fault, stats) are exempt call targets: they
// model hardware or are nil-safe observability, and the simulator —
// unlike the real NIC — allocates to model asynchrony. Dynamic calls
// (interface methods, func values) are not resolved; implementations
// carry their own annotations.
//
// A companion testing.AllocsPerRun gate (hotpath_alloc_test.go in each
// annotated package) measures the same functions at 0 allocs/op, so
// the static and dynamic views of "allocation-free" are checked
// against each other; AnnotatedFuncs is the shared enumerator.
package hotalloc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"herdkv/internal/lint/analysis"
)

// Directive marks a function as hot-path: allocation-free, statically
// checked by this analyzer and dynamically gated by AllocsPerRun.
const Directive = "//herd:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //herd:hotpath must be allocation-free\n\n" +
		"Flags heap work (make/new/literals/closures/conversions/fmt/boxing)\n" +
		"and calls into unannotated in-tree functions on the hot path.",
	Run: run,
}

// exemptPkgs are in-tree packages hot paths may call freely: they
// model hardware (the real counterpart is a NIC or DMA engine, not Go
// code), or are nil-safe observability that compiles away when unset.
var exemptPkgs = map[string]bool{
	"sim":       true,
	"wire":      true,
	"verbs":     true,
	"nic":       true,
	"pcie":      true,
	"hostmem":   true,
	"cluster":   true,
	"telemetry": true,
	"kv":        true,
	"fault":     true,
	"stats":     true,
}

// DirLookup resolves an in-tree import path to its source directory so
// the analyzer can read `//herd:hotpath` annotations in packages it
// only sees as export data. The default walks up from fromDir to the
// enclosing go.mod; fixture tests override it to point into their
// GOPATH-style testdata tree.
var DirLookup = func(pkgPath, fromDir string) string {
	root, module := findModule(fromDir)
	if root == "" {
		return ""
	}
	if pkgPath == module {
		return root
	}
	if strings.HasPrefix(pkgPath, module+"/") {
		return filepath.Join(root, filepath.FromSlash(pkgPath[len(module)+1:]))
	}
	return ""
}

func findModule(dir string) (root, module string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return "", ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// annotCache memoizes per-directory annotation scans; the driver runs
// single-threaded over packages, so no locking.
var annotCache = map[string]map[string]bool{}

// AnnotatedFuncs parses the non-test .go files in dir (comments only,
// no type checking) and returns the set of `//herd:hotpath` functions,
// methods keyed as "Recv.Name". The AllocsPerRun gates use it to prove
// every annotation in their package is exercised at 0 allocs/op.
func AnnotatedFuncs(dir string) (map[string]bool, error) {
	if m, ok := annotCache[dir]; ok {
		return m, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	set := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc) {
				set[declKey(fd)] = true
			}
		}
	}
	annotCache[dir] = set
	return set, nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func declKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{pass: pass, local: map[string]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc) {
				c.local[declKey(fd)] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc) {
				continue
			}
			c.checkBody(fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	local map[string]bool // annotated "Recv.Name" keys in this package
}

func (c *checker) checkBody(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "closure literal on hot path %s (may escape to the heap)", fd.Name.Name)
			return false // the closure body runs later; not this hot path
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "&composite literal allocates on hot path %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			c.checkCall(n, fd)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isNonConstString(n) {
				c.pass.Reportf(n.Pos(), "string concatenation allocates on hot path %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n, fd)
		}
		return true
	})
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (c *checker) isNonConstString(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant-folded at compile time
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) checkCompositeLit(n *ast.CompositeLit) {
	t := c.typeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(n.Pos(), "map literal allocates on the hot path")
	case *types.Slice:
		c.pass.Reportf(n.Pos(), "slice literal allocates on the hot path")
	}
}

// checkCall handles make/new builtins, []byte<->string conversions,
// fmt.* calls, boxing at call arguments, and the in-tree callee rule.
func (c *checker) checkCall(call *ast.CallExpr, fd *ast.FuncDecl) {
	// Conversion: T(x) where Fun names a type.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := c.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates on the hot path")
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates on the hot path")
			}
			return
		}
	}

	callee := typeutilCallee(c.pass.TypesInfo, call)
	if callee != nil && callee.Pkg() != nil {
		path := callee.Pkg().Path()
		if path == "fmt" {
			c.reportFmt(call, callee, fd)
			return
		}
		c.checkInTreeCallee(call, callee, path, fd)
	}

	// Boxing at call arguments: concrete value into interface param.
	c.checkCallArgs(call)
}

func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.typeOf(call.Args[0])
	if from == nil {
		return
	}
	if isString(to) && isByteOrRuneSlice(from) {
		c.pass.Reportf(call.Pos(), "[]byte-to-string conversion copies on the hot path")
		return
	}
	if isByteOrRuneSlice(to) && isString(from) {
		c.pass.Reportf(call.Pos(), "string-to-[]byte conversion copies on the hot path")
		return
	}
	// Conversion to interface type boxes the operand.
	if types.IsInterface(to) && !types.IsInterface(from) && !isUntypedNil(from) {
		c.pass.Reportf(call.Pos(), "conversion to interface boxes %s on the hot path", from)
	}
}

// reportFmt flags any fmt call; a zero-verb fmt.Sprintf of a literal
// gets a suggested fix replacing the call with the literal itself.
func (c *checker) reportFmt(call *ast.CallExpr, callee *types.Func, fd *ast.FuncDecl) {
	if callee.Name() == "Sprintf" && len(call.Args) == 1 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING && !strings.Contains(lit.Value, "%") {
			c.pass.ReportFixf(call.Pos(), call.End(), []byte(lit.Value),
				"replace fmt.Sprintf of a plain literal with the literal",
				"fmt.Sprintf of a constant string allocates on hot path %s", fd.Name.Name)
			return
		}
	}
	c.pass.Reportf(call.Pos(), "fmt.%s allocates on hot path %s", callee.Name(), fd.Name.Name)
}

// checkInTreeCallee enforces that hot paths only call hot-path or
// infrastructure code inside the module.
func (c *checker) checkInTreeCallee(call *ast.CallExpr, callee *types.Func, path string, fd *ast.FuncDecl) {
	if firstSegment(path) != firstSegment(c.pass.Pkg.Path()) {
		return // outside the tree (stdlib etc.); only fmt is policed
	}
	if exemptPkgs[lastSegment(path)] {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return // dynamic dispatch: implementations carry their own annotations
		}
	}
	key := funcKey(callee)
	if path == c.pass.Pkg.Path() {
		if !c.local[key] {
			c.pass.Reportf(call.Pos(), "hot path %s calls non-hotpath function %s", fd.Name.Name, key)
		}
		return
	}
	dir := DirLookup(path, filepath.Dir(c.pass.Fset.Position(call.Pos()).Filename))
	annotated := map[string]bool{}
	if dir != "" {
		if m, err := AnnotatedFuncs(dir); err == nil {
			annotated = m
		}
	}
	if !annotated[key] {
		c.pass.Reportf(call.Pos(), "hot path %s calls non-hotpath function %s.%s", fd.Name.Name, lastSegment(path), key)
	}
}

func (c *checker) checkCallArgs(call *ast.CallExpr) {
	sigType := c.typeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // f(xs...) passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		c.checkBox(arg, pt, "argument")
	}
}

func (c *checker) checkAssign(n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && c.isNonConstString(n.Lhs[0]) {
		c.pass.Reportf(n.Pos(), "string += allocates on the hot path")
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		c.checkBox(n.Rhs[i], c.typeOf(n.Lhs[i]), "assignment")
	}
}

func (c *checker) checkValueSpec(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	declared := c.typeOf(n.Type)
	for _, v := range n.Values {
		c.checkBox(v, declared, "assignment")
	}
}

func (c *checker) checkReturn(n *ast.ReturnStmt, fd *ast.FuncDecl) {
	if fd.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range fd.Type.Results.List {
		t := c.typeOf(field.Type)
		k := len(field.Names)
		if k == 0 {
			k = 1
		}
		for j := 0; j < k; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(n.Results) != len(resultTypes) {
		return // bare return or single multi-value call
	}
	for i, r := range n.Results {
		c.checkBox(r, resultTypes[i], "return")
	}
}

// checkBox reports when expr's concrete value is implicitly converted
// to an interface type (heap-boxing the value).
func (c *checker) checkBox(expr ast.Expr, to types.Type, what string) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if types.IsInterface(from) || isUntypedNil(from) {
		return
	}
	if _, isLit := expr.(*ast.FuncLit); isLit {
		return // already reported as a closure
	}
	c.pass.Reportf(expr.Pos(), "%s boxes %s into %s on the hot path", what, from, to)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcKey is the registry key for a resolved callee: "Name" for
// functions, "Recv.Name" for methods.
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + f.Name()
	}
	return f.Name()
}

// typeutilCallee resolves the static callee of call, or nil for
// dynamic calls (func values, results of other calls).
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
