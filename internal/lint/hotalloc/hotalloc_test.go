package hotalloc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"herdkv/internal/lint/analysis"
	"herdkv/internal/lint/analysistest"
	"herdkv/internal/lint/fixer"
	"herdkv/internal/lint/hotalloc"
	"herdkv/internal/lint/loader"
)

// lookupIn rebinds DirLookup so the cross-package callee rule resolves
// fixture import paths inside a GOPATH-style src tree.
func lookupIn(t *testing.T, srcDir string) {
	t.Helper()
	orig := hotalloc.DirLookup
	hotalloc.DirLookup = func(pkgPath, fromDir string) string {
		return filepath.Join(srcDir, filepath.FromSlash(pkgPath))
	}
	t.Cleanup(func() { hotalloc.DirLookup = orig })
}

func TestHotAlloc(t *testing.T) {
	lookupIn(t, filepath.Join("..", "testdata", "src"))
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hafix")
}

// TestFixRoundTrip copies the fixture into a scratch tree, applies the
// suggested fixes the way `herdlint -fix` does, and re-runs the
// analyzer: the fixed findings must be gone and no fixes may remain
// pending, so -fix converges in one pass.
func TestFixRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	for _, pkg := range []string{"hafix", "hafix/dep"} {
		src := filepath.Join("..", "testdata", "src", filepath.FromSlash(pkg))
		dst := filepath.Join(tmp, "src", filepath.FromSlash(pkg))
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	lookupIn(t, filepath.Join(tmp, "src"))

	run := func() ([]analysis.Diagnostic, *loader.Package) {
		pkgs, err := loader.LoadTestdata(tmp, ".", "hafix")
		if err != nil {
			t.Fatal(err)
		}
		var diags []analysis.Diagnostic
		var last *loader.Package
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				t.Fatalf("fixture type error: %v", terr)
			}
			pass := &analysis.Pass{
				Analyzer:  hotalloc.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := hotalloc.Analyzer.Run(pass); err != nil {
				t.Fatal(err)
			}
			last = pkg
		}
		return diags, last
	}

	before, pkg := run()
	fixes := fixer.FromDiagnostics(before)
	if len(fixes) == 0 {
		t.Fatal("expected at least one suggested fix in the hafix fixture")
	}
	applied, err := fixer.Apply(pkg.Fset, fixes)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(fixes) {
		t.Errorf("applied %d of %d fixes", applied, len(fixes))
	}

	after, _ := run()
	if want := len(before) - applied; len(after) != want {
		t.Errorf("after -fix: %d diagnostics, want %d", len(after), want)
	}
	if pending := fixer.FromDiagnostics(after); len(pending) != 0 {
		t.Errorf("%d fixes still pending after -fix; it did not converge", len(pending))
	}
}
