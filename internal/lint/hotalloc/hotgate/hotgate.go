// Package hotgate is the runtime companion of the hotalloc analyzer:
// where hotalloc proves a `//herd:hotpath` function contains no
// allocating constructs statically, hotgate measures it. Each package
// with annotations carries one gate test that hands Check a map from
// annotated function (the analyzer's "Recv.Func" / "Func" key) to a
// closure exercising it; Check cross-checks that map against the
// annotations on disk — every annotation needs a gate, every gate an
// annotation — and asserts each gate runs at exactly 0 allocs/op.
package hotgate

import (
	"sort"
	"testing"

	"herdkv/internal/lint/hotalloc"
)

// Check verifies that gates covers exactly the `//herd:hotpath`
// functions declared in the package rooted at dir, and that each gate
// body is allocation-free. Gate closures run once before measurement,
// so pools and caches warm outside the measured window — steady-state
// behavior is what the annotation promises.
func Check(t *testing.T, dir string, gates map[string]func()) {
	t.Helper()
	annotated, err := hotalloc.AnnotatedFuncs(dir)
	if err != nil {
		t.Fatalf("hotgate: scanning %s: %v", dir, err)
	}
	for _, name := range sortedKeys(annotated) {
		if _, ok := gates[name]; !ok {
			t.Errorf("hotgate: //herd:hotpath %s has no AllocsPerRun gate", name)
		}
	}
	for _, name := range sortedGates(gates) {
		fn := gates[name]
		if !annotated[name] {
			t.Errorf("hotgate: gate %q matches no //herd:hotpath function", name)
			continue
		}
		fn() // warm pools, caches, and grown buffers outside the measurement
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("hotgate: %s: %.1f allocs/op, want 0", name, n)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedGates(m map[string]func()) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
