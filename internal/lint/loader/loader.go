// Package loader type-checks Go packages for herdlint without
// golang.org/x/tools: it shells out to `go list -export` for package
// metadata and compiled export data (the go command builds and caches
// these locally, no network), parses the target packages' sources with
// go/parser, and type-checks them with go/types using the standard
// library's gc export-data importer for every dependency.
//
// Two entry points:
//
//   - Load: module-aware loading by pattern (what cmd/herdlint uses).
//   - LoadTestdata: GOPATH-style loading of fixture trees under a
//     testdata/src root (what analysistest uses) — fixture-local
//     imports resolve inside the tree, everything else (stdlib, module
//     packages) falls back to export data.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// TypeErrors holds non-fatal type-checking errors (missing export
	// data for an optional dependency, etc.). Analyzers still run; the
	// driver decides whether to surface them.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` with args in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const jsonFields = "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"

// Load type-checks the packages matching patterns, resolved from dir
// (any directory inside the module). Test files are not loaded: the
// suite checks shipped code, and tests are free to use the wall clock.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-e", "-export", "-deps", jsonFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, dir)
	var out []*Package
	for _, t := range targets {
		pkg, err := check(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, path, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: path, Dir: dir, Fset: fset, Files: files}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		return nil, err
	}
	pkg.Types = tpkg
	return pkg, nil
}

// exportImporter resolves imports from gc export data files, fetching
// metadata for paths it has not seen via `go list -export`.
type exportImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
	listDir string // directory go list runs in for unknown paths
}

func newExportImporter(fset *token.FileSet, exports map[string]string, listDir string) *exportImporter {
	e := &exportImporter{exports: exports, listDir: listDir}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok {
			// Lazily resolve paths outside the initial -deps closure
			// (testdata fixtures importing stdlib, for example).
			listed, err := goList(e.listDir, "-export", "-deps", jsonFields, path)
			if err != nil {
				return nil, fmt.Errorf("no export data for %q: %v", path, err)
			}
			for _, p := range listed {
				if p.Export != "" {
					e.exports[p.ImportPath] = p.Export
				}
			}
			if file, ok = e.exports[path]; !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
		}
		return os.Open(file)
	}
	e.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return e.gc.ImportFrom(path, dir, mode)
}

// LoadTestdata type-checks fixture packages from a GOPATH-style tree:
// srcRoot/src/<importPath>/*.go. Imports that resolve inside the tree
// are type-checked from source (recursively); all other imports fall
// back to export data resolved from modDir (any directory inside the
// module — usually the calling test's directory).
func LoadTestdata(srcRoot, modDir string, importPaths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	td := &testdataImporter{
		srcRoot:  srcRoot,
		fset:     fset,
		cache:    make(map[string]*Package),
		external: newExportImporter(fset, make(map[string]string), modDir),
	}
	var out []*Package
	for _, path := range importPaths {
		pkg, err := td.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type testdataImporter struct {
	srcRoot  string
	fset     *token.FileSet
	cache    map[string]*Package
	external *exportImporter
	loading  []string // cycle detection
}

// dir returns the source directory for a fixture import path, or "".
func (td *testdataImporter) dir(path string) string {
	d := filepath.Join(td.srcRoot, "src", filepath.FromSlash(path))
	if st, err := os.Stat(d); err == nil && st.IsDir() {
		return d
	}
	return ""
}

func (td *testdataImporter) load(path string) (*Package, error) {
	if pkg, ok := td.cache[path]; ok {
		return pkg, nil
	}
	for _, p := range td.loading {
		if p == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	dir := td.dir(path)
	if dir == "" {
		return nil, fmt.Errorf("no fixture package %q under %s/src", path, td.srcRoot)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	sort.Strings(fileNames)
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	td.loading = append(td.loading, path)
	defer func() { td.loading = td.loading[:len(td.loading)-1] }()
	pkg, err := check(td.fset, path, dir, fileNames, (*fixtureResolver)(td))
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %v", path, err)
	}
	td.cache[path] = pkg
	return pkg, nil
}

// fixtureResolver adapts testdataImporter to types.Importer: fixture
// paths load from source, others via export data.
type fixtureResolver testdataImporter

func (r *fixtureResolver) Import(path string) (*types.Package, error) {
	td := (*testdataImporter)(r)
	if td.dir(path) != "" {
		pkg, err := td.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return td.external.Import(path)
}

// Position formats pos relative to dir when possible, matching the
// compact file:line:col style vet emits.
func Position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}
