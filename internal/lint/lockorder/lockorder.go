// Package lockorder builds the sync.Mutex / sync.RWMutex acquisition
// graph of a package and reports (a) cyclic lock orderings — lock A
// held while taking B in one function, B held while taking A in
// another — and (b) user callbacks or channel sends reached while a
// lock is held, the classic way a durable-callback or recovery-hook
// API deadlocks its caller.
//
// The simulator core is single-threaded by design (one engine, no
// goroutines), so the shipped tree should have no mutexes at all;
// this analyzer exists so that if concurrency ever creeps into
// core/fleet/mux/wal, the lock discipline is checked from day one
// rather than reconstructed after the first deadlock.
//
// Analysis is intra-package and flow-approximate: statements are
// scanned in source order, a deferred Unlock keeps the lock held to
// the end of the function, and calls to same-package functions are
// resolved transitively (their acquisitions become edges from every
// lock held at the call site). Lock identity is the declared variable
// or struct field — every instance of a struct shares one node, which
// is exactly the granularity lock-ordering rules are written at.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"herdkv/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report cyclic mutex orderings and callbacks/sends under a held lock\n\n" +
		"Builds the package's lock acquisition graph; a cycle means two\n" +
		"call paths can deadlock, a callback or channel send under a lock\n" +
		"means user code runs inside the critical section.",
	Run: run,
}

// lockObj identifies a lock by its declared variable or field object.
type lockObj = types.Object

// summary is the transitive behaviour of one function.
type summary struct {
	acquires map[lockObj]token.Pos // locks taken anywhere inside (transitively)
	unsafe   []token.Pos           // callback/send sites (transitively; first pos kept)
	calls    []callSite            // same-package static callees with locks held at the site
}

type callSite struct {
	callee *types.Func
	held   []lockObj
	pos    token.Pos
}

type edge struct {
	from, to lockObj
	pos      token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	a := &analyzer{
		pass:      pass,
		summaries: map[*types.Func]*summary{},
		names:     map[lockObj]string{},
	}

	// Pass 1: local summaries for every declared function and, as
	// anonymous roots, every function literal.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			s := a.scan(fd.Body)
			if fn != nil {
				a.summaries[fn] = s
			}
		}
	}

	// Pass 2: propagate callee acquisitions to a fixpoint so A->B->C
	// chains contribute edges and reach-a-callback verdicts.
	for changed := true; changed; {
		changed = false
		for _, s := range a.summaries {
			for _, cs := range s.calls {
				callee, ok := a.summaries[cs.callee]
				if !ok {
					continue
				}
				for obj, pos := range callee.acquires {
					if _, seen := s.acquires[obj]; !seen {
						s.acquires[obj] = pos
						changed = true
					}
				}
				if len(callee.unsafe) > 0 && len(s.unsafe) == 0 {
					s.unsafe = append(s.unsafe, callee.unsafe[0])
					changed = true
				}
			}
		}
	}

	// Pass 3: edges and diagnostics from call sites with locks held.
	for _, s := range a.summaries {
		for _, cs := range s.calls {
			callee, ok := a.summaries[cs.callee]
			if !ok || len(cs.held) == 0 {
				continue
			}
			for _, h := range cs.held {
				for obj := range callee.acquires {
					if obj == h {
						a.pass.Reportf(cs.pos, "%s may re-acquire %s already held here (self-deadlock)",
							cs.callee.Name(), a.name(h))
						continue
					}
					a.edges = append(a.edges, edge{from: h, to: obj, pos: cs.pos})
				}
			}
			if len(callee.unsafe) > 0 {
				a.pass.Reportf(cs.pos, "call to %s runs a callback or channel send while %s is held",
					cs.callee.Name(), a.name(cs.held[0]))
			}
		}
	}

	a.reportCycles()
	return nil, nil
}

type analyzer struct {
	pass      *analysis.Pass
	summaries map[*types.Func]*summary
	edges     []edge
	names     map[lockObj]string // first-seen source rendering, e.g. "s.mu"
}

func (a *analyzer) name(obj lockObj) string {
	if n, ok := a.names[obj]; ok {
		return n
	}
	return obj.Name()
}

// scan walks one body in source order, tracking held locks.
func (a *analyzer) scan(body *ast.BlockStmt) *summary {
	s := &summary{acquires: map[lockObj]token.Pos{}}
	var held []lockObj
	heldIndex := func(obj lockObj) int {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == obj {
				return i
			}
		}
		return -1
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal runs later, outside this critical section;
			// analyze it as its own root.
			lit := a.scan(n.Body)
			_ = lit
			return false
		case *ast.DeferStmt:
			// A deferred Unlock releases at return: for source-order
			// scanning that means "held for the rest of the body", so
			// simply don't process the unlock.
			if obj, kind := a.lockCall(n.Call); obj != nil && kind == opUnlock {
				return false
			}
			return true
		case *ast.SendStmt:
			if len(held) > 0 {
				a.pass.Reportf(n.Pos(), "channel send while %s is held", a.name(held[len(held)-1]))
				s.unsafe = append(s.unsafe, n.Pos())
			}
			return true
		case *ast.CallExpr:
			if obj, kind := a.lockCall(n); obj != nil {
				switch kind {
				case opLock:
					if heldIndex(obj) >= 0 {
						a.pass.Reportf(n.Pos(), "%s acquired while already held (self-deadlock)", a.name(obj))
					}
					for _, h := range held {
						if h != obj {
							a.edges = append(a.edges, edge{from: h, to: obj, pos: n.Pos()})
						}
					}
					if _, seen := s.acquires[obj]; !seen {
						s.acquires[obj] = n.Pos()
					}
					held = append(held, obj)
				case opUnlock:
					if i := heldIndex(obj); i >= 0 {
						held = append(held[:i], held[i+1:]...)
					}
				}
				return true
			}
			if callee := staticCallee(a.pass.TypesInfo, n); callee != nil {
				if callee.Pkg() == a.pass.Pkg {
					s.calls = append(s.calls, callSite{
						callee: callee,
						held:   append([]lockObj(nil), held...),
						pos:    n.Pos(),
					})
				}
				return true
			}
			// Dynamic call: a func value or interface method — user
			// code we cannot see. Under a lock that is the deadlock
			// pattern this analyzer exists for.
			if a.isDynamicCall(n) && len(held) > 0 {
				a.pass.Reportf(n.Pos(), "callback invoked while %s is held", a.name(held[len(held)-1]))
				s.unsafe = append(s.unsafe, n.Pos())
			}
			return true
		}
		return true
	})
	return s
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockCall recognizes m.Lock()/RLock()/TryLock()/Unlock()/RUnlock()
// on a sync.Mutex or sync.RWMutex and returns the lock's identity.
func (a *analyzer) lockCall(call *ast.CallExpr) (lockObj, lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var kind lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, opNone
	}
	obj := a.receiverObj(sel.X)
	if obj == nil || !isSyncLock(obj.Type()) {
		return nil, opNone
	}
	if _, ok := a.names[obj]; !ok {
		a.names[obj] = types.ExprString(sel.X)
	}
	return obj, kind
}

// receiverObj resolves the variable or field the lock method is called
// on: `mu`, `s.mu`, `pkgvar.mu`, `s.inner.mu`.
func (a *analyzer) receiverObj(x ast.Expr) types.Object {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return a.pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := a.pass.TypesInfo.Selections[x]; ok {
			return s.Obj()
		}
		return a.pass.TypesInfo.Uses[x.Sel]
	}
	return nil
}

func (a *analyzer) isDynamicCall(call *ast.CallExpr) bool {
	if tv, ok := a.pass.TypesInfo.Types[call.Fun]; ok {
		if tv.IsType() {
			return false // conversion
		}
		if _, ok := tv.Type.Underlying().(*types.Signature); !ok {
			return false
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := a.pass.TypesInfo.Uses[fun]
		switch obj.(type) {
		case *types.Builtin, *types.TypeName, *types.Func:
			return false
		}
		return obj != nil // func-typed var or param
	case *ast.SelectorExpr:
		if s, ok := a.pass.TypesInfo.Selections[fun]; ok {
			if f, ok := s.Obj().(*types.Func); ok {
				// Interface method = dynamic dispatch into unknown code.
				sig := f.Type().(*types.Signature)
				return sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
			}
			return true // func-typed struct field
		}
		// Package-qualified: static.
		return false
	case *ast.FuncLit:
		return true // immediately-invoked literal still runs user code inline
	}
	return false
}

func isSyncLock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// reportCycles finds ordering cycles in the acquisition graph and
// reports each unordered lock set once, at the lexically first edge.
func (a *analyzer) reportCycles() {
	if len(a.edges) == 0 {
		return
	}
	adj := map[lockObj]map[lockObj]token.Pos{}
	for _, e := range a.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[lockObj]token.Pos{}
		}
		if _, ok := adj[e.from][e.to]; !ok || e.pos < adj[e.from][e.to] {
			adj[e.from][e.to] = e.pos
		}
	}
	reaches := func(from, to lockObj) (token.Pos, bool) {
		seen := map[lockObj]bool{}
		var dfs func(lockObj) (token.Pos, bool)
		dfs = func(n lockObj) (token.Pos, bool) {
			if seen[n] {
				return 0, false
			}
			seen[n] = true
			for next, pos := range adj[n] {
				if next == to {
					return pos, true
				}
				if p, ok := dfs(next); ok {
					if n == from {
						return pos, true
					}
					return p, true
				}
			}
			return 0, false
		}
		return dfs(from)
	}

	type cyc struct {
		a, b     lockObj
		pos, rev token.Pos
	}
	var cycles []cyc
	reported := map[[2]lockObj]bool{}
	for _, e := range a.edges {
		if rev, ok := reaches(e.to, e.from); ok {
			key := [2]lockObj{e.from, e.to}
			if e.to.Pos() < e.from.Pos() {
				key = [2]lockObj{e.to, e.from}
			}
			if reported[key] {
				continue
			}
			reported[key] = true
			cycles = append(cycles, cyc{a: e.from, b: e.to, pos: e.pos, rev: rev})
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i].pos < cycles[j].pos })
	for _, c := range cycles {
		a.pass.Reportf(c.pos, "lock order cycle: %s acquired before %s here, but %s before %s at %s",
			a.name(c.a), a.name(c.b), a.name(c.b), a.name(c.a),
			a.pass.Fset.Position(c.rev).String())
	}
}

// staticCallee resolves the statically-known callee of call, nil for
// dynamic calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				sig := f.Type().(*types.Signature)
				if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
					return nil
				}
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
