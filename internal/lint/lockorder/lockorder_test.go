package lockorder_test

import (
	"testing"

	"herdkv/internal/lint/analysistest"
	"herdkv/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lofix")
}
