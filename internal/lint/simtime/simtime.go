// Package simtime implements the herdlint analyzer that keeps wall
// time and ambient randomness out of the deterministic core.
//
// Every calibration claim in EXPERIMENTS.md and the fault-replay
// guarantee in docs/ROBUSTNESS.md rest on byte-identical reruns: the
// simulation must derive all nondeterminism from the virtual clock
// (sim.Clock) and explicitly seeded sources (sim.Rand). A single
// time.Now() or global rand.Intn() in a model package silently breaks
// replay in a way no unit test reliably catches — the failure only
// shows up as an unreproducible chaos run much later.
package simtime

import (
	"go/ast"
	"go/types"
	"strings"

	"herdkv/internal/lint/analysis"
)

// Doc is the analyzer's help text.
const Doc = `forbid wall-clock time and ambient math/rand in deterministic packages

Model packages must draw time from sim.Clock (the engine's virtual
clock) and randomness from sim.Rand or an explicitly threaded seed.
time.Now/Sleep/After/Since and the process-global math/rand functions
make fault-schedule replay nondeterministic. Suppress a deliberate use
with: //lint:allow simtime — <reason>.`

// Analyzer is the simtime check.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc:  Doc,
	Run:  run,
}

// forbiddenTime lists time package functions that read or schedule on
// the wall clock. time.Duration arithmetic and constants stay legal.
var forbiddenTime = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Since": true, "Until": true, "Tick": true, "NewTimer": true,
	"NewTicker": true,
}

// globalRand lists math/rand package functions that mutate or draw from
// the process-global source.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// deterministicPkgs names the model packages (matched against the last
// import-path segment) whose behavior must be a pure function of seed
// and configuration. cmd/* stays free to use the wall clock for
// progress reporting, and _test.go files are never loaded.
var deterministicPkgs = map[string]bool{
	"sim": true, "wire": true, "verbs": true, "nic": true, "pcie": true,
	"fault": true, "core": true, "cluster": true, "experiments": true,
	"workload": true, "stats": true, "hostmem": true, "kv": true,
	"mica": true, "cuckoo": true, "hopscotch": true, "farm": true,
	"pilaf": true, "telemetry": true, "fleet": true, "mux": true,
	"wal": true, "nearcache": true, "histcheck": true,
}

// Deterministic reports whether the package at path is held to the
// determinism contract.
func Deterministic(path string) bool {
	if strings.Contains(path, "/lint/") || strings.HasSuffix(path, "/lint") {
		return false
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return deterministicPkgs[path]
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// The import itself is the first diagnostic: a deterministic
		// package has no business depending on math/rand at all.
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; draw randomness through sim.Rand so seeds flow from one place", imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on rand.Rand etc. carry explicit state
			}
			switch obj.Pkg().Path() {
			case "time":
				if forbiddenTime[obj.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock in a deterministic package; use sim.Clock (engine Now/At/After) instead", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRand[obj.Name()] {
					pass.Reportf(id.Pos(),
						"rand.%s draws from the process-global source; thread a *sim.Rand (explicit seed) through instead", obj.Name())
				} else if obj.Name() == "New" || obj.Name() == "NewSource" || obj.Name() == "NewPCG" || obj.Name() == "NewChaCha8" {
					pass.Reportf(id.Pos(),
						"construct model randomness via sim.NewRand, not rand.%s, so every seed is threaded from configuration", obj.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
