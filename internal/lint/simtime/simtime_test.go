package simtime_test

import (
	"testing"

	"herdkv/internal/lint/analysistest"
	"herdkv/internal/lint/simtime"
)

func TestSimtime(t *testing.T) {
	// "core" is in the deterministic set (positive cases plus the
	// //lint:allow escape hatch); "tools" is not (all uses legal).
	analysistest.Run(t, "../testdata", simtime.Analyzer, "core", "tools")
}

func TestDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"herdkv/internal/core", true},
		{"herdkv/internal/wire", true},
		{"herdkv/internal/workload", true},
		{"core", true},
		{"herdkv/cmd/herdbench", false},
		{"herdkv/internal/lint/simtime", false},
		{"herdkv/internal/lint", false},
		{"time", false},
	}
	for _, c := range cases {
		if got := simtime.Deterministic(c.path); got != c.want {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
