// Package telemnames implements the herdlint analyzer that pins
// telemetry names to the dotted grammar documented in
// docs/OBSERVABILITY.md. Counters are addressed by name across the
// whole cluster and scraped by dashboards as plain strings: a typo'd
// or free-form name never fails a test, it just produces a metric
// nobody's queries match. Forcing names to be literals in the grammar
// makes the catalog greppable and the dashboards trustworthy.
package telemnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"herdkv/internal/lint/analysis"
)

// Doc is the analyzer's help text.
const Doc = `require literal, grammar-conforming telemetry names

Sink.Counter/Gauge/Histogram names must be string literals (or named
string constants) of the form seg.seg[.seg...] — lowercase first
segment, [A-Za-z0-9_] segments — and Trace.Mark / Trace.SetPrefix
stage names must be lowercase dotted/hyphenated stages, as catalogued
in docs/OBSERVABILITY.md. Intentionally dynamic names (per-verb or
per-QP counters) carry //lint:allow telemnames — <reason>.`

// Analyzer is the telemnames check.
var Analyzer = &analysis.Analyzer{
	Name: "telemnames",
	Doc:  Doc,
	Run:  run,
}

// Grammars (docs/OBSERVABILITY.md "Metric catalog" and "Trace span
// reference"). Metric names: at least two dotted segments, the first
// identifying the emitting layer in lowercase. Stage names: lowercase
// dotted/hyphenated. Prefixes: empty, or dot-terminated stages.
var (
	metricRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[A-Za-z0-9_]+)+$`)
	stageRE  = regexp.MustCompile(`^[a-z][a-z0-9-]*(\.[a-z][a-z0-9-]*)*$`)
	prefixRE = regexp.MustCompile(`^$|^([a-z][a-z0-9-]*\.)+$`)
)

// metricMethods maps telemetry method names to the grammar their first
// argument must satisfy.
var metricMethods = map[string]*regexp.Regexp{
	"Counter":   metricRE,
	"Gauge":     metricRE,
	"Histogram": metricRE,
	"Mark":      stageRE,
	"SetPrefix": prefixRE,
}

var kindNoun = map[string]string{
	"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram",
	"Mark": "trace stage", "SetPrefix": "trace prefix",
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "telemetry" {
		// The registry itself builds names generically.
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "telemetry" {
				return true
			}
			re, tracked := metricMethods[fn.Name()]
			if !tracked {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"telemetry %s name is not a string literal; dashboards grep for literal names (docs/OBSERVABILITY.md) — make it constant or carry //lint:allow telemnames with a reason",
					kindNoun[fn.Name()])
				return true
			}
			if name := constant.StringVal(tv.Value); !re.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"telemetry %s name %q does not match the %s grammar %s (docs/OBSERVABILITY.md)",
					kindNoun[fn.Name()], name, kindNoun[fn.Name()], re)
			}
			return true
		})
	}
	return nil, nil
}
