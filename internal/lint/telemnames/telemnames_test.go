package telemnames_test

import (
	"testing"

	"herdkv/internal/lint/analysistest"
	"herdkv/internal/lint/telemnames"
)

func TestTelemNames(t *testing.T) {
	analysistest.Run(t, "../testdata", telemnames.Analyzer, "tnfix")
}
