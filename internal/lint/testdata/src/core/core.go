// Package core is the simtime fixture: its import path's last segment
// ("core") is in the analyzer's deterministic set, so wall-clock and
// ambient-rand uses below must be reported.
package core

import (
	"math/rand" // want `deterministic package imports "math/rand"`
	"time"
)

// Clock is the injected-time shape the analyzer points callers toward.
type Clock interface{ Now() int64 }

func bad() int64 {
	t := time.Now()                  // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)     // want `time\.Sleep reads the wall clock`
	n := rand.Intn(10)               // want `rand\.Intn draws from the process-global source`
	r := rand.New(rand.NewSource(7)) // want `not rand\.New,` `not rand\.NewSource,`
	return t.UnixNano() + int64(n) + r.Int63()
}

func good(clk Clock, r *rand.Rand) int64 {
	// Duration arithmetic and methods on an explicitly constructed
	// source are legal; only wall-clock reads and the package-level
	// funcs are ambient state.
	d := 3 * time.Millisecond
	return clk.Now() + int64(d) + r.Int63()
}

func allowed() int {
	return rand.Int() //lint:allow simtime — fixture demonstrates the escape hatch
}
