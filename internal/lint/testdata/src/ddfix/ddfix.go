// Package ddfix is the docdrift fixture: a miniature module root with
// its own docs/ tree, deliberately drifted from the code in both
// directions (see the sibling docs/OBSERVABILITY.md and
// docs/ARCHITECTURE.md).
package ddfix

// sink mirrors the name-taking metric surface the analyzer matches
// (methods named Counter/Gauge/Histogram with a literal first arg).
type sink struct{}

func (sink) Counter(name string) int   { return 0 }
func (sink) Gauge(name string) int     { return 0 }
func (sink) Histogram(name string) int { return 0 }

// Config is the knob surface documented in docs/ARCHITECTURE.md.
type Config struct {
	// Window is documented: clean.
	Window int
	// Depth is not documented: code-side drift.
	Depth int
	// hidden is unexported and outside the contract.
	hidden int
}

func emit(s sink) {
	s.Counter("ops.issued")  // cataloged with matching kind: clean
	s.Gauge("queue.depth")   // cataloged as a counter: kind mismatch
	s.Counter("ops.dropped") // never cataloged: code-side drift
	s.Counter("ops.shadow")  //lint:allow docdrift — fixture demonstrates the escape hatch
}
