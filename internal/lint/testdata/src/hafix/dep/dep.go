// Package dep is the cross-package half of the hotalloc fixture: the
// callee rule resolves //herd:hotpath annotations in imported in-tree
// packages through DirLookup.
package dep

// Fast is annotated; hafix hot paths may call it.
//
//herd:hotpath
func Fast(x int) int { return x * 2 }

// Slow is not annotated: calling it from a hot path is a diagnostic.
func Slow() {}
