// Package hafix is the hotalloc fixture: functions annotated
// //herd:hotpath must be allocation-free; unannotated functions are
// left alone.
package hafix

import (
	"fmt"

	"hafix/dep"
)

type ring struct {
	buf [64]byte
	n   int
}

// value is an empty interface; converting into it boxes.
type value interface{}

// cold is unannotated: the analyzer does not look inside.
func cold() []byte {
	return make([]byte, 8)
}

// helper is annotated, so hot paths may call it.
//
//herd:hotpath
func helper(x int) int { return x + 1 }

// sink is an annotated consumer with an interface parameter: calling
// it is fine, but passing a concrete value boxes at the call site.
//
//herd:hotpath
func sink(v interface{}) {}

//herd:hotpath
func heapwork(r *ring, key uint64, s string, b []byte) {
	_ = make([]byte, 8)         // want `make allocates on the hot path`
	_ = new(ring)               // want `new allocates on the hot path`
	_ = []int{1, 2}             // want `slice literal allocates on the hot path`
	_ = map[int]int{}           // want `map literal allocates on the hot path`
	_ = &ring{}                 // want `&composite literal allocates on hot path heapwork`
	_ = func() int { return 0 } // want `closure literal on hot path heapwork`
	_ = string(b)               // want `\[\]byte-to-string conversion copies on the hot path`
	_ = []byte(s)               // want `string-to-\[\]byte conversion copies on the hot path`
	_ = s + s                   // want `string concatenation allocates on hot path heapwork`
	s += "x"                    // want `string \+= allocates on the hot path`
	_ = fmt.Sprintf("steady")   // want `fmt\.Sprintf of a constant string allocates on hot path heapwork`
	fmt.Println(key)            // want `fmt\.Println allocates on hot path heapwork`
	var i interface{} = key     // want `assignment boxes uint64 into interface\{\} on the hot path`
	_ = i
	_ = value(key) // want `conversion to interface boxes uint64 on the hot path`
	sink(key)      // want `argument boxes uint64 into interface\{\} on the hot path`

	// Amortized or stack-resident constructs stay legal: struct values,
	// array indexing, annotated callees, non-fmt stdlib arithmetic.
	r.n = helper(r.n)
	_ = r.buf[int(key)&63]
	_ = ring{n: 1}

	_ = make([]byte, 4) //lint:allow hotalloc — fixture demonstrates the escape hatch
}

//herd:hotpath
func boxedReturn(key uint64) interface{} {
	return key // want `return boxes uint64 into interface\{\} on the hot path`
}

//herd:hotpath
func pipeline(r *ring) {
	r.n = helper(r.n)
	r.n = dep.Fast(r.n)
	_ = cold() // want `hot path pipeline calls non-hotpath function cold`
	dep.Slow() // want `hot path pipeline calls non-hotpath function dep\.Slow`
}
