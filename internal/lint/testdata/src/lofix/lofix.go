// Package lofix is the lockorder fixture: acquisition cycles,
// self-deadlocks, and user code reached inside critical sections.
package lofix

import "sync"

type server struct {
	mu    sync.Mutex
	other sync.Mutex
	cb    func()
	ch    chan int
}

func (s *server) callbackUnderLock() {
	s.mu.Lock()
	s.cb() // want `callback invoked while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) sendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while s\.mu is held`
}

func (s *server) callbackAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.cb()
}

func (s *server) relock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu acquired while already held \(self-deadlock\)`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *server) lockedHelper() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *server) reentry() {
	s.mu.Lock()
	s.lockedHelper() // want `lockedHelper may re-acquire s\.mu already held here \(self-deadlock\)`
	s.mu.Unlock()
}

func (s *server) notify() {
	s.other.Lock()
	s.cb() // want `callback invoked while s\.other is held`
	s.other.Unlock()
}

func (s *server) fanout() {
	s.mu.Lock()
	s.notify() // want `call to notify runs a callback or channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *server) allowedCallback() {
	s.mu.Lock()
	s.cb() //lint:allow lockorder — fixture demonstrates the escape hatch
	s.mu.Unlock()
}

var (
	ingress sync.Mutex
	egress  sync.Mutex
)

func forward() {
	ingress.Lock()
	egress.Lock() // want `lock order cycle: ingress acquired before egress here, but egress before ingress at .*`
	egress.Unlock()
	ingress.Unlock()
}

func reverse() {
	egress.Lock()
	ingress.Lock()
	ingress.Unlock()
	egress.Unlock()
}

// table shows the clean discipline: one RWMutex, reads under RLock,
// writes under Lock, nothing user-visible inside the critical section.
type table struct {
	rw sync.RWMutex
	m  map[int]int
}

func (t *table) get(k int) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *table) put(k, v int) {
	t.rw.Lock()
	t.m[k] = v
	t.rw.Unlock()
}
