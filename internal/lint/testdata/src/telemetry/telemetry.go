// Package telemetry is a fixture stub mirroring the name-taking
// surface of herdkv/internal/telemetry (the telemnames analyzer
// matches methods by name on a package named "telemetry").
package telemetry

// Counter is a monotonic counter handle.
type Counter struct{}

// Gauge is a gauge handle.
type Gauge struct{}

// Histogram is a histogram handle.
type Histogram struct{}

// Sink is a metrics registry.
type Sink struct{}

// Counter returns the named counter.
func (s *Sink) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge.
func (s *Sink) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram.
func (s *Sink) Histogram(name string) *Histogram { return &Histogram{} }

// Trace is one request's lifecycle trace.
type Trace struct{}

// Mark closes the span since the previous mark under the given stage
// name.
func (t *Trace) Mark(stage string, at int64) {}

// SetPrefix prepends p to subsequent stage names.
func (t *Trace) SetPrefix(p string) {}
