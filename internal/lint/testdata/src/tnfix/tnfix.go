// Package tnfix is the telemnames fixture: telemetry names must be
// literal and match the dotted grammar of docs/OBSERVABILITY.md.
package tnfix

import "telemetry"

// A named string constant folds to a literal and is acceptable.
const reqBytes = "client.req_bytes"

func metrics(s *telemetry.Sink, verbName string) {
	s.Counter("verbs.WRITE.posted")
	s.Gauge("nic.sq.depth")
	s.Histogram(reqBytes)

	s.Counter("Bad Name")                      // want `does not match the counter grammar`
	s.Gauge("nakedname")                       // want `does not match the gauge grammar`
	s.Counter("verbs." + verbName + ".posted") // want `counter name is not a string literal`

	s.Histogram("verbs." + verbName + ".bytes") //lint:allow telemnames — fixture demonstrates the escape hatch
}

func traces(tr *telemetry.Trace) {
	tr.Mark("resp-wire", 0)
	tr.Mark("reconnect.reissue", 1)
	tr.SetPrefix("req.")
	tr.SetPrefix("")

	tr.Mark("RespWire", 2) // want `does not match the trace stage grammar`
	tr.SetPrefix("req")    // want `does not match the trace prefix grammar`
}
