// Package tools is the simtime negative fixture: "tools" is not a
// deterministic package, so wall-clock use here is legal (the analyzer
// must stay silent, like it does for cmd/*).
package tools

import "time"

// Uptime reads the wall clock; fine outside the model.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
