// Package upfix is the uncheckedpost fixture: discarded verbs errors
// and completion payloads read without a status check.
package upfix

import "verbs"

func discards(qp *verbs.QP, mr *verbs.MR) {
	qp.PostSend(verbs.SendWR{Signaled: true})     // want `error from verbs PostSend discarded`
	qp.PostRecv(mr, 0, 64, 1)                     // want `error from verbs PostRecv discarded`
	_ = qp.PostSend(verbs.SendWR{Signaled: true}) // want `error from verbs PostSend assigned to _`
	go qp.PostRecv(mr, 0, 64, 2)                  // want `discarded by go statement`
	defer qp.PostRecv(mr, 0, 64, 3)               // want `discarded by defer statement`
}

func checked(qp *verbs.QP, mr *verbs.MR) error {
	// Consumed errors: no diagnostics.
	if err := qp.PostRecv(mr, 0, 64, 1); err != nil {
		return err
	}
	return verbs.Connect(qp, qp)
}

func allowedDiscard(qp *verbs.QP, mr *verbs.MR) {
	qp.PostRecv(mr, 0, 64, 9) //lint:allow uncheckedpost — fixture demonstrates the escape hatch
}

func payloadUnchecked(comp verbs.Completion) byte {
	return comp.Data[0] // want `Completion\.Data read without checking Flushed`
}

func payloadChecked(comp verbs.Completion) byte {
	// A status check anywhere in the function clears the payload reads.
	if comp.Flushed {
		return 0
	}
	return comp.Data[0]
}
