// Package verbs is a fixture stub mirroring the posting surface of
// herdkv/internal/verbs: the analyzers match methods by name on a
// package named "verbs", so fixtures exercise them without importing
// the real model.
package verbs

import "wire"

// Verb identifies an RDMA operation type (same iota order as
// internal/verbs).
type Verb int

// The verbs of the paper's Table 1, plus ATOMIC.
const (
	WRITE Verb = iota
	READ
	SEND
	RECV
	ATOMIC
)

// MR is a registered memory region.
type MR struct{ buf []byte }

// Completion describes a completed verb.
type Completion struct {
	QPN     uint32
	WRID    uint64
	Verb    Verb
	Bytes   int
	Data    []byte
	SrcQPN  uint32
	Dropped bool
	Flushed bool
	Imm     uint32
}

// CQ is a completion queue.
type CQ struct{ queue []Completion }

// Poll removes and returns up to max queued completions.
func (cq *CQ) Poll(max int) []Completion { return nil }

// Pending returns the number of queued completions.
func (cq *CQ) Pending() int { return len(cq.queue) }

// SetHandler delivers future completions to fn.
func (cq *CQ) SetHandler(fn func(Completion)) {}

// Host is one machine's RDMA endpoint.
type Host struct{}

// CreateQP creates a queue pair on transport t.
func (h *Host) CreateQP(t wire.Transport) *QP { return &QP{transport: t} }

// RegisterMR registers size bytes of memory.
func (h *Host) RegisterMR(size int) *MR { return &MR{buf: make([]byte, size)} }

// SendWR describes a work request for PostSend.
type SendWR struct {
	WRID      uint64
	Verb      Verb
	Data      []byte
	Remote    *MR
	RemoteOff int
	Local     *MR
	LocalOff  int
	Len       int
	Inline    bool
	Signaled  bool
	Dest      *QP
	HasImm    bool
	Imm       uint32
}

// QP is a queue pair.
type QP struct {
	transport wire.Transport
	sendCQ    CQ
	recvCQ    CQ
}

// Transport returns the QP's transport type.
func (qp *QP) Transport() wire.Transport { return qp.transport }

// SendCQ returns the send completion queue.
func (qp *QP) SendCQ() *CQ { return &qp.sendCQ }

// RecvCQ returns the receive completion queue.
func (qp *QP) RecvCQ() *CQ { return &qp.recvCQ }

// PostSend posts wr to the send queue.
func (qp *QP) PostSend(wr SendWR) error { return nil }

// PostSendBatch posts wrs with one doorbell.
func (qp *QP) PostSendBatch(wrs []SendWR) error { return nil }

// PostRecv posts a receive buffer.
func (qp *QP) PostRecv(mr *MR, off, n int, wrid uint64) error { return nil }

// Connect pairs two queue pairs on a connected transport.
func Connect(a, b *QP) error { return nil }
