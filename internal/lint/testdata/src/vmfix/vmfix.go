// Package vmfix is the verbsmatrix fixture: Table 1 violations with
// constant transport and opcode, provably oversized inline posts, and
// unsignaled posting loops.
package vmfix

import (
	"verbs"
	"wire"
)

func table1(h *verbs.Host) {
	ud := h.CreateQP(wire.UD)
	uc := h.CreateQP(wire.UC)
	rc := h.CreateQP(wire.RC)

	_ = ud.PostSend(verbs.SendWR{Verb: verbs.READ}) // want `READ posted on a UD queue pair`
	_ = ud.PostSend(verbs.SendWR{WRID: 1})          // want `WRITE posted on a UD queue pair`
	_ = uc.PostSend(verbs.SendWR{Verb: verbs.READ}) // want `READ posted on a UC queue pair`

	// Supported pairings: no diagnostics.
	_ = uc.PostSend(verbs.SendWR{Verb: verbs.WRITE})
	_ = rc.PostSend(verbs.SendWR{Verb: verbs.READ})
	_ = ud.PostSend(verbs.SendWR{Verb: verbs.SEND})
}

func viaLocal(h *verbs.Host) {
	ud := h.CreateQP(wire.UD)
	// The diagnostic lands on the literal's Verb field, resolved
	// through the single-assignment local.
	wr := verbs.SendWR{Verb: verbs.READ} // want `READ posted on a UD queue pair`
	_ = ud.PostSend(wr)

	// Reassignment poisons the tracked literal: no diagnostic.
	wr2 := verbs.SendWR{Verb: verbs.READ}
	wr2 = verbs.SendWR{Verb: verbs.SEND}
	_ = ud.PostSend(wr2)
}

func batch(h *verbs.Host) {
	ud := h.CreateQP(wire.UD)
	_ = ud.PostSendBatch([]verbs.SendWR{
		{Verb: verbs.SEND},
		{Verb: verbs.WRITE}, // want `WRITE posted on a UD queue pair`
	})
}

func inline(h *verbs.Host) {
	rc := h.CreateQP(wire.RC)
	_ = rc.PostSend(verbs.SendWR{
		Verb:   verbs.WRITE,
		Data:   make([]byte, 512),
		Inline: true, // want `512-byte payload exceeds the device inline limit`
	})
	// 64 B fits under the 256 B limit: no diagnostic.
	_ = rc.PostSend(verbs.SendWR{Verb: verbs.WRITE, Data: make([]byte, 64), Inline: true})
}

func loops(rc *verbs.QP) {
	for i := 0; i < 1024; i++ {
		_ = rc.PostSend(verbs.SendWR{Verb: verbs.WRITE, Signaled: false}) // want `loop posts only unsignaled sends`
	}
	// Periodic signaling (selective signaling, §3.2): no diagnostic —
	// Signaled is not constant-false.
	for i := 0; i < 1024; i++ {
		_ = rc.PostSend(verbs.SendWR{Verb: verbs.WRITE, Signaled: i%64 == 0})
	}
	// Polling in the loop bounds outstanding posts: no diagnostic.
	for i := 0; i < 1024; i++ {
		_ = rc.PostSend(verbs.SendWR{Verb: verbs.WRITE})
		rc.SendCQ().Poll(16)
	}
}

func allowed(h *verbs.Host) {
	ud := h.CreateQP(wire.UD)
	// A fault injector may post an unsupported verb on purpose to
	// exercise the runtime rejection path.
	_ = ud.PostSend(verbs.SendWR{Verb: verbs.READ}) //lint:allow verbsmatrix — fixture demonstrates the escape hatch
}
