// Package wire is a fixture stub mirroring the transport constants of
// herdkv/internal/wire (same names, same iota order — the analyzers
// match on package name and constant value).
package wire

// Transport identifies the RDMA transport a packet travels on.
type Transport int

// Transport types, in the same order as internal/wire.
const (
	RC Transport = iota
	UC
	UD
	DC
)
