// Package uncheckedpost implements the herdlint analyzer that keeps
// verbs error paths honest. PostSend/PostRecv return synchronous
// validation errors (Table 1 violations, inline overflow, bounds,
// errored QPs) — discarding one turns a protocol bug into a silent
// no-op that only surfaces as a hung experiment. Likewise, since PR 2
// queue pairs flush in error when their owner crashes: a completion's
// payload is only meaningful after checking Flushed (and Dropped for
// responder-side SENDs), so reading Completion.Data without ever
// looking at the status fields mis-parses garbage during fault runs.
package uncheckedpost

import (
	"go/ast"
	"go/token"
	"go/types"

	"herdkv/internal/lint/analysis"
)

// Doc is the analyzer's help text.
const Doc = `flag discarded verbs errors and unchecked completion status

The error returned by PostSend/PostRecv/PostSendBatch/PostAtomic and
verbs.Connect must be consumed (not dropped as a statement or assigned
to _), and a function that reads Completion.Data must somewhere consult
Completion.Flushed or .Dropped. Suppress with
//lint:allow uncheckedpost — <reason>.`

// Analyzer is the uncheckedpost check.
var Analyzer = &analysis.Analyzer{
	Name: "uncheckedpost",
	Doc:  Doc,
	Run:  run,
}

// checkedFuncs lists the verbs-package functions and methods whose
// error results the analyzer tracks.
var checkedFuncs = map[string]bool{
	"PostSend": true, "PostRecv": true, "PostSendBatch": true,
	"PostAtomic": true, "Connect": true, "RegisterMR": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "verbs" {
		// The implementing package manipulates its own internals.
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if name := erroringVerbsCall(pass, st.X); name != "" {
					pass.Reportf(st.Pos(),
						"error from verbs %s discarded; a rejected post means the layer above is broken — handle it", name)
				}
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && allBlank(st.Lhs) {
					if name := erroringVerbsCall(pass, st.Rhs[0]); name != "" {
						pass.Reportf(st.Pos(),
							"error from verbs %s assigned to _; handle it (or carry //lint:allow uncheckedpost with a reason)", name)
					}
				}
			case *ast.GoStmt:
				if name := erroringVerbsCall(pass, st.Call); name != "" {
					pass.Reportf(st.Pos(), "error from verbs %s discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name := erroringVerbsCall(pass, st.Call); name != "" {
					pass.Reportf(st.Pos(), "error from verbs %s discarded by defer statement", name)
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCompletionReads(pass, fd)
			}
		}
	}
	return nil, nil
}

// erroringVerbsCall reports the name of the verbs function called by e
// when that call returns an error that e's context discards.
func erroringVerbsCall(pass *analysis.Pass, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	var fn *types.Func
	switch fe := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fe.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fe].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "verbs" || !checkedFuncs[fn.Name()] {
		return ""
	}
	// Only flag signatures that actually return an error (RegisterMR
	// today returns *MR; listed so a future error-returning variant is
	// covered automatically).
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return ""
	}
	return fn.Name()
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// payloadFields are the Completion fields that are only meaningful on a
// successfully completed (non-flushed) work request.
var payloadFields = map[string]bool{"Data": true, "Imm": true, "SrcQPN": true}

// statusFields are the fields whose inspection counts as checking.
var statusFields = map[string]bool{"Flushed": true, "Dropped": true}

// checkCompletionReads walks one top-level function (closures included)
// and reports the first payload read if no status field is consulted
// anywhere in the same declaration.
func checkCompletionReads(pass *analysis.Pass, fd *ast.FuncDecl) {
	var firstRead token.Pos
	var firstField string
	checked := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal || !isCompletion(s.Recv()) {
			return true
		}
		switch {
		case statusFields[sel.Sel.Name]:
			checked = true
		case payloadFields[sel.Sel.Name] && firstRead == token.NoPos:
			firstRead = sel.Pos()
			firstField = sel.Sel.Name
		}
		return true
	})
	if firstRead != token.NoPos && !checked {
		pass.Reportf(firstRead,
			"Completion.%s read without checking Flushed (or Dropped) anywhere in this function; flushed-in-error completions carry no valid payload", firstField)
	}
}

// isCompletion reports whether t is verbs.Completion or a pointer to it.
func isCompletion(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Completion" && obj.Pkg() != nil && obj.Pkg().Name() == "verbs"
}
