package uncheckedpost_test

import (
	"testing"

	"herdkv/internal/lint/analysistest"
	"herdkv/internal/lint/uncheckedpost"
)

func TestUncheckedPost(t *testing.T) {
	analysistest.Run(t, "../testdata", uncheckedpost.Analyzer, "upfix")
}
