// Package verbsmatrix implements the herdlint analyzer that enforces
// the paper's Table 1 (verbs supported per transport) and two posting
// disciplines at the call site, where the runtime check in
// internal/verbs would only fire once a test happens to execute the
// path:
//
//   - READ or WRITE posted on a UD queue pair, or READ on UC, when both
//     the transport and the opcode are compile-time constants;
//   - Inline posts whose payload is provably larger than the device
//     inline limit (256 B on ConnectX-3, the paper's hardware);
//   - loops that post only unsignaled sends with no signaled post or CQ
//     poll in the loop — the send queue overflows once the loop outruns
//     the device (Section 3.2's selective-signaling discipline).
package verbsmatrix

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"herdkv/internal/lint/analysis"
)

// Doc is the analyzer's help text.
const Doc = `enforce the Table 1 transport/verb matrix and posting discipline

Where a queue pair's transport and a work request's opcode are both
constants at the call site, posting a verb the transport does not
support (READ/WRITE on UD, READ on UC) is reported at compile time
instead of as a runtime ErrVerbNotSupported. Also flags Inline posts
with payloads provably above the inline limit, and loops of unsignaled
posts that never signal or poll. Suppress with
//lint:allow verbsmatrix — <reason>.`

// MaxInline is the device inline limit the payload check assumes: the
// ConnectX-3 value from internal/nic.DefaultParams. A cluster with a
// different device can raise it via cmd/herdlint -maxinline.
var MaxInline = 256

// Analyzer is the verbsmatrix check.
var Analyzer = &analysis.Analyzer{
	Name: "verbsmatrix",
	Doc:  Doc,
	Run:  run,
}

// Transport and verb encodings, coupled to the constant blocks in
// internal/wire (RC, UC, UD, DC) and internal/verbs (WRITE..ATOMIC).
// Both files pin the iota order with golden tests.
var (
	transportName = [...]string{"RC", "UC", "UD", "DC"}
	verbName      = [...]string{"WRITE", "READ", "SEND", "RECV", "ATOMIC"}
)

const (
	tUC = 1
	tUD = 2

	vWRITE = 0
	vREAD  = 1
)

// violatesTable1 reports whether verb v is unsupported on transport t
// (Table 1 of the paper; mirrors verbs.Supports).
func violatesTable1(t, v int64) bool {
	switch t {
	case tUD:
		return v == vWRITE || v == vREAD
	case tUC:
		return v == vREAD
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkFunc analyzes one function body (closures included: objects key
// the tracking maps, so shadowing resolves correctly).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	transports := map[types.Object]int64{} // QP var -> constant transport
	wrLits := map[types.Object]*ast.CompositeLit{}
	poisoned := map[types.Object]bool{}

	// Pass 1: harvest single-assignment facts.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				recordAssign(pass, lhs, rhs, transports, wrLits, poisoned)
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					recordAssign(pass, name, rhs, transports, wrLits, poisoned)
				}
			}
		case *ast.UnaryExpr:
			// &wr escapes: later mutations are invisible to us.
			if st.Op == token.AND {
				if id, ok := st.X.(*ast.Ident); ok {
					poisoned[pass.TypesInfo.Uses[id]] = true
				}
			}
		}
		return true
	})

	// Pass 2: check postings.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv := verbsMethod(pass, call)
		switch name {
		case "PostSend":
			if len(call.Args) != 1 {
				return true
			}
			t, tKnown := transportOf(pass, recv, transports, poisoned)
			if lit := resolveWR(pass, call.Args[0], wrLits, poisoned); lit != nil {
				checkWR(pass, lit, t, tKnown)
			}
		case "PostSendBatch":
			if len(call.Args) != 1 {
				return true
			}
			t, tKnown := transportOf(pass, recv, transports, poisoned)
			if sl, ok := call.Args[0].(*ast.CompositeLit); ok {
				for _, el := range sl.Elts {
					if lit, ok := el.(*ast.CompositeLit); ok {
						checkWR(pass, lit, t, tKnown)
					}
				}
			}
		}
		return true
	})

	checkUnsignaledLoops(pass, body, wrLits, poisoned)
}

// recordAssign updates the fact maps for one lhs := rhs binding.
func recordAssign(pass *analysis.Pass, lhs, rhs ast.Expr, transports map[types.Object]int64, wrLits map[types.Object]*ast.CompositeLit, poisoned map[types.Object]bool) {
	// Mutating a field of a tracked work request invalidates its
	// literal snapshot.
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				poisoned[obj] = true
			}
		}
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	_, seenQP := transports[obj]
	_, seenWR := wrLits[obj]
	if seenQP || seenWR || poisoned[obj] {
		// Reassignment: facts no longer single-sourced.
		poisoned[obj] = true
		return
	}
	if rhs == nil {
		return
	}
	if t, ok := createQPTransport(pass, rhs); ok {
		transports[obj] = t
		return
	}
	if lit, ok := rhs.(*ast.CompositeLit); ok && isVerbsType(pass.TypesInfo.Types[lit].Type, "SendWR") {
		wrLits[obj] = lit
	}
}

// createQPTransport matches `x.CreateQP(<const transport>)`.
func createQPTransport(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	name, _ := verbsMethod(pass, call)
	if name != "CreateQP" || len(call.Args) != 1 {
		return 0, false
	}
	return constIntValue(pass, call.Args[0])
}

// verbsMethod returns the method name and receiver expression when call
// invokes a method defined in a package named "verbs".
func verbsMethod(pass *analysis.Pass, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "verbs" {
		return "", nil
	}
	return fn.Name(), sel.X
}

// transportOf resolves the receiver's transport when it is a tracked,
// un-poisoned local.
func transportOf(pass *analysis.Pass, recv ast.Expr, transports map[types.Object]int64, poisoned map[types.Object]bool) (int64, bool) {
	id, ok := recv.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || poisoned[obj] {
		return 0, false
	}
	t, ok := transports[obj]
	return t, ok
}

// resolveWR returns the SendWR composite literal for a PostSend
// argument: either written in place or a single-assignment local.
func resolveWR(pass *analysis.Pass, arg ast.Expr, wrLits map[types.Object]*ast.CompositeLit, poisoned map[types.Object]bool) *ast.CompositeLit {
	switch a := arg.(type) {
	case *ast.CompositeLit:
		return a
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[a]
		if obj == nil || poisoned[obj] {
			return nil
		}
		return wrLits[obj]
	}
	return nil
}

// checkWR applies the Table 1 and inline checks to one work request
// literal posted on a QP whose transport is t (when tKnown).
func checkWR(pass *analysis.Pass, lit *ast.CompositeLit, t int64, tKnown bool) {
	fieldsMap := litFields(lit)
	// An absent Verb field is the zero value: WRITE.
	verb, verbKnown := int64(vWRITE), true
	var verbPos token.Pos = lit.Pos()
	if e, ok := fieldsMap["Verb"]; ok {
		verb, verbKnown = constIntValue(pass, e)
		verbPos = e.Pos()
	}
	if tKnown && verbKnown && violatesTable1(t, verb) {
		pass.Reportf(verbPos,
			"%s posted on a %s queue pair: Table 1 — %s supports %s; this returns ErrVerbNotSupported at runtime",
			name(verbName[:], verb), name(transportName[:], t),
			name(transportName[:], t), supported(t))
	}
	if inl, ok := fieldsMap["Inline"]; ok {
		if v, known := constBoolValue(pass, inl); known && v {
			if n, ok := provableLen(pass, fieldsMap["Data"]); ok && n > int64(MaxInline) {
				pass.Reportf(inl.Pos(),
					"Inline post with a %d-byte payload exceeds the device inline limit (%d B); this returns ErrInlineTooLarge at runtime", n, MaxInline)
			}
		}
	}
}

func supported(t int64) string {
	switch t {
	case tUD:
		return "only SEND/RECV"
	case tUC:
		return "SEND/RECV/WRITE but not READ"
	}
	return "all verbs"
}

func name(table []string, v int64) string {
	if v >= 0 && int(v) < len(table) {
		return table[v]
	}
	return "?"
}

// litFields maps field names to value expressions for a keyed literal.
func litFields(lit *ast.CompositeLit) map[string]ast.Expr {
	m := make(map[string]ast.Expr, len(lit.Elts))
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if k, ok := kv.Key.(*ast.Ident); ok {
			m[k.Name] = kv.Value
		}
	}
	return m
}

// provableLen returns the byte length of a payload expression when it
// is statically evident: make([]byte, N) with constant N, a []byte
// literal without indexed elements, or []byte("literal").
func provableLen(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case nil:
		return 0, false
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) >= 2 {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return constIntValue(pass, x.Args[1])
			}
		}
		// []byte("...") conversion.
		if len(x.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				if arg, ok := pass.TypesInfo.Types[x.Args[0]]; ok && arg.Value != nil && arg.Value.Kind() == constant.String {
					return int64(len(constant.StringVal(arg.Value))), true
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if _, keyed := el.(*ast.KeyValueExpr); keyed {
				return 0, false
			}
		}
		if t, ok := pass.TypesInfo.Types[x].Type.Underlying().(*types.Slice); ok {
			if b, ok := t.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				return int64(len(x.Elts)), true
			}
		}
	}
	return 0, false
}

// checkUnsignaledLoops flags loops whose only resolvable posts are
// unsignaled and which neither signal nor poll: each iteration consumes
// a send-queue slot that nothing ever frees (Section 3.2).
func checkUnsignaledLoops(pass *analysis.Pass, body *ast.BlockStmt, wrLits map[types.Object]*ast.CompositeLit, poisoned map[types.Object]bool) {
	reported := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			loopBody = l.Body
		default:
			return true
		}
		var unsignaled []token.Pos
		safe := false
		ast.Inspect(loopBody, func(m ast.Node) bool {
			// A closure defined in the loop does not run once per
			// iteration; its posts are its own function's business.
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			mname, _ := verbsMethod(pass, call)
			switch mname {
			case "Poll", "Pending", "SetHandler":
				// Completions are consumed (or will be); the loop can
				// bound its outstanding posts.
				safe = true
			case "PostSend":
				if len(call.Args) != 1 {
					return true
				}
				lit := resolveWR(pass, call.Args[0], wrLits, poisoned)
				if lit == nil {
					safe = true // can't see the WR; assume discipline
					return true
				}
				sig, known := false, true
				if e, ok := litFields(lit)["Signaled"]; ok {
					sig, known = constBoolValue(pass, e)
				}
				if !known || sig {
					safe = true
				} else {
					unsignaled = append(unsignaled, call.Pos())
				}
			case "PostSendBatch":
				// The batch path applies its own signaling policy.
				safe = true
			}
			return true
		})
		if !safe && len(unsignaled) > 0 && !reported[unsignaled[0]] {
			reported[unsignaled[0]] = true
			pass.Reportf(unsignaled[0],
				"loop posts only unsignaled sends and never signals or polls a CQ; the send queue fills and posting stalls (selective signaling needs a periodic signaled WR, §3.2)")
		}
		return true
	})
}

// constIntValue evaluates e as a compile-time integer constant.
func constIntValue(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// constBoolValue evaluates e as a compile-time boolean constant.
func constBoolValue(pass *analysis.Pass, e ast.Expr) (val, known bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// isVerbsType reports whether t is the named type name from a package
// named "verbs".
func isVerbsType(t types.Type, typeName string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == "verbs"
}
