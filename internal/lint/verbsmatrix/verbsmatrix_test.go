package verbsmatrix_test

import (
	"testing"

	"herdkv/internal/lint/analysistest"
	"herdkv/internal/lint/verbsmatrix"
)

func TestVerbsMatrix(t *testing.T) {
	analysistest.Run(t, "../testdata", verbsmatrix.Analyzer, "vmfix")
}
