package mica

import (
	"testing"

	"herdkv/internal/kv"
)

// Wall-clock benchmarks of the actual Go data structure (distinct from
// the simulated-time experiments): these measure what this
// implementation costs on the host running the tests.

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c := New(Config{IndexBuckets: 1 << 16, BucketSlots: 8, LogBytes: 1 << 26})
	for i := uint64(0); i < 1<<15; i++ {
		if err := c.Put(kv.FromUint64(i), make([]byte, 32)); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func BenchmarkGetHit(b *testing.B) {
	c := benchCache(b)
	keys := make([]Key, 1024)
	for i := range keys {
		keys[i] = kv.FromUint64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i&1023]); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkGetMiss(b *testing.B) {
	c := benchCache(b)
	keys := make([]Key, 1024)
	for i := range keys {
		keys[i] = kv.FromUint64(uint64(i) + 1<<40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i&1023])
	}
}

func BenchmarkPut32(b *testing.B) {
	c := benchCache(b)
	val := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(kv.FromUint64(uint64(i)&0xffff), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut1000(b *testing.B) {
	c := New(Config{IndexBuckets: 1 << 12, BucketSlots: 8, LogBytes: 1 << 26})
	val := make([]byte, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(kv.FromUint64(uint64(i)&0xfff), val); err != nil {
			b.Fatal(err)
		}
	}
}
