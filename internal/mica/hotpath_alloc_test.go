package mica

import (
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/lint/hotalloc/hotgate"
)

// TestHotpathAllocFree is the CI gate behind the hotalloc analyzer:
// every //herd:hotpath function in this package must measure 0
// allocs/op. The index slots and circular log are preallocated in New,
// so the whole GET/PUT/DELETE chain runs without touching the heap.
func TestHotpathAllocFree(t *testing.T) {
	c := New(DefaultConfig())
	key := kv.FromUint64(42)
	val := []byte("hot-value")
	if err := c.Put(key, val); err != nil {
		t.Fatal(err)
	}
	h := hash64(key)
	hotgate.Check(t, ".", map[string]func(){
		"hash64":         func() { _ = hash64(key) },
		"Partition":      func() { _ = Partition(key, 6) },
		"Cache.bucketOf": func() { _, _ = c.bucketOf(h) },
		"Cache.entryAt":  func() { _, _ = c.entryAt(0, key) },
		"Cache.Get":      func() { _, _ = c.Get(key) },
		"Cache.append":   func() { _, _ = c.append(key, val) },
		"Cache.Put":      func() { _ = c.Put(key, val) },
		"Cache.Delete":   func() { _ = c.Delete(key) },
	})
}
