// Package mica implements the MICA-style key-value cache that backs HERD
// (Section 4.1 of the paper): a lossy associative index mapping keyhashes
// to pointers, and a circular log holding the values.
//
// The design's properties, preserved here:
//
//   - GET costs at most two random memory accesses (one index bucket,
//     one log entry); PUT costs one (the bucket) plus a sequential log
//     append.
//   - The index is lossy: inserting into a full bucket evicts the
//     oldest slot.
//   - The log is circular with FIFO eviction and no garbage collection;
//     stale index entries are detected by offset distance.
//   - Keys are 16-byte keyhashes (HERD requests carry only the keyhash);
//     a zero keyhash is reserved by the HERD protocol and rejected.
package mica

import (
	"encoding/binary"
	"errors"

	"herdkv/internal/kv"
)

// KeySize is the keyhash size in bytes.
const KeySize = kv.KeySize

// MaxValueSize bounds values; HERD items are at most 1 KB including the
// request header, so values cap at 1000 bytes (Section 4.2).
const MaxValueSize = 1000

// Key is a 16-byte keyhash (shared across the KV backends).
type Key = kv.Key

// Hash seeds: bucket selection and partition selection must be
// independent so EREW sharding does not correlate with bucket indices.
const (
	bucketSeed    = 0x11ca
	partitionSeed = 0xeeee
)

// hash64 is the bucket-selection hash.
//
//herd:hotpath
func hash64(k Key) uint64 { return k.Hash64(bucketSeed) }

// Errors returned by cache operations.
var (
	ErrValueTooLarge = errors.New("mica: value exceeds maximum size")
	ErrZeroKey       = errors.New("mica: zero keyhash is reserved")
	// ErrIndexFull is returned in store mode when a bucket has no free
	// slot (store mode never evicts).
	ErrIndexFull = errors.New("mica: index bucket full (store mode)")
	// ErrLogFull is returned in store mode when the log is exhausted
	// (store mode never overwrites live entries).
	ErrLogFull = errors.New("mica: log full (store mode)")
)

// Mode selects cache or store semantics (MICA provides both; HERD uses
// cache mode, Section 2.1).
type Mode int

// Semantics modes.
const (
	// CacheMode may evict: full buckets displace their oldest slot and
	// the circular log overwrites FIFO. An acknowledged key can
	// disappear.
	CacheMode Mode = iota
	// StoreMode never loses an acknowledged key: full buckets and a
	// full log reject the PUT instead.
	StoreMode
)

// Config sizes a cache partition.
type Config struct {
	// IndexBuckets is the number of index buckets (rounded up to a power
	// of two).
	IndexBuckets int
	// BucketSlots is the bucket associativity.
	BucketSlots int
	// LogBytes is the circular log capacity.
	LogBytes int
	// Mode selects cache (default) or store semantics.
	Mode Mode
}

// DefaultConfig mirrors the paper's per-process sizing (64 Mi keys,
// 4 GB log) scaled down by default for tests; experiments override.
func DefaultConfig() Config {
	return Config{IndexBuckets: 1 << 14, BucketSlots: 8, LogBytes: 1 << 22}
}

const entryHeader = KeySize + 2 // keyhash + value length

type slot struct {
	used bool
	tag  uint16
	off  uint64 // monotonic log offset of the entry
}

// Stats counts cache activity.
type Stats struct {
	Gets, GetHits     uint64
	Puts              uint64
	IndexEvictions    uint64 // slots displaced from full buckets
	LogWraps          uint64 // entries invalidated by log reuse detection
	MemAccesses       uint64 // random accesses performed (timing model input)
	SequentialAppends uint64
	StaleIndexEntries uint64 // GETs that found an overwritten log entry
	TagFalsePositives uint64 // tag matched but full keyhash differed
}

// Cache is one EREW partition of the key-value cache. It is not safe for
// concurrent use: in HERD each core owns one partition exclusively.
type Cache struct {
	cfg     Config
	mask    uint64
	slots   []slot // buckets * associativity, flat
	log     []byte
	head    uint64  // total bytes ever appended (monotonic)
	fifoPos []uint8 // next eviction victim per bucket (FIFO index policy)
	stats   Stats
}

// New returns an empty cache partition.
func New(cfg Config) *Cache {
	if cfg.IndexBuckets < 1 {
		cfg.IndexBuckets = 1
	}
	buckets := 1
	for buckets < cfg.IndexBuckets {
		buckets <<= 1
	}
	if cfg.BucketSlots < 1 {
		cfg.BucketSlots = 1
	}
	if cfg.LogBytes < 4*(entryHeader+MaxValueSize) {
		cfg.LogBytes = 4 * (entryHeader + MaxValueSize)
	}
	cfg.IndexBuckets = buckets
	return &Cache{
		cfg:     cfg,
		mask:    uint64(buckets - 1),
		slots:   make([]slot, buckets*cfg.BucketSlots),
		log:     make([]byte, cfg.LogBytes),
		fifoPos: make([]uint8, buckets),
	}
}

// Config returns the (normalized) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// bucketOf maps a keyhash to its bucket's slot base and tag.
//
//herd:hotpath
func (c *Cache) bucketOf(h uint64) (base int, tag uint16) {
	return int(h&c.mask) * c.cfg.BucketSlots, uint16(h >> 48)
}

// entryAt reads the log entry at monotonic offset off, verifying it has
// not been overwritten by log wraparound.
//
//herd:hotpath
func (c *Cache) entryAt(off uint64, key Key) ([]byte, bool) {
	size := uint64(len(c.log))
	if off >= c.head || c.head-off > size {
		return nil, false
	}
	pos := off % size
	if pos+entryHeader > size {
		return nil, false
	}
	var stored Key
	copy(stored[:], c.log[pos:pos+KeySize])
	vlen := uint64(binary.LittleEndian.Uint16(c.log[pos+KeySize : pos+entryHeader]))
	if pos+entryHeader+vlen > size || c.head-off < entryHeader+vlen {
		return nil, false
	}
	if stored != key {
		return nil, false
	}
	return c.log[pos+entryHeader : pos+entryHeader+vlen], true
}

// Get returns the value for key. The returned slice aliases the log and
// is valid until the next Put.
//
//herd:hotpath
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.stats.Gets++
	if key.IsZero() {
		return nil, false
	}
	h := hash64(key)
	base, tag := c.bucketOf(h)
	c.stats.MemAccesses++ // bucket read
	for i := 0; i < c.cfg.BucketSlots; i++ {
		s := &c.slots[base+i]
		if !s.used || s.tag != tag {
			continue
		}
		c.stats.MemAccesses++ // log entry read
		v, ok := c.entryAt(s.off, key)
		if !ok {
			// Either overwritten by the circular log or a tag collision.
			if c.head-s.off > uint64(len(c.log)) {
				c.stats.StaleIndexEntries++
				s.used = false
			} else {
				c.stats.TagFalsePositives++
			}
			continue
		}
		c.stats.GetHits++
		return v, true
	}
	return nil, false
}

// append writes an entry for key/value and returns its monotonic offset.
// In store mode the log is append-only and returns ErrLogFull instead of
// wrapping over live data.
//
//herd:hotpath
func (c *Cache) append(key Key, value []byte) (uint64, error) {
	size := uint64(len(c.log))
	need := uint64(entryHeader + len(value))
	pos := c.head % size
	skip := uint64(0)
	if pos+need > size {
		// Entries never wrap; skip the tail remainder.
		skip = size - pos
		pos = 0
	}
	if c.cfg.Mode == StoreMode && c.head+skip+need > size {
		return 0, ErrLogFull
	}
	c.head += skip
	off := c.head
	copy(c.log[pos:], key[:])
	binary.LittleEndian.PutUint16(c.log[pos+KeySize:], uint16(len(value)))
	copy(c.log[pos+entryHeader:], value)
	c.head += need
	c.stats.SequentialAppends++
	return off, nil
}

// Put inserts or updates key with value. Inserting into a full bucket
// evicts a slot (the lossy index); old log space is reclaimed implicitly
// by wraparound (FIFO).
//
//herd:hotpath
func (c *Cache) Put(key Key, value []byte) error {
	if key.IsZero() {
		return ErrZeroKey
	}
	if len(value) > MaxValueSize {
		return ErrValueTooLarge
	}
	c.stats.Puts++
	h := hash64(key)
	base, tag := c.bucketOf(h)
	c.stats.MemAccesses++ // bucket read/update

	// Locate the destination slot first. Tags are partial hashes, so a
	// tag match must be confirmed against the full keyhash stored in the
	// log before reusing the slot — otherwise two distinct keys sharing
	// a tag would silently merge.
	match, free := -1, -1
	for i := 0; i < c.cfg.BucketSlots; i++ {
		s := &c.slots[base+i]
		if !s.used {
			if free < 0 {
				free = i
			}
			continue
		}
		if s.tag == tag {
			if _, same := c.entryAt(s.off, key); same {
				match = i
				break
			}
		}
	}
	if c.cfg.Mode == StoreMode && match < 0 && free < 0 {
		return ErrIndexFull // store mode never evicts
	}
	off, err := c.append(key, value)
	if err != nil {
		return err
	}
	switch {
	case match >= 0:
		c.slots[base+match].off = off
	case free >= 0:
		c.slots[base+free] = slot{used: true, tag: tag, off: off}
	default:
		// Full bucket: evict FIFO (lossy index, cache mode only).
		v := int(c.fifoPos[base/c.cfg.BucketSlots]) % c.cfg.BucketSlots
		c.fifoPos[base/c.cfg.BucketSlots]++
		c.slots[base+v] = slot{used: true, tag: tag, off: off}
		c.stats.IndexEvictions++
	}
	return nil
}

// Delete removes key from the index. It returns whether the key was
// present.
//
//herd:hotpath
func (c *Cache) Delete(key Key) bool {
	if key.IsZero() {
		return false
	}
	h := hash64(key)
	base, tag := c.bucketOf(h)
	c.stats.MemAccesses++
	for i := 0; i < c.cfg.BucketSlots; i++ {
		s := &c.slots[base+i]
		if s.used && s.tag == tag {
			if _, ok := c.entryAt(s.off, key); ok {
				s.used = false
				return true
			}
		}
	}
	return false
}

// Range calls fn for every live entry in the partition, in index-slot
// order (deterministic for a given history), until fn returns false.
// The value slice aliases the log and is valid only within the call.
// Range performs no timing-model accounting: it is a control-plane
// walk for migration and diagnostics, not a data-path operation.
func (c *Cache) Range(fn func(key Key, value []byte) bool) {
	size := uint64(len(c.log))
	for i := range c.slots {
		s := &c.slots[i]
		if !s.used {
			continue
		}
		if s.off >= c.head || c.head-s.off > size {
			continue // overwritten by log wraparound
		}
		pos := s.off % size
		if pos+entryHeader > size {
			continue
		}
		var key Key
		copy(key[:], c.log[pos:pos+KeySize])
		if key.IsZero() {
			continue
		}
		vlen := uint64(binary.LittleEndian.Uint16(c.log[pos+KeySize : pos+entryHeader]))
		if pos+entryHeader+vlen > size || c.head-s.off < entryHeader+vlen {
			continue
		}
		if !fn(key, c.log[pos+entryHeader:pos+entryHeader+vlen]) {
			return
		}
	}
}

// AccessesPerGet is the worst-case random-access count for a GET,
// AccessesPerPut for a PUT — inputs to the server CPU timing model
// (Section 4.1: "each GET requires up to two random memory lookups, and
// each PUT requires one").
const (
	AccessesPerGet = 2
	AccessesPerPut = 1
)

// Partition selects the EREW partition for key among n partitions, the
// keyhash sharding MICA and HERD use to give each core exclusive access.
//
//herd:hotpath
func Partition(key Key, n int) int {
	if n <= 1 {
		return 0
	}
	// Use the upper hash bits so partitioning is independent of the
	// bucket index bits.
	return int(key.Hash64(partitionSeed) % uint64(n))
}
