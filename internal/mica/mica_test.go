package mica

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// keyOf produces well-mixed 16-byte keyhashes (splitmix64 finalizer), as
// a real client would by hashing its key.
func keyOf(n uint64) Key {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var k Key
	binary.LittleEndian.PutUint64(k[:8], mix(n)|1) // never zero
	binary.LittleEndian.PutUint64(k[8:], mix(n+0x9e3779b97f4a7c15))
	return k
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(DefaultConfig())
	k := keyOf(1)
	if err := c.Put(k, []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(k)
	if !ok || string(v) != "value-1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestGetMissing(t *testing.T) {
	c := New(DefaultConfig())
	if _, ok := c.Get(keyOf(99)); ok {
		t.Fatal("missing key reported present")
	}
}

func TestUpdateReplacesValue(t *testing.T) {
	c := New(DefaultConfig())
	k := keyOf(2)
	c.Put(k, []byte("old"))
	c.Put(k, []byte("new value"))
	v, ok := c.Get(k)
	if !ok || string(v) != "new value" {
		t.Fatalf("Get after update = %q, %v", v, ok)
	}
}

func TestZeroKeyRejected(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.Put(Key{}, []byte("x")); err != ErrZeroKey {
		t.Fatalf("Put zero key: %v", err)
	}
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("Get zero key should miss")
	}
	if c.Delete(Key{}) {
		t.Fatal("Delete zero key should be false")
	}
}

func TestValueSizeLimit(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.Put(keyOf(1), make([]byte, MaxValueSize+1)); err != ErrValueTooLarge {
		t.Fatalf("oversized Put: %v", err)
	}
	if err := c.Put(keyOf(1), make([]byte, MaxValueSize)); err != nil {
		t.Fatalf("max-sized Put: %v", err)
	}
}

func TestEmptyValue(t *testing.T) {
	c := New(DefaultConfig())
	k := keyOf(3)
	c.Put(k, nil)
	v, ok := c.Get(k)
	if !ok || len(v) != 0 {
		t.Fatalf("empty value Get = %v, %v", v, ok)
	}
}

func TestDelete(t *testing.T) {
	c := New(DefaultConfig())
	k := keyOf(4)
	c.Put(k, []byte("x"))
	if !c.Delete(k) {
		t.Fatal("Delete existing = false")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("key present after delete")
	}
	if c.Delete(k) {
		t.Fatal("Delete missing = true")
	}
}

func TestLossyIndexEviction(t *testing.T) {
	// A tiny index: overfilling one bucket must evict, not fail.
	cfg := Config{IndexBuckets: 1, BucketSlots: 2, LogBytes: 1 << 20}
	c := New(cfg)
	for i := uint64(0); i < 10; i++ {
		if err := c.Put(keyOf(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().IndexEvictions == 0 {
		t.Fatal("expected index evictions in a full bucket")
	}
	// The most recently inserted key must be retrievable.
	v, ok := c.Get(keyOf(9))
	if !ok || v[0] != 9 {
		t.Fatalf("most recent key lost: %v %v", v, ok)
	}
}

func TestCircularLogFIFOEviction(t *testing.T) {
	// A log sized for ~8 full entries: old values must age out and be
	// detected as stale, never returned corrupt.
	cfg := Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 8 * (entryHeader + MaxValueSize)}
	c := New(cfg)
	val := func(i uint64) []byte {
		v := bytes.Repeat([]byte{byte(i)}, MaxValueSize)
		return v
	}
	n := uint64(64)
	for i := uint64(0); i < n; i++ {
		c.Put(keyOf(i), val(i))
	}
	// Recent keys hit with correct bytes.
	for i := n - 4; i < n; i++ {
		v, ok := c.Get(keyOf(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("recent key %d: ok=%v", i, ok)
		}
	}
	// Old keys are gone (either index-evicted or stale), never corrupt.
	hits := 0
	for i := uint64(0); i < 8; i++ {
		if v, ok := c.Get(keyOf(i)); ok {
			if !bytes.Equal(v, val(i)) {
				t.Fatalf("key %d returned corrupt value", i)
			}
			hits++
		}
	}
	if hits != 0 {
		t.Fatalf("keys overwritten %dx ago still present: %d", 8, hits)
	}
}

func TestStaleEntriesDetected(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 8 * (entryHeader + MaxValueSize)}
	c := New(cfg)
	k := keyOf(1)
	c.Put(k, []byte("victim"))
	for i := uint64(2); i < 40; i++ {
		c.Put(keyOf(i), make([]byte, MaxValueSize))
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("overwritten entry still returned")
	}
	if c.Stats().StaleIndexEntries == 0 {
		t.Fatal("stale entry not counted")
	}
}

func TestMemAccessAccounting(t *testing.T) {
	c := New(DefaultConfig())
	k := keyOf(5)
	c.Put(k, []byte("x"))
	before := c.Stats().MemAccesses
	c.Get(k)
	delta := c.Stats().MemAccesses - before
	if delta != AccessesPerGet {
		t.Fatalf("GET accesses = %d, want %d", delta, AccessesPerGet)
	}
	before = c.Stats().MemAccesses
	c.Put(k, []byte("y"))
	if d := c.Stats().MemAccesses - before; d != AccessesPerPut {
		t.Fatalf("PUT accesses = %d, want %d", d, AccessesPerPut)
	}
}

func TestPartitionStableAndBounded(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for i := uint64(0); i < 100; i++ {
			p := Partition(keyOf(i), n)
			if p < 0 || p >= n {
				t.Fatalf("partition %d out of range [0,%d)", p, n)
			}
			if p != Partition(keyOf(i), n) {
				t.Fatal("partition not stable")
			}
		}
	}
	if Partition(keyOf(1), 0) != 0 {
		t.Fatal("n<=1 should return 0")
	}
}

func TestPartitionBalance(t *testing.T) {
	// Uniform keys over 6 partitions should land within 20% of even.
	n := 6
	counts := make([]int, n)
	total := 60000
	for i := 0; i < total; i++ {
		counts[Partition(keyOf(uint64(i)), n)]++
	}
	want := total / n
	for p, got := range counts {
		if got < want*8/10 || got > want*12/10 {
			t.Fatalf("partition %d has %d keys, want ~%d", p, got, want)
		}
	}
}

// Property: the cache agrees with a model map on every hit — a hit must
// return the most recently put value; misses are allowed (lossy), wrong
// data is not.
func TestCacheNeverLies(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		cfg := Config{IndexBuckets: 64, BucketSlots: 2, LogBytes: 1 << 14}
		c := New(cfg)
		model := make(map[Key][]byte)
		for _, op := range ops {
			k := keyOf(uint64(op % 64))
			if rnd.Intn(2) == 0 {
				v := []byte(fmt.Sprintf("v%d-%d", op, rnd.Intn(1000)))
				c.Put(k, v)
				model[k] = v
			} else {
				got, ok := c.Get(k)
				if ok && !bytes.Equal(got, model[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateUnderCapacity(t *testing.T) {
	// When the working set fits comfortably, everything should hit.
	c := New(DefaultConfig())
	n := uint64(5000)
	for i := uint64(0); i < n; i++ {
		c.Put(keyOf(i), []byte{byte(i)})
	}
	misses := 0
	for i := uint64(0); i < n; i++ {
		if _, ok := c.Get(keyOf(i)); !ok {
			misses++
		}
	}
	if misses > int(n)/100 {
		t.Fatalf("misses = %d of %d with ample capacity", misses, n)
	}
}
