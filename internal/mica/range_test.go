package mica

import (
	"bytes"
	"fmt"
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

// Range now underpins both fleet migration and WAL snapshotting, so its
// determinism is a correctness property: two replicas (or two runs of
// one chaos replay) walking identical partitions must emit identical
// sequences, or snapshots and migrations would diverge across -count=2.

// buildCache applies a seeded Put/Delete history and returns the cache.
func buildCache(seed int64, ops int, cfg Config) *Cache {
	c := New(cfg)
	rnd := sim.NewRand(seed)
	for i := 0; i < ops; i++ {
		k := kv.FromUint64(uint64(rnd.Intn(ops/2 + 1)))
		if rnd.Float64() < 0.2 {
			c.Delete(k)
			continue
		}
		_ = c.Put(k, []byte(fmt.Sprintf("v%d", i)))
	}
	return c
}

// collect drains Range into a flat byte transcript (key + value per
// entry), cloning values since they alias the log.
func collect(c *Cache) []byte {
	var out []byte
	c.Range(func(key Key, value []byte) bool {
		out = append(out, key[:]...)
		out = append(out, value...)
		return true
	})
	return out
}

func TestRangeDeterministicAcrossIdenticalHistories(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, BucketSlots: 8, LogBytes: 1 << 18}
	a := collect(buildCache(7, 2000, cfg))
	b := collect(buildCache(7, 2000, cfg))
	if len(a) == 0 {
		t.Fatal("empty Range transcript")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical histories produced different Range sequences")
	}
	if c := collect(buildCache(8, 2000, cfg)); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical Range sequences (suspicious)")
	}
}

// TestRangeMatchesGet: every entry Range yields must be live — the
// exact value Get returns — and every Get-able key must appear exactly
// once. Wrapped (evicted-by-log) entries are skipped, never emitted
// damaged.
func TestRangeMatchesGet(t *testing.T) {
	// A small log forces circular-log wraparound: early entries are
	// overwritten and their index slots left dangling.
	cfg := Config{IndexBuckets: 1 << 8, BucketSlots: 8, LogBytes: 8 << 10}
	c := buildCache(11, 4000, cfg)
	seen := map[Key]int{}
	c.Range(func(key Key, value []byte) bool {
		seen[key]++
		want, ok := c.Get(key)
		if !ok || !bytes.Equal(value, want) {
			t.Fatalf("Range emitted key %v value %q, Get says %q ok=%v", key, value, want, ok)
		}
		return true
	})
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("key %v emitted %d times", key, n)
		}
	}
	if len(seen) == 0 {
		t.Fatal("Range emitted nothing")
	}
}

// TestRangeWithInterleavedMutation: a Put or Delete landing between
// Range callbacks (the WAL snapshot walk interleaves with served
// writes in sim time) must not corrupt the walk — entries emitted
// afterward are still well-formed.
func TestRangeWithInterleavedMutation(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, BucketSlots: 8, LogBytes: 1 << 18}
	c := buildCache(13, 1000, cfg)
	i := 0
	c.Range(func(key Key, value []byte) bool {
		// Mutate mid-walk: overwrite this key, delete another, insert a
		// fresh one.
		_ = c.Put(key, []byte("rewritten"))
		c.Delete(kv.FromUint64(uint64(i)))
		_ = c.Put(kv.FromUint64(uint64(90000+i)), []byte("fresh"))
		i++
		if len(value) > MaxValueSize {
			t.Fatalf("mid-mutation Range emitted oversized value (%d bytes)", len(value))
		}
		return i < 200
	})
	if i == 0 {
		t.Fatal("Range emitted nothing")
	}
}

func TestRangeStopsEarly(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, BucketSlots: 8, LogBytes: 1 << 18}
	c := buildCache(17, 500, cfg)
	calls := 0
	c.Range(func(Key, []byte) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("Range called fn %d times after a false return", calls)
	}
}
