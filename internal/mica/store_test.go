package mica

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func storeConfig() Config {
	return Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20, Mode: StoreMode}
}

func TestStoreModeBasics(t *testing.T) {
	c := New(storeConfig())
	k := keyOf(1)
	if err := c.Put(k, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(k)
	if !ok || string(v) != "durable" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestStoreModeNeverEvictsFromIndex(t *testing.T) {
	// A single bucket with 2 slots: the third distinct key must be
	// rejected, and the first two stay intact.
	cfg := Config{IndexBuckets: 1, BucketSlots: 2, LogBytes: 1 << 20, Mode: StoreMode}
	c := New(cfg)
	if err := c.Put(keyOf(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(keyOf(2), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(keyOf(3), []byte("c")); err != ErrIndexFull {
		t.Fatalf("third key: err = %v, want ErrIndexFull", err)
	}
	for i, want := range []string{"a", "b"} {
		v, ok := c.Get(keyOf(uint64(i + 1)))
		if !ok || string(v) != want {
			t.Fatalf("key %d lost after rejected insert", i+1)
		}
	}
	// Updates to resident keys still work on a full bucket.
	if err := c.Put(keyOf(1), []byte("a2")); err != nil {
		t.Fatalf("update on full bucket: %v", err)
	}
}

func TestStoreModeLogFull(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 10, BucketSlots: 8,
		LogBytes: 6 * (entryHeader + MaxValueSize), Mode: StoreMode}
	c := New(cfg)
	var sawFull bool
	stored := []uint64{}
	for i := uint64(1); i < 32; i++ {
		err := c.Put(keyOf(i), make([]byte, MaxValueSize))
		if err == ErrLogFull {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stored = append(stored, i)
	}
	if !sawFull {
		t.Fatal("log never reported full")
	}
	// Everything acknowledged is still readable and correct.
	for _, i := range stored {
		if _, ok := c.Get(keyOf(i)); !ok {
			t.Fatalf("acknowledged key %d lost in store mode", i)
		}
	}
}

func TestStoreModeFailedPutBurnsNoIndexSlot(t *testing.T) {
	cfg := Config{IndexBuckets: 1, BucketSlots: 1, LogBytes: 1 << 20, Mode: StoreMode}
	c := New(cfg)
	c.Put(keyOf(1), []byte("x"))
	for i := uint64(2); i < 10; i++ {
		if err := c.Put(keyOf(i), []byte("y")); err != ErrIndexFull {
			t.Fatalf("err = %v", err)
		}
	}
	if v, ok := c.Get(keyOf(1)); !ok || string(v) != "x" {
		t.Fatal("resident key damaged by rejected inserts")
	}
}

// Property: in store mode, every acknowledged PUT remains readable with
// its latest value until deleted — no lossiness allowed.
func TestStoreModeDurabilityProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		c := New(Config{IndexBuckets: 64, BucketSlots: 4, LogBytes: 1 << 16, Mode: StoreMode})
		model := make(map[Key][]byte)
		for _, op := range ops {
			k := keyOf(uint64(op%50) + 1)
			switch rnd.Intn(3) {
			case 0:
				v := []byte(fmt.Sprintf("v%d", rnd.Intn(100)))
				if err := c.Put(k, v); err == nil {
					model[k] = v
				}
			case 1:
				got, ok := c.Get(k)
				want, in := model[k]
				if in != ok {
					return false // store mode may not lose keys
				}
				if ok && !bytes.Equal(got, want) {
					return false
				}
			case 2:
				c.Delete(k)
				delete(model, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheModeStillDefault(t *testing.T) {
	c := New(DefaultConfig())
	if c.Config().Mode != CacheMode {
		t.Fatal("default mode should be cache")
	}
}
