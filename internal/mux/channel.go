package mux

import (
	"fmt"

	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

type opKind uint8

const (
	opGet opKind = iota
	opPut
	opDelete
)

// chanOp is one submission-queue entry: the operation plus the routing
// state that demuxes its response (in hardware this is the vcid header
// echoed through the endpoint's in-flight table). Entries are pooled
// per endpoint: done — the completion closure handed to the pooled
// client — is built once per entry and rides through the free list, so
// steady-state submissions allocate nothing.
type chanOp struct {
	ch        *Channel // owning channel while in flight; nil in the pool
	kind      opKind
	key       kv.Key
	value     []byte
	cb        func(kv.Result)
	done      func(kv.Result)
	submitted sim.Time
	started   bool
	trace     *telemetry.Trace
}

// Channel is one logical client riding the endpoint: the unit an
// application holds. It implements kv.KV, so application code written
// against a direct HERD client runs unchanged over the multiplexer. The
// channel's id is its vcid — the tag heading every submission-queue
// entry it produces, by which the endpoint routes responses back.
//
// Channels are free at the server: no connected QP, no request-region
// column, no NIC context. Only the endpoint's pooled clients cost
// server-side state.
type Channel struct {
	ep *Endpoint
	id int

	queue       []*chanOp // accepted, not yet issued to the pool
	outstanding int       // issued to the pool, not yet resolved
	inflight    int       // accepted, not yet resolved (queued + outstanding)
	stalled     bool

	issuedOps uint64 // accepted submissions
	completed uint64
	failed    uint64
}

// ID returns the channel's virtual channel id, unique per endpoint.
func (ch *Channel) ID() int { return ch.id }

// Stalled reports whether the channel currently has backlog the
// endpoint could not issue immediately (window full or pool saturated).
func (ch *Channel) Stalled() bool { return ch.stalled }

// Queued returns this channel's backlog depth.
func (ch *Channel) Queued() int { return len(ch.queue) }

// Get fetches key; cb receives a hit with the value, or a miss.
func (ch *Channel) Get(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	ch.ep.submit(ch, ch.ep.getOp(ch, opGet, key, cb))
	return nil
}

// Put stores value under key. Validation mirrors the HERD client so a
// malformed op is rejected at the channel, before it occupies endpoint
// queue space.
func (ch *Channel) Put(key kv.Key, value []byte, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	if len(value) == 0 {
		return fmt.Errorf("mux: PUT requires a non-empty value")
	}
	if len(value) > mica.MaxValueSize {
		return mica.ErrValueTooLarge
	}
	op := ch.ep.getOp(ch, opPut, key, cb)
	// Copy into the pooled entry's buffer (the caller may reuse value);
	// a recycled entry's capacity makes the copy allocation-free.
	op.value = append(op.value, value...)
	ch.ep.submit(ch, op)
	return nil
}

// Delete removes key; the result reports whether it was present.
func (ch *Channel) Delete(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return mica.ErrZeroKey
	}
	ch.ep.submit(ch, ch.ep.getOp(ch, opDelete, key, cb))
	return nil
}

// Inflight returns the number of unresolved operations (queued at the
// endpoint plus outstanding on the pool).
func (ch *Channel) Inflight() int { return ch.inflight }

// Issued counts submissions the channel accepted.
func (ch *Channel) Issued() uint64 { return ch.issuedOps }

// Completed counts operations resolved with a served response.
func (ch *Channel) Completed() uint64 { return ch.completed }

// Failed counts operations that resolved terminally unserved.
func (ch *Channel) Failed() uint64 { return ch.failed }

var _ kv.KV = (*Channel)(nil)
