package mux

import (
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/lint/hotalloc/hotgate"
)

// gateClient is a zero-state PoolClient for exercising the endpoint's
// scheduler kernels without a cluster behind them.
type gateClient struct{}

func (gateClient) Get(kv.Key, func(kv.Result)) error         { return nil }
func (gateClient) Put(kv.Key, []byte, func(kv.Result)) error { return nil }
func (gateClient) Delete(kv.Key, func(kv.Result)) error      { return nil }
func (gateClient) Inflight() int                             { return 0 }
func (gateClient) Issued() uint64                            { return 0 }
func (gateClient) Completed() uint64                         { return 0 }
func (gateClient) Failed() uint64                            { return 0 }
func (gateClient) Window() int                               { return 4 }

// TestHotpathAllocFree gates the //herd:hotpath functions of the
// endpoint scheduler at 0 allocs/op.
func TestHotpathAllocFree(t *testing.T) {
	ep := &Endpoint{pool: []PoolClient{gateClient{}, gateClient{}}}
	hotgate.Check(t, ".", map[string]func(){
		"Endpoint.poolWithRoom": func() { _ = ep.poolWithRoom() },
		"opKind.kindName":       func() { _ = opPut.kindName() },
	})
}
