// Package mux is the per-host endpoint/multiplexer tier: many logical
// client channels ride a small fixed pool of shared connected QP sets,
// the RDMA-as-a-service pattern RDMAvisor argues for (PAPERS.md).
//
// The problem it attacks is Figure 12's client-scaling cliff: HERD keeps
// one connected UC QP per client at the server, so past the RNIC's
// receive-context-cache capacity (~280 on ConnectX-3, internal/nic)
// every inbound request misses the QP context cache and throughput
// collapses. The endpoint consolidates that state: applications on a
// host open logical channels against the local endpoint instead of
// dialing the server themselves, and the endpoint multiplexes all
// channel traffic over its pool. Server-side connected QPs then scale
// with hosts x pool size — dozens — instead of with application clients.
//
// Mechanics (docs/SCALABILITY.md):
//
//   - Each channel has a virtual channel id (vcid). A submitted op is
//     one entry in the endpoint's host-local submission queue, headed by
//     its vcid; the endpoint's in-flight table keyed by that header
//     routes the response back to the owning channel at completion. The
//     app-to-endpoint hop is an intra-host shared-memory enqueue, unpaid
//     in the model (well under the ~2 us network RTT).
//   - The endpoint issues across channels in round-robin order, so one
//     greedy channel cannot starve the others out of the shared pool.
//   - Channel-level flow control caps each channel at ChannelWindow
//     outstanding ops; the pool-level check respects each pooled
//     client's *effective* window, so when core's AIMD controller
//     (core.Config.AdaptiveWindow) shrinks a pooled client under busy
//     pushback, the endpoint's issue rate shrinks with it and excess
//     demand queues at the channels instead of retry-storming the wire.
//
// The endpoint is deliberately transport-agnostic: pooled clients are
// kv.KV implementations (plus an effective-window accessor), so the same
// tier multiplexes plain HERD clients and fleet sub-clients alike.
package mux

import (
	"errors"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// ErrChannelLimit is returned by OpenChannel past Config.MaxChannels.
var ErrChannelLimit = errors.New("mux: endpoint channel limit reached")

// PoolClient is what the endpoint needs from a pooled transport client:
// the unified kv.KV operations plus the client's current effective
// request window (which core's AIMD controller may shrink at runtime).
type PoolClient interface {
	kv.KV
	Window() int
}

// Config parameterizes one endpoint.
type Config struct {
	// QPs is the pool size: how many connected client QP sets the
	// endpoint shares among all its channels (default 2). This — not
	// the channel count — is what the server's NIC holds context state
	// for.
	QPs int
	// ChannelWindow caps each channel's outstanding ops at the endpoint
	// (default 4, mirroring HERD's per-client window W). Submissions
	// beyond it queue in the channel until completions free slots.
	ChannelWindow int
	// MaxChannels bounds OpenChannel (0 = unbounded).
	MaxChannels int
}

func (c Config) withDefaults() Config {
	if c.QPs < 1 {
		c.QPs = 2
	}
	if c.ChannelWindow < 1 {
		c.ChannelWindow = 4
	}
	return c
}

// DefaultConfig returns the endpoint defaults: a 2-QP pool and a
// per-channel window of 4.
func DefaultConfig() Config { return Config{}.withDefaults() }

// Endpoint is one host's multiplexer: the shared pool, the open
// channels, and the round-robin issue scheduler.
type Endpoint struct {
	cfg      Config
	machine  *cluster.Machine
	eng      *sim.Engine
	pool     []PoolClient
	channels []*Channel

	rr      int // next channel to consider (fair round-robin)
	poolRR  int // next pool client to consider
	queued  int // ops waiting in channel queues, endpoint-wide
	pumping bool
	opFree  []*chanOp // recycled submission-queue entries

	issued, completed, failed uint64

	tel          *telemetry.Sink
	telEndpoints *telemetry.Gauge
	telChannels  *telemetry.Gauge
	telQPs       *telemetry.Gauge
	telIssued    *telemetry.Counter
	telCompleted *telemetry.Counter
	telFailed    *telemetry.Counter
	telQueued    *telemetry.Gauge
	telStalls    *telemetry.Counter
	telResumes   *telemetry.Counter
	telStalled   *telemetry.Gauge
	latOp        *telemetry.Histogram
}

// New builds an endpoint on machine m over an already-connected pool.
// Most callers want Connect, which also dials the pool.
func New(m *cluster.Machine, pool []PoolClient, cfg Config) (*Endpoint, error) {
	if len(pool) == 0 {
		return nil, errors.New("mux: endpoint needs a non-empty pool")
	}
	ep := &Endpoint{
		cfg:     cfg.withDefaults(),
		machine: m,
		eng:     m.Verbs.NIC().Engine(),
		pool:    pool,
	}
	ep.tel = m.Verbs.Telemetry()
	ep.telEndpoints = ep.tel.Gauge("mux.endpoints")
	ep.telChannels = ep.tel.Gauge("mux.channels")
	ep.telQPs = ep.tel.Gauge("mux.qps")
	ep.telIssued = ep.tel.Counter("mux.ops.issued")
	ep.telCompleted = ep.tel.Counter("mux.ops.completed")
	ep.telFailed = ep.tel.Counter("mux.ops.failed")
	ep.telQueued = ep.tel.Gauge("mux.queue.depth")
	ep.telStalls = ep.tel.Counter("mux.chan.stalls")
	ep.telResumes = ep.tel.Counter("mux.chan.resumes")
	ep.telStalled = ep.tel.Gauge("mux.chan.stalled")
	ep.latOp = ep.tel.Histogram("mux.op.latency")
	ep.telEndpoints.Add(1)
	ep.telQPs.Add(int64(len(pool)))
	return ep, nil
}

// Connect builds an endpoint on machine m backed by a fresh pool of
// cfg.QPs HERD clients connected to srv. Each pooled client occupies one
// of the server's MaxClients request-region columns; the channels do not.
func Connect(srv *core.Server, m *cluster.Machine, cfg Config) (*Endpoint, error) {
	cfg = cfg.withDefaults()
	clients, err := srv.ConnectClients(m, cfg.QPs)
	if err != nil {
		return nil, err
	}
	pool := make([]PoolClient, len(clients))
	for i, c := range clients {
		pool[i] = c
	}
	return New(m, pool, cfg)
}

// OpenChannel registers a new logical client channel and returns it.
// The channel implements kv.KV; its id is the vcid heading every
// submission-queue entry the channel produces.
func (ep *Endpoint) OpenChannel() (*Channel, error) {
	if ep.cfg.MaxChannels > 0 && len(ep.channels) >= ep.cfg.MaxChannels {
		return nil, ErrChannelLimit
	}
	ch := &Channel{ep: ep, id: len(ep.channels)}
	ep.channels = append(ep.channels, ch)
	ep.telChannels.Add(1)
	return ch, nil
}

// Config returns the endpoint configuration (defaults applied).
func (ep *Endpoint) Config() Config { return ep.cfg }

// Channels returns how many channels are open.
func (ep *Endpoint) Channels() int { return len(ep.channels) }

// PoolSize returns the number of pooled transport clients.
func (ep *Endpoint) PoolSize() int { return len(ep.pool) }

// Queued returns how many accepted ops are waiting in channel queues.
func (ep *Endpoint) Queued() int { return ep.queued }

// Issued, Completed and Failed report endpoint-wide op counts (issued
// counts hand-offs to the pool, not submissions).
func (ep *Endpoint) Issued() uint64    { return ep.issued }
func (ep *Endpoint) Completed() uint64 { return ep.completed }
func (ep *Endpoint) Failed() uint64    { return ep.failed }

func (ep *Endpoint) now() sim.Time { return ep.eng.Now() }

// getOp returns a submission-queue entry from the free pool (or a fresh
// one), initialized for a new operation. The entry's completion closure
// is constructed once, on first allocation, and reused across recycles.
func (ep *Endpoint) getOp(ch *Channel, kind opKind, key kv.Key, cb func(kv.Result)) *chanOp {
	var op *chanOp
	if n := len(ep.opFree); n > 0 {
		op = ep.opFree[n-1]
		ep.opFree = ep.opFree[:n-1]
	} else {
		op = new(chanOp)
		op.done = func(r kv.Result) { op.ch.ep.complete(op.ch, op, r) }
	}
	op.ch = ch
	op.kind = kind
	op.key = key
	op.value = op.value[:0]
	op.cb = cb
	op.submitted = 0
	op.started = false
	op.trace = nil
	return op
}

// putOp recycles a resolved entry. Callers must be done with every
// field: the entry may be handed to a new operation immediately.
func (ep *Endpoint) putOp(op *chanOp) {
	op.ch = nil
	op.cb = nil
	op.trace = nil
	ep.opFree = append(ep.opFree, op)
}

// poolWithRoom returns the next pooled client with window room, in
// round-robin order, or nil when the pool is saturated. The room check
// uses the client's effective window, so a pooled client whose AIMD
// window shrank under busy pushback accepts proportionally less — the
// endpoint's composition with core's overload control.
//
//herd:hotpath
func (ep *Endpoint) poolWithRoom() PoolClient {
	for i := 0; i < len(ep.pool); i++ {
		cli := ep.pool[ep.poolRR%len(ep.pool)]
		ep.poolRR++
		if cli.Inflight() < cli.Window() {
			return cli
		}
	}
	return nil
}

// pump issues queued ops fairly: channels are visited round-robin, one
// issue per visit, until every channel is idle (empty queue or at its
// ChannelWindow) or the pool is saturated. Re-entrant calls (a pooled
// client rejecting an op synchronously completes it mid-pump) fold into
// the running loop.
func (ep *Endpoint) pump() {
	if ep.pumping {
		return
	}
	ep.pumping = true
	defer func() { ep.pumping = false }()
	n := len(ep.channels)
	idle := 0
	for idle < n {
		ch := ep.channels[ep.rr%n]
		if len(ch.queue) == 0 || ch.outstanding >= ep.cfg.ChannelWindow {
			ep.rr++
			idle++
			continue
		}
		cli := ep.poolWithRoom()
		if cli == nil {
			// Pool saturated. The cursor stays on this channel so it is
			// first in line when a completion re-pumps — advancing past
			// it here would cost it its turn.
			return
		}
		ep.rr++
		ep.issue(ch, cli)
		idle = 0
	}
}

// issue pops the head of ch's queue and hands it to cli. The op's vcid
// header moves from the submission queue to the in-flight table — here,
// the completion closure carrying (ch, op) — which demuxes the response
// back to the owning channel.
func (ep *Endpoint) issue(ch *Channel, cli PoolClient) {
	op := ch.queue[0]
	ch.queue = ch.queue[1:]
	ep.queued--
	ep.telQueued.Add(-1)
	if ch.stalled && len(ch.queue) == 0 {
		ch.stalled = false
		ep.telResumes.Inc()
		ep.telStalled.Add(-1)
	}
	op.trace.Mark("mux.resume", ep.now())
	op.started = true
	ch.outstanding++
	ep.issued++
	ep.telIssued.Inc()

	var err error
	switch op.kind {
	case opPut:
		err = cli.Put(op.key, op.value, op.done)
	case opDelete:
		err = cli.Delete(op.key, op.done)
	default:
		err = cli.Get(op.key, op.done)
	}
	if err != nil {
		// Synchronous rejection: resolve the op as failed so channel
		// accounting stays balanced (mirrors fleet.Client).
		ep.complete(ch, op, kv.Result{
			Key: op.key, IsGet: op.kind == opGet, Status: kv.StatusTimeout, Err: err,
		})
	}
}

// complete demuxes one resolved op back to its owning channel: the
// channel's slot frees, endpoint counters advance, latency is re-based
// to the channel's submission time (queueing included), and the
// scheduler runs before the callback so closed-loop channels keep the
// pipe full.
func (ep *Endpoint) complete(ch *Channel, op *chanOp, r kv.Result) {
	ch.outstanding--
	ch.inflight--
	r.Latency = ep.now() - op.submitted
	if r.Err == nil {
		ch.completed++
		ep.completed++
		ep.telCompleted.Inc()
		ep.latOp.RecordTime(r.Latency)
	} else {
		ch.failed++
		ep.failed++
		ep.telFailed.Inc()
	}
	ep.pump()
	if op.cb != nil {
		op.cb(r)
	}
	ep.putOp(op)
}

// submit accepts one channel op into the endpoint: enqueue, try to
// issue, and record a stall if the op could not go out immediately.
func (ep *Endpoint) submit(ch *Channel, op *chanOp) {
	op.submitted = ep.now()
	ch.inflight++
	ch.issuedOps++
	ch.queue = append(ch.queue, op)
	ep.queued++
	ep.telQueued.Add(1)
	ep.pump()
	if !op.started {
		// The op is still queued: channel window full or pool saturated.
		if !ch.stalled {
			ch.stalled = true
			ep.telStalls.Inc()
			ep.telStalled.Add(1)
		}
		if ep.tel.Tracing() {
			op.trace = ep.tel.StartTrace(op.kind.kindName(), op.submitted)
			op.trace.Mark("mux.stall", op.submitted)
		}
	}
}

// kindName returns the trace name for an operation kind.
//
//herd:hotpath
func (k opKind) kindName() string {
	switch k {
	case opPut:
		return "PUT"
	case opDelete:
		return "DELETE"
	}
	return "GET"
}
