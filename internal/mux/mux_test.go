package mux

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/telemetry"
)

func smallConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.NS = 4
	cfg.MaxClients = 8
	cfg.Window = 4
	cfg.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	return cfg
}

// fakeClient is a scripted PoolClient: it accepts ops up to its window,
// records issue order, and resolves completions only when released —
// letting tests freeze the pool in any state.
type fakeClient struct {
	window   int
	inflight int
	reject   bool // fail the next op synchronously
	order    []kv.Key
	pending  []func()
}

func (f *fakeClient) accept(key kv.Key, isGet bool, cb func(kv.Result)) error {
	if f.reject {
		f.reject = false
		return fmt.Errorf("fake: rejected")
	}
	f.inflight++
	f.order = append(f.order, key)
	f.pending = append(f.pending, func() {
		f.inflight--
		cb(kv.Result{Key: key, IsGet: isGet, Status: kv.StatusHit})
	})
	return nil
}

func (f *fakeClient) Get(key kv.Key, cb func(kv.Result)) error { return f.accept(key, true, cb) }
func (f *fakeClient) Put(key kv.Key, v []byte, cb func(kv.Result)) error {
	return f.accept(key, false, cb)
}
func (f *fakeClient) Delete(key kv.Key, cb func(kv.Result)) error { return f.accept(key, false, cb) }
func (f *fakeClient) Inflight() int                               { return f.inflight }
func (f *fakeClient) Window() int                                 { return f.window }
func (f *fakeClient) Issued() uint64                              { return uint64(len(f.order)) }
func (f *fakeClient) Completed() uint64                           { return 0 }
func (f *fakeClient) Failed() uint64                              { return 0 }

// release resolves the oldest unresolved op.
func (f *fakeClient) release() {
	done := f.pending[0]
	f.pending = f.pending[1:]
	done()
}

func newFakeEndpoint(t *testing.T, f *fakeClient, cfg Config) *Endpoint {
	t.Helper()
	cl := cluster.New(cluster.Apt(), 1, 1)
	ep, err := New(cl.Machine(0), []PoolClient{f}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// TestMuxDemuxRoundTrip runs many channels over a 2-QP pool against a
// real HERD server and checks every response lands on the channel that
// submitted it, with the right value.
func TestMuxDemuxRoundTrip(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 2, 1)
	srv, err := core.NewServer(cl.Machine(0), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Connect(srv, cl.Machine(1), Config{QPs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ep.PoolSize() != 2 {
		t.Fatalf("pool size = %d, want 2", ep.PoolSize())
	}

	const nChans, nOps = 6, 4
	chans := make([]*Channel, nChans)
	for i := range chans {
		if chans[i], err = ep.OpenChannel(); err != nil {
			t.Fatal(err)
		}
		if chans[i].ID() != i {
			t.Fatalf("channel %d has vcid %d", i, chans[i].ID())
		}
	}

	// Each channel writes then reads its own keys; values encode the
	// owning vcid so a misrouted response is detectable. Ops complete
	// out of submission order across the two pool QPs, so results are
	// indexed by op, not appended in arrival order.
	got := make([][]kv.Result, nChans)
	for i, ch := range chans {
		i, ch := i, ch
		got[i] = make([]kv.Result, nOps)
		for j := 0; j < nOps; j++ {
			j := j
			key := kv.FromUint64(uint64(i*100 + j + 1))
			val := []byte(fmt.Sprintf("vcid-%d-op-%d", i, j))
			err := ch.Put(key, val, func(r kv.Result) {
				ch.Get(key, func(r kv.Result) {
					got[i][j] = r
				})
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.Eng.Run()

	for i := range chans {
		for j, r := range got[i] {
			want := []byte(fmt.Sprintf("vcid-%d-op-%d", i, j))
			if r.Status != kv.StatusHit || !bytes.Equal(r.Value, want) {
				t.Fatalf("channel %d op %d demuxed wrong: %q (status %v)", i, j, r.Value, r.Status)
			}
			if r.Latency <= 0 {
				t.Fatalf("channel %d op %d has non-positive latency %v", i, j, r.Latency)
			}
		}
		if chans[i].Inflight() != 0 || chans[i].Completed() != 2*nOps {
			t.Fatalf("channel %d accounting: inflight=%d completed=%d",
				i, chans[i].Inflight(), chans[i].Completed())
		}
	}
	if ep.Completed() != 2*nChans*nOps || ep.Failed() != 0 || ep.Queued() != 0 {
		t.Fatalf("endpoint accounting: completed=%d failed=%d queued=%d",
			ep.Completed(), ep.Failed(), ep.Queued())
	}
}

// TestMuxFairRoundRobin backlogs three channels against a frozen pool,
// then drains one completion at a time: the issue order must interleave
// so no channel ever runs more than one op ahead of another.
func TestMuxFairRoundRobin(t *testing.T) {
	f := &fakeClient{window: 0} // frozen: everything queues at the channels
	ep := newFakeEndpoint(t, f, Config{QPs: 1, ChannelWindow: 8})

	const nChans, nOps = 3, 9
	owner := map[kv.Key]int{}
	for i := 0; i < nChans; i++ {
		ch, err := ep.OpenChannel()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < nOps; j++ {
			key := kv.FromUint64(uint64(i*1000 + j + 1))
			owner[key] = i
			if err := ch.Get(key, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(f.order) != 0 || ep.Queued() != nChans*nOps {
		t.Fatalf("frozen pool issued %d, queued %d", len(f.order), ep.Queued())
	}
	f.window = 1
	ep.pump()
	for len(f.pending) > 0 {
		f.release()
	}

	if len(f.order) != nChans*nOps {
		t.Fatalf("issued %d ops, want %d", len(f.order), nChans*nOps)
	}
	counts := make([]int, nChans)
	for _, key := range f.order {
		counts[owner[key]]++
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("unfair issue order: prefix counts %v", counts)
		}
	}
	for i, c := range counts {
		if c != nOps {
			t.Fatalf("channel %d issued %d ops total, want %d", i, c, nOps)
		}
	}
}

// TestMuxChannelWindowFlowControl pins the per-channel cap: a channel
// never has more than ChannelWindow ops outstanding on the pool, excess
// queues at the endpoint, and the stall/resume accounting tracks it.
func TestMuxChannelWindowFlowControl(t *testing.T) {
	f := &fakeClient{window: 64}
	ep := newFakeEndpoint(t, f, Config{QPs: 1, ChannelWindow: 2})
	ch, err := ep.OpenChannel()
	if err != nil {
		t.Fatal(err)
	}

	const nOps = 6
	done := 0
	for j := 0; j < nOps; j++ {
		key := kv.FromUint64(uint64(j + 1))
		if err := ch.Get(key, func(kv.Result) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if f.inflight != 2 {
		t.Fatalf("pool sees %d outstanding, want ChannelWindow=2", f.inflight)
	}
	if ch.Queued() != 4 || ep.Queued() != 4 {
		t.Fatalf("backlog = %d/%d, want 4/4", ch.Queued(), ep.Queued())
	}
	if !ch.Stalled() {
		t.Fatal("channel with backlog not marked stalled")
	}
	for i := 0; i < nOps; i++ {
		f.release()
		if f.inflight > 2 {
			t.Fatalf("window violated after release %d: %d outstanding", i, f.inflight)
		}
	}
	if done != nOps || ch.Inflight() != 0 || ch.Stalled() {
		t.Fatalf("after drain: done=%d inflight=%d stalled=%v", done, ch.Inflight(), ch.Stalled())
	}
}

// TestMuxComposesWithShrunkWindow models core's AIMD controller
// shrinking a pooled client mid-flight: the endpoint must respect the
// client's *current* effective window, holding backlog at the channels
// instead of over-issuing.
func TestMuxComposesWithShrunkWindow(t *testing.T) {
	f := &fakeClient{window: 4}
	ep := newFakeEndpoint(t, f, Config{QPs: 1, ChannelWindow: 8})
	ch, err := ep.OpenChannel()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		if err := ch.Get(kv.FromUint64(uint64(j+1)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.inflight != 4 || ch.Queued() != 2 {
		t.Fatalf("before shrink: inflight=%d queued=%d, want 4/2", f.inflight, ch.Queued())
	}

	f.window = 1 // AIMD multiplicative decrease under busy pushback
	f.release()
	if f.inflight != 3 || ch.Queued() != 2 {
		// 3 outstanding >= window 1: nothing new may issue.
		t.Fatalf("after shrink+release: inflight=%d queued=%d, want 3/2", f.inflight, ch.Queued())
	}
	f.release()
	f.release()
	if f.inflight != 1 || ch.Queued() != 2 {
		// Still one op from the original burst in flight == window 1.
		t.Fatalf("draining: inflight=%d queued=%d, want 1/2", f.inflight, ch.Queued())
	}
	f.release() // frees the pool; next op issues on the completion pump
	if f.inflight != 1 || ch.Queued() != 1 {
		t.Fatalf("post-drain issue: inflight=%d queued=%d, want 1/1", f.inflight, ch.Queued())
	}
}

// TestMuxValidationAndLimits covers channel-level validation and the
// endpoint's configuration guard rails.
func TestMuxValidationAndLimits(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 1, 1)
	if _, err := New(cl.Machine(0), nil, Config{}); err == nil {
		t.Fatal("empty pool accepted")
	}

	def := DefaultConfig()
	if def.QPs != 2 || def.ChannelWindow != 4 || def.MaxChannels != 0 {
		t.Fatalf("defaults = %+v", def)
	}

	ep := newFakeEndpoint(t, &fakeClient{window: 4}, Config{MaxChannels: 2})
	if ep.Config().QPs != 2 || ep.Config().ChannelWindow != 4 {
		t.Fatalf("withDefaults not applied: %+v", ep.Config())
	}
	for i := 0; i < 2; i++ {
		if _, err := ep.OpenChannel(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ep.OpenChannel(); err != ErrChannelLimit {
		t.Fatalf("third channel: err = %v, want ErrChannelLimit", err)
	}
	if ep.Channels() != 2 {
		t.Fatalf("Channels() = %d, want 2", ep.Channels())
	}

	ep2 := newFakeEndpoint(t, &fakeClient{window: 4}, Config{})
	ch, err := ep2.OpenChannel()
	if err != nil {
		t.Fatal(err)
	}
	var zero kv.Key
	if err := ch.Get(zero, nil); err != mica.ErrZeroKey {
		t.Fatalf("zero-key GET: %v", err)
	}
	if err := ch.Delete(zero, nil); err != mica.ErrZeroKey {
		t.Fatalf("zero-key DELETE: %v", err)
	}
	if err := ch.Put(zero, []byte("x"), nil); err != mica.ErrZeroKey {
		t.Fatalf("zero-key PUT: %v", err)
	}
	if err := ch.Put(kv.FromUint64(1), nil, nil); err == nil {
		t.Fatal("empty PUT value accepted")
	}
	if err := ch.Put(kv.FromUint64(1), make([]byte, mica.MaxValueSize+1), nil); err != mica.ErrValueTooLarge {
		t.Fatalf("oversize PUT: %v", err)
	}
	if ch.Inflight() != 0 || ep2.Issued() != 0 {
		t.Fatal("rejected ops leaked into accounting")
	}
}

// TestMuxSyncRejection checks that a pooled client rejecting an op
// synchronously resolves it as failed without unbalancing the channel.
func TestMuxSyncRejection(t *testing.T) {
	f := &fakeClient{window: 4, reject: true}
	ep := newFakeEndpoint(t, f, Config{})
	ch, err := ep.OpenChannel()
	if err != nil {
		t.Fatal(err)
	}
	var res kv.Result
	if err := ch.Get(kv.FromUint64(1), func(r kv.Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Status != kv.StatusTimeout {
		t.Fatalf("rejected op resolved as %+v", res)
	}
	if ch.Inflight() != 0 || ch.Failed() != 1 || ep.Failed() != 1 {
		t.Fatalf("accounting after rejection: inflight=%d failed=%d/%d",
			ch.Inflight(), ch.Failed(), ep.Failed())
	}
	// The channel keeps working afterwards.
	if err := ch.Get(kv.FromUint64(2), nil); err != nil {
		t.Fatal(err)
	}
	if f.inflight != 1 {
		t.Fatalf("follow-up op did not issue: inflight=%d", f.inflight)
	}
}

// TestMuxTelemetryAndTraceMarks checks the mux.* metric names from
// docs/OBSERVABILITY.md and the mux.stall / mux.resume trace marks a
// stalled op produces.
func TestMuxTelemetryAndTraceMarks(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 2, 1)
	sink := telemetry.New()
	sink.Tracer = telemetry.NewTracer()
	cl.SetTelemetry(sink)
	srv, err := core.NewServer(cl.Machine(0), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Connect(srv, cl.Machine(1), Config{QPs: 1, ChannelWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ep.OpenChannel()
	if err != nil {
		t.Fatal(err)
	}
	key := kv.FromUint64(7)
	if err := srv.Preload(key, []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Two back-to-back GETs on a window-1 channel: the second stalls.
	ch.Get(key, nil)
	ch.Get(key, nil)
	if got := sink.Registry.Gauge("mux.chan.stalled").Value(); got != 1 {
		t.Fatalf("mux.chan.stalled = %d mid-stall, want 1", got)
	}
	cl.Eng.Run()

	reg := sink.Registry
	if got := reg.Counter("mux.ops.issued").Value(); got != 2 {
		t.Fatalf("mux.ops.issued = %d, want 2", got)
	}
	if got := reg.Counter("mux.ops.completed").Value(); got != 2 {
		t.Fatalf("mux.ops.completed = %d, want 2", got)
	}
	if got := reg.Counter("mux.chan.stalls").Value(); got != 1 {
		t.Fatalf("mux.chan.stalls = %d, want 1", got)
	}
	if got := reg.Counter("mux.chan.resumes").Value(); got != 1 {
		t.Fatalf("mux.chan.resumes = %d, want 1", got)
	}
	if got := reg.Gauge("mux.chan.stalled").Value(); got != 0 {
		t.Fatalf("mux.chan.stalled = %d after drain, want 0", got)
	}
	if got := reg.Gauge("mux.channels").Value(); got != 1 {
		t.Fatalf("mux.channels = %d, want 1", got)
	}
	if got := reg.Gauge("mux.endpoints").Value(); got != 1 {
		t.Fatalf("mux.endpoints = %d, want 1", got)
	}
	if got := reg.Gauge("mux.qps").Value(); got != 1 {
		t.Fatalf("mux.qps = %d, want 1", got)
	}
	if got := reg.Histogram("mux.op.latency").Count(); got != 2 {
		t.Fatalf("mux.op.latency count = %d, want 2", got)
	}

	var sawStall, sawResume bool
	for _, s := range sink.Tracer.SpansSince(0) {
		if strings.HasSuffix(s.Name, "mux.stall") {
			sawStall = true
		}
		if strings.HasSuffix(s.Name, "mux.resume") {
			sawResume = true
		}
	}
	if !sawStall || !sawResume {
		t.Fatalf("trace marks missing: stall=%v resume=%v", sawStall, sawResume)
	}
}
