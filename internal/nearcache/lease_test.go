package nearcache

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/core"
	"herdkv/internal/kv"
	"herdkv/internal/mica"
	"herdkv/internal/sim"
)

// herdOrigin builds a one-server HERD origin with leases and terminal
// retry timeouts, wrapped by a lease-mode near cache.
func herdOrigin(t *testing.T, leaseTTL sim.Time) (*cluster.Cluster, *core.Server, *Cache) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.NS = 2
	cfg.MaxClients = 2
	cfg.Window = 4
	cfg.Mica = mica.Config{IndexBuckets: 1 << 10, BucketSlots: 8, LogBytes: 1 << 20}
	cfg.LeaseTTL = leaseTTL
	cfg.RetryTimeout = 12 * sim.Microsecond
	cl := cluster.New(cluster.Apt(), 2, 1)
	srv, err := core.NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := srv.ConnectClient(cl.Machine(1))
	if err != nil {
		t.Fatal(err)
	}
	nc := New(cli, cl.Eng, cl.Machine(1).Verbs.Telemetry(),
		Config{TTL: 500 * sim.Microsecond, Leases: true})
	return cl, srv, nc
}

// leaseTTL is generous enough that a fill (which completes well inside
// the 12µs retry budget when the fabric is healthy) leaves most of the
// lease unspent, so the tests can place reads on either side of the
// expiry deterministically via RunUntil.
const leaseTTL = 50 * sim.Microsecond

// TestLeaseFlowsThroughRealBackend checks the end-to-end lease path:
// HERD grants on the wire, the near cache derives validity from it.
func TestLeaseFlowsThroughRealBackend(t *testing.T) {
	cl, srv, nc := herdOrigin(t, leaseTTL)
	key := kv.FromUint64(1)
	srv.Preload(key, []byte("from origin"))

	var fill kv.Result
	nc.Get(key, func(r kv.Result) { fill = r })
	cl.Eng.RunUntil(15 * sim.Microsecond)
	if fill.Status != kv.StatusHit || fill.Lease <= 0 {
		t.Fatalf("fill = %+v, want leased hit", fill)
	}
	if fill.Lease <= cl.Eng.Now() {
		t.Fatalf("lease %v already expired at %v", fill.Lease, cl.Eng.Now())
	}

	// Within the lease: local, no wire traffic.
	gets0, _, _ := srv.Stats()
	var cached kv.Result
	nc.Get(key, func(r kv.Result) { cached = r })
	cl.Eng.RunUntil(20 * sim.Microsecond)
	gets1, _, _ := srv.Stats()
	if cached.Status != kv.StatusHit || !bytes.Equal(cached.Value, []byte("from origin")) {
		t.Fatalf("cached read = %+v", cached)
	}
	if gets1 != gets0 {
		t.Fatal("read within the lease still hit the origin")
	}

	// Past the lease (but well within the 500µs TTL cap): refetch.
	cl.Eng.RunUntil(fill.Lease + sim.Microsecond)
	var refetched kv.Result
	nc.Get(key, func(r kv.Result) { refetched = r })
	cl.Eng.RunFor(15 * sim.Microsecond)
	gets2, _, _ := srv.Stats()
	if refetched.Status != kv.StatusHit {
		t.Fatalf("refetch = %+v", refetched)
	}
	if gets2 == gets1 {
		t.Fatal("read past the lease was served locally")
	}
}

// TestCrashedOriginNeverServesStalePastLease is the staleness
// regression the lease contract promises: after the origin shard
// crashes (wiping its DRAM store), a cached value may be served only
// until its lease expires — a read past expiry must fail or miss, and
// must never resurrect the dead shard's value.
func TestCrashedOriginNeverServesStalePastLease(t *testing.T) {
	cl, srv, nc := herdOrigin(t, leaseTTL)
	key := kv.FromUint64(2)
	srv.Preload(key, []byte("precious"))

	var fill kv.Result
	nc.Get(key, func(r kv.Result) { fill = r })
	cl.Eng.RunUntil(15 * sim.Microsecond)
	if fill.Status != kv.StatusHit || fill.Lease <= cl.Eng.Now() {
		t.Fatalf("warmup fill = %+v at %v", fill, cl.Eng.Now())
	}

	srv.Crash()

	// The lease still holds: the cache may (and does) serve the last
	// value — that bounded staleness is the contract's explicit
	// allowance, and keeps hot keys readable through an origin blip.
	var before kv.Result
	nc.Get(key, func(r kv.Result) { before = r })
	cl.Eng.RunUntil(20 * sim.Microsecond)
	if before.Status != kv.StatusHit || !bytes.Equal(before.Value, []byte("precious")) {
		t.Fatalf("read within lease = %+v, want the cached value", before)
	}

	// Past the lease expiry the cache must go back to the origin, which
	// is dead: the read fails terminally instead of serving stale.
	cl.Eng.RunUntil(fill.Lease + sim.Microsecond)
	var after kv.Result
	nc.Get(key, func(r kv.Result) { after = r })
	cl.Eng.Run()
	if after.Status == kv.StatusHit {
		t.Fatalf("read past lease served a stale value from a crashed origin: %+v", after)
	}
	if after.Err == nil {
		t.Fatalf("read past lease resolved cleanly (%+v) with the origin down", after)
	}
}
