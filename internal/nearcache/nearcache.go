// Package nearcache is a client-side near cache: a kv.KV that wraps
// any other kv.KV (a HERD client, the sharded or fleet deployments, a
// mux channel) and serves recently read values from client memory, so
// a Zipf-skewed read mix stops crossing the wire for its hottest keys.
//
// Freshness is a *bounded-staleness* contract, not linearizability:
//
//   - In TTL mode every cached value expires Config.TTL after it was
//     fetched.
//   - In lease mode (Config.Leases) the origin server grants an
//     explicit expiry with each GET hit (core.Config.LeaseTTL, carried
//     in kv.Result.Lease) and the cache honors whichever of lease and
//     TTL comes first. The server keeps no per-lease state: a write is
//     never blocked by an outstanding lease, so a concurrent writer's
//     update becomes visible to a cached reader at worst when the
//     lease runs out.
//   - Writes through the wrapper invalidate the local entry at submit
//     time and mark any in-flight fill stale, so a client never serves
//     its *own* writes stale.
//
// Misses run under promise-based thundering-herd suppression (the
// justcache 202/409 protocol, adapted to an async client): the first
// client to miss a key issues the origin fetch and becomes the filler;
// concurrent missers park on the in-flight promise and share its
// result instead of dog-piling the origin shard. A parked waiter that
// outlives Config.HerdWait gives up on the promise and fetches
// directly, bounding the damage of a slow or crashed filler.
//
// See docs/CACHING.md for the full contract and the cache.* metric
// rows in docs/OBSERVABILITY.md.
package nearcache

import (
	"container/list"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// HitLatency is the modeled cost of serving a GET from the near cache:
// a local hash lookup and value copy, no PCIe and no wire. Cached hits
// are still delivered asynchronously on the engine — callers observe
// the same callback discipline as every other backend, just ~40x
// faster than a one-RTT remote GET.
const HitLatency = 100 * sim.Nanosecond

// Config parameterizes a near cache.
type Config struct {
	// TTL bounds how long a fetched value may be served locally. In
	// lease mode it acts as a cap on top of the server's lease. The
	// default is 25µs (virtual time).
	TTL sim.Time
	// Leases selects lease mode: entries expire at the server-granted
	// lease instant (kv.Result.Lease) when the backend provides one,
	// still capped by TTL. Results carrying no lease fall back to
	// plain TTL validity.
	Leases bool
	// Capacity bounds resident entries; the least recently used entry
	// is evicted first. The default is 1024.
	Capacity int
	// HerdWait bounds how long a misser stays parked on another
	// client's in-flight fill before giving up and fetching directly.
	// The default is 4x TTL; negative disables the bound.
	HerdWait sim.Time
}

// DefaultConfig returns the default near-cache parameters.
func DefaultConfig() Config { return Config{TTL: 25 * sim.Microsecond, Capacity: 1024} }

// setDefaults normalizes a user config in place.
func (c *Config) setDefaults() {
	if c.TTL <= 0 {
		c.TTL = 25 * sim.Microsecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.HerdWait == 0 {
		c.HerdWait = 4 * c.TTL
	}
}

// entry is one resident value.
type entry struct {
	key     kv.Key
	value   []byte
	expires sim.Time      // absolute virtual-time validity bound
	elem    *list.Element // position in the LRU list
}

// waiter is one caller parked on an in-flight fill (the filler itself
// is the first waiter).
type waiter struct {
	cb     func(kv.Result)
	start  sim.Time
	served bool // delivered, or detached after HerdWait
}

// fill is the in-flight promise for one missed key.
type fill struct {
	waiters []*waiter
	stale   bool // a write raced the fill; don't cache its result
}

// Cache is the near cache. It implements kv.KV and kv.BatchGetter.
// Like every client in this tree it is single-goroutine: all calls and
// callbacks run on the simulation engine.
type Cache struct {
	inner kv.KV
	clk   sim.Clock
	cfg   Config

	entries map[kv.Key]*entry
	lru     *list.List // front = most recently used
	fills   map[kv.Key]*fill

	inflight  int
	issued    uint64
	completed uint64
	failed    uint64

	telHits       *telemetry.Counter
	telMisses     *telemetry.Counter
	telExpired    *telemetry.Counter
	telFillsDone  *telemetry.Counter
	telHerdWaits  *telemetry.Counter
	telHerdAbort  *telemetry.Counter
	telInvalidate *telemetry.Counter
	telEvictions  *telemetry.Counter
	telSize       *telemetry.Gauge
}

var (
	_ kv.KV          = (*Cache)(nil)
	_ kv.BatchGetter = (*Cache)(nil)
)

// New wraps inner with a near cache. clk is the deployment's virtual
// clock (the cluster engine); tel may be nil.
func New(inner kv.KV, clk sim.Clock, tel *telemetry.Sink, cfg Config) *Cache {
	cfg.setDefaults()
	c := &Cache{
		inner:   inner,
		clk:     clk,
		cfg:     cfg,
		entries: make(map[kv.Key]*entry),
		lru:     list.New(),
		fills:   make(map[kv.Key]*fill),
	}
	c.telHits = tel.Counter("cache.hits")
	c.telMisses = tel.Counter("cache.misses")
	c.telExpired = tel.Counter("cache.lease.expired")
	c.telFillsDone = tel.Counter("cache.fills")
	c.telHerdWaits = tel.Counter("cache.herd.waits")
	c.telHerdAbort = tel.Counter("cache.herd.aborts")
	c.telInvalidate = tel.Counter("cache.invalidations")
	c.telEvictions = tel.Counter("cache.evictions")
	c.telSize = tel.Gauge("cache.size")
	return c
}

// Len reports the number of resident entries.
func (c *Cache) Len() int { return len(c.entries) }

// Inflight returns the number of unresolved operations.
func (c *Cache) Inflight() int { return c.inflight }

// Issued counts operations accepted by the wrapper (cached hits
// included — they are served operations, they just never reach inner).
func (c *Cache) Issued() uint64 { return c.issued }

// Completed counts operations resolved with a served response.
func (c *Cache) Completed() uint64 { return c.completed }

// Failed counts operations that resolved terminally unserved.
func (c *Cache) Failed() uint64 { return c.failed }

// deliver resolves one operation: counters, then the callback.
func (c *Cache) deliver(r kv.Result, cb func(kv.Result)) {
	c.inflight--
	if r.Err != nil {
		c.failed++
	} else {
		c.completed++
	}
	if cb != nil {
		cb(r)
	}
}

// lookup returns the resident, still-valid entry for key, expiring a
// stale one on the way.
func (c *Cache) lookup(key kv.Key) *entry {
	e := c.entries[key]
	if e == nil {
		return nil
	}
	if c.clk.Now() >= e.expires {
		// Lazy expiry: the lease (or TTL) ran out before anyone evicted
		// the entry; drop it and treat the read as a miss.
		c.telExpired.Inc()
		c.remove(e)
		return nil
	}
	c.lru.MoveToFront(e.elem)
	return e
}

// remove drops a resident entry.
func (c *Cache) remove(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.telSize.Set(int64(len(c.entries)))
}

// insert populates key after a successful fill, evicting LRU entries
// past capacity.
func (c *Cache) insert(key kv.Key, value []byte, expires sim.Time) {
	if expires <= c.clk.Now() {
		return // already dead on arrival (e.g. a zero lease in lease mode)
	}
	if e := c.entries[key]; e != nil {
		e.value = append(e.value[:0], value...)
		e.expires = expires
		c.lru.MoveToFront(e.elem)
		c.telFillsDone.Inc()
		return
	}
	for len(c.entries) >= c.cfg.Capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.telEvictions.Inc()
		c.remove(oldest.Value.(*entry))
	}
	e := &entry{key: key, value: append([]byte(nil), value...), expires: expires}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.telFillsDone.Inc()
	c.telSize.Set(int64(len(c.entries)))
}

// validity derives the cache expiry a fill result earns: TTL from now,
// tightened to the server's lease in lease mode.
func (c *Cache) validity(r kv.Result) sim.Time {
	exp := c.clk.Now() + c.cfg.TTL
	if c.cfg.Leases && r.Lease > 0 && r.Lease < exp {
		exp = r.Lease
	}
	return exp
}

// hitResult builds the Result a cached read serves. The value is
// copied out of the entry — callers own their Result.Value, and the
// resident copy must survive caller mutation.
func (c *Cache) hitResult(e *entry) kv.Result {
	return kv.Result{
		Key:     e.key,
		IsGet:   true,
		Status:  kv.StatusHit,
		Value:   append([]byte(nil), e.value...),
		Latency: HitLatency,
		Lease:   e.expires,
	}
}

// Get serves key from the near cache when resident and valid; a miss
// joins (or creates) the key's in-flight fill.
func (c *Cache) Get(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	if e := c.lookup(key); e != nil {
		c.telHits.Inc()
		c.issued++
		c.inflight++
		res := c.hitResult(e)
		c.clk.After(HitLatency, func() { c.deliver(res, cb) })
		return nil
	}
	return c.joinFill(key, cb)
}

// joinFill parks cb on key's in-flight fill, creating the fill (and
// issuing the origin fetch) when none is pending.
func (c *Cache) joinFill(key kv.Key, cb func(kv.Result)) error {
	w := &waiter{cb: cb, start: c.clk.Now()}
	if f := c.fills[key]; f != nil {
		// Herd suppressed: share the promise already in flight.
		c.telHerdWaits.Inc()
		c.issued++
		c.inflight++
		f.waiters = append(f.waiters, w)
		c.armHerdWait(key, w)
		return nil
	}
	f := &fill{waiters: []*waiter{w}}
	err := c.inner.Get(key, func(r kv.Result) { c.resolveFill(key, f, r) })
	if err != nil {
		return err
	}
	c.telMisses.Inc()
	c.issued++
	c.inflight++
	c.fills[key] = f
	return nil
}

// resolveFill completes a promise: populate the cache (unless a write
// raced the fill) and deliver the shared result to every parked waiter.
func (c *Cache) resolveFill(key kv.Key, f *fill, r kv.Result) {
	if c.fills[key] == f {
		delete(c.fills, key)
	}
	if !f.stale && r.Status == kv.StatusHit {
		c.insert(key, r.Value, c.validity(r))
	}
	now := c.clk.Now()
	for _, w := range f.waiters {
		if w.served {
			continue
		}
		w.served = true
		wr := r
		wr.Latency = now - w.start
		c.deliver(wr, w.cb)
	}
}

// armHerdWait bounds a parked waiter's patience: if the promise has
// not resolved within HerdWait, the waiter detaches and fetches
// directly (the filler may be wedged behind a crashed shard).
func (c *Cache) armHerdWait(key kv.Key, w *waiter) {
	if c.cfg.HerdWait < 0 {
		return
	}
	c.clk.After(c.cfg.HerdWait, func() {
		if w.served {
			return
		}
		w.served = true
		c.telHerdAbort.Inc()
		err := c.inner.Get(key, func(r kv.Result) {
			r.Latency = c.clk.Now() - w.start
			c.deliver(r, w.cb)
		})
		if err != nil {
			// The inner client rejected the direct fetch synchronously
			// (it cannot: the key was already validated) — fail the op
			// rather than strand it.
			c.deliver(kv.Result{Key: key, IsGet: true, Status: kv.StatusTimeout, Err: err}, w.cb)
		}
	})
}

// invalidate drops key locally and marks any in-flight fill stale, so
// a write submitted through this wrapper is never shadowed by its own
// cache. Remote writers stay invisible until lease/TTL expiry — that
// is the bounded-staleness contract.
func (c *Cache) invalidate(key kv.Key) {
	dropped := false
	if e := c.entries[key]; e != nil {
		c.remove(e)
		dropped = true
	}
	if f := c.fills[key]; f != nil && !f.stale {
		f.stale = true
		dropped = true
	}
	if dropped {
		c.telInvalidate.Inc()
	}
}

// Put writes through to the origin, invalidating the local entry at
// submit time.
func (c *Cache) Put(key kv.Key, value []byte, cb func(kv.Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	err := c.inner.Put(key, value, func(r kv.Result) { c.deliver(r, cb) })
	if err != nil {
		return err
	}
	c.invalidate(key)
	c.issued++
	c.inflight++
	return nil
}

// Delete writes through to the origin, invalidating the local entry at
// submit time.
func (c *Cache) Delete(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	err := c.inner.Delete(key, func(r kv.Result) { c.deliver(r, cb) })
	if err != nil {
		return err
	}
	c.invalidate(key)
	c.issued++
	c.inflight++
	return nil
}

// MultiGet answers resident keys locally and fetches the remainder in
// one batch: when inner implements kv.BatchGetter (the fleet client
// groups keys per primary shard) the remainder rides a single inner
// MultiGet; otherwise each missing key fetches individually. Remainder
// keys register promises like single-key misses, so concurrent Gets
// park on the batch instead of re-fetching. cb receives one Result per
// requested key, in request order; duplicates share one fetch.
func (c *Cache) MultiGet(keys []kv.Key, cb func([]kv.Result)) error {
	for _, k := range keys {
		if k.IsZero() {
			return kv.ErrZeroKey
		}
	}
	results := make([]kv.Result, len(keys))
	if len(keys) == 0 {
		if cb != nil {
			cb(results)
		}
		return nil
	}
	// Duplicate keys resolve once; the shared result lands in every
	// position that asked (same discipline as the fleet client).
	pos := make(map[kv.Key][]int)
	uniq := make([]kv.Key, 0, len(keys))
	for i, k := range keys {
		if _, dup := pos[k]; !dup {
			uniq = append(uniq, k)
		}
		pos[k] = append(pos[k], i)
	}
	remaining := len(uniq)
	resolve := func(k kv.Key, r kv.Result) {
		for _, idx := range pos[k] {
			results[idx] = r
		}
		if remaining--; remaining == 0 && cb != nil {
			cb(results)
		}
	}
	// Keys the batch must actually fetch (not resident, no fill in
	// flight), discovered before issuing anything so the batch is one
	// decision, not len(uniq) racing ones.
	var fetch []kv.Key
	fetchFills := make(map[kv.Key]*fill)
	for _, k := range uniq {
		k := k
		if e := c.lookup(k); e != nil {
			c.telHits.Inc()
			c.issued++
			c.inflight++
			res := c.hitResult(e)
			c.clk.After(HitLatency, func() { c.deliver(res, func(r kv.Result) { resolve(k, r) }) })
			continue
		}
		w := &waiter{cb: func(r kv.Result) { resolve(k, r) }, start: c.clk.Now()}
		if f := c.fills[k]; f != nil {
			c.telHerdWaits.Inc()
			c.issued++
			c.inflight++
			f.waiters = append(f.waiters, w)
			c.armHerdWait(k, w)
			continue
		}
		f := &fill{waiters: []*waiter{w}}
		fetchFills[k] = f
		fetch = append(fetch, k)
	}
	if len(fetch) == 0 {
		return nil
	}
	if bg, ok := c.inner.(kv.BatchGetter); ok {
		err := bg.MultiGet(fetch, func(rs []kv.Result) {
			for i, k := range fetch {
				c.resolveFill(k, fetchFills[k], rs[i])
			}
		})
		if err != nil {
			return err
		}
		for _, k := range fetch {
			c.telMisses.Inc()
			c.issued++
			c.inflight++
			c.fills[k] = fetchFills[k]
		}
		return nil
	}
	for _, k := range fetch {
		k, f := k, fetchFills[k]
		if err := c.inner.Get(k, func(r kv.Result) { c.resolveFill(k, f, r) }); err != nil {
			return err
		}
		c.telMisses.Inc()
		c.issued++
		c.inflight++
		c.fills[k] = f
	}
	return nil
}
