package nearcache

import (
	"bytes"
	"testing"

	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// fakeKV is a scriptable origin: a map served after a fixed latency,
// with optional lease grants and a hang count for wedging fills.
type fakeKV struct {
	eng     *sim.Engine
	store   map[kv.Key][]byte
	latency sim.Time
	lease   sim.Time // when > 0, GET hits carry a lease of this TTL
	hang    int      // this many upcoming GETs never resolve
	batched bool     // implement MultiGet when true

	gets, multigets int
	issued          uint64
	completed       uint64
	inflight        int
}

func newFake(eng *sim.Engine) *fakeKV {
	return &fakeKV{eng: eng, store: make(map[kv.Key][]byte), latency: 5 * sim.Microsecond}
}

func (f *fakeKV) get(key kv.Key) kv.Result {
	r := kv.Result{Key: key, IsGet: true, Status: kv.StatusMiss, Latency: f.latency}
	if v, ok := f.store[key]; ok {
		r.Status = kv.StatusHit
		r.Value = append([]byte(nil), v...)
		if f.lease > 0 {
			r.Lease = f.eng.Now() + f.latency + f.lease
		}
	}
	return r
}

func (f *fakeKV) Get(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	f.gets++
	f.issued++
	f.inflight++
	if f.hang > 0 {
		f.hang--
		return nil // wedged: never resolves, like a crashed shard with no retries
	}
	f.eng.After(f.latency, func() {
		f.inflight--
		f.completed++
		if cb != nil {
			cb(f.get(key))
		}
	})
	return nil
}

func (f *fakeKV) Put(key kv.Key, value []byte, cb func(kv.Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	f.issued++
	f.inflight++
	v := append([]byte(nil), value...)
	f.eng.After(f.latency, func() {
		f.store[key] = v
		f.inflight--
		f.completed++
		if cb != nil {
			cb(kv.Result{Key: key, Status: kv.StatusHit, Latency: f.latency})
		}
	})
	return nil
}

func (f *fakeKV) Delete(key kv.Key, cb func(kv.Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	f.issued++
	f.inflight++
	f.eng.After(f.latency, func() {
		st := kv.StatusMiss
		if _, ok := f.store[key]; ok {
			st = kv.StatusHit
			delete(f.store, key)
		}
		f.inflight--
		f.completed++
		if cb != nil {
			cb(kv.Result{Key: key, Status: st, Latency: f.latency})
		}
	})
	return nil
}

func (f *fakeKV) Inflight() int     { return f.inflight }
func (f *fakeKV) Issued() uint64    { return f.issued }
func (f *fakeKV) Completed() uint64 { return f.completed }
func (f *fakeKV) Failed() uint64    { return 0 }

// batchFake adds MultiGet so the batch-delegation path is reachable.
type batchFake struct{ *fakeKV }

func (f batchFake) MultiGet(keys []kv.Key, cb func([]kv.Result)) error {
	f.multigets++
	f.fakeKV.multigets = f.multigets
	results := make([]kv.Result, len(keys))
	f.issued += uint64(len(keys))
	f.inflight += len(keys)
	f.eng.After(f.latency, func() {
		for i, k := range keys {
			results[i] = f.get(k)
		}
		f.inflight -= len(keys)
		f.completed += uint64(len(keys))
		if cb != nil {
			cb(results)
		}
	})
	return nil
}

func k(n uint64) kv.Key { return kv.FromUint64(n) }

func TestCachedHitServedLocally(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(1)] = []byte("hot value")
	c := New(f, eng, nil, Config{TTL: 50 * sim.Microsecond})

	var first, second kv.Result
	c.Get(k(1), func(r kv.Result) { first = r })
	eng.Run()
	c.Get(k(1), func(r kv.Result) { second = r })
	eng.Run()

	if first.Status != kv.StatusHit || second.Status != kv.StatusHit {
		t.Fatalf("statuses %v / %v, want hits", first.Status, second.Status)
	}
	if !bytes.Equal(second.Value, []byte("hot value")) {
		t.Fatalf("cached value %q", second.Value)
	}
	if f.gets != 1 {
		t.Fatalf("origin saw %d GETs, want 1 (second served locally)", f.gets)
	}
	if second.Latency != HitLatency {
		t.Fatalf("cached hit latency %v, want %v", second.Latency, HitLatency)
	}
	if second.Lease <= 0 {
		t.Fatal("cached hit should propagate its remaining validity as Lease")
	}
	// The caller must own its value: mutating it cannot poison the cache.
	second.Value[0] = 'X'
	var third kv.Result
	c.Get(k(1), func(r kv.Result) { third = r })
	eng.Run()
	if !bytes.Equal(third.Value, []byte("hot value")) {
		t.Fatalf("cache poisoned by caller mutation: %q", third.Value)
	}
}

func TestCounterInvariantsUnderCachedHits(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(1)] = []byte("v")
	c := New(f, eng, nil, Config{TTL: sim.Second})

	const n = 20
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		if err := c.Get(k(1), func(kv.Result) { counts[i]++ }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	for i, got := range counts {
		if got != 1 {
			t.Fatalf("callback %d ran %d times", i, got)
		}
	}
	if c.Issued() != n || c.Completed() != n || c.Failed() != 0 {
		t.Fatalf("issued/completed/failed = %d/%d/%d, want %d/%d/0",
			c.Issued(), c.Completed(), c.Failed(), n, n)
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", c.Inflight())
	}
	if f.gets != 1 {
		t.Fatalf("origin GETs = %d, want 1", f.gets)
	}
}

func TestHerdSuppression(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(7)] = []byte("cold then hot")
	tel := telemetry.New()
	c := New(f, eng, tel, Config{TTL: sim.Second})

	const herd = 6
	served := 0
	for i := 0; i < herd; i++ {
		if err := c.Get(k(7), func(r kv.Result) {
			if r.Status != kv.StatusHit || !bytes.Equal(r.Value, []byte("cold then hot")) {
				t.Errorf("herd member got %+v", r)
			}
			served++
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if served != herd {
		t.Fatalf("served %d of %d", served, herd)
	}
	if f.gets != 1 {
		t.Fatalf("origin saw %d GETs, want 1 (herd suppressed)", f.gets)
	}
	if got := tel.Counter("cache.herd.waits").Value(); got != herd-1 {
		t.Fatalf("herd.waits = %d, want %d", got, herd-1)
	}
}

func TestWriteThroughInvalidates(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(3)] = []byte("old")
	c := New(f, eng, nil, Config{TTL: sim.Second})

	c.Get(k(3), nil)
	eng.Run()
	c.Put(k(3), []byte("new"), nil)
	eng.Run()
	var got kv.Result
	c.Get(k(3), func(r kv.Result) { got = r })
	eng.Run()

	if string(got.Value) != "new" {
		t.Fatalf("read-your-writes violated: %q", got.Value)
	}
	if f.gets != 2 {
		t.Fatalf("origin GETs = %d, want 2 (invalidated entry refetched)", f.gets)
	}
}

func TestRacingFillNotCached(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(4)] = []byte("pre-write")
	c := New(f, eng, nil, Config{TTL: sim.Second})

	// Fill in flight when the write submits: its (pre-write) result
	// must not populate the cache.
	c.Get(k(4), nil)
	c.Put(k(4), []byte("post-write"), nil)
	eng.Run()

	var got kv.Result
	c.Get(k(4), func(r kv.Result) { got = r })
	eng.Run()
	if string(got.Value) != "post-write" {
		t.Fatalf("stale fill cached across a write: %q", got.Value)
	}
}

func TestTTLExpiry(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(5)] = []byte("v")
	c := New(f, eng, nil, Config{TTL: 20 * sim.Microsecond})

	c.Get(k(5), nil)
	eng.Run()
	// Within TTL: local. Past TTL: refetch.
	eng.After(10*sim.Microsecond, func() { c.Get(k(5), nil) })
	eng.After(40*sim.Microsecond, func() { c.Get(k(5), nil) })
	eng.Run()
	if f.gets != 2 {
		t.Fatalf("origin GETs = %d, want 2 (one fill, one refetch after expiry)", f.gets)
	}
}

func TestLeaseCapsTTL(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(6)] = []byte("v")
	f.lease = 8 * sim.Microsecond // server grants 8µs, TTL allows 100µs
	c := New(f, eng, nil, Config{TTL: 100 * sim.Microsecond, Leases: true})

	c.Get(k(6), nil)
	eng.Run()
	eng.After(20*sim.Microsecond, func() { c.Get(k(6), nil) })
	eng.Run()
	if f.gets != 2 {
		t.Fatalf("origin GETs = %d, want 2 (lease expired before TTL)", f.gets)
	}
}

func TestLRUEviction(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	for i := uint64(1); i <= 3; i++ {
		f.store[k(i)] = []byte{byte(i)}
	}
	c := New(f, eng, nil, Config{TTL: sim.Second, Capacity: 2})

	for i := uint64(1); i <= 3; i++ {
		c.Get(k(i), nil)
		eng.Run()
	}
	if c.Len() != 2 {
		t.Fatalf("resident = %d, want 2", c.Len())
	}
	// Key 1 was least recently used: reading it again refetches, while
	// keys 2 and 3 stay local.
	before := f.gets
	c.Get(k(2), nil)
	c.Get(k(3), nil)
	eng.Run()
	if f.gets != before {
		t.Fatal("recent keys were evicted")
	}
	c.Get(k(1), nil)
	eng.Run()
	if f.gets != before+1 {
		t.Fatal("LRU key survived eviction")
	}
}

func TestHerdWaitAbort(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(8)] = []byte("eventually")
	f.hang = 1 // the filler's fetch wedges forever
	c := New(f, eng, nil, Config{TTL: sim.Second, HerdWait: 15 * sim.Microsecond})

	fillerServed, waiterServed := false, false
	c.Get(k(8), func(kv.Result) { fillerServed = true })
	c.Get(k(8), func(r kv.Result) {
		if r.Status != kv.StatusHit {
			t.Errorf("aborting waiter got %v", r.Status)
		}
		waiterServed = true
	})
	eng.Run()

	if fillerServed {
		t.Fatal("wedged fill resolved somehow")
	}
	if !waiterServed {
		t.Fatal("parked waiter never escaped the wedged fill")
	}
	if f.gets != 2 {
		t.Fatalf("origin GETs = %d, want 2 (wedged fill + direct fetch)", f.gets)
	}
}

func TestMultiGetMixesLocalAndBatch(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.batched = true
	for i := uint64(1); i <= 4; i++ {
		f.store[k(i)] = []byte{byte(i)}
	}
	c := New(batchFake{f}, eng, nil, Config{TTL: sim.Second})

	// Warm keys 1 and 2.
	c.Get(k(1), nil)
	c.Get(k(2), nil)
	eng.Run()

	keys := []kv.Key{k(1), k(3), k(2), k(4), k(99), k(3)}
	var got []kv.Result
	if err := c.MultiGet(keys, func(rs []kv.Result) { got = rs }); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if got == nil {
		t.Fatal("MultiGet callback never ran")
	}
	for i, want := range []kv.Status{kv.StatusHit, kv.StatusHit, kv.StatusHit, kv.StatusHit, kv.StatusMiss, kv.StatusHit} {
		if got[i].Status != want {
			t.Fatalf("slot %d status %v, want %v", i, got[i].Status, want)
		}
	}
	if !bytes.Equal(got[1].Value, []byte{3}) || !bytes.Equal(got[5].Value, []byte{3}) {
		t.Fatal("duplicate slots disagree")
	}
	if f.multigets != 1 {
		t.Fatalf("inner MultiGets = %d, want 1 (remainder batched)", f.multigets)
	}
	if f.gets != 2 {
		t.Fatalf("inner GETs = %d, want only the 2 warmup fetches", f.gets)
	}
	// The batch populated the cache: everything is now local.
	before := f.multigets
	c.MultiGet([]kv.Key{k(3), k(4)}, nil)
	eng.Run()
	if f.multigets != before {
		t.Fatal("fully resident MultiGet still went to the origin")
	}
}

func TestMultiGetFallsBackToGets(t *testing.T) {
	eng := sim.New()
	f := newFake(eng) // no BatchGetter
	f.store[k(1)] = []byte("a")
	f.store[k(2)] = []byte("b")
	c := New(f, eng, nil, Config{TTL: sim.Second})

	var got []kv.Result
	if err := c.MultiGet([]kv.Key{k(1), k(2)}, func(rs []kv.Result) { got = rs }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 2 || got[0].Status != kv.StatusHit || got[1].Status != kv.StatusHit {
		t.Fatalf("fallback MultiGet results %+v", got)
	}
	if f.gets != 2 {
		t.Fatalf("inner GETs = %d, want 2", f.gets)
	}
}

func TestMultiGetParksOnInflightFill(t *testing.T) {
	eng := sim.New()
	f := newFake(eng)
	f.store[k(9)] = []byte("shared")
	c := New(f, eng, nil, Config{TTL: sim.Second})

	var single, batch kv.Result
	c.Get(k(9), func(r kv.Result) { single = r })
	if err := c.MultiGet([]kv.Key{k(9)}, func(rs []kv.Result) { batch = rs[0] }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if single.Status != kv.StatusHit || batch.Status != kv.StatusHit {
		t.Fatalf("statuses %v / %v", single.Status, batch.Status)
	}
	if f.gets != 1 {
		t.Fatalf("origin GETs = %d, want 1 (batch parked on the single fill)", f.gets)
	}
}

func TestZeroKeyRejectedEverywhere(t *testing.T) {
	eng := sim.New()
	c := New(newFake(eng), eng, nil, Config{})
	var zero kv.Key
	if c.Get(zero, nil) == nil || c.Put(zero, []byte("v"), nil) == nil ||
		c.Delete(zero, nil) == nil || c.MultiGet([]kv.Key{k(1), zero}, nil) == nil {
		t.Fatal("zero key accepted")
	}
	if c.Issued() != 0 {
		t.Fatalf("rejected ops counted as issued (%d)", c.Issued())
	}
}
