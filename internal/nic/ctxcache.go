package nic

import "container/list"

// ContextCache is an LRU cache of queue-pair contexts, modeling the
// RNIC's small on-chip SRAM (Section 3.3). Each verb posted on (or
// arriving for) a QP must have that QP's context on chip; a miss forces a
// PCIe fetch from host memory.
//
// Requester-side send contexts are large (WQE scheduling state), so few
// fit; responder-side receive contexts are small, so many more fit —
// which is exactly why inbound WRITEs scale to hundreds of clients while
// outbound WRITEs collapse (Figure 6).
type ContextCache struct {
	cap    int
	ll     *list.List
	byKey  map[uint64]*list.Element
	hits   uint64
	misses uint64
}

// NewContextCache returns a cache holding up to capacity contexts.
// A capacity <= 0 means unbounded (never misses after first touch).
func NewContextCache(capacity int) *ContextCache {
	return &ContextCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[uint64]*list.Element),
	}
}

// Touch records an access to the context for key and reports whether it
// was resident (true = hit). On a miss the context is fetched and the
// least recently used entry evicted if the cache is full.
func (c *ContextCache) Touch(key uint64) bool {
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	if c.cap > 0 && c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(uint64))
	}
	c.byKey[key] = c.ll.PushFront(key)
	return false
}

// Len returns the number of resident contexts.
func (c *ContextCache) Len() int { return c.ll.Len() }

// Hits and Misses report access statistics.
func (c *ContextCache) Hits() uint64   { return c.hits }
func (c *ContextCache) Misses() uint64 { return c.misses }

// HitRate returns hits / accesses, or 1 if there were no accesses.
func (c *ContextCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 1
	}
	return float64(c.hits) / float64(total)
}
