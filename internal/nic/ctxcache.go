package nic

import "container/list"

// ContextCache is an LRU cache of queue-pair contexts, modeling the
// RNIC's small on-chip SRAM (Section 3.3). Each verb posted on (or
// arriving for) a QP must have that QP's context on chip; a miss forces a
// PCIe fetch from host memory.
//
// Requester-side send contexts are large (WQE scheduling state), so few
// fit; responder-side receive contexts are small, so many more fit —
// which is exactly why inbound WRITEs scale to hundreds of clients while
// outbound WRITEs collapse (Figure 6). The same cache is the mechanism
// behind Figure 12's client-scaling cliff: past RecvCtxCap concurrently
// active client QPs, every arrival misses (docs/SCALABILITY.md).
type ContextCache struct {
	cap       int
	ll        *list.List
	byKey     map[uint64]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64

	// Per-key accounting: which QP contexts are thrashing. Keys are the
	// same global QP keys callers pass to Touch.
	missByKey  map[uint64]uint64
	evictByKey map[uint64]uint64

	// onEvict (optional) observes each eviction's victim key; the NIC
	// hangs telemetry on it.
	onEvict func(victim uint64)
}

// NewContextCache returns a cache holding up to capacity contexts.
// A capacity <= 0 means unbounded (never misses after first touch).
func NewContextCache(capacity int) *ContextCache {
	return &ContextCache{
		cap:        capacity,
		ll:         list.New(),
		byKey:      make(map[uint64]*list.Element),
		missByKey:  make(map[uint64]uint64),
		evictByKey: make(map[uint64]uint64),
	}
}

// OnEvict registers fn to run with each eviction's victim key.
func (c *ContextCache) OnEvict(fn func(victim uint64)) { c.onEvict = fn }

// Touch records an access to the context for key and reports whether it
// was resident (true = hit). On a miss the context is fetched and the
// least recently used entry evicted if the cache is full.
func (c *ContextCache) Touch(key uint64) bool {
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	c.missByKey[key]++
	if c.cap > 0 && c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		victim := oldest.Value.(uint64)
		delete(c.byKey, victim)
		c.evictions++
		c.evictByKey[victim]++
		if c.onEvict != nil {
			c.onEvict(victim)
		}
	}
	c.byKey[key] = c.ll.PushFront(key)
	return false
}

// Len returns the number of resident contexts.
func (c *ContextCache) Len() int { return c.ll.Len() }

// Resident reports whether key's context is currently on chip, without
// recording an access.
func (c *ContextCache) Resident(key uint64) bool {
	_, ok := c.byKey[key]
	return ok
}

// Hits and Misses report access statistics.
func (c *ContextCache) Hits() uint64   { return c.hits }
func (c *ContextCache) Misses() uint64 { return c.misses }

// Evictions reports how many resident contexts were displaced to make
// room for missing ones.
func (c *ContextCache) Evictions() uint64 { return c.evictions }

// MissesFor reports how many accesses to key's context missed.
func (c *ContextCache) MissesFor(key uint64) uint64 { return c.missByKey[key] }

// EvictionsFor reports how many times key's context was the LRU victim.
func (c *ContextCache) EvictionsFor(key uint64) uint64 { return c.evictByKey[key] }

// HitRate returns hits / accesses, or 1 if there were no accesses.
func (c *ContextCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 1
	}
	return float64(c.hits) / float64(total)
}
