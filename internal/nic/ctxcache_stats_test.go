package nic

import (
	"testing"

	"herdkv/internal/pcie"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wire"
)

// TestEvictionOrderAndCounts pins the LRU eviction order and the per-key
// miss/evict accounting the clients-sweep experiment reads.
func TestEvictionOrderAndCounts(t *testing.T) {
	c := NewContextCache(2)
	var victims []uint64
	c.OnEvict(func(v uint64) { victims = append(victims, v) })

	c.Touch(1)
	c.Touch(2)
	c.Touch(3) // evicts 1 (LRU)
	if c.Evictions() != 1 || c.EvictionsFor(1) != 1 {
		t.Fatalf("evictions=%d evictionsFor(1)=%d, want 1/1", c.Evictions(), c.EvictionsFor(1))
	}
	if c.Resident(1) || !c.Resident(2) || !c.Resident(3) {
		t.Fatal("residency after first eviction is wrong")
	}
	c.Touch(2) // 2 becomes MRU; 3 is now LRU
	c.Touch(4) // must evict 3, not the recently touched 2
	if got := []uint64{victims[0], victims[1]}; got[0] != 1 || got[1] != 3 {
		t.Fatalf("eviction order = %v, want [1 3]", victims)
	}
	if !c.Resident(2) || !c.Resident(4) || c.Resident(3) {
		t.Fatal("residency after second eviction is wrong")
	}
	if c.MissesFor(1) != 1 || c.MissesFor(2) != 1 || c.MissesFor(3) != 1 || c.MissesFor(4) != 1 {
		t.Fatal("per-key miss counts wrong")
	}
	// Re-touching the evicted key misses again and charges its counter.
	c.Touch(1)
	if c.MissesFor(1) != 2 {
		t.Fatalf("MissesFor(1) = %d after re-miss, want 2", c.MissesFor(1))
	}
	if c.EvictionsFor(2) != 1 { // 1's return displaced the LRU (2)
		t.Fatalf("EvictionsFor(2) = %d, want 1", c.EvictionsFor(2))
	}
}

// TestMissStallCharging verifies every context miss — cold or
// eviction-induced — charges exactly the calibrated PU stall and added
// latency, and hits charge nothing. This is the accounting the Figure 12
// cliff reproduction rests on (docs/SCALABILITY.md).
func TestMissStallCharging(t *testing.T) {
	_, n := newNIC()
	p := n.Params()
	cap := p.RecvCtxCap

	// Working set one past capacity, cycled: an LRU misses every access.
	keys := cap + 1
	rounds := 3
	var pu, lat sim.Time
	for r := 0; r < rounds; r++ {
		for k := 0; k < keys; k++ {
			dpu, dlat := n.TouchRecvCtx(uint64(k))
			pu += dpu
			lat += dlat
		}
	}
	misses := n.RecvCtxCache().Misses()
	if misses != uint64(rounds*keys) {
		t.Fatalf("misses = %d, want %d (cyclic sweep past capacity always misses)", misses, rounds*keys)
	}
	if want := sim.Time(misses) * p.CtxMissPU; pu != want {
		t.Fatalf("accumulated PU stall = %v, want misses x CtxMissPU = %v", pu, want)
	}
	if want := sim.Time(misses) * p.CtxMissLat; lat != want {
		t.Fatalf("accumulated latency charge = %v, want misses x CtxMissLat = %v", lat, want)
	}
	if n.RecvCtxCache().Evictions() != misses-uint64(cap) {
		t.Fatalf("evictions = %d, want misses - capacity = %d",
			n.RecvCtxCache().Evictions(), misses-uint64(cap))
	}

	// A working set within capacity stops stalling after the cold pass.
	n.TouchSendCtx(1)
	if dpu, dlat := n.TouchSendCtx(1); dpu != 0 || dlat != 0 {
		t.Fatalf("hit charged (%v,%v), want zero", dpu, dlat)
	}
}

// TestPerQPCtxCounters checks the QP-scoped miss/evict counters
// (nic.ctxcache.<side>.qp.n<node>.q<qpn>.{misses,evicts}).
func TestPerQPCtxCounters(t *testing.T) {
	eng := sim.New()
	bus := pcie.NewBus(eng, pcie.Gen3x8())
	net := wire.NewNetwork(eng, wire.InfiniBand56(), 1)
	n := New(eng, ConnectX3(), bus, net, 3)
	sink := telemetry.New()
	sink.PerQP = true
	n.SetTelemetry(sink)

	node := uint64(3) << 32
	cap := n.Params().SendCtxCap
	for k := 0; k <= cap; k++ { // one past capacity: key 0 gets evicted
		n.TouchSendCtx(node | uint64(k))
	}
	n.TouchSendCtx(node | 0) // re-miss on the evicted context

	if got := sink.Registry.Counter("nic.ctxcache.send.qp.n3.q0.misses").Value(); got != 2 {
		t.Fatalf("per-QP miss counter = %d, want 2", got)
	}
	if got := sink.Registry.Counter("nic.ctxcache.send.qp.n3.q0.evicts").Value(); got != 1 {
		t.Fatalf("per-QP evict counter = %d, want 1", got)
	}
	if got := sink.Registry.Counter("nic.ctxcache.send.evicts").Value(); got != 2 {
		// Key 0's return displaced the then-LRU key 1: two evictions total.
		t.Fatalf("aggregate evict counter = %d, want 2", got)
	}

	// Without PerQP no per-QP names are created.
	n2 := New(eng, ConnectX3(), bus, net, 4)
	sink2 := telemetry.New()
	n2.SetTelemetry(sink2)
	n2.TouchSendCtx(1)
	if got := sink2.Registry.Counter("nic.ctxcache.send.qp.n0.q1.misses").Value(); got != 0 {
		t.Fatalf("per-QP counter created without PerQP: %d", got)
	}
}
