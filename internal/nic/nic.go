// Package nic models an RDMA NIC (RNIC): its processing-unit pool, queue-
// pair context cache, and attachment to the host PCIe bus and the fabric.
//
// The verbs protocol flows themselves live in package verbs; this package
// provides the device resources those flows consume, with service times
// calibrated to ConnectX-3 (see Params).
package nic

import (
	"fmt"

	"herdkv/internal/pcie"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wire"
)

// NIC is one host's RDMA NIC.
type NIC struct {
	eng  *sim.Engine
	p    Params
	bus  *pcie.Bus
	net  *wire.Network
	node wire.NodeID

	pu      *sim.Server
	sendCtx *ContextCache
	recvCtx *ContextCache

	// Telemetry handles (nil when un-instrumented): QP-context-cache
	// hits, misses and evictions on each side, the mechanism behind
	// Figure 12's client-scaling cliff (docs/SCALABILITY.md).
	tel                        *telemetry.Sink
	telSendHit, telSendMiss    *telemetry.Counter
	telRecvHit, telRecvMiss    *telemetry.Counter
	telSendEvict, telRecvEvict *telemetry.Counter

	// Per-QP miss/evict counters, created lazily when the sink is
	// QP-scoped (Sink.PerQP): a fleet touches thousands of QP contexts
	// and most runs only want the aggregates.
	qpSendMiss, qpRecvMiss   map[uint64]*telemetry.Counter
	qpSendEvict, qpRecvEvict map[uint64]*telemetry.Counter
}

// New attaches a NIC with parameters p to bus and fabric node.
func New(eng *sim.Engine, p Params, bus *pcie.Bus, net *wire.Network, node wire.NodeID) *NIC {
	net.AddNode(node)
	return &NIC{
		eng:     eng,
		p:       p,
		bus:     bus,
		net:     net,
		node:    node,
		pu:      sim.NewServer(eng, 1),
		sendCtx: NewContextCache(p.SendCtxCap),
		recvCtx: NewContextCache(p.RecvCtxCap),
	}
}

// Engine returns the simulation engine.
func (n *NIC) Engine() *sim.Engine { return n.eng }

// Params returns the device parameters.
func (n *NIC) Params() Params { return n.p }

// Bus returns the host PCIe bus.
func (n *NIC) Bus() *pcie.Bus { return n.bus }

// Net returns the fabric.
func (n *NIC) Net() *wire.Network { return n.net }

// Node returns this NIC's fabric address.
func (n *NIC) Node() wire.NodeID { return n.node }

// PU submits work to the processing-unit pool; done (if non-nil) runs at
// completion.
func (n *NIC) PU(work sim.Time, done func(sim.Time)) {
	n.pu.Submit(work, done)
}

// PUUtilization reports processing-unit utilization so far.
func (n *NIC) PUUtilization() float64 { return n.pu.Utilization() }

// SetTelemetry attaches context-cache hit/miss/evict counters. Counter
// names are shared across NICs, aggregating cluster-wide; with a
// QP-scoped sink each NIC additionally maintains per-QP miss and evict
// counters so the thrashing contexts are identifiable.
func (n *NIC) SetTelemetry(s *telemetry.Sink) {
	n.tel = s
	n.telSendHit = s.Counter("nic.ctxcache.send.hits")
	n.telSendMiss = s.Counter("nic.ctxcache.send.misses")
	n.telRecvHit = s.Counter("nic.ctxcache.recv.hits")
	n.telRecvMiss = s.Counter("nic.ctxcache.recv.misses")
	n.telSendEvict = s.Counter("nic.ctxcache.send.evicts")
	n.telRecvEvict = s.Counter("nic.ctxcache.recv.evicts")
	n.sendCtx.OnEvict(func(victim uint64) {
		n.telSendEvict.Inc()
		n.qpCounter(&n.qpSendEvict, "send", "evicts", victim).Inc()
	})
	n.recvCtx.OnEvict(func(victim uint64) {
		n.telRecvEvict.Inc()
		n.qpCounter(&n.qpRecvEvict, "recv", "evicts", victim).Inc()
	})
}

// qpCounter lazily resolves the per-QP context-cache counter for one
// (side, kind, QP key) triple, or nil (a no-op handle) when the sink is
// not QP-scoped. Keys are global QP keys: node<<32 | qpn.
func (n *NIC) qpCounter(m *map[uint64]*telemetry.Counter, side, kind string, key uint64) *telemetry.Counter {
	if !n.tel.QPScoped() {
		return nil
	}
	if c, ok := (*m)[key]; ok {
		return c
	}
	if *m == nil {
		*m = make(map[uint64]*telemetry.Counter)
	}
	//lint:allow telemnames — per-QP counters nic.ctxcache.<side>.qp.n<node>.q<qpn>.{misses,evicts} are catalogued in docs/OBSERVABILITY.md
	c := n.tel.Counter(fmt.Sprintf(
		"nic.ctxcache.%s.qp.n%d.q%d.%s", side, key>>32, uint32(key), kind))
	(*m)[key] = c
	return c
}

// TouchSendCtx records a requester-side context access for qpn and
// returns the PU stall and added latency it causes (zero on a hit).
func (n *NIC) TouchSendCtx(qpn uint64) (puExtra, latExtra sim.Time) {
	if n.sendCtx.Touch(qpn) {
		n.telSendHit.Inc()
		return 0, 0
	}
	n.telSendMiss.Inc()
	n.qpCounter(&n.qpSendMiss, "send", "misses", qpn).Inc()
	return n.p.CtxMissPU, n.p.CtxMissLat
}

// TouchRecvCtx records a responder-side context access for qpn and
// returns the PU stall and added latency it causes (zero on a hit).
func (n *NIC) TouchRecvCtx(qpn uint64) (puExtra, latExtra sim.Time) {
	if n.recvCtx.Touch(qpn) {
		n.telRecvHit.Inc()
		return 0, 0
	}
	n.telRecvMiss.Inc()
	n.qpCounter(&n.qpRecvMiss, "recv", "misses", qpn).Inc()
	return n.p.CtxMissPU, n.p.CtxMissLat
}

// SendCtxHitRate and RecvCtxHitRate expose cache statistics.
func (n *NIC) SendCtxHitRate() float64 { return n.sendCtx.HitRate() }
func (n *NIC) RecvCtxHitRate() float64 { return n.recvCtx.HitRate() }

// SendCtxCache and RecvCtxCache expose the context caches themselves
// (per-QP miss/evict accounting for tests and experiments).
func (n *NIC) SendCtxCache() *ContextCache { return n.sendCtx }
func (n *NIC) RecvCtxCache() *ContextCache { return n.recvCtx }

// WQEBytes returns the PIO footprint of a WQE on transport t carrying
// inline bytes of payload (zero if not inlined).
func (n *NIC) WQEBytes(t wire.Transport, inline int) int {
	base := n.p.WQEBaseRC
	if t == wire.UD {
		base = n.p.WQEBaseUD
	}
	return base + inline
}
