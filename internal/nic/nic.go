// Package nic models an RDMA NIC (RNIC): its processing-unit pool, queue-
// pair context cache, and attachment to the host PCIe bus and the fabric.
//
// The verbs protocol flows themselves live in package verbs; this package
// provides the device resources those flows consume, with service times
// calibrated to ConnectX-3 (see Params).
package nic

import (
	"herdkv/internal/pcie"
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
	"herdkv/internal/wire"
)

// NIC is one host's RDMA NIC.
type NIC struct {
	eng  *sim.Engine
	p    Params
	bus  *pcie.Bus
	net  *wire.Network
	node wire.NodeID

	pu      *sim.Server
	sendCtx *ContextCache
	recvCtx *ContextCache

	// Telemetry handles (nil when un-instrumented): QP-context-cache
	// hits and misses on each side, the mechanism behind Figure 12's
	// client-scaling cliff.
	telSendHit, telSendMiss *telemetry.Counter
	telRecvHit, telRecvMiss *telemetry.Counter
}

// New attaches a NIC with parameters p to bus and fabric node.
func New(eng *sim.Engine, p Params, bus *pcie.Bus, net *wire.Network, node wire.NodeID) *NIC {
	net.AddNode(node)
	return &NIC{
		eng:     eng,
		p:       p,
		bus:     bus,
		net:     net,
		node:    node,
		pu:      sim.NewServer(eng, 1),
		sendCtx: NewContextCache(p.SendCtxCap),
		recvCtx: NewContextCache(p.RecvCtxCap),
	}
}

// Engine returns the simulation engine.
func (n *NIC) Engine() *sim.Engine { return n.eng }

// Params returns the device parameters.
func (n *NIC) Params() Params { return n.p }

// Bus returns the host PCIe bus.
func (n *NIC) Bus() *pcie.Bus { return n.bus }

// Net returns the fabric.
func (n *NIC) Net() *wire.Network { return n.net }

// Node returns this NIC's fabric address.
func (n *NIC) Node() wire.NodeID { return n.node }

// PU submits work to the processing-unit pool; done (if non-nil) runs at
// completion.
func (n *NIC) PU(work sim.Time, done func(sim.Time)) {
	n.pu.Submit(work, done)
}

// PUUtilization reports processing-unit utilization so far.
func (n *NIC) PUUtilization() float64 { return n.pu.Utilization() }

// SetTelemetry attaches context-cache hit/miss counters. Counter names
// are shared across NICs, aggregating cluster-wide.
func (n *NIC) SetTelemetry(s *telemetry.Sink) {
	n.telSendHit = s.Counter("nic.ctxcache.send.hits")
	n.telSendMiss = s.Counter("nic.ctxcache.send.misses")
	n.telRecvHit = s.Counter("nic.ctxcache.recv.hits")
	n.telRecvMiss = s.Counter("nic.ctxcache.recv.misses")
}

// TouchSendCtx records a requester-side context access for qpn and
// returns the PU stall and added latency it causes (zero on a hit).
func (n *NIC) TouchSendCtx(qpn uint64) (puExtra, latExtra sim.Time) {
	if n.sendCtx.Touch(qpn) {
		n.telSendHit.Inc()
		return 0, 0
	}
	n.telSendMiss.Inc()
	return n.p.CtxMissPU, n.p.CtxMissLat
}

// TouchRecvCtx records a responder-side context access for qpn and
// returns the PU stall and added latency it causes (zero on a hit).
func (n *NIC) TouchRecvCtx(qpn uint64) (puExtra, latExtra sim.Time) {
	if n.recvCtx.Touch(qpn) {
		n.telRecvHit.Inc()
		return 0, 0
	}
	n.telRecvMiss.Inc()
	return n.p.CtxMissPU, n.p.CtxMissLat
}

// SendCtxHitRate and RecvCtxHitRate expose cache statistics.
func (n *NIC) SendCtxHitRate() float64 { return n.sendCtx.HitRate() }
func (n *NIC) RecvCtxHitRate() float64 { return n.recvCtx.HitRate() }

// WQEBytes returns the PIO footprint of a WQE on transport t carrying
// inline bytes of payload (zero if not inlined).
func (n *NIC) WQEBytes(t wire.Transport, inline int) int {
	base := n.p.WQEBaseRC
	if t == wire.UD {
		base = n.p.WQEBaseUD
	}
	return base + inline
}
