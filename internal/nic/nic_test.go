package nic

import (
	"testing"
	"testing/quick"

	"herdkv/internal/pcie"
	"herdkv/internal/sim"
	"herdkv/internal/wire"
)

func newNIC() (*sim.Engine, *NIC) {
	eng := sim.New()
	bus := pcie.NewBus(eng, pcie.Gen3x8())
	net := wire.NewNetwork(eng, wire.InfiniBand56(), 1)
	return eng, New(eng, ConnectX3(), bus, net, 0)
}

func TestLRUBasics(t *testing.T) {
	c := NewContextCache(2)
	if c.Touch(1) {
		t.Fatal("first touch should miss")
	}
	if !c.Touch(1) {
		t.Fatal("second touch should hit")
	}
	c.Touch(2)
	c.Touch(3) // evicts 1 (LRU)
	if c.Touch(1) {
		t.Fatal("1 should have been evicted")
	}
	if !c.Touch(3) {
		t.Fatal("3 should be resident")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewContextCache(2)
	c.Touch(1)
	c.Touch(2)
	c.Touch(1) // 1 is now MRU; 2 is LRU
	c.Touch(3) // evicts 2
	if !c.Touch(1) {
		t.Fatal("1 should be resident (was MRU)")
	}
	if c.Touch(2) {
		t.Fatal("2 should have been evicted")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c := NewContextCache(0)
	for i := uint64(0); i < 1000; i++ {
		c.Touch(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !c.Touch(i) {
			t.Fatalf("key %d evicted from unbounded cache", i)
		}
	}
}

func TestHitRateAccounting(t *testing.T) {
	c := NewContextCache(4)
	if c.HitRate() != 1 {
		t.Fatal("empty cache HitRate should be 1")
	}
	c.Touch(1)
	c.Touch(1)
	c.Touch(1)
	c.Touch(1)
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	if c.Hits() != 3 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// Property: working sets within capacity never miss after warmup;
// round-robin over a working set exceeding capacity always misses.
func TestLRUWorkingSetProperty(t *testing.T) {
	f := func(capRaw, setRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		set := int(setRaw%32) + 1
		c := NewContextCache(capacity)
		for i := 0; i < set; i++ {
			c.Touch(uint64(i))
		}
		allHit := true
		for round := 0; round < 3; round++ {
			for i := 0; i < set; i++ {
				if !c.Touch(uint64(i)) {
					allHit = false
				}
			}
		}
		if set <= capacity {
			return allHit
		}
		// Cyclic sweep larger than an LRU always misses everything.
		return c.Hits() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	eng, n := newNIC()
	if n.Engine() != eng {
		t.Fatal("Engine accessor")
	}
	if n.Bus() == nil || n.Net() == nil {
		t.Fatal("Bus/Net accessors")
	}
	if n.Node() != 0 {
		t.Fatalf("Node = %v", n.Node())
	}
	if u := n.PUUtilization(); u != 0 {
		t.Fatalf("idle PU utilization = %v", u)
	}
}

func TestTouchRecvCtxAndHitRates(t *testing.T) {
	_, n := newNIC()
	if pu, lat := n.TouchRecvCtx(1); pu == 0 || lat == 0 {
		t.Fatal("first recv-ctx touch should miss")
	}
	if pu, lat := n.TouchRecvCtx(1); pu != 0 || lat != 0 {
		t.Fatal("second recv-ctx touch should hit")
	}
	n.TouchSendCtx(9)
	n.TouchSendCtx(9)
	n.TouchSendCtx(9)
	if hr := n.SendCtxHitRate(); hr < 0.6 || hr > 0.7 {
		t.Fatalf("send hit rate = %v, want 2/3", hr)
	}
	if hr := n.RecvCtxHitRate(); hr != 0.5 {
		t.Fatalf("recv hit rate = %v, want 0.5", hr)
	}
}

func TestTouchSendCtxPenalties(t *testing.T) {
	_, n := newNIC()
	pu, lat := n.TouchSendCtx(7)
	if pu != n.Params().CtxMissPU || lat != n.Params().CtxMissLat {
		t.Fatalf("miss penalties = (%v,%v), want params", pu, lat)
	}
	pu, lat = n.TouchSendCtx(7)
	if pu != 0 || lat != 0 {
		t.Fatalf("hit penalties = (%v,%v), want zero", pu, lat)
	}
}

func TestSendCtxSmallerThanRecvCtx(t *testing.T) {
	// The requester-side context cache must be the scarcer resource:
	// this asymmetry produces Figure 6.
	p := ConnectX3()
	if p.SendCtxCap >= p.RecvCtxCap {
		t.Fatal("send context capacity should be below recv context capacity")
	}
}

func TestWQEBytes(t *testing.T) {
	_, n := newNIC()
	p := n.Params()
	if n.WQEBytes(wire.UC, 32) != p.WQEBaseRC+32 {
		t.Fatal("UC WQE size wrong")
	}
	if n.WQEBytes(wire.UD, 32) != p.WQEBaseUD+32 {
		t.Fatal("UD WQE size wrong")
	}
	if n.WQEBytes(wire.UD, 0) <= n.WQEBytes(wire.RC, 0) {
		t.Fatal("UD WQE must be larger (address handle)")
	}
}

func TestPUServiceRate(t *testing.T) {
	// RxWrite service must yield ~35+ Mops aggregate (paper's inbound
	// WRITE rate for small payloads).
	eng, n := newNIC()
	count := 0
	k := 100000
	for i := 0; i < k; i++ {
		n.PU(n.Params().RxWrite, func(sim.Time) { count++ })
	}
	eng.Run()
	mops := float64(count) / eng.Now().Seconds() / 1e6
	if mops < 33 || mops > 40 {
		t.Fatalf("inbound WRITE PU rate = %.1f Mops, want ~35-38", mops)
	}
}

func TestReadRatesCalibration(t *testing.T) {
	p := ConnectX3()
	inbound := 1e6 / p.RxReadReq.Nanoseconds() / 1e6 * 1e3 // Mops
	// Outbound READs run over RC and pay the requester's RC state cost.
	outbound := 1e6 / (p.TxReadReq + p.RxReadResp + p.RCReqExtra).Nanoseconds() / 1e6 * 1e3
	if inbound < 24 || inbound > 28 {
		t.Fatalf("inbound READ calibration = %.1f Mops, want ~26", inbound)
	}
	if outbound < 20 || outbound > 24 {
		t.Fatalf("outbound READ calibration = %.1f Mops, want ~22", outbound)
	}
	// The optimized SEND/SEND echo rate is bounded by inbound SEND
	// processing plus the response SEND's WQE work: ~21 Mops.
	echoRate := 1e6 / (p.RxSend + p.TxWQE).Nanoseconds() / 1e6 * 1e3
	if echoRate < 19 || echoRate > 23 {
		t.Fatalf("SEND/SEND echo calibration = %.1f Mops, want ~21", echoRate)
	}
}
