package nic

import "herdkv/internal/sim"

// Params calibrates the RNIC model. Processing-unit (PU) costs are
// aggregate: the real ConnectX-3 contains several parallel PUs; we model
// the pool as one FIFO resource whose per-verb service time is the
// inverse of the card's aggregate message rate for that verb.
//
// Calibration anchors, all quoted in the paper (Sections 3.2-3.3):
//
//   - inbound WRITE: ~35 Mops for <=128 B payloads   -> RxWrite ~ 27 ns
//   - inbound READ: 26 Mops                          -> RxReadReq ~ 38 ns
//   - outbound READ: 22 Mops                         -> TxReadReq+RxReadResp ~ 45 ns
//   - optimized SEND/RECV echo: 21 Mops              -> RxSend ~ 40 ns
//   - outbound WRITE >28 B payload is PIO-bound (write-combining steps)
//   - each QP supports 16 outstanding READs
//   - beyond the QP context cache capacity, each verb can miss and stall
//     on a PCIe fetch of the context (Figures 6 and 12)
type Params struct {
	// PU service times by role.
	TxWQE      sim.Time // requester processing of an outbound WRITE/SEND WQE
	TxReadReq  sim.Time // requester processing to issue a READ
	RxWrite    sim.Time // responder processing of an inbound WRITE
	RxSend     sim.Time // responder processing of an inbound SEND (includes RECV WQE handling)
	RxReadReq  sim.Time // responder processing of an inbound READ request
	RxReadResp sim.Time // requester processing of a returning READ response
	TxAck      sim.Time // responder cost to emit an RC ACK
	RxAck      sim.Time // requester cost to absorb an RC ACK

	// Optimization deltas (Figure 5's "basic -> +unreliable ->
	// +unsignaled -> +inlined" ladder).
	SignaledExtra sim.Time // extra PU work per signaled verb (CQE generation)
	// NonInlineExtra is the extra PU work to fetch a non-inlined payload
	// (WQE pointer chase + DMA scheduling). Calibrated to the ~11 Mops
	// flat rate of small non-inlined outbound WRITEs in Figure 4.
	NonInlineExtra sim.Time
	RCReqExtra     sim.Time // extra requester PU work per RC verb (retransmit state)
	RCRespExtra    sim.Time // extra responder PU work per RC verb

	// WQE geometry for the PIO path.
	WQEBaseRC int // WQE bytes before inline payload, RC/UC transports
	WQEBaseUD int // WQE bytes before inline payload, UD (carries address handle)
	InlineMax int // maximum inline payload (256 B on ConnectX-3)
	CQEBytes  int // completion queue entry size DMA-written to host

	// ReadWindow is the per-QP cap on outstanding READs (16 on our RNICs,
	// Section 3.2.2).
	ReadWindow int

	// QP context cache (the RNIC's scarce SRAM, Section 3.3).
	SendCtxCap int      // requester-side send contexts cached
	RecvCtxCap int      // responder-side receive contexts cached
	CtxMissPU  sim.Time // PU stall charged when a context misses
	CtxMissLat sim.Time // added latency of the PCIe context fetch

	// RxAtomic is the responder-side cost of one atomic (CAS/FADD):
	// the read-modify-write serializes on the NIC's atomic unit, which
	// is why real RNICs sustain only a few Mops of atomics (~2-3 Mops on
	// ConnectX-3-era cards).
	RxAtomic sim.Time

	// DCRetargetPU is the extra requester-side work when a Dynamically
	// Connected initiator switches to a different peer than its previous
	// message (the in-band connect/disconnect micro-handshake of
	// Connect-IB's DC transport, Section 5.5).
	DCRetargetPU sim.Time
}

// ConnectX3 returns parameters for a ConnectX-3-class RNIC.
func ConnectX3() Params {
	return Params{
		TxWQE:      sim.NS(8),
		TxReadReq:  sim.NS(13),
		RxWrite:    sim.NS(27),
		RxSend:     sim.NS(40),
		RxReadReq:  sim.NS(38),
		RxReadResp: sim.NS(22),
		TxAck:      sim.NS(2),
		RxAck:      sim.NS(2),

		SignaledExtra:  sim.NS(25),
		NonInlineExtra: sim.NS(80),
		RCReqExtra:     sim.NS(10),
		RCRespExtra:    sim.NS(2),

		WQEBaseRC: 36,
		WQEBaseUD: 48,
		InlineMax: 256,
		CQEBytes:  64,

		ReadWindow: 16,

		SendCtxCap: 64,
		RecvCtxCap: 280,
		CtxMissPU:  sim.NS(120),
		CtxMissLat: sim.NS(400),

		RxAtomic:     sim.NS(400),
		DCRetargetPU: sim.NS(40),
	}
}
