// Package pcie models the host PCIe interconnect between CPU/DRAM and the
// RNIC: Programmed IO (PIO) with write-combining, and DMA transfers with
// posted (write) and non-posted (read) transaction semantics.
//
// The paper's verb performance hinges on exactly these mechanisms:
//
//   - Inlined WRITEs/SENDs push the whole WQE through PIO; write-combining
//     flushes in 64 B cachelines, so outbound message rate steps down at
//     64 B payload intervals (Figure 4).
//   - Non-inlined payloads and inbound READs require DMA reads, which are
//     non-posted (the RNIC must hold request state until the completion
//     returns), costing more than the posted DMA writes used by inbound
//     WRITEs — one reason WRITE beats READ (Section 3.2.2).
//   - PCIe 2.0 x8 (Susitna) has roughly half the bandwidth of 3.0 x8
//     (Apt), which is why all systems top out lower on RoCE (Figure 10).
package pcie

import (
	"herdkv/internal/sim"
	"herdkv/internal/telemetry"
)

// CachelineBytes is the write-combining flush unit for PIO.
const CachelineBytes = 64

// Params describes one host's PCIe link and engines.
type Params struct {
	// PerDoorbell is the fixed engine occupancy of a doorbell MMIO
	// transaction, paid once per posted verb regardless of inlining.
	// (The ~150 ns CPU cost of post_send itself is charged to the core
	// by package hostmem, not here.)
	PerDoorbell sim.Time
	// PerCacheline is the engine occupancy of flushing one 64 B
	// write-combining buffer to the device; an inlined WQE of n bytes
	// costs ceil(n/64) cachelines. Flushes pipeline, so this bounds
	// PIO *throughput*.
	PerCacheline sim.Time
	// PerCachelineWC is additional occupancy charged for every cacheline
	// beyond the second in a single WQE: large inlined WQEs put pressure
	// on the CPU's limited write-combining buffers, which is why
	// Figure 4's inline curve falls faster than linearly and crosses
	// below the non-inlined (DMA) path around 200 B.
	PerCachelineWC sim.Time
	// PerCachelineLat is the full latency of one write-combined MMIO
	// store as seen by a single WQE (uncached stores do not pipeline
	// within one WQE). The excess over PerCacheline is added to a PIO
	// write's completion latency without occupying the engine — this is
	// why ECHO latency climbs with payload size in Figure 2 while PIO
	// throughput only steps down gently.
	PerCachelineLat sim.Time
	// DMAReadLatency is the round-trip latency of a non-posted DMA read
	// (request TLP out, completion TLPs back).
	DMAReadLatency sim.Time
	// DMAWriteLatency is the one-way latency of a posted DMA write.
	DMAWriteLatency sim.Time
	// BytesPerSec is the effective per-direction data bandwidth.
	BytesPerSec float64
	// TLPHeaderBytes is per-TLP framing overhead added to each
	// MaxPayload-sized chunk.
	TLPHeaderBytes int
	// MaxPayload is the maximum TLP payload (typically 256 B).
	MaxPayload int
}

// Gen3x8 returns parameters for a PCIe 3.0 x8 host (the Apt cluster).
// Calibration: a 1-cacheline WQE costs 26 ns of engine time (~38 M
// doorbells/s, the paper's ">35 Mops for very small outbound WRITEs"),
// a 2-cacheline WQE 38 ns (~26 Mops, HERD's peak response rate).
func Gen3x8() Params {
	return Params{
		PerDoorbell:     sim.NS(14),
		PerCacheline:    sim.NS(12),
		PerCachelineWC:  sim.NS(8),
		PerCachelineLat: sim.NS(80),
		DMAReadLatency:  sim.NS(400),
		DMAWriteLatency: sim.NS(200),
		BytesPerSec:     6.0e9, // ~7.9 GB/s raw minus protocol overheads
		TLPHeaderBytes:  24,
		MaxPayload:      256,
	}
}

// Gen2x8 returns parameters for a PCIe 2.0 x8 host (the Susitna cluster).
func Gen2x8() Params {
	return Params{
		PerDoorbell:     sim.NS(22),
		PerCacheline:    sim.NS(16),
		PerCachelineWC:  sim.NS(10),
		PerCachelineLat: sim.NS(100),
		DMAReadLatency:  sim.NS(500),
		DMAWriteLatency: sim.NS(250),
		BytesPerSec:     3.0e9,
		TLPHeaderBytes:  24,
		MaxPayload:      128,
	}
}

// Bus is one host's PCIe attachment point. PIO traffic shares a single
// write-combining engine; DMA traffic is full duplex, with separate
// to-host (device writes) and from-host (device reads) data paths.
type Bus struct {
	eng      *sim.Engine
	p        Params
	pio      *sim.Server
	toHost   *sim.Server
	fromHost *sim.Server

	// Telemetry handles (nil when un-instrumented). DMA reads are
	// non-posted transactions (the device holds request state until the
	// completion returns); DMA writes are posted — the distinction the
	// paper leans on in Section 3.2.2.
	telPIOWrites, telPIOBytes         *telemetry.Counter
	telNonPostedTx, telNonPostedBytes *telemetry.Counter
	telPostedTx, telPostedBytes       *telemetry.Counter
}

// NewBus returns a bus on eng with the given parameters.
func NewBus(eng *sim.Engine, p Params) *Bus {
	return &Bus{
		eng:      eng,
		p:        p,
		pio:      sim.NewServer(eng, 1),
		toHost:   sim.NewServer(eng, 1),
		fromHost: sim.NewServer(eng, 1),
	}
}

// Params returns the bus parameters.
func (b *Bus) Params() Params { return b.p }

// SetTelemetry attaches metric counters for PIO and posted/non-posted
// DMA transactions. Counter names are shared across buses, so a
// cluster's machines aggregate into one set of pcie.* metrics.
func (b *Bus) SetTelemetry(s *telemetry.Sink) {
	b.telPIOWrites = s.Counter("pcie.pio.writes")
	b.telPIOBytes = s.Counter("pcie.pio.bytes")
	b.telNonPostedTx = s.Counter("pcie.dma.nonposted.reads")
	b.telNonPostedBytes = s.Counter("pcie.dma.nonposted.bytes")
	b.telPostedTx = s.Counter("pcie.dma.posted.writes")
	b.telPostedBytes = s.Counter("pcie.dma.posted.bytes")
}

// Cachelines returns how many write-combining flushes n bytes require.
func Cachelines(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + CachelineBytes - 1) / CachelineBytes
}

// PIOCost returns the service time of a PIO write of n bytes
// (doorbell plus write-combined cachelines, with buffer-pressure cost
// for WQEs beyond two cachelines).
func (b *Bus) PIOCost(n int) sim.Time {
	cls := Cachelines(n)
	cost := b.p.PerDoorbell + sim.Time(cls)*b.p.PerCacheline
	if cls > 2 {
		cost += sim.Time(cls-2) * b.p.PerCachelineWC
	}
	return cost
}

// PIOExtraLatency returns the latency a single WQE of n bytes experiences
// beyond its engine occupancy: within one WQE the CPU's write-combined
// stores do not pipeline, so each cacheline costs PerCachelineLat.
func (b *Bus) PIOExtraLatency(n int) sim.Time {
	extra := sim.Time(Cachelines(n)) * (b.p.PerCachelineLat - b.p.PerCacheline)
	if extra < 0 {
		return 0
	}
	return extra
}

// PIOWrite submits a PIO write of n bytes (a doorbell carrying an inlined
// WQE). done, if non-nil, runs when the device has received the full WQE,
// including the non-pipelined per-cacheline store latency.
func (b *Bus) PIOWrite(n int, done func(sim.Time)) {
	b.telPIOWrites.Inc()
	b.telPIOBytes.Add(uint64(n))
	extra := b.PIOExtraLatency(n)
	b.pio.Submit(b.PIOCost(n), func(sim.Time) {
		b.eng.After(extra, func() {
			if done != nil {
				done(b.eng.Now())
			}
		})
	})
}

func (b *Bus) xferTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	tlps := (n + b.p.MaxPayload - 1) / b.p.MaxPayload
	total := n + tlps*b.p.TLPHeaderBytes
	return sim.Time(float64(total) / b.p.BytesPerSec * float64(sim.Second))
}

// DMAReadCost returns the occupancy a DMA read of n bytes places on the
// from-host data path (not counting the non-posted round-trip latency).
func (b *Bus) DMAReadCost(n int) sim.Time { return b.xferTime(n) }

// DMAWriteCost returns the occupancy a DMA write of n bytes places on the
// to-host data path.
func (b *Bus) DMAWriteCost(n int) sim.Time { return b.xferTime(n) }

// DMARead submits a device-initiated read of n bytes from host memory.
// done runs when the completion data has arrived at the device; it
// includes the non-posted round-trip latency.
func (b *Bus) DMARead(n int, done func(sim.Time)) {
	b.telNonPostedTx.Inc()
	b.telNonPostedBytes.Add(uint64(n))
	b.fromHost.Submit(b.xferTime(n), func(sim.Time) {
		b.eng.After(b.p.DMAReadLatency, func() {
			if done != nil {
				done(b.eng.Now())
			}
		})
	})
}

// DMAWrite submits a device-initiated posted write of n bytes to host
// memory. done runs when the data is visible in host memory.
func (b *Bus) DMAWrite(n int, done func(sim.Time)) {
	b.telPostedTx.Inc()
	b.telPostedBytes.Add(uint64(n))
	b.toHost.Submit(b.xferTime(n), func(sim.Time) {
		b.eng.After(b.p.DMAWriteLatency, func() {
			if done != nil {
				done(b.eng.Now())
			}
		})
	})
}

// PIOUtilization reports the PIO engine's utilization so far.
func (b *Bus) PIOUtilization() float64 { return b.pio.Utilization() }

// ToHostUtilization reports the device-to-host DMA path utilization.
func (b *Bus) ToHostUtilization() float64 { return b.toHost.Utilization() }

// FromHostUtilization reports the host-to-device DMA path utilization.
func (b *Bus) FromHostUtilization() float64 { return b.fromHost.Utilization() }
