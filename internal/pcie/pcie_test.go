package pcie

import (
	"testing"
	"testing/quick"

	"herdkv/internal/sim"
)

func TestCachelines(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-4, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {256, 4},
	}
	for _, c := range cases {
		if got := Cachelines(c.n); got != c.want {
			t.Errorf("Cachelines(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPIOCostSteps(t *testing.T) {
	// PIO cost must be a step function of payload size with 64 B steps:
	// this is the write-combining behavior behind Figure 4's staircase.
	b := NewBus(sim.New(), Gen3x8())
	if b.PIOCost(36) != b.PIOCost(64) {
		t.Error("36 B and 64 B should cost the same (one cacheline)")
	}
	if b.PIOCost(64) >= b.PIOCost(65) {
		t.Error("crossing a cacheline boundary must increase cost")
	}
	step := b.PIOCost(129) - b.PIOCost(65)
	want := b.Params().PerCacheline + b.Params().PerCachelineWC
	if step != want {
		t.Errorf("step beyond 2 CLs = %v, want %v (incl. WC pressure)", step, want)
	}
	// Within the first two cachelines there is no WC pressure.
	if d := b.PIOCost(65) - b.PIOCost(1); d != b.Params().PerCacheline {
		t.Errorf("1->2 CL step = %v, want %v", d, b.Params().PerCacheline)
	}
}

func TestPIOWriteCompletes(t *testing.T) {
	eng := sim.New()
	b := NewBus(eng, Gen3x8())
	var at sim.Time = -1
	b.PIOWrite(64, func(end sim.Time) { at = end })
	eng.Run()
	// One cacheline: engine occupancy is doorbell + one pipelined flush,
	// but the WQE's own latency is the full store latency.
	want := Gen3x8().PerDoorbell + Gen3x8().PerCachelineLat
	if at != want {
		t.Fatalf("PIO completion at %v, want %v", at, want)
	}
}

func TestPIOSerializes(t *testing.T) {
	eng := sim.New()
	b := NewBus(eng, Gen3x8())
	var last sim.Time
	for i := 0; i < 10; i++ {
		b.PIOWrite(64, func(end sim.Time) { last = end })
	}
	eng.Run()
	// Engine occupancy pipelines across WQEs; only the last WQE's own
	// store latency is on the critical path.
	want := 10*(Gen3x8().PerDoorbell+Gen3x8().PerCacheline) + b.PIOExtraLatency(64)
	if last != want {
		t.Fatalf("10 serialized PIOs end at %v, want %v", last, want)
	}
}

func TestDMAReadSlowerThanWrite(t *testing.T) {
	// Non-posted reads carry a round-trip latency; posted writes only a
	// one-way latency. This asymmetry is why inbound WRITEs beat READs.
	eng := sim.New()
	b := NewBus(eng, Gen3x8())
	var readDone, writeDone sim.Time
	b.DMARead(256, func(end sim.Time) { readDone = end })
	eng.Run()
	eng2 := sim.New()
	b2 := NewBus(eng2, Gen3x8())
	b2.DMAWrite(256, func(end sim.Time) { writeDone = end })
	eng2.Run()
	if readDone <= writeDone {
		t.Fatalf("DMA read (%v) should be slower than write (%v)", readDone, writeDone)
	}
}

func TestDMABandwidthBound(t *testing.T) {
	// 1000 writes of 1024 B at 6 GB/s effective: occupancy per op is
	// (1024 + 4*24)/6e9 s = 186.7ns; total ~186.7us plus one latency.
	eng := sim.New()
	b := NewBus(eng, Gen3x8())
	n := 1000
	var last sim.Time
	for i := 0; i < n; i++ {
		b.DMAWrite(1024, func(end sim.Time) { last = end })
	}
	eng.Run()
	perOp := float64(1024+4*24) / 6.0e9 * 1e9 // ns
	wantNS := perOp*float64(n) + 200          // + one posted latency
	gotNS := last.Nanoseconds()
	if gotNS < wantNS*0.99 || gotNS > wantNS*1.01 {
		t.Fatalf("bandwidth-bound completion %v ns, want ~%v ns", gotNS, wantNS)
	}
}

func TestGen2SlowerThanGen3(t *testing.T) {
	g2, g3 := Gen2x8(), Gen3x8()
	if g2.BytesPerSec >= g3.BytesPerSec {
		t.Error("gen2 bandwidth should be below gen3")
	}
	if g2.PerCacheline <= g3.PerCacheline {
		t.Error("gen2 PIO should cost more per cacheline")
	}
}

func TestXferTimeMonotoneProperty(t *testing.T) {
	b := NewBus(sim.New(), Gen3x8())
	f := func(a, c uint16) bool {
		x, y := int(a), int(c)
		if x > y {
			x, y = y, x
		}
		return b.DMAWriteCost(x) <= b.DMAWriteCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteTransfersFree(t *testing.T) {
	b := NewBus(sim.New(), Gen3x8())
	if b.DMAReadCost(0) != 0 || b.DMAWriteCost(0) != 0 {
		t.Fatal("zero-byte DMA should have zero occupancy")
	}
}

func TestDuplexIndependence(t *testing.T) {
	// Reads and writes use independent data paths (full duplex); saturating
	// one direction must not delay the other.
	eng := sim.New()
	b := NewBus(eng, Gen3x8())
	for i := 0; i < 100; i++ {
		b.DMAWrite(4096, nil)
	}
	var readEnd sim.Time
	b.DMARead(64, func(end sim.Time) { readEnd = end })
	eng.Run()
	soloEng := sim.New()
	solo := NewBus(soloEng, Gen3x8())
	var soloEnd sim.Time
	solo.DMARead(64, func(end sim.Time) { soloEnd = end })
	soloEng.Run()
	if readEnd != soloEnd {
		t.Fatalf("read delayed by writes: %v vs solo %v", readEnd, soloEnd)
	}
}
