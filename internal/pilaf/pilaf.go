// Package pilaf implements Pilaf-em-OPT (Section 5.1.1): the emulated
// Pilaf key-value store with all of HERD's RDMA optimizations applied.
//
// GETs are client-driven: the client READs candidate 32-byte cuckoo
// buckets from the server's registered memory (1.6 on average at
// Pilaf's 75% fill), parses and checksum-verifies them locally, then
// READs the value from the extent and verifies it against the bucket's
// entry checksum — the self-verifying data structures that make
// CPU-bypassing GETs safe. The server CPU is not involved in GETs.
//
// PUTs are SEND/RECV messages: the client SENDs the key-value item
// (inlined, unsignaled, over UC per the OPT variant), and the server CPU
// inserts it and SENDs back an acknowledgement. Unlike the paper's
// emulation, which returned instantly, our server performs the real
// cuckoo insertion.
package pilaf

import (
	"encoding/binary"
	"fmt"

	"herdkv/internal/cluster"
	"herdkv/internal/cuckoo"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
	"herdkv/internal/verbs"
	"herdkv/internal/wire"
)

// Config parameterizes a Pilaf deployment.
type Config struct {
	// Buckets is the cuckoo table size (one slot per bucket).
	Buckets int
	// ExtentBytes sizes the value extent.
	ExtentBytes int
	// Cores is the number of server cores handling PUTs (Figure 13).
	Cores int
	// Window is the per-client outstanding-op limit.
	Window int
}

// DefaultConfig returns a test-scale deployment.
func DefaultConfig() Config {
	return Config{Buckets: 1 << 16, ExtentBytes: 1 << 24, Cores: 6, Window: 4}
}

// Request/response wire formats for PUTs.
const (
	putHdr  = kv.KeySize + 2 // key + value length
	ackSize = 1

	// lenDelete in the length field marks a DELETE message on the PUT
	// channel (values are bounded well below it).
	lenDelete = 0xffff
)

// Server is the Pilaf server: a cuckoo table in RDMA-visible memory plus
// CPU cores servicing PUT messages.
type Server struct {
	cfg      Config
	machine  *cluster.Machine
	table    *cuckoo.Table
	bucketMR *verbs.MR
	extentMR *verbs.MR
	nextCore int

	puts, putErrs uint64
	deletes       uint64
}

// NewServer initializes Pilaf on machine m.
func NewServer(m *cluster.Machine, cfg Config) (*Server, error) {
	if cfg.Cores < 1 || cfg.Cores > m.CPU.Cores() {
		return nil, fmt.Errorf("pilaf: Cores=%d out of range", cfg.Cores)
	}
	s := &Server{cfg: cfg, machine: m}
	s.bucketMR = m.Verbs.RegisterMR(cfg.Buckets * cuckoo.BucketSize)
	s.extentMR = m.Verbs.RegisterMR(cfg.ExtentBytes)
	s.table = cuckoo.New(s.bucketMR.Bytes(), s.extentMR.Bytes(), cfg.Buckets)
	return s, nil
}

// Table exposes the underlying cuckoo table (tests, preloading).
func (s *Server) Table() *cuckoo.Table { return s.table }

// Puts reports served PUT-channel message counts (PUTs and DELETEs).
func (s *Server) Puts() uint64 { return s.puts }

// Deletes reports served DELETE counts.
func (s *Server) Deletes() uint64 { return s.deletes }

// Insert loads a key server-side (warmup without network traffic).
func (s *Server) Insert(key kv.Key, value []byte) error {
	return s.table.Insert(key, value)
}

// Result is the outcome of a client operation — an alias of the
// unified kv.Result. Result.Reads counts all client-driven READs:
// every cuckoo bucket probe plus the extent fetch.
type Result = kv.Result

// Client is one Pilaf client: an RC QP for READs and a UC QP pair for
// PUT messages.
type Client struct {
	srv     *Server
	machine *cluster.Machine

	rcQP  *verbs.QP // READs (RC only — Table 1)
	ucQP  *verbs.QP // PUT SENDs
	srvUC *verbs.QP // server end of the PUT channel

	scratch *verbs.MR // READ landing buffer
	ackMR   *verbs.MR // PUT ack RECV buffer

	pendingPuts []*putOp
	readSeq     uint64

	// readWaiters holds one-shot continuations matched FIFO to READ
	// completions on rcQP.
	readWaiters []func()
	cqArmed     bool

	// Window management: at most cfg.Window ops outstanding (PUTs must
	// not outrun the server's pre-posted RECVs).
	inflight int
	waiting  []func()

	issued, completed uint64
}

// Client implements the shared client interface.
var _ kv.KV = (*Client)(nil)

// Inflight returns the number of outstanding operations.
func (c *Client) Inflight() int { return c.inflight }

// Issued and Completed report operation counts.
func (c *Client) Issued() uint64    { return c.issued }
func (c *Client) Completed() uint64 { return c.completed }

// Failed is always zero: Pilaf-em has no retry machinery, so no
// operation resolves terminally unserved (errored queue pairs panic
// instead — crash recovery is unsupported territory here).
func (c *Client) Failed() uint64 { return 0 }

// startOp gates an operation on the client window; fn runs when a slot
// is free.
func (c *Client) startOp(fn func()) {
	if c.inflight >= c.srv.cfg.Window {
		c.waiting = append(c.waiting, fn)
		return
	}
	c.inflight++
	fn()
}

// finishOp releases a window slot and starts the next queued op.
func (c *Client) finishOp() {
	c.inflight--
	if len(c.waiting) > 0 && c.inflight < c.srv.cfg.Window {
		next := c.waiting[0]
		c.waiting = c.waiting[1:]
		c.inflight++
		next()
	}
}

type putOp struct {
	key      kv.Key
	isDelete bool
	issuedAt sim.Time
	cb       func(Result)
}

// ConnectClient attaches a client on machine m.
func (s *Server) ConnectClient(m *cluster.Machine) (*Client, error) {
	c := &Client{srv: s, machine: m}

	c.rcQP = m.Verbs.CreateQP(wire.RC)
	srvRC := s.machine.Verbs.CreateQP(wire.RC)
	if err := verbs.Connect(c.rcQP, srvRC); err != nil {
		return nil, err
	}

	c.ucQP = m.Verbs.CreateQP(wire.UC)
	c.srvUC = s.machine.Verbs.CreateQP(wire.UC)
	if err := verbs.Connect(c.ucQP, c.srvUC); err != nil {
		return nil, err
	}

	c.scratch = m.Verbs.RegisterMR((s.cfg.Window + 1) * 2 * 1024)
	c.ackMR = m.Verbs.RegisterMR(s.cfg.Window * ackSize)

	// Server-side PUT channel: RECVs into a staging region, CPU insert,
	// SEND ack.
	stage := s.machine.Verbs.RegisterMR(s.cfg.Window * (putHdr + cuckoo.MaxValueSize))
	for w := 0; w < s.cfg.Window; w++ {
		mustPost(c.srvUC.PostRecv(stage, w*(putHdr+cuckoo.MaxValueSize), putHdr+cuckoo.MaxValueSize, uint64(w)))
	}
	c.srvUC.RecvCQ().SetHandler(func(comp verbs.Completion) { s.handlePut(c, stage, comp) })

	c.ucQP.RecvCQ().SetHandler(func(comp verbs.Completion) { c.handleAck(comp) })
	return c, nil
}

// handlePut services one PUT message on a server core.
func (s *Server) handlePut(c *Client, stage *verbs.MR, comp verbs.Completion) {
	if comp.Flushed {
		return
	}
	data := append([]byte(nil), comp.Data...)
	core := s.nextCore % s.cfg.Cores
	s.nextCore++

	// CPU cost: poll the CQ, repost the RECV, post the ack. Matching the
	// paper's emulation (Section 5.1: the emulated systems omit
	// data-structure cost), the insertion is performed functionally but
	// charged only prefetched-access time. RECV reposting is what makes
	// Pilaf's PUT path the most core-hungry in Figure 13.
	p := s.machine.CPU.Params()
	service := p.PollCheck + p.RecvRepost + p.PostSend + 2*p.PrefetchedAccess

	s.machine.CPU.Core(core).Submit(service, func(sim.Time) {
		var key kv.Key
		copy(key[:], data[:kv.KeySize])
		vlen := int(binary.LittleEndian.Uint16(data[kv.KeySize:putHdr]))
		status := byte(1)
		switch {
		case vlen == lenDelete:
			if !s.table.Delete(key) {
				status = 0
			}
			s.deletes++
		case putHdr+vlen > len(data):
			status = 0
		default:
			if err := s.table.Insert(key, data[putHdr:putHdr+vlen]); err != nil {
				status = 0
				s.putErrs++
			}
		}
		s.puts++
		// Repost the consumed RECV slot.
		w := comp.WRID
		mustPost(c.srvUC.PostRecv(stage, int(w)*(putHdr+cuckoo.MaxValueSize), putHdr+cuckoo.MaxValueSize, w))
		// Ack: inlined unsignaled SEND.
		mustPost(c.srvUC.PostSend(verbs.SendWR{Verb: verbs.SEND, Data: []byte{status}, Inline: true}))
	})
}

func (c *Client) handleAck(comp verbs.Completion) {
	if comp.Flushed || len(c.pendingPuts) == 0 {
		return
	}
	op := c.pendingPuts[0]
	c.pendingPuts = c.pendingPuts[1:]
	ok := len(comp.Data) >= 1 && comp.Data[0] == 1
	c.completed++
	c.finishOp()
	if op.cb != nil {
		status := kv.StatusMiss
		if ok {
			status = kv.StatusHit
		}
		op.cb(Result{
			Key: op.key, Status: status,
			Latency: c.now() - op.issuedAt,
		})
	}
}

func (c *Client) now() sim.Time { return c.machine.Verbs.NIC().Engine().Now() }

// Put sends a PUT message (SEND over UC, inlined when small). The
// client window bounds outstanding ops so PUTs never outrun the server's
// pre-posted RECVs.
func (c *Client) Put(key kv.Key, value []byte, cb func(Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	if len(value) > cuckoo.MaxValueSize {
		return cuckoo.ErrValueSize
	}
	c.sendPutChannel(key, append([]byte(nil), value...), uint16(len(value)), false, cb)
	return nil
}

// Delete removes key via the PUT message channel (a length-sentinel
// message the server CPU applies to the cuckoo table). Result.Status
// reports hit (removed) or miss (absent).
func (c *Client) Delete(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	c.sendPutChannel(key, nil, lenDelete, true, cb)
	return nil
}

// sendPutChannel issues one message on the SEND/RECV channel: a PUT
// body or the DELETE sentinel.
func (c *Client) sendPutChannel(key kv.Key, val []byte, vlen uint16, isDelete bool, cb func(Result)) {
	c.startOp(func() {
		c.issued++
		// Post the ack RECV before the request.
		mustPost(c.ucQP.PostRecv(c.ackMR, 0, ackSize, 0))

		msg := make([]byte, putHdr+len(val))
		copy(msg, key[:])
		binary.LittleEndian.PutUint16(msg[kv.KeySize:], vlen)
		copy(msg[putHdr:], val)

		c.pendingPuts = append(c.pendingPuts, &putOp{key: key, isDelete: isDelete, issuedAt: c.now(), cb: cb})
		mustPost(c.ucQP.PostSend(verbs.SendWR{
			Verb:   verbs.SEND,
			Data:   msg,
			Inline: len(msg) <= c.machine.Verbs.NIC().Params().InlineMax,
		}))
	})
}

// Get performs a client-driven GET: bucket READs until the key's
// fragment matches (or K probes fail), then an extent READ verified
// against the bucket's checksum. The server CPU does no work.
func (c *Client) Get(key kv.Key, cb func(Result)) error {
	if key.IsZero() {
		return kv.ErrZeroKey
	}
	c.startOp(func() { c.doGet(key, cb) })
	return nil
}

func (c *Client) doGet(key kv.Key, cb func(Result)) {
	start := c.now()
	c.issued++
	idxs := c.srv.table.BucketIndices(key)
	frag := cuckoo.Frag(key)
	res := Result{Key: key, IsGet: true}

	probe := 0
	var tryProbe func()
	var fetchValue func(b cuckoo.Bucket)

	finish := func() {
		res.Latency = c.now() - start
		if res.Status == kv.StatusUnknown {
			res.Status = kv.StatusMiss
		}
		c.completed++
		c.finishOp()
		if cb != nil {
			cb(res)
		}
	}

	tryProbe = func() {
		if probe >= cuckoo.K {
			finish()
			return
		}
		idx := idxs[probe]
		probe++
		res.Reads++
		// Each probe lands in its own scratch slot.
		lo := (int(c.readSeq) % (c.srv.cfg.Window + 1)) * 2 * 1024
		c.readSeq++
		err := c.rcQP.PostSend(verbs.SendWR{
			Verb:      verbs.READ,
			Remote:    c.srv.bucketMR,
			RemoteOff: c.srv.table.BucketOffset(idx),
			Local:     c.scratch,
			LocalOff:  lo,
			Len:       cuckoo.BucketSize,
			Signaled:  true,
		})
		if err != nil {
			finish()
			return
		}
		c.awaitRead(func() {
			b, ok := cuckoo.ParseBucket(c.scratch.Bytes()[lo : lo+cuckoo.BucketSize])
			if !ok || b.Frag != frag {
				tryProbe()
				return
			}
			fetchValue(b)
		})
	}

	fetchValue = func(b cuckoo.Bucket) {
		res.Reads++
		n := cuckoo.EntryBytes(int(b.VLen))
		lo := (int(c.readSeq) % (c.srv.cfg.Window + 1)) * 2 * 1024
		c.readSeq++
		err := c.rcQP.PostSend(verbs.SendWR{
			Verb:      verbs.READ,
			Remote:    c.srv.extentMR,
			RemoteOff: cuckoo.ExtentOffset(b.Ptr),
			Local:     c.scratch,
			LocalOff:  lo,
			Len:       n,
			Signaled:  true,
		})
		if err != nil {
			finish()
			return
		}
		c.awaitRead(func() {
			v, ok := cuckoo.VerifyExtentEntry(c.scratch.Bytes()[lo:lo+n], key, b)
			if ok {
				res.Status = kv.StatusHit
				res.Value = append([]byte(nil), v...)
				finish()
				return
			}
			// Checksum mismatch (torn read under a concurrent PUT):
			// continue probing, falling back to a miss.
			tryProbe()
		})
	}

	tryProbe()
}

// awaitRead registers a one-shot continuation for the next READ
// completion on this client's RC QP. READs on one QP complete in order,
// and each client GET issues its READs sequentially, so FIFO matching is
// exact.
func (c *Client) awaitRead(fn func()) {
	c.readWaiters = append(c.readWaiters, fn)
	if !c.cqArmed {
		c.cqArmed = true
		c.rcQP.SendCQ().SetHandler(func(verbs.Completion) {
			if len(c.readWaiters) == 0 {
				return
			}
			next := c.readWaiters[0]
			c.readWaiters = c.readWaiters[1:]
			next()
		})
	}
}

// mustPost consumes the synchronous error from a verbs post. Pilaf-em
// implements no crash recovery, so any rejected post — including an
// errored queue pair — is unsupported territory: fail loudly.
func mustPost(err error) {
	if err != nil {
		panic(err)
	}
}
