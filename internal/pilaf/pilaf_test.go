package pilaf

import (
	"bytes"
	"testing"

	"herdkv/internal/cluster"
	"herdkv/internal/kv"
	"herdkv/internal/sim"
)

func newPilaf(t *testing.T, nClients int) (*cluster.Cluster, *Server, []*Client) {
	t.Helper()
	cfg := Config{Buckets: 1 << 12, ExtentBytes: 1 << 22, Cores: 4, Window: 4}
	cl := cluster.New(cluster.Apt(), 1+nClients, 1)
	srv, err := NewServer(cl.Machine(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i], err = srv.ConnectClient(cl.Machine(1 + i))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cl, srv, clients
}

func TestPutThenGet(t *testing.T) {
	cl, _, clients := newPilaf(t, 1)
	c := clients[0]
	key := kv.FromUint64(1)
	val := []byte("pilaf value")
	var put, get Result
	c.Put(key, val, func(r Result) {
		put = r
		c.Get(key, func(r Result) { get = r })
	})
	cl.Eng.Run()
	if put.Status != kv.StatusHit {
		t.Fatalf("PUT failed: %+v", put)
	}
	if get.Status != kv.StatusHit || !bytes.Equal(get.Value, val) {
		t.Fatalf("GET = ok:%v %q", get.Status == kv.StatusHit, get.Value)
	}
	// Bucket probe(s) plus the extent READ.
	if get.Reads < 2 || get.Reads > 4 {
		t.Fatalf("reads = %d", get.Reads)
	}
}

func TestGetServerPreloaded(t *testing.T) {
	cl, srv, clients := newPilaf(t, 1)
	key := kv.FromUint64(2)
	if err := srv.Insert(key, []byte("preloaded")); err != nil {
		t.Fatal(err)
	}
	var res Result
	clients[0].Get(key, func(r Result) { res = r })
	cl.Eng.Run()
	if res.Status != kv.StatusHit || string(res.Value) != "preloaded" {
		t.Fatalf("GET = %+v", res)
	}
}

func TestGetMiss(t *testing.T) {
	cl, _, clients := newPilaf(t, 1)
	var res Result
	done := false
	clients[0].Get(kv.FromUint64(404), func(r Result) { res, done = r, true })
	cl.Eng.Run()
	if !done || res.Status == kv.StatusHit {
		t.Fatalf("miss: done=%v res=%+v", done, res)
	}
	// A miss still probed the buckets via READs.
	if res.Reads == 0 {
		t.Fatal("miss should have probed")
	}
}

func TestGetLatencyMultipleRTT(t *testing.T) {
	// Pilaf's GET needs bucket READ(s) + value READ: at least 2 RTTs,
	// so idle latency must exceed a HERD-style single round trip.
	cl, srv, clients := newPilaf(t, 1)
	key := kv.FromUint64(3)
	srv.Insert(key, []byte("v"))
	var lat sim.Time
	clients[0].Get(key, func(r Result) { lat = r.Latency })
	cl.Eng.Run()
	if lat < 3*sim.Microsecond {
		t.Fatalf("GET latency %.2f us too low for a 2-READ design", lat.Microseconds())
	}
	if lat > 15*sim.Microsecond {
		t.Fatalf("GET latency %.2f us implausibly high", lat.Microseconds())
	}
}

func TestAverageProbesEmergent(t *testing.T) {
	// Load to ~60% and confirm client probe counts average well below K
	// (the multi-probe cost shows up only as needed).
	cl, srv, clients := newPilaf(t, 1)
	n := (1 << 12) * 60 / 100
	for i := 0; i < n; i++ {
		if err := srv.Insert(kv.FromUint64(uint64(i+1)), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	totalReads, gets := 0, 0
	var runGet func(i int)
	runGet = func(i int) {
		if i >= 200 {
			return
		}
		clients[0].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status != kv.StatusHit {
				t.Errorf("key %d missing", i+1)
			}
			totalReads += r.Reads
			gets++
			runGet(i + 1)
		})
	}
	runGet(0)
	cl.Eng.Run()
	// Reads = probes + the extent fetch, so average reads sit ~1 above
	// the emergent probe count.
	avg := float64(totalReads) / float64(gets)
	if avg < 2.0 || avg > 3.2 {
		t.Fatalf("avg reads = %.2f, want ~2.2-2.8", avg)
	}
}

func TestManyPutsAcrossClients(t *testing.T) {
	cl, srv, clients := newPilaf(t, 3)
	n := 150
	oks := 0
	for i := 0; i < n; i++ {
		clients[i%3].Put(kv.FromUint64(uint64(i+1)), []byte{byte(i)}, func(r Result) {
			if r.Status == kv.StatusHit {
				oks++
			}
		})
	}
	cl.Eng.Run()
	if oks != n {
		t.Fatalf("oks = %d / %d", oks, n)
	}
	if srv.Puts() != uint64(n) {
		t.Fatalf("server puts = %d", srv.Puts())
	}
	// Everything readable afterwards.
	got := 0
	for i := 0; i < n; i++ {
		i := i
		clients[(i+1)%3].Get(kv.FromUint64(uint64(i+1)), func(r Result) {
			if r.Status == kv.StatusHit && len(r.Value) == 1 && r.Value[0] == byte(i) {
				got++
			}
		})
	}
	cl.Eng.Run()
	if got != n {
		t.Fatalf("got = %d / %d", got, n)
	}
}

func TestPutValueSizeLimit(t *testing.T) {
	_, _, clients := newPilaf(t, 1)
	if err := clients[0].Put(kv.FromUint64(1), make([]byte, 1001), nil); err == nil {
		t.Fatal("oversized PUT accepted")
	}
}

func TestServerConfigValidation(t *testing.T) {
	cl := cluster.New(cluster.Apt(), 1, 1)
	if _, err := NewServer(cl.Machine(0), Config{Buckets: 16, ExtentBytes: 1 << 12, Cores: 0, Window: 1}); err == nil {
		t.Fatal("Cores=0 accepted")
	}
}
