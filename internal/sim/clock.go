package sim

// Clock is the read-and-schedule face of the engine: the interface
// deterministic components depend on instead of the wall clock. The
// simtime analyzer (internal/lint/simtime) rejects time.Now / time.Sleep
// and friends inside model packages and directs callers here — virtual
// time comes from a Clock, never from the operating system.
type Clock interface {
	// Now returns the current virtual time.
	Now() Time
	// At schedules fn at virtual instant t (clamped to now if earlier).
	At(t Time, fn func())
	// After schedules fn d after the current virtual time.
	After(d Time, fn func())
}

// Engine implements Clock.
var _ Clock = (*Engine)(nil)
