package sim

import "testing"

func TestTimeNanoseconds(t *testing.T) {
	if (1500 * Picosecond).Nanoseconds() != 1.5 {
		t.Fatalf("1500ps = %v ns", (1500 * Picosecond).Nanoseconds())
	}
}

func TestRandHelpers(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	p := r.Perm(8)
	seen := make([]bool, 8)
	for _, v := range p {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestServerUnitsAndMultiUnitScan(t *testing.T) {
	e := New()
	s := NewServer(e, 3)
	if s.Units() != 3 {
		t.Fatalf("Units = %d", s.Units())
	}
	// Exercise the earliest-unit scan with uneven schedules.
	s.Submit(30*Nanosecond, nil)
	s.Submit(10*Nanosecond, nil)
	s.Submit(20*Nanosecond, nil)
	// Unit freeing at 10ns should take the next job.
	end := s.Submit(5*Nanosecond, nil)
	if end != 15*Nanosecond {
		t.Fatalf("4th job ends at %v, want 15ns", end)
	}
	if nf := s.NextFree(); nf != 15*Nanosecond {
		t.Fatalf("NextFree = %v, want 15ns", nf)
	}
	if bl := s.Backlog(); bl != 30*Nanosecond {
		t.Fatalf("Backlog = %v, want 30ns", bl)
	}
	if u := s.Utilization(); u != 0 {
		t.Fatalf("utilization at t=0 should be 0, got %v", u)
	}
}
