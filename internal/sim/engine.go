// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock (picosecond resolution) through a
// priority queue of events. Everything in the RDMA model — PCIe transfers,
// NIC processing, wire serialization, CPU service — is expressed as events
// and resources on a single engine, so experiment runs are exactly
// reproducible for a given seed and parameter set.
package sim

import "container/heap"

// Time is a point in virtual time, in picoseconds. Picosecond resolution
// keeps sub-nanosecond service times (e.g. 28.6 ns per inbound WRITE at
// 35 Mops) exact over billions of operations.
type Time int64

// Duration constants for virtual time.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a float64 nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a float64 microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// NS converts a nanosecond count to a Time.
func NS(ns float64) Time { return Time(ns * float64(Nanosecond)) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Engines are not safe for concurrent use; the entire model
// runs on one goroutine.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	ran  uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Pending reports how many events are scheduled but not yet run.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) runs the event at the current time instead; events at equal
// times run in scheduling order.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step runs the earliest pending event, advancing the clock to it.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the
// clock to deadline. Events scheduled beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
